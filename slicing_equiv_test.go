// Slicing equivalence tests: the query-relevance-sliced pipeline
// (internal/slice projected onto core.SolveOptions and
// program.RunOptions) must return byte-identical answers to the
// unsliced pipeline — on the paper's fixtures and on seeded workloads,
// at several parallelism levels, for both the repair route and the LP
// route. Slicing is semantics-preserving (dropped rules/constraints
// cannot affect query-relevant repairs); these tests enforce it.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/program"
	"repro/internal/slice"
	"repro/internal/sysdsl"
	"repro/internal/workload"
)

func mustConstraint(t *testing.T, name, src string) *constraint.Dependency {
	t.Helper()
	d, err := sysdsl.ParseConstraint(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// slicingLevels is the parallelism sweep of the equivalence tests.
var slicingLevels = []int{1, 4}

// answersFingerprint renders every sliced/unsliced engine pair for the
// triple. Errors are part of the rendering: a sliced engine must fail
// exactly when the unsliced one does (e.g. "peer has no solutions").
func answersFingerprint(t *testing.T, build func() *core.System, id core.PeerID, query string, vars []string, transitive bool, par int, sliced bool) string {
	t.Helper()
	sys := build()
	q, err := foquery.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	solveOpt := core.SolveOptions{Parallelism: par}
	runOpt := program.RunOptions{Transitive: transitive, Parallelism: par}
	if sliced {
		sl, err := slice.ForQuery(sys, id, q, transitive)
		if err != nil {
			t.Fatal(err)
		}
		solveOpt.KeepDep, solveOpt.RelevantRels = sl.KeepDep, sl.RelevantRels()
		runOpt.KeepDep, runOpt.RelevantRels = sl.KeepDep, sl.RelevantRels()
	}
	out := ""
	if !transitive {
		pca, err := core.PeerConsistentAnswers(sys, id, q, vars, solveOpt)
		out += fmt.Sprintf("repair pca=%v err=%v\n", pca, err)
		poss, err := core.PossibleAnswers(sys, id, q, vars, solveOpt)
		out += fmt.Sprintf("repair possible=%v err=%v\n", poss, err)
	}
	lpAns, err := program.PeerConsistentAnswersViaLP(sys, id, q, vars, runOpt)
	out += fmt.Sprintf("lp pca=%v err=%v\n", lpAns, err)
	return out
}

func requireSlicedEquivalent(t *testing.T, name string, build func() *core.System, id core.PeerID, query string, vars []string, transitive bool) {
	t.Helper()
	for _, par := range slicingLevels {
		full := answersFingerprint(t, build, id, query, vars, transitive, par, false)
		sliced := answersFingerprint(t, build, id, query, vars, transitive, par, true)
		if full != sliced {
			t.Fatalf("%s: sliced pipeline diverges at parallelism=%d:\n--- full ---\n%s--- sliced ---\n%s",
				name, par, full, sliced)
		}
	}
}

// TestSlicingEquivalenceFixtures sweeps the paper's fixture systems.
func TestSlicingEquivalenceFixtures(t *testing.T) {
	cases := []struct {
		name       string
		build      func() *core.System
		peer       core.PeerID
		query      string
		vars       []string
		transitive bool
	}{
		{"Example1/P1", core.Example1System, "P1", "r1(X,Y)", []string{"X", "Y"}, false},
		{"Section31/P", core.Section31System, "P", "r1(X,Y)", []string{"X", "Y"}, false},
		{"Example4/P", core.Example4System, "P", "r1(X,Y)", []string{"X", "Y"}, false},
		{"Example4/P/transitive", core.Example4System, "P", "r1(X,Y)", []string{"X", "Y"}, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			requireSlicedEquivalent(t, tc.name, tc.build, tc.peer, tc.query, tc.vars, tc.transitive)
		})
	}
}

// TestSlicingEquivalenceSeeded sweeps 20 seeds across four generator
// shapes (wide universes with droppable bystanders, Example-1-shaped
// conflicts, referential witness choices and transitive import
// chains), at Parallelism {1,4} each.
func TestSlicingEquivalenceSeeded(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("wide/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			build := func() *core.System {
				return workload.WideUniverse(2+int(seed%3), 2, 2+int(seed%4), int(seed%3), seed)
			}
			requireSlicedEquivalent(t, t.Name(), build, "P0", "q0(X,Y)", []string{"X", "Y"}, false)
		})
		t.Run(fmt.Sprintf("example1shaped/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			build := func() *core.System {
				return workload.Example1Shaped(2+int(seed%5), 1+int(seed%3), 1+int(seed%2), seed)
			}
			requireSlicedEquivalent(t, t.Name(), build, "P1", "r1(X,Y)", []string{"X", "Y"}, false)
		})
		t.Run(fmt.Sprintf("referential/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			build := func() *core.System {
				return workload.ReferentialShaped(1+int(seed%2), 1+int(seed%2), int(seed%3), seed)
			}
			requireSlicedEquivalent(t, t.Name(), build, "P", "r1(X,Y)", []string{"X", "Y"}, false)
		})
		t.Run(fmt.Sprintf("chain/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			build := func() *core.System {
				return workload.Chain(2+int(seed%3), 1+int(seed%3), seed)
			}
			requireSlicedEquivalent(t, t.Name(), build, "P0", "t0(X,Y)", []string{"X", "Y"}, true)
		})
	}
}

// TestSlicingEquivalenceNoSolutions: a violated guard constraint (all
// predicates fixed) eliminates every solution; the sliced pipeline
// must report the same "no solutions" outcome even though the guard
// shares no relation with the query.
func TestSlicingEquivalenceNoSolutions(t *testing.T) {
	build := func() *core.System {
		p := core.NewPeer("P").Declare("mine", 2).Fact("mine", "a", "b")
		p.SetTrust("Q", core.TrustLess)
		// Guard: a denial over Q's relation only; Q's data violates it.
		d := mustConstraint(t, "guard", "qa(X,Y), qa(X,Z), Y != Z -> false")
		p.AddDEC("Q", d)
		q := core.NewPeer("Q").Declare("qa", 2).
			Fact("qa", "k", "v1").Fact("qa", "k", "v2")
		return core.NewSystem().MustAddPeer(p).MustAddPeer(q)
	}
	requireSlicedEquivalent(t, t.Name(), build, "P", "mine(X,Y)", []string{"X", "Y"}, false)
	// Sanity: the outcome really is the no-solutions error.
	sys := build()
	_, err := core.PeerConsistentAnswers(sys, "P", foquery.MustParse("mine(X,Y)"), []string{"X", "Y"}, core.SolveOptions{})
	if err != core.ErrNoSolutions {
		t.Fatalf("fixture should have no solutions, got err=%v", err)
	}
}
