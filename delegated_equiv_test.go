// Delegated-answering equivalence tests: DelegatedAnswers — the
// distributed execution path that fans atomic sub-queries out to the
// owning peers over OpPCA and composes their answer sets — must return
// byte-identical answers AND errors to the centralized sliced path
// (PeerConsistentAnswersFor), on the paper's fixtures and on seeded
// workloads, at several parallelism levels, under both semantics. The
// exactness gate (slice.PlanDelegation) makes every inexact shape fall
// back to the centralized path, so equivalence must hold whether a case
// delegates or not; where the expected outcome is known, the tests also
// pin it, so delegation-expected cases cannot silently degrade into
// vacuous fallback-vs-fallback comparisons.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/peernet"
	"repro/internal/workload"
)

// delegationLevels is the parallelism sweep of the equivalence tests.
var delegationLevels = []int{1, 4}

// expectation pins the delegation outcome of a case: expectDelegated /
// expectFallback where the plan's fate is known, dontCare for seeded
// shapes whose shape varies with the seed.
type expectation int

const (
	dontCare expectation = iota
	expectDelegated
	expectFallback
)

// startDelegationNetwork deploys a system on a fresh in-process
// transport at the given parallelism and returns the nodes.
func startDelegationNetwork(t *testing.T, sys *core.System, par int) map[core.PeerID]*peernet.Node {
	t.Helper()
	tr := peernet.NewInProc()
	nodes := map[core.PeerID]*peernet.Node{}
	for _, id := range sys.Peers() {
		p, _ := sys.Peer(id)
		n := peernet.NewNode(p, tr, nil)
		n.Parallelism = par
		if err := n.Start(":0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Stop)
		nodes[id] = n
	}
	for _, n := range nodes {
		for _, m := range nodes {
			if n != m {
				n.SetNeighbor(m.Peer.ID, m.BoundAddr())
			}
		}
	}
	return nodes
}

// requireDelegatedEquivalent compares the delegated and centralized
// paths for one (system, root, query) triple across the parallelism
// sweep, enforcing the expected delegation outcome.
func requireDelegatedEquivalent(t *testing.T, name string, build func() *core.System, id core.PeerID, query string, vars []string, transitive bool, expect expectation) {
	t.Helper()
	q := foquery.MustParse(query)
	for _, par := range delegationLevels {
		nodes := startDelegationNetwork(t, build(), par)
		root := nodes[id]
		central, centralErr := root.PeerConsistentAnswersFor(q, vars, transitive)
		deleg, info, delegErr := root.DelegatedAnswersInfo(q, vars, transitive)
		centralFP := fmt.Sprintf("pca=%v err=%v", central, centralErr)
		delegFP := fmt.Sprintf("pca=%v err=%v", deleg, delegErr)
		if centralFP != delegFP {
			t.Fatalf("%s: delegated path diverges at parallelism=%d:\n--- central ---\n%s\n--- delegated ---\n%s",
				name, par, centralFP, delegFP)
		}
		switch expect {
		case expectDelegated:
			if !info.Delegated {
				t.Fatalf("%s: expected delegation, fell back: %s", name, info.Reason)
			}
		case expectFallback:
			if info.Delegated {
				t.Fatalf("%s: expected fallback, but the plan ran (delegates=%v fetches=%v)",
					name, info.Delegates, info.Fetches)
			}
		}
	}
}

// TestDelegatedEquivalenceFixtures sweeps the paper's fixture systems
// under both semantics. Direct cases always fall back (Definition 4
// reads neighbour data raw); Example 1 transitive delegates as a pure
// fetch plan; Example 4 transitive delegates the repairing peer Q.
func TestDelegatedEquivalenceFixtures(t *testing.T) {
	cases := []struct {
		name       string
		build      func() *core.System
		peer       core.PeerID
		query      string
		vars       []string
		transitive bool
		expect     expectation
	}{
		{"Example1/P1/direct", core.Example1System, "P1", "r1(X,Y)", []string{"X", "Y"}, false, expectFallback},
		{"Example1/P1/transitive", core.Example1System, "P1", "r1(X,Y)", []string{"X", "Y"}, true, expectDelegated},
		{"Section31/P/direct", core.Section31System, "P", "r1(X,Y)", []string{"X", "Y"}, false, expectFallback},
		{"Section31/P/transitive", core.Section31System, "P", "r1(X,Y)", []string{"X", "Y"}, true, expectDelegated},
		{"Example4/P/direct", core.Example4System, "P", "r1(X,Y)", []string{"X", "Y"}, false, expectFallback},
		{"Example4/P/transitive", core.Example4System, "P", "r1(X,Y)", []string{"X", "Y"}, true, expectDelegated},
		{"Example4/P/transitive/r2", core.Example4System, "P", "r2(X,Y)", []string{"X", "Y"}, true, expectDelegated},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			requireDelegatedEquivalent(t, tc.name, tc.build, tc.peer, tc.query, tc.vars, tc.transitive, tc.expect)
		})
	}
}

// TestDelegatedEquivalenceFallbackShapes: transitive shapes the
// exactness gate must refuse — a non-forced remote constraint and a
// same-trust overlay at a non-root peer — still answer identically
// through the fallback.
func TestDelegatedEquivalenceFallbackShapes(t *testing.T) {
	importBase := func() (*core.Peer, *core.Peer, *core.Peer) {
		r := core.NewPeer("R").Declare("tr", 2).Fact("tr", "r", "1").
			SetTrust("A", core.TrustLess).
			AddDEC("A", constraint.Inclusion("incRA", "ta", "tr", 2))
		a := core.NewPeer("A").Declare("ta", 2).Fact("ta", "a", "1")
		b := core.NewPeer("B").Declare("ub", 2).Fact("ub", "a", "1")
		return r, a, b
	}
	t.Run("non-forced-remote-egd", func(t *testing.T) {
		t.Parallel()
		build := func() *core.System {
			r, a, b := importBase()
			// ta and ua are both A's: deleting either repairs a violation,
			// so A's solution is not unique and delegation is refused.
			a.Declare("ua", 2).Fact("ua", "a", "2").
				SetTrust("B", core.TrustLess).
				AddDEC("B", constraint.KeyEGD("egdA", "ta", "ua"))
			return core.NewSystem().MustAddPeer(r).MustAddPeer(a).MustAddPeer(b)
		}
		requireDelegatedEquivalent(t, t.Name(), build, "R", "tr(X,Y)", []string{"X", "Y"}, true, expectFallback)
	})
	t.Run("same-trust-at-non-root", func(t *testing.T) {
		t.Parallel()
		build := func() *core.System {
			r, a, b := importBase()
			// The combined program ignores A's same-trust DEC; a delegate
			// answering its own query would enforce it.
			a.SetTrust("B", core.TrustSame).
				AddDEC("B", constraint.KeyEGD("egdAB", "ta", "ub"))
			return core.NewSystem().MustAddPeer(r).MustAddPeer(a).MustAddPeer(b)
		}
		requireDelegatedEquivalent(t, t.Name(), build, "R", "tr(X,Y)", []string{"X", "Y"}, true, expectFallback)
	})
}

// TestDelegatedEquivalenceSeeded sweeps 20 seeds across the generator
// shapes: transitive chains and delegation fanouts (which must run the
// delegated plan), plus the direct-semantics shapes (which must fall
// back), at Parallelism {1,4} each.
func TestDelegatedEquivalenceSeeded(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("chain/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			build := func() *core.System {
				return workload.Chain(2+int(seed%3), 1+int(seed%3), seed)
			}
			requireDelegatedEquivalent(t, t.Name(), build, "P0", "t0(X,Y)", []string{"X", "Y"}, true, expectDelegated)
		})
		t.Run(fmt.Sprintf("fanout/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			build := func() *core.System {
				return workload.DelegationFanout(1+int(seed%3), 1+int(seed%4), 1+int(seed%2), int(seed%5), seed)
			}
			requireDelegatedEquivalent(t, t.Name(), build, "P0", "r0(X,Y)", []string{"X", "Y"}, true, expectDelegated)
		})
		t.Run(fmt.Sprintf("chain-direct/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			build := func() *core.System {
				return workload.Chain(2+int(seed%3), 1+int(seed%3), seed)
			}
			requireDelegatedEquivalent(t, t.Name(), build, "P0", "t0(X,Y)", []string{"X", "Y"}, false, expectFallback)
		})
		t.Run(fmt.Sprintf("example1shaped/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			build := func() *core.System {
				return workload.Example1Shaped(2+int(seed%5), 1+int(seed%3), 1+int(seed%2), seed)
			}
			requireDelegatedEquivalent(t, t.Name(), build, "P1", "r1(X,Y)", []string{"X", "Y"}, false, expectFallback)
		})
		t.Run(fmt.Sprintf("wide/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			build := func() *core.System {
				return workload.WideUniverse(2+int(seed%3), 2, 2+int(seed%4), int(seed%3), seed)
			}
			requireDelegatedEquivalent(t, t.Name(), build, "P0", "q0(X,Y)", []string{"X", "Y"}, false, expectFallback)
		})
		t.Run(fmt.Sprintf("referential/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			build := func() *core.System {
				return workload.ReferentialShaped(1+int(seed%2), 1+int(seed%2), int(seed%3), seed)
			}
			requireDelegatedEquivalent(t, t.Name(), build, "P", "r1(X,Y)", []string{"X", "Y"}, false, expectFallback)
		})
	}
}
