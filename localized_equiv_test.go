// Conflict-localization equivalence tests: the conflict-localized
// repair engine (internal/repair/localize.go) must return byte-identical
// results to the global wave search — solutions, peer consistent
// answers and possible answers, including error values — on the paper's
// fixtures and on seeded workloads, at several parallelism levels, and
// under MaxDelta (ErrBound) and MaxRepairs (truncation) stress.
// Localization is gated to apply only when provably exact; these tests
// enforce the gate.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/workload"
)

// localizedLevels is the parallelism sweep of the equivalence tests.
var localizedLevels = []int{1, 4}

// localizedFingerprint renders the repair-engine outputs for the triple
// with localization on or off. Errors are part of the rendering: the
// localized engine must fail exactly when the global one does.
func localizedFingerprint(t *testing.T, build func() *core.System, id core.PeerID, query string, vars []string, opt core.SolveOptions) string {
	t.Helper()
	sys := build()
	q, err := foquery.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	sols, err := core.SolutionsFor(sys, id, opt)
	out += fmt.Sprintf("solutions err=%v\n", err)
	for _, r := range sols {
		out += fmt.Sprintf("solution %s\n", r.Key())
	}
	pca, err := core.PeerConsistentAnswers(sys, id, q, vars, opt)
	out += fmt.Sprintf("pca err=%v tuples=%v\n", err, pca)
	poss, err := core.PossibleAnswers(sys, id, q, vars, opt)
	out += fmt.Sprintf("possible err=%v tuples=%v\n", err, poss)
	return out
}

func requireLocalizedEquivalent(t *testing.T, name string, build func() *core.System, id core.PeerID, query string, vars []string, variants []core.SolveOptions) {
	t.Helper()
	for vi, base := range variants {
		for _, par := range localizedLevels {
			global, localized := base, base
			global.NoLocalize, global.Parallelism = true, par
			localized.NoLocalize, localized.Parallelism = false, par
			want := localizedFingerprint(t, build, id, query, vars, global)
			got := localizedFingerprint(t, build, id, query, vars, localized)
			if want != got {
				t.Fatalf("%s (variant %d, parallelism=%d): localized engine diverges:\n--- global ---\n%s--- localized ---\n%s",
					name, vi, par, want, got)
			}
		}
	}
}

// defaultVariants stresses the unbounded search plus ErrBound and
// MaxRepairs truncation, which must fall back to (and so agree with)
// the global engine.
var defaultVariants = []core.SolveOptions{
	{},
	{MaxDelta: 2},
	{MaxDelta: 4},
	{MaxRepairs: 1},
	{MaxRepairs: 3},
}

// TestLocalizedEquivalenceFixtures sweeps the paper's fixture systems.
func TestLocalizedEquivalenceFixtures(t *testing.T) {
	cases := []struct {
		name  string
		build func() *core.System
		peer  core.PeerID
		query string
		vars  []string
	}{
		{"Example1/P1", core.Example1System, "P1", "r1(X,Y)", []string{"X", "Y"}},
		{"Section31/P", core.Section31System, "P", "r1(X,Y)", []string{"X", "Y"}},
		{"Example4/P", core.Example4System, "P", "r1(X,Y)", []string{"X", "Y"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			requireLocalizedEquivalent(t, tc.name, tc.build, tc.peer, tc.query, tc.vars, defaultVariants)
		})
	}
}

// TestLocalizedEquivalenceSeededWorkloads sweeps generated systems over
// 20 seeds and four generator shapes, including the scattered-conflict
// workload the localized engine was built for.
func TestLocalizedEquivalenceSeededWorkloads(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("example1shaped/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			build := func() *core.System {
				return workload.Example1Shaped(2+int(seed%5), 1+int(seed%3), 1+int(seed%2), seed)
			}
			requireLocalizedEquivalent(t, t.Name(), build, "P1", "r1(X,Y)", []string{"X", "Y"}, defaultVariants)
		})
		t.Run(fmt.Sprintf("referential/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			build := func() *core.System {
				return workload.ReferentialShaped(1+int(seed%2), 1+int(seed%2), int(seed%3), seed)
			}
			requireLocalizedEquivalent(t, t.Name(), build, "P", "r1(X,Y)", []string{"X", "Y"}, defaultVariants)
		})
		t.Run(fmt.Sprintf("independent/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			build := func() *core.System {
				return workload.IndependentConflicts(1 + int(seed%5))
			}
			requireLocalizedEquivalent(t, t.Name(), build, "A", "ra(X,Y)", []string{"X", "Y"}, defaultVariants)
		})
		t.Run(fmt.Sprintf("scattered/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			build := func() *core.System {
				return workload.ScatteredConflicts(2+int(seed%4), 3+int(seed%4), seed)
			}
			requireLocalizedEquivalent(t, t.Name(), build, "A", "ra0(X,Y)", []string{"X", "Y"}, defaultVariants)
		})
	}
}
