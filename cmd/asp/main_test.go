package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.lp")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const section31 = `
rp1(X,Y) :- r1(X,Y), not -rp1(X,Y).
rp2(X,Y) :- r2(X,Y), not -rp2(X,Y).
-rp1(X,Y) :- r1(X,Y), s1(Z,Y), not aux1(X,Z), not aux2(Z).
aux1(X,Z) :- r2(X,W), s2(Z,W).
aux2(Z) :- s2(Z,W).
-rp1(X,Y) v rp2(X,W) :- r1(X,Y), s1(Z,Y), not aux1(X,Z), s2(Z,W), choice((X,Z),(W)).
r1(a,b). s1(c,b). s2(c,e). s2(c,f).
`

func TestSolveSection31File(t *testing.T) {
	path := writeTemp(t, section31)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "M4 =") || strings.Contains(s, "M5 =") {
		t.Fatalf("expected exactly 4 models:\n%s", s)
	}
}

func TestCautiousBraveFlags(t *testing.T) {
	path := writeTemp(t, section31)
	var out bytes.Buffer
	if err := run([]string{"-cautious", "rp1", "-brave", "rp2", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "cautious[rp1]: []") {
		t.Fatalf("cautious output wrong:\n%s", s)
	}
	if !strings.Contains(s, "brave[rp2]: [rp2(a,e) rp2(a,f)]") {
		t.Fatalf("brave output wrong:\n%s", s)
	}
}

func TestShiftFlag(t *testing.T) {
	path := writeTemp(t, section31)
	var out bytes.Buffer
	if err := run([]string{"-shift", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "head-cycle free: shifted") {
		t.Fatalf("shift note missing:\n%s", s)
	}
	if !strings.Contains(s, "M4 =") || strings.Contains(s, "M5 =") {
		t.Fatalf("shifted solving changed the models:\n%s", s)
	}
}

func TestGroundFlag(t *testing.T) {
	path := writeTemp(t, "p(a). q(X) :- p(X).")
	var out bytes.Buffer
	if err := run([]string{"-ground", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "q(a) :- p(a).") {
		t.Fatalf("ground output wrong:\n%s", out.String())
	}
}

func TestNoModels(t *testing.T) {
	path := writeTemp(t, "p :- not p.")
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no stable models") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestParseErrorSurfaces(t *testing.T) {
	path := writeTemp(t, "p(X :- q(X).")
	var out bytes.Buffer
	if err := run([]string{path}, &out); err == nil {
		t.Fatal("parse error should propagate")
	}
}

func TestMaxModelsFlag(t *testing.T) {
	path := writeTemp(t, "a v b. c v d.")
	var out bytes.Buffer
	if err := run([]string{"-models", "2", path}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "M3 =") {
		t.Fatalf("models flag ignored:\n%s", out.String())
	}
}
