// Command asp is a stable-model (answer set) solver for disjunctive
// logic programs with strong negation, default negation, comparison
// built-ins and the choice operator — the engine the paper would run on
// DLV (Section 3.2), built from scratch.
//
// Usage:
//
//	asp [flags] [program.lp]
//
// With no file the program is read from stdin. Flags:
//
//	-models N       stop after N models (0 = all)
//	-shift          apply the HCF shift of Section 4.1 when applicable
//	-cautious P     print the skeptical consequences for predicate P
//	-brave P        print the brave consequences for predicate P
//	-ground         print the ground program instead of solving
//	-parallelism N  worker-pool bound for grounding and solving
//	                (0/1 = sequential; output is identical at any level)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lp"
	"repro/internal/lp/ground"
	"repro/internal/lp/parse"
	"repro/internal/lp/solve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("asp", flag.ContinueOnError)
	maxModels := fs.Int("models", 0, "stop after N models (0 = all)")
	shift := fs.Bool("shift", false, "apply the HCF shift before solving when the program is head-cycle free")
	cautious := fs.String("cautious", "", "print skeptical consequences for this predicate")
	brave := fs.String("brave", "", "print brave consequences for this predicate")
	printGround := fs.Bool("ground", false, "print the ground program and exit")
	par := fs.Int("parallelism", 0, "worker-pool bound for grounding and the stable-model search; 0/1 = sequential")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src []byte
	var err error
	switch fs.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(fs.Arg(0))
	default:
		return fmt.Errorf("at most one program file expected")
	}
	if err != nil {
		return err
	}

	prog, err := parse.Program(string(src))
	if err != nil {
		return err
	}
	unfolded, err := lp.UnfoldChoice(prog)
	if err != nil {
		return err
	}
	g, err := ground.GroundOpt(unfolded, ground.Options{Parallelism: *par})
	if err != nil {
		return err
	}
	if *printGround {
		fmt.Fprint(out, g.String())
		return nil
	}
	if *shift {
		if solve.HCF(g) {
			g, err = solve.Shift(g)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "% program is head-cycle free: shifted to a normal program")
		} else {
			fmt.Fprintln(out, "% program is not head-cycle free: solving the disjunctive program")
		}
	}
	models, err := solve.StableModels(g, solve.Options{MaxModels: *maxModels, Parallelism: *par})
	if err != nil {
		return err
	}
	if len(models) == 0 {
		fmt.Fprintln(out, "no stable models")
		return nil
	}
	fmt.Fprint(out, solve.FormatModels(models))
	if *cautious != "" {
		atoms, _ := solve.Cautious(models, *cautious)
		fmt.Fprintf(out, "cautious[%s]: %v\n", *cautious, atoms)
	}
	if *brave != "" {
		fmt.Fprintf(out, "brave[%s]: %v\n", *brave, solve.Brave(models, *brave))
	}
	return nil
}
