package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsRun smoke-tests every experiment: each must run
// without error and print its key fidelity line.
func TestAllExperimentsRun(t *testing.T) {
	wantFragments := map[string]string{
		"E1": "paper-expected count: 2, measured: 2",
		"E2": "Definition 4/5 engine : [(a,b) (a,e) (c,d)]",
		"E3": "answer sets: 4",
		"E4": "solutions (disjunctive) = 3, solutions (shifted) = 3, equal = true",
		"E5": "stable models: 4 (paper: M1-M4)",
		"E6": "transitive solutions: 3 (paper: r1, r2, r3)",
		"E7": "denial-constraint layer (paper option 1): 1 solution(s)",
		"B2": "5          32         32",
		"B7": "27 answer-set solutions",
	}
	for _, e := range experiments {
		e := e
		t.Run(e.id, func(t *testing.T) {
			var out bytes.Buffer
			if err := e.run(&out); err != nil {
				t.Fatalf("%s: %v", e.id, err)
			}
			if frag, ok := wantFragments[e.id]; ok {
				if !strings.Contains(out.String(), frag) {
					t.Fatalf("%s output missing %q:\n%s", e.id, frag, out.String())
				}
			}
			if out.Len() == 0 {
				t.Fatalf("%s produced no output", e.id)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := lookup("E1"); !ok {
		t.Fatal("E1 not found")
	}
	if _, ok := lookup("Z9"); ok {
		t.Fatal("Z9 should not exist")
	}
}
