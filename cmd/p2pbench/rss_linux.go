//go:build linux

package main

import "syscall"

// peakRSSKB returns the process's peak resident set size in kilobytes
// (getrusage ru_maxrss, which Linux reports in KB).
func peakRSSKB() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return int64(ru.Maxrss)
}
