// Command p2pbench regenerates every experiment of the reproduction:
// the fidelity experiments E1-E7 (each concrete artifact in the paper —
// worked examples, programs, stable models) and the scaling/ablation
// benchmarks B1-B8 (the paper has no empirical tables, so these measure
// the complexity behaviour its Section 3.2 claims imply). EXPERIMENTS.md
// records the expected output.
//
// Usage:
//
//	p2pbench                 # run everything
//	p2pbench -experiment E5  # one experiment
//	p2pbench -list           # list experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/core"
)

type experiment struct {
	id    string
	title string
	run   func(io.Writer) error
}

var experiments = []experiment{
	{"E1", "Example 1: the two solutions for P1", runE1},
	{"E2", "Example 2: FO rewriting and peer consistent answers", runE2},
	{"E3", "Section 3.1: direct specification program and its answer sets", runE3},
	{"E4", "Example 3 / Section 4.1: head-cycle-freeness and shifting", runE4},
	{"E5", "Appendix: LAV program, stable models M1-M4, solutions", runE5},
	{"E6", "Example 4: transitive case, combined program, three solutions", runE6},
	{"E7", "Section 3.2: local ICs — denial layer vs repair layer", runE7},
	{"B1", "PCA latency vs instance size (three engines)", runB1},
	{"B2", "Solutions and solve time vs independent conflicts (2^k)", runB2},
	{"B3", "Engine crossover: rewrite vs LP vs repair enumeration", runB3},
	{"B4", "HCF shift: disjunctive vs shifted-normal solving", runB4},
	{"B5", "Grounding cost vs facts", runB5},
	{"B6", "Networked PCA: transport and latency sweep", runB6},
	{"B7", "Choice keys: shared vs independent witness choices", runB7},
	{"B8", "Solver ablation: support propagation on/off", runB8},
	{"B9", "Wide universe: query-relevance slicing vs full snapshots", runB9},
	{"B10", "Scattered conflicts: conflict-localized vs global repair", runB10},
	{"B11", "Delegation fanout: central pull vs delegated peer answering", runB11},
	{"B12", "Large universe: columnar memory plane, repair+answer allocs", runB12},
	{"B13", "Serving plane: sustained mixed load, coalescing, write visibility", runB13},
	{"B14", "Churn: incremental re-answering vs evict-and-recompute under writes", runB14},
}

// benchParallelism is the worker-pool bound used by the parallel
// variants inside B1 and B6 (engine fan-out, networked snapshot
// fetch). Set by -parallelism; 0 means GOMAXPROCS.
var benchParallelism = 4

func main() {
	fs := flag.NewFlagSet("p2pbench", flag.ContinueOnError)
	which := fs.String("experiment", "", "experiment id (E1..E7, B1..B14); empty = all")
	list := fs.Bool("list", false, "list experiments")
	fs.IntVar(&benchParallelism, "parallelism", benchParallelism,
		"worker-pool bound for the parallel benchmark variants; 0 = GOMAXPROCS")
	stats := fs.Bool("stats", false, "print fixture system statistics (peers, tuples, per-system interned symbols) and exit")
	gateOut := fs.String("gate-out", "", "measure the benchmark gate (B5 grounding, B1 repair) and write the result JSON to this path")
	gateBase := fs.String("gate", "", "compare the gate measurement against this baseline JSON and exit non-zero on regression")
	gateThreshold := fs.Float64("gate-threshold", 0.25, "allowed regression of the normalized gate metrics (0.25 = 25%)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run (experiments or gate) to this path")
	memProfile := fs.String("memprofile", "", "write an allocation (heap) profile taken at exit to this path")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile shows retained, not transient, heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *gateOut != "" || *gateBase != "" {
		// The gate always measures at Parallelism 1: its calibration
		// loop is single-threaded, so that is the only level whose
		// normalized ratios are comparable across core counts (see
		// gate.go); sequential output is byte-identical to parallel.
		if err := runGate(os.Stdout, *gateOut, *gateBase, *gateThreshold, 1); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-3s %s\n", e.id, e.title)
		}
		return
	}
	if *stats {
		printFixtureStats(os.Stdout)
		return
	}
	var ids []string
	if *which == "" {
		for _, e := range experiments {
			ids = append(ids, e.id)
		}
	} else {
		ids = []string{*which}
	}
	sort.Strings(ids)
	for _, id := range ids {
		e, ok := lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "p2pbench: unknown experiment %s\n", id)
			os.Exit(1)
		}
		fmt.Printf("==== %s: %s ====\n", e.id, e.title)
		if err := e.run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "p2pbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

// printFixtureStats reports, per paper fixture, the size of the
// per-system symbol table every instance of the system interns into.
func printFixtureStats(w io.Writer) {
	for _, f := range []struct {
		name string
		sys  *core.System
	}{
		{"Example1", core.Example1System()},
		{"Section31", core.Section31System()},
		{"Example4", core.Example4System()},
	} {
		fmt.Fprintf(w, "%-10s peers=%d tuples=%d symbols=%d\n",
			f.name, len(f.sys.Peers()), f.sys.Global().Size(), f.sys.Symtab().Len())
	}
}

func lookup(id string) (experiment, bool) {
	for _, e := range experiments {
		if e.id == id {
			return e, true
		}
	}
	return experiment{}, false
}
