package main

import (
	"fmt"
	"io"
	"reflect"
	"time"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/peernet"
	"repro/internal/relation"
	"repro/internal/workload"
)

// churnDeployment is one two-node ChurnUniverse overlay with a warm
// root: TTL caches on, series seeded by a first query.
type churnDeployment struct {
	nodes map[core.PeerID]*peernet.Node
	root  *peernet.Node
	stop  func()
}

func newChurnDeployment(k, clean int, seed int64, noIncremental bool) (*churnDeployment, error) {
	sys := workload.ChurnUniverse(k, clean, seed)
	ip := peernet.NewInProc()
	nodes := map[core.PeerID]*peernet.Node{}
	var started []*peernet.Node
	stop := func() {
		for _, n := range started {
			n.Stop()
		}
	}
	for _, id := range sys.Peers() {
		p, _ := sys.Peer(id)
		n := peernet.NewNode(p, ip, nil)
		n.Parallelism = benchParallelism
		if err := n.Start(":0"); err != nil {
			stop()
			return nil, err
		}
		started = append(started, n)
		nodes[id] = n
	}
	for _, n := range nodes {
		for _, m := range nodes {
			if n != m {
				n.SetNeighbor(m.Peer.ID, m.Addr)
			}
		}
	}
	root := nodes["A"]
	root.CacheTTL = time.Hour
	root.NoIncremental = noIncremental
	return &churnDeployment{nodes: nodes, root: root, stop: stop}, nil
}

// replayChurn drives one write+query churn pass and returns the time
// spent answering queries (the writes are identical across arms, so
// the query time is the comparable quantity) plus every query answer
// in stream order.
func replayChurn(d *churnDeployment, stream []workload.StreamOp, parsed map[string]foquery.Formula) (time.Duration, [][]relation.Tuple, error) {
	var queryTime time.Duration
	var answers [][]relation.Tuple
	for _, op := range stream {
		if op.Write {
			d.nodes[op.Peer].UpdateLocal(func(p *core.Peer) {
				p.Inst.Insert(op.Rel, relation.Tuple(op.Tuple))
			})
			continue
		}
		start := time.Now()
		ans, err := d.root.AnswerQuery(parsed[op.Query], op.Vars, peernet.QueryOptions{})
		queryTime += time.Since(start)
		if err != nil {
			return 0, nil, err
		}
		answers = append(answers, ans)
	}
	return queryTime, answers, nil
}

// runB14 measures incremental re-answering under write traffic: the
// same deterministic churn stream (a relevant single-fact write, then
// the hot query, repeated) replayed against two identical
// ChurnUniverse deployments — one answering incrementally (journal
// delta -> touched-component re-search -> answer-cache Promote), one
// with NoIncremental, where every post-write query pays the
// evict-and-recompute full path. Every answer pair is checked
// byte-identical while measuring, and the incremental arm must be at
// least 5x cheaper per post-write query. Timing ratios under CI noise
// are retried a few times before failing.
func runB14(w io.Writer) error {
	const k, clean, steps = 6, 200, 40
	stream := workload.ChurnStream(k, steps, 3)
	parsed := map[string]foquery.Formula{}
	for _, op := range stream {
		if !op.Write {
			if _, ok := parsed[op.Query]; !ok {
				parsed[op.Query] = foquery.MustParse(op.Query)
			}
		}
	}
	const target = 5.0
	var incrTime, fullTime time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		incr, err := newChurnDeployment(k, clean, 3, false)
		if err != nil {
			return err
		}
		full, err := newChurnDeployment(k, clean, 3, true)
		if err != nil {
			incr.stop()
			return err
		}
		// Warm both arms: the first query pays the full path on each
		// (and seeds the incremental arm's series).
		for text, f := range parsed {
			var vars []string
			for _, op := range stream {
				if op.Query == text {
					vars = op.Vars
					break
				}
			}
			if _, err := incr.root.AnswerQuery(f, vars, peernet.QueryOptions{}); err != nil {
				incr.stop()
				full.stop()
				return err
			}
			if _, err := full.root.AnswerQuery(f, vars, peernet.QueryOptions{}); err != nil {
				incr.stop()
				full.stop()
				return err
			}
		}
		var incrAns [][]relation.Tuple
		incrTime, incrAns, err = replayChurn(incr, stream, parsed)
		if err == nil {
			var fullAns [][]relation.Tuple
			fullTime, fullAns, err = replayChurn(full, stream, parsed)
			if err == nil {
				for i := range incrAns {
					if !reflect.DeepEqual(incrAns[i], fullAns[i]) {
						err = fmt.Errorf("byte-identity: query %d incremental=%v recompute=%v",
							i, incrAns[i], fullAns[i])
						break
					}
				}
			}
		}
		patched, seeded, fallbacks := incr.root.IncrStats()
		incr.stop()
		full.stop()
		if err != nil {
			return err
		}
		if patched < int64(steps) {
			return fmt.Errorf("incremental arm patched %d of %d post-write queries (seeded=%d fallbacks=%d)",
				patched, steps, seeded, fallbacks)
		}
		ratio := float64(fullTime) / float64(incrTime)
		fmt.Fprintf(w, "churn k=%d clean=%d steps=%d: incremental=%v recompute=%v ratio=%.1fx (patched=%d fallbacks=%d)\n",
			k, clean, steps, incrTime.Round(time.Microsecond), fullTime.Round(time.Microsecond),
			ratio, patched, fallbacks)
		if ratio >= target {
			fmt.Fprintf(w, "amortized per post-write query: incremental=%v recompute=%v\n",
				(incrTime / time.Duration(steps)).Round(time.Microsecond),
				(fullTime / time.Duration(steps)).Round(time.Microsecond))
			return nil
		}
	}
	return fmt.Errorf("incremental answering only %.1fx cheaper than evict-and-recompute, want >= %.0fx (incremental=%v recompute=%v)",
		float64(fullTime)/float64(incrTime), target, incrTime, fullTime)
}
