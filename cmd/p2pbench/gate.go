package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/lp"
	"repro/internal/lp/ground"
	"repro/internal/peernet"
	"repro/internal/program"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/serve"
	"repro/internal/slice"
	"repro/internal/workload"
)

// The benchmark regression gate measures the two tentpole hot paths —
// B5 grounding (facts=100) and B1 repair (n=40) — and compares them
// against a checked-in baseline (bench/BENCH_baseline.json). Raw times
// are not portable across machines, so the gate also measures a fixed
// CPU-bound calibration loop in the same process and gates on the
// *normalized* ratios time(bench)/time(calibration): a machine that is
// uniformly 2x slower scores the same, while a regression in the
// measured path moves the ratio. The calibration loop is
// single-threaded, so the gate measurements run at Parallelism 1 —
// otherwise the normalization would depend on the runner's core count;
// sequential output is byte-identical to parallel, so a sequential
// regression is an engine regression. Comparing measurements taken at
// different parallelism levels is rejected as incomparable. Every
// measurement is the minimum of gateRounds runs, which is far more
// stable than a mean under CI noise.

// gateRounds is how many measurement blocks run per metric; the
// minimum block is kept. gateBlockReps is how many back-to-back
// repetitions one block times as a unit: amortizing over a block keeps
// the garbage-collection cost of the measured path inside the
// measurement (a single isolated run can dodge collection entirely,
// which would flatter allocation-heavy code), while the min over
// blocks rejects co-tenant noise spikes. gateB12Reps is the block size
// of the large-universe metric: one B12 run is five orders of
// magnitude bigger than the other metrics and garbage-collects many
// times internally, so two repetitions amortize enough and keep the
// gate's wall time bounded.
const (
	gateRounds    = 5
	gateBlockReps = 20
	gateB12Reps   = 2
	// gateB14Reps: one B14 block replays a full reversible churn pass
	// (dozens of write+patched-query pairs), so two repetitions
	// amortize GC while keeping the gate's wall time bounded.
	gateB14Reps = 2
)

// gateResult is the BENCH_*.json schema.
type gateResult struct {
	// Parallelism is the -parallelism the measurements ran at.
	Parallelism int `json:"parallelism"`
	// CalibNS is the calibration loop time (minimum over rounds).
	CalibNS int64 `json:"calib_ns"`
	// B5GroundNS is B5 grounding at facts=100 (minimum over rounds).
	B5GroundNS int64 `json:"b5_ground_facts100_ns"`
	// B1RepairNS is B1 repair-engine PCA at n=40 (minimum over rounds).
	B1RepairNS int64 `json:"b1_repair_n40_ns"`
	// B9SlicedNS is the B9 wide-universe sliced PCA — slice computation
	// plus the slice-restricted repair-engine answering, no network
	// (minimum over rounds).
	B9SlicedNS int64 `json:"b9_sliced_wide_ns"`
	// B10LocalNS is the B10 scattered-conflict consistent-answering pass
	// under the conflict-localized repair engine, k=8 (minimum over
	// rounds).
	B10LocalNS int64 `json:"b10_localized_scatter_ns"`
	// B11DelegNS is the B11 delegated answering pass on the delegation
	// fanout workload over a zero-latency in-process overlay (minimum
	// over rounds): the plan + fan-out + composition hot path, no
	// network delay.
	B11DelegNS int64 `json:"b11_delegated_fanout_ns"`
	// B12LargeNS is the B12 large-universe repair+answer pass — CQA over
	// the columnar memory plane at 20k core facts (minimum over rounds).
	B12LargeNS int64 `json:"b12_large_universe_ns"`
	// B13ServeNS is the B13 serving-plane pass: one sequential client
	// replaying the mixed read/write stream through a serve.Server over
	// a warm in-process overlay — admission, snapshot/fingerprint/cache
	// bookkeeping and the write path (minimum over rounds).
	B13ServeNS int64 `json:"b13_serve_stream_ns"`
	// B14ChurnNS is the B14 incremental-maintenance pass: a reversible
	// churn loop (single relevant write, then the hot query answered by
	// patching the live series) over a warm ChurnUniverse overlay
	// (minimum over rounds).
	B14ChurnNS int64 `json:"b14_churn_incr_ns"`
	// B5Norm..B12Norm are the machine-independent gate metrics: bench
	// time divided by calibration time.
	B5Norm  float64 `json:"b5_norm"`
	B1Norm  float64 `json:"b1_norm"`
	B9Norm  float64 `json:"b9_norm"`
	B10Norm float64 `json:"b10_norm"`
	B11Norm float64 `json:"b11_norm"`
	B12Norm float64 `json:"b12_norm"`
	B13Norm float64 `json:"b13_norm"`
	B14Norm float64 `json:"b14_norm"`
	// *AllocsOp are the per-run heap allocation counts of the same
	// measured paths (minimum over rounds). Allocation counts are
	// machine-independent — no calibration needed — and far more stable
	// than times, so they catch allocation regressions (a dropped buffer
	// reuse, a map rebuilt per candidate) that time-based gating under
	// CI noise would let through.
	B5AllocsOp  int64 `json:"b5_ground_facts100_allocs_op"`
	B1AllocsOp  int64 `json:"b1_repair_n40_allocs_op"`
	B9AllocsOp  int64 `json:"b9_sliced_wide_allocs_op"`
	B10AllocsOp int64 `json:"b10_localized_scatter_allocs_op"`
	B11AllocsOp int64 `json:"b11_delegated_fanout_allocs_op"`
	B12AllocsOp int64 `json:"b12_large_universe_allocs_op"`
	B13AllocsOp int64 `json:"b13_serve_stream_allocs_op"`
	B14AllocsOp int64 `json:"b14_churn_incr_allocs_op"`
	// PeakRSSKB is the process's peak resident set size (KB) after all
	// measurements, as reported by the OS (0 where unsupported).
	// Recorded for trend inspection, not gated: RSS folds in the Go
	// heap target, fixture construction and the runner's page cache
	// behaviour, which vary across environments.
	PeakRSSKB int64 `json:"peak_rss_kb"`
}

// calibrate runs a fixed workload with the same resource profile as
// the engines under test — string rendering, map building and probing,
// slice sorting, allocation — but none of their code. Matching the
// profile matters: a pure register-resident loop would not slow down
// when the machine's memory subsystem is contended, so normalizing
// memory-bound engine times by it would swing with ambient load
// instead of cancelling it.
func calibrate() error {
	const n = 4096
	keys := make([]string, 0, n)
	m := make(map[string]int, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("cal(%d,%d)", i%64, i)
		keys = append(keys, k)
		m[k] = i
	}
	sort.Strings(keys)
	h := 0
	for _, k := range keys {
		h += m[k]
	}
	if h < 0 { // keep the workload observable
		fmt.Fprintln(io.Discard, h)
	}
	return nil
}

// minOver returns the minimum per-repetition duration and heap
// allocation count over n blocks of reps back-to-back runs of f. A GC
// runs before each block so one block's leftover garbage is not billed
// to the next; within a block the measured path pays for its own
// allocations. Durations and allocation counts take their minima
// independently: the minimum allocation block is the run least
// polluted by background goroutines, and the measured path's own
// allocations are identical across blocks.
func minOver(n, reps int, f func() error) (time.Duration, int64, error) {
	var best time.Duration
	var bestAllocs int64
	var ms runtime.MemStats
	for i := 0; i < n; i++ {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		startMallocs := ms.Mallocs
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			if err := f(); err != nil {
				return 0, 0, err
			}
		}
		d := time.Since(start) / time.Duration(reps)
		runtime.ReadMemStats(&ms)
		allocs := int64(ms.Mallocs-startMallocs) / int64(reps)
		if i == 0 || d < best {
			best = d
		}
		if i == 0 || allocs < bestAllocs {
			bestAllocs = allocs
		}
	}
	return best, bestAllocs, nil
}

// runGateMeasure produces the gate measurements at the given
// parallelism.
func runGateMeasure(par int) (*gateResult, error) {
	calib, _, err := minOver(gateRounds, gateBlockReps, calibrate)
	if err != nil {
		return nil, err
	}

	// B5 grounding, facts=100: program built once, grounding timed.
	s5 := workload.ReferentialShaped(1, 2, 100, 1)
	prog, _, err := program.BuildDirect(s5, "P")
	if err != nil {
		return nil, err
	}
	unfolded, err := lp.UnfoldChoice(prog)
	if err != nil {
		return nil, err
	}
	b5, b5Allocs, err := minOver(gateRounds, gateBlockReps, func() error {
		_, e := ground.GroundOpt(unfolded, ground.Options{Parallelism: par})
		return e
	})
	if err != nil {
		return nil, err
	}

	// B1 repair-engine PCA, n=40.
	s1 := workload.Example1Shaped(40, 3, 2, 1)
	q := foquery.MustParse("r1(X,Y)")
	b1, b1Allocs, err := minOver(gateRounds, gateBlockReps, func() error {
		_, e := core.PeerConsistentAnswers(s1, "P1", q, []string{"X", "Y"}, core.SolveOptions{Parallelism: par})
		return e
	})
	if err != nil {
		return nil, err
	}

	// B9 sliced wide-universe PCA: slice computation plus the
	// slice-restricted answering over the in-process system (the
	// network-independent cost of the sliced pipeline).
	s9 := workload.WideUniverse(8, 3, 40, 2, 1)
	q9 := foquery.MustParse("q0(X,Y)")
	b9, b9Allocs, err := minOver(gateRounds, gateBlockReps, func() error {
		sl, e := slice.ForQuery(s9, "P0", q9, false)
		if e != nil {
			return e
		}
		_, e = core.PeerConsistentAnswers(s9, "P0", q9, []string{"X", "Y"}, core.SolveOptions{
			Parallelism:  par,
			KeepDep:      sl.KeepDep,
			RelevantRels: sl.RelevantRels(),
		})
		return e
	})
	if err != nil {
		return nil, err
	}

	// B10 localized scattered-conflict CQA, k=8: conflict-graph
	// decomposition, per-component searches and the single-component
	// answer intersection (the localized hot path end to end).
	s10 := workload.ScatteredConflicts(8, 20, 1)
	p10, _ := s10.Peer("A")
	deps10 := p10.DECs["B"]
	inst10 := s10.Global()
	q10 := foquery.MustParse("ra0(X,Y)")
	b10, b10Allocs, err := minOver(gateRounds, gateBlockReps, func() error {
		_, e := repair.ConsistentAnswers(inst10.Clone(), deps10, q10, []string{"X", "Y"}, repair.Options{Parallelism: par})
		return e
	})
	if err != nil {
		return nil, err
	}

	// B11 delegated answering on the fanout workload over a zero-latency
	// in-process overlay: spec snapshot, delegation plan, OpPCA fan-out
	// and the composed solve (the delegated hot path without network
	// delay). The overlay is deployed once; the measured path includes
	// the delegates serving their (slice-keyed, warm after the first
	// round) answer caches, matching a long-lived node's steady state.
	s11 := workload.DelegationFanout(3, 20, 4, 40, 1)
	ip11 := peernet.NewInProc()
	nodes11 := map[core.PeerID]*peernet.Node{}
	for _, id := range s11.Peers() {
		p, _ := s11.Peer(id)
		n := peernet.NewNode(p, ip11, nil)
		n.Parallelism = par
		if err := n.Start(":0"); err != nil {
			return nil, err
		}
		defer n.Stop()
		nodes11[id] = n
	}
	for _, n := range nodes11 {
		for _, m := range nodes11 {
			if n != m {
				n.SetNeighbor(m.Peer.ID, m.BoundAddr())
			}
		}
	}
	q11 := foquery.MustParse("r0(X,Y)")
	b11, b11Allocs, err := minOver(gateRounds, gateBlockReps, func() error {
		_, info, e := nodes11["P0"].DelegatedAnswersInfo(q11, []string{"X", "Y"}, true)
		if e == nil && !info.Delegated {
			return fmt.Errorf("B11 gate workload should delegate, fell back: %s", info.Reason)
		}
		return e
	})
	if err != nil {
		return nil, err
	}

	// B12 large-universe repair+answer: CQA over the columnar memory
	// plane at 20k core facts plus bulk bystander relations — the
	// million-tuple-universe hot path at a gate-friendly scale. The
	// per-op clone is COW (shared column segments), so the measured
	// path is the repair search and answer intersection, not setup.
	s12 := workload.LargeUniverse(20000, 4, 4, 500, 1)
	inst12 := s12.Global()
	p12, _ := s12.Peer("P0")
	deps12 := p12.DECs["PK"]
	q12 := foquery.MustParse("q0(c0,Y)")
	b12, b12Allocs, err := minOver(gateRounds, gateB12Reps, func() error {
		_, e := repair.ConsistentAnswers(inst12.Clone(), deps12, q12, []string{"Y"}, repair.Options{Parallelism: par})
		return e
	})
	if err != nil {
		return nil, err
	}

	// B13 serving plane: one sequential client replays the mixed
	// read/write stream of the sustained-throughput benchmark through a
	// serve.Server over a warm in-process overlay — the admission path,
	// the snapshot/fingerprint/answer-cache bookkeeping of AnswerQuery
	// and the UpdateLocal write path. The stream's writes re-insert the
	// same facts on every replay (idempotent keys), so after the first
	// pass the fingerprints are stable and the minimum block measures
	// the warm steady state.
	s13 := workload.WideUniverse(4, 2, 12, 1, 1)
	ip13 := peernet.NewInProc()
	nodes13 := map[core.PeerID]*peernet.Node{}
	for _, id := range s13.Peers() {
		p, _ := s13.Peer(id)
		n := peernet.NewNode(p, ip13, nil)
		n.Parallelism = par
		if err := n.Start(":0"); err != nil {
			return nil, err
		}
		defer n.Stop()
		nodes13[id] = n
	}
	for _, n := range nodes13 {
		for _, m := range nodes13 {
			if n != m {
				n.SetNeighbor(m.Peer.ID, m.BoundAddr())
			}
		}
	}
	nodes13["P0"].CacheTTL = time.Hour
	srv13 := serve.New(nodes13["P0"], serve.Config{MaxConcurrent: 1, QueryParallelism: par})
	stream13 := workload.MixedStream(4, 2, 60, 6, 1)
	parsed13 := map[string]foquery.Formula{}
	for _, op := range stream13 {
		if !op.Write {
			if _, ok := parsed13[op.Query]; !ok {
				parsed13[op.Query] = foquery.MustParse(op.Query)
			}
		}
	}
	b13, b13Allocs, err := minOver(gateRounds, gateBlockReps, func() error {
		for _, op := range stream13 {
			if op.Write {
				if op.Peer == "P0" {
					if e := srv13.Write(op.Rel, op.Tuple); e != nil {
						return e
					}
					continue
				}
				nodes13[op.Peer].UpdateLocal(func(p *core.Peer) {
					p.Inst.Insert(op.Rel, relation.Tuple(op.Tuple))
				})
				continue
			}
			if _, e := srv13.Answer(parsed13[op.Query], op.Vars, false); e != nil {
				return e
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// B14 incremental maintenance: a reversible churn loop over a warm
	// ChurnUniverse deployment — every iteration lands one relevant
	// single-fact write (the ra0 slice fingerprint moves) and re-asks
	// the hot query, which the incremental layer answers by patching
	// its live series instead of recomputing. The second half deletes
	// the same facts, so every block starts from identical data and the
	// journal delta never outruns its buffer.
	d14, err := newChurnDeployment(6, 120, 1, false)
	if err != nil {
		return nil, err
	}
	defer d14.stop()
	for _, n := range d14.nodes {
		n.Parallelism = par
	}
	q14 := foquery.MustParse("ra0(X,Y)")
	vars14 := []string{"X", "Y"}
	if _, err := d14.root.AnswerQuery(q14, vars14, peernet.QueryOptions{}); err != nil {
		return nil, err
	}
	const b14Steps = 10
	b14, b14Allocs, err := minOver(gateRounds, gateB14Reps, func() error {
		for phase := 0; phase < 2; phase++ {
			for s := 0; s < b14Steps; s++ {
				rel := fmt.Sprintf("ra%d", 1+s%5)
				tup := relation.Tuple{fmt.Sprintf("g%d", s), "v"}
				d14.nodes["A"].UpdateLocal(func(p *core.Peer) {
					if phase == 0 {
						p.Inst.Insert(rel, tup)
					} else {
						p.Inst.Delete(rel, tup)
					}
				})
				if _, e := d14.root.AnswerQuery(q14, vars14, peernet.QueryOptions{}); e != nil {
					return e
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if patched, seeded, fallbacks := d14.root.IncrStats(); patched == 0 {
		return nil, fmt.Errorf("B14 gate loop never patched (seeded=%d fallbacks=%d) — measuring the wrong path", seeded, fallbacks)
	}

	return &gateResult{
		Parallelism: par,
		CalibNS:     calib.Nanoseconds(),
		B5GroundNS:  b5.Nanoseconds(),
		B1RepairNS:  b1.Nanoseconds(),
		B9SlicedNS:  b9.Nanoseconds(),
		B10LocalNS:  b10.Nanoseconds(),
		B11DelegNS:  b11.Nanoseconds(),
		B12LargeNS:  b12.Nanoseconds(),
		B13ServeNS:  b13.Nanoseconds(),
		B14ChurnNS:  b14.Nanoseconds(),
		B5Norm:      float64(b5.Nanoseconds()) / float64(calib.Nanoseconds()),
		B1Norm:      float64(b1.Nanoseconds()) / float64(calib.Nanoseconds()),
		B9Norm:      float64(b9.Nanoseconds()) / float64(calib.Nanoseconds()),
		B10Norm:     float64(b10.Nanoseconds()) / float64(calib.Nanoseconds()),
		B11Norm:     float64(b11.Nanoseconds()) / float64(calib.Nanoseconds()),
		B12Norm:     float64(b12.Nanoseconds()) / float64(calib.Nanoseconds()),
		B13Norm:     float64(b13.Nanoseconds()) / float64(calib.Nanoseconds()),
		B14Norm:     float64(b14.Nanoseconds()) / float64(calib.Nanoseconds()),
		B5AllocsOp:  b5Allocs,
		B1AllocsOp:  b1Allocs,
		B9AllocsOp:  b9Allocs,
		B10AllocsOp: b10Allocs,
		B11AllocsOp: b11Allocs,
		B12AllocsOp: b12Allocs,
		B13AllocsOp: b13Allocs,
		B14AllocsOp: b14Allocs,
		PeakRSSKB:   peakRSSKB(),
	}, nil
}

// gateCompare fails (non-nil error) when a normalized metric regressed
// by more than threshold (0.25 = 25%) against the baseline.
func gateCompare(w io.Writer, cur, base *gateResult, threshold float64) error {
	check := func(name string, curV, baseV float64) error {
		ratio := curV / baseV
		fmt.Fprintf(w, "gate %-22s baseline=%.3f current=%.3f ratio=%.2f (limit %.2f)\n",
			name, baseV, curV, ratio, 1+threshold)
		if ratio > 1+threshold {
			return fmt.Errorf("p2pbench: %s regressed %.0f%% (normalized %.3f -> %.3f, limit %.0f%%)",
				name, (ratio-1)*100, baseV, curV, threshold*100)
		}
		return nil
	}
	if err := check("B5 grounding facts=100", cur.B5Norm, base.B5Norm); err != nil {
		return err
	}
	if err := check("B1 repair n=40", cur.B1Norm, base.B1Norm); err != nil {
		return err
	}
	// Baselines written before a metric existed carry no figure for it;
	// skip rather than divide by zero.
	if base.B9Norm > 0 {
		if err := check("B9 sliced wide-universe", cur.B9Norm, base.B9Norm); err != nil {
			return err
		}
	}
	if base.B10Norm > 0 {
		if err := check("B10 localized scattered", cur.B10Norm, base.B10Norm); err != nil {
			return err
		}
	}
	if base.B11Norm > 0 {
		if err := check("B11 delegated fanout", cur.B11Norm, base.B11Norm); err != nil {
			return err
		}
	}
	if base.B12Norm > 0 {
		if err := check("B12 large universe", cur.B12Norm, base.B12Norm); err != nil {
			return err
		}
	}
	if base.B13Norm > 0 {
		if err := check("B13 serving stream", cur.B13Norm, base.B13Norm); err != nil {
			return err
		}
	}
	if base.B14Norm > 0 {
		if err := check("B14 churn incremental", cur.B14Norm, base.B14Norm); err != nil {
			return err
		}
	}
	// Allocation gates: counts, not times, so no calibration — the
	// ratio is machine-independent and tight by nature. The same
	// threshold applies; a path that suddenly allocates 25% more per
	// op has lost a buffer reuse somewhere.
	for _, m := range []struct {
		name      string
		cur, base int64
	}{
		{"B5 grounding allocs/op", cur.B5AllocsOp, base.B5AllocsOp},
		{"B1 repair allocs/op", cur.B1AllocsOp, base.B1AllocsOp},
		{"B9 sliced allocs/op", cur.B9AllocsOp, base.B9AllocsOp},
		{"B10 localized allocs/op", cur.B10AllocsOp, base.B10AllocsOp},
		{"B11 delegated allocs/op", cur.B11AllocsOp, base.B11AllocsOp},
		{"B12 large-universe allocs/op", cur.B12AllocsOp, base.B12AllocsOp},
		{"B13 serving allocs/op", cur.B13AllocsOp, base.B13AllocsOp},
		{"B14 churn allocs/op", cur.B14AllocsOp, base.B14AllocsOp},
	} {
		if m.base <= 0 {
			continue
		}
		if err := check(m.name, float64(m.cur), float64(m.base)); err != nil {
			return err
		}
	}
	return nil
}

// runGate is the -gate / -gate-out entry point: measure, optionally
// write BENCH_gate.json, optionally compare against a baseline file.
func runGate(w io.Writer, outPath, baselinePath string, threshold float64, par int) error {
	cur, err := runGateMeasure(par)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "gate measured: calib=%v b5-ground=%v b1-repair=%v b9-sliced=%v b10-localized=%v b11-delegated=%v b12-large=%v b13-serve=%v b14-churn=%v (parallelism=%d, min of %d)\n",
		time.Duration(cur.CalibNS), time.Duration(cur.B5GroundNS), time.Duration(cur.B1RepairNS),
		time.Duration(cur.B9SlicedNS), time.Duration(cur.B10LocalNS), time.Duration(cur.B11DelegNS),
		time.Duration(cur.B12LargeNS), time.Duration(cur.B13ServeNS), time.Duration(cur.B14ChurnNS), par, gateRounds)
	fmt.Fprintf(w, "gate allocs/op: b5=%d b1=%d b9=%d b10=%d b11=%d b12=%d b13=%d b14=%d peak-rss=%dKB\n",
		cur.B5AllocsOp, cur.B1AllocsOp, cur.B9AllocsOp, cur.B10AllocsOp, cur.B11AllocsOp,
		cur.B12AllocsOp, cur.B13AllocsOp, cur.B14AllocsOp, cur.PeakRSSKB)
	if outPath != "" {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "gate wrote %s\n", outPath)
	}
	if baselinePath == "" {
		return nil
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base gateResult
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("p2pbench: bad baseline %s: %v", baselinePath, err)
	}
	if base.Parallelism != cur.Parallelism {
		return fmt.Errorf("p2pbench: baseline was measured at parallelism=%d, current at %d; incomparable",
			base.Parallelism, cur.Parallelism)
	}
	if err := gateCompare(w, cur, &base, threshold); err != nil {
		// One retry: a co-tenant noise burst during the measurement
		// window can push a normalized metric past the limit; a real
		// regression fails the fresh measurement too.
		fmt.Fprintf(w, "gate failed, re-measuring once: %v\n", err)
		cur, err = runGateMeasure(par)
		if err != nil {
			return err
		}
		return gateCompare(w, cur, &base, threshold)
	}
	return nil
}
