package main

import (
	"fmt"
	"io"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/peernet"
	"repro/internal/relation"
	"repro/internal/serve"
	"repro/internal/workload"
)

// runB13 measures the serving plane under sustained mixed load: a
// serve.Server over a WideUniverse overlay answers an interleaved
// read/write stream from concurrent clients. Three properties are
// checked while measuring: a write is visible to the very next query
// (no TTL staleness window on the served peer), the served answers are
// byte-identical to a one-shot uncached node, and in-flight coalescing
// measurably reduces solver invocations against an uncoalesced burst.
func runB13(w io.Writer) error {
	const width, relsPer, facts, conflicts = 6, 2, 16, 1
	const clients, streamOps, writeEvery = 4, 400, 8
	sys := workload.WideUniverse(width, relsPer, facts, conflicts, 1)
	ip := peernet.NewInProc()
	ip.Latency = 100 * time.Microsecond
	nodes := map[core.PeerID]*peernet.Node{}
	for _, id := range sys.Peers() {
		p, _ := sys.Peer(id)
		n := peernet.NewNode(p, ip, nil)
		n.Parallelism = benchParallelism
		if err := n.Start(":0"); err != nil {
			return err
		}
		defer n.Stop()
		nodes[id] = n
	}
	for _, n := range nodes {
		for _, m := range nodes {
			if n != m {
				n.SetNeighbor(m.Peer.ID, m.Addr)
			}
		}
	}
	root := nodes["P0"]
	root.CacheTTL = time.Minute
	srv := serve.New(root, serve.Config{MaxConcurrent: clients, MaxQueue: 4 * clients})
	vars := []string{"X", "Y"}
	q := foquery.MustParse("q0(X,Y)")

	// Write visibility: a fact written through the server must be a
	// certain answer of the immediately following query (fresh key, so
	// it joins no conflict).
	before, err := srv.Answer(q, vars, false)
	if err != nil {
		return err
	}
	if err := srv.Write("q0", []string{"vis_key", "vis_val"}); err != nil {
		return err
	}
	after, err := srv.Answer(q, vars, false)
	if err != nil {
		return err
	}
	if len(after) != len(before)+1 {
		return fmt.Errorf("write visibility: %d answers after write, want %d", len(after), len(before)+1)
	}
	visible := false
	for _, t := range after {
		if t.Equal(relation.Tuple{"vis_key", "vis_val"}) {
			visible = true
		}
	}
	if !visible {
		return fmt.Errorf("write visibility: written fact missing from the next query's answers")
	}

	// Sustained mixed stream: concurrent clients drain a deterministic
	// interleaved read/write schedule through the server.
	stream := workload.MixedStream(width, relsPer, streamOps, writeEvery, 2)
	parsed := map[string]foquery.Formula{}
	for _, op := range stream {
		if !op.Write {
			if _, ok := parsed[op.Query]; !ok {
				parsed[op.Query] = foquery.MustParse(op.Query)
			}
		}
	}
	var next atomic.Int64
	errs := make(chan error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stream) {
					return
				}
				op := stream[i]
				if op.Write {
					if op.Peer == root.Peer.ID {
						if err := srv.Write(op.Rel, op.Tuple); err != nil {
							errs <- err
							return
						}
					} else {
						nodes[op.Peer].UpdateLocal(func(p *core.Peer) {
							p.Inst.Insert(op.Rel, relation.Tuple(op.Tuple))
						})
					}
					continue
				}
				if _, err := srv.Answer(parsed[op.Query], op.Vars, false); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return fmt.Errorf("stream client: %w", err)
	default:
	}

	reg := srv.Registry()
	queries := reg.Counter("serve_queries_total").Value()
	lat := reg.Histogram("serve_query_latency")
	hits, misses := root.AnswerCacheStats()
	leaders, coalesced := root.CoalesceStats()
	fmt.Fprintf(w, "stream: %d ops (%d queries, %d writes) over %d clients in %v\n",
		len(stream), queries-2, srv.Registry().Counter("serve_writes_total").Value(), clients, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "stream: qps=%.0f p50=%v p99=%v shed=%d\n",
		float64(queries)/elapsed.Seconds(), lat.Quantile(0.50).Round(time.Microsecond),
		lat.Quantile(0.99).Round(time.Microsecond), reg.Counter("serve_shed_total").Value())
	fmt.Fprintf(w, "stream: answer cache hits=%d misses=%d; coalesce leaders=%d coalesced=%d; solver runs=%d\n",
		hits, misses, leaders, coalesced, root.SolverRuns())

	// Byte-identity: on the quiesced system every stream query answered
	// by the server must equal a fresh uncached node's one-shot answer.
	freshPeer := root.Peer
	fresh := peernet.NewNode(freshPeer, ip, nil)
	if err := fresh.Start(":0"); err != nil {
		return err
	}
	defer fresh.Stop()
	for _, m := range nodes {
		if m != root {
			fresh.SetNeighbor(m.Peer.ID, m.Addr)
		}
	}
	fresh.Parallelism = benchParallelism
	for text, f := range parsed {
		var qvars []string
		for _, op := range stream {
			if op.Query == text {
				qvars = op.Vars
				break
			}
		}
		served, err := srv.Answer(f, qvars, false)
		if err != nil {
			return err
		}
		oneShot, err := fresh.PeerConsistentAnswersFor(f, qvars, false)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(served, oneShot) {
			return fmt.Errorf("byte-identity: served %s = %v, one-shot = %v", text, served, oneShot)
		}
	}
	fmt.Fprintf(w, "identity: %d query shapes byte-identical to one-shot uncached answering\n", len(parsed))

	// Coalescing A/B: a burst of identical queries against a cold key.
	// With coalescing the burst needs ~1 solver run; without it every
	// concurrently admitted query computes. The TTL caches are disabled
	// and the transport latency raised for this phase, so each query
	// pays a multi-millisecond snapshot before its cache lookup and the
	// admitted queries genuinely overlap (the system is quiesced between
	// phases, so the field writes do not race any Call). The burst
	// starts behind a gate. The uncoalesced count is still
	// scheduling-dependent (late arrivals hit the answer cache), so the
	// comparison retries a few times before giving up.
	const burst = 16
	ip.Latency = 2 * time.Millisecond
	root.CacheTTL = 0
	// Bulk-load the root relation first, so one solve takes tens of
	// milliseconds: the burst's concurrent cache misses then genuinely
	// overlap the leader's compute instead of racing its Put by
	// microseconds.
	root.UpdateLocal(func(p *core.Peer) {
		for i := 0; i < 4000; i++ {
			p.Inst.Insert("q0", relation.Tuple{fmt.Sprintf("bulk%d", i), "v"})
		}
	})
	runBurst := func(tag string) (int64, error) {
		if err := srv.Write("q0", []string{"ab_" + tag, "v"}); err != nil {
			return 0, err
		}
		runsBefore := root.SolverRuns()
		gate := make(chan struct{})
		var bwg sync.WaitGroup
		berrs := make(chan error, burst)
		for i := 0; i < burst; i++ {
			bwg.Add(1)
			go func() {
				defer bwg.Done()
				<-gate
				if _, err := srv.Answer(q, vars, false); err != nil {
					berrs <- err
				}
			}()
		}
		close(gate)
		bwg.Wait()
		select {
		case err := <-berrs:
			return 0, err
		default:
		}
		return root.SolverRuns() - runsBefore, nil
	}
	var runsOn, runsOff int64
	for attempt := 0; attempt < 3; attempt++ {
		root.NoCoalesce = false
		on, err := runBurst(fmt.Sprintf("on%d", attempt))
		if err != nil {
			return err
		}
		root.NoCoalesce = true
		off, err := runBurst(fmt.Sprintf("off%d", attempt))
		if err != nil {
			return err
		}
		root.NoCoalesce = false
		runsOn, runsOff = on, off
		if runsOn < runsOff {
			break
		}
	}
	fmt.Fprintf(w, "coalescing: burst of %d identical queries -> solver runs %d coalesced vs %d uncoalesced\n",
		burst, runsOn, runsOff)
	if runsOn >= runsOff {
		return fmt.Errorf("coalescing did not reduce solver invocations: %d on vs %d off", runsOn, runsOff)
	}
	return nil
}
