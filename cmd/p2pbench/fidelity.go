package main

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/lp"
	"repro/internal/lp/ground"
	"repro/internal/lp/solve"
	"repro/internal/program"
	"repro/internal/rewrite"
)

// runE1 reproduces Example 1: the two solutions r' and r” for P1.
func runE1(w io.Writer) error {
	s := core.Example1System()
	fmt.Fprintf(w, "global instance r = %s\n", s.Global())
	sols, err := core.SolutionsFor(s, "P1", core.SolveOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "solutions for P1 (paper: exactly r' and r''):\n")
	for i, sol := range sols {
		fmt.Fprintf(w, "  S%d = %s\n", i+1, sol)
	}
	fmt.Fprintf(w, "paper-expected count: 2, measured: %d\n", len(sols))
	return nil
}

// runE2 reproduces Example 2: formula (1) and the PCAs
// (a,b), (c,d), (a,e) via all three engines.
func runE2(w io.Writer) error {
	s := core.Example1System()
	f, err := rewrite.RewriteAtom(s, "P1", "r1", []string{"X", "Y"}, rewrite.Options{PaperGuard: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "paper formula (1): %s\n", f)
	q := foquery.MustParse("r1(X,Y)")
	semantic, err := core.PeerConsistentAnswers(s, "P1", q, []string{"X", "Y"}, core.SolveOptions{})
	if err != nil {
		return err
	}
	viaLP, err := program.PeerConsistentAnswersViaLP(s, "P1", q, []string{"X", "Y"}, program.RunOptions{})
	if err != nil {
		return err
	}
	viaRW, err := rewrite.PCAByRewriting(s, "P1", "r1", []string{"X", "Y"}, rewrite.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "PCAs (paper: (a,b),(c,d),(a,e))\n")
	fmt.Fprintf(w, "  Definition 4/5 engine : %v\n", semantic)
	fmt.Fprintf(w, "  ASP engine            : %v\n", viaLP)
	fmt.Fprintf(w, "  rewriting engine      : %v\n", viaRW)
	return nil
}

// runE3 prints the Section 3.1 specification program and its answer
// sets / solutions.
func runE3(w io.Writer) error {
	s := core.Section31System()
	prog, _, err := program.BuildDirect(s, "P")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "specification program (rules (4)-(9) pattern):\n")
	indent(w, prog.String())
	models, err := program.Solve(prog, program.RunOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "answer sets: %d (paper: 4 = 2 choices x 2 disjuncts)\n", len(models))
	sols, err := program.SolutionsViaLP(s, "P", program.RunOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "distinct solutions: %d (delete, insert e, insert f)\n", len(sols))
	for i, sol := range sols {
		fmt.Fprintf(w, "  S%d = %s\n", i+1, sol)
	}
	return nil
}

// runE4 reproduces Example 3: the choice-free program is HCF, so the
// disjunctive rule can be shifted; solutions are unchanged.
func runE4(w io.Writer) error {
	s := core.Section31System()
	prog, _, err := program.BuildDirect(s, "P")
	if err != nil {
		return err
	}
	stripped := lp.StripChoice(prog)
	fmt.Fprintf(w, "choice-free program is predicate-level HCF: %v (paper: yes)\n", lp.PredHCF(stripped))

	unfolded, err := lp.UnfoldChoice(prog)
	if err != nil {
		return err
	}
	g, err := ground.Ground(unfolded)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ground program HCF: %v\n", solve.HCF(g))

	shifted := lp.ShiftProgram(prog)
	fmt.Fprintf(w, "shifted rule (9) into two normal rules (Example 3):\n")
	for _, r := range shifted.Rules {
		if len(r.Choice) > 0 {
			indent(w, r.String())
		}
	}

	plain, err := program.SolutionsViaLP(s, "P", program.RunOptions{})
	if err != nil {
		return err
	}
	sh, err := program.SolutionsViaLP(s, "P", program.RunOptions{UseShift: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "solutions (disjunctive) = %d, solutions (shifted) = %d, equal = %v\n",
		len(plain), len(sh), sameKeys(plain, sh))
	return nil
}

// runE5 reproduces the appendix: the generic LAV compiler on the
// Section 3.1 system yields four stable models (M1-M4) whose tss
// projections are the paper's solutions.
func runE5(w io.Writer) error {
	s := core.Section31System()
	prog, naming, err := program.BuildLAV(s, "P")
	if err != nil {
		return err
	}
	models, err := program.Solve(prog, program.RunOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "stable models: %d (paper: M1-M4)\n", len(models))
	for i, m := range models {
		var tss []string
		for _, k := range m {
			if strings.HasSuffix(k, ",tss)") {
				tss = append(tss, k)
			}
		}
		fmt.Fprintf(w, "  M%d tss-projection: {%s}\n", i+1, strings.Join(tss, ", "))
	}
	sols, err := program.ModelsToSolutionsLAV(s, naming, models)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "distinct solutions: %d (paper: rM2 = rM4, so 3)\n", len(sols))
	return nil
}

// runE6 reproduces Example 4: the combined program of P, Q, C.
func runE6(w io.Writer) error {
	s := core.Example4System()
	direct, err := program.SolutionsViaLP(s, "P", program.RunOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "direct solutions for P: %d (DEC vacuously satisfied)\n", len(direct))
	prog, _, err := program.BuildTransitive(s, "P")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "combined program (Section 4.3 / rules (10)-(13) pattern):\n")
	indent(w, prog.String())
	trans, err := program.SolutionsViaLP(s, "P", program.RunOptions{Transitive: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "transitive solutions: %d (paper: r1, r2, r3)\n", len(trans))
	for i, sol := range trans {
		fmt.Fprintf(w, "  S%d = %s\n", i+1, sol)
	}
	return nil
}

// runE7 contrasts the two local-IC treatments of Section 3.2.
func runE7(w io.Writer) error {
	s := section31WithFD()
	pruned, err := program.SolutionsViaLP(s, "P", program.RunOptions{})
	if err != nil {
		return err
	}
	repaired, err := core.SolutionsFor(s, "P", core.SolveOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "local FD on r2, with r2 = {(a,g)} pre-existing:\n")
	fmt.Fprintf(w, "  denial-constraint layer (paper option 1): %d solution(s)\n", len(pruned))
	for _, sol := range pruned {
		fmt.Fprintf(w, "    %s\n", sol)
	}
	fmt.Fprintf(w, "  repair layer (paper option 2 / Def. 4(a)): %d solution(s)\n", len(repaired))
	for _, sol := range repaired {
		fmt.Fprintf(w, "    %s\n", sol)
	}
	return nil
}

func indent(w io.Writer, text string) {
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		fmt.Fprintf(w, "    %s\n", line)
	}
}
