package main

// Benchmarks mirroring the regression-gate measurements (gate.go), so
// the gated paths can be profiled with the standard tooling:
//
//	go test -bench GateB5 -cpuprofile cpu.prof ./cmd/p2pbench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/lp"
	"repro/internal/lp/ground"
	"repro/internal/program"
	"repro/internal/slice"
	"repro/internal/workload"
)

func BenchmarkGateB5(b *testing.B) {
	s5 := workload.ReferentialShaped(1, 2, 100, 1)
	prog, _, err := program.BuildDirect(s5, "P")
	if err != nil {
		b.Fatal(err)
	}
	unfolded, err := lp.UnfoldChoice(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ground.GroundOpt(unfolded, ground.Options{Parallelism: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGateB1(b *testing.B) {
	s1 := workload.Example1Shaped(40, 3, 2, 1)
	q := foquery.MustParse("r1(X,Y)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PeerConsistentAnswers(s1, "P1", q, []string{"X", "Y"}, core.SolveOptions{Parallelism: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGateB9Sliced(b *testing.B) {
	s9 := workload.WideUniverse(8, 3, 40, 2, 1)
	q9 := foquery.MustParse("q0(X,Y)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sl, err := slice.ForQuery(s9, "P0", q9, false)
		if err != nil {
			b.Fatal(err)
		}
		_, err = core.PeerConsistentAnswers(s9, "P0", q9, []string{"X", "Y"}, core.SolveOptions{
			Parallelism:  1,
			KeepDep:      sl.KeepDep,
			RelevantRels: sl.RelevantRels(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
