//go:build !linux

package main

// peakRSSKB reports 0 on platforms without a portable peak-RSS source;
// the gate records the figure for inspection only, so absence is safe.
func peakRSSKB() int64 { return 0 }
