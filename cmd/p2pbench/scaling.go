package main

import (
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/lp"
	"repro/internal/lp/ground"
	"repro/internal/lp/solve"
	"repro/internal/parallel"
	"repro/internal/peernet"
	"repro/internal/program"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/rewrite"
	"repro/internal/workload"
)

func timed(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// timedAllocs is timed plus the run's heap allocation count (Mallocs
// delta). A GC runs first so the measured path pays only for its own
// garbage.
func timedAllocs(f func() error) (time.Duration, int64, error) {
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	startMallocs := ms.Mallocs
	start := time.Now()
	err := f()
	d := time.Since(start)
	runtime.ReadMemStats(&ms)
	return d, int64(ms.Mallocs - startMallocs), err
}

// runB1 measures PCA latency vs instance size for the three engines on
// Example-1-shaped systems with a fixed number of conflicts. The
// repair-par column runs the repair engine with the -parallelism
// worker pool (results are checked identical to the sequential run).
func runB1(w io.Writer) error {
	par := benchParallelism
	fmt.Fprintf(w, "%-8s %-12s %-12s %-12s %-12s\n", "facts", "rewrite", "lp", "repair", "repair-par")
	for _, n := range []int{5, 10, 20, 40} {
		s := workload.Example1Shaped(n, 3, 2, 1)
		q := foquery.MustParse("r1(X,Y)")
		dRW, err := timed(func() error {
			_, e := rewrite.PCAByRewriting(s, "P1", "r1", []string{"X", "Y"}, rewrite.Options{})
			return e
		})
		if err != nil {
			return err
		}
		dLP, err := timed(func() error {
			_, e := program.PeerConsistentAnswersViaLP(s, "P1", q, []string{"X", "Y"}, program.RunOptions{})
			return e
		})
		if err != nil {
			return err
		}
		var seq []relation.Tuple
		dRep, err := timed(func() error {
			var e error
			seq, e = core.PeerConsistentAnswers(s, "P1", q, []string{"X", "Y"}, core.SolveOptions{Parallelism: 1})
			return e
		})
		if err != nil {
			return err
		}
		var parAns []relation.Tuple
		dPar, err := timed(func() error {
			var e error
			parAns, e = core.PeerConsistentAnswers(s, "P1", q, []string{"X", "Y"}, core.SolveOptions{Parallelism: par})
			return e
		})
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(parAns, seq) {
			return fmt.Errorf("parallel repair disagrees at n=%d: %v vs %v", n, parAns, seq)
		}
		fmt.Fprintf(w, "%-8d %-12v %-12v %-12v %-12v\n", n, dRW, dLP, dRep, dPar)
	}
	fmt.Fprintf(w, "expected shape: rewriting polynomial and fastest as n grows;\n")
	fmt.Fprintf(w, "repair enumeration dominated by the number of solutions, not n;\n")
	fmt.Fprintf(w, "repair-par tracks repair/min(cores, solutions) on multi-core.\n")
	return nil
}

// runB2 shows the 2^k growth of solutions with independent conflicts.
func runB2(w io.Writer) error {
	fmt.Fprintf(w, "%-10s %-10s %-10s %-12s %-12s\n", "conflicts", "expected", "solutions", "lp-time", "repair-time")
	for _, k := range []int{1, 2, 3, 4, 5} {
		s := workload.IndependentConflicts(k)
		var nLP int
		dLP, err := timed(func() error {
			sols, e := program.SolutionsViaLP(s, "A", program.RunOptions{})
			nLP = len(sols)
			return e
		})
		if err != nil {
			return err
		}
		var nRep int
		dRep, err := timed(func() error {
			sols, e := core.SolutionsFor(s, "A", core.SolveOptions{})
			nRep = len(sols)
			return e
		})
		if err != nil {
			return err
		}
		if nLP != nRep {
			return fmt.Errorf("engines disagree at k=%d: %d vs %d", k, nLP, nRep)
		}
		fmt.Fprintf(w, "%-10d %-10d %-10d %-12v %-12v\n", k, 1<<k, nLP, dLP, dRep)
	}
	fmt.Fprintf(w, "expected shape: solutions double per conflict (Pi^p_2 blow-up).\n")
	return nil
}

// runB3 finds the crossover between the engines as conflicts grow with
// fixed clean data.
func runB3(w io.Writer) error {
	fmt.Fprintf(w, "%-10s %-12s %-12s %-12s\n", "conflicts", "rewrite", "lp", "repair")
	for _, k := range []int{1, 2, 3, 4} {
		s := workload.Example1Shaped(10, 2, k, 1)
		q := foquery.MustParse("r1(X,Y)")
		dRW, err := timed(func() error {
			_, e := rewrite.PCAByRewriting(s, "P1", "r1", []string{"X", "Y"}, rewrite.Options{})
			return e
		})
		if err != nil {
			return err
		}
		dLP, err := timed(func() error {
			_, e := program.PeerConsistentAnswersViaLP(s, "P1", q, []string{"X", "Y"}, program.RunOptions{})
			return e
		})
		if err != nil {
			return err
		}
		dRep, err := timed(func() error {
			_, e := core.PeerConsistentAnswers(s, "P1", q, []string{"X", "Y"}, core.SolveOptions{})
			return e
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10d %-12v %-12v %-12v\n", k, dRW, dLP, dRep)
	}
	fmt.Fprintf(w, "expected shape: rewrite flat in k; lp and repair grow with 2^k.\n")
	return nil
}

// runB4 compares disjunctive solving against HCF-shifted solving
// (Section 4.1's optimization).
func runB4(w io.Writer) error {
	fmt.Fprintf(w, "%-10s %-14s %-14s %-8s\n", "conflicts", "disjunctive", "shifted", "models")
	for _, k := range []int{2, 4, 6} {
		s := workload.IndependentConflicts(k)
		prog, _, err := program.BuildDirect(s, "A")
		if err != nil {
			return err
		}
		unfolded, err := lp.UnfoldChoice(prog)
		if err != nil {
			return err
		}
		g, err := ground.Ground(unfolded)
		if err != nil {
			return err
		}
		if !solve.HCF(g) {
			return fmt.Errorf("expected HCF program at k=%d", k)
		}
		var nPlain int
		dPlain, err := timed(func() error {
			ms, e := solve.StableModels(g, solve.Options{})
			nPlain = len(ms)
			return e
		})
		if err != nil {
			return err
		}
		sh, err := solve.Shift(g)
		if err != nil {
			return err
		}
		var nShift int
		dShift, err := timed(func() error {
			ms, e := solve.StableModels(sh, solve.Options{})
			nShift = len(ms)
			return e
		})
		if err != nil {
			return err
		}
		if nPlain != nShift {
			return fmt.Errorf("shift changed model count at k=%d: %d vs %d", k, nPlain, nShift)
		}
		fmt.Fprintf(w, "%-10d %-14v %-14v %-8d\n", k, dPlain, dShift, nPlain)
	}
	fmt.Fprintf(w, "expected shape: shifted never slower (avoids minimality search).\n")
	return nil
}

// runB5 measures grounding cost vs facts on referential programs, for
// the sequential grounder and the parallel one at -parallelism
// workers. The parallel ground program is checked byte-identical to
// the sequential one.
func runB5(w io.Writer) error {
	fmt.Fprintf(w, "%-10s %-12s %-12s %-10s %-10s\n", "satisfied", "ground-seq", "ground-par", "atoms", "rules")
	for _, n := range []int{10, 25, 50, 100} {
		s := workload.ReferentialShaped(1, 2, n, 1)
		prog, _, err := program.BuildDirect(s, "P")
		if err != nil {
			return err
		}
		unfolded, err := lp.UnfoldChoice(prog)
		if err != nil {
			return err
		}
		var g *ground.Program
		d, err := timed(func() error {
			var e error
			g, e = ground.Ground(unfolded)
			return e
		})
		if err != nil {
			return err
		}
		var gp *ground.Program
		dPar, err := timed(func() error {
			var e error
			// parallel.Workers resolves 0 to GOMAXPROCS, keeping the
			// flag's "0 = GOMAXPROCS" meaning for this column too
			// (ground.Options itself treats <=1 as sequential).
			gp, e = ground.GroundOpt(unfolded, ground.Options{Parallelism: parallel.Workers(benchParallelism)})
			return e
		})
		if err != nil {
			return err
		}
		if gp.String() != g.String() || !reflect.DeepEqual(gp.Atoms, g.Atoms) {
			return fmt.Errorf("parallel grounding diverged at n=%d", n)
		}
		fmt.Fprintf(w, "%-10d %-12v %-12v %-10d %-10d\n", n, d, dPar, len(g.Atoms), len(g.Rules))
	}
	fmt.Fprintf(w, "expected shape: near-linear in the relevant instantiations;\n")
	fmt.Fprintf(w, "ground-par tracks ground-seq/min(cores, rules) on multi-core.\n")
	return nil
}

// runB6 measures networked PCA over transports and latencies, plus the
// concurrent neighbour fan-out (par) and the TTL snapshot cache
// (cached) introduced for the parallel engine.
func runB6(w io.Writer) error {
	fmt.Fprintf(w, "%-20s %-14s\n", "transport", "pca-time")
	for _, cfg := range []struct {
		name        string
		latency     time.Duration
		tcp         bool
		parallelism int
		cacheTTL    time.Duration
	}{
		{"inproc(0ms)", 0, false, 1, 0},
		{"inproc(1ms)", time.Millisecond, false, 1, 0},
		{"inproc(1ms,par)", time.Millisecond, false, benchParallelism, 0},
		{"inproc(1ms,cached)", time.Millisecond, false, 1, time.Minute},
		{"inproc(5ms)", 5 * time.Millisecond, false, 1, 0},
		{"inproc(5ms,par)", 5 * time.Millisecond, false, benchParallelism, 0},
		{"tcp(loopback)", 0, true, 1, 0},
	} {
		sys := core.Example1System()
		var tr peernet.Transport
		if cfg.tcp {
			tr = &peernet.TCP{}
		} else {
			ip := peernet.NewInProc()
			ip.Latency = cfg.latency
			tr = ip
		}
		nodes := map[core.PeerID]*peernet.Node{}
		for _, id := range sys.Peers() {
			p, _ := sys.Peer(id)
			n := peernet.NewNode(p, tr, nil)
			n.Parallelism = cfg.parallelism
			n.CacheTTL = cfg.cacheTTL
			if err := n.Start(":0"); err != nil {
				return err
			}
			defer n.Stop()
			nodes[id] = n
		}
		for _, n := range nodes {
			for _, m := range nodes {
				if n != m {
					n.SetNeighbor(m.Peer.ID, m.Addr)
				}
			}
		}
		if cfg.cacheTTL > 0 {
			// Warm the snapshot cache; the timed run measures a hit.
			if _, err := nodes["P1"].Snapshot(false); err != nil {
				return err
			}
		}
		var got []relation.Tuple
		d, err := timed(func() error {
			var e error
			got, e = nodes["P1"].PeerConsistentAnswers(foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, false)
			return e
		})
		if err != nil {
			return err
		}
		if len(got) != 3 {
			return fmt.Errorf("networked PCA wrong: %v", got)
		}
		fmt.Fprintf(w, "%-20s %-14v\n", cfg.name, d)
	}
	fmt.Fprintf(w, "expected shape: per-neighbour fetch cost = 1 export round trip,\n")
	fmt.Fprintf(w, "overlapped across neighbours by par and amortized to ~0 by cached.\n")
	return nil
}

// runB7 contrasts violations sharing a choice key (one shared witness)
// with independent keys (independent witness choices).
func runB7(w io.Writer) error {
	// Shared key: v r1-tuples joined to the same s1 key; the paper's
	// choice((x,z),w) then picks one witness for all of them.
	shared := core.NewPeer("P").Declare("r1", 2).Declare("r2", 2).
		SetTrust("Q", core.TrustLess).
		AddDEC("Q", constraint.Referential("dec3", "r1", "s1", "r2", "s2"))
	q1 := core.NewPeer("Q").Declare("s1", 2).Declare("s2", 2)
	for i := 0; i < 3; i++ {
		shared.Fact("r1", "x", fmt.Sprintf("y%d", i))
		q1.Fact("s1", "z", fmt.Sprintf("y%d", i))
	}
	q1.Fact("s2", "z", "w0")
	q1.Fact("s2", "z", "w1")
	sysShared := core.NewSystem().MustAddPeer(shared).MustAddPeer(q1)

	sols, err := program.SolutionsViaLP(sysShared, "P", program.RunOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "3 violations, shared key (x,z), 2 witnesses: %d answer-set solutions\n", len(sols))

	indep := workload.ReferentialShaped(3, 2, 0, 1)
	sols2, err := program.SolutionsViaLP(indep, "P", program.RunOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "3 violations, independent keys, 2 witnesses: %d answer-set solutions\n", len(sols2))
	fmt.Fprintf(w, "expected shape: shared keys collapse the witness choices (one choice\n")
	fmt.Fprintf(w, "per key), independent keys multiply them ((1+2)^3 = 27).\n")
	return nil
}

// runB8 ablates support propagation in the solver.
func runB8(w io.Writer) error {
	fmt.Fprintf(w, "%-10s %-14s %-14s\n", "conflicts", "with-support", "without")
	for _, k := range []int{2, 4, 6} {
		s := workload.IndependentConflicts(k)
		prog, _, err := program.BuildDirect(s, "A")
		if err != nil {
			return err
		}
		unfolded, err := lp.UnfoldChoice(prog)
		if err != nil {
			return err
		}
		g, err := ground.Ground(unfolded)
		if err != nil {
			return err
		}
		var nWith, nWithout int
		dWith, err := timed(func() error {
			ms, e := solve.StableModels(g, solve.Options{})
			nWith = len(ms)
			return e
		})
		if err != nil {
			return err
		}
		dWithout, err := timed(func() error {
			ms, e := solve.StableModels(g, solve.Options{NoSupportPropagation: true})
			nWithout = len(ms)
			return e
		})
		if err != nil {
			return err
		}
		if nWith != nWithout {
			return fmt.Errorf("ablation changed models at k=%d", k)
		}
		fmt.Fprintf(w, "%-10d %-14v %-14v\n", k, dWith, dWithout)
	}
	fmt.Fprintf(w, "expected shape: identical models; support propagation prunes search.\n")
	return nil
}

// runB9 measures the wide-universe workload (ISSUE 4): a tiny
// query-relevant core inside a wide overlay of bystander peers. The
// full pipeline snapshots every peer's every relation; the sliced
// pipeline (Node.SnapshotFor / PeerConsistentAnswersFor) plans a
// relevance slice over cheap spec exports, moves only the relations in
// the slice, and serves repeat queries from the slice-keyed answer
// cache — which survives updates to irrelevant relations.
func runB9(w io.Writer) error {
	const width, relsPer, facts, conflicts = 8, 3, 40, 2
	sys := workload.WideUniverse(width, relsPer, facts, conflicts, 1)
	ip := peernet.NewInProc()
	ip.Latency = 200 * time.Microsecond
	nodes := map[core.PeerID]*peernet.Node{}
	for _, id := range sys.Peers() {
		p, _ := sys.Peer(id)
		n := peernet.NewNode(p, ip, nil)
		n.Parallelism = benchParallelism
		n.CacheTTL = time.Minute
		if err := n.Start(":0"); err != nil {
			return err
		}
		defer n.Stop()
		nodes[id] = n
	}
	for _, n := range nodes {
		for _, m := range nodes {
			if n != m {
				n.SetNeighbor(m.Peer.ID, m.Addr)
			}
		}
	}
	root := nodes["P0"]
	q := foquery.MustParse("q0(X,Y)")
	vars := []string{"X", "Y"}

	totalRemote := 0
	for _, id := range sys.Peers() {
		if id == "P0" {
			continue
		}
		p, _ := sys.Peer(id)
		totalRemote += len(p.Schema.Relations())
	}
	_, sl, err := root.SnapshotFor(q, false)
	if err != nil {
		return err
	}
	if sl.RemoteRelCount() >= totalRemote {
		return fmt.Errorf("slice fetches %d of %d remote relations; expected strictly fewer", sl.RemoteRelCount(), totalRemote)
	}

	var full []relation.Tuple
	dFull, err := timed(func() error {
		var e error
		full, e = root.PeerConsistentAnswers(q, vars, false)
		return e
	})
	if err != nil {
		return err
	}
	var slicedAns []relation.Tuple
	dSliced, err := timed(func() error {
		var e error
		slicedAns, e = root.PeerConsistentAnswersFor(q, vars, false)
		return e
	})
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(slicedAns, full) {
		return fmt.Errorf("sliced answers diverge: %v vs %v", slicedAns, full)
	}
	dRepeat, err := timed(func() error {
		var e error
		slicedAns, e = root.PeerConsistentAnswersFor(q, vars, false)
		return e
	})
	if err != nil {
		return err
	}
	// Update an irrelevant (bystander) relation: the slice-keyed answer
	// cache must keep serving hits, since the fingerprint only covers
	// relevant relations.
	bp, _ := sys.Peer(core.PeerID(fmt.Sprintf("B%d", width-1)))
	bp.Fact(fmt.Sprintf("b%d_r%d", width-1, relsPer-1), "late_key", "late_val")
	dAfterUpd, err := timed(func() error {
		var e error
		slicedAns, e = root.PeerConsistentAnswersFor(q, vars, false)
		return e
	})
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(slicedAns, full) {
		return fmt.Errorf("sliced answers diverge after irrelevant update: %v vs %v", slicedAns, full)
	}
	hits, misses := root.AnswerCacheStats()
	if hits < 2 {
		return fmt.Errorf("answer cache hits=%d misses=%d; repeat and post-irrelevant-update queries should hit", hits, misses)
	}

	fmt.Fprintf(w, "%-22s %-14s %s\n", "mode", "pca-time", "remote relations moved")
	fmt.Fprintf(w, "%-22s %-14v %d\n", "full snapshot", dFull, totalRemote)
	fmt.Fprintf(w, "%-22s %-14v %d\n", "sliced (cold)", dSliced, sl.RemoteRelCount())
	fmt.Fprintf(w, "%-22s %-14v 0 (answer-cache hit)\n", "sliced (repeat)", dRepeat)
	fmt.Fprintf(w, "%-22s %-14v 0 (cache survives irrelevant update)\n", "sliced (after update)", dAfterUpd)
	fmt.Fprintf(w, "answer cache: hits=%d misses=%d; slice kept %d/%d constraints\n", hits, misses, sl.KeptDeps, sl.TotalDeps)
	fmt.Fprintf(w, "expected shape: sliced moves %d of %d remote relations and skips the\n", sl.RemoteRelCount(), totalRemote)
	fmt.Fprintf(w, "bystander repair search; repeats are cache hits with zero re-grounding.\n")
	return nil
}

// runB10 measures conflict-localized repair (ISSUE 5) on the
// scattered-conflict workload: k independent EGD conflicts on k
// disjoint relation pairs. The global wave search re-checks the whole
// database at each of its ~2^k states and intersects answers over the
// materialized 2^k repairs; the localized engine decomposes the
// conflict graph into k trivial components, searches each with
// incremental violation checking, and answers the (single-relation)
// query from the one component it touches — never materializing the
// cross-product.
func runB10(w io.Writer) error {
	fmt.Fprintf(w, "%-6s %-14s %-14s %-10s %-14s %-14s\n",
		"k", "cqa-global", "cqa-localized", "speedup", "solve-global", "solve-localized")
	for _, k := range []int{4, 8, 10} {
		s := workload.ScatteredConflicts(k, 20, 1)
		p, _ := s.Peer("A")
		deps := p.DECs["B"]
		inst := s.Global()
		q := foquery.MustParse("ra0(X,Y)")
		vars := []string{"X", "Y"}

		var ansG []relation.Tuple
		dCqaG, err := timed(func() error {
			var e error
			ansG, e = repair.ConsistentAnswers(inst.Clone(), deps, q, vars, repair.Options{NoLocalize: true, Parallelism: 1})
			return e
		})
		if err != nil {
			return err
		}
		var ansL []relation.Tuple
		dCqaL, err := timed(func() error {
			var e error
			ansL, e = repair.ConsistentAnswers(inst.Clone(), deps, q, vars, repair.Options{Parallelism: 1})
			return e
		})
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(ansL, ansG) {
			return fmt.Errorf("localized CQA diverges at k=%d: %v vs %v", k, ansL, ansG)
		}

		var solsG, solsL []*relation.Instance
		dSolG, err := timed(func() error {
			var e error
			solsG, e = core.SolutionsFor(s, "A", core.SolveOptions{NoLocalize: true, Parallelism: 1})
			return e
		})
		if err != nil {
			return err
		}
		dSolL, err := timed(func() error {
			var e error
			solsL, e = core.SolutionsFor(s, "A", core.SolveOptions{Parallelism: 1})
			return e
		})
		if err != nil {
			return err
		}
		if !sameKeys(solsL, solsG) {
			return fmt.Errorf("localized solutions diverge at k=%d", k)
		}
		fmt.Fprintf(w, "%-6d %-14v %-14v %-10s %-14v %-14v\n",
			k, dCqaG, dCqaL, fmt.Sprintf("%.1fx", float64(dCqaG)/float64(dCqaL)), dSolG, dSolL)
	}
	fmt.Fprintf(w, "expected shape: global CQA grows with 2^k (repair enumeration +\n")
	fmt.Fprintf(w, "per-repair query evaluation); localized CQA grows with k (component\n")
	fmt.Fprintf(w, "searches + one 2-repair intersection); solve still materializes the\n")
	fmt.Fprintf(w, "2^k solution set, so its win is the search and minimality filter only.\n")
	return nil
}

func sameKeys(a, b []*relation.Instance) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// section31WithFD mirrors the E7 fixture from the program tests.
func section31WithFD() *core.System {
	p := core.NewPeer("P").Declare("r1", 2).Declare("r2", 2).
		Fact("r1", "a", "b").Fact("r2", "a", "g").
		SetTrust("Q", core.TrustLess).
		AddDEC("Q", constraint.Referential("dec3", "r1", "s1", "r2", "s2")).
		AddIC(constraint.FD("fd_r2", "r2"))
	q := core.NewPeer("Q").Declare("s1", 2).Declare("s2", 2).
		Fact("s1", "c", "b").
		Fact("s2", "c", "e").Fact("s2", "c", "f")
	return core.NewSystem().MustAddPeer(p).MustAddPeer(q)
}

// runB11 measures delegated peer answering (ISSUE 6) on the delegation
// fanout workload: a root importing filtered rows from several hubs,
// each hub cross-checking its rows against a large leaf relation. The
// centralized sliced path must pull every hub AND leaf relation to the
// querying peer; the delegated path asks each hub for its own peer
// consistent answers over OpPCA (the hubs read their leaves
// themselves), so the root receives answer sets instead of raw upstream
// data. Each node's transport is wrapped in a peernet.Meter, so the
// querying peer's round trips and bytes received are measured uniformly
// over the in-process and TCP transports.
func runB11(w io.Writer) error {
	const hubs, rows, flagged, noise = 4, 30, 6, 120
	q := foquery.MustParse("r0(X,Y)")
	vars := []string{"X", "Y"}
	fmt.Fprintf(w, "%-16s %-12s %-14s %-12s %-12s %s\n",
		"transport", "path", "pca-time", "round-trips", "recv-bytes", "notes")
	for _, tc := range []struct {
		name string
		mk   func() peernet.Transport
	}{
		{"inproc(200us)", func() peernet.Transport {
			ip := peernet.NewInProc()
			ip.Latency = 200 * time.Microsecond
			return ip
		}},
		{"tcp", func() peernet.Transport { return &peernet.TCP{} }},
	} {
		sys := workload.DelegationFanout(hubs, rows, flagged, noise, 1)
		shared := tc.mk()
		nodes := map[core.PeerID]*peernet.Node{}
		meters := map[core.PeerID]*peernet.Meter{}
		for _, id := range sys.Peers() {
			p, _ := sys.Peer(id)
			m := &peernet.Meter{T: shared}
			meters[id] = m
			n := peernet.NewNode(p, m, nil)
			n.Parallelism = benchParallelism
			if err := n.Start(":0"); err != nil {
				return err
			}
			defer n.Stop()
			nodes[id] = n
		}
		for _, n := range nodes {
			for _, m := range nodes {
				if n != m {
					n.SetNeighbor(m.Peer.ID, m.BoundAddr())
				}
			}
		}
		root, meter := nodes["P0"], meters["P0"]

		var central []relation.Tuple
		meter.Reset()
		dCentral, err := timed(func() error {
			var e error
			central, e = root.PeerConsistentAnswersFor(q, vars, true)
			return e
		})
		if err != nil {
			return err
		}
		cCalls, _, cRecv := meter.Stats()

		var deleg []relation.Tuple
		var info peernet.DelegationInfo
		meter.Reset()
		dDeleg, err := timed(func() error {
			var e error
			deleg, info, e = root.DelegatedAnswersInfo(q, vars, true)
			return e
		})
		if err != nil {
			return err
		}
		dCalls, _, dRecv := meter.Stats()
		if !info.Delegated {
			return fmt.Errorf("B11 should delegate, fell back: %s", info.Reason)
		}
		if !reflect.DeepEqual(deleg, central) {
			return fmt.Errorf("delegated answers diverge on %s: %v vs %v", tc.name, deleg, central)
		}
		fmt.Fprintf(w, "%-16s %-12s %-14v %-12d %-12d pulls every hub and leaf relation\n",
			tc.name, "central", dCentral, cCalls, cRecv)
		fmt.Fprintf(w, "%-16s %-12s %-14v %-12d %-12d %d delegates, %d sub-tuples received\n",
			tc.name, "delegated", dDeleg, dCalls, dRecv, len(info.Delegates), info.SubTuples)
		if dRecv >= cRecv {
			return fmt.Errorf("delegation moved %d bytes to the root, central %d; expected strictly fewer", dRecv, cRecv)
		}
	}
	fmt.Fprintf(w, "expected shape: the delegated path receives answer sets (filtered hub\n")
	fmt.Fprintf(w, "rows) instead of raw hub+leaf relations, cutting the querying peer's\n")
	fmt.Fprintf(w, "bytes received; repair work runs at the hubs, where the data lives.\n")
	return nil
}

// runB12 measures the columnar memory plane on large universes: a
// selective query on the conflicted core relation of a
// workload.LargeUniverse system, answered through the repair engine
// over the full (unsliced) instance. The interesting columns are
// clone time — copy-on-write segment sharing makes it O(#relations),
// independent of fact count — and repair+answer allocs, which reduce
// to a constant handful per tuple (the cold per-run view/index build)
// plus a flat search-side term, because candidate instances share
// column segments with the original and deltas/visited-keys are
// bitsets over dense fact ids instead of rendered-string maps (the
// map-backed plane spent ~100 allocations per tuple here).
func runB12(w io.Writer) error {
	q := foquery.MustParse("q0(c0,Y)")
	vars := []string{"Y"}
	fmt.Fprintf(w, "%-10s %-12s %-14s %-14s %-12s\n",
		"facts", "clone", "repair+answer", "allocs/run", "answers")
	for _, n := range []int{20000, 50000, 100000} {
		s := workload.LargeUniverse(n, 4, 4, n/40, 1)
		p, _ := s.Peer("P0")
		deps := p.DECs["PK"]
		inst := s.Global()

		dClone, err := timed(func() error {
			inst.Clone()
			return nil
		})
		if err != nil {
			return err
		}
		var ans []relation.Tuple
		dAns, allocs, err := timedAllocs(func() error {
			var e error
			ans, e = repair.ConsistentAnswers(inst.Clone(), deps, q, vars, repair.Options{Parallelism: 1})
			return e
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10d %-12v %-14v %-14d %-12d\n", n, dClone, dAns, allocs, len(ans))
	}
	fmt.Fprintf(w, "expected shape: clone stays flat (COW segment sharing, no per-tuple\n")
	fmt.Fprintf(w, "copying); allocs/run is the cold view/index build — a few allocations\n")
	fmt.Fprintf(w, "per tuple, vs ~100/tuple for the map-backed plane — plus a flat\n")
	fmt.Fprintf(w, "search-side term; time grows with the scan cost of the violation\n")
	fmt.Fprintf(w, "checks, not with allocation churn.\n")
	return nil
}
