package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const example1Spec = `
peer P1 {
  relation r1/2
  fact r1(a, b).
  fact r1(s, t).
  trust less P2
  trust same P3
  dec P2: r2(X,Y) -> r1(X,Y).
  dec P3: r1(X,Y), r3(X,Z) -> Y = Z.
}
peer P2 {
  relation r2/2
  fact r2(c, d).
  fact r2(a, e).
}
peer P3 {
  relation r3/2
  fact r3(a, f).
  fact r3(s, u).
}
`

func writeSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sys.p2p")
	if err := os.WriteFile(path, []byte(example1Spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestQueryAllEngines(t *testing.T) {
	path := writeSpec(t)
	for _, engine := range []string{"repair", "lp", "lav", "rewrite"} {
		var out bytes.Buffer
		err := run([]string{
			"-system", path, "-peer", "P1",
			"-query", "r1(X,Y)", "-vars", "X,Y",
			"-engine", engine,
		}, &out)
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		s := out.String()
		if !strings.Contains(s, "3 peer consistent answer(s):") {
			t.Fatalf("engine %s output:\n%s", engine, s)
		}
		for _, tup := range []string{"(a,b)", "(a,e)", "(c,d)"} {
			if !strings.Contains(s, tup) {
				t.Fatalf("engine %s missing %s:\n%s", engine, tup, s)
			}
		}
	}
}

func TestPossibleFlag(t *testing.T) {
	path := writeSpec(t)
	var out bytes.Buffer
	err := run([]string{
		"-system", path, "-peer", "P1",
		"-query", "r1(X,Y)", "-vars", "X,Y", "-possible",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// Brave answers additionally include (s,t).
	if !strings.Contains(s, "4 possible answer(s):") || !strings.Contains(s, "(s,t)") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestSolutionsFlag(t *testing.T) {
	path := writeSpec(t)
	var out bytes.Buffer
	if err := run([]string{"-system", path, "-peer", "P1", "-solutions"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 solution(s) for peer P1:") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestProgramFlag(t *testing.T) {
	path := writeSpec(t)
	var out bytes.Buffer
	if err := run([]string{"-system", path, "-peer", "P1", "-program"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "r1_p(X1,X2) :- r1(X1,X2), not -r1_p(X1,X2).") {
		t.Fatalf("program output:\n%s", s)
	}
}

func TestRewriteEngineShowsFormula(t *testing.T) {
	path := writeSpec(t)
	var out bytes.Buffer
	err := run([]string{
		"-system", path, "-peer", "P1",
		"-query", "r1(X,Y)", "-vars", "X,Y", "-engine", "rewrite",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rewritten query:") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	path := writeSpec(t)
	cases := [][]string{
		{},                               // missing flags
		{"-system", path},                // missing peer
		{"-system", path, "-peer", "P1"}, // missing query
		{"-system", "/does/not/exist", "-peer", "P1", "-solutions"},
		{"-system", path, "-peer", "ZZ", "-solutions"},
		{"-system", path, "-peer", "P1", "-query", "r1(X,Y)", "-vars", "X,Y", "-engine", "bogus"},
		{"-system", path, "-peer", "P1", "-query", "r1(X,Y) & r2(X,Y)", "-vars", "X,Y", "-engine", "rewrite"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestSlicedFlag(t *testing.T) {
	path := writeSpec(t)
	for _, engine := range []string{"repair", "lp"} {
		var full, sliced bytes.Buffer
		if err := run([]string{
			"-system", path, "-peer", "P1",
			"-query", "r1(X,Y)", "-vars", "X,Y", "-engine", engine,
		}, &full); err != nil {
			t.Fatalf("engine %s full: %v", engine, err)
		}
		if err := run([]string{
			"-system", path, "-peer", "P1",
			"-query", "r1(X,Y)", "-vars", "X,Y", "-engine", engine, "-sliced",
		}, &sliced); err != nil {
			t.Fatalf("engine %s sliced: %v", engine, err)
		}
		if full.String() != sliced.String() {
			t.Fatalf("engine %s: sliced output differs:\n--- full ---\n%s--- sliced ---\n%s",
				engine, full.String(), sliced.String())
		}
	}
}

func TestStatsPrintsSliceStatistics(t *testing.T) {
	path := writeSpec(t)
	var out bytes.Buffer
	err := run([]string{
		"-system", path, "-peer", "P1",
		"-query", "r1(X,Y)", "-vars", "X,Y", "-engine", "lp",
		"-sliced", "-stats",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"slice: relations ",
		"constraints kept ",
		"slice: lp rules kept ",
		"slice: answer cache hits=0 misses=1",
		"3 peer consistent answer(s):",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in -stats output:\n%s", want, s)
		}
	}
}

func TestDelegateFlag(t *testing.T) {
	path := writeSpec(t)
	// Direct semantics: delegation falls back to the centralized path
	// and the answers match Example 1's PCAs.
	var direct bytes.Buffer
	if err := run([]string{
		"-system", path, "-peer", "P1",
		"-query", "r1(X,Y)", "-vars", "X,Y",
		"-delegate", "-stats",
	}, &direct); err != nil {
		t.Fatal(err)
	}
	s := direct.String()
	if !strings.Contains(s, "delegation: fell back") || !strings.Contains(s, "direct semantics") {
		t.Fatalf("direct -delegate should report the fallback:\n%s", s)
	}
	if !strings.Contains(s, "3 peer consistent answer(s):") {
		t.Fatalf("direct -delegate answers:\n%s", s)
	}
	// Transitive semantics: Example 1 is a pure fetch plan, which the
	// gate admits; the report names both fetched peers.
	var trans bytes.Buffer
	if err := run([]string{
		"-system", path, "-peer", "P1",
		"-query", "r1(X,Y)", "-vars", "X,Y",
		"-delegate", "-transitive", "-stats",
	}, &trans); err != nil {
		t.Fatal(err)
	}
	s = trans.String()
	if !strings.Contains(s, "delegation: delegated") || !strings.Contains(s, "fetches=[P2 P3]") {
		t.Fatalf("transitive -delegate should run the plan:\n%s", s)
	}
}
