package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded bytes.Buffer: runServe writes to it
// from the test goroutine while the test polls it for the bound
// address.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeSmoke drives the full -serve lifecycle: start the server,
// fire concurrent HTTP queries interleaved with writes, read the
// metrics endpoint, then shut down cleanly via the test stop hook.
func TestServeSmoke(t *testing.T) {
	path := writeSpec(t)
	serveStop = make(chan struct{})
	defer func() { serveStop = nil }()

	var out syncBuffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-system", path, "-peer", "P1",
			"-serve", "-http", "127.0.0.1:0",
			"-max-concurrent", "4", "-stats",
		}, &out)
	}()

	// Wait for the server to print its bound address.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never started:\n%s", out.String())
		}
		s := out.String()
		if i := strings.Index(s, "at http://"); i >= 0 {
			rest := s[i+len("at http://"):]
			if j := strings.Index(rest, " ("); j >= 0 {
				base = "http://" + rest[:j]
			}
		}
		time.Sleep(time.Millisecond)
	}

	// Concurrent queries interleaved with writes.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if w == 0 && i%2 == 0 {
					resp, err := http.PostForm(base+"/write",
						url.Values{"rel": {"r1"}, "tuple": {"smoke,s"}})
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("write status %d", resp.StatusCode)
					}
					continue
				}
				resp, err := http.Get(base + "/query?" + url.Values{
					"q": {"r1(X,Y)"}, "vars": {"X,Y"},
				}.Encode())
				if err != nil {
					t.Error(err)
					return
				}
				var qr struct {
					Count   int        `json:"count"`
					Answers [][]string `json:"answers"`
				}
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK || qr.Count == 0 {
					t.Errorf("query status=%d count=%d", resp.StatusCode, qr.Count)
				}
			}
		}(w)
	}
	wg.Wait()

	// The write must be visible: r1(smoke,s) is conflict-free, so it is
	// a certain answer of the very next query.
	resp, err := http.Get(base + "/query?" + url.Values{
		"q": {"r1(X,Y)"}, "vars": {"X,Y"},
	}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	var qr struct {
		Answers [][]string `json:"answers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, a := range qr.Answers {
		if len(a) == 2 && a[0] == "smoke" && a[1] == "s" {
			found = true
		}
	}
	if !found {
		t.Fatalf("write not visible over HTTP: %v", qr.Answers)
	}

	// Metrics endpoint reflects the load.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	mb.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"serve_queries_total", "serve_writes_total 3", "node_solver_runs_total"} {
		if !strings.Contains(mb.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, mb.String())
		}
	}

	// Clean shutdown through the stop hook.
	close(serveStop)
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not stop")
	}
	s := out.String()
	if !strings.Contains(s, "p2pqa: server stopped") {
		t.Fatalf("missing shutdown line:\n%s", s)
	}
	// -stats dumps the registry on exit.
	if !strings.Contains(s, "serve_query_latency_count") {
		t.Fatalf("missing -stats metrics dump:\n%s", s)
	}
}
