package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/peernet"
	"repro/internal/serve"
)

// serveParams carries the -serve flags into runServe.
type serveParams struct {
	httpAddr      string
	cacheTTL      time.Duration
	parallelism   int
	maxConcurrent int
	maxQueue      int
	transitive    bool
	stats         bool
}

// serveStop, when non-nil, stops a -serve run when closed; tests set it
// to drive startup/shutdown. The CLI leaves it nil and waits for
// SIGINT/SIGTERM (a nil channel blocks forever in the select below).
var serveStop chan struct{}

// runServe deploys every peer of the system as an in-process node
// (full neighbour mesh, like -delegate) and serves the queried peer's
// node over HTTP until a signal arrives. The served node runs with the
// TTL caches on: local writes through /write invalidate them
// immediately, remote peers' data may be up to -cache-ttl stale.
func runServe(sys *core.System, id core.PeerID, out io.Writer, p serveParams) error {
	if _, ok := sys.Peer(id); !ok {
		return fmt.Errorf("unknown peer %s", id)
	}
	tr := peernet.NewInProc()
	nodes := map[core.PeerID]*peernet.Node{}
	for _, pid := range sys.Peers() {
		peer, _ := sys.Peer(pid)
		n := peernet.NewNode(peer, tr, nil)
		n.Parallelism = p.parallelism
		if pid == id {
			n.CacheTTL = p.cacheTTL
		}
		if err := n.Start(":0"); err != nil {
			return err
		}
		defer n.Stop()
		nodes[pid] = n
	}
	for _, n := range nodes {
		for _, m := range nodes {
			if n != m {
				n.SetNeighbor(m.Peer.ID, m.BoundAddr())
			}
		}
	}

	srv := serve.New(nodes[id], serve.Config{
		MaxConcurrent: p.maxConcurrent,
		MaxQueue:      p.maxQueue,
		Transitive:    p.transitive,
	})
	ln, err := net.Listen("tcp", p.httpAddr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	cfg := srv.Config()
	fmt.Fprintf(out, "p2pqa: serving peer %s at http://%s (max-concurrent=%d max-queue=%d query-parallelism=%d cache-ttl=%s)\n",
		id, ln.Addr(), cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueryParallelism, p.cacheTTL)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-sig:
	case <-serveStop:
	case err := <-errCh:
		return err
	}

	// Drain the admission pool first — queued queries finish, new
	// arrivals are shed — then close the HTTP listener.
	if !srv.Stop() {
		fmt.Fprintln(out, "p2pqa: drain timeout, queries still running")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if p.stats {
		srv.WriteMetrics(out)
	}
	fmt.Fprintln(out, "p2pqa: server stopped")
	return nil
}
