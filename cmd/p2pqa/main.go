// Command p2pqa loads a P2P data exchange system (sysdsl format) and
// answers queries posed to a peer under the paper's peer-consistent
// semantics, with every engine the repository implements:
//
//	p2pqa -system sys.p2p -peer P1 -query "r1(X,Y)" -vars X,Y
//	p2pqa -system sys.p2p -peer P1 -query "r1(X,Y)" -vars X,Y -engine lp
//	p2pqa -system sys.p2p -peer P1 -solutions
//
// Engines: repair (Definition 4/5 via minimal repairs, default),
// lp (Section 3 answer set program), lav (Section 4.2 annotated
// program), rewrite (Section 2 first-order rewriting; atomic queries
// in its applicability class only). -transitive switches the lp engine
// to the combined program of Section 4.3. -delegate deploys the system
// as an in-process overlay and answers through delegated distributed
// execution (slice-aware OpPCA fan-out with centralized fallback).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/lp"
	"repro/internal/lp/ground"
	"repro/internal/peernet"
	"repro/internal/program"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/slice"
	"repro/internal/sysdsl"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "p2pqa:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("p2pqa", flag.ContinueOnError)
	sysFile := fs.String("system", "", "system description file (sysdsl format; '-' for stdin)")
	peer := fs.String("peer", "", "peer to pose the query to")
	query := fs.String("query", "", "first-order query in L(peer)")
	vars := fs.String("vars", "", "comma-separated answer variables")
	engine := fs.String("engine", "repair", "engine: repair | lp | lav | rewrite")
	transitive := fs.Bool("transitive", false, "use the transitive (Section 4.3) semantics with the lp engine")
	possible := fs.Bool("possible", false, "compute possible (brave) answers instead of peer consistent (certain) ones; repair engine only")
	solutions := fs.Bool("solutions", false, "print the peer's solutions instead of answering a query")
	showProgram := fs.Bool("program", false, "print the specification program instead of solving (lp/lav engines)")
	par := fs.Int("parallelism", 0, "worker-pool bound for the repair search and fan-out, grounding, per-solution query evaluation and stable-model search; 0 = GOMAXPROCS for the repair engine with sequential grounder/solver, 1 = fully sequential, >1 also fans out grounding and the solver search")
	stats := fs.Bool("stats", false, "print system statistics (peers, tuples, interned symbols) after loading; with -query, also the query-relevance slice statistics (relations/constraints kept vs dropped, answer cache hits/misses)")
	sliced := fs.Bool("sliced", false, "answer through the query-relevance-sliced pipeline (repair and lp engines): only slice constraints are enforced, only slice relations repaired/grounded, answers cached per slice+data key; answers are identical to the unsliced run")
	delegate := fs.Bool("delegate", false, "answer through delegated distributed execution: deploy every peer as an in-process node, decompose the query's relevance slice per owning peer and let each repairing neighbour answer its sub-queries itself over OpPCA, composing at the queried node (falls back to the centralized sliced path whenever delegation is not provably exact; answers are identical either way); with -stats, the delegation report is printed")
	serveMode := fs.Bool("serve", false, "run as a long-lived query server: deploy every peer as an in-process node and serve -peer's peer-consistent answers over HTTP (/query, /write, /metrics, /healthz) until SIGINT/SIGTERM; with -stats, the final metrics are printed on shutdown")
	httpAddr := fs.String("http", "127.0.0.1:0", "HTTP listen address for -serve")
	cacheTTL := fs.Duration("cache-ttl", time.Second, "TTL of the serving node's snapshot/spec/relation caches (-serve); local writes invalidate immediately, remote data may be up to this stale")
	maxConcurrent := fs.Int("max-concurrent", 0, "queries admitted at once in -serve; 0 = GOMAXPROCS")
	maxQueue := fs.Int("max-queue", 0, "queries queued for admission in -serve before shedding; 0 = 4x max-concurrent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sysFile == "" || *peer == "" {
		return fmt.Errorf("-system and -peer are required")
	}
	var src []byte
	var err error
	if *sysFile == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(*sysFile)
	}
	if err != nil {
		return err
	}
	sys, err := sysdsl.Parse(string(src))
	if err != nil {
		return err
	}
	id := core.PeerID(*peer)

	if *stats {
		// The parser built every peer instance onto one per-system
		// symbol table; its size is the number of distinct constants
		// (plus relation symbols) in the whole system.
		fmt.Fprintf(out, "system: %d peer(s), %d tuple(s), %d interned symbol(s)\n",
			len(sys.Peers()), sys.Global().Size(), sys.Symtab().Len())
	}

	if *showProgram {
		var p fmt.Stringer
		switch *engine {
		case "lav":
			p, _, err = program.BuildLAV(sys, id)
		default:
			if *transitive {
				p, _, err = program.BuildTransitive(sys, id)
			} else {
				p, _, err = program.BuildDirect(sys, id)
			}
		}
		if err != nil {
			return err
		}
		fmt.Fprint(out, p.String())
		return nil
	}

	if *solutions {
		var sols []*relation.Instance
		switch *engine {
		case "repair":
			sols, err = core.SolutionsFor(sys, id, core.SolveOptions{Parallelism: *par})
		case "lp":
			sols, err = program.SolutionsViaLP(sys, id, program.RunOptions{Transitive: *transitive, Parallelism: *par})
		case "lav":
			sols, err = program.SolutionsViaLAV(sys, id, program.RunOptions{Parallelism: *par})
		default:
			return fmt.Errorf("engine %q cannot enumerate solutions", *engine)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%d solution(s) for peer %s:\n", len(sols), id)
		for i, s := range sols {
			fmt.Fprintf(out, "S%d = %s\n", i+1, s)
		}
		return nil
	}

	if *serveMode {
		return runServe(sys, id, out, serveParams{
			httpAddr:      *httpAddr,
			cacheTTL:      *cacheTTL,
			parallelism:   *par,
			maxConcurrent: *maxConcurrent,
			maxQueue:      *maxQueue,
			transitive:    *transitive,
			stats:         *stats,
		})
	}

	if *query == "" || *vars == "" {
		return fmt.Errorf("-query and -vars are required (or use -solutions)")
	}
	varList := strings.Split(*vars, ",")
	for i := range varList {
		varList[i] = strings.TrimSpace(varList[i])
	}

	if *delegate {
		f, perr := foquery.Parse(*query)
		if perr != nil {
			return perr
		}
		ans, info, err := delegatedAnswers(sys, id, f, varList, *transitive, *par)
		if err != nil {
			return err
		}
		if *stats {
			if info.Delegated {
				fmt.Fprintf(out, "delegation: delegated; delegates=%v fetches=%v remote calls=%d sub-tuples=%d\n",
					info.Delegates, info.Fetches, info.RemoteCalls, info.SubTuples)
			} else {
				fmt.Fprintf(out, "delegation: fell back to the centralized sliced path: %s\n", info.Reason)
			}
		}
		fmt.Fprintf(out, "%d peer consistent answer(s):\n", len(ans))
		for _, t := range ans {
			fmt.Fprintln(out, t)
		}
		return nil
	}

	// Query-relevance slicing: compute the slice when the sliced
	// pipeline is requested, or when -stats wants its statistics.
	var sl *slice.Slice
	var cache *slice.AnswerCache
	if (*sliced || *stats) && (*engine == "repair" || *engine == "lp") {
		f, perr := foquery.Parse(*query)
		if perr != nil {
			return perr
		}
		sl, err = slice.ForQuery(sys, id, f, *transitive)
		if err != nil {
			return err
		}
	}
	solveOpt := core.SolveOptions{Parallelism: *par}
	runOpt := program.RunOptions{Transitive: *transitive, Parallelism: *par}
	var pruneStats ground.PruneStats
	if *sliced && sl != nil {
		cache = slice.NewAnswerCache(0)
		solveOpt.KeepDep, solveOpt.RelevantRels = sl.KeepDep, sl.RelevantRels()
		runOpt.KeepDep, runOpt.RelevantRels = sl.KeepDep, sl.RelevantRels()
		runOpt.PruneStats = &pruneStats
	}

	var ans []relation.Tuple
	switch *engine {
	case "repair":
		f, perr := foquery.Parse(*query)
		if perr != nil {
			return perr
		}
		if *possible {
			ans, err = core.PossibleAnswers(sys, id, f, varList, solveOpt)
		} else if cache != nil {
			ans, err = cachedAnswers(sys, sl, cache, *query, varList, func() ([]relation.Tuple, error) {
				return core.PeerConsistentAnswers(sys, id, f, varList, solveOpt)
			})
		} else {
			ans, err = core.PeerConsistentAnswers(sys, id, f, varList, solveOpt)
		}
	case "lp":
		f, perr := foquery.Parse(*query)
		if perr != nil {
			return perr
		}
		if cache != nil {
			ans, err = cachedAnswers(sys, sl, cache, *query, varList, func() ([]relation.Tuple, error) {
				return program.PeerConsistentAnswersViaLP(sys, id, f, varList, runOpt)
			})
		} else {
			ans, err = program.PeerConsistentAnswersViaLP(sys, id, f, varList, runOpt)
		}
	case "lav":
		f, perr := foquery.Parse(*query)
		if perr != nil {
			return perr
		}
		ans, err = lavAnswers(sys, id, f, varList, *par)
	case "rewrite":
		rel, rerr := atomicQueryRel(*query, varList)
		if rerr != nil {
			return rerr
		}
		var f foquery.Formula
		f, err = rewrite.RewriteAtom(sys, id, rel, varList, rewrite.Options{})
		if err == nil {
			fmt.Fprintf(out, "rewritten query: %s\n", f)
			ans, err = foquery.Answers(sys.Global(), f, varList)
		}
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}
	if err != nil {
		return err
	}
	if *stats && sl != nil {
		fmt.Fprintf(out, "slice: relations %d/%d (%d dropped), constraints kept %d/%d (%d dropped), remote relations %d, full=%v\n",
			len(sl.Rels), sl.TotalRels, sl.TotalRels-len(sl.Rels),
			sl.KeptDeps, sl.TotalDeps, sl.TotalDeps-sl.KeptDeps,
			sl.RemoteRelCount(), sl.Full)
		if *engine == "lp" {
			if kept, total, lerr := lpRuleCounts(sys, id, *transitive, sl); lerr == nil {
				fmt.Fprintf(out, "slice: lp rules kept %d/%d (%d dropped)\n", kept, total, total-kept)
			}
		}
		if *sliced && runOpt.PruneStats != nil && *engine == "lp" {
			fmt.Fprintf(out, "slice: ground rules kept %d (%d pruned)\n", pruneStats.KeptRules, pruneStats.DroppedRules)
		}
		if cache != nil {
			hits, misses := cache.Stats()
			fmt.Fprintf(out, "slice: answer cache hits=%d misses=%d\n", hits, misses)
		}
	}
	kind := "peer consistent"
	if *possible {
		kind = "possible"
	}
	fmt.Fprintf(out, "%d %s answer(s):\n", len(ans), kind)
	for _, t := range ans {
		fmt.Fprintln(out, t)
	}
	return nil
}

// delegatedAnswers deploys every peer of the system as a node on an
// in-process transport (full neighbour mesh) and answers through the
// queried peer's delegated distributed path.
func delegatedAnswers(sys *core.System, id core.PeerID, q foquery.Formula, vars []string, transitive bool, par int) ([]relation.Tuple, peernet.DelegationInfo, error) {
	if _, ok := sys.Peer(id); !ok {
		return nil, peernet.DelegationInfo{}, fmt.Errorf("unknown peer %s", id)
	}
	tr := peernet.NewInProc()
	nodes := map[core.PeerID]*peernet.Node{}
	for _, pid := range sys.Peers() {
		p, _ := sys.Peer(pid)
		n := peernet.NewNode(p, tr, nil)
		n.Parallelism = par
		if err := n.Start(":0"); err != nil {
			return nil, peernet.DelegationInfo{}, err
		}
		defer n.Stop()
		nodes[pid] = n
	}
	for _, n := range nodes {
		for _, m := range nodes {
			if n != m {
				n.SetNeighbor(m.Peer.ID, m.BoundAddr())
			}
		}
	}
	return nodes[id].DelegatedAnswersInfo(q, vars, transitive)
}

// cachedAnswers serves the query through the slice-keyed answer cache:
// the key embeds the slice signature and a fingerprint of the relevant
// relations, so the cache needs no invalidation. The CLI is one-shot,
// so the lookup always misses here; the point is to exercise exactly
// the key construction a long-lived node uses (and to surface it via
// -stats) at the cost of one fingerprint pass over the relevant data.
func cachedAnswers(sys *core.System, sl *slice.Slice, cache *slice.AnswerCache, query string, vars []string, compute func() ([]relation.Tuple, error)) ([]relation.Tuple, error) {
	fp, err := slice.DataFingerprint(sys, sl)
	if err != nil {
		return nil, err
	}
	key := slice.AnswerKey(query, vars, sl, fp)
	if ans, ok := cache.Get(key); ok {
		return ans, nil
	}
	ans, err := compute()
	if err != nil {
		return nil, err
	}
	cache.Put(key, ans)
	return ans, nil
}

// lpRuleCounts compares the sliced specification program against the
// full one (rules kept vs total) for the -stats report.
func lpRuleCounts(sys *core.System, id core.PeerID, transitive bool, sl *slice.Slice) (kept, total int, err error) {
	ruleCount := func(opt program.BuildOptions) (int, error) {
		var p *lp.Program
		var e error
		if transitive {
			p, _, e = program.BuildTransitiveOpt(sys, id, opt)
		} else {
			p, _, e = program.BuildDirectOpt(sys, id, opt)
		}
		if e != nil {
			return 0, e
		}
		return len(p.Rules), nil
	}
	if total, err = ruleCount(program.BuildOptions{}); err != nil {
		return 0, 0, err
	}
	if kept, err = ruleCount(program.BuildOptions{KeepDep: sl.KeepDep, RelevantRels: sl.RelevantRels()}); err != nil {
		return 0, 0, err
	}
	return kept, total, nil
}

// lavAnswers computes peer consistent answers through the LAV program
// of Section 4.2: solutions from the tss projections, restricted to the
// peer's schema, intersected.
func lavAnswers(sys *core.System, id core.PeerID, q foquery.Formula, vars []string, par int) ([]relation.Tuple, error) {
	p, ok := sys.Peer(id)
	if !ok {
		return nil, fmt.Errorf("unknown peer %s", id)
	}
	sols, err := program.SolutionsViaLAV(sys, id, program.RunOptions{Parallelism: par})
	if err != nil {
		return nil, err
	}
	if len(sols) == 0 {
		return nil, core.ErrNoSolutions
	}
	restricted := make([]*relation.Instance, len(sols))
	for i, s := range sols {
		restricted[i] = s.Restrict(p.Schema)
	}
	counts := map[string]int{}
	keep := map[string]relation.Tuple{}
	for _, in := range restricted {
		ans, err := foquery.Answers(in, q, vars)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		for _, t := range ans {
			if !seen[t.Key()] {
				seen[t.Key()] = true
				counts[t.Key()]++
				keep[t.Key()] = t
			}
		}
	}
	var out []relation.Tuple
	for k, c := range counts {
		if c == len(restricted) {
			out = append(out, keep[k])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// atomicQueryRel extracts the relation of an atomic query rel(V1,...).
func atomicQueryRel(q string, vars []string) (string, error) {
	f, err := foquery.Parse(q)
	if err != nil {
		return "", err
	}
	a, ok := f.(foquery.Atom)
	if !ok {
		return "", fmt.Errorf("the rewrite engine requires an atomic query, got %s", f)
	}
	if len(a.A.Args) != len(vars) {
		return "", fmt.Errorf("query arity %d does not match %d answer variables", len(a.A.Args), len(vars))
	}
	return a.A.Pred, nil
}
