// Networked peers: deploy Example 1's three peers as TCP servers on
// loopback, then answer a query at P1 with peer-consistent semantics —
// P1 fetches r2 and r3 over the wire exactly as the paper describes
// ("P1 will first issue a query to P2 to retrieve the tuples in R2").
//
//	go run ./examples/network
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/peernet"
)

func main() {
	sys := core.Example1System()
	tr := &peernet.TCP{}

	// Start one node per peer on an ephemeral loopback port.
	nodes := map[core.PeerID]*peernet.Node{}
	for _, id := range sys.Peers() {
		p, _ := sys.Peer(id)
		n := peernet.NewNode(p, tr, nil)
		if err := n.Start("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer n.Stop()
		nodes[id] = n
		fmt.Printf("peer %s serving at %s\n", id, n.Addr)
	}
	// Exchange addresses (a static overlay; discovery would go here).
	for _, n := range nodes {
		for _, m := range nodes {
			if n != m {
				n.SetNeighbor(m.Peer.ID, m.Addr)
			}
		}
	}

	// A remote client can fetch raw relations ...
	tuples, err := nodes["P1"].FetchRelation("P2", "r2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nP1 fetched r2 from P2 over TCP:", tuples)

	// ... batch several relations into one round-trip (OpFetchBatch) ...
	batch, err := nodes["P2"].FetchRelations("P1", []string{"r1"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("P2 batch-fetched r1 from P1:   ", batch["r1"])

	// ... and ask P1 for peer consistent answers; P1 gathers its
	// neighbours' data over the network, repairs virtually, intersects.
	ans, err := nodes["P1"].PeerConsistentAnswers(
		foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnetworked PCAs for r1(X,Y):", ans)

	// Third parties can also delegate the whole computation to P1.
	resp, err := tr.Call(nodes["P1"].Addr, peernet.Request{
		Op: peernet.OpPCA, Query: "r1(X,Y)", Vars: []string{"X", "Y"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if resp.Err != "" {
		log.Fatal(resp.Err)
	}
	fmt.Println("delegated PCAs (OpPCA):      ", resp.Tuples)
}
