// Transitive data exchange (Section 4.3, Example 4): a peer answering
// a query triggers its neighbour's own imports from a third peer the
// querier never sees. The combined specification program integrates
// every peer's local program, reading repaired relations upstream.
//
//	go run ./examples/transitive
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/program"
	"repro/internal/sysdsl"
)

// The system of Example 4, written in the sysdsl text format.
const spec = `
peer P {
  relation r1/2
  relation r2/2
  fact r1(a, b).
  trust less Q
  dec Q: r1(X,Y), s1(Z,Y) -> exists W: r2(X,W), s2(Z,W).
}
peer Q {
  relation s1/2
  relation s2/2
  fact s2(c, e).
  fact s2(c, f).
  trust less C
  dec C: u(X,Y) -> s1(X,Y).
}
peer C {
  relation u/2
  fact u(c, b).
}
`

func main() {
	sys, err := sysdsl.Parse(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Direct case: P only looks at Q's current data; s1 is empty, so
	// the DEC is satisfied and P keeps everything.
	direct, err := program.SolutionsViaLP(sys, "P", program.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct solutions for P: %d (DEC vacuously satisfied)\n", len(direct))

	// Transitive case: Q itself imports U(c,b) from the more trusted C
	// into S1, which retroactively violates P's DEC.
	prog, _, err := program.BuildTransitive(sys, "P")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncombined program (rules (10)-(13) of the paper):")
	fmt.Print(prog)

	sols, err := program.SolutionsViaLP(sys, "P", program.RunOptions{Transitive: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntransitive solutions for P: %d (the paper's r1, r2, r3)\n", len(sols))
	for i, s := range sols {
		fmt.Printf("  S%d = %s\n", i+1, s)
	}

	// Under the transitive semantics P's own tuple is no longer a
	// certain answer: one solution deletes it.
	ans, err := program.PeerConsistentAnswersViaLP(sys, "P",
		foquery.MustParse("r1(X,Y)"), []string{"X", "Y"},
		program.RunOptions{Transitive: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntransitive PCAs for r1(X,Y): %v (r1(a,b) is not certain)\n", ans)

	_ = core.PeerID("P") // keep the core import for documentation purposes
}
