// Quickstart: build the paper's Example 1 system, inspect its two
// solutions, and ask for peer consistent answers with every engine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/program"
	"repro/internal/rewrite"
)

func main() {
	// A P2P data exchange system (Definition 2): three peers, each
	// owning its schema and instance.
	p1 := core.NewPeer("P1").Declare("r1", 2).
		Fact("r1", "a", "b").Fact("r1", "s", "t").
		// P1 trusts P2 more than itself and P3 the same (Definition 2(f)).
		SetTrust("P2", core.TrustLess).
		SetTrust("P3", core.TrustSame).
		// Σ(P1,P2): everything in r2 must be in r1 (an import DEC).
		AddDEC("P2", constraint.Inclusion("sigma(P1,P2)", "r2", "r1", 2)).
		// Σ(P1,P3): r1 and r3 agree on keys (an equality-generating DEC).
		AddDEC("P3", constraint.KeyEGD("sigma(P1,P3)", "r1", "r3"))
	p2 := core.NewPeer("P2").Declare("r2", 2).
		Fact("r2", "c", "d").Fact("r2", "a", "e")
	p3 := core.NewPeer("P3").Declare("r3", 2).
		Fact("r3", "a", "f").Fact("r3", "s", "u")

	sys := core.NewSystem().MustAddPeer(p1).MustAddPeer(p2).MustAddPeer(p3)

	fmt.Println("global instance:", sys.Global())

	// The solutions for P1 (Definition 4): minimal virtual repairs that
	// satisfy the DECs while respecting trust.
	sols, err := core.SolutionsFor(sys, "P1", core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P1 has %d solutions:\n", len(sols))
	for i, s := range sols {
		fmt.Printf("  S%d = %s\n", i+1, s)
	}

	// Peer consistent answers (Definition 5): true in every solution.
	q := foquery.MustParse("r1(X,Y)")
	ans, err := core.PeerConsistentAnswers(sys, "P1", q, []string{"X", "Y"}, core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PCAs via repair semantics:", ans)

	// Same answers through the answer-set program of Section 3 ...
	ans2, err := program.PeerConsistentAnswersViaLP(sys, "P1", q, []string{"X", "Y"}, program.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PCAs via stable models:   ", ans2)

	// ... and through the first-order rewriting of Section 2.
	f, err := rewrite.RewriteAtom(sys, "P1", "r1", []string{"X", "Y"}, rewrite.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rewritten query:", f)
	ans3, err := rewrite.PCAByRewriting(sys, "P1", "r1", []string{"X", "Y"}, rewrite.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PCAs via rewriting:       ", ans3)
}
