// Referential exchange constraints (Section 3): a clinical-trials peer
// imports patient-measurement links from a more trusted lab peer under
// the DEC (3) pattern, and answers queries through the specification
// program — both in the direct GAV style and in the annotated LAV
// style of the appendix.
//
//	go run ./examples/referential
package main

import (
	"fmt"
	"log"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/program"
	"repro/internal/term"
)

func main() {
	// Peer "trials" records enrolment(patient, cohort) and
	// assay(patient, sample). Peer "lab" records cohortplan(site,
	// cohort) and samples(site, sample). The exchange constraint says:
	// an enrolled patient in a cohort planned at a site must have an
	// assay sample that the site actually produced:
	//
	//   ∀p,c,s ∃m (enrolment(p,c) ∧ cohortplan(s,c)
	//               → assay(p,m) ∧ samples(s,m))
	dec := &constraint.Dependency{
		Name: "trial_lab",
		Body: []term.Atom{
			term.NewAtom("enrolment", term.V("P"), term.V("C")),
			term.NewAtom("cohortplan", term.V("S"), term.V("C")),
		},
		ExVars: []string{"M"},
		Head: []term.Atom{
			term.NewAtom("assay", term.V("P"), term.V("M")),
			term.NewAtom("samples", term.V("S"), term.V("M")),
		},
	}

	trials := core.NewPeer("trials").
		Declare("enrolment", 2).Declare("assay", 2).
		Fact("enrolment", "pat7", "cohortA").
		SetTrust("lab", core.TrustLess).
		AddDEC("lab", dec)
	lab := core.NewPeer("lab").
		Declare("cohortplan", 2).Declare("samples", 2).
		Fact("cohortplan", "site1", "cohortA").
		Fact("samples", "site1", "m42").
		Fact("samples", "site1", "m43")
	sys := core.NewSystem().MustAddPeer(trials).MustAddPeer(lab)

	// The GAV specification program (Section 3.1 pattern).
	prog, _, err := program.BuildDirect(sys, "trials")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("direct specification program:")
	fmt.Print(prog)

	// Its stable models are the solutions: drop the enrolment, or
	// adopt one of the lab's samples as the assay witness.
	sols, err := program.SolutionsViaLP(sys, "trials", program.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d solutions:\n", len(sols))
	for i, s := range sols {
		fmt.Printf("  S%d = %s\n", i+1, s)
	}

	// The LAV route (Section 4.2) agrees.
	lav, err := program.SolutionsViaLAV(sys, "trials", program.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLAV route solutions: %d (must agree)\n", len(lav))

	// Skeptical query answering via a query program (Section 3.2):
	// which patients certainly have an assay in every solution?
	qp, err := program.ConjunctiveQueryProgram(prog, mustNaming(sys), []term.Atom{
		term.NewAtom("assay", term.V("P"), term.V("M")),
	}, nil, []string{"P"})
	if err != nil {
		log.Fatal(err)
	}
	ans, has, err := program.CautiousAnswers(qp, program.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncertain assay patients (has solutions: %v): %v\n", has, ans)
	fmt.Println("(none: one solution drops the enrolment instead of inserting)")
}

func mustNaming(sys *core.System) *program.Naming {
	_, naming, err := program.BuildDirect(sys, "trials")
	if err != nil {
		log.Fatal(err)
	}
	return naming
}
