// CQA vs PCA: the paper grounds its semantics in consistent query
// answering for single databases [Arenas, Bertossi, Chomicki 1999] and
// highlights the differences (Section 2): peer consistent answers can
// *add* tuples a peer does not own, while consistent answers never can.
// This example runs both side by side on the same data.
//
//	go run ./examples/cqa
package main

import (
	"fmt"
	"log"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/relation"
	"repro/internal/repair"
)

func main() {
	// A single inconsistent database: salaries violating the key FD.
	db := relation.NewInstance()
	db.Insert("salary", relation.Tuple{"ann", "50"})
	db.Insert("salary", relation.Tuple{"ann", "70"}) // conflict
	db.Insert("salary", relation.Tuple{"bob", "40"})
	fd := constraint.FD("salary_key", "salary")

	reps, err := repair.Repairs(db, []*constraint.Dependency{fd}, repair.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-database repairs (Definition 1): %d\n", len(reps))
	for i, r := range reps {
		fmt.Printf("  R%d = %s\n", i+1, r)
	}

	q := foquery.MustParse("salary(X,Y)")
	cqa, err := repair.ConsistentAnswers(db, []*constraint.Dependency{fd}, q, []string{"X", "Y"}, repair.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("consistent answers (CQA):", cqa)
	fmt.Println("→ only bob's tuple is certain; CQA never invents data.")

	// Now the P2P version: the same salary table at peer HR, plus a
	// payroll peer HR trusts more, connected by an import DEC.
	hr := core.NewPeer("HR").Declare("salary", 2).
		Fact("salary", "ann", "50").
		Fact("salary", "ann", "70").
		Fact("salary", "bob", "40").
		AddIC(constraint.FD("salary_key", "salary")).
		SetTrust("Payroll", core.TrustLess).
		AddDEC("Payroll", constraint.Inclusion("import", "ledger", "salary", 2))
	payroll := core.NewPeer("Payroll").Declare("ledger", 2).
		Fact("ledger", "cleo", "90")
	sys := core.NewSystem().MustAddPeer(hr).MustAddPeer(payroll)

	pca, err := core.PeerConsistentAnswers(sys, "HR", q, []string{"X", "Y"}, core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npeer consistent answers at HR:", pca)
	fmt.Println("→ cleo's tuple is imported from the trusted peer: a PCA that is")
	fmt.Println("  not an answer over HR in isolation — the paper's key contrast")
	fmt.Println("  with CQA (Section 2).")

	possible, err := core.PossibleAnswers(sys, "HR", q, []string{"X", "Y"}, core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npossible (brave) answers at HR:", possible)
}
