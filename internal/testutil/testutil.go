// Package testutil provides the shared harness of the cross-package
// determinism stress tests: it renders everything the engines compute
// for one (system, peer, query) triple — repairs/solutions, the ground
// program, stable models and both routes' consistent answers — into a
// single canonical byte string, so tests can assert that every
// parallelism level produces byte-identical results.
package testutil

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/lp"
	"repro/internal/lp/ground"
	"repro/internal/lp/solve"
	"repro/internal/program"
)

// DefaultLevels is the parallelism sweep of the determinism stress
// tests: the sequential engine, small pools, and a pool larger than the
// work on the small fixtures (so the "more workers than items" paths
// are exercised too).
var DefaultLevels = []int{1, 2, 4, 8}

// Fingerprint renders every engine output for the triple into one
// canonical string. Errors are part of the fingerprint (a deterministic
// engine must fail identically at every parallelism level), so the
// helper only returns an error for setup problems (e.g. an unparsable
// query).
func Fingerprint(s *core.System, id core.PeerID, query string, vars []string, par int) (string, error) {
	q, err := foquery.Parse(query)
	if err != nil {
		return "", fmt.Errorf("testutil: bad query %q: %v", query, err)
	}
	var b strings.Builder

	// Repair-engine route: solutions (= repairs of Definition 4), peer
	// consistent answers, possible answers.
	sols, err := core.SolutionsFor(s, id, core.SolveOptions{Parallelism: par})
	fmt.Fprintf(&b, "solutions err=%v\n", err)
	for _, r := range sols {
		fmt.Fprintf(&b, "solution %s\n", r.Key())
	}
	pca, err := core.PeerConsistentAnswers(s, id, q, vars, core.SolveOptions{Parallelism: par})
	fmt.Fprintf(&b, "pca err=%v tuples=%v\n", err, pca)
	poss, err := core.PossibleAnswers(s, id, q, vars, core.SolveOptions{Parallelism: par})
	fmt.Fprintf(&b, "possible err=%v tuples=%v\n", err, poss)

	// LP route: the ground program itself (grounding must be
	// byte-identical, not just model-equivalent), its stable models,
	// and the LP-side consistent answers.
	prog, _, err := program.BuildDirect(s, id)
	if err != nil {
		fmt.Fprintf(&b, "lp build err=%v\n", err)
		return b.String(), nil
	}
	unfolded, err := lp.UnfoldChoice(prog)
	if err != nil {
		fmt.Fprintf(&b, "lp unfold err=%v\n", err)
		return b.String(), nil
	}
	g, err := ground.GroundOpt(unfolded, ground.Options{Parallelism: par})
	if err != nil {
		fmt.Fprintf(&b, "lp ground err=%v\n", err)
		return b.String(), nil
	}
	fmt.Fprintf(&b, "ground atoms=%v\n", g.Atoms)
	b.WriteString(g.String())
	models, err := solve.StableModels(g, solve.Options{Parallelism: par})
	fmt.Fprintf(&b, "models err=%v\n", err)
	b.WriteString(solve.FormatModels(models))
	lpAns, err := program.PeerConsistentAnswersViaLP(s, id, q, vars, program.RunOptions{Parallelism: par})
	fmt.Fprintf(&b, "lp pca err=%v tuples=%v\n", err, lpAns)
	return b.String(), nil
}

// RequireParallelismInvariant asserts that the fingerprint of the
// triple is byte-identical at every level (the first level is the
// reference). The system builder is invoked once per level so the
// levels cannot influence each other through shared caches or symbol
// tables.
func RequireParallelismInvariant(t *testing.T, name string, build func() *core.System, id core.PeerID, query string, vars []string, levels []int) {
	t.Helper()
	if len(levels) < 2 {
		t.Fatalf("%s: need at least two parallelism levels, got %v", name, levels)
	}
	var want string
	for i, par := range levels {
		got, err := Fingerprint(build(), id, query, vars, par)
		if err != nil {
			t.Fatalf("%s: parallelism=%d: %v", name, par, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("%s: output diverges between parallelism=%d and parallelism=%d:\n--- parallelism=%d ---\n%s\n--- parallelism=%d ---\n%s",
				name, levels[0], par, levels[0], want, par, got)
		}
	}
}
