package bitset

import (
	"math/rand"
	"sort"
	"testing"
)

// refSet mirrors a Set as a plain map — the oracle for randomized
// equivalence below.
type refSet map[uint32]bool

func (r refSet) toSet() Set {
	var s Set
	for i := range r {
		s.Set(i)
	}
	return s
}

func (r refSet) sorted() []uint32 {
	out := make([]uint32, 0, len(r))
	for i := range r {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func TestSetBasics(t *testing.T) {
	var s Set
	if !s.Empty() || s.Count() != 0 || s.Has(0) || s.Has(1000) {
		t.Fatal("zero value is not an empty set")
	}
	s.Set(3)
	s.Set(64) // second word
	s.Set(3)  // idempotent
	if s.Count() != 2 || !s.Has(3) || !s.Has(64) || s.Has(4) {
		t.Fatalf("after Set: %v count=%d", s, s.Count())
	}
	s.Clear(64)
	if len(s) != 1 {
		t.Fatalf("Clear(64) did not re-trim: len=%d", len(s))
	}
	s.Clear(200) // beyond capacity: no-op
	s.Flip(3)
	if !s.Empty() || len(s) != 0 {
		t.Fatalf("Flip to empty did not trim: %v", s)
	}
	s.Flip(130)
	if !s.Has(130) || s.Count() != 1 {
		t.Fatalf("Flip grow: %v", s)
	}
}

func TestCanonicalFormInvariant(t *testing.T) {
	// Two construction orders for the same bits must be deep-equal and
	// share a Key — the invariant every map-based dedup in the repair
	// engine relies on.
	a := New(256)
	a.Set(5)
	a.Set(200)
	a.Clear(200) // shrinks back below one word
	var b Set
	b.Set(5)
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Fatalf("canonical form violated: a=%v b=%v", a, b)
	}
	if New(0) != nil || New(-1) != nil {
		t.Fatal("New(<=0) should be nil")
	}
}

func TestSubsetXorFlipAllAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		ra, rb := refSet{}, refSet{}
		for i := 0; i < rng.Intn(40); i++ {
			ra[uint32(rng.Intn(300))] = true
		}
		for i := range ra { // bias b toward supersets sometimes
			if rng.Intn(2) == 0 {
				rb[i] = true
			}
		}
		for i := 0; i < rng.Intn(40); i++ {
			rb[uint32(rng.Intn(300))] = true
		}
		a, b := ra.toSet(), rb.toSet()

		wantSub := true
		for i := range ra {
			if !rb[i] {
				wantSub = false
				break
			}
		}
		if a.SubsetOf(b) != wantSub {
			t.Fatalf("trial %d: SubsetOf = %v, want %v", trial, a.SubsetOf(b), wantSub)
		}
		if !a.SubsetOf(a) {
			t.Fatalf("trial %d: a not subset of itself", trial)
		}

		x := Xor(a, b)
		wantXor := refSet{}
		for i := range ra {
			if !rb[i] {
				wantXor[i] = true
			}
		}
		for i := range rb {
			if !ra[i] {
				wantXor[i] = true
			}
		}
		if !x.Equal(wantXor.toSet()) {
			t.Fatalf("trial %d: Xor mismatch", trial)
		}
		if x.Count() != len(wantXor) {
			t.Fatalf("trial %d: Xor count %d want %d", trial, x.Count(), len(wantXor))
		}

		// FlipAll over b's members must reproduce Xor(a, b); duplicate
		// ids cancel pairwise.
		ids := rb.sorted()
		if f := FlipAll(a, ids); !f.Equal(x) {
			t.Fatalf("trial %d: FlipAll != Xor", trial)
		}
		dup := append(append([]uint32{}, ids...), ids...)
		if f := FlipAll(a, dup); !f.Equal(a) {
			t.Fatalf("trial %d: doubled FlipAll should cancel to base", trial)
		}
		// FlipAll must not mutate its base.
		if !a.Equal(ra.toSet()) {
			t.Fatalf("trial %d: FlipAll mutated base", trial)
		}

		// ForEach ascending enumeration matches the reference order.
		var got []uint32
		a.ForEach(func(i uint32) { got = append(got, i) })
		want := ra.sorted()
		if len(got) != len(want) {
			t.Fatalf("trial %d: ForEach count %d want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: ForEach[%d] = %d want %d", trial, i, got[i], want[i])
			}
		}

		// Key equality iff set equality (over this trial's pair).
		if (a.Key() == b.Key()) != a.Equal(b) {
			t.Fatalf("trial %d: Key/Equal disagree", trial)
		}
		if c := a.Clone(); !c.Equal(a) {
			t.Fatalf("trial %d: Clone mismatch", trial)
		}
	}
}

func TestAppendKeyReuse(t *testing.T) {
	var s Set
	s.Set(1)
	s.Set(100)
	buf := make([]byte, 0, 64)
	k1 := string(s.AppendKey(buf[:0]))
	if k1 != s.Key() {
		t.Fatal("AppendKey into reused buffer differs from Key")
	}
	var empty Set
	if empty.Key() != "" || len(empty.AppendKey(nil)) != 0 {
		t.Fatal("empty set must have empty key")
	}
}
