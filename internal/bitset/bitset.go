// Package bitset implements dense bit sets over small unsigned integer
// ids. The repair engine keys its deltas, visited sets and subsumption
// checks by interned fact ids (symtab.Sym), and the columnar relation
// store keys live rows by dense row ids — both are exactly the shape a
// packed []uint64 serves best: O(n/64) subset and xor, allocation-free
// membership, and a canonical byte key for map-based dedup.
//
// Canonical form: a Set never ends in a zero word. All constructors and
// mutators in this package preserve that invariant, so two Sets holding
// the same bits are deep-equal, produce the same Key, and compare
// correctly under SubsetOf regardless of the capacity they grew
// through. Clearing bits through Clear or Flip re-trims automatically.
package bitset

import (
	"encoding/binary"
	"math/bits"
)

// Set is a bit set in canonical (trailing-zero-trimmed) form. The zero
// value is an empty set ready for use.
type Set []uint64

// New returns an empty set with capacity for n bits, so that setting
// ids below n never reallocates.
func New(n int) Set {
	if n <= 0 {
		return nil
	}
	return make(Set, 0, (n+63)/64)
}

// Has reports whether bit i is set.
func (s Set) Has(i uint32) bool {
	w := int(i >> 6)
	return w < len(s) && s[w]&(1<<(i&63)) != 0
}

// Set sets bit i, growing as needed.
func (s *Set) Set(i uint32) {
	w := int(i >> 6)
	for len(*s) <= w {
		*s = append(*s, 0)
	}
	(*s)[w] |= 1 << (i & 63)
}

// Clear clears bit i and re-trims to canonical form.
func (s *Set) Clear(i uint32) {
	w := int(i >> 6)
	if w >= len(*s) {
		return
	}
	(*s)[w] &^= 1 << (i & 63)
	s.trim()
}

// Flip toggles bit i, growing or re-trimming as needed.
func (s *Set) Flip(i uint32) {
	w := int(i >> 6)
	for len(*s) <= w {
		*s = append(*s, 0)
	}
	(*s)[w] ^= 1 << (i & 63)
	s.trim()
}

func (s *Set) trim() {
	n := len(*s)
	for n > 0 && (*s)[n-1] == 0 {
		n--
	}
	*s = (*s)[:n]
}

// Count returns the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (s Set) Empty() bool { return len(s) == 0 }

// Clone returns an independent copy.
func (s Set) Clone() Set {
	if len(s) == 0 {
		return nil
	}
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Equal reports whether both sets hold exactly the same bits.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i, w := range s {
		if t[i] != w {
			return false
		}
	}
	return true
}

// SubsetOf reports s ⊆ t.
func (s Set) SubsetOf(t Set) bool {
	if len(s) > len(t) {
		return false
	}
	for i, w := range s {
		if w&^t[i] != 0 {
			return false
		}
	}
	return true
}

// Xor returns the symmetric difference a △ b as a new canonical set.
func Xor(a, b Set) Set {
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make(Set, len(a))
	copy(out, a)
	for i, w := range b {
		out[i] ^= w
	}
	out.trim()
	return out
}

// FlipAll returns a copy of base with every listed bit toggled, in
// canonical form. Duplicate ids toggle repeatedly (two occurrences
// cancel), matching xor semantics; callers that mean set semantics
// must dedup first.
func FlipAll(base Set, ids []uint32) Set {
	out := base.Clone()
	for _, i := range ids {
		w := int(i >> 6)
		for len(out) <= w {
			out = append(out, 0)
		}
		out[w] ^= 1 << (i & 63)
	}
	out.trim()
	return out
}

// ForEach calls fn for every set bit in ascending order.
func (s Set) ForEach(fn func(uint32)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(uint32(wi<<6 + b))
			w &= w - 1
		}
	}
}

// AppendKey appends the canonical byte encoding of the set (8 bytes per
// word, little-endian) to dst and returns it. Because sets are trimmed,
// equal sets produce equal keys.
func (s Set) AppendKey(dst []byte) []byte {
	for _, w := range s {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], w)
		dst = append(dst, b[:]...)
	}
	return dst
}

// Key returns the canonical byte encoding as a string, usable as a map
// key for set-level dedup.
func (s Set) Key() string { return string(s.AppendKey(nil)) }
