// Package rewrite implements the first-order query rewriting technique
// of Section 2 (Example 2): the query posed to a peer is transformed so
// that its standard answers over the *current* instances are the peer
// consistent answers — no repairs or stable models are computed.
//
// Supported class (checked; ErrNotApplicable otherwise):
//
//   - the query is atomic over one of the peer's relations;
//   - DECs toward more-trusted peers are full inclusion dependencies
//     importing into the peer's relations ("relaxation" disjuncts);
//   - DECs toward equally-trusted peers are key EGDs
//     ∀xyz (R(x,y) ∧ O(x,z) → y = z) guarding kept tuples;
//   - EGD partner relations receive no imports themselves.
//
// This mirrors the paper's observation that FO rewriting "is bound to
// have important limitations in terms of completeness" for existential
// queries and DECs — those cases are served by the LP route
// (internal/program) and the repair route (internal/core).
//
// Guard refinement: the paper's formula (1) protects a kept tuple
// R1(x,y) from a conflict R3(x,z1) when ∃z2 R2(x,z2). An import with
// z2 = z1 does not actually force the deletion of R3(x,z1), so this
// package emits the refined protection ∃z2 (R2(x,z2) ∧ z2 ≠ z1), which
// coincides with the paper's guard on Example 1's instance and agrees
// with the Definition 4/5 semantics on the whole class (property-tested
// against both other engines). Option PaperGuard reproduces formula (1)
// verbatim.
package rewrite

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/relation"
	"repro/internal/term"
)

// ErrNotApplicable reports that the system or query falls outside the
// rewriting class.
type ErrNotApplicable struct{ Reason string }

func (e ErrNotApplicable) Error() string {
	return "rewrite: not applicable: " + e.Reason
}

// Options tunes the rewriting.
type Options struct {
	// PaperGuard emits the exact guard of formula (1) in the paper
	// (protection by any import on the key) instead of the refined
	// guard (protection by an import differing from the conflicting
	// value). Both coincide on Example 1.
	PaperGuard bool
}

// RewriteAtom rewrites the atomic query rel(v1,...,vk) posed to peer
// id into a first-order formula over the current global schema whose
// standard answers are the peer consistent answers.
func RewriteAtom(s *core.System, id core.PeerID, rel string, vars []string, opt Options) (foquery.Formula, error) {
	p, ok := s.Peer(id)
	if !ok {
		return nil, fmt.Errorf("rewrite: unknown peer %s", id)
	}
	decl, ok := p.Schema.Decl(rel)
	if !ok {
		return nil, ErrNotApplicable{fmt.Sprintf("relation %s is not in L(%s)", rel, id)}
	}
	if len(vars) != decl.Arity {
		return nil, fmt.Errorf("rewrite: %s has arity %d, got %d variables", rel, decl.Arity, len(vars))
	}

	shape, err := analyze(s, p)
	if err != nil {
		return nil, err
	}

	args := make([]term.Term, len(vars))
	for i, v := range vars {
		if !foquery.IsVarName(v) {
			return nil, fmt.Errorf("rewrite: %q is not a variable name", v)
		}
		args[i] = term.V(v)
	}

	// Kept disjunct: rel(x̄) guarded by one condition per EGD on rel.
	kept := []foquery.Formula{foquery.Atom{A: term.Atom{Pred: rel, Args: args}}}
	for _, egd := range shape.egds[rel] {
		if decl.Arity != 2 {
			return nil, ErrNotApplicable{"key EGD guards require binary relations"}
		}
		kept = append(kept, guardFor(rel, egd, args, shape.imports[rel], opt))
	}
	var out foquery.Formula
	if len(kept) == 1 {
		out = kept[0]
	} else {
		out = foquery.And{Fs: kept}
	}

	// Relaxation disjuncts: one per import source.
	fs := []foquery.Formula{out}
	for _, src := range shape.imports[rel] {
		fs = append(fs, foquery.Atom{A: term.Atom{Pred: src, Args: args}})
	}
	if len(fs) == 1 {
		return fs[0], nil
	}
	return foquery.Or{Fs: fs}, nil
}

// egdInfo describes a key EGD ∀xyz (rel(x,y) ∧ partner(x,z) → y = z).
type egdInfo struct {
	partner string
	// partnerMutable: the partner belongs to an equally-trusted peer,
	// so conflicts may be resolved by deleting the partner tuple.
	partnerMutable bool
}

type systemShape struct {
	imports map[string][]string  // rel -> import sources (fixed, forced)
	egds    map[string][]egdInfo // rel -> key EGDs
}

// analyze classifies the peer's trusted DECs into the rewriting class.
func analyze(s *core.System, p *core.Peer) (*systemShape, error) {
	shape := &systemShape{imports: map[string][]string{}, egds: map[string][]egdInfo{}}
	for _, lvl := range []core.TrustLevel{core.TrustLess, core.TrustSame} {
		for _, q := range s.TrustedPeers(p.ID, lvl) {
			for _, d := range p.DECs[q] {
				switch {
				case d.IsFullTGD() && len(d.Body) == 1 && len(d.Head) == 1 && len(d.Cond) == 0:
					src, dst := d.Body[0].Pred, d.Head[0].Pred
					if !p.Schema.Has(dst) || p.Schema.Has(src) {
						return nil, ErrNotApplicable{fmt.Sprintf("inclusion %s must import a neighbour relation into L(%s)", d.Name, p.ID)}
					}
					shape.imports[dst] = append(shape.imports[dst], src)
				case d.IsEGD() && isKeyEGD(d):
					a, b := d.Body[0].Pred, d.Body[1].Pred
					var mine, partner string
					switch {
					case p.Schema.Has(a) && !p.Schema.Has(b):
						mine, partner = a, b
					case p.Schema.Has(b) && !p.Schema.Has(a):
						mine, partner = b, a
					default:
						return nil, ErrNotApplicable{fmt.Sprintf("EGD %s must relate one peer relation to one neighbour relation", d.Name)}
					}
					shape.egds[mine] = append(shape.egds[mine], egdInfo{
						partner:        partner,
						partnerMutable: lvl == core.TrustSame,
					})
				default:
					return nil, ErrNotApplicable{fmt.Sprintf("DEC %s outside the rewriting class", d.Name)}
				}
			}
		}
	}
	// EGD partners must not receive imports (would invalidate guards).
	for _, egds := range shape.egds {
		for _, e := range egds {
			if len(shape.imports[e.partner]) > 0 {
				return nil, ErrNotApplicable{fmt.Sprintf("EGD partner %s receives imports", e.partner)}
			}
		}
	}
	return shape, nil
}

// isKeyEGD recognizes ∀xyz (a(x,y) ∧ b(x,z) → y = z): two binary body
// atoms sharing their first variable, with a single head equality over
// their second variables.
func isKeyEGD(d *constraint.Dependency) bool {
	if len(d.Body) != 2 || len(d.HeadEq) != 1 || len(d.Cond) != 0 {
		return false
	}
	a, b := d.Body[0], d.Body[1]
	if len(a.Args) != 2 || len(b.Args) != 2 {
		return false
	}
	if !a.Args[0].IsVar || !a.Args[0].Equal(b.Args[0]) {
		return false
	}
	eq := d.HeadEq[0]
	if eq.Op != "=" {
		return false
	}
	y, z := a.Args[1], b.Args[1]
	return (eq.L.Equal(y) && eq.R.Equal(z)) || (eq.L.Equal(z) && eq.R.Equal(y))
}

// guardFor builds the universal guard protecting a kept tuple rel(x,y)
// from the key EGD with the given partner:
//
//	∀z1 ( partner(x,z1) ∧ ¬protected(x,z1) → z1 = y )
//
// where protected(x,z1) = ∃z2 (import(x,z2) ∧ z2 ≠ z1) for a mutable
// partner with imports (refined guard; the paper's formula (1) omits
// the inequality), and protected ≡ false for a fixed partner.
func guardFor(rel string, egd egdInfo, args []term.Term, imports []string, opt Options) foquery.Formula {
	x, y := args[0], args[1]
	z1 := term.V("Z1_" + egd.partner)
	conflict := foquery.Atom{A: term.NewAtom(egd.partner, x, z1)}

	var ante foquery.Formula = conflict
	if egd.partnerMutable && len(imports) > 0 {
		var prots []foquery.Formula
		z2 := term.V("Z2_" + egd.partner)
		for _, src := range imports {
			inner := []foquery.Formula{foquery.Atom{A: term.NewAtom(src, x, z2)}}
			if !opt.PaperGuard {
				inner = append(inner, foquery.Cmp{Op: "!=", L: z2, R: z1})
			}
			prots = append(prots, foquery.Quant{Vars: []string{z2.Name}, Body: foquery.And{Fs: inner}})
		}
		var prot foquery.Formula
		if len(prots) == 1 {
			prot = prots[0]
		} else {
			prot = foquery.Or{Fs: prots}
		}
		ante = foquery.And{Fs: []foquery.Formula{conflict, foquery.Not{F: prot}}}
	}
	return foquery.Quant{
		Forall: true,
		Vars:   []string{z1.Name},
		Body:   foquery.Implies{A: ante, B: foquery.Cmp{Op: "=", L: z1, R: y}},
	}
}

// PCAByRewriting computes peer consistent answers to the atomic query
// rel(vars) by rewriting and direct evaluation over the current global
// instance — no repairs, no stable models.
func PCAByRewriting(s *core.System, id core.PeerID, rel string, vars []string, opt Options) ([]relation.Tuple, error) {
	f, err := RewriteAtom(s, id, rel, vars, opt)
	if err != nil {
		return nil, err
	}
	return foquery.Answers(s.Global(), f, vars)
}
