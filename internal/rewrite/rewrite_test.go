package rewrite

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/relation"
	"repro/internal/slice"
)

// TestExample2Formula checks the shape of the rewriting against the
// paper's formula (1): with the PaperGuard option, the guard is
// exactly ∀z1 (R3(x,z1) ∧ ¬∃z2 R2(x,z2) → z1 = y), plus the R2
// relaxation disjunct.
func TestExample2Formula(t *testing.T) {
	s := core.Example1System()
	f, err := RewriteAtom(s, "P1", "r1", []string{"X", "Y"}, Options{PaperGuard: true})
	if err != nil {
		t.Fatal(err)
	}
	got := f.String()
	want := "(r1(X,Y) & (forall Z1_r3 ((r3(X,Z1_r3) & !(exists Z2_r3 (r2(X,Z2_r3)))) -> Z1_r3 = Y))) | r2(X,Y)"
	if got != want {
		t.Fatalf("formula = %q\nwant      %q", got, want)
	}
}

// TestExample2Answers: both guard variants must produce the paper's
// answers (a,b), (c,d), (a,e) on Example 1's instance.
func TestExample2Answers(t *testing.T) {
	s := core.Example1System()
	want := []relation.Tuple{{"a", "b"}, {"a", "e"}, {"c", "d"}}
	for _, opt := range []Options{{}, {PaperGuard: true}} {
		got, err := PCAByRewriting(s, "P1", "r1", []string{"X", "Y"}, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("opt %+v: answers = %v, want %v", opt, got, want)
		}
	}
}

// TestRewritingAgreesWithSemantics property-tests the refined rewriting
// against the Definition 4/5 engine on random Example-1-shaped systems.
func TestRewritingAgreesWithSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dom := []string{"a", "b", "c", "d"}
	pick := func() string { return dom[rng.Intn(len(dom))] }
	for trial := 0; trial < 60; trial++ {
		p1 := core.NewPeer("P1").Declare("r1", 2).
			SetTrust("P2", core.TrustLess).SetTrust("P3", core.TrustSame).
			AddDEC("P2", constraint.Inclusion("inc", "r2", "r1", 2)).
			AddDEC("P3", constraint.KeyEGD("egd", "r1", "r3"))
		p2 := core.NewPeer("P2").Declare("r2", 2)
		p3 := core.NewPeer("P3").Declare("r3", 2)
		for i := 0; i < 1+rng.Intn(3); i++ {
			p1.Fact("r1", pick(), pick())
		}
		for i := 0; i < rng.Intn(3); i++ {
			p2.Fact("r2", pick(), pick())
		}
		for i := 0; i < 1+rng.Intn(2); i++ {
			p3.Fact("r3", pick(), pick())
		}
		s := core.NewSystem().MustAddPeer(p1).MustAddPeer(p2).MustAddPeer(p3)

		want, err := core.PeerConsistentAnswers(s, "P1", foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, core.SolveOptions{})
		if err != nil {
			t.Fatalf("trial %d: core: %v", trial, err)
		}
		got, err := PCAByRewriting(s, "P1", "r1", []string{"X", "Y"}, Options{})
		if err != nil {
			t.Fatalf("trial %d: rewrite: %v", trial, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: system %s\nrewrite = %v\nsemantic = %v", trial, s.Global(), got, want)
		}
	}
}

// TestPaperGuardCornerCase documents the corner the refined guard
// fixes: an import equal to the conflicting partner value does not
// force the partner tuple's deletion, so the paper's formula (1) keeps
// a tuple that is not in every solution.
func TestPaperGuardCornerCase(t *testing.T) {
	p1 := core.NewPeer("P1").Declare("r1", 2).
		Fact("r1", "a", "b").
		SetTrust("P2", core.TrustLess).SetTrust("P3", core.TrustSame).
		AddDEC("P2", constraint.Inclusion("inc", "r2", "r1", 2)).
		AddDEC("P3", constraint.KeyEGD("egd", "r1", "r3"))
	// Import r2(a,f) equals the conflicting value r3(a,f): R1(a,f) and
	// R3(a,f) do not conflict, so R3(a,f) survives in some solutions
	// and R1(a,b) must go in those.
	p2 := core.NewPeer("P2").Declare("r2", 2).Fact("r2", "a", "f")
	p3 := core.NewPeer("P3").Declare("r3", 2).Fact("r3", "a", "f")
	s := core.NewSystem().MustAddPeer(p1).MustAddPeer(p2).MustAddPeer(p3)

	semantic, err := core.PeerConsistentAnswers(s, "P1", foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := PCAByRewriting(s, "P1", "r1", []string{"X", "Y"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	paper, err := PCAByRewriting(s, "P1", "r1", []string{"X", "Y"}, Options{PaperGuard: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refined, semantic) {
		t.Fatalf("refined guard should match semantics: %v vs %v", refined, semantic)
	}
	if reflect.DeepEqual(paper, semantic) {
		t.Fatalf("corner case should separate the paper guard from the semantics (both %v)", paper)
	}
	// (a,b) is the spurious keep under the paper guard.
	if !tupleIn(paper, relation.Tuple{"a", "b"}) || tupleIn(semantic, relation.Tuple{"a", "b"}) {
		t.Fatalf("paper=%v semantic=%v", paper, semantic)
	}
}

func tupleIn(ts []relation.Tuple, t relation.Tuple) bool {
	for _, x := range ts {
		if x.Equal(t) {
			return true
		}
	}
	return false
}

// TestNotApplicable checks that out-of-class inputs are rejected with
// ErrNotApplicable rather than silently mis-rewritten.
func TestNotApplicable(t *testing.T) {
	// Referential DEC: outside the rewriting class.
	s := core.Section31System()
	_, err := RewriteAtom(s, "P", "r1", []string{"X", "Y"}, Options{})
	if _, ok := err.(ErrNotApplicable); !ok {
		t.Fatalf("want ErrNotApplicable, got %v", err)
	}
	// Unknown relation.
	s2 := core.Example1System()
	if _, err := RewriteAtom(s2, "P1", "zzz", []string{"X"}, Options{}); err == nil {
		t.Fatal("unknown relation must fail")
	}
	// Arity mismatch.
	if _, err := RewriteAtom(s2, "P1", "r1", []string{"X"}, Options{}); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	// Non-variable answer position.
	if _, err := RewriteAtom(s2, "P1", "r1", []string{"X", "c"}, Options{}); err == nil {
		t.Fatal("constant answer variable must fail")
	}
}

// TestFixedPartnerGuard: with a less-trusted EGD partner the conflict
// cannot be resolved on the partner side, so kept tuples must have no
// conflict at all.
func TestFixedPartnerGuard(t *testing.T) {
	p1 := core.NewPeer("P1").Declare("r1", 2).
		Fact("r1", "a", "b").Fact("r1", "k", "v").
		SetTrust("P3", core.TrustLess).
		AddDEC("P3", constraint.KeyEGD("egd", "r1", "r3"))
	p3 := core.NewPeer("P3").Declare("r3", 2).Fact("r3", "a", "f")
	s := core.NewSystem().MustAddPeer(p1).MustAddPeer(p3)

	f, err := RewriteAtom(s, "P1", "r1", []string{"X", "Y"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(f.String(), "exists") {
		t.Fatalf("fixed partner must have no protection disjunct: %s", f)
	}
	got, err := PCAByRewriting(s, "P1", "r1", []string{"X", "Y"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.PeerConsistentAnswers(s, "P1", foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rewrite=%v semantic=%v", got, want)
	}
	if len(got) != 1 || !got[0].Equal(relation.Tuple{"k", "v"}) {
		t.Fatalf("answers = %v", got)
	}
}

// TestRewrittenQuerySliceCoverage: the rewritten query of Section 2
// buries the import and conflict-partner relations inside universally
// quantified guards, negations and implications; the relevance slice
// seeded from the rewritten formula's predicates must surface every
// one of them (they all have to be fetched before evaluating it).
func TestRewrittenQuerySliceCoverage(t *testing.T) {
	s := core.Example1System()
	f, err := RewriteAtom(s, "P1", "r1", []string{"X", "Y"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	preds := foquery.Preds(f)
	want := map[string]bool{"r1": true, "r2": true, "r3": true}
	for _, p := range preds {
		delete(want, p)
	}
	if len(want) != 0 {
		t.Fatalf("rewritten query misses predicates %v (got %v)", want, preds)
	}
	sl, err := slice.Compute(s, "P1", preds, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"r1", "r2", "r3"} {
		if !sl.Has(rel) {
			t.Errorf("slice for the rewritten query misses %s: %v", rel, sl.Rels)
		}
	}
}
