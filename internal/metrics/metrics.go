// Package metrics is the serving plane's observability layer: atomic
// counters and gauges, fixed-bucket latency histograms with approximate
// quantiles, and an ordered registry that renders everything as plain
// "name value" text (and serves it over HTTP). Everything is stdlib
// only and safe for concurrent use; observation paths are lock-free
// (single atomic adds), so instrumenting a hot path costs nanoseconds.
package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 level (queue depth, in-flight count).
type Gauge struct{ v atomic.Int64 }

// Set stores the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of exponential histogram buckets: bucket i
// covers durations up to 1µs<<i, so the top finite bound is about 4.5
// minutes and the last bucket absorbs everything beyond it.
const histBuckets = 28

// Histogram accumulates duration observations into fixed exponential
// buckets (powers of two from 1µs). Quantiles are approximate: the
// answer is interpolated inside the bucket holding the requested rank,
// so the error is bounded by the bucket width (a factor of two).
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	bound := time.Microsecond
	for i := 0; i < histBuckets-1; i++ {
		if d <= bound {
			return i
		}
		bound <<= 1
	}
	return histBuckets - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean reports the average observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile reports the approximate q-quantile (q in [0,1]) of the
// observed durations, 0 when empty. The rank is located in the bucket
// cumulative counts and interpolated linearly inside the bucket.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	lower := time.Duration(0)
	upper := time.Microsecond
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n > 0 && float64(cum+n) >= rank {
			frac := (rank - float64(cum)) / float64(n)
			return lower + time.Duration(frac*float64(upper-lower))
		}
		cum += n
		lower = upper
		if i < histBuckets-2 {
			upper <<= 1
		}
	}
	return lower
}

// Registry names metrics and renders them in registration order. The
// lookup methods are idempotent: asking for an existing name returns
// the already-registered metric, so independent components can share
// counters by name.
type Registry struct {
	mu    sync.Mutex
	order []string
	items map[string]any // *Counter | *Gauge | *Histogram | func() float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{items: make(map[string]any)}
}

func (r *Registry) lookup(name string, make func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if it, ok := r.items[name]; ok {
		return it
	}
	it := make()
	r.items[name] = it
	r.order = append(r.order, name)
	return it
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	return r.lookup(name, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	return r.lookup(name, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the named histogram, registering it on first use.
// Rendering expands it into name_count, name_mean_us, name_p50_us and
// name_p99_us lines.
func (r *Registry) Histogram(name string) *Histogram {
	return r.lookup(name, func() any { return new(Histogram) }).(*Histogram)
}

// Func registers a computed metric: fn is evaluated at render time.
// Use it to surface externally-owned counters (cache stats, derived
// rates) without copying them into the registry. Re-registering a name
// keeps the first function.
func (r *Registry) Func(name string, fn func() float64) {
	r.lookup(name, func() any { return fn })
}

// formatValue renders integral floats without a fraction so counters
// surfaced through Func read like counters.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// Render writes every metric as "name value" lines in registration
// order.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	items := make(map[string]any, len(r.items))
	for k, v := range r.items {
		items[k] = v
	}
	r.mu.Unlock()
	for _, name := range order {
		switch it := items[name].(type) {
		case *Counter:
			fmt.Fprintf(w, "%s %d\n", name, it.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s %d\n", name, it.Value())
		case *Histogram:
			fmt.Fprintf(w, "%s_count %d\n", name, it.Count())
			fmt.Fprintf(w, "%s_mean_us %.1f\n", name, float64(it.Mean())/float64(time.Microsecond))
			fmt.Fprintf(w, "%s_p50_us %.1f\n", name, float64(it.Quantile(0.50))/float64(time.Microsecond))
			fmt.Fprintf(w, "%s_p99_us %.1f\n", name, float64(it.Quantile(0.99))/float64(time.Microsecond))
		case func() float64:
			fmt.Fprintf(w, "%s %s\n", name, formatValue(it()))
		}
	}
}

// Names reports the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}

// ServeHTTP renders the registry as text/plain, so a Registry can be
// mounted directly as the /metrics endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	r.Render(w)
}
