package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var hist Histogram
	// 90 fast observations and 10 slow ones: p50 must land near the
	// fast cluster, p99 near the slow one. Quantiles are bucketed, so
	// assert against bucket-width bounds, not exact values.
	for i := 0; i < 90; i++ {
		hist.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		hist.Observe(5 * time.Millisecond)
	}
	if hist.Count() != 100 {
		t.Fatalf("count = %d", hist.Count())
	}
	if p50 := hist.Quantile(0.50); p50 > 32*time.Microsecond {
		t.Fatalf("p50 = %s, want within the fast bucket", p50)
	}
	if p99 := hist.Quantile(0.99); p99 < time.Millisecond || p99 > 16*time.Millisecond {
		t.Fatalf("p99 = %s, want within a factor of two of 5ms", p99)
	}
	if m := hist.Mean(); m < 100*time.Microsecond || m > time.Millisecond {
		t.Fatalf("mean = %s, want ~509µs", m)
	}
}

func TestHistogramEmptyAndExtremes(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-time.Second)   // clamped to 0
	h.Observe(24 * time.Hour) // beyond the top bucket
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(1); q <= 0 {
		t.Fatalf("max quantile = %s, want positive", q)
	}
}

func TestRegistryRenderAndHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(3)
	r.Gauge("depth").Set(2)
	r.Histogram("lat").Observe(time.Millisecond)
	r.Func("derived", func() float64 { return 1.5 })
	r.Func("integral", func() float64 { return 42 })
	if same := r.Counter("reqs"); same.Value() != 3 {
		t.Fatal("Counter lookup must be idempotent")
	}

	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	for _, want := range []string{"reqs 3\n", "depth 2\n", "lat_count 1\n", "lat_p99_us ", "derived 1.500\n", "integral 42\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if len(r.Names()) != 5 {
		t.Fatalf("names = %v", r.Names())
	}

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "reqs 3") {
		t.Fatalf("http render: code=%d body=%q", rec.Code, rec.Body.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Observe(time.Microsecond)
				var sb strings.Builder
				r.Render(&sb)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8*200 {
		t.Fatalf("shared = %d, want %d", got, 8*200)
	}
}
