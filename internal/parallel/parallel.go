// Package parallel is the tiny worker-pool substrate shared by the
// concurrent engines (repair intersection, core stage-2 fan-out,
// peernet neighbour fetch): bounded fan-out over an index space with
// an inline fast path, so Parallelism: 1 code paths stay goroutine-free
// and byte-identical to the historical sequential loops.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a Parallelism knob: values <= 0 mean GOMAXPROCS.
func Workers(p int) int {
	if p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes f(0..n-1) on at most p concurrent workers. With p <= 1
// or a single item it runs inline on the calling goroutine, avoiding
// any scheduling overhead on the sequential path. f must write results
// only to its own index slot (or otherwise synchronize).
func Run(n, p int, f func(int)) {
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// MapErr runs f(0..n-1) on at most p workers, collecting the results
// by index. If any call fails it returns the first error in index
// order (deterministic regardless of scheduling); the results are
// discarded in that case.
func MapErr[T any](n, p int, f func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	Run(n, p, func(i int) {
		out[i], errs[i] = f(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
