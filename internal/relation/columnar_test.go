package relation

// Property, fuzz and concurrency tests for the columnar storage plane:
// every observable behaviour of the packed-segment Instance is checked
// against refInstance, a deliberately naive map-of-maps implementation
// matching the seed's storage model. The reference is test-only — it
// exists so the equivalence oracle stays independent of the arena,
// slot-index and copy-on-write machinery under test.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/term"
)

// refInstance is the map-backed reference: one map per relation, keyed
// by the rendered fact key, exactly the seed's representation.
type refInstance struct {
	rels map[string]map[string]Tuple
}

func newRef() *refInstance { return &refInstance{rels: map[string]map[string]Tuple{}} }

func refKey(t Tuple) string {
	k := fmt.Sprintf("%d", len(t))
	for _, v := range t {
		k += "\x1f" + v
	}
	return k
}

func (r *refInstance) insert(rel string, t Tuple) bool {
	m := r.rels[rel]
	if m == nil {
		m = map[string]Tuple{}
		r.rels[rel] = m
	}
	k := refKey(t)
	if _, ok := m[k]; ok {
		return false
	}
	m[k] = append(Tuple(nil), t...)
	return true
}

func (r *refInstance) delete(rel string, t Tuple) bool {
	m := r.rels[rel]
	k := refKey(t)
	if _, ok := m[k]; !ok {
		return false
	}
	delete(m, k)
	return true
}

func (r *refInstance) has(rel string, t Tuple) bool {
	_, ok := r.rels[rel][refKey(t)]
	return ok
}

// tuples returns the relation's tuples in the canonical sorted order
// Instance.Tuples documents.
func (r *refInstance) tuples(rel string) []Tuple {
	var out []Tuple
	for _, t := range r.rels[rel] {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// matching filters tuples by the pattern's ground arguments, the
// specification MatchingTuples implements with its column indexes.
func (r *refInstance) matching(pat term.Atom) []Tuple {
	var out []Tuple
	for _, t := range r.tuples(pat.Pred) {
		if len(t) != len(pat.Args) {
			continue
		}
		ok := true
		for i, a := range pat.Args {
			if !a.IsVar && t[i] != a.Name {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	return out
}

func (r *refInstance) clone() *refInstance {
	c := newRef()
	for rel, m := range r.rels {
		cm := make(map[string]Tuple, len(m))
		for k, t := range m {
			cm[k] = t
		}
		c.rels[rel] = cm
	}
	return c
}

func (r *refInstance) count(rel string) int { return len(r.rels[rel]) }

func (r *refInstance) size() int {
	n := 0
	for _, m := range r.rels {
		n += len(m)
	}
	return n
}

// checkEquiv compares every observable of the Instance against the
// reference: membership, counts, the sorted tuple view, and indexed
// pattern matching for a spread of ground/variable argument shapes.
func checkEquiv(t *testing.T, label string, in *Instance, ref *refInstance, rels []string, dom []string) {
	t.Helper()
	if in.Size() != ref.size() {
		t.Fatalf("%s: Size = %d, ref %d", label, in.Size(), ref.size())
	}
	var buf []Tuple
	for _, rel := range rels {
		if in.Count(rel) != ref.count(rel) {
			t.Fatalf("%s: Count(%s) = %d, ref %d", label, rel, in.Count(rel), ref.count(rel))
		}
		got := in.Tuples(rel)
		want := ref.tuples(rel)
		if len(got) != len(want) {
			t.Fatalf("%s: Tuples(%s) len %d, ref %d\ngot %v\nwant %v", label, rel, len(got), len(want), got, want)
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("%s: Tuples(%s)[%d] = %v, ref %v", label, rel, i, got[i], want[i])
			}
		}
		for _, pat := range []term.Atom{
			term.NewAtom(rel, term.V("X"), term.V("Y")),
			term.NewAtom(rel, term.C(dom[0]), term.V("Y")),
			term.NewAtom(rel, term.V("X"), term.C(dom[1])),
			term.NewAtom(rel, term.C(dom[2]), term.C(dom[0])),
		} {
			got := in.MatchingTuplesBuf(pat, &buf)
			want := ref.matching(pat)
			if len(got) != len(want) {
				t.Fatalf("%s: MatchingTuples(%v) len %d, ref %d", label, pat, len(got), len(want))
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("%s: MatchingTuples(%v)[%d] = %v, ref %v", label, pat, i, got[i], want[i])
				}
			}
		}
		for _, v := range dom {
			tu := Tuple{v, dom[0]}
			if in.Has(rel, tu) != ref.has(rel, tu) {
				t.Fatalf("%s: Has(%s, %v) = %v, ref %v", label, rel, tu, in.Has(rel, tu), ref.has(rel, tu))
			}
		}
	}
}

// TestColumnarMatchesMapReference drives random insert/delete/clone
// sequences through the columnar Instance and the map-backed reference
// in lockstep: tombstone revival, COW privatization and the
// cache-invalidation levels all get exercised because deletes and
// re-inserts hit the same keys repeatedly from a small domain.
func TestColumnarMatchesMapReference(t *testing.T) {
	rels := []string{"r", "s"}
	dom := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		in := NewInstance()
		ref := newRef()
		// Interleaved clone lineage: ops alternate between the current
		// pair and a clone taken mid-sequence, so shared segments see
		// both liveness-only and structural mutations afterwards.
		for step := 0; step < 120; step++ {
			rel := rels[rng.Intn(len(rels))]
			tu := Tuple{dom[rng.Intn(len(dom))], dom[rng.Intn(len(dom))]}
			switch rng.Intn(5) {
			case 0, 1, 2: // insert (biased: keeps relations populated)
				if got, want := in.Insert(rel, tu), ref.insert(rel, tu); got != want {
					t.Fatalf("trial %d step %d: Insert(%s,%v) = %v, ref %v", trial, step, rel, tu, got, want)
				}
			case 3:
				if got, want := in.Delete(rel, tu), ref.delete(rel, tu); got != want {
					t.Fatalf("trial %d step %d: Delete(%s,%v) = %v, ref %v", trial, step, rel, tu, got, want)
				}
			case 4: // clone and switch lineage; old pair must stay frozen
				oldIn, oldRef := in, ref
				in, ref = in.Clone(), ref.clone()
				// Mutate the new lineage, then verify the old one did
				// not move (COW isolation).
				in.Insert(rel, tu)
				ref.insert(rel, tu)
				checkEquiv(t, fmt.Sprintf("trial %d step %d (parent after clone mutation)", trial, step), oldIn, oldRef, rels, dom)
			}
			if step%17 == 0 {
				checkEquiv(t, fmt.Sprintf("trial %d step %d", trial, step), in, ref, rels, dom)
			}
		}
		checkEquiv(t, fmt.Sprintf("trial %d final", trial), in, ref, rels, dom)
		// Canonical key/hash agree with a rebuilt instance holding the
		// same facts (storage history — tombstones, arena order — must
		// not leak into observables).
		rebuilt := NewInstance()
		for _, rel := range rels {
			for _, tu := range ref.tuples(rel) {
				rebuilt.Insert(rel, tu)
			}
		}
		if in.Key() != rebuilt.Key() {
			t.Fatalf("trial %d: Key differs from rebuilt instance", trial)
		}
		if !in.Equal(rebuilt) {
			t.Fatalf("trial %d: Equal differs from rebuilt instance", trial)
		}
		for _, rel := range rels {
			if in.RelHash(rel) != rebuilt.RelHash(rel) {
				t.Fatalf("trial %d: RelHash(%s) differs from rebuilt instance", trial, rel)
			}
		}
	}
}

// FuzzColumnarOps fuzzes the same lockstep equivalence with a raw byte
// string as the op tape, so the fuzzer can search for op interleavings
// the random trials miss (e.g. delete-revive-delete of one key across
// a clone boundary).
func FuzzColumnarOps(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x83, 0x01, 0xc4})
	f.Add([]byte{0x00, 0x40, 0x80, 0xc0, 0x00, 0x40})
	f.Add([]byte("delete-revive-delete"))
	f.Fuzz(func(t *testing.T, tape []byte) {
		rels := []string{"r", "s"}
		dom := []string{"a", "b", "c", "d"}
		in := NewInstance()
		ref := newRef()
		for _, b := range tape {
			rel := rels[int(b>>5)%len(rels)]
			tu := Tuple{dom[int(b>>3)%len(dom)], dom[int(b>>1)%len(dom)]}
			switch b % 3 {
			case 0, 1:
				if in.Insert(rel, tu) != ref.insert(rel, tu) {
					t.Fatalf("Insert(%s,%v) diverged", rel, tu)
				}
			case 2:
				if in.Delete(rel, tu) != ref.delete(rel, tu) {
					t.Fatalf("Delete(%s,%v) diverged", rel, tu)
				}
			}
			if b&0x10 != 0 {
				in, ref = in.Clone(), ref.clone()
			}
		}
		checkEquiv(t, "fuzz final", in, ref, rels, dom)
	})
}

// TestCloneCOWConcurrentMutation pins the copy-on-write contract under
// the race detector: after Clone, the parent and the clone may be
// mutated and read from different goroutines concurrently — each write
// privatizes against the shared segments, which are never written in
// place — and a second clone may serve reads (cache fills included)
// throughout. Run with -race to make the isolation claim meaningful.
func TestCloneCOWConcurrentMutation(t *testing.T) {
	in := NewInstance()
	for i := 0; i < 200; i++ {
		in.Insert("r", Tuple{fmt.Sprintf("k%d", i), "v"})
	}
	parent := in
	clone := in.Clone()
	reader := in.Clone()

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			parent.Delete("r", Tuple{fmt.Sprintf("k%d", i), "v"})
			parent.Insert("r", Tuple{fmt.Sprintf("p%d", i), "v"})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 100; i < 200; i++ {
			clone.Delete("r", Tuple{fmt.Sprintf("k%d", i), "v"})
			clone.Insert("r", Tuple{fmt.Sprintf("c%d", i), "v"})
		}
	}()
	go func() {
		defer wg.Done()
		var buf []Tuple
		for i := 0; i < 50; i++ {
			if n := len(reader.Tuples("r")); n != 200 {
				t.Errorf("reader clone sees %d tuples, want 200", n)
				return
			}
			reader.RelHash("r")
			reader.MatchingTuplesBuf(term.NewAtom("r", term.V("X"), term.C("v")), &buf)
		}
	}()
	wg.Wait()

	if parent.Count("r") != 200 || clone.Count("r") != 200 || reader.Count("r") != 200 {
		t.Fatalf("counts diverged: parent=%d clone=%d reader=%d",
			parent.Count("r"), clone.Count("r"), reader.Count("r"))
	}
	for i := 0; i < 100; i++ {
		if parent.Has("r", Tuple{fmt.Sprintf("k%d", i), "v"}) {
			t.Fatalf("parent delete of k%d leaked back", i)
		}
		if !clone.Has("r", Tuple{fmt.Sprintf("k%d", i), "v"}) {
			t.Fatalf("clone lost k%d to the parent's delete", i)
		}
		if !reader.Has("r", Tuple{fmt.Sprintf("k%d", i), "v"}) {
			t.Fatalf("reader lost k%d", i)
		}
	}
	for i := 100; i < 200; i++ {
		if !parent.Has("r", Tuple{fmt.Sprintf("k%d", i), "v"}) {
			t.Fatalf("parent lost k%d to the clone's delete", i)
		}
		if clone.Has("r", Tuple{fmt.Sprintf("k%d", i), "v"}) {
			t.Fatalf("clone delete of k%d leaked back", i)
		}
	}
}

// TestMatchingTuplesBufReuse pins the buffer contract: results from a
// previous MatchingTuplesBuf call must stay valid only until the next
// call with the same buffer, and the no-ground-args fall-back must NOT
// capture the shared sorted view into the caller's buffer (a later
// filtered call would then scribble over the live cache).
func TestMatchingTuplesBufReuse(t *testing.T) {
	in := NewInstance()
	in.Insert("r", Tuple{"a", "1"})
	in.Insert("r", Tuple{"b", "2"})
	in.Insert("r", Tuple{"a", "3"})

	var buf []Tuple
	all := in.MatchingTuplesBuf(term.NewAtom("r", term.V("X"), term.V("Y")), &buf)
	if len(all) != 3 {
		t.Fatalf("full view = %v", all)
	}
	if buf != nil {
		t.Fatalf("fall-back path wrote the shared view into the caller's buffer")
	}
	got := in.MatchingTuplesBuf(term.NewAtom("r", term.C("a"), term.V("Y")), &buf)
	if len(got) != 2 || got[0][1] != "1" || got[1][1] != "3" {
		t.Fatalf("filtered = %v", got)
	}
	// The earlier full view must be unaffected by the filtered call.
	if len(all) != 3 || all[0][0] != "a" || all[1][0] != "a" || all[2][0] != "b" {
		t.Fatalf("shared sorted view corrupted by buffered call: %v", all)
	}
}

// TestTombstoneReviveKeepsViews covers the delete → re-insert cycle the
// repair search performs constantly: revival must restore the exact
// tuple, keep the sorted order canonical, and advance the generation so
// memoized views refresh.
func TestTombstoneReviveKeepsViews(t *testing.T) {
	in := NewInstance()
	in.Insert("r", Tuple{"a", "1"})
	in.Insert("r", Tuple{"b", "2"})
	g0 := in.RelGen("r")
	in.Delete("r", Tuple{"a", "1"})
	if got := in.Tuples("r"); len(got) != 1 || got[0][0] != "b" {
		t.Fatalf("after delete: %v", got)
	}
	in.Insert("r", Tuple{"a", "1"}) // revives the tombstoned row
	if got := in.Tuples("r"); len(got) != 2 || got[0][0] != "a" || got[1][0] != "b" {
		t.Fatalf("after revive: %v", got)
	}
	if in.RelGen("r") == g0 {
		t.Fatal("generation did not advance across delete+revive")
	}
	if in.Count("r") != 2 {
		t.Fatalf("Count = %d", in.Count("r"))
	}
}
