package relation

import "sync"

// Change is one fact-level mutation of an instance: the fact that was
// inserted into or deleted from its relation. Only membership changes
// are recorded — re-inserting a present tuple or deleting an absent one
// produces no Change.
type Change struct {
	Fact   Fact
	Insert bool
}

// Journal records the fact-level mutation history of an Instance so
// incremental consumers can replay exactly the delta between two points
// in time instead of diffing (or re-reading) whole relations. Sequence
// numbers count every membership change since the journal was attached;
// the journal keeps only the most recent cap changes, and Since reports
// when a requested suffix has been trimmed away.
//
// A Journal is attached to at most one live Instance (SetJournal);
// clones and restrictions of that instance do not inherit it, so
// speculative copies mutated during a repair search never pollute the
// history. Recording and reading are mutex-synchronized: the instance
// itself does not allow concurrent mutation, but a reader may snapshot
// the journal while a writer on another goroutine appends.
type Journal struct {
	mu   sync.Mutex
	buf  []Change
	base uint64 // sequence number of buf[0]
	cap  int
}

// DefaultJournalCap bounds the history kept by NewJournal(0). It is
// sized for serving-plane churn: far more than one slice delta between
// consecutive queries of a hot entry, small enough to be irrelevant
// next to the instance itself.
const DefaultJournalCap = 1024

// NewJournal returns an empty journal keeping at most cap changes
// (DefaultJournalCap when cap <= 0).
func NewJournal(cap int) *Journal {
	if cap <= 0 {
		cap = DefaultJournalCap
	}
	return &Journal{cap: cap}
}

// Seq returns the sequence number of the next change: the total number
// of membership changes recorded so far.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.base + uint64(len(j.buf))
}

// Since returns a copy of the changes recorded at sequence numbers
// [seq, Seq()). ok is false when that suffix is no longer fully held
// (the journal trimmed past seq, or seq is in the future); the caller
// must then fall back to a non-incremental path.
func (j *Journal) Since(seq uint64) (changes []Change, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := j.base + uint64(len(j.buf))
	if seq < j.base || seq > end {
		return nil, false
	}
	tail := j.buf[seq-j.base:]
	if len(tail) == 0 {
		return nil, true
	}
	out := make([]Change, len(tail))
	copy(out, tail)
	return out, true
}

// record appends one change, trimming the oldest entries beyond cap.
func (j *Journal) record(f Fact, insert bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.buf = append(j.buf, Change{Fact: f, Insert: insert})
	if over := len(j.buf) - j.cap; over > 0 {
		j.base += uint64(over)
		j.buf = append(j.buf[:0], j.buf[over:]...)
	}
}

// SetJournal attaches a journal to the instance: every later membership
// change (Insert/InsertAtom/AddAll/Delete) is recorded. Pass nil to
// detach. Clones and restrictions of the instance never inherit the
// journal.
func (in *Instance) SetJournal(j *Journal) { in.journal = j }

// Journal returns the attached journal, or nil.
func (in *Instance) Journal() *Journal { return in.journal }
