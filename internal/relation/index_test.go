package relation

import (
	"reflect"
	"testing"

	"repro/internal/symtab"
	"repro/internal/term"
)

func testInstance() *Instance {
	in := NewInstance()
	in.Insert("r", Tuple{"a", "b"})
	in.Insert("r", Tuple{"a", "c"})
	in.Insert("r", Tuple{"d", "b"})
	in.Insert("s", Tuple{"a"})
	return in
}

func TestTuplesSharedMatchesTuples(t *testing.T) {
	in := testInstance()
	if got, want := in.TuplesShared("r"), in.Tuples("r"); !reflect.DeepEqual(got, want) {
		t.Fatalf("TuplesShared = %v, Tuples = %v", got, want)
	}
	if got := in.TuplesShared("missing"); got != nil {
		t.Fatalf("TuplesShared(missing) = %v", got)
	}
}

// TestMatchingTuplesEqualsFilteredScan: for every pattern shape, the
// indexed candidates must be the filtered full scan in the same order.
func TestMatchingTuplesEqualsFilteredScan(t *testing.T) {
	in := testInstance()
	pats := []term.Atom{
		term.NewAtom("r", term.V("X"), term.V("Y")),              // full scan
		term.NewAtom("r", term.C("a"), term.V("Y")),              // col 0 bound
		term.NewAtom("r", term.V("X"), term.C("b")),              // col 1 bound
		term.NewAtom("r", term.C("d"), term.C("b")),              // both bound
		term.NewAtom("r", term.C("z"), term.V("Y")),              // unknown constant
		term.NewAtom("r", term.C("a"), term.C("a")),              // known consts, no tuple
		term.NewAtom("missing", term.C("a"), term.V("Y")),        // unknown relation
		term.NewAtom("s", term.C("a"), term.C("b"), term.C("c")), // arity beyond stored
	}
	for _, pat := range pats {
		var want []Tuple
		for _, tup := range in.Tuples(pat.Pred) {
			ok := len(tup) >= 0
			for c, arg := range pat.Args {
				if arg.IsVar {
					continue
				}
				if c >= len(tup) || tup[c] != arg.Name {
					ok = false
					break
				}
			}
			if ok {
				want = append(want, tup)
			}
		}
		got := in.MatchingTuples(pat)
		if len(got) != len(want) {
			t.Fatalf("%s: MatchingTuples = %v, want %v", pat, got, want)
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("%s: MatchingTuples = %v, want %v (order must match the sorted scan)", pat, got, want)
			}
		}
	}
}

// TestIndexInvalidation: mutations must be visible through the cached
// views and indexes.
func TestIndexInvalidation(t *testing.T) {
	in := testInstance()
	pat := term.NewAtom("r", term.C("a"), term.V("Y"))
	if got := in.MatchingTuples(pat); len(got) != 2 {
		t.Fatalf("before insert: %v", got)
	}
	in.Insert("r", Tuple{"a", "z"})
	if got := in.MatchingTuples(pat); len(got) != 3 {
		t.Fatalf("after insert: %v", got)
	}
	in.Delete("r", Tuple{"a", "b"})
	if got := in.MatchingTuples(pat); len(got) != 2 {
		t.Fatalf("after delete: %v", got)
	}
	if got := in.TuplesShared("r"); len(got) != 3 {
		t.Fatalf("after mutations TuplesShared = %v", got)
	}
}

// TestRehome: re-interning onto another table preserves contents and
// makes the instances comparable by id.
func TestRehome(t *testing.T) {
	a := testInstance()
	tab := symtab.New()
	tab.Intern("unrelated") // shift ids so they differ from a's table
	before := a.Key()
	a.Rehome(tab)
	if a.Table() != tab {
		t.Fatal("Rehome did not adopt the table")
	}
	if a.Key() != before {
		t.Fatalf("Rehome changed contents: %q -> %q", before, a.Key())
	}
	if !a.Has("r", Tuple{"a", "b"}) || a.Has("r", Tuple{"b", "a"}) {
		t.Fatal("membership broken after Rehome")
	}
	// Fast-path SymDiff across instances sharing the table.
	b := NewInstanceIn(tab)
	b.AddAll(a)
	if d := SymDiff(a, b); len(d) != 0 {
		t.Fatalf("SymDiff after AddAll = %v", d)
	}
	b.Delete("r", Tuple{"a", "c"})
	b.Insert("s", Tuple{"q"})
	if d := SymDiff(a, b); len(d) != 2 {
		t.Fatalf("SymDiff = %v, want 2 facts", d)
	}
}

// TestCrossTableOps: instances on different tables still compare by
// value through the string fallback paths.
func TestCrossTableOps(t *testing.T) {
	a := testInstance()
	b := testInstance() // separate table with identical contents
	if a.Table() == b.Table() {
		t.Fatal("expected distinct tables")
	}
	if !a.Equal(b) {
		t.Fatal("Equal must hold across tables")
	}
	if d := SymDiff(a, b); len(d) != 0 {
		t.Fatalf("SymDiff across tables = %v", d)
	}
	b.Insert("r", Tuple{"new", "fact"})
	if a.Equal(b) {
		t.Fatal("Equal must see the extra fact")
	}
	if d := SymDiff(a, b); len(d) != 1 {
		t.Fatalf("SymDiff across tables = %v, want 1", d)
	}
	u := a.Union(b)
	if u.Size() != a.Size()+1 {
		t.Fatalf("Union size = %d", u.Size())
	}
}
