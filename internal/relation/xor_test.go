package relation

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/symtab"
)

func TestXorIDsBasic(t *testing.T) {
	cases := []struct{ a, b, want []symtab.Sym }{
		{nil, nil, nil},
		{[]symtab.Sym{1, 3}, nil, []symtab.Sym{1, 3}},
		{nil, []symtab.Sym{2}, []symtab.Sym{2}},
		{[]symtab.Sym{1, 2, 3}, []symtab.Sym{2}, []symtab.Sym{1, 3}},
		{[]symtab.Sym{1, 2}, []symtab.Sym{1, 2}, nil},
		{[]symtab.Sym{1, 4}, []symtab.Sym{2, 4, 9}, []symtab.Sym{1, 2, 9}},
	}
	for _, tc := range cases {
		got := XorIDs(tc.a, tc.b)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) && !(len(got) == 0 && len(tc.want) == 0) {
			t.Fatalf("XorIDs(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestXorIDsMatchesSetSemantics cross-checks the merge walk against a
// map-based symmetric difference over random sorted id sets.
func TestXorIDsMatchesSetSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randSet := func() []symtab.Sym {
		seen := map[symtab.Sym]bool{}
		for i := 0; i < rng.Intn(10); i++ {
			seen[symtab.Sym(rng.Intn(12))] = true
		}
		out := make([]symtab.Sym, 0, len(seen))
		for id := range seen {
			out = append(out, id)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for trial := 0; trial < 300; trial++ {
		a, b := randSet(), randSet()
		want := map[symtab.Sym]bool{}
		for _, id := range a {
			want[id] = !want[id]
		}
		for _, id := range b {
			want[id] = !want[id]
		}
		got := XorIDs(a, b)
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("trial %d: result not sorted: %v", trial, got)
		}
		n := 0
		for _, id := range got {
			if !want[id] {
				t.Fatalf("trial %d: unexpected id %d in %v (a=%v b=%v)", trial, id, got, a, b)
			}
			n++
		}
		for id, in := range want {
			if in {
				n--
				_ = id
			}
		}
		if n != 0 {
			t.Fatalf("trial %d: size mismatch: got %v for a=%v b=%v", trial, got, a, b)
		}
	}
}
