// Package relation implements the in-memory relational storage engine
// underlying the P2P data exchange system: database schemas, relation
// instances as sets of ground tuples, instance algebra (union,
// restriction, symmetric difference) and the active domain. It is the
// concrete realization of the instances r(P) of Definition 2 and of the
// distance Δ(r1,r2) of Definition 1 in the paper.
package relation

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/term"
)

// Tuple is an ordered list of constant values.
type Tuple []string

// Key returns the canonical encoding of the tuple used for set
// membership. Values are joined with a separator that may not occur in
// constants produced by the parsers (US, unit separator).
func (t Tuple) Key() string { return strings.Join(t, "\x1f") }

// String renders the tuple as (a,b).
func (t Tuple) String() string { return "(" + strings.Join(t, ",") + ")" }

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone copies the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// RelDecl declares a relation: its name and arity. Relation names are
// globally unique across peers (Definition 2 assumes disjoint schemas).
type RelDecl struct {
	Name  string
	Arity int
}

// Schema is a set of relation declarations.
type Schema struct {
	decls map[string]RelDecl
	order []string
}

// NewSchema builds a schema from declarations.
func NewSchema(decls ...RelDecl) *Schema {
	s := &Schema{decls: make(map[string]RelDecl)}
	for _, d := range decls {
		s.Add(d)
	}
	return s
}

// Add inserts or overwrites a declaration.
func (s *Schema) Add(d RelDecl) {
	if _, ok := s.decls[d.Name]; !ok {
		s.order = append(s.order, d.Name)
	}
	s.decls[d.Name] = d
}

// Decl returns the declaration of a relation, if present.
func (s *Schema) Decl(name string) (RelDecl, bool) {
	d, ok := s.decls[name]
	return d, ok
}

// Has reports whether the schema declares the relation.
func (s *Schema) Has(name string) bool { _, ok := s.decls[name]; return ok }

// Relations returns the declared relation names in declaration order.
func (s *Schema) Relations() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Union returns a new schema containing the declarations of both.
func (s *Schema) Union(t *Schema) *Schema {
	u := NewSchema()
	for _, n := range s.order {
		u.Add(s.decls[n])
	}
	for _, n := range t.order {
		u.Add(t.decls[n])
	}
	return u
}

// Instance is a database instance: for each relation name, a set of
// tuples. The zero value is not usable; use NewInstance.
type Instance struct {
	rels map[string]map[string]Tuple // name -> key -> tuple
}

// NewInstance returns an empty instance.
func NewInstance() *Instance {
	return &Instance{rels: make(map[string]map[string]Tuple)}
}

// Insert adds a tuple to the named relation. It reports whether the
// tuple was newly added.
func (in *Instance) Insert(rel string, t Tuple) bool {
	m, ok := in.rels[rel]
	if !ok {
		m = make(map[string]Tuple)
		in.rels[rel] = m
	}
	k := t.Key()
	if _, dup := m[k]; dup {
		return false
	}
	m[k] = t.Clone()
	return true
}

// InsertAtom adds a ground atom; it panics on non-ground atoms.
func (in *Instance) InsertAtom(a term.Atom) bool {
	t := make(Tuple, len(a.Args))
	for i, arg := range a.Args {
		if arg.IsVar {
			panic(fmt.Sprintf("relation: InsertAtom on non-ground atom %s", a))
		}
		t[i] = arg.Name
	}
	return in.Insert(a.Pred, t)
}

// Delete removes a tuple; it reports whether the tuple was present.
func (in *Instance) Delete(rel string, t Tuple) bool {
	m, ok := in.rels[rel]
	if !ok {
		return false
	}
	k := t.Key()
	if _, present := m[k]; !present {
		return false
	}
	delete(m, k)
	return true
}

// Has reports membership of a tuple.
func (in *Instance) Has(rel string, t Tuple) bool {
	m, ok := in.rels[rel]
	if !ok {
		return false
	}
	_, present := m[t.Key()]
	return present
}

// HasAtom reports membership of a ground atom.
func (in *Instance) HasAtom(a term.Atom) bool {
	t := make(Tuple, len(a.Args))
	for i, arg := range a.Args {
		if arg.IsVar {
			return false
		}
		t[i] = arg.Name
	}
	return in.Has(a.Pred, t)
}

// Tuples returns the tuples of a relation in deterministic (sorted)
// order. The returned tuples are copies.
func (in *Instance) Tuples(rel string) []Tuple {
	m := in.rels[rel]
	out := make([]Tuple, 0, len(m))
	for _, t := range m {
		out = append(out, t.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Count returns the number of tuples in a relation.
func (in *Instance) Count(rel string) int { return len(in.rels[rel]) }

// Size returns the total number of tuples in the instance.
func (in *Instance) Size() int {
	n := 0
	for _, m := range in.rels {
		n += len(m)
	}
	return n
}

// Relations returns the names of the non-empty relations, sorted.
func (in *Instance) Relations() []string {
	out := make([]string, 0, len(in.rels))
	for name, m := range in.rels {
		if len(m) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the instance.
func (in *Instance) Clone() *Instance {
	c := NewInstance()
	for rel, m := range in.rels {
		cm := make(map[string]Tuple, len(m))
		for k, t := range m {
			cm[k] = t.Clone()
		}
		c.rels[rel] = cm
	}
	return c
}

// Union returns a new instance holding the tuples of both. This is the
// global instance r̄ of Definition 3(b).
func (in *Instance) Union(other *Instance) *Instance {
	u := in.Clone()
	for rel, m := range other.rels {
		for _, t := range m {
			u.Insert(rel, t)
		}
	}
	return u
}

// Restrict returns the restriction of the instance to the relations of
// the given schema (Definition 3(c), r|S').
func (in *Instance) Restrict(s *Schema) *Instance {
	r := NewInstance()
	for rel, m := range in.rels {
		if !s.Has(rel) {
			continue
		}
		for _, t := range m {
			r.Insert(rel, t)
		}
	}
	return r
}

// RestrictRels returns the restriction to an explicit set of relation
// names.
func (in *Instance) RestrictRels(names map[string]bool) *Instance {
	r := NewInstance()
	for rel, m := range in.rels {
		if !names[rel] {
			continue
		}
		for _, t := range m {
			r.Insert(rel, t)
		}
	}
	return r
}

// Equal reports whether two instances contain exactly the same tuples.
func (in *Instance) Equal(other *Instance) bool {
	if in.Size() != other.Size() {
		return false
	}
	for rel, m := range in.rels {
		om := other.rels[rel]
		if len(m) != len(om) {
			return false
		}
		for k := range m {
			if _, ok := om[k]; !ok {
				return false
			}
		}
	}
	return true
}

// Key returns a canonical string for the whole instance, usable for
// de-duplication of instances (e.g. of peer solutions).
func (in *Instance) Key() string {
	var parts []string
	for _, rel := range in.Relations() {
		for _, t := range in.Tuples(rel) {
			parts = append(parts, rel+t.String())
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// String renders the instance as a sorted list of facts.
func (in *Instance) String() string {
	var parts []string
	for _, rel := range in.Relations() {
		for _, t := range in.Tuples(rel) {
			parts = append(parts, rel+t.String())
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Atoms returns every tuple of the instance as a ground atom, in
// deterministic order. This is Σ(r) in Definition 1 of the paper.
func (in *Instance) Atoms() []term.Atom {
	var out []term.Atom
	for _, rel := range in.Relations() {
		for _, t := range in.Tuples(rel) {
			args := make([]term.Term, len(t))
			for i, v := range t {
				args[i] = term.C(v)
			}
			out = append(out, term.Atom{Pred: rel, Args: args})
		}
	}
	return out
}

// ActiveDomain returns the sorted set of constants occurring in the
// instance.
func (in *Instance) ActiveDomain() []string {
	seen := make(map[string]bool)
	for _, m := range in.rels {
		for _, t := range m {
			for _, v := range t {
				seen[v] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Fact is a (relation, tuple) pair, used to describe instance deltas.
type Fact struct {
	Rel   string
	Tuple Tuple
}

// String renders the fact as rel(a,b).
func (f Fact) String() string { return f.Rel + f.Tuple.String() }

// Key returns the canonical key for the fact.
func (f Fact) Key() string { return f.Rel + "\x1e" + f.Tuple.Key() }

// SymDiff computes the symmetric difference Δ(r1,r2) of Definition 1:
// the facts in r1 but not r2, and the facts in r2 but not r1.
func SymDiff(r1, r2 *Instance) []Fact {
	var out []Fact
	for rel, m := range r1.rels {
		for _, t := range m {
			if !r2.Has(rel, t) {
				out = append(out, Fact{rel, t.Clone()})
			}
		}
	}
	for rel, m := range r2.rels {
		for _, t := range m {
			if !r1.Has(rel, t) {
				out = append(out, Fact{rel, t.Clone()})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// DeltaKeySet converts a delta into a set of fact keys, for ⊆ tests.
func DeltaKeySet(delta []Fact) map[string]bool {
	s := make(map[string]bool, len(delta))
	for _, f := range delta {
		s[f.Key()] = true
	}
	return s
}

// SubsetOf reports whether delta a is a subset of delta b (as fact
// sets). Used for the ≤r minimality order of Definition 1(b).
func SubsetOf(a, b map[string]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
