// Package relation implements the in-memory relational storage engine
// underlying the P2P data exchange system: database schemas, relation
// instances as sets of ground tuples, instance algebra (union,
// restriction, symmetric difference) and the active domain. It is the
// concrete realization of the instances r(P) of Definition 2 and of the
// distance Δ(r1,r2) of Definition 1 in the paper.
//
// Storage is interned and columnar: every constant is mapped to a dense
// uint32 id in a symtab.Table (shared across the instances of one
// core.System), and each relation keeps its tuples in a packed segment —
// one flat []symtab.Sym arena plus row offsets — addressed by dense
// local row ids. Membership goes through a compact open-addressing hash
// index (tuple content → row id), liveness through a row bitset
// (deletes tombstone their row; re-inserts revive it), and Clone/
// Restrict share whole segments copy-on-write: a clone copies nothing
// until it mutates a relation, which is what makes repair-search
// candidate states cheap at 10^5–10^6-tuple scale. Each relation
// additionally carries lazily built read caches — the sorted string
// view every enumeration is served from and per-column value indexes
// over it — so constraint matching, grounding and the repair search
// join through index lookups instead of full scans. The string-level
// API (Tuple, Insert, Tuples, ...) is preserved as a thin view over the
// packed core, and every enumeration order is unchanged: tuples sort by
// their rendered string key exactly as before.
package relation

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/symtab"
	"repro/internal/term"
)

// Tuple is an ordered list of constant values.
type Tuple []string

// Key returns the canonical encoding of the tuple used for set
// membership. Values are joined with a separator that may not occur in
// constants produced by the parsers (US, unit separator).
func (t Tuple) Key() string { return strings.Join(t, "\x1f") }

// String renders the tuple as (a,b).
func (t Tuple) String() string { return "(" + strings.Join(t, ",") + ")" }

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone copies the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// RelDecl declares a relation: its name and arity. Relation names are
// globally unique across peers (Definition 2 assumes disjoint schemas).
type RelDecl struct {
	Name  string
	Arity int
}

// Schema is a set of relation declarations.
type Schema struct {
	decls map[string]RelDecl
	order []string
}

// NewSchema builds a schema from declarations.
func NewSchema(decls ...RelDecl) *Schema {
	s := &Schema{decls: make(map[string]RelDecl)}
	for _, d := range decls {
		s.Add(d)
	}
	return s
}

// Add inserts or overwrites a declaration.
func (s *Schema) Add(d RelDecl) {
	if _, ok := s.decls[d.Name]; !ok {
		s.order = append(s.order, d.Name)
	}
	s.decls[d.Name] = d
}

// Copy returns an independent schema with the same declarations: the
// snapshot clones of a served peer take one, so a schema-mutating
// write (UpdateLocal running Declare) cannot race readers of an
// earlier snapshot.
func (s *Schema) Copy() *Schema {
	c := &Schema{decls: make(map[string]RelDecl, len(s.decls)), order: make([]string, len(s.order))}
	for n, d := range s.decls {
		c.decls[n] = d
	}
	copy(c.order, s.order)
	return c
}

// Decl returns the declaration of a relation, if present.
func (s *Schema) Decl(name string) (RelDecl, bool) {
	d, ok := s.decls[name]
	return d, ok
}

// Has reports whether the schema declares the relation.
func (s *Schema) Has(name string) bool { _, ok := s.decls[name]; return ok }

// Relations returns the declared relation names in declaration order.
func (s *Schema) Relations() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Union returns a new schema containing the declarations of both.
func (s *Schema) Union(t *Schema) *Schema {
	u := NewSchema()
	for _, n := range s.order {
		u.Add(s.decls[n])
	}
	for _, n := range t.order {
		u.Add(t.decls[n])
	}
	return u
}

// idTuple is a tuple of interned constant ids.
type idTuple []symtab.Sym

// packIDs appends the 4-byte big-endian encoding of each id to dst.
// The packed form is the canonical byte key of an interned id vector.
func packIDs(dst []byte, ids idTuple) []byte {
	for _, id := range ids {
		var w [4]byte
		binary.BigEndian.PutUint32(w[:], id)
		dst = append(dst, w[:]...)
	}
	return dst
}

// relData is the columnar store of one relation. Tuples live in a
// packed segment: the flat ids arena plus row offsets, so row r spans
// ids[offs[r]:offs[r+1]] (handles mixed arity, including arity 0, in
// one code path). Rows are append-only and addressed by dense local
// ids; the live bitset tracks which rows are present (Delete clears the
// bit, leaving a tombstoned row that a later identical Insert revives),
// and slots is an open-addressing hash index from tuple content to
// row+1 for O(1) membership without byte-string keys.
//
// shared marks the segment as referenced by more than one Instance —
// Clone and Restrict set it and hand out the same *relData. The first
// mutation through any holder copies first (copy-on-write), and the
// copy is as shallow as the mutation allows: a liveness change (delete,
// or re-insert of a tombstoned row) copies only the live bitset and
// keeps pointing at the parent's arena (privatizeLive, structShared
// stays set); only appending a genuinely new row copies the arena and
// slot index (privatizeStruct). A repair-search candidate that deletes
// one fact from a million-tuple relation therefore copies kilobytes,
// not megabytes.
type relData struct {
	ids   []symtab.Sym // packed arena of row contents
	offs  []uint32     // row offsets; len = rows+1, offs[0] == 0
	live  bitset.Set   // rows currently present
	liveN int          // == live.Count(), kept incrementally
	slots []int32      // hash index: row+1, 0 = empty; len is a power of two

	shared       atomic.Bool // any part referenced by another Instance
	structShared bool        // ids/offs/slots shared with another relData

	// Read caches, built lazily under mu. The rendered sorted view and
	// the column indexes cover every row ever inserted (tombstones
	// included) and are positioned over that superset, so liveness-only
	// mutations keep them: a delete drops just liveAt and sorted, which
	// rebuild by filtering all — no re-render, no re-sort, no index
	// rebuild. Only a structural mutation (new row) drops everything.
	mu      sync.Mutex
	all     []Tuple                // every row, sorted by Tuple.Key
	allRows []int32                // row ids aligned with all
	liveAt  bitset.Set             // positions in all whose row is live
	sorted  []Tuple                // live rows in sorted order (== all when none dead)
	cols    []map[symtab.Sym][]int // column -> value id -> positions into all
	// gen counts the mutations of the relation; hash is the cached
	// content fingerprint, valid when hashGen == gen (hashGen starts
	// behind gen so the zero value is invalid). Fingerprint composition
	// (slice.DataFingerprint) reuses the cached hash of every relation
	// whose generation did not move instead of rehashing each tuple per
	// query.
	gen     uint64
	hash    uint64
	hashGen uint64
}

func newRelData() *relData { return &relData{offs: []uint32{0}, gen: 1} }

func (r *relData) rowCount() int { return len(r.offs) - 1 }

func (r *relData) rowIDs(row int) idTuple { return r.ids[r.offs[row]:r.offs[row+1]] }

// hashIDs fingerprints an id vector for the slot index (FNV-64a over
// the ids, length-mixed so prefixes of longer rows do not collide).
func hashIDs(ids idTuple) uint64 {
	h := fnv64Offset
	for _, id := range ids {
		h = (h ^ uint64(id)) * fnv64Prime
	}
	return (h ^ uint64(len(ids))) * fnv64Prime
}

func (r *relData) rowEq(row int, ids idTuple) bool {
	got := r.rowIDs(row)
	if len(got) != len(ids) {
		return false
	}
	for i, id := range got {
		if ids[i] != id {
			return false
		}
	}
	return true
}

// findRow returns the dense row id storing the given tuple content
// (live or tombstoned), or -1. Probes compare full content, so hash
// collisions are harmless.
func (r *relData) findRow(ids idTuple) int {
	if len(r.slots) == 0 {
		return -1
	}
	mask := uint64(len(r.slots) - 1)
	for i := hashIDs(ids) & mask; ; i = (i + 1) & mask {
		s := r.slots[i]
		if s == 0 {
			return -1
		}
		if r.rowEq(int(s-1), ids) {
			return int(s - 1)
		}
	}
}

// growIndex rebuilds the slot index with room for want rows at < 3/4
// load. Tombstoned rows stay indexed: they must remain findable so a
// re-insert of identical content revives the row instead of storing a
// duplicate.
func (r *relData) growIndex(want int) {
	n := len(r.slots)
	if n < 16 {
		n = 16
	}
	for want*4 >= n*3 {
		n *= 2
	}
	slots := make([]int32, n)
	mask := uint64(n - 1)
	for row := 0; row < r.rowCount(); row++ {
		for i := hashIDs(r.rowIDs(row)) & mask; ; i = (i + 1) & mask {
			if slots[i] == 0 {
				slots[i] = int32(row + 1)
				break
			}
		}
	}
	r.slots = slots
}

// insertRow appends a new row holding ids (copied into the arena) and
// indexes it. The caller is responsible for liveness.
func (r *relData) insertRow(ids idTuple) int {
	if (r.rowCount()+1)*4 >= len(r.slots)*3 {
		r.growIndex(r.rowCount() + 1)
	}
	row := r.rowCount()
	r.ids = append(r.ids, ids...)
	r.offs = append(r.offs, uint32(len(r.ids)))
	mask := uint64(len(r.slots) - 1)
	for i := hashIDs(ids) & mask; ; i = (i + 1) & mask {
		if r.slots[i] == 0 {
			r.slots[i] = int32(row + 1)
			break
		}
	}
	return row
}

// privatizeLive returns a copy fit for liveness-only mutations: the
// live bitset is copied, the arena/offsets/slot index stay shared with
// the parent (structShared), and the structural read caches — valid for
// the unchanged structure — are carried over by pointer. The copy
// carries the generation forward so RelGen stays monotonic along the
// clone lineage.
func (r *relData) privatizeLive() *relData {
	c := &relData{
		ids:          r.ids,
		offs:         r.offs,
		slots:        r.slots,
		live:         r.live.Clone(),
		liveN:        r.liveN,
		structShared: true,
	}
	r.mu.Lock()
	c.all, c.allRows, c.cols = r.all, r.allRows, r.cols
	c.gen, c.hash, c.hashGen = r.gen, r.hash, r.hashGen
	r.mu.Unlock()
	return c
}

// privatizeStruct returns a fully independent copy, required before
// appending a new row: in-place appends to a shared arena or slot index
// would be visible to (or race with) the other holders.
func (r *relData) privatizeStruct() *relData {
	c := &relData{
		ids:   append([]symtab.Sym(nil), r.ids...),
		offs:  append([]uint32(nil), r.offs...),
		slots: append([]int32(nil), r.slots...),
		live:  r.live.Clone(),
		liveN: r.liveN,
	}
	r.mu.Lock()
	c.all, c.allRows, c.cols = r.all, r.allRows, r.cols
	c.gen, c.hash, c.hashGen = r.gen, r.hash, r.hashGen
	r.mu.Unlock()
	return c
}

// invalidate drops every read cache after a structural mutation (new
// row) and advances the relation's generation.
func (r *relData) invalidate() {
	r.mu.Lock()
	r.all = nil
	r.allRows = nil
	r.liveAt = nil
	r.sorted = nil
	r.cols = nil
	r.gen++
	r.mu.Unlock()
}

// invalidateLive drops only the liveness-dependent caches after a
// delete or revival: the rendered superset view and the column indexes
// survive, so the rebuild is a bitset refresh plus a pointer filter
// instead of a full re-render/re-sort/re-index.
func (r *relData) invalidateLive() {
	r.mu.Lock()
	r.liveAt = nil
	r.sorted = nil
	r.gen++
	r.mu.Unlock()
}

// Instance is a database instance: for each relation name, a set of
// tuples. The zero value is not usable; use NewInstance (private table)
// or NewInstanceIn (table shared with other instances, e.g. per
// core.System). Mutations must not run concurrently with reads of the
// same Instance; the lazily built read caches and the copy-on-write
// segment sharing are internally synchronized, so read-only sharing
// between goroutines — including reading an instance while a clone of
// it is mutated elsewhere — is safe.
type Instance struct {
	tab  *symtab.Table
	rels map[string]*relData
	// journal, when attached (SetJournal), records every membership
	// change. Derived instances (Clone, Union, Restrict) get fresh
	// structs and therefore no journal — see journal.go.
	journal *Journal
}

// NewInstance returns an empty instance with a fresh symbol table.
func NewInstance() *Instance {
	return NewInstanceIn(symtab.New())
}

// NewInstanceIn returns an empty instance interning into the given
// table. Instances derived from this one (Clone, Union, Restrict)
// share the table; tables are append-only and safe for concurrent use.
func NewInstanceIn(tab *symtab.Table) *Instance {
	if tab == nil {
		tab = symtab.New()
	}
	return &Instance{tab: tab, rels: make(map[string]*relData)}
}

// Table returns the symbol table the instance interns into.
func (in *Instance) Table() *symtab.Table { return in.tab }

// Rehome re-interns the instance onto another symbol table, so that it
// shares ids with the instances already living there (core.System does
// this once per added peer). It is a no-op when tab is already the
// instance's table.
func (in *Instance) Rehome(tab *symtab.Table) {
	if tab == nil || tab == in.tab {
		return
	}
	old := in.tab
	in.tab = tab
	for rel, r := range in.rels {
		// Rebuild into a fresh private segment (r may be shared with
		// instances staying on the old table). Tombstoned rows are
		// dropped along the way.
		nr := newRelData()
		nr.gen = r.gen + 1
		r.live.ForEach(func(row uint32) {
			oids := r.rowIDs(int(row))
			nids := make(idTuple, len(oids))
			for i, id := range oids {
				nids[i] = tab.Intern(old.Name(id))
			}
			nrow := nr.insertRow(nids)
			nr.live.Set(uint32(nrow))
			nr.liveN++
		})
		in.rels[rel] = nr
	}
}

// intern converts a string tuple to ids, interning unseen constants.
func (in *Instance) intern(t Tuple) idTuple {
	ids := make(idTuple, len(t))
	for i, v := range t {
		ids[i] = in.tab.Intern(v)
	}
	return ids
}

// lookupInto converts a string tuple to ids without interning,
// appending to buf (callers pass a stack buffer to keep hot membership
// probes allocation-free); ok is false when some constant is unknown to
// the table (then the tuple cannot be present in any relation of this
// instance).
func (in *Instance) lookupInto(buf idTuple, t Tuple) (idTuple, bool) {
	for _, v := range t {
		id, ok := in.tab.Lookup(v)
		if !ok {
			return nil, false
		}
		buf = append(buf, id)
	}
	return buf, true
}

// strings renders an id tuple back to a string tuple.
func (in *Instance) strings(ids idTuple) Tuple {
	t := make(Tuple, len(ids))
	for i, id := range ids {
		t[i] = in.tab.Name(id)
	}
	return t
}

// Insert adds a tuple to the named relation. It reports whether the
// tuple was newly added.
func (in *Instance) Insert(rel string, t Tuple) bool {
	var buf [8]symtab.Sym
	ids := idTuple(buf[:0])
	for _, v := range t {
		ids = append(ids, in.tab.Intern(v))
	}
	return in.insertIDs(rel, ids)
}

// insertIDs adds an id tuple, copying it into the relation's arena. The
// duplicate probe runs before any copy-on-write, so inserting an
// already-present tuple into a shared segment copies nothing; reviving
// a tombstoned row copies only liveness.
func (in *Instance) insertIDs(rel string, ids idTuple) bool {
	r, ok := in.rels[rel]
	if !ok {
		r = newRelData()
		in.rels[rel] = r
	} else if row := r.findRow(ids); row >= 0 {
		if r.live.Has(uint32(row)) {
			return false
		}
		if r.shared.Load() {
			r = r.privatizeLive()
			in.rels[rel] = r
		}
		r.live.Set(uint32(row))
		r.liveN++
		r.invalidateLive()
		if in.journal != nil {
			in.journal.record(Fact{Rel: rel, Tuple: in.strings(ids)}, true)
		}
		return true
	} else if r.shared.Load() || r.structShared {
		r = r.privatizeStruct()
		in.rels[rel] = r
	}
	row := r.insertRow(ids)
	r.live.Set(uint32(row))
	r.liveN++
	r.invalidate()
	if in.journal != nil {
		in.journal.record(Fact{Rel: rel, Tuple: in.strings(ids)}, true)
	}
	return true
}

// InsertAtom adds a ground atom; it panics on non-ground atoms.
func (in *Instance) InsertAtom(a term.Atom) bool {
	var buf [8]symtab.Sym
	ids := idTuple(buf[:0])
	for _, arg := range a.Args {
		if arg.IsVar {
			panic(fmt.Sprintf("relation: InsertAtom on non-ground atom %s", a))
		}
		ids = append(ids, in.tab.Intern(arg.Name))
	}
	return in.insertIDs(a.Pred, ids)
}

// Delete removes a tuple; it reports whether the tuple was present.
// The row is tombstoned (live bit cleared), not compacted away, so
// deletes never move rows; a later identical Insert revives it.
func (in *Instance) Delete(rel string, t Tuple) bool {
	r, ok := in.rels[rel]
	if !ok {
		return false
	}
	var buf [8]symtab.Sym
	ids, ok := in.lookupInto(buf[:0], t)
	if !ok {
		return false
	}
	row := r.findRow(ids)
	if row < 0 || !r.live.Has(uint32(row)) {
		return false
	}
	if r.shared.Load() {
		r = r.privatizeLive()
		in.rels[rel] = r
	}
	r.live.Clear(uint32(row))
	r.liveN--
	r.invalidateLive()
	if in.journal != nil {
		in.journal.record(Fact{Rel: rel, Tuple: t.Clone()}, false)
	}
	return true
}

// Has reports membership of a tuple.
func (in *Instance) Has(rel string, t Tuple) bool {
	r, ok := in.rels[rel]
	if !ok {
		return false
	}
	var buf [8]symtab.Sym
	ids, ok := in.lookupInto(buf[:0], t)
	if !ok {
		return false
	}
	row := r.findRow(ids)
	return row >= 0 && r.live.Has(uint32(row))
}

// HasAtom reports membership of a ground atom.
func (in *Instance) HasAtom(a term.Atom) bool {
	r, ok := in.rels[a.Pred]
	if !ok {
		return false
	}
	var buf [8]symtab.Sym
	ids := idTuple(buf[:0])
	for _, arg := range a.Args {
		if arg.IsVar {
			return false
		}
		id, known := in.tab.Lookup(arg.Name)
		if !known {
			return false
		}
		ids = append(ids, id)
	}
	row := r.findRow(ids)
	return row >= 0 && r.live.Has(uint32(row))
}

// buildViews (re)builds the relation's read caches under r.mu, each
// level only if missing: the rendered superset view (every row ever
// inserted, sorted by canonical key — keys are rendered once per tuple,
// not once per comparison), the position-liveness bitset over it, and
// the live sorted view. After a liveness-only mutation the first level
// is still present, so the rebuild is a bitset refresh plus a pointer
// filter over already-rendered tuples.
func (in *Instance) buildViews(r *relData) {
	if r.all == nil && r.rowCount() > 0 {
		type rec struct {
			key string
			t   Tuple
			row int32
		}
		n := r.rowCount()
		recs := make([]rec, 0, n)
		for row := 0; row < n; row++ {
			t := in.strings(r.rowIDs(row))
			recs = append(recs, rec{key: t.Key(), t: t, row: int32(row)})
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
		r.all = make([]Tuple, len(recs))
		r.allRows = make([]int32, len(recs))
		for i, rc := range recs {
			r.all[i] = rc.t
			r.allRows[i] = rc.row
		}
	}
	if r.liveN == 0 {
		return
	}
	if r.liveAt == nil {
		la := bitset.New(len(r.all))
		for i, row := range r.allRows {
			if r.live.Has(uint32(row)) {
				la.Set(uint32(i))
			}
		}
		r.liveAt = la
	}
	if r.sorted == nil {
		if r.liveN == len(r.all) {
			r.sorted = r.all
		} else {
			s := make([]Tuple, 0, r.liveN)
			r.liveAt.ForEach(func(i uint32) {
				s = append(s, r.all[int(i)])
			})
			r.sorted = s
		}
	}
}

// sortedView returns the relation's cached sorted string view, building
// it on first use. The returned slice and its tuples are read-only.
func (in *Instance) sortedView(rel string) []Tuple {
	r, ok := in.rels[rel]
	if !ok || r.liveN == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	in.buildViews(r)
	return r.sorted
}

// colIndex returns the relation's lazily built per-column indexes plus
// the views they are positioned over. The indexes are built directly
// from the packed segment (no string re-hashing) and cover tombstoned
// rows too, which is what lets them survive deletes; MatchingTuples
// filters candidates through liveAt.
func (in *Instance) colIndex(rel string) (cols []map[symtab.Sym][]int, all, sorted []Tuple, liveAt bitset.Set) {
	r, ok := in.rels[rel]
	if !ok || r.liveN == 0 {
		return nil, nil, nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	in.buildViews(r)
	if r.cols == nil && len(r.all) > 0 {
		arity := 0
		for _, row := range r.allRows {
			if n := len(r.rowIDs(int(row))); n > arity {
				arity = n
			}
		}
		cols := make([]map[symtab.Sym][]int, arity)
		for c := range cols {
			cols[c] = make(map[symtab.Sym][]int)
		}
		for i, row := range r.allRows {
			for c, id := range r.rowIDs(int(row)) {
				cols[c][id] = append(cols[c][id], i)
			}
		}
		r.cols = cols
	}
	return r.cols, r.all, r.sorted, r.liveAt
}

// Tuples returns the tuples of a relation in deterministic (sorted)
// order. The returned tuples are copies.
func (in *Instance) Tuples(rel string) []Tuple {
	view := in.sortedView(rel)
	out := make([]Tuple, len(view))
	for i, t := range view {
		out[i] = t.Clone()
	}
	return out
}

// TuplesShared returns the tuples of a relation in the same order as
// Tuples but without copying. The result is a shared read-only view:
// callers must not modify the slice or its tuples, and must not hold it
// across mutations of the instance.
func (in *Instance) TuplesShared(rel string) []Tuple {
	return in.sortedView(rel)
}

// MatchingTuples returns the tuples of pat.Pred that agree with every
// ground argument of the pattern, using the per-column indexes: the
// ground column with the fewest candidates drives the lookup and the
// remaining ground columns filter. Variables match anything, so
// callers still need term.Match for variable consistency (repeated
// variables) and arity. The result preserves the sorted enumeration
// order of Tuples and is a shared read-only view like TuplesShared.
// Patterns with no ground arguments fall back to the full (shared)
// view.
func (in *Instance) MatchingTuples(pat term.Atom) []Tuple {
	var buf []Tuple
	return in.MatchingTuplesBuf(pat, &buf)
}

// MatchingTuplesBuf is MatchingTuples with a caller-supplied result
// buffer: when the pattern has ground columns the filtered result is
// appended into *buf (grown as needed and written back), so hot join
// loops — constraint matching at 10^5-tuple scale — can reuse one
// buffer per recursion depth instead of allocating per probe. The
// full-view fall-back leaves *buf untouched and returns the shared
// sorted view directly; either way the tuples themselves remain shared
// and read-only.
func (in *Instance) MatchingTuplesBuf(pat term.Atom, buf *[]Tuple) []Tuple {
	cols, all, sorted, liveAt := in.colIndex(pat.Pred)
	if len(sorted) == 0 {
		return nil
	}
	best := -1 // candidate index list; -1 means full scan
	var bestList []int
	for c, arg := range pat.Args {
		if arg.IsVar {
			continue
		}
		if c >= len(cols) {
			return nil // ground column beyond every stored arity
		}
		id, known := in.tab.Lookup(arg.Name)
		if !known {
			return nil // constant never interned: no tuple can match
		}
		list := cols[c][id]
		if len(list) == 0 {
			return nil
		}
		if best == -1 || len(list) < len(bestList) {
			best, bestList = c, list
		}
	}
	if best == -1 {
		return sorted
	}
	out := (*buf)[:0]
	for _, idx := range bestList {
		if !liveAt.Has(uint32(idx)) {
			continue // tombstoned row still present in the index
		}
		t := all[idx]
		ok := true
		for c, arg := range pat.Args {
			if arg.IsVar || c == best {
				continue
			}
			if c >= len(t) || t[c] != arg.Name {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	*buf = out
	return out
}

// RelGen returns the mutation generation of a relation: a counter that
// advances on every insert or delete touching the relation. It exists
// so callers can key caches on "has this relation changed" without
// hashing its content; 0 means the relation was never stored.
func (in *Instance) RelGen(rel string) uint64 {
	r, ok := in.rels[rel]
	if !ok {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// RelHash returns an FNV-64a fingerprint of the relation's content (its
// canonical sorted tuple keys). The hash is cached per relation and
// keyed by the relation's generation, so repeated fingerprinting of an
// unchanged relation costs a map probe instead of a rehash of every
// tuple; mutations invalidate only the touched relation's entry. An
// absent or empty relation hashes to the same (offset-basis) value.
func (in *Instance) RelHash(rel string) uint64 {
	r, ok := in.rels[rel]
	if !ok {
		return fnv64Offset
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hashGen == r.gen {
		return r.hash
	}
	in.buildViews(r)
	h := uint64(fnv64Offset)
	for _, t := range r.sorted {
		for i := range t {
			if i > 0 {
				h = fnv64Step(h, '\x1f')
			}
			for j := 0; j < len(t[i]); j++ {
				h = fnv64Step(h, t[i][j])
			}
		}
		h = fnv64Step(h, '\x01')
	}
	r.hash, r.hashGen = h, r.gen
	return h
}

// FNV-64a, inlined so the per-relation hash cache does not allocate a
// hash.Hash64 per probe.
const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

func fnv64Step(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnv64Prime }

// Count returns the number of tuples in a relation.
func (in *Instance) Count(rel string) int {
	if r, ok := in.rels[rel]; ok {
		return r.liveN
	}
	return 0
}

// Size returns the total number of tuples in the instance.
func (in *Instance) Size() int {
	n := 0
	for _, r := range in.rels {
		n += r.liveN
	}
	return n
}

// Relations returns the names of the non-empty relations, sorted.
func (in *Instance) Relations() []string {
	out := make([]string, 0, len(in.rels))
	for name, r := range in.rels {
		if r.liveN > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Clone returns a copy of the instance. The clone shares the
// (append-only) symbol table and — copy-on-write — every relation
// segment, including its already-built read caches (sorted views,
// column indexes, content hash): cloning is O(#relations) regardless of
// tuple count, and a segment is physically copied only when one holder
// first mutates that relation (see relData.privatize). This is what
// keeps repair-search candidate states, which differ from their parent
// in a couple of tuples, cheap at large-universe scale.
func (in *Instance) Clone() *Instance {
	c := NewInstanceIn(in.tab)
	for rel, r := range in.rels {
		r.shared.Store(true)
		c.rels[rel] = r
	}
	return c
}

// AddAll inserts every tuple of other into the instance (in-place
// union). When both instances share a symbol table the packed id rows
// are copied arena-to-arena, without re-interning.
func (in *Instance) AddAll(other *Instance) {
	for rel, r := range other.rels {
		if other.tab == in.tab {
			r.live.ForEach(func(row uint32) {
				in.insertIDs(rel, r.rowIDs(int(row)))
			})
		} else {
			r.live.ForEach(func(row uint32) {
				in.Insert(rel, other.strings(r.rowIDs(int(row))))
			})
		}
	}
}

// Union returns a new instance holding the tuples of both. This is the
// global instance r̄ of Definition 3(b).
func (in *Instance) Union(other *Instance) *Instance {
	u := in.Clone()
	u.AddAll(other)
	return u
}

// Restrict returns the restriction of the instance to the relations of
// the given schema (Definition 3(c), r|S').
func (in *Instance) Restrict(s *Schema) *Instance {
	return in.restrict(func(rel string) bool { return s.Has(rel) })
}

// RestrictRels returns the restriction to an explicit set of relation
// names.
func (in *Instance) RestrictRels(names map[string]bool) *Instance {
	return in.restrict(func(rel string) bool { return names[rel] })
}

// restrict shares the kept relations' segments copy-on-write, exactly
// like Clone.
func (in *Instance) restrict(keep func(string) bool) *Instance {
	out := NewInstanceIn(in.tab)
	for rel, rd := range in.rels {
		if !keep(rel) {
			continue
		}
		rd.shared.Store(true)
		out.rels[rel] = rd
	}
	return out
}

// Equal reports whether two instances contain exactly the same tuples.
func (in *Instance) Equal(other *Instance) bool {
	if in.Size() != other.Size() {
		return false
	}
	sameTab := in.tab == other.tab
	for rel, r := range in.rels {
		or := other.rels[rel]
		var on int
		if or != nil {
			on = or.liveN
		}
		if r.liveN != on {
			return false
		}
		if r.liveN == 0 {
			continue
		}
		eq := true
		if sameTab {
			r.live.ForEach(func(row uint32) {
				if !eq {
					return
				}
				orow := or.findRow(r.rowIDs(int(row)))
				if orow < 0 || !or.live.Has(uint32(orow)) {
					eq = false
				}
			})
		} else {
			r.live.ForEach(func(row uint32) {
				if !eq {
					return
				}
				if !other.Has(rel, in.strings(r.rowIDs(int(row)))) {
					eq = false
				}
			})
		}
		if !eq {
			return false
		}
	}
	return true
}

// Key returns a canonical string for the whole instance, usable for
// de-duplication of instances (e.g. of peer solutions).
func (in *Instance) Key() string {
	var parts []string
	for _, rel := range in.Relations() {
		for _, t := range in.TuplesShared(rel) {
			parts = append(parts, rel+t.String())
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// String renders the instance as a sorted list of facts.
func (in *Instance) String() string {
	var parts []string
	for _, rel := range in.Relations() {
		for _, t := range in.TuplesShared(rel) {
			parts = append(parts, rel+t.String())
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Atoms returns every tuple of the instance as a ground atom, in
// deterministic order. This is Σ(r) in Definition 1 of the paper.
func (in *Instance) Atoms() []term.Atom {
	var out []term.Atom
	for _, rel := range in.Relations() {
		for _, t := range in.TuplesShared(rel) {
			args := make([]term.Term, len(t))
			for i, v := range t {
				args[i] = term.C(v)
			}
			out = append(out, term.Atom{Pred: rel, Args: args})
		}
	}
	return out
}

// ActiveDomain returns the sorted set of constants occurring in the
// instance.
func (in *Instance) ActiveDomain() []string {
	seen := make(map[symtab.Sym]bool)
	for _, r := range in.rels {
		r.live.ForEach(func(row uint32) {
			for _, id := range r.rowIDs(int(row)) {
				seen[id] = true
			}
		})
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, in.tab.Name(id))
	}
	sort.Strings(out)
	return out
}

// Fact is a (relation, tuple) pair, used to describe instance deltas.
type Fact struct {
	Rel   string
	Tuple Tuple
}

// String renders the fact as rel(a,b).
func (f Fact) String() string { return f.Rel + f.Tuple.String() }

// Key returns the canonical key for the fact.
func (f Fact) Key() string { return f.Rel + "\x1e" + f.Tuple.Key() }

// IDKey returns an unambiguous canonical key for the fact: the
// relation, the tuple's arity and the joined values. Unlike Key, an
// arity-0 fact and an arity-1 fact with an empty-string value encode
// differently, so the repair engine can invert the encoding faithfully
// (ParseFactIDKey) when it materializes composed repairs from interned
// fact-id deltas.
func (f Fact) IDKey() string {
	return f.Rel + "\x1e" + strconv.Itoa(len(f.Tuple)) + "\x1e" + f.Tuple.Key()
}

// ParseFactIDKey inverts Fact.IDKey. The separators (\x1e, \x1f) cannot
// occur in constants produced by the parsers, so the round-trip is
// exact.
func ParseFactIDKey(key string) Fact {
	rel, rest, _ := strings.Cut(key, "\x1e")
	arityStr, vals, _ := strings.Cut(rest, "\x1e")
	arity, _ := strconv.Atoi(arityStr)
	if arity <= 0 {
		return Fact{Rel: rel, Tuple: Tuple{}}
	}
	return Fact{Rel: rel, Tuple: Tuple(strings.SplitN(vals, "\x1f", arity))}
}

// SymDiff computes the symmetric difference Δ(r1,r2) of Definition 1:
// the facts in r1 but not r2, and the facts in r2 but not r1. When both
// instances share a symbol table (the normal case: repair candidates
// are clones of the original) membership tests compare packed rows
// directly.
func SymDiff(r1, r2 *Instance) []Fact {
	var out []Fact
	sameTab := r1.tab == r2.tab
	diff := func(a, b *Instance) {
		for rel, r := range a.rels {
			br := b.rels[rel]
			r.live.ForEach(func(row uint32) {
				ids := r.rowIDs(int(row))
				present := false
				if sameTab {
					if br != nil {
						brow := br.findRow(ids)
						present = brow >= 0 && br.live.Has(uint32(brow))
					}
				} else {
					present = b.Has(rel, a.strings(ids))
				}
				if !present {
					out = append(out, Fact{rel, a.strings(ids)})
				}
			})
		}
	}
	diff(r1, r2)
	diff(r2, r1)
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// DeltaKeySet converts a delta into a set of fact keys, for ⊆ tests.
func DeltaKeySet(delta []Fact) map[string]bool {
	s := make(map[string]bool, len(delta))
	for _, f := range delta {
		s[f.Key()] = true
	}
	return s
}

// SubsetOf reports whether delta a is a subset of delta b (as fact
// sets). Used for the ≤r minimality order of Definition 1(b).
func SubsetOf(a, b map[string]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// DeltaIDs interns the fact keys of a delta into tab and returns them
// as a sorted id set: the interned form of DeltaKeySet, compared with
// SubsetOfIDs merge walks instead of map probes. The LP minimality
// filter keys its deltas this way; the repair search goes one step
// further and stores them as bitset.Set over the same interned ids.
func DeltaIDs(tab *symtab.Table, delta []Fact) []symtab.Sym {
	ids := make([]symtab.Sym, len(delta))
	for i, f := range delta {
		ids[i] = tab.Intern(f.Key())
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// XorIDs returns the symmetric difference of two sorted id sets as a
// new sorted id set (a single merge walk).
func XorIDs(a, b []symtab.Sym) []symtab.Sym {
	out := make([]symtab.Sym, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// SubsetOfIDs reports a ⊆ b for sorted id sets via a single merge
// walk.
func SubsetOfIDs(a, b []symtab.Sym) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j == len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// PackIDKey renders a sorted id set as a compact map key (4 bytes per
// id).
func PackIDKey(ids []symtab.Sym) string {
	return string(packIDs(nil, ids))
}
