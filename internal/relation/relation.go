// Package relation implements the in-memory relational storage engine
// underlying the P2P data exchange system: database schemas, relation
// instances as sets of ground tuples, instance algebra (union,
// restriction, symmetric difference) and the active domain. It is the
// concrete realization of the instances r(P) of Definition 2 and of the
// distance Δ(r1,r2) of Definition 1 in the paper.
//
// Storage is interned: every constant is mapped to a dense uint32 id in
// a symtab.Table (shared across the instances of one core.System), and
// tuples are stored and hashed as packed id vectors instead of joined
// strings. Each relation additionally carries lazily built per-column
// hash indexes (value id → tuples), so constraint matching, grounding
// and the repair search join through index lookups instead of full
// scans. The string-level API (Tuple, Insert, Tuples, ...) is preserved
// as a thin view over the interned core, and every enumeration order is
// unchanged: tuples sort by their rendered string key exactly as
// before.
package relation

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/symtab"
	"repro/internal/term"
)

// Tuple is an ordered list of constant values.
type Tuple []string

// Key returns the canonical encoding of the tuple used for set
// membership. Values are joined with a separator that may not occur in
// constants produced by the parsers (US, unit separator).
func (t Tuple) Key() string { return strings.Join(t, "\x1f") }

// String renders the tuple as (a,b).
func (t Tuple) String() string { return "(" + strings.Join(t, ",") + ")" }

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone copies the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// RelDecl declares a relation: its name and arity. Relation names are
// globally unique across peers (Definition 2 assumes disjoint schemas).
type RelDecl struct {
	Name  string
	Arity int
}

// Schema is a set of relation declarations.
type Schema struct {
	decls map[string]RelDecl
	order []string
}

// NewSchema builds a schema from declarations.
func NewSchema(decls ...RelDecl) *Schema {
	s := &Schema{decls: make(map[string]RelDecl)}
	for _, d := range decls {
		s.Add(d)
	}
	return s
}

// Add inserts or overwrites a declaration.
func (s *Schema) Add(d RelDecl) {
	if _, ok := s.decls[d.Name]; !ok {
		s.order = append(s.order, d.Name)
	}
	s.decls[d.Name] = d
}

// Decl returns the declaration of a relation, if present.
func (s *Schema) Decl(name string) (RelDecl, bool) {
	d, ok := s.decls[name]
	return d, ok
}

// Has reports whether the schema declares the relation.
func (s *Schema) Has(name string) bool { _, ok := s.decls[name]; return ok }

// Relations returns the declared relation names in declaration order.
func (s *Schema) Relations() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Union returns a new schema containing the declarations of both.
func (s *Schema) Union(t *Schema) *Schema {
	u := NewSchema()
	for _, n := range s.order {
		u.Add(s.decls[n])
	}
	for _, n := range t.order {
		u.Add(t.decls[n])
	}
	return u
}

// idTuple is a tuple of interned constant ids.
type idTuple []symtab.Sym

// packIDs appends the 4-byte big-endian encoding of each id to dst.
// The packed form is the canonical map key of the interned tuple.
func packIDs(dst []byte, ids idTuple) []byte {
	for _, id := range ids {
		var w [4]byte
		binary.BigEndian.PutUint32(w[:], id)
		dst = append(dst, w[:]...)
	}
	return dst
}

// relData is the interned store of one relation: the tuple set keyed by
// packed id vectors, plus lazily built read caches — the sorted string
// view every enumeration is served from, and per-column value indexes
// over that view. Mutations invalidate the caches; cache builds are
// guarded by mu so concurrent readers (queries never mutate) stay
// race-free.
type relData struct {
	tuples map[string]idTuple

	mu        sync.Mutex
	sorted    []Tuple                // sorted by Tuple.Key; read-only once built
	sortedIDs []idTuple              // id tuples aligned with sorted
	cols      []map[symtab.Sym][]int // column -> value id -> indices into sorted
	// gen counts the mutations of the relation; hash is the cached
	// content fingerprint, valid when hashGen == gen (hashGen starts
	// behind gen so the zero value is invalid). Fingerprint composition
	// (slice.DataFingerprint) reuses the cached hash of every relation
	// whose generation did not move instead of rehashing each tuple per
	// query.
	gen     uint64
	hash    uint64
	hashGen uint64
}

func newRelData() *relData { return &relData{tuples: make(map[string]idTuple), gen: 1} }

// invalidate drops the read caches after a mutation and advances the
// relation's generation.
func (r *relData) invalidate() {
	r.mu.Lock()
	r.sorted = nil
	r.sortedIDs = nil
	r.cols = nil
	r.gen++
	r.mu.Unlock()
}

// Instance is a database instance: for each relation name, a set of
// tuples. The zero value is not usable; use NewInstance (private table)
// or NewInstanceIn (table shared with other instances, e.g. per
// core.System). Mutations must not run concurrently with reads; the
// lazily built read caches are internally synchronized, so read-only
// sharing between goroutines is safe.
type Instance struct {
	tab  *symtab.Table
	rels map[string]*relData
}

// NewInstance returns an empty instance with a fresh symbol table.
func NewInstance() *Instance {
	return NewInstanceIn(symtab.New())
}

// NewInstanceIn returns an empty instance interning into the given
// table. Instances derived from this one (Clone, Union, Restrict)
// share the table; tables are append-only and safe for concurrent use.
func NewInstanceIn(tab *symtab.Table) *Instance {
	if tab == nil {
		tab = symtab.New()
	}
	return &Instance{tab: tab, rels: make(map[string]*relData)}
}

// Table returns the symbol table the instance interns into.
func (in *Instance) Table() *symtab.Table { return in.tab }

// Rehome re-interns the instance onto another symbol table, so that it
// shares ids with the instances already living there (core.System does
// this once per added peer). It is a no-op when tab is already the
// instance's table.
func (in *Instance) Rehome(tab *symtab.Table) {
	if tab == nil || tab == in.tab {
		return
	}
	old := in.tab
	in.tab = tab
	for _, r := range in.rels {
		moved := make(map[string]idTuple, len(r.tuples))
		var buf []byte
		for _, ids := range r.tuples {
			nids := make(idTuple, len(ids))
			for i, id := range ids {
				nids[i] = tab.Intern(old.Name(id))
			}
			buf = packIDs(buf[:0], nids)
			moved[string(buf)] = nids
		}
		r.tuples = moved
		r.invalidate()
	}
}

// intern converts a string tuple to ids, interning unseen constants.
func (in *Instance) intern(t Tuple) idTuple {
	ids := make(idTuple, len(t))
	for i, v := range t {
		ids[i] = in.tab.Intern(v)
	}
	return ids
}

// lookupIDs converts a string tuple to ids without interning; ok is
// false when some constant is unknown to the table (then the tuple
// cannot be present in any relation of this instance).
func (in *Instance) lookupIDs(t Tuple) (idTuple, bool) {
	ids := make(idTuple, len(t))
	for i, v := range t {
		id, ok := in.tab.Lookup(v)
		if !ok {
			return nil, false
		}
		ids[i] = id
	}
	return ids, true
}

// strings renders an id tuple back to a string tuple.
func (in *Instance) strings(ids idTuple) Tuple {
	t := make(Tuple, len(ids))
	for i, id := range ids {
		t[i] = in.tab.Name(id)
	}
	return t
}

// Insert adds a tuple to the named relation. It reports whether the
// tuple was newly added.
func (in *Instance) Insert(rel string, t Tuple) bool {
	return in.insertIDs(rel, in.intern(t))
}

func (in *Instance) insertIDs(rel string, ids idTuple) bool {
	r, ok := in.rels[rel]
	if !ok {
		r = newRelData()
		in.rels[rel] = r
	}
	key := packIDs(nil, ids)
	if _, dup := r.tuples[string(key)]; dup {
		return false
	}
	r.tuples[string(key)] = ids
	r.invalidate()
	return true
}

// InsertAtom adds a ground atom; it panics on non-ground atoms.
func (in *Instance) InsertAtom(a term.Atom) bool {
	t := make(Tuple, len(a.Args))
	for i, arg := range a.Args {
		if arg.IsVar {
			panic(fmt.Sprintf("relation: InsertAtom on non-ground atom %s", a))
		}
		t[i] = arg.Name
	}
	return in.Insert(a.Pred, t)
}

// Delete removes a tuple; it reports whether the tuple was present.
func (in *Instance) Delete(rel string, t Tuple) bool {
	r, ok := in.rels[rel]
	if !ok {
		return false
	}
	ids, ok := in.lookupIDs(t)
	if !ok {
		return false
	}
	key := packIDs(nil, ids)
	if _, present := r.tuples[string(key)]; !present {
		return false
	}
	delete(r.tuples, string(key))
	r.invalidate()
	return true
}

// Has reports membership of a tuple.
func (in *Instance) Has(rel string, t Tuple) bool {
	r, ok := in.rels[rel]
	if !ok {
		return false
	}
	ids, ok := in.lookupIDs(t)
	if !ok {
		return false
	}
	var buf [32]byte
	key := packIDs(buf[:0], ids)
	_, present := r.tuples[string(key)]
	return present
}

// HasAtom reports membership of a ground atom.
func (in *Instance) HasAtom(a term.Atom) bool {
	r, ok := in.rels[a.Pred]
	if !ok {
		return false
	}
	var buf [32]byte
	key := buf[:0]
	for _, arg := range a.Args {
		if arg.IsVar {
			return false
		}
		id, known := in.tab.Lookup(arg.Name)
		if !known {
			return false
		}
		var w [4]byte
		binary.BigEndian.PutUint32(w[:], id)
		key = append(key, w[:]...)
	}
	_, present := r.tuples[string(key)]
	return present
}

// buildSorted (re)builds the relation's sorted views under r.mu: the
// string tuples sorted by their canonical key, and the id tuples
// aligned with that order. Keys are rendered once per tuple, not once
// per comparison.
func (in *Instance) buildSorted(r *relData) {
	if r.sorted != nil || len(r.tuples) == 0 {
		return
	}
	type row struct {
		key string
		t   Tuple
		ids idTuple
	}
	rows := make([]row, 0, len(r.tuples))
	for _, ids := range r.tuples {
		t := in.strings(ids)
		rows = append(rows, row{key: t.Key(), t: t, ids: ids})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	r.sorted = make([]Tuple, len(rows))
	r.sortedIDs = make([]idTuple, len(rows))
	for i, rw := range rows {
		r.sorted[i] = rw.t
		r.sortedIDs[i] = rw.ids
	}
}

// sortedView returns the relation's cached sorted string view, building
// it on first use. The returned slice and its tuples are read-only.
func (in *Instance) sortedView(rel string) []Tuple {
	r, ok := in.rels[rel]
	if !ok {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	in.buildSorted(r)
	return r.sorted
}

// colIndex returns the relation's lazily built per-column indexes over
// the sorted view. The indexes are built directly from the stored id
// tuples (no string re-hashing).
func (in *Instance) colIndex(rel string) ([]map[symtab.Sym][]int, []Tuple) {
	r, ok := in.rels[rel]
	if !ok {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	in.buildSorted(r)
	if r.cols == nil && len(r.sortedIDs) > 0 {
		arity := 0
		for _, ids := range r.sortedIDs {
			if len(ids) > arity {
				arity = len(ids)
			}
		}
		cols := make([]map[symtab.Sym][]int, arity)
		for c := range cols {
			cols[c] = make(map[symtab.Sym][]int)
		}
		for i, ids := range r.sortedIDs {
			for c, id := range ids {
				cols[c][id] = append(cols[c][id], i)
			}
		}
		r.cols = cols
	}
	return r.cols, r.sorted
}

// Tuples returns the tuples of a relation in deterministic (sorted)
// order. The returned tuples are copies.
func (in *Instance) Tuples(rel string) []Tuple {
	view := in.sortedView(rel)
	out := make([]Tuple, len(view))
	for i, t := range view {
		out[i] = t.Clone()
	}
	return out
}

// TuplesShared returns the tuples of a relation in the same order as
// Tuples but without copying. The result is a shared read-only view:
// callers must not modify the slice or its tuples, and must not hold it
// across mutations of the instance.
func (in *Instance) TuplesShared(rel string) []Tuple {
	return in.sortedView(rel)
}

// MatchingTuples returns the tuples of pat.Pred that agree with every
// ground argument of the pattern, using the per-column indexes: the
// ground column with the fewest candidates drives the lookup and the
// remaining ground columns filter. Variables match anything, so
// callers still need term.Match for variable consistency (repeated
// variables) and arity. The result preserves the sorted enumeration
// order of Tuples and is a shared read-only view like TuplesShared.
// Patterns with no ground arguments fall back to the full (shared)
// view.
func (in *Instance) MatchingTuples(pat term.Atom) []Tuple {
	cols, sorted := in.colIndex(pat.Pred)
	if len(sorted) == 0 {
		return nil
	}
	best := -1 // candidate index list; -1 means full scan
	var bestList []int
	for c, arg := range pat.Args {
		if arg.IsVar {
			continue
		}
		if c >= len(cols) {
			return nil // ground column beyond every stored arity
		}
		id, known := in.tab.Lookup(arg.Name)
		if !known {
			return nil // constant never interned: no tuple can match
		}
		list := cols[c][id]
		if len(list) == 0 {
			return nil
		}
		if best == -1 || len(list) < len(bestList) {
			best, bestList = c, list
		}
	}
	if best == -1 {
		return sorted
	}
	out := make([]Tuple, 0, len(bestList))
	for _, idx := range bestList {
		t := sorted[idx]
		ok := true
		for c, arg := range pat.Args {
			if arg.IsVar || c == best {
				continue
			}
			if c >= len(t) || t[c] != arg.Name {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, t)
		}
	}
	return out
}

// RelGen returns the mutation generation of a relation: a counter that
// advances on every insert or delete touching the relation. It exists
// so callers can key caches on "has this relation changed" without
// hashing its content; 0 means the relation was never stored.
func (in *Instance) RelGen(rel string) uint64 {
	r, ok := in.rels[rel]
	if !ok {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// RelHash returns an FNV-64a fingerprint of the relation's content (its
// canonical sorted tuple keys). The hash is cached per relation and
// keyed by the relation's generation, so repeated fingerprinting of an
// unchanged relation costs a map probe instead of a rehash of every
// tuple; mutations invalidate only the touched relation's entry. An
// absent or empty relation hashes to the same (offset-basis) value.
func (in *Instance) RelHash(rel string) uint64 {
	r, ok := in.rels[rel]
	if !ok {
		return fnv64Offset
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hashGen == r.gen {
		return r.hash
	}
	in.buildSorted(r)
	h := uint64(fnv64Offset)
	for _, t := range r.sorted {
		for i := range t {
			if i > 0 {
				h = fnv64Step(h, '\x1f')
			}
			for j := 0; j < len(t[i]); j++ {
				h = fnv64Step(h, t[i][j])
			}
		}
		h = fnv64Step(h, '\x01')
	}
	r.hash, r.hashGen = h, r.gen
	return h
}

// FNV-64a, inlined so the per-relation hash cache does not allocate a
// hash.Hash64 per probe.
const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

func fnv64Step(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnv64Prime }

// Count returns the number of tuples in a relation.
func (in *Instance) Count(rel string) int {
	if r, ok := in.rels[rel]; ok {
		return len(r.tuples)
	}
	return 0
}

// Size returns the total number of tuples in the instance.
func (in *Instance) Size() int {
	n := 0
	for _, r := range in.rels {
		n += len(r.tuples)
	}
	return n
}

// Relations returns the names of the non-empty relations, sorted.
func (in *Instance) Relations() []string {
	out := make([]string, 0, len(in.rels))
	for name, r := range in.rels {
		if len(r.tuples) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the instance. The clone shares the (append-only)
// symbol table, the immutable id tuples and — crucially for the repair
// search, whose candidate states are clones differing from their
// parent in a couple of tuples — the parent's already-built read
// caches: sorted views and column indexes are immutable once built
// (mutations only drop a relation's own pointers), so a clone reuses
// them until it mutates that relation itself.
func (in *Instance) Clone() *Instance {
	c := NewInstanceIn(in.tab)
	for rel, r := range in.rels {
		cr := newRelData()
		cr.tuples = make(map[string]idTuple, len(r.tuples))
		for k, ids := range r.tuples {
			cr.tuples[k] = ids
		}
		r.mu.Lock()
		cr.sorted, cr.sortedIDs, cr.cols = r.sorted, r.sortedIDs, r.cols
		cr.gen, cr.hash, cr.hashGen = r.gen, r.hash, r.hashGen
		r.mu.Unlock()
		c.rels[rel] = cr
	}
	return c
}

// AddAll inserts every tuple of other into the instance (in-place
// union). When both instances share a symbol table the id tuples are
// reused directly, without re-interning.
func (in *Instance) AddAll(other *Instance) {
	for rel, r := range other.rels {
		if other.tab == in.tab {
			for _, ids := range r.tuples {
				in.insertIDs(rel, ids)
			}
		} else {
			for _, ids := range r.tuples {
				in.Insert(rel, other.strings(ids))
			}
		}
	}
}

// Union returns a new instance holding the tuples of both. This is the
// global instance r̄ of Definition 3(b).
func (in *Instance) Union(other *Instance) *Instance {
	u := in.Clone()
	u.AddAll(other)
	return u
}

// Restrict returns the restriction of the instance to the relations of
// the given schema (Definition 3(c), r|S').
func (in *Instance) Restrict(s *Schema) *Instance {
	return in.restrict(func(rel string) bool { return s.Has(rel) })
}

// RestrictRels returns the restriction to an explicit set of relation
// names.
func (in *Instance) RestrictRels(names map[string]bool) *Instance {
	return in.restrict(func(rel string) bool { return names[rel] })
}

func (in *Instance) restrict(keep func(string) bool) *Instance {
	r := NewInstanceIn(in.tab)
	for rel, rd := range in.rels {
		if !keep(rel) {
			continue
		}
		cr := newRelData()
		cr.tuples = make(map[string]idTuple, len(rd.tuples))
		for k, ids := range rd.tuples {
			cr.tuples[k] = ids
		}
		// Kept relations are copied unchanged, so the restriction can
		// share the read caches like Clone does.
		rd.mu.Lock()
		cr.sorted, cr.sortedIDs, cr.cols = rd.sorted, rd.sortedIDs, rd.cols
		cr.gen, cr.hash, cr.hashGen = rd.gen, rd.hash, rd.hashGen
		rd.mu.Unlock()
		r.rels[rel] = cr
	}
	return r
}

// Equal reports whether two instances contain exactly the same tuples.
func (in *Instance) Equal(other *Instance) bool {
	if in.Size() != other.Size() {
		return false
	}
	sameTab := in.tab == other.tab
	for rel, r := range in.rels {
		or := other.rels[rel]
		var on int
		if or != nil {
			on = len(or.tuples)
		}
		if len(r.tuples) != on {
			return false
		}
		if sameTab {
			for k := range r.tuples {
				if _, ok := or.tuples[k]; !ok {
					return false
				}
			}
		} else {
			for _, ids := range r.tuples {
				if !other.Has(rel, in.strings(ids)) {
					return false
				}
			}
		}
	}
	return true
}

// Key returns a canonical string for the whole instance, usable for
// de-duplication of instances (e.g. of peer solutions).
func (in *Instance) Key() string {
	var parts []string
	for _, rel := range in.Relations() {
		for _, t := range in.TuplesShared(rel) {
			parts = append(parts, rel+t.String())
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// String renders the instance as a sorted list of facts.
func (in *Instance) String() string {
	var parts []string
	for _, rel := range in.Relations() {
		for _, t := range in.TuplesShared(rel) {
			parts = append(parts, rel+t.String())
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Atoms returns every tuple of the instance as a ground atom, in
// deterministic order. This is Σ(r) in Definition 1 of the paper.
func (in *Instance) Atoms() []term.Atom {
	var out []term.Atom
	for _, rel := range in.Relations() {
		for _, t := range in.TuplesShared(rel) {
			args := make([]term.Term, len(t))
			for i, v := range t {
				args[i] = term.C(v)
			}
			out = append(out, term.Atom{Pred: rel, Args: args})
		}
	}
	return out
}

// ActiveDomain returns the sorted set of constants occurring in the
// instance.
func (in *Instance) ActiveDomain() []string {
	seen := make(map[symtab.Sym]bool)
	for _, r := range in.rels {
		for _, ids := range r.tuples {
			for _, id := range ids {
				seen[id] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, in.tab.Name(id))
	}
	sort.Strings(out)
	return out
}

// Fact is a (relation, tuple) pair, used to describe instance deltas.
type Fact struct {
	Rel   string
	Tuple Tuple
}

// String renders the fact as rel(a,b).
func (f Fact) String() string { return f.Rel + f.Tuple.String() }

// Key returns the canonical key for the fact.
func (f Fact) Key() string { return f.Rel + "\x1e" + f.Tuple.Key() }

// IDKey returns an unambiguous canonical key for the fact: the
// relation, the tuple's arity and the joined values. Unlike Key, an
// arity-0 fact and an arity-1 fact with an empty-string value encode
// differently, so the repair engine can invert the encoding faithfully
// (ParseFactIDKey) when it materializes composed repairs from interned
// fact-id deltas.
func (f Fact) IDKey() string {
	return f.Rel + "\x1e" + strconv.Itoa(len(f.Tuple)) + "\x1e" + f.Tuple.Key()
}

// ParseFactIDKey inverts Fact.IDKey. The separators (\x1e, \x1f) cannot
// occur in constants produced by the parsers, so the round-trip is
// exact.
func ParseFactIDKey(key string) Fact {
	rel, rest, _ := strings.Cut(key, "\x1e")
	arityStr, vals, _ := strings.Cut(rest, "\x1e")
	arity, _ := strconv.Atoi(arityStr)
	if arity <= 0 {
		return Fact{Rel: rel, Tuple: Tuple{}}
	}
	return Fact{Rel: rel, Tuple: Tuple(strings.SplitN(vals, "\x1f", arity))}
}

// SymDiff computes the symmetric difference Δ(r1,r2) of Definition 1:
// the facts in r1 but not r2, and the facts in r2 but not r1. When both
// instances share a symbol table (the normal case: repair candidates
// are clones of the original) membership tests compare packed id keys
// directly.
func SymDiff(r1, r2 *Instance) []Fact {
	var out []Fact
	sameTab := r1.tab == r2.tab
	diff := func(a, b *Instance) {
		for rel, r := range a.rels {
			br := b.rels[rel]
			for k, ids := range r.tuples {
				present := false
				if sameTab {
					if br != nil {
						_, present = br.tuples[k]
					}
				} else {
					present = b.Has(rel, a.strings(ids))
				}
				if !present {
					out = append(out, Fact{rel, a.strings(ids)})
				}
			}
		}
	}
	diff(r1, r2)
	diff(r2, r1)
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// DeltaKeySet converts a delta into a set of fact keys, for ⊆ tests.
func DeltaKeySet(delta []Fact) map[string]bool {
	s := make(map[string]bool, len(delta))
	for _, f := range delta {
		s[f.Key()] = true
	}
	return s
}

// SubsetOf reports whether delta a is a subset of delta b (as fact
// sets). Used for the ≤r minimality order of Definition 1(b).
func SubsetOf(a, b map[string]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// DeltaIDs interns the fact keys of a delta into tab and returns them
// as a sorted id set: the interned form of DeltaKeySet, compared with
// SubsetOfIDs merge walks instead of map probes. Both the repair
// search and the LP minimality filter key their deltas this way.
func DeltaIDs(tab *symtab.Table, delta []Fact) []symtab.Sym {
	ids := make([]symtab.Sym, len(delta))
	for i, f := range delta {
		ids[i] = tab.Intern(f.Key())
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// XorIDs returns the symmetric difference of two sorted id sets as a
// new sorted id set (a single merge walk). The repair search derives a
// child state's delta from its parent's this way: every fact an action
// touches toggles its membership in the symmetric difference against
// the original instance.
func XorIDs(a, b []symtab.Sym) []symtab.Sym {
	out := make([]symtab.Sym, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// SubsetOfIDs reports a ⊆ b for sorted id sets via a single merge
// walk.
func SubsetOfIDs(a, b []symtab.Sym) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j == len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// PackIDKey renders a sorted id set as a compact map key (4 bytes per
// id).
func PackIDKey(ids []symtab.Sym) string {
	return string(packIDs(nil, ids))
}
