package relation

import (
	"reflect"
	"testing"
)

func TestJournalIncrRecordsMembershipChanges(t *testing.T) {
	in := NewInstance()
	j := NewJournal(0)
	in.SetJournal(j)
	if in.Journal() != j {
		t.Fatalf("Journal() did not return the attached journal")
	}

	in.Insert("r", Tuple{"a", "b"})
	in.Insert("r", Tuple{"a", "b"}) // duplicate: no membership change
	in.Insert("s", Tuple{"x"})
	in.Delete("r", Tuple{"a", "b"})
	in.Delete("r", Tuple{"zz", "zz"}) // absent: no membership change

	if got := j.Seq(); got != 3 {
		t.Fatalf("Seq = %d, want 3", got)
	}
	changes, ok := j.Since(0)
	if !ok {
		t.Fatalf("Since(0) reported unavailable")
	}
	want := []Change{
		{Fact: Fact{Rel: "r", Tuple: Tuple{"a", "b"}}, Insert: true},
		{Fact: Fact{Rel: "s", Tuple: Tuple{"x"}}, Insert: true},
		{Fact: Fact{Rel: "r", Tuple: Tuple{"a", "b"}}, Insert: false},
	}
	if !reflect.DeepEqual(changes, want) {
		t.Fatalf("changes = %v, want %v", changes, want)
	}

	// Re-inserting a previously deleted fact (the revive path) records.
	in.Insert("r", Tuple{"a", "b"})
	tail, ok := j.Since(3)
	if !ok || len(tail) != 1 || !tail[0].Insert || tail[0].Fact.Rel != "r" {
		t.Fatalf("revive insert not recorded: %v ok=%v", tail, ok)
	}
}

func TestJournalIncrSinceBounds(t *testing.T) {
	j := NewJournal(0)
	if _, ok := j.Since(1); ok {
		t.Fatalf("Since past the end should report unavailable")
	}
	if ch, ok := j.Since(0); !ok || len(ch) != 0 {
		t.Fatalf("Since(0) on empty journal = %v ok=%v", ch, ok)
	}
}

func TestJournalIncrTrim(t *testing.T) {
	in := NewInstance()
	j := NewJournal(4)
	in.SetJournal(j)
	for i := 0; i < 10; i++ {
		in.Insert("r", Tuple{string(rune('a' + i))})
	}
	if got := j.Seq(); got != 10 {
		t.Fatalf("Seq = %d, want 10", got)
	}
	if _, ok := j.Since(2); ok {
		t.Fatalf("trimmed positions must report unavailable")
	}
	changes, ok := j.Since(6)
	if !ok || len(changes) != 4 {
		t.Fatalf("Since(6) = %d changes ok=%v, want 4 true", len(changes), ok)
	}
	if changes[0].Fact.Tuple[0] != "g" {
		t.Fatalf("Since(6) starts at %q, want g", changes[0].Fact.Tuple[0])
	}
}

func TestJournalIncrDerivedInstancesDetach(t *testing.T) {
	in := NewInstance()
	j := NewJournal(0)
	in.SetJournal(j)
	in.Insert("r", Tuple{"a"})

	cl := in.Clone()
	if cl.Journal() != nil {
		t.Fatalf("Clone inherited the journal")
	}
	cl.Insert("r", Tuple{"b"})
	if got := j.Seq(); got != 1 {
		t.Fatalf("clone write leaked into the journal: Seq = %d, want 1", got)
	}
	if re := in.RestrictRels(map[string]bool{"r": true}); re.Journal() != nil {
		t.Fatalf("RestrictRels inherited the journal")
	}
}
