package relation

import (
	"testing"
	"testing/quick"

	"repro/internal/term"
)

func inst(facts ...Fact) *Instance {
	in := NewInstance()
	for _, f := range facts {
		in.Insert(f.Rel, f.Tuple)
	}
	return in
}

func TestInsertDeleteHas(t *testing.T) {
	in := NewInstance()
	if !in.Insert("r", Tuple{"a", "b"}) {
		t.Fatal("first insert should report true")
	}
	if in.Insert("r", Tuple{"a", "b"}) {
		t.Fatal("duplicate insert should report false")
	}
	if !in.Has("r", Tuple{"a", "b"}) {
		t.Fatal("inserted tuple missing")
	}
	if in.Has("r", Tuple{"a", "c"}) {
		t.Fatal("absent tuple reported present")
	}
	if !in.Delete("r", Tuple{"a", "b"}) {
		t.Fatal("delete of present tuple failed")
	}
	if in.Delete("r", Tuple{"a", "b"}) {
		t.Fatal("delete of absent tuple reported true")
	}
	if in.Size() != 0 {
		t.Fatalf("size = %d", in.Size())
	}
}

func TestInsertIsolation(t *testing.T) {
	// Mutating the caller's tuple after insert must not affect storage.
	in := NewInstance()
	tu := Tuple{"a", "b"}
	in.Insert("r", tu)
	tu[0] = "z"
	if !in.Has("r", Tuple{"a", "b"}) {
		t.Fatal("stored tuple was aliased to caller slice")
	}
}

func TestAtomBridge(t *testing.T) {
	in := NewInstance()
	in.InsertAtom(term.NewAtom("r", term.C("a"), term.C("b")))
	if !in.Has("r", Tuple{"a", "b"}) {
		t.Fatal("InsertAtom failed")
	}
	if !in.HasAtom(term.NewAtom("r", term.C("a"), term.C("b"))) {
		t.Fatal("HasAtom failed")
	}
	if in.HasAtom(term.NewAtom("r", term.V("X"), term.C("b"))) {
		t.Fatal("HasAtom on non-ground atom should be false")
	}
	atoms := in.Atoms()
	if len(atoms) != 1 || atoms[0].String() != "r(a,b)" {
		t.Fatalf("Atoms = %v", atoms)
	}
}

func TestCloneIndependence(t *testing.T) {
	in := inst(Fact{"r", Tuple{"a"}})
	c := in.Clone()
	c.Insert("r", Tuple{"b"})
	c.Delete("r", Tuple{"a"})
	if !in.Has("r", Tuple{"a"}) || in.Has("r", Tuple{"b"}) {
		t.Fatal("clone shares state with original")
	}
}

func TestUnionRestrict(t *testing.T) {
	a := inst(Fact{"r1", Tuple{"a"}}, Fact{"r2", Tuple{"b"}})
	b := inst(Fact{"r2", Tuple{"b"}}, Fact{"r3", Tuple{"c"}})
	u := a.Union(b)
	if u.Size() != 3 {
		t.Fatalf("union size = %d", u.Size())
	}
	s := NewSchema(RelDecl{"r1", 1}, RelDecl{"r3", 1})
	r := u.Restrict(s)
	if r.Size() != 2 || !r.Has("r1", Tuple{"a"}) || !r.Has("r3", Tuple{"c"}) {
		t.Fatalf("restrict = %s", r)
	}
	rr := u.RestrictRels(map[string]bool{"r2": true})
	if rr.Size() != 1 || !rr.Has("r2", Tuple{"b"}) {
		t.Fatalf("RestrictRels = %s", rr)
	}
}

func TestEqualAndKey(t *testing.T) {
	a := inst(Fact{"r", Tuple{"a"}}, Fact{"s", Tuple{"b", "c"}})
	b := inst(Fact{"s", Tuple{"b", "c"}}, Fact{"r", Tuple{"a"}})
	if !a.Equal(b) {
		t.Fatal("order-insensitive equality failed")
	}
	if a.Key() != b.Key() {
		t.Fatal("canonical keys differ for equal instances")
	}
	b.Insert("r", Tuple{"z"})
	if a.Equal(b) || a.Key() == b.Key() {
		t.Fatal("unequal instances compared equal")
	}
}

func TestSymDiffExample1Distance(t *testing.T) {
	// Δ on the shape of the paper's Example 1 stage-one repair:
	// r1 adds R1(c,d) and R1(a,e) to r.
	r := inst(Fact{"r1", Tuple{"a", "b"}}, Fact{"r1", Tuple{"s", "t"}})
	r1 := r.Clone()
	r1.Insert("r1", Tuple{"c", "d"})
	r1.Insert("r1", Tuple{"a", "e"})
	d := SymDiff(r, r1)
	if len(d) != 2 {
		t.Fatalf("delta = %v", d)
	}
	keys := DeltaKeySet(d)
	if !keys[Fact{"r1", Tuple{"a", "e"}}.Key()] || !keys[Fact{"r1", Tuple{"c", "d"}}.Key()] {
		t.Fatalf("delta keys = %v", keys)
	}
}

func TestSymDiffSymmetric(t *testing.T) {
	a := inst(Fact{"r", Tuple{"a"}}, Fact{"r", Tuple{"b"}})
	b := inst(Fact{"r", Tuple{"b"}}, Fact{"r", Tuple{"c"}})
	d1 := SymDiff(a, b)
	d2 := SymDiff(b, a)
	if len(d1) != 2 || len(d2) != 2 {
		t.Fatalf("d1=%v d2=%v", d1, d2)
	}
	if !SubsetOf(DeltaKeySet(d1), DeltaKeySet(d2)) || !SubsetOf(DeltaKeySet(d2), DeltaKeySet(d1)) {
		t.Fatal("symmetric difference not symmetric")
	}
}

func TestSubsetOf(t *testing.T) {
	a := map[string]bool{"x": true}
	b := map[string]bool{"x": true, "y": true}
	if !SubsetOf(a, b) || SubsetOf(b, a) {
		t.Fatal("SubsetOf wrong")
	}
	if !SubsetOf(map[string]bool{}, a) {
		t.Fatal("empty set must be subset")
	}
}

func TestActiveDomain(t *testing.T) {
	in := inst(Fact{"r", Tuple{"b", "a"}}, Fact{"s", Tuple{"c"}})
	ad := in.ActiveDomain()
	if len(ad) != 3 || ad[0] != "a" || ad[1] != "b" || ad[2] != "c" {
		t.Fatalf("ActiveDomain = %v", ad)
	}
}

func TestSchema(t *testing.T) {
	s := NewSchema(RelDecl{"r1", 2}, RelDecl{"r2", 3})
	if d, ok := s.Decl("r1"); !ok || d.Arity != 2 {
		t.Fatalf("Decl(r1) = %v %v", d, ok)
	}
	if s.Has("zzz") {
		t.Fatal("Has on undeclared relation")
	}
	t2 := NewSchema(RelDecl{"r3", 1})
	u := s.Union(t2)
	if len(u.Relations()) != 3 {
		t.Fatalf("union relations = %v", u.Relations())
	}
	// Union must not mutate operands.
	if s.Has("r3") {
		t.Fatal("Union mutated receiver")
	}
}

func TestTuplesDeterministicOrder(t *testing.T) {
	in := inst(Fact{"r", Tuple{"b"}}, Fact{"r", Tuple{"a"}}, Fact{"r", Tuple{"c"}})
	ts := in.Tuples("r")
	if len(ts) != 3 || ts[0][0] != "a" || ts[1][0] != "b" || ts[2][0] != "c" {
		t.Fatalf("Tuples = %v", ts)
	}
}

// Property: Δ(r, r) is empty and Δ respects insert/delete counts.
func TestSymDiffProperty(t *testing.T) {
	f := func(adds []uint8) bool {
		a := NewInstance()
		for _, x := range adds {
			a.Insert("r", Tuple{string(rune('a' + int(x)%10))})
		}
		if len(SymDiff(a, a)) != 0 {
			return false
		}
		b := a.Clone()
		b.Insert("r", Tuple{"zz"})
		return len(SymDiff(a, b)) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	in := inst(Fact{"r", Tuple{"a", "b"}})
	if got := in.String(); got != "{r(a,b)}" {
		t.Fatalf("String = %q", got)
	}
	if got := (Fact{"r", Tuple{"a"}}).String(); got != "r(a)" {
		t.Fatalf("Fact.String = %q", got)
	}
}

func TestParseFactIDKeyRoundTrip(t *testing.T) {
	for _, f := range []Fact{
		{Rel: "r1", Tuple: Tuple{"a", "b"}},
		{Rel: "r", Tuple: Tuple{"x"}},
		{Rel: "wide", Tuple: Tuple{"1", "2", "3", "4"}},
		{Rel: "p", Tuple: Tuple{}},
		// The arity prefix disambiguates the cases Fact.Key cannot:
		// empty-string constants vs lower arities.
		{Rel: "p", Tuple: Tuple{""}},
		{Rel: "p", Tuple: Tuple{"", ""}},
		{Rel: "p", Tuple: Tuple{"a,b", "c"}},
	} {
		got := ParseFactIDKey(f.IDKey())
		if got.Rel != f.Rel || !got.Tuple.Equal(f.Tuple) {
			t.Fatalf("round-trip of %#v gave %#v", f, got)
		}
	}
}

func TestRelGenAdvancesOnMutation(t *testing.T) {
	in := NewInstance()
	if in.RelGen("r") != 0 {
		t.Fatal("unknown relation must report generation 0")
	}
	in.Insert("r", Tuple{"a"})
	g1 := in.RelGen("r")
	if g1 == 0 {
		t.Fatal("stored relation must report a nonzero generation")
	}
	in.Insert("r", Tuple{"a"}) // duplicate: no mutation
	if in.RelGen("r") != g1 {
		t.Fatal("duplicate insert must not advance the generation")
	}
	in.Delete("r", Tuple{"missing"}) // absent: no mutation
	if in.RelGen("r") != g1 {
		t.Fatal("no-op delete must not advance the generation")
	}
	in.Delete("r", Tuple{"a"})
	if in.RelGen("r") == g1 {
		t.Fatal("delete must advance the generation")
	}
}
