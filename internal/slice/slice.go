// Package slice computes query-relevance slices of P2P data exchange
// systems: the magic-sets-style restriction that makes the cost of peer
// consistent answering proportional to the query instead of to the
// universe. From a query posed to a peer, Compute derives the
// predicate-dependency closure over the peer's DECs, local ICs and (in
// the transitive case) the DECs of every trust-reachable peer, tracking
// which relations, which constraints and which peers a query-relevant
// repair can possibly observe. The engines then
//
//   - fetch only the relations in the slice (peernet.Node.SnapshotFor),
//   - enforce only the constraints in the slice
//     (core.SolveOptions.KeepDep, program.BuildOptions.KeepDep),
//   - repair/ground only the relations in the slice
//     (core.SolveOptions.RelevantRels, ground.Options.Relevant),
//
// and answers are cached per (peer, slice signature, data fingerprint)
// key (AnswerCache), so a change to an irrelevant relation neither
// invalidates cached answers nor re-triggers grounding.
//
// # Soundness
//
// The closure is seeded with every relation of the queried peer (they
// are local, so including them costs no network traffic) plus the
// query's own predicates. A constraint is pulled into the slice as soon
// as it shares a predicate with the closure, and its predicates join
// the closure — so the slice covers every connected component of the
// constraint graph the query can observe. Because minimal-distance
// repairs factor over disjoint constraint components, and the answer
// evaluation only sees the queried peer's relations (all in the slice),
// dropping the remaining components cannot change answers, with two
// exceptions that Compute handles conservatively:
//
//   - guard constraints — constraints with no repairable (mutable)
//     predicate — can eliminate *all* solutions when violated (the
//     "peer has no solutions" outcome of Definition 5), so they are
//     always kept and their relations always fetched;
//   - domain-dependent constraints — referential DECs whose witness
//     choices enumerate the active domain — make repairs depend on
//     constants of arbitrary relations, so a kept constraint of this
//     shape degrades the slice to Full (no restriction).
package slice

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
)

// Slice is the query-relevance projection of one (system, peer, query
// shape) triple. The zero value is not meaningful; use Compute or
// ForQuery.
type Slice struct {
	// Root is the queried peer.
	Root core.PeerID
	// Transitive records which semantics the slice was computed for.
	Transitive bool
	// Rels are the relevant relations, sorted.
	Rels []string
	// Full marks a degenerate slice (a kept domain-dependent constraint
	// forces the whole system in): Rels then holds every relation and
	// RelevantRels reports no restriction.
	Full bool
	// KeptDeps / TotalDeps count the constraints kept vs considered.
	KeptDeps, TotalDeps int
	// TotalRels counts the relations of the whole system.
	TotalRels int
	// Signature is a canonical rendering of the slice: two queries with
	// the same signature observe the same constraints and relations, so
	// their answers may share a cache entry (keyed together with a data
	// fingerprint of the relevant relations).
	Signature string

	relSet     map[string]bool
	keep       map[*constraint.Dependency]bool
	relsByPeer map[core.PeerID][]string
}

// KeepDep reports whether the dependency is enforced under the slice.
// It is designed to be passed as core.SolveOptions.KeepDep /
// program.BuildOptions.KeepDep (dependencies are compared by identity,
// so the options must be used with the same *core.System the slice was
// computed on).
func (sl *Slice) KeepDep(d *constraint.Dependency) bool {
	return sl.Full || sl.keep[d]
}

// RelevantRels returns the relation restriction for the engines: the
// slice's relation set, or nil (no restriction) for a Full slice.
func (sl *Slice) RelevantRels() map[string]bool {
	if sl.Full {
		return nil
	}
	return sl.relSet
}

// Has reports whether a relation is in the slice.
func (sl *Slice) Has(rel string) bool { return sl.Full || sl.relSet[rel] }

// RelsOf returns the slice's relations owned by one peer, sorted.
func (sl *Slice) RelsOf(id core.PeerID) []string { return sl.relsByPeer[id] }

// RemotePeers returns the peers other than the root that own at least
// one relevant relation, sorted — the fetch plan of SnapshotFor.
func (sl *Slice) RemotePeers() []core.PeerID {
	out := make([]core.PeerID, 0, len(sl.relsByPeer))
	for id := range sl.relsByPeer {
		if id != sl.Root {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RemoteRelCount counts the relevant relations not owned by the root —
// the relations a sliced snapshot actually has to move over the
// network.
func (sl *Slice) RemoteRelCount() int {
	n := 0
	for _, id := range sl.RemotePeers() {
		n += len(sl.relsByPeer[id])
	}
	return n
}

// ForQuery computes the slice for a parsed query: Compute over the
// query's predicates (negated subformulas, quantified bodies and both
// sides of implications included; comparison-only subformulas
// contribute no predicates).
func ForQuery(s *core.System, id core.PeerID, q foquery.Formula, transitive bool) (*Slice, error) {
	return Compute(s, id, foquery.Preds(q), transitive)
}

// entry is one constraint of the pool together with the predicates that
// are mutable in the repair stage enforcing it.
type entry struct {
	dep     *constraint.Dependency
	mutable map[string]bool
}

// Compute derives the relevance slice for queries over queryPreds posed
// to peer id. The closure is seeded with every relation of the peer
// plus queryPreds; see the package comment for the algorithm and its
// soundness conditions.
func Compute(s *core.System, id core.PeerID, queryPreds []string, transitive bool) (*Slice, error) {
	p, ok := s.Peer(id)
	if !ok {
		return nil, fmt.Errorf("slice: unknown peer %s", id)
	}
	pool, err := constraintPool(s, id, transitive)
	if err != nil {
		return nil, err
	}

	rels := map[string]bool{}
	for _, rel := range p.Schema.Relations() {
		rels[rel] = true
	}
	for _, pred := range queryPreds {
		if _, ok := s.Owner(pred); !ok {
			return nil, fmt.Errorf("slice: query relation %s is not declared by any peer", pred)
		}
		rels[pred] = true
	}

	keep := map[*constraint.Dependency]bool{}
	full := false
	for changed := true; changed; {
		changed = false
		for _, e := range pool {
			if keep[e.dep] {
				continue
			}
			if !isGuard(e) && !touches(e.dep, rels) {
				continue
			}
			keep[e.dep] = true
			changed = true
			for pred := range e.dep.Preds() {
				rels[pred] = true
			}
			if domainDependent(e) {
				full = true
			}
		}
	}

	total := 0
	for _, qid := range s.Peers() {
		qp, _ := s.Peer(qid)
		total += len(qp.Schema.Relations())
	}
	sl := &Slice{
		Root:       id,
		Transitive: transitive,
		Full:       full,
		KeptDeps:   len(keep),
		TotalDeps:  len(pool),
		TotalRels:  total,
		keep:       keep,
		relsByPeer: map[core.PeerID][]string{},
	}
	if full {
		// Degenerate slice: every relation is (potentially) relevant.
		rels = map[string]bool{}
		for _, qid := range s.Peers() {
			qp, _ := s.Peer(qid)
			for _, rel := range qp.Schema.Relations() {
				rels[rel] = true
			}
		}
	}
	sl.relSet = rels
	for rel := range rels {
		sl.Rels = append(sl.Rels, rel)
	}
	sort.Strings(sl.Rels)
	for _, rel := range sl.Rels {
		owner, ok := s.Owner(rel)
		if !ok {
			return nil, fmt.Errorf("slice: relation %s has no owner", rel)
		}
		sl.relsByPeer[owner] = append(sl.relsByPeer[owner], rel)
	}
	sl.Signature = signature(sl)
	return sl, nil
}

// constraintPool assembles the constraints the unsliced engines would
// enforce, each with the mutable-predicate set of its repair stage:
// the direct two-stage semantics of Definition 4 (the peer's less-trust
// DECs and ICs against the peer's own relations; its same-trust DECs
// against the peer's and the equally-trusted peers' relations), or the
// per-peer fragments of the Section 4.3 combined program.
func constraintPool(s *core.System, id core.PeerID, transitive bool) ([]entry, error) {
	var pool []entry
	add := func(p *core.Peer, includeSame bool) {
		mut := map[string]bool{}
		for _, rel := range p.Schema.Relations() {
			mut[rel] = true
		}
		mutSame := mut
		if includeSame {
			mutSame = map[string]bool{}
			for rel := range mut {
				mutSame[rel] = true
			}
			for _, q := range s.TrustedPeers(p.ID, core.TrustSame) {
				qp, _ := s.Peer(q)
				for _, rel := range qp.Schema.Relations() {
					mutSame[rel] = true
				}
			}
		}
		for _, q := range s.TrustedPeers(p.ID, core.TrustLess) {
			for _, d := range p.DECs[q] {
				pool = append(pool, entry{dep: d, mutable: mut})
			}
		}
		if includeSame {
			for _, q := range s.TrustedPeers(p.ID, core.TrustSame) {
				for _, d := range p.DECs[q] {
					pool = append(pool, entry{dep: d, mutable: mutSame})
				}
			}
		}
		for _, ic := range p.ICs {
			pool = append(pool, entry{dep: ic, mutable: mut})
		}
	}
	if !transitive {
		p, _ := s.Peer(id)
		add(p, true)
		return pool, nil
	}
	// Transitive: every trust-reachable peer with DECs contributes its
	// fragment (BuildTransitive skips DEC-less leaves; their ICs are not
	// compiled either, so they do not enter the pool). Reachability is a
	// plain BFS — cycles are rejected later by the program builder.
	seen := map[core.PeerID]bool{id: true}
	queue := []core.PeerID{id}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		p, ok := s.Peer(cur)
		if !ok {
			return nil, fmt.Errorf("slice: unknown peer %s reached via trust edges", cur)
		}
		if len(p.DECs) > 0 {
			add(p, cur == id)
		}
		for _, lvl := range []core.TrustLevel{core.TrustLess, core.TrustSame} {
			for _, q := range s.TrustedPeers(cur, lvl) {
				if len(p.DECs[q]) > 0 && !seen[q] {
					seen[q] = true
					queue = append(queue, q)
				}
			}
		}
	}
	return pool, nil
}

// touches reports whether the dependency mentions a relation of the
// closure.
func touches(d *constraint.Dependency, rels map[string]bool) bool {
	for pred := range d.Preds() {
		if rels[pred] {
			return true
		}
	}
	return false
}

// isGuard reports whether the dependency has no mutable predicate: a
// violation then admits no repair action, eliminating every solution of
// the peer, so the constraint is relevant to every query.
func isGuard(e entry) bool {
	for pred := range e.dep.Preds() {
		if e.mutable[pred] {
			return false
		}
	}
	return true
}

// domainDependent reports whether repairing the dependency may draw
// witnesses from the active domain: a TGD with existential variables
// where either no head atom sits on a fixed predicate (the LP builder
// then uses dom/1 facts over the whole active domain) or some
// existential variable occurs in no fixed-predicate head atom (the
// repair engine then enumerates the active domain for it). Such a
// constraint observes constants of arbitrary relations, so the slice
// must degrade to Full.
func domainDependent(e entry) bool {
	if !e.dep.IsTGD() || len(e.dep.ExVars) == 0 {
		return false
	}
	bound := map[string]bool{}
	fixedHeads := 0
	for _, h := range e.dep.Head {
		if e.mutable[h.Pred] {
			continue
		}
		fixedHeads++
		for _, v := range h.Vars(nil) {
			bound[v] = true
		}
	}
	if fixedHeads == 0 {
		return true
	}
	for _, v := range e.dep.ExVars {
		if !bound[v] {
			return true
		}
	}
	return false
}

// signature renders the slice canonically. Constraint names follow the
// sysdsl convention (unique within a system), so root + kept names +
// relations identify the projection.
func signature(sl *Slice) string {
	names := make([]string, 0, len(sl.keep))
	for d := range sl.keep {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "root=%s;transitive=%v;full=%v;rels=%s;deps=%s",
		sl.Root, sl.Transitive, sl.Full, strings.Join(sl.Rels, ","), strings.Join(names, ","))
	return b.String()
}

// DataFingerprint hashes the content of the slice's relations. Two
// systems with the same fingerprint agree on every relation the sliced
// pipeline can observe, so answers keyed by (signature, fingerprint)
// stay valid across changes to irrelevant relations.
//
// The fingerprint is incremental: it composes the per-relation content
// hashes cached on the owning instances (relation.Instance.RelHash,
// keyed by the relation's mutation generation), so fingerprinting a
// query over unchanged data costs one cached-hash probe per relevant
// relation instead of rehashing every tuple per query; an update
// re-hashes only the touched relation.
func DataFingerprint(s *core.System, sl *Slice) (string, error) {
	h := fnv.New64a()
	var buf [8]byte
	for _, rel := range sl.Rels {
		owner, ok := s.Owner(rel)
		if !ok {
			return "", fmt.Errorf("slice: relation %s has no owner", rel)
		}
		p, _ := s.Peer(owner)
		h.Write([]byte(rel))
		h.Write([]byte{0})
		binary.BigEndian.PutUint64(buf[:], p.Inst.RelHash(rel))
		h.Write(buf[:])
		h.Write([]byte{2})
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
