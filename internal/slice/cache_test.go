package slice

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/relation"
)

// TestAnswerCacheLRUHotEntriesSurviveOverflow: overflowing the cache
// evicts only the least recently used entries; a key kept hot by Gets
// survives arbitrarily many insertions past the bound.
func TestAnswerCacheLRUHotEntriesSurviveOverflow(t *testing.T) {
	c := NewAnswerCache(4)
	hot := "hot"
	c.Put(hot, []relation.Tuple{{"h"}})
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprintf("cold%d", i), []relation.Tuple{{fmt.Sprint(i)}})
		if _, ok := c.Get(hot); !ok {
			t.Fatalf("hot entry evicted after %d cold insertions", i+1)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("cache holds %d entries, want the bound 4", c.Len())
	}
	// The most recent cold keys survive, the oldest are gone.
	if _, ok := c.Get("cold19"); !ok {
		t.Fatal("most recent cold entry should survive")
	}
	if _, ok := c.Get("cold0"); ok {
		t.Fatal("oldest cold entry should have been evicted")
	}
}

// TestAnswerCacheLRUUpdateRefreshes: re-putting an existing key
// replaces its value and makes it most recently used.
func TestAnswerCacheLRUUpdateRefreshes(t *testing.T) {
	c := NewAnswerCache(2)
	c.Put("a", []relation.Tuple{{"1"}})
	c.Put("b", []relation.Tuple{{"2"}})
	c.Put("a", []relation.Tuple{{"3"}}) // refresh a: b becomes LRU
	c.Put("c", []relation.Tuple{{"4"}}) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should be evicted")
	}
	got, ok := c.Get("a")
	if !ok || len(got) != 1 || got[0][0] != "3" {
		t.Fatalf("a = %v, want refreshed value", got)
	}
}

// TestAnswerCacheCopies: cached answers are isolated from caller
// mutations in both directions.
func TestAnswerCacheCopies(t *testing.T) {
	c := NewAnswerCache(0)
	orig := []relation.Tuple{{"x", "y"}}
	c.Put("k", orig)
	orig[0][0] = "mutated"
	got, _ := c.Get("k")
	if got[0][0] != "x" {
		t.Fatal("Put must deep-copy")
	}
	got[0][1] = "mutated"
	got2, _ := c.Get("k")
	if got2[0][1] != "y" {
		t.Fatal("Get must deep-copy")
	}
}

// TestDataFingerprintIncremental: the fingerprint is served from cached
// per-relation hashes — repeated fingerprinting leaves every relation
// generation untouched, a relevant update changes the fingerprint, and
// an irrelevant one does not.
func TestDataFingerprintIncremental(t *testing.T) {
	sys := twoPeerSystem(t)
	sl, err := ForQuery(sys, "P", foquery.MustParse("a1(X,Y)"), false)
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := DataFingerprint(sys, sl)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := sys.Peer(core.PeerID("P"))
	gen := p.Inst.RelGen("a1")
	fp2, err := DataFingerprint(sys, sl)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprint unstable: %s vs %s", fp1, fp2)
	}
	if p.Inst.RelGen("a1") != gen {
		t.Fatal("fingerprinting must not advance relation generations")
	}
	// Relevant update: generation moves, fingerprint changes.
	p.Fact("a1", "new", "tuple")
	if p.Inst.RelGen("a1") == gen {
		t.Fatal("mutation must advance the relation generation")
	}
	fp3, err := DataFingerprint(sys, sl)
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Fatal("relevant update must change the fingerprint")
	}
}

// TestRelHashCachedPerRelation: hashing twice returns the same value
// without rebuilding (generation-keyed), and a mutation of one relation
// leaves the other relation's cached hash valid.
func TestRelHashCachedPerRelation(t *testing.T) {
	in := relation.NewInstance()
	in.Insert("a", relation.Tuple{"1", "2"})
	in.Insert("b", relation.Tuple{"3", "4"})
	ha, hb := in.RelHash("a"), in.RelHash("b")
	if in.RelHash("a") != ha || in.RelHash("b") != hb {
		t.Fatal("cached hashes must be stable")
	}
	in.Insert("a", relation.Tuple{"5", "6"})
	if in.RelHash("a") == ha {
		t.Fatal("mutating a must change a's hash")
	}
	if in.RelHash("b") != hb {
		t.Fatal("mutating a must not change b's hash")
	}
	// Content equality implies hash equality regardless of history.
	other := relation.NewInstance()
	other.Insert("b", relation.Tuple{"3", "4"})
	if other.RelHash("b") != hb {
		t.Fatal("equal content must hash equally")
	}
}

func twoPeerSystem(t *testing.T) *core.System {
	t.Helper()
	p := core.NewPeer("P").Declare("a1", 2).Fact("a1", "x", "y")
	q := core.NewPeer("Q").Declare("b1", 2).Fact("b1", "u", "v")
	return core.NewSystem().MustAddPeer(p).MustAddPeer(q)
}

// TestAnswerCacheConcurrent hammers one bounded cache from many
// goroutines with overlapping keys — parallel Get/Put with constant
// LRU eviction (the bound is far below the key space). Run under
// -race; the value checks catch cross-key corruption, the isolation
// check catches a Get result aliasing the cached entry.
func TestAnswerCacheConcurrent(t *testing.T) {
	c := NewAnswerCache(16)
	const workers, keys, iters = 8, 64, 400
	valueFor := func(k int) []relation.Tuple {
		return []relation.Tuple{{fmt.Sprintf("k%d", k), "v"}}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (w*31 + i) % keys
				key := fmt.Sprintf("key%d", k)
				if ans, ok := c.Get(key); ok {
					want := valueFor(k)
					if len(ans) != 1 || !ans[0].Equal(want[0]) {
						t.Errorf("key %s returned %v, want %v", key, ans, want)
						return
					}
					ans[0][0] = "scribbled" // must not poison the entry
				} else {
					c.Put(key, valueFor(k))
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 16 {
		t.Fatalf("cache grew to %d entries past its bound 16", n)
	}
	hits, misses := c.Stats()
	if hits+misses != workers*iters {
		t.Fatalf("hits+misses = %d, want %d lookups", hits+misses, workers*iters)
	}
}

// TestAnswerCachePromoteIncrRekeys: Promote moves an entry to its new
// key in place — the old key is gone, the new key serves the patched
// answers, and the cache does not grow.
func TestAnswerCachePromoteIncrRekeys(t *testing.T) {
	c := NewAnswerCache(4)
	c.Put("old", []relation.Tuple{{"a"}})
	c.Put("other", []relation.Tuple{{"o"}})
	c.Promote("old", "new", []relation.Tuple{{"b"}})
	if _, ok := c.Get("old"); ok {
		t.Fatal("old key must be gone after Promote")
	}
	ans, ok := c.Get("new")
	if !ok || len(ans) != 1 || ans[0][0] != "b" {
		t.Fatalf("new key = %v ok=%v, want patched answers", ans, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2 (re-key must not grow)", c.Len())
	}
}

// TestAnswerCachePromoteIncrKeepsLRUPosition: a promoted entry is most
// recently used — the incremental path keeps hot entries hot.
func TestAnswerCachePromoteIncrKeepsLRUPosition(t *testing.T) {
	c := NewAnswerCache(2)
	c.Put("hot", []relation.Tuple{{"h"}})
	c.Put("cold", []relation.Tuple{{"c"}})
	c.Promote("hot", "hot2", []relation.Tuple{{"h2"}})
	// Inserting one more evicts the LRU entry, which must be "cold".
	c.Put("newer", []relation.Tuple{{"n"}})
	if _, ok := c.Get("hot2"); !ok {
		t.Fatal("promoted entry should have been most recently used")
	}
	if _, ok := c.Get("cold"); ok {
		t.Fatal("cold entry should have been evicted")
	}
}

// TestAnswerCachePromoteIncrMissingOldKey: without the old entry
// (evicted, or a fresh series), Promote degrades to a plain Put.
func TestAnswerCachePromoteIncrMissingOldKey(t *testing.T) {
	c := NewAnswerCache(2)
	c.Promote("never-existed", "new", []relation.Tuple{{"x"}})
	ans, ok := c.Get("new")
	if !ok || len(ans) != 1 || ans[0][0] != "x" {
		t.Fatalf("Promote with absent old key should Put: %v ok=%v", ans, ok)
	}
	// Same with an empty old key and a pre-existing new key.
	c.Promote("", "new", []relation.Tuple{{"y"}})
	ans, _ = c.Get("new")
	if len(ans) != 1 || ans[0][0] != "y" {
		t.Fatalf("Promote onto existing new key should update: %v", ans)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
}

// TestAnswerCachePromoteIncrCollision: when both the old and the new
// key exist, the new key's stale entry is dropped, not duplicated.
func TestAnswerCachePromoteIncrCollision(t *testing.T) {
	c := NewAnswerCache(4)
	c.Put("old", []relation.Tuple{{"a"}})
	c.Put("new", []relation.Tuple{{"stale"}})
	c.Promote("old", "new", []relation.Tuple{{"fresh"}})
	ans, ok := c.Get("new")
	if !ok || len(ans) != 1 || ans[0][0] != "fresh" {
		t.Fatalf("collision Promote = %v ok=%v, want fresh", ans, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1 after collision", c.Len())
	}
}

// TestAnswerCachePromoteIncrCopies: Promote stores a copy — mutating
// the caller's slice afterwards cannot poison the entry.
func TestAnswerCachePromoteIncrCopies(t *testing.T) {
	c := NewAnswerCache(2)
	ans := []relation.Tuple{{"v"}}
	c.Promote("", "k", ans)
	ans[0][0] = "mutated"
	got, _ := c.Get("k")
	if got[0][0] != "v" {
		t.Fatal("Promote did not deep-copy the answers")
	}
}

// TestAnswerKeyComponents: the canonical cache key is deterministic
// and distinguishes every component — query text, answer variables,
// slice signature, data fingerprint.
func TestAnswerKeyComponents(t *testing.T) {
	sl := &Slice{Signature: "sigA"}
	base := AnswerKey("q(X)", []string{"X"}, sl, "fp1")
	if AnswerKey("q(X)", []string{"X"}, sl, "fp1") != base {
		t.Fatal("AnswerKey is not deterministic")
	}
	for name, other := range map[string]string{
		"query":       AnswerKey("p(X)", []string{"X"}, sl, "fp1"),
		"vars":        AnswerKey("q(X)", []string{"Y"}, sl, "fp1"),
		"fingerprint": AnswerKey("q(X)", []string{"X"}, sl, "fp2"),
		"signature":   AnswerKey("q(X)", []string{"X"}, &Slice{Signature: "sigB"}, "fp1"),
	} {
		if other == base {
			t.Fatalf("AnswerKey ignores the %s component", name)
		}
	}
}
