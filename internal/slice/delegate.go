package slice

import (
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/core"
)

// Plan is a delegated-answering plan for one (system, root, slice)
// triple: which of the root's DEC neighbours answer their sub-queries
// with their own engines (Delegates, peers that maintain DECs of their
// own), which merely ship raw relations (Fetches, DEC-less data peers),
// and which relations the root needs from each. PlanDelegation returns
// a plan only when composing the per-peer answers is provably exact;
// otherwise the caller must fall back to the centralized snapshot path.
type Plan struct {
	Root core.PeerID
	// Delegates are the root's trusted DEC neighbours that repair data
	// themselves (they maintain DECs), sorted. Each is asked for its
	// peer consistent answers to the atomic queries over Rels[peer].
	Delegates []core.PeerID
	// Fetches are the root's trusted DEC neighbours without DECs of
	// their own, sorted. Their relations are read raw, exactly as the
	// combined program of Section 4.3 reads DEC-less leaves.
	Fetches []core.PeerID
	// Stubs are trusted DEC neighbours whose relations the root's DECs
	// never mention (constraints purely over the root's schema), sorted:
	// no data moves, but the composed system still needs an empty peer
	// so the DEC stays well-formed and enforced.
	Stubs []core.PeerID
	// Rels maps each planned peer to the relations the root's DECs
	// mention of it, sorted. Peers in Stubs have no entry.
	Rels map[core.PeerID][]string
}

// Peers returns every planned peer (delegates, fetches and stubs),
// sorted.
func (p *Plan) Peers() []core.PeerID {
	out := append([]core.PeerID(nil), p.Delegates...)
	out = append(out, p.Fetches...)
	out = append(out, p.Stubs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RemoteCalls counts the network round-trips the plan needs: one OpPCA
// per delegated relation, one batched fetch per raw-data peer.
func (p *Plan) RemoteCalls() int {
	n := len(p.Fetches)
	for _, d := range p.Delegates {
		n += len(p.Rels[d])
	}
	return n
}

// PlanDelegation decides whether the query behind the slice can be
// answered by delegation — each neighbour computing its own peer
// consistent answers, the root composing them — with answers identical
// to the centralized path, and builds the plan if so. On refusal it
// returns a nil plan and the reason.
//
// Delegation is exact when every remote peer's contribution is a
// function of its own data alone, i.e. when each reachable non-root
// peer has a unique solution (or none, which surfaces as an error and
// triggers the fallback). The gate enforces, conservatively:
//
//   - transitive semantics only: Definition 4 (direct) reads neighbour
//     data raw, so there is no remote computation to delegate;
//   - no domain-dependent slice (Full): repairs may then draw
//     witnesses from the whole active domain, which no single peer
//     sees;
//   - no same-trust DECs at non-root peers (the combined program of
//     Section 4.3 ignores them — a peer answering its own query would
//     enforce them), and same-trust DECs of the root only toward
//     DEC-less peers (toward a repairing peer they interleave the
//     root's choices with the neighbour's, a joint repair that does
//     not factor through answer sets);
//   - every kept constraint enforced by a non-root peer is *forced*:
//     each violation admits exactly one repair action, so the peer's
//     solution is unique when one exists. Guards (no mutable
//     predicate) are also fine — they only decide solution existence,
//     and a "no solutions" outcome surfaces as an error either way.
//
// Constraints the slice dropped need no check: a dropped constraint
// shares no relation with the closure (which contains every relation
// the root's DECs mention), so its repair choices cannot reach any
// delegated answer set, and at worst it erases a remote peer's
// solutions — an error, which the caller turns into a fallback.
func PlanDelegation(s *core.System, root core.PeerID, sl *Slice) (*Plan, string) {
	if !sl.Transitive {
		return nil, "direct semantics reads neighbour data raw (nothing to delegate)"
	}
	if sl.Full {
		return nil, "slice is domain-dependent (Full): repairs may draw witnesses from the whole active domain"
	}
	rp, ok := s.Peer(root)
	if !ok {
		return nil, fmt.Sprintf("unknown root peer %s", root)
	}

	// Walk the reachable overlay exactly like the constraint pool /
	// combined program: trust edges carrying DECs, starting at the root.
	seen := map[core.PeerID]bool{root: true}
	queue := []core.PeerID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		p, ok := s.Peer(cur)
		if !ok {
			return nil, fmt.Sprintf("unknown peer %s reached via trust edges", cur)
		}
		for _, q := range s.TrustedPeers(cur, core.TrustSame) {
			if len(p.DECs[q]) == 0 {
				continue
			}
			qp, ok := s.Peer(q)
			if !ok {
				return nil, fmt.Sprintf("unknown peer %s reached via trust edges", q)
			}
			if cur != root {
				return nil, fmt.Sprintf("peer %s enforces same-trust DECs toward %s (ignored by the combined program, enforced by a delegate)", cur, q)
			}
			if len(qp.DECs) > 0 {
				return nil, fmt.Sprintf("root maintains same-trust DECs toward repairing peer %s (joint repair does not factor through answer sets)", q)
			}
		}
		if cur != root && len(p.DECs) > 0 {
			mutable := map[string]bool{}
			for _, rel := range p.Schema.Relations() {
				mutable[rel] = true
			}
			check := func(d *constraint.Dependency) (string, bool) {
				if !sl.KeepDep(d) {
					return "", true
				}
				if forcedRepair(d, mutable) {
					return "", true
				}
				return fmt.Sprintf("constraint %s of peer %s admits repair choices (delegate's solution may not be unique)", d.Name, cur), false
			}
			for _, q := range s.TrustedPeers(cur, core.TrustLess) {
				for _, d := range p.DECs[q] {
					if reason, ok := check(d); !ok {
						return nil, reason
					}
				}
			}
			for _, ic := range p.ICs {
				if reason, ok := check(ic); !ok {
					return nil, reason
				}
			}
		}
		for _, lvl := range []core.TrustLevel{core.TrustLess, core.TrustSame} {
			for _, q := range s.TrustedPeers(cur, lvl) {
				if len(p.DECs[q]) > 0 && !seen[q] {
					seen[q] = true
					queue = append(queue, q)
				}
			}
		}
	}

	// The plan covers the root's trusted DEC targets: the relations its
	// DECs mention are everything the root's own fragment reads. (Every
	// DEC of the root is in the slice — the closure is seeded with all
	// root relations, and a DEC mentioning none of them is a guard,
	// which is always kept — so no kept-check is needed here.)
	plan := &Plan{Root: root, Rels: map[core.PeerID][]string{}}
	targets := append(s.TrustedPeers(root, core.TrustLess), s.TrustedPeers(root, core.TrustSame)...)
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	for _, q := range targets {
		if len(rp.DECs[q]) == 0 {
			continue
		}
		qp, _ := s.Peer(q)
		set := map[string]bool{}
		for _, d := range rp.DECs[q] {
			for pred := range d.Preds() {
				if qp.Schema.Has(pred) {
					set[pred] = true
				}
			}
		}
		rels := make([]string, 0, len(set))
		for rel := range set {
			rels = append(rels, rel)
		}
		sort.Strings(rels)
		switch {
		case len(rels) == 0:
			plan.Stubs = append(plan.Stubs, q)
		case len(qp.DECs) > 0:
			plan.Delegates = append(plan.Delegates, q)
			plan.Rels[q] = rels
		default:
			plan.Fetches = append(plan.Fetches, q)
			plan.Rels[q] = rels
		}
	}
	return plan, ""
}

// forcedRepair reports whether every violation of the dependency admits
// exactly one repair action under the given mutable-predicate set, so
// that repairing it is deterministic (unit propagation): a full TGD
// whose body is entirely fixed and whose head is entirely mutable (the
// missing head atoms must be inserted), or a denial/EGD with exactly
// one body atom on a mutable predicate (that tuple must be deleted).
// Guards — no mutable predicate at all — are also accepted: they only
// decide whether solutions exist.
func forcedRepair(d *constraint.Dependency, mutable map[string]bool) bool {
	guard := true
	for pred := range d.Preds() {
		if mutable[pred] {
			guard = false
			break
		}
	}
	if guard {
		return true
	}
	if d.IsTGD() {
		if len(d.ExVars) > 0 {
			return false
		}
		for _, a := range d.Body {
			if mutable[a.Pred] {
				return false
			}
		}
		for _, a := range d.Head {
			if !mutable[a.Pred] {
				return false
			}
		}
		return true
	}
	// Denial or EGD: deletion is the only repair action; it is forced
	// exactly when a single body atom sits on a mutable predicate.
	n := 0
	for _, a := range d.Body {
		if mutable[a.Pred] {
			n++
		}
	}
	return n == 1
}
