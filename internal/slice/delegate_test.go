package slice

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/term"
	"repro/internal/workload"
)

// mustPlan computes the slice and requires PlanDelegation to accept.
func mustPlan(t *testing.T, s *core.System, root core.PeerID, query string, transitive bool) *Plan {
	t.Helper()
	sl := mustCompute(t, s, root, query, transitive)
	plan, reason := PlanDelegation(s, root, sl)
	if plan == nil {
		t.Fatalf("PlanDelegation refused: %s", reason)
	}
	return plan
}

// TestPlanDelegationFanout: on the delegation-fanout workload every hub
// enforces DECs of its own, so each becomes a delegate asked for its
// single shared relation; leaves are reached transitively by the hubs,
// not planned by the root.
func TestPlanDelegationFanout(t *testing.T) {
	s := workload.DelegationFanout(2, 3, 1, 2, 1)
	plan := mustPlan(t, s, "P0", "r0(X,Y)", true)
	if got := plan.Delegates; len(got) != 2 || got[0] != "H0" || got[1] != "H1" {
		t.Fatalf("Delegates = %v, want [H0 H1]", got)
	}
	if len(plan.Fetches) != 0 || len(plan.Stubs) != 0 {
		t.Fatalf("Fetches = %v Stubs = %v, want none", plan.Fetches, plan.Stubs)
	}
	for h, rels := range map[core.PeerID][]string{"H0": {"s0"}, "H1": {"s1"}} {
		if got := plan.Rels[h]; len(got) != 1 || got[0] != rels[0] {
			t.Fatalf("Rels[%s] = %v, want %v", h, got, rels)
		}
	}
	if got := plan.RemoteCalls(); got != 2 {
		t.Fatalf("RemoteCalls = %d, want 2 (one OpPCA per delegated relation)", got)
	}
	if got := plan.Peers(); len(got) != 2 || got[0] != "H0" || got[1] != "H1" {
		t.Fatalf("Peers = %v, want [H0 H1]", got)
	}
}

// TestPlanDelegationChainFetchOnly: a two-peer chain's neighbour has no
// DECs of its own, so the plan reads it raw — a fetch, not a delegate.
// A fetch still costs one remote call (the batched relation fetch).
func TestPlanDelegationChainFetchOnly(t *testing.T) {
	plan := mustPlan(t, workload.Chain(2, 2, 1), "P0", "t0(X,Y)", true)
	if len(plan.Delegates) != 0 {
		t.Fatalf("Delegates = %v, want none (P1 is DEC-less)", plan.Delegates)
	}
	if got := plan.Fetches; len(got) != 1 || got[0] != "P1" {
		t.Fatalf("Fetches = %v, want [P1]", got)
	}
	if got := plan.RemoteCalls(); got != 1 {
		t.Fatalf("RemoteCalls = %d, want 1", got)
	}
}

// TestPlanDelegationStub: a root DEC purely over the root's own schema,
// targeted at a data-less neighbour, plans the neighbour as a stub — no
// data moves, no remote calls, but the peer stays in the composition so
// the DEC remains well-formed.
func TestPlanDelegationStub(t *testing.T) {
	r := core.NewPeer("R").Declare("ta", 2).Declare("ua", 2).
		Fact("ta", "a", "1").Fact("ua", "a", "1").
		SetTrust("B", core.TrustLess).
		AddDEC("B", constraint.KeyEGD("egdR", "ta", "ua"))
	b := core.NewPeer("B").Declare("ub", 2)
	s := core.NewSystem().MustAddPeer(r).MustAddPeer(b)
	plan := mustPlan(t, s, "R", "ta(X,Y)", true)
	if got := plan.Stubs; len(got) != 1 || got[0] != "B" {
		t.Fatalf("Stubs = %v, want [B]", got)
	}
	if len(plan.Rels) != 0 {
		t.Fatalf("Rels = %v, want empty (stubs ship no data)", plan.Rels)
	}
	if got := plan.RemoteCalls(); got != 0 {
		t.Fatalf("RemoteCalls = %d, want 0", got)
	}
}

// TestPlanDelegationRefusals walks every refusal branch of the
// exactness gate and pins its reason.
func TestPlanDelegationRefusals(t *testing.T) {
	importBase := func() (*core.Peer, *core.Peer, *core.Peer) {
		r := core.NewPeer("R").Declare("tr", 2).Fact("tr", "r", "1").
			SetTrust("A", core.TrustLess).
			AddDEC("A", constraint.Inclusion("incRA", "ta", "tr", 2))
		a := core.NewPeer("A").Declare("ta", 2).Fact("ta", "a", "1")
		b := core.NewPeer("B").Declare("ub", 2).Fact("ub", "a", "1")
		return r, a, b
	}
	cases := []struct {
		name       string
		build      func() *core.System
		root       core.PeerID
		query      string
		transitive bool
		reason     string
	}{
		{
			"direct-semantics", core.Example1System, "P1", "r1(X,Y)", false,
			"direct semantics reads neighbour data raw",
		},
		{
			"unknown-root",
			func() *core.System { return core.Example1System() },
			"PX", "r1(X,Y)", true,
			"unknown root peer PX",
		},
		{
			"same-trust-at-non-root",
			func() *core.System {
				r, a, b := importBase()
				a.SetTrust("B", core.TrustSame).
					AddDEC("B", constraint.KeyEGD("egdAB", "ta", "ub"))
				return core.NewSystem().MustAddPeer(r).MustAddPeer(a).MustAddPeer(b)
			},
			"R", "tr(X,Y)", true,
			"enforces same-trust DECs toward",
		},
		{
			"root-same-trust-toward-repairing-peer",
			func() *core.System {
				r, a, b := importBase()
				r.Declare("ur", 2).SetTrust("A", core.TrustSame)
				a.SetTrust("B", core.TrustLess).
					AddDEC("B", constraint.Inclusion("incAB", "ub", "ta", 2))
				return core.NewSystem().MustAddPeer(r).MustAddPeer(a).MustAddPeer(b)
			},
			"R", "tr(X,Y)", true,
			"root maintains same-trust DECs toward repairing peer A",
		},
		{
			"non-forced-remote-constraint",
			func() *core.System {
				r, a, b := importBase()
				a.Declare("ua", 2).Fact("ua", "a", "2").
					SetTrust("B", core.TrustLess).
					AddDEC("B", constraint.KeyEGD("egdA", "ta", "ua"))
				return core.NewSystem().MustAddPeer(r).MustAddPeer(a).MustAddPeer(b)
			},
			"R", "tr(X,Y)", true,
			"admits repair choices",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := tc.build()
			// For the unknown-root case the slice is computed for a peer the
			// system has, and the plan is then pointed at one it does not.
			computeAs := tc.root
			if tc.name == "unknown-root" {
				computeAs = "P1"
			}
			sl := mustCompute(t, s, computeAs, tc.query, tc.transitive)
			plan, reason := PlanDelegation(s, tc.root, sl)
			if plan != nil {
				t.Fatalf("PlanDelegation accepted, want refusal %q", tc.reason)
			}
			if !strings.Contains(reason, tc.reason) {
				t.Fatalf("reason = %q, want substring %q", reason, tc.reason)
			}
		})
	}
}

// TestPlanDelegationRefusesFullSlice: a Full (domain-dependent) slice
// is refused before any overlay walk.
func TestPlanDelegationRefusesFullSlice(t *testing.T) {
	s := workload.Chain(2, 2, 1)
	sl := mustCompute(t, s, "P0", "t0(X,Y)", true)
	sl.Full = true
	plan, reason := PlanDelegation(s, "P0", sl)
	if plan != nil {
		t.Fatal("PlanDelegation accepted a Full slice")
	}
	if !strings.Contains(reason, "domain-dependent") {
		t.Fatalf("reason = %q, want domain-dependent refusal", reason)
	}
}

// TestForcedRepair exercises the unit-propagation classifier directly.
func TestForcedRepair(t *testing.T) {
	atom := func(pred string, vars ...string) term.Atom {
		args := make([]term.Term, len(vars))
		for i, v := range vars {
			args[i] = term.V(v)
		}
		return term.Atom{Pred: pred, Args: args}
	}
	mutable := map[string]bool{"m": true, "m2": true}
	cases := []struct {
		name string
		d    *constraint.Dependency
		want bool
	}{
		{"guard-no-mutable-pred", &constraint.Dependency{
			Name: "g", Body: []term.Atom{atom("f", "X")},
		}, true},
		{"full-tgd-fixed-body-mutable-head", &constraint.Dependency{
			Name: "t1", Body: []term.Atom{atom("f", "X")}, Head: []term.Atom{atom("m", "X")},
		}, true},
		{"tgd-existential", &constraint.Dependency{
			Name: "t2", Body: []term.Atom{atom("f", "X")}, ExVars: []string{"W"},
			Head: []term.Atom{atom("m", "X", "W")},
		}, false},
		{"tgd-mutable-body", &constraint.Dependency{
			Name: "t3", Body: []term.Atom{atom("m", "X")}, Head: []term.Atom{atom("m2", "X")},
		}, false},
		{"tgd-fixed-head-atom", &constraint.Dependency{
			Name: "t4", Body: []term.Atom{atom("f", "X")},
			Head: []term.Atom{atom("m", "X"), atom("f2", "X")},
		}, false},
		{"denial-one-mutable-atom", &constraint.Dependency{
			Name: "d1", Body: []term.Atom{atom("m", "X", "Y"), atom("f", "X")},
		}, true},
		{"denial-two-mutable-atoms", &constraint.Dependency{
			Name: "d2", Body: []term.Atom{atom("m", "X", "Y"), atom("m2", "X", "Z")},
		}, false},
	}
	for _, tc := range cases {
		if got := forcedRepair(tc.d, mutable); got != tc.want {
			t.Errorf("%s: forcedRepair = %v, want %v", tc.name, got, tc.want)
		}
	}
}
