package slice

import (
	"sync"
	"sync/atomic"

	"repro/internal/relation"
)

// Flight coalesces concurrent answer computations under content-
// addressed keys (AnswerKey): while a computation for a key is in
// flight, later callers for the same key wait for it and share its
// result instead of repeating the repair search (singleflight). The
// keys embed the data fingerprint, so two requests share a flight only
// when they would provably compute the same answers — a write to a
// relevant relation moves the fingerprint and lands on a fresh key.
//
// The zero Flight is ready to use.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall

	leaders   atomic.Int64
	coalesced atomic.Int64
}

// flightCall is one in-flight computation. ans/err are written by the
// leader before done is closed and only read after it, so followers
// need no extra synchronization; waiters (under Flight.mu) counts the
// followers currently parked on done.
type flightCall struct {
	done    chan struct{}
	waiters int
	ans     []relation.Tuple
	err     error
}

// Do returns the answers for key, computing them via compute if no
// computation for key is in flight, and otherwise waiting for the
// in-flight one. shared reports whether the result came from another
// caller's computation; shared results are deep copies, so every caller
// owns its tuples. An error is shared with the followers of the flight
// that produced it.
func (f *Flight) Do(key string, compute func() ([]relation.Tuple, error)) (ans []relation.Tuple, shared bool, err error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]*flightCall)
	}
	if c, ok := f.calls[key]; ok {
		c.waiters++
		f.mu.Unlock()
		<-c.done
		f.coalesced.Add(1)
		return cloneTuples(c.ans), true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	f.leaders.Add(1)
	// Deregister before waking the followers even if compute panics:
	// a stuck entry would coalesce every future request for the key
	// into a flight that never completes.
	defer func() {
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
	}()
	c.ans, c.err = compute()
	return c.ans, false, c.err
}

// Stats reports how many computations ran (leaders) and how many
// requests were absorbed into an in-flight computation (coalesced).
func (f *Flight) Stats() (leaders, coalesced int64) {
	return f.leaders.Load(), f.coalesced.Load()
}
