package slice

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/relation"
)

// waitForWaiters polls until n followers are parked on the key's
// in-flight call (white-box: the waiter count lives under f.mu).
func waitForWaiters(t *testing.T, f *Flight, key string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		f.mu.Lock()
		c := f.calls[key]
		waiters := 0
		if c != nil {
			waiters = c.waiters
		}
		f.mu.Unlock()
		if waiters >= n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %d waiters on %q", n, key)
}

// TestFlightCoalesces proves the coalescing contract deterministically:
// N identical concurrent requests produce exactly one compute
// invocation and N identical answers. The leader's compute blocks until
// every follower is provably parked on the flight, so no scheduling
// order can sneak a second compute in.
func TestFlightCoalesces(t *testing.T) {
	const followers = 8
	var f Flight
	var computes atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	want := []relation.Tuple{{"a", "b"}, {"c", "d"}}

	results := make([][]relation.Tuple, followers+1)
	shareds := make([]bool, followers+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader
		defer wg.Done()
		ans, shared, err := f.Do("k", func() ([]relation.Tuple, error) {
			computes.Add(1)
			close(entered)
			<-release
			return cloneTuples(want), nil
		})
		if err != nil {
			t.Error(err)
		}
		results[0], shareds[0] = ans, shared
	}()
	<-entered
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ans, shared, err := f.Do("k", func() ([]relation.Tuple, error) {
				computes.Add(1)
				return cloneTuples(want), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], shareds[i] = ans, shared
		}(i)
	}
	waitForWaiters(t, &f, "k", followers)
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computes = %d, want exactly 1", got)
	}
	if shareds[0] {
		t.Fatal("leader must not report shared")
	}
	for i, ans := range results {
		if len(ans) != len(want) {
			t.Fatalf("caller %d: %d answers, want %d", i, len(ans), len(want))
		}
		for j := range ans {
			if !ans[j].Equal(want[j]) {
				t.Fatalf("caller %d answer %d = %v, want %v", i, j, ans[j], want[j])
			}
		}
		if i > 0 && !shareds[i] {
			t.Fatalf("follower %d must report shared", i)
		}
	}
	// Followers own deep copies: mutating one result must not leak into
	// another caller's tuples.
	results[1][0][0] = "poisoned"
	if results[2][0][0] != "a" {
		t.Fatal("follower results alias each other")
	}
	leaders, coalesced := f.Stats()
	if leaders != 1 || coalesced != followers {
		t.Fatalf("stats = (%d leaders, %d coalesced), want (1, %d)", leaders, coalesced, followers)
	}
}

func TestFlightSequentialDoesNotCoalesce(t *testing.T) {
	var f Flight
	var computes int
	for i := 0; i < 3; i++ {
		_, shared, err := f.Do("k", func() ([]relation.Tuple, error) {
			computes++
			return nil, nil
		})
		if err != nil || shared {
			t.Fatalf("run %d: shared=%v err=%v", i, shared, err)
		}
	}
	if computes != 3 {
		t.Fatalf("computes = %d, want 3 (sequential calls never share)", computes)
	}
}

func TestFlightSharesError(t *testing.T) {
	var f Flight
	boom := errors.New("boom")
	entered := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := f.Do("k", func() ([]relation.Tuple, error) {
			close(entered)
			<-release
			return nil, boom
		})
		if err != boom {
			t.Errorf("leader err = %v", err)
		}
	}()
	<-entered
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, shared, err := f.Do("k", func() ([]relation.Tuple, error) {
			t.Error("follower must not compute")
			return nil, nil
		})
		if !shared || err != boom {
			t.Errorf("follower shared=%v err=%v", shared, err)
		}
	}()
	waitForWaiters(t, &f, "k", 1)
	close(release)
	wg.Wait()
}

func TestFlightDistinctKeysRunIndependently(t *testing.T) {
	var f Flight
	entered := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.Do("a", func() ([]relation.Tuple, error) {
			close(entered)
			<-release
			return nil, nil
		})
	}()
	<-entered
	// A different key must not join the in-flight "a" computation.
	done := make(chan struct{})
	go func() {
		f.Do("b", func() ([]relation.Tuple, error) { return nil, nil })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key b blocked behind key a")
	}
	close(release)
	wg.Wait()
	if leaders, coalesced := f.Stats(); leaders != 2 || coalesced != 0 {
		t.Fatalf("stats = (%d, %d), want (2, 0)", leaders, coalesced)
	}
}
