package slice

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/relation"
	"repro/internal/sysdsl"
	"repro/internal/workload"
)

func mustCompute(t *testing.T, s *core.System, id core.PeerID, query string, transitive bool) *Slice {
	t.Helper()
	sl, err := ForQuery(s, id, foquery.MustParse(query), transitive)
	if err != nil {
		t.Fatal(err)
	}
	return sl
}

// TestExample1Slice: every relation of Example 1 participates in a
// constraint with r1, so the slice for r1(X,Y) keeps everything.
func TestExample1Slice(t *testing.T) {
	sl := mustCompute(t, core.Example1System(), "P1", "r1(X,Y)", false)
	for _, rel := range []string{"r1", "r2", "r3"} {
		if !sl.Has(rel) {
			t.Errorf("slice should contain %s: %v", rel, sl.Rels)
		}
	}
	if sl.KeptDeps != sl.TotalDeps {
		t.Errorf("all constraints touch r1; kept %d/%d", sl.KeptDeps, sl.TotalDeps)
	}
	if sl.Full {
		t.Error("Example 1 has no domain-dependent constraint; slice must not be Full")
	}
}

// TestBystanderDropped: a same-trust constraint over only a
// neighbour's relations is repairable and disjoint from the query, so
// it is dropped and its relations stay out of the slice.
func TestBystanderDropped(t *testing.T) {
	s := workload.WideUniverse(3, 2, 2, 1, 1)
	sl := mustCompute(t, s, "P0", "q0(X,Y)", false)
	if !sl.Has("q0") || !sl.Has("c0") {
		t.Fatalf("core relations missing from slice: %v", sl.Rels)
	}
	for _, rel := range []string{"b0_r0", "b0_r1", "b1_r0", "b2_r1"} {
		if sl.Has(rel) {
			t.Errorf("bystander relation %s should be out of the slice", rel)
		}
	}
	if sl.KeptDeps != 1 {
		t.Errorf("only inc_core should be kept, got %d/%d", sl.KeptDeps, sl.TotalDeps)
	}
	if got := sl.RemoteRelCount(); got != 1 {
		t.Errorf("RemoteRelCount = %d, want 1 (c0)", got)
	}
	if peers := sl.RemotePeers(); len(peers) != 1 || peers[0] != "PC" {
		t.Errorf("RemotePeers = %v, want [PC]", peers)
	}
}

// TestGuardKept: a less-trust DEC over only the neighbour's relations
// has no repair action (all its predicates are fixed in stage 1); a
// violation would eliminate every solution, so the slice must keep it
// even though it shares no relation with the query.
func TestGuardKept(t *testing.T) {
	p := core.NewPeer("P").Declare("mine", 2).
		SetTrust("Q", core.TrustLess).
		AddDEC("Q", constraint.KeyEGD("guard", "qa", "qb"))
	q := core.NewPeer("Q").Declare("qa", 2).Declare("qb", 2)
	s := core.NewSystem().MustAddPeer(p).MustAddPeer(q)
	sl := mustCompute(t, s, "P", "mine(X,Y)", false)
	if sl.KeptDeps != 1 {
		t.Fatalf("guard constraint must be kept, got %d kept", sl.KeptDeps)
	}
	if !sl.Has("qa") || !sl.Has("qb") {
		t.Fatalf("guard relations must be fetched: %v", sl.Rels)
	}
}

// TestNegatedSubformulaInSlice: a relation reachable only through a
// negated subformula of the query must land in the slice seeds.
func TestNegatedSubformulaInSlice(t *testing.T) {
	p := core.NewPeer("P").Declare("r1", 2).Declare("r1b", 2).
		SetTrust("Q", core.TrustLess).
		AddDEC("Q", constraint.Inclusion("inc", "s1", "r1", 2))
	q := core.NewPeer("Q").Declare("s1", 2)
	s := core.NewSystem().MustAddPeer(p).MustAddPeer(q)
	sl := mustCompute(t, s, "P", "r1(X,Y) & !r1b(Y,X)", false)
	for _, rel := range []string{"r1", "r1b", "s1"} {
		if !sl.Has(rel) {
			t.Errorf("slice misses %s: %v", rel, sl.Rels)
		}
	}
}

// TestComparisonOnlyQuery: comparison-only subformulas contribute no
// predicates; the slice still seeds with the peer's schema and must
// not fail.
func TestComparisonOnlyQuery(t *testing.T) {
	s := core.Example1System()
	sl, err := Compute(s, "P1", foquery.Preds(foquery.MustParse("r1(X,Y) & X != Y")), false)
	if err != nil {
		t.Fatal(err)
	}
	if !sl.Has("r1") {
		t.Fatalf("slice misses r1: %v", sl.Rels)
	}
	if preds := foquery.Preds(foquery.MustParse("X != Y")); len(preds) != 0 {
		t.Fatalf("comparison-only formula has predicates: %v", preds)
	}
}

// TestTransitiveMappingReachable: in the transitive case a relation
// reachable only through a chain of import mappings must land in the
// slice — and a side branch hanging off the chain must not.
func TestTransitiveMappingReachable(t *testing.T) {
	s := workload.Chain(4, 2, 1)
	sl := mustCompute(t, s, "P0", "t0(X,Y)", true)
	for _, rel := range []string{"t0", "t1", "t2", "t3"} {
		if !sl.Has(rel) {
			t.Errorf("transitively mapped relation %s missing: %v", rel, sl.Rels)
		}
	}
	if sl.KeptDeps != 3 {
		t.Errorf("all three chain inclusions should be kept, got %d/%d", sl.KeptDeps, sl.TotalDeps)
	}

	// Side branch: P1 additionally maintains a repairable same-trust EGD
	// with a bystander peer; the t0 slice must drop it.
	s2 := workload.Chain(3, 2, 1)
	p1, _ := s2.Peer("P1")
	side := core.NewPeer("SIDE").Declare("sa", 2).Declare("sb", 2)
	p1.SetTrust("SIDE", core.TrustSame)
	p1.AddDEC("SIDE", constraint.KeyEGD("side_egd", "sa", "sb"))
	s2.MustAddPeer(side)
	sl2 := mustCompute(t, s2, "P0", "t0(X,Y)", true)
	if sl2.Has("sa") || sl2.Has("sb") {
		t.Errorf("side-branch relations leaked into the slice: %v", sl2.Rels)
	}
}

// TestDomainDependentForcesFull: a referential DEC without fixed
// witness providers draws witnesses from the active domain, so a slice
// that keeps it degrades to Full.
func TestDomainDependentForcesFull(t *testing.T) {
	d, err := sysdsl.ParseConstraint("ref_dom", "r1(X,Y) -> exists W: r2(X,W)")
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewPeer("P").Declare("r1", 2).Declare("r2", 2).
		SetTrust("Q", core.TrustLess).
		AddDEC("Q", d)
	q := core.NewPeer("Q").Declare("s1", 2)
	s := core.NewSystem().MustAddPeer(p).MustAddPeer(q)
	sl := mustCompute(t, s, "P", "r1(X,Y)", false)
	if !sl.Full {
		t.Fatal("domain-dependent constraint must force a Full slice")
	}
	if sl.RelevantRels() != nil {
		t.Fatal("Full slice must report no relation restriction")
	}
	if !sl.Has("s1") {
		t.Fatal("Full slice must cover every relation")
	}
}

// TestSignatureAndFingerprint: the signature identifies the projection;
// the fingerprint tracks relevant data only.
func TestSignatureAndFingerprint(t *testing.T) {
	build := func() *core.System { return workload.WideUniverse(2, 2, 2, 0, 1) }
	s1, s2 := build(), build()
	sl1 := mustCompute(t, s1, "P0", "q0(X,Y)", false)
	sl2 := mustCompute(t, s2, "P0", "q0(X,Y)", false)
	if sl1.Signature != sl2.Signature {
		t.Fatalf("signatures differ for identical systems:\n%s\n%s", sl1.Signature, sl2.Signature)
	}
	fp1, err := DataFingerprint(s1, sl1)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := DataFingerprint(s2, sl2)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatal("fingerprints differ for identical relevant data")
	}
	// Irrelevant update: fingerprint unchanged.
	b0, _ := s2.Peer("B0")
	b0.Fact("b0_r0", "zz", "zz")
	fp3, err := DataFingerprint(s2, sl2)
	if err != nil {
		t.Fatal(err)
	}
	if fp3 != fp1 {
		t.Fatal("irrelevant update changed the fingerprint")
	}
	// Relevant update: fingerprint moves.
	pc, _ := s2.Peer("PC")
	pc.Fact("c0", "zz", "zz")
	fp4, err := DataFingerprint(s2, sl2)
	if err != nil {
		t.Fatal(err)
	}
	if fp4 == fp1 {
		t.Fatal("relevant update did not change the fingerprint")
	}
}

func TestComputeErrors(t *testing.T) {
	s := core.Example1System()
	if _, err := Compute(s, "ZZ", nil, false); err == nil {
		t.Error("unknown peer should fail")
	}
	if _, err := Compute(s, "P1", []string{"nosuchrel"}, false); err == nil {
		t.Error("unknown query relation should fail")
	}
}

func TestAnswerCache(t *testing.T) {
	c := NewAnswerCache(2)
	key := "k1"
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache hit")
	}
	ans := []relation.Tuple{{"a", "b"}}
	c.Put(key, ans)
	got, ok := c.Get(key)
	if !ok || len(got) != 1 || got[0].Key() != ans[0].Key() {
		t.Fatalf("cache returned %v", got)
	}
	// The returned answers are a deep copy: neither replacing a tuple
	// nor mutating one in place may poison the cache.
	got[0][0] = "poisoned"
	got[0] = relation.Tuple{"x", "y"}
	again, _ := c.Get(key)
	if again[0].Key() != ans[0].Key() {
		t.Fatal("cache entry was mutated through the returned slice")
	}
	// Overflow clears wholesale.
	c.Put("k2", nil)
	c.Put("k3", nil)
	if _, ok := c.Get("k1"); ok {
		t.Fatal("overflowed cache should have been cleared")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats = %d/%d, want 2 hits / 2 misses", hits, misses)
	}
}
