package slice

import (
	"strings"
	"sync"

	"repro/internal/relation"
)

// AnswerCache memoizes query answers under content-addressed keys
// (AnswerKey): a key embeds the slice signature and a data fingerprint
// of the relevant relations, so entries never need invalidation — an
// update to a relevant relation changes the fingerprint (a miss, fresh
// computation), while an update to an irrelevant relation leaves the
// key unchanged (a hit, no re-grounding). The cache is safe for
// concurrent use.
type AnswerCache struct {
	mu      sync.Mutex
	max     int
	entries map[string][]relation.Tuple
	hits    int64
	misses  int64
}

// DefaultAnswerCacheSize bounds an AnswerCache built with max <= 0.
const DefaultAnswerCacheSize = 1024

// NewAnswerCache creates a cache holding up to max entries (<= 0 means
// DefaultAnswerCacheSize). When the bound is exceeded the cache is
// cleared wholesale: keys are content hashes with no useful recency
// structure, and a full rebuild is exactly one answering pass.
func NewAnswerCache(max int) *AnswerCache {
	if max <= 0 {
		max = DefaultAnswerCacheSize
	}
	return &AnswerCache{max: max, entries: map[string][]relation.Tuple{}}
}

// AnswerKey builds the canonical cache key for a query posed to a peer
// under a slice: the query rendering, the answer variables, the slice
// signature and the data fingerprint of the relevant relations.
func AnswerKey(query string, vars []string, sl *Slice, fingerprint string) string {
	return strings.Join([]string{query, strings.Join(vars, ","), sl.Signature, fingerprint}, "\x00")
}

// Get returns a deep copy of the cached answers for the key: a caller
// mutating a returned tuple in place cannot poison the cache entry.
func (c *AnswerCache) Get(key string) ([]relation.Tuple, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ans, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	return cloneTuples(ans), true
}

// Put stores a deep copy of the answers under the key; the caller
// keeps ownership of ans.
func (c *AnswerCache) Put(key string, ans []relation.Tuple) {
	cp := cloneTuples(ans)
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.max {
		c.entries = map[string][]relation.Tuple{}
	}
	c.entries[key] = cp
}

func cloneTuples(ans []relation.Tuple) []relation.Tuple {
	out := make([]relation.Tuple, len(ans))
	for i, t := range ans {
		out[i] = t.Clone()
	}
	return out
}

// Stats returns the hit/miss counters.
func (c *AnswerCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
