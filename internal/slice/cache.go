package slice

import (
	"container/list"
	"strings"
	"sync"

	"repro/internal/relation"
)

// AnswerCache memoizes query answers under content-addressed keys
// (AnswerKey): a key embeds the slice signature and a data fingerprint
// of the relevant relations, so entries never need invalidation — an
// update to a relevant relation changes the fingerprint (a miss, fresh
// computation), while an update to an irrelevant relation leaves the
// key unchanged (a hit, no re-grounding). Eviction is per-entry LRU:
// when the cache is full, storing a new entry drops only the least
// recently used one, so the hot keys of a steady query mix survive
// overflow instead of being wiped wholesale. The cache is safe for
// concurrent use.
type AnswerCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	hits    int64
	misses  int64
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key string
	ans []relation.Tuple
}

// DefaultAnswerCacheSize bounds an AnswerCache built with max <= 0.
const DefaultAnswerCacheSize = 1024

// NewAnswerCache creates a cache holding up to max entries (<= 0 means
// DefaultAnswerCacheSize).
func NewAnswerCache(max int) *AnswerCache {
	if max <= 0 {
		max = DefaultAnswerCacheSize
	}
	return &AnswerCache{max: max, entries: map[string]*list.Element{}, order: list.New()}
}

// AnswerKey builds the canonical cache key for a query posed to a peer
// under a slice: the query rendering, the answer variables, the slice
// signature and the data fingerprint of the relevant relations.
func AnswerKey(query string, vars []string, sl *Slice, fingerprint string) string {
	return strings.Join([]string{query, strings.Join(vars, ","), sl.Signature, fingerprint}, "\x00")
}

// Get returns a deep copy of the cached answers for the key and marks
// the entry most recently used: a caller mutating a returned tuple in
// place cannot poison the cache entry.
func (c *AnswerCache) Get(key string) ([]relation.Tuple, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return cloneTuples(el.Value.(*cacheEntry).ans), true
}

// Put stores a deep copy of the answers under the key, evicting the
// least recently used entry if the cache is full; the caller keeps
// ownership of ans.
func (c *AnswerCache) Put(key string, ans []relation.Tuple) {
	cp := cloneTuples(ans)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).ans = cp
		c.order.MoveToFront(el)
		return
	}
	for len(c.entries) >= c.max {
		last := c.order.Back()
		if last == nil {
			break
		}
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, ans: cp})
}

// Promote re-keys a hot entry in place: the incremental maintenance
// path (peernet) patches a cached answer after a relevant-relation
// write, moving it from the pre-write fingerprint's key to the
// post-write one without growing the cache or losing the entry's LRU
// position. When oldKey is absent (evicted, or the first write of a
// series), it degrades to a plain Put. A pre-existing entry under
// newKey is replaced.
func (c *AnswerCache) Promote(oldKey, newKey string, ans []relation.Tuple) {
	cp := cloneTuples(ans)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[oldKey]
	if !ok {
		if other, dup := c.entries[newKey]; dup {
			other.Value.(*cacheEntry).ans = cp
			c.order.MoveToFront(other)
			return
		}
		for len(c.entries) >= c.max {
			last := c.order.Back()
			if last == nil {
				break
			}
			c.order.Remove(last)
			delete(c.entries, last.Value.(*cacheEntry).key)
		}
		c.entries[newKey] = c.order.PushFront(&cacheEntry{key: newKey, ans: cp})
		return
	}
	if other, dup := c.entries[newKey]; dup && other != el {
		c.order.Remove(other)
		delete(c.entries, newKey)
	}
	delete(c.entries, oldKey)
	ent := el.Value.(*cacheEntry)
	ent.key = newKey
	ent.ans = cp
	c.entries[newKey] = el
	c.order.MoveToFront(el)
}

// Len returns the number of cached entries.
func (c *AnswerCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func cloneTuples(ans []relation.Tuple) []relation.Tuple {
	out := make([]relation.Tuple, len(ans))
	for i, t := range ans {
		out[i] = t.Clone()
	}
	return out
}

// Stats returns the hit/miss counters.
func (c *AnswerCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
