package sysdsl

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/relation"
)

// example1DSL is the paper's Example 1 in the DSL.
const example1DSL = `
% Example 1 of Bertossi & Bravo 2004
peer P1 {
  relation r1/2
  fact r1(a, b).
  fact r1(s, t).
  trust less P2
  trust same P3
  dec P2: r2(X,Y) -> r1(X,Y).
  dec P3: r1(X,Y), r3(X,Z) -> Y = Z.
}
peer P2 {
  relation r2/2
  fact r2(c, d).
  fact r2(a, e).
}
peer P3 {
  relation r3/2
  fact r3(a, f).
  fact r3(s, u).
}
`

func TestParseExample1(t *testing.T) {
	s, err := Parse(example1DSL)
	if err != nil {
		t.Fatal(err)
	}
	// Must behave exactly like the programmatic fixture.
	want := core.Example1System()
	if !s.Global().Equal(want.Global()) {
		t.Fatalf("instances differ: %s vs %s", s.Global(), want.Global())
	}
	sols, err := core.SolutionsFor(s, "P1", core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("solutions = %d", len(sols))
	}
	ans, err := core.PeerConsistentAnswers(s, "P1", foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want2 := []relation.Tuple{{"a", "b"}, {"a", "e"}, {"c", "d"}}
	if !reflect.DeepEqual(ans, want2) {
		t.Fatalf("PCAs = %v", ans)
	}
}

func TestRoundTrip(t *testing.T) {
	s := MustParse(example1DSL)
	text := Format(s)
	s2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if !s.Global().Equal(s2.Global()) {
		t.Fatal("facts lost in round trip")
	}
	if Format(s2) != text {
		t.Fatalf("format not stable:\n%s\nvs\n%s", text, Format(s2))
	}
}

func TestParseReferentialDEC(t *testing.T) {
	src := `
peer P {
  relation r1/2
  relation r2/2
  fact r1(a, b).
  trust less Q
  dec Q: r1(X,Y), s1(Z,Y) -> exists W: r2(X,W), s2(Z,W).
}
peer Q {
  relation s1/2
  relation s2/2
  fact s1(c, b).
  fact s2(c, e).
  fact s2(c, f).
}
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := s.Peer("P")
	decs := p.DECs["Q"]
	if len(decs) != 1 {
		t.Fatalf("decs = %v", decs)
	}
	d := decs[0]
	if len(d.ExVars) != 1 || d.ExVars[0] != "W" || len(d.Head) != 2 {
		t.Fatalf("dependency = %s", d)
	}
	sols, err := core.SolutionsFor(s, "P", core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 3 {
		t.Fatalf("Section 3.1 scenario via DSL: %d solutions", len(sols))
	}
}

func TestParseDenialAndIC(t *testing.T) {
	src := `
peer P {
  relation r/2
  fact r(a, b).
  ic r(X,Y), r(X,Z) -> Y = Z.
  trust less Q
  dec Q: r(X,X2), s(X,X2) -> false.
}
peer Q {
  relation s/2
}
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := s.Peer("P")
	if len(p.ICs) != 1 || !p.ICs[0].IsEGD() {
		t.Fatalf("ICs = %v", p.ICs)
	}
	if len(p.DECs["Q"]) != 1 || !p.DECs["Q"][0].IsDenial() {
		t.Fatalf("DECs = %v", p.DECs["Q"])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"peer P { relation r/1 fact r(X). }",              // non-ground fact
		"peer P { relation r/1 fact q(a). }",              // undeclared relation
		"peer P { trust friend Q }",                       // bad trust level
		"peer P { relation r/x }",                         // bad arity
		"peer P { dec Q r(X) -> false. }",                 // missing colon
		"peer P { relation r/1 } peer P { }",              // duplicate peer
		"peer A { relation r/1 } peer B { relation r/1 }", // schema overlap
		"nonsense",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseConstraintStandalone(t *testing.T) {
	d, err := ParseConstraint("test", "r1(X,Y), r3(X,Z) -> Y = Z")
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsEGD() {
		t.Fatalf("dependency = %s", d)
	}
	if got := FormatConstraint(d); got != "r1(X,Y), r3(X,Z) -> Y = Z" {
		t.Fatalf("FormatConstraint = %q", got)
	}
	// Conditions in bodies.
	d2, err := ParseConstraint("cond", "p(X,Y), X != Y -> q(X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Cond) != 1 || len(d2.Body) != 1 {
		t.Fatalf("dependency = %s", d2)
	}
	if !strings.Contains(FormatConstraint(d2), "X != Y") {
		t.Fatalf("FormatConstraint = %q", FormatConstraint(d2))
	}
}

func TestFormatConstraintShapes(t *testing.T) {
	cases := []string{
		"r(X) -> false",
		"r1(X,Y), s1(Z,Y) -> exists W: r2(X,W), s2(Z,W)",
		"r2(X,Y) -> r1(X,Y)",
	}
	for _, c := range cases {
		d, err := ParseConstraint("t", c)
		if err != nil {
			t.Fatalf("parse %q: %v", c, err)
		}
		if got := FormatConstraint(d); got != c {
			t.Errorf("round trip %q -> %q", c, got)
		}
	}
}
