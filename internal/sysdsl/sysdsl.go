// Package sysdsl reads and writes P2P data exchange systems in a small
// text format, used by the CLI tools, the examples and the network
// substrate (peers export their specification over the wire in this
// format). A system is a sequence of peer blocks:
//
//	peer P1 {
//	  relation r1/2
//	  fact r1(a, b).
//	  trust less P2
//	  trust same P3
//	  dec P2: r2(X,Y) -> r1(X,Y).
//	  dec P3: r1(X,Y), r3(X,Z) -> Y = Z.
//	  dec Q: r1(X,Y), s1(Z,Y) -> exists W: r2(X,W), s2(Z,W).
//	  ic r1(X,Y), r1(X,Z) -> Y = Z.
//	}
//
// Constraint syntax: a comma-separated body of atoms and comparisons,
// '->', then either 'false' (denial), a conjunction of equalities
// (EGD), or an optionally 'exists VARS:'-prefixed conjunction of atoms
// (TGD). Identifiers starting upper-case (or '_') are variables; '%'
// starts a comment.
package sysdsl

import (
	"fmt"
	"strings"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/term"
)

// Parse reads a whole system and validates it.
func Parse(input string) (*core.System, error) {
	s, err := ParsePartial(input)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParsePartial reads a system without validating cross-peer references;
// used by the network substrate, which assembles a system from
// independently exported peer fragments and validates at the end.
func ParsePartial(input string) (*core.System, error) {
	p := &parser{toks: lex(input)}
	s := core.NewSystem()
	for !p.atEOF() {
		if err := p.expect("peer"); err != nil {
			return nil, err
		}
		peer, err := p.peerBlock()
		if err != nil {
			return nil, err
		}
		if err := s.AddPeer(peer); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustParse panics on error; for fixed specs in tests and examples.
func MustParse(input string) *core.System {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseConstraint parses a single dependency (without trailing '.').
func ParseConstraint(name, input string) (*constraint.Dependency, error) {
	p := &parser{toks: lex(input + " .")}
	d, err := p.dependency(name)
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input after constraint")
	}
	return d, nil
}

// --- lexer ---------------------------------------------------------------

type token struct {
	text string
	line int
}

func lex(s string) []token {
	var toks []token
	line := 1
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '%':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case isIdentStart(c) || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(s) && isIdentChar(s[j]) {
				j++
			}
			toks = append(toks, token{s[i:j], line})
			i = j
		case c == '-' && i+1 < len(s) && s[i+1] == '>':
			toks = append(toks, token{"->", line})
			i += 2
		case c == '!' && i+1 < len(s) && s[i+1] == '=':
			toks = append(toks, token{"!=", line})
			i += 2
		case c == '<' && i+1 < len(s) && s[i+1] == '=':
			toks = append(toks, token{"<=", line})
			i += 2
		case c == '>' && i+1 < len(s) && s[i+1] == '=':
			toks = append(toks, token{">=", line})
			i += 2
		case strings.ContainsRune("{}(),./:=<>", rune(c)):
			toks = append(toks, token{string(c), line})
			i++
		default:
			toks = append(toks, token{"\x00" + string(c), line})
			i++
		}
	}
	return toks
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// --- parser --------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

func (p *parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.atEOF() {
		return token{"", -1}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) errf(format string, args ...any) error {
	line := -1
	if p.pos < len(p.toks) {
		line = p.toks[p.pos].line
	} else if len(p.toks) > 0 {
		line = p.toks[len(p.toks)-1].line
	}
	return fmt.Errorf("sysdsl: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return p.errf("expected %q, got %q", text, t.text)
	}
	return nil
}

func (p *parser) peerBlock() (*core.Peer, error) {
	name := p.next()
	if !isIdent(name.text) {
		return nil, p.errf("expected peer name, got %q", name.text)
	}
	peer := core.NewPeer(core.PeerID(name.text))
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	decCount := 0
	for {
		t := p.next()
		switch t.text {
		case "}":
			return peer, nil
		case "relation":
			rel := p.next()
			if !isIdent(rel.text) {
				return nil, p.errf("bad relation name %q", rel.text)
			}
			if err := p.expect("/"); err != nil {
				return nil, err
			}
			ar := p.next()
			n, ok := atoiTok(ar.text)
			if !ok || n < 0 {
				return nil, p.errf("bad arity %q", ar.text)
			}
			peer.Declare(rel.text, n)
		case "fact":
			a, err := p.atom()
			if err != nil {
				return nil, err
			}
			if !a.IsGround() {
				return nil, p.errf("fact %s must be ground", a)
			}
			if err := p.expect("."); err != nil {
				return nil, err
			}
			vals := make([]string, len(a.Args))
			for i, arg := range a.Args {
				vals[i] = arg.Name
			}
			if !peer.Schema.Has(a.Pred) {
				return nil, p.errf("fact for undeclared relation %s", a.Pred)
			}
			peer.Fact(a.Pred, vals...)
		case "trust":
			lvl := p.next()
			var l core.TrustLevel
			switch lvl.text {
			case "less":
				l = core.TrustLess
			case "same":
				l = core.TrustSame
			default:
				return nil, p.errf("trust level must be 'less' or 'same', got %q", lvl.text)
			}
			other := p.next()
			if !isIdent(other.text) {
				return nil, p.errf("bad peer name %q", other.text)
			}
			peer.SetTrust(core.PeerID(other.text), l)
		case "dec":
			other := p.next()
			if !isIdent(other.text) {
				return nil, p.errf("bad peer name %q in dec", other.text)
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			decCount++
			d, err := p.dependency(fmt.Sprintf("sigma(%s,%s)#%d", peer.ID, other.text, decCount))
			if err != nil {
				return nil, err
			}
			peer.AddDEC(core.PeerID(other.text), d)
		case "ic":
			decCount++
			d, err := p.dependency(fmt.Sprintf("ic(%s)#%d", peer.ID, decCount))
			if err != nil {
				return nil, err
			}
			peer.AddIC(d)
		default:
			return nil, p.errf("unexpected %q in peer block", t.text)
		}
	}
}

// dependency parses "body -> head ." where head is 'false', equalities,
// or 'exists VARS:' atoms.
func (p *parser) dependency(name string) (*constraint.Dependency, error) {
	d := &constraint.Dependency{Name: name}
	// Body.
	for {
		if cmp, ok, err := p.tryComparison(); err != nil {
			return nil, err
		} else if ok {
			d.Cond = append(d.Cond, cmp)
		} else {
			a, err := p.atom()
			if err != nil {
				return nil, err
			}
			d.Body = append(d.Body, a)
		}
		t := p.next()
		if t.text == "," {
			continue
		}
		if t.text == "->" {
			break
		}
		return nil, p.errf("expected ',' or '->', got %q", t.text)
	}
	// Head.
	if p.peek().text == "false" {
		p.next()
		if err := p.expect("."); err != nil {
			return nil, err
		}
		return d, d.Validate()
	}
	if p.peek().text == "exists" {
		p.next()
		for {
			v := p.next()
			if !isVar(v.text) {
				return nil, p.errf("existential name %q must be a variable", v.text)
			}
			d.ExVars = append(d.ExVars, v.text)
			if p.peek().text != "," {
				break
			}
			p.next()
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
	}
	for {
		if cmp, ok, err := p.tryComparison(); err != nil {
			return nil, err
		} else if ok {
			d.HeadEq = append(d.HeadEq, cmp)
		} else {
			a, err := p.atom()
			if err != nil {
				return nil, err
			}
			d.Head = append(d.Head, a)
		}
		t := p.next()
		if t.text == "," {
			continue
		}
		if t.text == "." {
			break
		}
		return nil, p.errf("expected ',' or '.', got %q", t.text)
	}
	return d, d.Validate()
}

// tryComparison parses "term op term" when the lookahead matches.
func (p *parser) tryComparison() (constraint.Comparison, bool, error) {
	t := p.peek()
	if !isIdent(t.text) && !isNumber(t.text) {
		return constraint.Comparison{}, false, nil
	}
	if p.pos+1 < len(p.toks) {
		switch p.toks[p.pos+1].text {
		case "=", "!=", "<", "<=", ">", ">=":
			l := p.next()
			op := p.next().text
			r := p.next()
			if !isIdent(r.text) && !isNumber(r.text) {
				return constraint.Comparison{}, false, p.errf("bad comparison operand %q", r.text)
			}
			return constraint.Comparison{Op: op, L: mkTerm(l.text), R: mkTerm(r.text)}, true, nil
		}
	}
	return constraint.Comparison{}, false, nil
}

func (p *parser) atom() (term.Atom, error) {
	t := p.next()
	if !isIdent(t.text) || isVar(t.text) {
		return term.Atom{}, p.errf("expected relation name, got %q", t.text)
	}
	a := term.Atom{Pred: t.text}
	if err := p.expect("("); err != nil {
		return a, err
	}
	if p.peek().text != ")" {
		for {
			tt := p.next()
			if !isIdent(tt.text) && !isNumber(tt.text) {
				return a, p.errf("bad term %q", tt.text)
			}
			a.Args = append(a.Args, mkTerm(tt.text))
			if p.peek().text != "," {
				break
			}
			p.next()
		}
	}
	if err := p.expect(")"); err != nil {
		return a, err
	}
	return a, nil
}

func isIdent(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return true
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func isVar(s string) bool {
	return s != "" && (s[0] == '_' || (s[0] >= 'A' && s[0] <= 'Z'))
}

func mkTerm(s string) term.Term {
	if isVar(s) {
		return term.V(s)
	}
	return term.C(s)
}

func atoiTok(s string) (int, bool) {
	if !isNumber(s) {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		n = n*10 + int(s[i]-'0')
	}
	return n, true
}

// --- serializer ----------------------------------------------------------

// Format renders a system back into the DSL (round-trippable).
func Format(s *core.System) string { return format(s, true) }

// FormatSpec renders a system's specification only — schemas, trust,
// DECs and ICs, no fact lines. The network substrate ships this form
// when a peer needs a neighbour's schema and constraints to plan a
// query-relevance slice but not (yet) its data.
func FormatSpec(s *core.System) string { return format(s, false) }

func format(s *core.System, withFacts bool) string {
	var b strings.Builder
	for _, id := range s.Peers() {
		p, _ := s.Peer(id)
		fmt.Fprintf(&b, "peer %s {\n", id)
		for _, rel := range p.Schema.Relations() {
			d, _ := p.Schema.Decl(rel)
			fmt.Fprintf(&b, "  relation %s/%d\n", rel, d.Arity)
		}
		if withFacts {
			for _, rel := range p.Schema.Relations() {
				for _, t := range p.Inst.Tuples(rel) {
					fmt.Fprintf(&b, "  fact %s%s.\n", rel, t)
				}
			}
		}
		for _, lvl := range []core.TrustLevel{core.TrustLess, core.TrustSame} {
			for _, q := range s.TrustedPeers(id, lvl) {
				fmt.Fprintf(&b, "  trust %s %s\n", lvl, q)
			}
		}
		for _, q := range sortedNeighbours(p) {
			for _, d := range p.DECs[core.PeerID(q)] {
				fmt.Fprintf(&b, "  dec %s: %s.\n", q, FormatConstraint(d))
			}
		}
		for _, ic := range p.ICs {
			fmt.Fprintf(&b, "  ic %s.\n", FormatConstraint(ic))
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// FormatConstraint renders a dependency in the DSL constraint syntax.
func FormatConstraint(d *constraint.Dependency) string {
	var parts []string
	for _, a := range d.Body {
		parts = append(parts, a.String())
	}
	for _, c := range d.Cond {
		parts = append(parts, c.String())
	}
	out := strings.Join(parts, ", ") + " -> "
	if d.IsDenial() {
		return out + "false"
	}
	var head []string
	for _, a := range d.Head {
		head = append(head, a.String())
	}
	for _, c := range d.HeadEq {
		head = append(head, c.String())
	}
	if len(d.ExVars) > 0 {
		out += "exists " + strings.Join(d.ExVars, ",") + ": "
	}
	return out + strings.Join(head, ", ")
}

func sortedNeighbours(p *core.Peer) []string {
	var out []string
	for q := range p.DECs {
		out = append(out, string(q))
	}
	// insertion sort for determinism
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RelationTuples is a helper for wire transfer: relation name to
// tuples, in deterministic order.
func RelationTuples(in *relation.Instance) map[string][]relation.Tuple {
	out := map[string][]relation.Tuple{}
	for _, rel := range in.Relations() {
		out[rel] = in.Tuples(rel)
	}
	return out
}
