package lp

import (
	"strings"
	"testing"

	"repro/internal/term"
)

func TestRuleString(t *testing.T) {
	r := Rule{
		Head: []Literal{NegL(term.NewAtom("rp", term.V("X"), term.V("Y"))), Pos(term.NewAtom("rq", term.V("X"), term.V("W")))},
		PosB: []Literal{Pos(term.NewAtom("r1", term.V("X"), term.V("Y")))},
		NegB: []Literal{Pos(term.NewAtom("aux", term.V("X")))},
		Cmps: []Cmp{{Op: "!=", L: term.V("X"), R: term.V("Y")}},
	}
	got := r.String()
	want := "-rp(X,Y) v rq(X,W) :- r1(X,Y), not aux(X), X != Y."
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestFactAndConstraint(t *testing.T) {
	f := Fact(Pos(term.NewAtom("r1", term.C("a"), term.C("b"))))
	if !f.IsFact() || f.String() != "r1(a,b)." {
		t.Fatalf("fact = %q", f)
	}
	c := Rule{PosB: []Literal{Pos(term.NewAtom("p", term.V("X"))), NegL(term.NewAtom("p", term.V("X")))}}
	if !c.IsConstraint() {
		t.Fatal("IsConstraint")
	}
	if got := c.String(); got != ":- p(X), -p(X)." {
		t.Fatalf("constraint = %q", got)
	}
}

func TestSafety(t *testing.T) {
	ok := Rule{
		Head: []Literal{Pos(term.NewAtom("q", term.V("X")))},
		PosB: []Literal{Pos(term.NewAtom("p", term.V("X")))},
	}
	if err := ok.Safe(); err != nil {
		t.Fatalf("safe rule rejected: %v", err)
	}
	bad := Rule{
		Head: []Literal{Pos(term.NewAtom("q", term.V("Y")))},
		PosB: []Literal{Pos(term.NewAtom("p", term.V("X")))},
	}
	if err := bad.Safe(); err == nil {
		t.Fatal("unsafe head variable accepted")
	}
	badNeg := Rule{
		Head: []Literal{Pos(term.NewAtom("q", term.V("X")))},
		PosB: []Literal{Pos(term.NewAtom("p", term.V("X")))},
		NegB: []Literal{Pos(term.NewAtom("r", term.V("Z")))},
	}
	if err := badNeg.Safe(); err == nil {
		t.Fatal("unsafe negated variable accepted")
	}
}

func TestCmpEval(t *testing.T) {
	s := term.Subst{"X": term.C("2"), "Y": term.C("10")}
	lt := Cmp{Op: "<", L: term.V("X"), R: term.V("Y")}
	got, err := lt.Eval(s)
	if err != nil || !got {
		t.Fatalf("numeric 2 < 10: %v %v", got, err)
	}
	sx := term.Subst{"X": term.C("b"), "Y": term.C("a")}
	got, err = Cmp{Op: ">", L: term.V("X"), R: term.V("Y")}.Eval(sx)
	if err != nil || !got {
		t.Fatalf("lexicographic b > a: %v %v", got, err)
	}
	if _, err := lt.Eval(term.NewSubst()); err == nil {
		t.Fatal("unbound comparison should error")
	}
}

func TestUnfoldChoiceShape(t *testing.T) {
	// Rule (9) of Section 3.1:
	// -rp1(X,Y) v rp2(X,W) :- r1(X,Y), s1(Z,Y), not aux1(X,Z), s2(Z,W),
	//                         choice((X,Z),(W)).
	r := Rule{
		Head: []Literal{
			NegL(term.NewAtom("rp1", term.V("X"), term.V("Y"))),
			Pos(term.NewAtom("rp2", term.V("X"), term.V("W"))),
		},
		PosB: []Literal{
			Pos(term.NewAtom("r1", term.V("X"), term.V("Y"))),
			Pos(term.NewAtom("s1", term.V("Z"), term.V("Y"))),
			Pos(term.NewAtom("s2", term.V("Z"), term.V("W"))),
		},
		NegB: []Literal{Pos(term.NewAtom("aux1", term.V("X"), term.V("Z")))},
		Choice: []ChoiceGoal{{
			Keys: []term.Term{term.V("X"), term.V("Z")},
			Outs: []term.Term{term.V("W")},
		}},
	}
	p := &Program{Rules: []Rule{r}}
	u, err := UnfoldChoice(p)
	if err != nil {
		t.Fatal(err)
	}
	// chosen rule + diffchoice rule + main rule.
	if len(u.Rules) != 3 {
		t.Fatalf("unfolded into %d rules:\n%s", len(u.Rules), u)
	}
	s := u.String()
	if !strings.Contains(s, "chosen_1(X,Z,W) :- r1(X,Y), s1(Z,Y), s2(Z,W), not aux1(X,Z), not diffchoice_1(X,Z,W).") {
		t.Errorf("missing chosen rule:\n%s", s)
	}
	if !strings.Contains(s, "diffchoice_1") || !strings.Contains(s, "!= W") {
		t.Errorf("missing diffchoice rule:\n%s", s)
	}
	if !strings.Contains(s, "-rp1(X,Y) v rp2(X,W) :- r1(X,Y), s1(Z,Y), s2(Z,W), chosen_1(X,Z,W), not aux1(X,Z).") {
		t.Errorf("missing main rule:\n%s", s)
	}
	if err := u.Validate(); err != nil {
		t.Fatalf("unfolded program unsafe: %v", err)
	}
}

func TestUnfoldChoiceNoChoicePassThrough(t *testing.T) {
	p := &Program{}
	p.AddFactAtom(term.NewAtom("p", term.C("a")))
	u, err := UnfoldChoice(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Rules) != 1 || u.Rules[0].String() != "p(a)." {
		t.Fatalf("pass-through failed: %s", u)
	}
}

func TestStripChoice(t *testing.T) {
	r := Rule{
		Head:   []Literal{Pos(term.NewAtom("h", term.V("X")))},
		PosB:   []Literal{Pos(term.NewAtom("b", term.V("X"), term.V("W")))},
		Choice: []ChoiceGoal{{Keys: []term.Term{term.V("X")}, Outs: []term.Term{term.V("W")}}},
	}
	p := &Program{Rules: []Rule{r}}
	s := StripChoice(p)
	if len(s.Rules[0].Choice) != 0 {
		t.Fatal("choice goal not stripped")
	}
	if len(p.Rules[0].Choice) != 1 {
		t.Fatal("StripChoice mutated input")
	}
}

func TestShiftProgramExample3(t *testing.T) {
	// Example 3: shifting rule (9) yields two rules, each with the
	// other head literal default-negated and the choice goal kept.
	r := Rule{
		Head: []Literal{
			NegL(term.NewAtom("rp1", term.V("X"), term.V("Y"))),
			Pos(term.NewAtom("rp2", term.V("X"), term.V("W"))),
		},
		PosB: []Literal{
			Pos(term.NewAtom("r1", term.V("X"), term.V("Y"))),
			Pos(term.NewAtom("s1", term.V("Z"), term.V("Y"))),
			Pos(term.NewAtom("s2", term.V("Z"), term.V("W"))),
		},
		NegB: []Literal{Pos(term.NewAtom("aux1", term.V("X"), term.V("Z")))},
		Choice: []ChoiceGoal{{
			Keys: []term.Term{term.V("X"), term.V("Z")},
			Outs: []term.Term{term.V("W")},
		}},
	}
	p := &Program{Rules: []Rule{r}}
	sh := ShiftProgram(p)
	if len(sh.Rules) != 2 {
		t.Fatalf("shift produced %d rules", len(sh.Rules))
	}
	s := sh.String()
	if !strings.Contains(s, "-rp1(X,Y) :- r1(X,Y), s1(Z,Y), s2(Z,W), not aux1(X,Z), not rp2(X,W), choice((X,Z),(W)).") {
		t.Errorf("first shifted rule wrong:\n%s", s)
	}
	if !strings.Contains(s, "rp2(X,W) :- r1(X,Y), s1(Z,Y), s2(Z,W), not aux1(X,Z), not -rp1(X,Y), choice((X,Z),(W)).") {
		t.Errorf("second shifted rule wrong:\n%s", s)
	}
}

func TestPredHCF(t *testing.T) {
	// The Section 3.1 program (choice removed) is HCF: -rp1 and rp2 do
	// not depend on each other positively.
	hcf := &Program{Rules: []Rule{
		{
			Head: []Literal{
				NegL(term.NewAtom("rp1", term.V("X"), term.V("Y"))),
				Pos(term.NewAtom("rp2", term.V("X"), term.V("W"))),
			},
			PosB: []Literal{Pos(term.NewAtom("r1", term.V("X"), term.V("Y"))), Pos(term.NewAtom("s2", term.V("X"), term.V("W")))},
		},
	}}
	if !PredHCF(hcf) {
		t.Fatal("Section 3.1 shape should be HCF")
	}
	// a v b with mutual positive recursion is not HCF.
	nonHCF := &Program{Rules: []Rule{
		{Head: []Literal{Pos(term.NewAtom("a")), Pos(term.NewAtom("b"))}},
		{Head: []Literal{Pos(term.NewAtom("a"))}, PosB: []Literal{Pos(term.NewAtom("b"))}},
		{Head: []Literal{Pos(term.NewAtom("b"))}, PosB: []Literal{Pos(term.NewAtom("a"))}},
	}}
	if PredHCF(nonHCF) {
		t.Fatal("cyclic disjunctive program reported HCF")
	}
}

func TestMerge(t *testing.T) {
	p1 := &Program{}
	p1.AddFactAtom(term.NewAtom("p", term.C("a")))
	p2 := &Program{}
	p2.AddFactAtom(term.NewAtom("q", term.C("b")))
	m := Merge(p1, p2)
	if len(m.Rules) != 2 {
		t.Fatalf("merged rules = %d", len(m.Rules))
	}
	if !m.Preds()["p"] || !m.Preds()["q"] {
		t.Fatalf("Preds = %v", m.Preds())
	}
}

func TestApplySubst(t *testing.T) {
	r := Rule{
		Head: []Literal{Pos(term.NewAtom("q", term.V("X")))},
		PosB: []Literal{Pos(term.NewAtom("p", term.V("X"), term.V("Y")))},
		Cmps: []Cmp{{Op: "!=", L: term.V("X"), R: term.V("Y")}},
	}
	s := term.Subst{"X": term.C("a"), "Y": term.C("b")}
	g := r.Apply(s)
	if g.String() != "q(a) :- p(a,b), a != b." {
		t.Fatalf("Apply = %q", g.String())
	}
}
