package lp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/term"
)

// randomSafeRule builds a random safe rule over small predicate and
// variable pools.
func randomSafeRule(rng *rand.Rand) Rule {
	vars := []term.Term{term.V("X"), term.V("Y")}
	consts := []term.Term{term.C("a"), term.C("b")}
	pickT := func() term.Term {
		if rng.Intn(2) == 0 {
			return vars[rng.Intn(len(vars))]
		}
		return consts[rng.Intn(len(consts))]
	}
	atom := func(pred string) term.Atom {
		return term.NewAtom(pred, pickT(), pickT())
	}
	r := Rule{
		// The positive body binds both variables, guaranteeing safety.
		PosB: []Literal{Pos(term.NewAtom("base", vars[0], vars[1]))},
	}
	for i := 0; i < rng.Intn(2); i++ {
		r.PosB = append(r.PosB, Pos(atom("p")))
	}
	for i := 0; i < 1+rng.Intn(2); i++ {
		r.Head = append(r.Head, Literal{Neg: rng.Intn(2) == 0, Atom: atom("h")})
	}
	for i := 0; i < rng.Intn(2); i++ {
		r.NegB = append(r.NegB, Pos(atom("q")))
	}
	if rng.Intn(2) == 0 {
		r.Choice = append(r.Choice, ChoiceGoal{
			Keys: []term.Term{vars[0]},
			Outs: []term.Term{vars[1]},
		})
	}
	return r
}

// TestUnfoldChoicePreservesSafety: unfolding random safe choice rules
// always yields safe, choice-free programs.
func TestUnfoldChoicePreservesSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		p := &Program{Rules: []Rule{randomSafeRule(rng)}}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced unsafe rule: %v", trial, err)
		}
		u, err := UnfoldChoice(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if u.HasChoice() {
			t.Fatalf("trial %d: choice goal survived unfolding:\n%s", trial, u)
		}
		if err := u.Validate(); err != nil {
			t.Fatalf("trial %d: unfolded program unsafe: %v\n%s", trial, err, u)
		}
	}
}

// TestShiftPreservesRuleCountAndBodies (testing/quick): shifting a
// k-headed rule yields k rules, each with the full original body plus
// k-1 extra negated literals.
func TestShiftPreservesRuleCountAndBodies(t *testing.T) {
	f := func(nHeads uint8, nPos uint8) bool {
		k := int(nHeads)%3 + 1
		np := int(nPos) % 3
		r := Rule{}
		for i := 0; i < k; i++ {
			r.Head = append(r.Head, Pos(term.NewAtom("h", term.C(string(rune('a'+i))))))
		}
		for i := 0; i < np; i++ {
			r.PosB = append(r.PosB, Pos(term.NewAtom("b", term.C(string(rune('a'+i))))))
		}
		sh := ShiftProgram(&Program{Rules: []Rule{r}})
		if k == 1 {
			return len(sh.Rules) == 1 && len(sh.Rules[0].NegB) == len(r.NegB)
		}
		if len(sh.Rules) != k {
			return false
		}
		for _, nr := range sh.Rules {
			if len(nr.Head) != 1 || len(nr.PosB) != np || len(nr.NegB) != k-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMergePreservesRules (testing/quick).
func TestMergePreservesRules(t *testing.T) {
	f := func(a, b uint8) bool {
		p1 := &Program{}
		for i := 0; i < int(a)%5; i++ {
			p1.AddFactAtom(term.NewAtom("p", term.C(string(rune('a'+i)))))
		}
		p2 := &Program{}
		for i := 0; i < int(b)%5; i++ {
			p2.AddFactAtom(term.NewAtom("q", term.C(string(rune('a'+i)))))
		}
		m := Merge(p1, p2)
		return len(m.Rules) == len(p1.Rules)+len(p2.Rules)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
