// Package parse reads logic programs in a DLV-like concrete syntax:
//
//	% facts
//	r1(a,b).
//	% rules; 'v' (or '|') separates head disjuncts, '-' is strong
//	% negation, 'not' is default negation
//	rp(X,Y) :- r1(X,Y), not -rp(X,Y).
//	-rp(X,Y) v rq(X,W) :- r1(X,Y), s1(Z,Y), not aux(X,Z), s2(Z,W),
//	                      choice((X,Z),(W)).
//	% denial constraint
//	:- rp(X,Y), rp(X,Z), Y != Z.
//
// Identifiers starting with an upper-case letter or '_' are variables;
// everything else (including numbers) is a constant. 'not', 'v' and
// 'choice' are reserved words.
package parse

import (
	"fmt"
	"strings"

	"repro/internal/lp"
	"repro/internal/term"
)

// Program parses a whole program.
func Program(input string) (*lp.Program, error) {
	p := &parser{toks: lex(input)}
	prog := &lp.Program{}
	for !p.atEOF() {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Add(r)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustProgram parses a program, panicking on error; for tests and
// fixed program text.
func MustProgram(input string) *lp.Program {
	prog, err := Program(input)
	if err != nil {
		panic(err)
	}
	return prog
}

// Rule parses a single rule (must end with '.').
func Rule(input string) (lp.Rule, error) {
	p := &parser{toks: lex(input)}
	r, err := p.rule()
	if err != nil {
		return lp.Rule{}, err
	}
	if !p.atEOF() {
		return lp.Rule{}, fmt.Errorf("lp/parse: trailing input after rule")
	}
	return r, nil
}

type token struct {
	text string
	line int
}

func lex(s string) []token {
	var toks []token
	line := 1
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '%': // comment to end of line
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			j := i + 1
			for j < len(s) && isIdentChar(s[j]) {
				j++
			}
			toks = append(toks, token{s[i:j], line})
			i = j
		case c == ':' && i+1 < len(s) && s[i+1] == '-':
			toks = append(toks, token{":-", line})
			i += 2
		case c == '!' && i+1 < len(s) && s[i+1] == '=':
			toks = append(toks, token{"!=", line})
			i += 2
		case c == '<' && i+1 < len(s) && s[i+1] == '=':
			toks = append(toks, token{"<=", line})
			i += 2
		case c == '>' && i+1 < len(s) && s[i+1] == '=':
			toks = append(toks, token{">=", line})
			i += 2
		case c >= '0' && c <= '9':
			j := i + 1
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			toks = append(toks, token{s[i:j], line})
			i = j
		case strings.ContainsRune("().,|-=<>", rune(c)):
			toks = append(toks, token{string(c), line})
			i++
		default:
			toks = append(toks, token{"\x00" + string(c), line})
			i++
		}
	}
	return toks
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.atEOF() {
		return token{"", -1}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) errf(format string, args ...any) error {
	line := -1
	if p.pos < len(p.toks) {
		line = p.toks[p.pos].line
	} else if len(p.toks) > 0 {
		line = p.toks[len(p.toks)-1].line
	}
	return fmt.Errorf("lp/parse: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return p.errf("expected %q, got %q", text, t.text)
	}
	return nil
}

func (p *parser) rule() (lp.Rule, error) {
	var r lp.Rule
	// Head (may be empty for constraints).
	if p.peek().text != ":-" {
		for {
			l, err := p.literal()
			if err != nil {
				return r, err
			}
			r.Head = append(r.Head, l)
			t := p.peek().text
			if t == "v" || t == "|" {
				p.next()
				continue
			}
			break
		}
	}
	switch p.peek().text {
	case ".":
		p.next()
		return r, nil
	case ":-":
		p.next()
	default:
		return r, p.errf("expected ':-' or '.', got %q", p.peek().text)
	}
	// Body.
	for {
		if err := p.bodyElem(&r); err != nil {
			return r, err
		}
		switch p.peek().text {
		case ",":
			p.next()
		case ".":
			p.next()
			return r, nil
		default:
			return r, p.errf("expected ',' or '.', got %q", p.peek().text)
		}
	}
}

func (p *parser) bodyElem(r *lp.Rule) error {
	t := p.peek()
	switch t.text {
	case "not":
		p.next()
		l, err := p.literal()
		if err != nil {
			return err
		}
		r.NegB = append(r.NegB, l)
		return nil
	case "choice":
		p.next()
		c, err := p.choiceGoal()
		if err != nil {
			return err
		}
		r.Choice = append(r.Choice, c)
		return nil
	}
	// Atom, strong negation, or comparison. Look ahead: an identifier
	// followed by '(' that is not a variable is an atom; otherwise a
	// term followed by a comparison operator.
	if t.text == "-" || (isIdentName(t.text) && !isVarName(t.text) && p.lookAheadIs(1, "(")) {
		l, err := p.literal()
		if err != nil {
			return err
		}
		r.PosB = append(r.PosB, l)
		return nil
	}
	// Nullary positive atom (identifier not followed by comparison)?
	if isIdentName(t.text) && !isVarName(t.text) && !p.lookAheadIsCmp(1) {
		p.next()
		r.PosB = append(r.PosB, lp.Pos(term.Atom{Pred: t.text}))
		return nil
	}
	// Comparison.
	lt, err := p.term()
	if err != nil {
		return err
	}
	op := p.next().text
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return p.errf("expected comparison operator, got %q", op)
	}
	rt, err := p.term()
	if err != nil {
		return err
	}
	r.Cmps = append(r.Cmps, lp.Cmp{Op: op, L: lt, R: rt})
	return nil
}

func (p *parser) lookAheadIs(k int, text string) bool {
	if p.pos+k >= len(p.toks) {
		return false
	}
	return p.toks[p.pos+k].text == text
}

func (p *parser) lookAheadIsCmp(k int) bool {
	if p.pos+k >= len(p.toks) {
		return false
	}
	switch p.toks[p.pos+k].text {
	case "=", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) literal() (lp.Literal, error) {
	neg := false
	if p.peek().text == "-" {
		p.next()
		neg = true
	}
	t := p.next()
	if !isIdentName(t.text) {
		return lp.Literal{}, p.errf("expected predicate name, got %q", t.text)
	}
	if isVarName(t.text) {
		return lp.Literal{}, p.errf("predicate name %q may not be a variable", t.text)
	}
	if t.text == "not" || t.text == "v" || t.text == "choice" {
		return lp.Literal{}, p.errf("reserved word %q used as predicate", t.text)
	}
	a := term.Atom{Pred: t.text}
	if p.peek().text == "(" {
		p.next()
		if p.peek().text != ")" {
			for {
				tt, err := p.term()
				if err != nil {
					return lp.Literal{}, err
				}
				a.Args = append(a.Args, tt)
				if p.peek().text != "," {
					break
				}
				p.next()
			}
		}
		if err := p.expect(")"); err != nil {
			return lp.Literal{}, err
		}
	}
	return lp.Literal{Neg: neg, Atom: a}, nil
}

func (p *parser) term() (term.Term, error) {
	t := p.next()
	if t.text == "-" {
		// Negative number constant.
		n := p.next()
		if !isNumber(n.text) {
			return term.Term{}, p.errf("expected number after '-', got %q", n.text)
		}
		return term.C("-" + n.text), nil
	}
	if !isIdentName(t.text) && !isNumber(t.text) {
		return term.Term{}, p.errf("expected term, got %q", t.text)
	}
	if isVarName(t.text) {
		return term.V(t.text), nil
	}
	return term.C(t.text), nil
}

func (p *parser) choiceGoal() (lp.ChoiceGoal, error) {
	var c lp.ChoiceGoal
	if err := p.expect("("); err != nil {
		return c, err
	}
	keys, err := p.termTuple()
	if err != nil {
		return c, err
	}
	c.Keys = keys
	if err := p.expect(","); err != nil {
		return c, err
	}
	outs, err := p.termTuple()
	if err != nil {
		return c, err
	}
	c.Outs = outs
	if err := p.expect(")"); err != nil {
		return c, err
	}
	return c, nil
}

// termTuple parses (t1,...,tn) or a single term.
func (p *parser) termTuple() ([]term.Term, error) {
	if p.peek().text == "(" {
		p.next()
		var out []term.Term
		for {
			t, err := p.term()
			if err != nil {
				return nil, err
			}
			out = append(out, t)
			if p.peek().text != "," {
				break
			}
			p.next()
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return out, nil
	}
	t, err := p.term()
	if err != nil {
		return nil, err
	}
	return []term.Term{t}, nil
}

func isIdentName(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return true
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func isVarName(s string) bool {
	if s == "" {
		return false
	}
	return s[0] == '_' || (s[0] >= 'A' && s[0] <= 'Z')
}
