package parse

import (
	"strings"
	"testing"
)

func TestParseFacts(t *testing.T) {
	p, err := Program("r1(a,b). s1(c,b).\n% comment\ns2(c,e). s2(c,f).")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 4 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	for _, r := range p.Rules {
		if !r.IsFact() {
			t.Fatalf("%s not a fact", r)
		}
	}
}

func TestParseRuleRoundTrip(t *testing.T) {
	cases := []string{
		"rp1(X,Y) :- r1(X,Y), not -rp1(X,Y).",
		"-rp1(X,Y) :- r1(X,Y), s1(Z,Y), not aux1(X,Z), not aux2(Z).",
		"aux1(X,Z) :- rp2(X,W), sp2(Z,W).",
		":- r1(X,Y), r1(X,Z), Y != Z.",
		"p(X) v q(X) :- r(X).",
		"p(X) :- r(X,Y), Y = a.",
		"p :- q.",
	}
	for _, c := range cases {
		r, err := Rule(c)
		if err != nil {
			t.Fatalf("parse %q: %v", c, err)
		}
		if r.String() != c {
			t.Errorf("round trip: %q -> %q", c, r.String())
		}
	}
}

func TestParsePipeDisjunction(t *testing.T) {
	r, err := Rule("p(X) | q(X) :- r(X).")
	if err != nil {
		t.Fatal(err)
	}
	if r.String() != "p(X) v q(X) :- r(X)." {
		t.Fatalf("got %q", r.String())
	}
}

func TestParseChoice(t *testing.T) {
	in := "-rp1(X,Y) v rp2(X,W) :- r1(X,Y), s1(Z,Y), not aux1(X,Z), s2(Z,W), choice((X,Z),(W))."
	r, err := Rule(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Choice) != 1 || len(r.Choice[0].Keys) != 2 || len(r.Choice[0].Outs) != 1 {
		t.Fatalf("choice = %+v", r.Choice)
	}
	// The renderer canonicalizes body order: positives, negations,
	// comparisons, choice goals.
	want := "-rp1(X,Y) v rp2(X,W) :- r1(X,Y), s1(Z,Y), s2(Z,W), not aux1(X,Z), choice((X,Z),(W))."
	if r.String() != want {
		t.Fatalf("canonical rendering %q, want %q", r.String(), want)
	}
	// Single-term tuples without parens.
	r2, err := Rule("h(X,W) :- b(X,W), choice(X,W).")
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Choice[0].Keys) != 1 || len(r2.Choice[0].Outs) != 1 {
		t.Fatalf("choice = %+v", r2.Choice)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"p(X)",                 // missing period
		"p(X) :- q(X), .",      // dangling comma
		"p(X) :- q(Y).",        // unsafe
		":- X != Y.",           // unsafe comparison
		"p(X) :- not q(X).",    // unsafe: X only in negated literal
		"P(x) :- q(x).",        // variable as predicate
		"p(X) :- q(X) r(X).",   // missing comma
		"p(X) :- q(X), X ~ Y.", // bad operator
	}
	for _, c := range bad {
		if _, err := Program(c); err == nil {
			t.Errorf("Program(%q) should fail", c)
		}
	}
}

func TestParseNumbersAndNegatives(t *testing.T) {
	r, err := Rule("p(X) :- q(X), X < 10.")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "X < 10") {
		t.Fatalf("got %q", r.String())
	}
}

func TestParseSection31Program(t *testing.T) {
	// The full program of Section 3.1 (rules 4–9), written in the
	// concrete syntax, must parse and validate.
	src := `
% default persistence (4), (5)
rp1(X,Y) :- r1(X,Y), not -rp1(X,Y).
rp2(X,Y) :- r2(X,Y), not -rp2(X,Y).
% deletion when no repair by insertion exists (6), (7), (8)
-rp1(X,Y) :- r1(X,Y), s1(Z,Y), not aux1(X,Z), not aux2(Z).
aux1(X,Z) :- r2(X,W), s2(Z,W).
aux2(Z) :- s2(Z,W).
% delete-or-insert alternative (9)
-rp1(X,Y) v rp2(X,W) :- r1(X,Y), s1(Z,Y), not aux1(X,Z), s2(Z,W), choice((X,Z),(W)).
% facts
r1(a,b). s1(c,b). s2(c,e). s2(c,f).
`
	p, err := Program(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 10 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	if !p.HasChoice() {
		t.Fatal("choice goal lost")
	}
}
