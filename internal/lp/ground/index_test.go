package ground

import (
	"testing"

	"repro/internal/lp"
	"repro/internal/term"
)

func lit(neg bool, pred string, args ...string) lp.Literal {
	ts := make([]term.Term, len(args))
	for i, a := range args {
		ts[i] = term.C(a)
	}
	return lp.Literal{Neg: neg, Atom: term.Atom{Pred: pred, Args: ts}}
}

// TestAtomSetIndexedCandidates checks the sharded per-column index:
// candidates must be exactly the atoms agreeing on the pattern's ground
// columns, in insertion order, with strong negation folded into the
// predicate.
func TestAtomSetIndexedCandidates(t *testing.T) {
	s := newAtomSet()
	atoms := []lp.Literal{
		lit(false, "p", "a", "b"),
		lit(false, "p", "a", "c"),
		lit(false, "p", "d", "b"),
		lit(true, "p", "a", "b"), // -p(a,b): separate predicate "-p"
		lit(false, "q", "a"),
	}
	for _, l := range atoms {
		if !s.add(l) {
			t.Fatalf("add(%s) reported duplicate", l)
		}
	}
	if s.add(atoms[0]) {
		t.Fatal("re-add must report duplicate")
	}
	for _, l := range atoms {
		if !s.has(l) {
			t.Fatalf("has(%s) = false", l)
		}
	}
	if s.has(lit(false, "p", "z", "z")) {
		t.Fatal("has on absent atom")
	}

	pa := s.pred("p")
	if pa == nil || len(pa.atoms) != 3 {
		t.Fatalf("pred(p) = %+v", pa)
	}
	// p(a, Y): column 0 drives, insertion order preserved.
	idx, found := pa.candidates(term.NewAtom("p", term.C("a"), term.V("Y")))
	if !found || len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("candidates p(a,Y) = %v, %v", idx, found)
	}
	// p(X, b): column 1 drives.
	idx, found = pa.candidates(term.NewAtom("p", term.V("X"), term.C("b")))
	if !found || len(idx) != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Fatalf("candidates p(X,b) = %v, %v", idx, found)
	}
	// p(X, Y): no ground column — full scan requested.
	if _, found = pa.candidates(term.NewAtom("p", term.V("X"), term.V("Y"))); found {
		t.Fatal("all-variable pattern must request a full scan")
	}
	// p(z, Y): unknown constant — provably empty.
	idx, found = pa.candidates(term.NewAtom("p", term.C("z"), term.V("Y")))
	if !found || len(idx) != 0 {
		t.Fatalf("candidates p(z,Y) = %v, %v", idx, found)
	}
	// The strongly negated atom lives under its own predicate.
	if na := s.pred("-p"); na == nil || len(na.atoms) != 1 {
		t.Fatalf("pred(-p) = %+v", na)
	}
}

// TestShardOfStable pins the shard function's range.
func TestShardOfStable(t *testing.T) {
	for _, pred := range []string{"", "p", "-p", "edge", "some_long_predicate_name"} {
		if sh := shardOf(pred); sh < 0 || sh >= atomShards {
			t.Fatalf("shardOf(%q) = %d out of range", pred, sh)
		}
	}
}
