// Package ground instantiates logic programs over their Herbrand
// universe. Rules are grounded by matching their positive bodies
// against an over-approximation of the derivable atoms (a least
// fixpoint that ignores default negation), which keeps the ground
// program close to the relevant instantiations instead of the full
// cross-product of the domain.
package ground

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/lp"
	"repro/internal/term"
)

// Program is a ground program over interned atoms. Atom 0..n-1 are
// identified by their canonical literal keys; strongly negated atoms
// are distinct atoms whose key starts with '-', and coherence
// constraints (:- a, -a) are added for every complementary pair.
type Program struct {
	// Atoms maps atom index to its canonical key.
	Atoms []string
	// Index maps canonical key to atom index.
	Index map[string]int
	// Rules are the ground rules.
	Rules []Rule
}

// Rule is a ground rule over atom indices.
type Rule struct {
	Head []int
	Pos  []int
	Neg  []int
}

// AtomID interns a key.
func (g *Program) AtomID(key string) int {
	if id, ok := g.Index[key]; ok {
		return id
	}
	id := len(g.Atoms)
	g.Atoms = append(g.Atoms, key)
	g.Index[key] = id
	return id
}

// String renders the ground program for debugging.
func (g *Program) String() string {
	var out string
	for _, r := range g.Rules {
		out += g.RuleString(r) + "\n"
	}
	return out
}

// RuleString renders one ground rule.
func (g *Program) RuleString(r Rule) string {
	s := ""
	for i, h := range r.Head {
		if i > 0 {
			s += " v "
		}
		s += g.Atoms[h]
	}
	if len(r.Pos)+len(r.Neg) > 0 {
		if len(r.Head) > 0 {
			s += " "
		}
		s += ":- "
		first := true
		for _, p := range r.Pos {
			if !first {
				s += ", "
			}
			first = false
			s += g.Atoms[p]
		}
		for _, n := range r.Neg {
			if !first {
				s += ", "
			}
			first = false
			s += "not " + g.Atoms[n]
		}
	}
	return s + "."
}

// Ground instantiates the program. Choice goals must have been
// unfolded first (lp.UnfoldChoice); Ground returns an error otherwise.
func Ground(p *lp.Program) (*Program, error) {
	if p.HasChoice() {
		return nil, fmt.Errorf("ground: program contains choice goals; run lp.UnfoldChoice first")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}

	// Possible-atom fixpoint: treat every 'not' as satisfiable and
	// collect all head atoms derivable through positive bodies.
	possible := newAtomSet()
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			err := matchPos(r, possible, func(s term.Subst) error {
				for _, h := range r.Head {
					g := h.Apply(s)
					if !g.IsGround() {
						return fmt.Errorf("ground: ungrounded head %s in rule %s", g, r)
					}
					if possible.add(g) {
						changed = true
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	}

	gp := &Program{Index: make(map[string]int)}
	seenRules := make(map[string]bool)
	var keyBuf []byte
	for _, r := range p.Rules {
		err := matchPos(r, possible, func(s term.Subst) error {
			gr := Rule{}
			for _, h := range r.Head {
				gr.Head = append(gr.Head, gp.AtomID(h.Apply(s).Key()))
			}
			for _, pl := range r.PosB {
				gr.Pos = append(gr.Pos, gp.AtomID(pl.Apply(s).Key()))
			}
			for _, nl := range r.NegB {
				g := nl.Apply(s)
				if !g.IsGround() {
					return fmt.Errorf("ground: ungrounded negative literal %s in rule %s", g, r)
				}
				// A negated atom that can never be derived is simply
				// true; drop it from the rule.
				if !possible.has(g) {
					continue
				}
				gr.Neg = append(gr.Neg, gp.AtomID(g.Key()))
			}
			// Dedup by the packed atom-id sections instead of rendering
			// the rule: the id lists determine the rendering.
			keyBuf = packRuleKey(keyBuf[:0], gr)
			if !seenRules[string(keyBuf)] {
				seenRules[string(keyBuf)] = true
				gp.Rules = append(gp.Rules, gr)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	addCoherence(gp)
	return gp, nil
}

// packRuleKey appends a canonical byte encoding of the rule's atom-id
// sections (head/pos/neg, length-prefixed) to dst, for duplicate-rule
// detection without rendering the rule.
func packRuleKey(dst []byte, r Rule) []byte {
	section := func(ids []int) {
		var w [4]byte
		binary.BigEndian.PutUint32(w[:], uint32(len(ids)))
		dst = append(dst, w[:]...)
		for _, id := range ids {
			binary.BigEndian.PutUint32(w[:], uint32(id))
			dst = append(dst, w[:]...)
		}
	}
	section(r.Head)
	section(r.Pos)
	section(r.Neg)
	return dst
}

// addCoherence adds ":- a, -a" for every complementary pair of interned
// atoms, implementing the consistency requirement of extended programs.
func addCoherence(gp *Program) {
	for key, id := range gp.Index {
		if len(key) > 0 && key[0] == '-' {
			if pid, ok := gp.Index[key[1:]]; ok {
				gp.Rules = append(gp.Rules, Rule{Pos: []int{id, pid}})
			}
		}
	}
}

// atomShards is the number of predicate-hash shards of the possible
// atom set. Sharding keeps each shard's maps independent, so a future
// parallel grounder can give each worker its own shard (or lock shards
// individually) without restructuring the index; with the current
// sequential fixpoint it simply bounds per-map size.
const atomShards = 8

// atomSet stores ground literals by predicate (with strong negation
// folded into the predicate name) for indexed matching: per predicate,
// the atoms in insertion order plus per-column value indexes into that
// order, sharded by predicate hash.
type atomSet struct {
	shards [atomShards]atomShard
	// keyer interns literal keys, so membership tests hash a uint32
	// instead of building and hashing the rendered atom string. It is
	// shared across shards; a parallel grounder would give each shard
	// its own keyer (symtab tables are concurrent, Keyers are not).
	keyer *term.Keyer
}

type atomShard struct {
	keys   map[uint32]bool // interned literal-key ids (see atomSet.keyer)
	byPred map[string]*predAtoms
}

// predAtoms is the per-predicate extension: atoms in insertion order
// (which preserves the seed's deterministic enumeration) and, per
// column, the indices of the atoms holding each constant.
type predAtoms struct {
	atoms []term.Atom
	cols  []map[string][]int
}

func newAtomSet() *atomSet {
	s := &atomSet{keyer: term.NewKeyer(nil)}
	for i := range s.shards {
		s.shards[i] = atomShard{keys: make(map[uint32]bool), byPred: make(map[string]*predAtoms)}
	}
	return s
}

func litPred(l lp.Literal) string {
	if l.Neg {
		return "-" + l.Atom.Pred
	}
	return l.Atom.Pred
}

// litID interns the canonical key of a ground literal (strong negation
// folded into the predicate, matching Literal.Key).
func (s *atomSet) litID(p string, l lp.Literal) uint32 {
	return s.keyer.KeyID(term.Atom{Pred: p, Args: l.Atom.Args})
}

// shardOf hashes a predicate to its shard (FNV-1a).
func shardOf(pred string) int {
	h := uint32(2166136261)
	for i := 0; i < len(pred); i++ {
		h ^= uint32(pred[i])
		h *= 16777619
	}
	return int(h % atomShards)
}

func (s *atomSet) add(l lp.Literal) bool {
	p := litPred(l)
	sh := &s.shards[shardOf(p)]
	k := s.litID(p, l)
	if sh.keys[k] {
		return false
	}
	sh.keys[k] = true
	pa := sh.byPred[p]
	if pa == nil {
		pa = &predAtoms{}
		sh.byPred[p] = pa
	}
	idx := len(pa.atoms)
	pa.atoms = append(pa.atoms, l.Atom)
	for c, t := range l.Atom.Args {
		if c >= len(pa.cols) {
			grown := make([]map[string][]int, c+1)
			copy(grown, pa.cols)
			pa.cols = grown
		}
		if pa.cols[c] == nil {
			pa.cols[c] = make(map[string][]int)
		}
		pa.cols[c][t.Name] = append(pa.cols[c][t.Name], idx)
	}
	return true
}

func (s *atomSet) has(l lp.Literal) bool {
	p := litPred(l)
	return s.shards[shardOf(p)].keys[s.litID(p, l)]
}

func (s *atomSet) pred(p string) *predAtoms {
	return s.shards[shardOf(p)].byPred[p]
}

// candidates returns the indices (in insertion order) of the atoms
// that agree with the pattern's ground arguments, driven by the ground
// column with the fewest entries; nil with found=false means "no index
// applies, scan everything".
func (pa *predAtoms) candidates(pat term.Atom) (idx []int, found bool) {
	best := -1
	for c, t := range pat.Args {
		if t.IsVar {
			continue
		}
		if c >= len(pa.cols) || pa.cols[c] == nil {
			return nil, true // ground column never indexed: no atom can match
		}
		list := pa.cols[c][t.Name]
		if len(list) == 0 {
			return nil, true
		}
		if best == -1 || len(list) < len(idx) {
			best, idx = c, list
		}
	}
	return idx, best != -1
}

// matchPos enumerates all substitutions grounding the rule's positive
// body against the possible-atom set, with comparisons checked as soon
// as both sides are bound. Candidates come from the per-column indexes
// of the atom set, and backtracking uses a binding trail instead of
// cloning the substitution per candidate; the enumeration order is the
// insertion order of the possible-set fixpoint, as in the seed.
func matchPos(r lp.Rule, possible *atomSet, fn func(term.Subst) error) error {
	s := term.NewSubst()
	var trail []string
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(r.PosB) {
			for _, c := range r.Cmps {
				ok, err := c.Eval(s)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
			return fn(s)
		}
		l := r.PosB[i]
		pa := possible.pred(litPred(l))
		if pa == nil {
			return nil
		}
		pat := s.Apply(l.Atom)
		try := func(cand term.Atom) error {
			mark := len(trail)
			if term.MatchTrail(pat, cand, s, &trail) {
				if err := rec(i + 1); err != nil {
					return err
				}
			}
			trail = term.UnbindTrail(s, trail, mark)
			return nil
		}
		if idx, ok := pa.candidates(pat); ok {
			for _, ci := range idx {
				if err := try(pa.atoms[ci]); err != nil {
					return err
				}
			}
			return nil
		}
		for _, cand := range pa.atoms {
			if err := try(cand); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// Facts extracts the ground atoms of a ground program that occur as
// heads of body-less singleton rules.
func (g *Program) Facts() []string {
	var out []string
	for _, r := range g.Rules {
		if len(r.Head) == 1 && len(r.Pos) == 0 && len(r.Neg) == 0 {
			out = append(out, g.Atoms[r.Head[0]])
		}
	}
	sort.Strings(out)
	return out
}
