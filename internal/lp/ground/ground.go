// Package ground instantiates logic programs over their Herbrand
// universe. Rules are grounded by matching their positive bodies
// against an over-approximation of the derivable atoms (a least
// fixpoint that ignores default negation), which keeps the ground
// program close to the relevant instantiations instead of the full
// cross-product of the domain.
package ground

import (
	"fmt"
	"sort"

	"repro/internal/lp"
	"repro/internal/term"
)

// Program is a ground program over interned atoms. Atom 0..n-1 are
// identified by their canonical literal keys; strongly negated atoms
// are distinct atoms whose key starts with '-', and coherence
// constraints (:- a, -a) are added for every complementary pair.
type Program struct {
	// Atoms maps atom index to its canonical key.
	Atoms []string
	// Index maps canonical key to atom index.
	Index map[string]int
	// Rules are the ground rules.
	Rules []Rule
}

// Rule is a ground rule over atom indices.
type Rule struct {
	Head []int
	Pos  []int
	Neg  []int
}

// AtomID interns a key.
func (g *Program) AtomID(key string) int {
	if id, ok := g.Index[key]; ok {
		return id
	}
	id := len(g.Atoms)
	g.Atoms = append(g.Atoms, key)
	g.Index[key] = id
	return id
}

// String renders the ground program for debugging.
func (g *Program) String() string {
	var out string
	for _, r := range g.Rules {
		out += g.RuleString(r) + "\n"
	}
	return out
}

// RuleString renders one ground rule.
func (g *Program) RuleString(r Rule) string {
	s := ""
	for i, h := range r.Head {
		if i > 0 {
			s += " v "
		}
		s += g.Atoms[h]
	}
	if len(r.Pos)+len(r.Neg) > 0 {
		if len(r.Head) > 0 {
			s += " "
		}
		s += ":- "
		first := true
		for _, p := range r.Pos {
			if !first {
				s += ", "
			}
			first = false
			s += g.Atoms[p]
		}
		for _, n := range r.Neg {
			if !first {
				s += ", "
			}
			first = false
			s += "not " + g.Atoms[n]
		}
	}
	return s + "."
}

// Ground instantiates the program. Choice goals must have been
// unfolded first (lp.UnfoldChoice); Ground returns an error otherwise.
func Ground(p *lp.Program) (*Program, error) {
	if p.HasChoice() {
		return nil, fmt.Errorf("ground: program contains choice goals; run lp.UnfoldChoice first")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}

	// Possible-atom fixpoint: treat every 'not' as satisfiable and
	// collect all head atoms derivable through positive bodies.
	possible := newAtomSet()
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			err := matchPos(r, possible, func(s term.Subst) error {
				for _, h := range r.Head {
					g := h.Apply(s)
					if !g.IsGround() {
						return fmt.Errorf("ground: ungrounded head %s in rule %s", g, r)
					}
					if possible.add(g) {
						changed = true
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	}

	gp := &Program{Index: make(map[string]int)}
	seenRules := make(map[string]bool)
	for _, r := range p.Rules {
		err := matchPos(r, possible, func(s term.Subst) error {
			gr := Rule{}
			for _, h := range r.Head {
				gr.Head = append(gr.Head, gp.AtomID(h.Apply(s).Key()))
			}
			for _, pl := range r.PosB {
				gr.Pos = append(gr.Pos, gp.AtomID(pl.Apply(s).Key()))
			}
			for _, nl := range r.NegB {
				g := nl.Apply(s)
				if !g.IsGround() {
					return fmt.Errorf("ground: ungrounded negative literal %s in rule %s", g, r)
				}
				// A negated atom that can never be derived is simply
				// true; drop it from the rule.
				if !possible.has(g) {
					continue
				}
				gr.Neg = append(gr.Neg, gp.AtomID(g.Key()))
			}
			key := gp.RuleString(gr)
			if !seenRules[key] {
				seenRules[key] = true
				gp.Rules = append(gp.Rules, gr)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	addCoherence(gp)
	return gp, nil
}

// addCoherence adds ":- a, -a" for every complementary pair of interned
// atoms, implementing the consistency requirement of extended programs.
func addCoherence(gp *Program) {
	for key, id := range gp.Index {
		if len(key) > 0 && key[0] == '-' {
			if pid, ok := gp.Index[key[1:]]; ok {
				gp.Rules = append(gp.Rules, Rule{Pos: []int{id, pid}})
			}
		}
	}
}

// atomSet stores ground literals by predicate (with strong negation
// folded into the predicate name) for fast matching.
type atomSet struct {
	byPred map[string][]term.Atom
	keys   map[string]bool
}

func newAtomSet() *atomSet {
	return &atomSet{byPred: make(map[string][]term.Atom), keys: make(map[string]bool)}
}

func litPred(l lp.Literal) string {
	if l.Neg {
		return "-" + l.Atom.Pred
	}
	return l.Atom.Pred
}

func (s *atomSet) add(l lp.Literal) bool {
	k := l.Key()
	if s.keys[k] {
		return false
	}
	s.keys[k] = true
	p := litPred(l)
	s.byPred[p] = append(s.byPred[p], l.Atom)
	return true
}

func (s *atomSet) has(l lp.Literal) bool { return s.keys[l.Key()] }

// matchPos enumerates all substitutions grounding the rule's positive
// body against the possible-atom set, with comparisons checked as soon
// as both sides are bound.
func matchPos(r lp.Rule, possible *atomSet, fn func(term.Subst) error) error {
	var rec func(i int, s term.Subst) error
	rec = func(i int, s term.Subst) error {
		if i == len(r.PosB) {
			for _, c := range r.Cmps {
				ok, err := c.Eval(s)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
			return fn(s)
		}
		l := r.PosB[i]
		pat := s.Apply(l.Atom)
		for _, cand := range possible.byPred[litPred(l)] {
			s2 := s.Clone()
			if term.Match(pat, cand, s2) {
				if err := rec(i+1, s2); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return rec(0, term.NewSubst())
}

// Facts extracts the ground atoms of a ground program that occur as
// heads of body-less singleton rules.
func (g *Program) Facts() []string {
	var out []string
	for _, r := range g.Rules {
		if len(r.Head) == 1 && len(r.Pos) == 0 && len(r.Neg) == 0 {
			out = append(out, g.Atoms[r.Head[0]])
		}
	}
	sort.Strings(out)
	return out
}
