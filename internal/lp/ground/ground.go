// Package ground instantiates logic programs over their Herbrand
// universe. Rules are grounded by matching their positive bodies
// against an over-approximation of the derivable atoms (a least
// fixpoint that ignores default negation), which keeps the ground
// program close to the relevant instantiations instead of the full
// cross-product of the domain.
//
// Grounding is organized in two deterministic phases so it can fan out
// across a worker pool (GroundOpt):
//
//   - the possible-atom fixpoint runs in rounds: every round matches
//     the active rules against a frozen snapshot of the possible set,
//     each worker collecting newly derived head atoms into a private
//     pending buffer with a worker-local term.Keyer, and the buffers
//     are merged into the sharded atom set in rule order between
//     rounds — the merge is the only synchronization point;
//   - rule instantiation then matches every rule against the completed
//     (now immutable) possible set, workers emitting ground rules as
//     interned symbol ids, which are translated to dense atom indices
//     in rule order by a single merge walk.
//
// Because every merge happens in rule order and candidate enumeration
// depends only on the frozen snapshot of a round, the ground program is
// byte-identical at every parallelism level (including the sequential
// default).
package ground

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/lp"
	"repro/internal/parallel"
	"repro/internal/symtab"
	"repro/internal/term"
)

// Options configures grounding.
type Options struct {
	// Parallelism bounds the worker pool used for the fixpoint rounds
	// and the rule-instantiation fan-out. 0 or 1 run inline on the
	// calling goroutine; the output is byte-identical at every level.
	Parallelism int
	// Relevant, when non-nil, prunes the program to the rules reachable
	// from the named predicates before grounding (query-relevance
	// slicing, internal/slice): a rule survives if it is a constraint
	// (empty head — constraints decide answer-set existence and are
	// always kept) or if some head predicate is in the dependency
	// closure of Relevant; a surviving rule pulls all its predicates
	// (head, positive and negative body, strong negation folded in)
	// into the closure. Dropped rules define predicates no kept rule or
	// constraint can observe; for the stratified-by-construction
	// programs the builders emit, the pruned program has the same
	// answers on the relevant predicates.
	Relevant map[string]bool
	// PruneStats, when non-nil, receives the rule counts of the prune.
	PruneStats *PruneStats
}

// PruneStats reports how the relevance prune reshaped a program.
type PruneStats struct {
	KeptRules    int
	DroppedRules int
}

// Program is a ground program over interned atoms. Atom 0..n-1 are
// identified by their canonical literal keys; strongly negated atoms
// are distinct atoms whose key starts with '-', and coherence
// constraints (:- a, -a) are added for every complementary pair.
type Program struct {
	// Atoms maps atom index to its canonical key.
	Atoms []string
	// Index maps canonical key to atom index.
	Index map[string]int
	// Rules are the ground rules.
	Rules []Rule
}

// Rule is a ground rule over atom indices.
type Rule struct {
	Head []int
	Pos  []int
	Neg  []int
}

// AtomID interns a key.
func (g *Program) AtomID(key string) int {
	if id, ok := g.Index[key]; ok {
		return id
	}
	id := len(g.Atoms)
	g.Atoms = append(g.Atoms, key)
	g.Index[key] = id
	return id
}

// String renders the ground program for debugging.
func (g *Program) String() string {
	var out string
	for _, r := range g.Rules {
		out += g.RuleString(r) + "\n"
	}
	return out
}

// RuleString renders one ground rule.
func (g *Program) RuleString(r Rule) string {
	s := ""
	for i, h := range r.Head {
		if i > 0 {
			s += " v "
		}
		s += g.Atoms[h]
	}
	if len(r.Pos)+len(r.Neg) > 0 {
		if len(r.Head) > 0 {
			s += " "
		}
		s += ":- "
		first := true
		for _, p := range r.Pos {
			if !first {
				s += ", "
			}
			first = false
			s += g.Atoms[p]
		}
		for _, n := range r.Neg {
			if !first {
				s += ", "
			}
			first = false
			s += "not " + g.Atoms[n]
		}
	}
	return s + "."
}

// Ground instantiates the program sequentially. Choice goals must have
// been unfolded first (lp.UnfoldChoice); Ground returns an error
// otherwise.
func Ground(p *lp.Program) (*Program, error) {
	return GroundOpt(p, Options{})
}

// GroundOpt is Ground with an explicit parallelism bound. The result is
// byte-identical at every parallelism level.
func GroundOpt(p *lp.Program, opt Options) (*Program, error) {
	if p.HasChoice() {
		return nil, fmt.Errorf("ground: program contains choice goals; run lp.UnfoldChoice first")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opt.Relevant != nil {
		p = pruneProgram(p, opt.Relevant, opt.PruneStats)
	}
	workers := opt.Parallelism
	if workers < 1 {
		workers = 1
	}

	perRule, tab, err := groundRules(p, workers)
	if err != nil {
		return nil, err
	}
	return mergeRules(perRule, tab), nil
}

// pruneProgram keeps the rules in the predicate-dependency closure of
// the relevant predicates (see Options.Relevant). The fixpoint is
// deterministic: rules are scanned in program order each pass, so the
// kept subsequence — and with it the whole downstream grounding — does
// not depend on map iteration order.
func pruneProgram(p *lp.Program, relevant map[string]bool, st *PruneStats) *lp.Program {
	reach := make(map[string]bool, len(relevant))
	for pred := range relevant {
		reach[pred] = true
	}
	kept := make([]bool, len(p.Rules))
	for changed := true; changed; {
		changed = false
		for i := range p.Rules {
			if kept[i] {
				continue
			}
			r := &p.Rules[i]
			ok := len(r.Head) == 0
			for _, h := range r.Head {
				if ok {
					break
				}
				ok = reach[litPred(h)]
			}
			if !ok {
				continue
			}
			kept[i] = true
			changed = true
			for _, ls := range [][]lp.Literal{r.Head, r.PosB, r.NegB} {
				for _, l := range ls {
					if pred := litPred(l); !reach[pred] {
						reach[pred] = true
					}
				}
			}
		}
	}
	out := &lp.Program{Rules: make([]lp.Rule, 0, len(p.Rules))}
	for i, r := range p.Rules {
		if kept[i] {
			out.Rules = append(out.Rules, r)
		}
	}
	if st != nil {
		st.KeptRules = len(out.Rules)
		st.DroppedRules = len(p.Rules) - len(out.Rules)
	}
	return out
}

// ruleOut is one worker's output for one rule in one round: the ground
// rules of every substitution as interned literal-key ids (in the atom
// set's symbol table — the scheduling-independent intermediate form
// the merge walk consumes), plus the head atoms not yet in the
// possible set (with their precomputed key ids, so the merge does not
// re-render them). All emitted rules share one flat backing buffer:
// entry i covers syms[entries[i-1].end:entries[i].end], with head and
// pos section widths recorded per entry, so emission allocates
// amortized-once per rule instead of once per substitution.
type ruleOut struct {
	syms     []symtab.Sym
	entries  []symEntry
	newAtoms []pendingAtom
}

type symEntry struct {
	end      int32
	nHead    uint16
	nHeadPos uint16 // head + pos count; neg is the rest
}

type pendingAtom struct {
	lit lp.Literal
	sym symtab.Sym
}

// groundRules computes the possible-atom fixpoint and the rule
// instantiations in one pass. The fixpoint runs in rounds over a
// frozen snapshot: workers match the active rules independently (each
// with its own term.Keyer over the shared symbol table), emitting both
// newly derived head atoms and the round's full instantiation of the
// rule; the buffers are merged in rule order between rounds — the only
// synchronization point — so the set's insertion order and every
// downstream enumeration order are deterministic.
//
// Instantiation fuses with the fixpoint because a rule's last active
// enumeration already is its final one: a rule is re-activated
// whenever a predicate its body reads (positively or under negation)
// gained atoms in the previous round, so once the fixpoint closes, the
// candidate lists and negation checks of a never-again-activated rule
// are exactly those of the final set.
func groundRules(p *lp.Program, workers int) ([]ruleOut, *symtab.Table, error) {
	possible := newAtomSet()
	tab := possible.keyer.Table()
	perRule := make([]ruleOut, len(p.Rules))

	// changed holds the predicates whose extension grew in the previous
	// round (predicate-level semi-naive filtering); round 0 runs
	// everything.
	var changed map[string]bool
	var active []int
	for round := 0; ; round++ {
		active = active[:0]
		for i := range p.Rules {
			if round == 0 || ruleReadsChanged(&p.Rules[i], changed) {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			break
		}
		outs, err := parallel.MapErr(len(active), workers, func(j int) (ruleOut, error) {
			r := p.Rules[active[j]]
			ky := term.NewKeyer(tab)
			// Folded predicates (strong negation folded in, as in the
			// canonical literal key) are computed once per rule, not
			// per substitution.
			headAtoms := make([]term.Atom, len(r.Head))
			for i, h := range r.Head {
				headAtoms[i] = term.Atom{Pred: litPred(h), Args: h.Atom.Args}
			}
			negAtoms := make([]term.Atom, len(r.NegB))
			for i, nl := range r.NegB {
				negAtoms[i] = term.Atom{Pred: litPred(nl), Args: nl.Atom.Args}
			}
			var out ruleOut
			err := matchPos(r, possible, func(s term.Subst, pas []*predAtoms, picks []int) error {
				mark := len(out.syms)
				for hi, h := range r.Head {
					sym, ok := ky.KeyIDSubst(headAtoms[hi], s)
					if !ok {
						return fmt.Errorf("ground: ungrounded head %s in rule %s", h.Apply(s), r)
					}
					if !possible.hasSym(headAtoms[hi].Pred, sym) {
						out.newAtoms = append(out.newAtoms, pendingAtom{lit: h.Apply(s), sym: sym})
					}
					out.syms = append(out.syms, sym)
				}
				// Positive body literals are exactly the matched
				// candidates: their interned keys come straight off the
				// possible set, no re-rendering.
				for k := range r.PosB {
					out.syms = append(out.syms, pas[k].syms[picks[k]])
				}
				nHeadPos := len(out.syms) - mark
				for ni, nl := range r.NegB {
					sym, ok := ky.KeyIDSubst(negAtoms[ni], s)
					if !ok {
						return fmt.Errorf("ground: ungrounded negative literal %s in rule %s", nl.Apply(s), r)
					}
					// A negated atom that can never be derived is
					// simply true; drop it from the rule.
					if !possible.hasSym(negAtoms[ni].Pred, sym) {
						continue
					}
					out.syms = append(out.syms, sym)
				}
				out.entries = append(out.entries, symEntry{
					end:      int32(len(out.syms)),
					nHead:    uint16(len(r.Head)),
					nHeadPos: uint16(nHeadPos),
				})
				return nil
			})
			return out, err
		})
		if err != nil {
			return nil, nil, err
		}
		// Merge in rule order: record each active rule's (latest)
		// instantiation and grow the possible set.
		changed = make(map[string]bool)
		for j, out := range outs {
			perRule[active[j]] = out
			for _, pa := range out.newAtoms {
				if possible.addKeyed(pa.lit, pa.sym) {
					changed[litPred(pa.lit)] = true
				}
			}
		}
		if len(changed) == 0 {
			break
		}
	}
	return perRule, tab, nil
}

// ruleReadsChanged reports whether the rule's body reads — positively
// or under default negation — a predicate that gained atoms in the
// previous round. Negative reads matter because they decide which
// negated literals are kept in the instantiation.
func ruleReadsChanged(r *lp.Rule, changed map[string]bool) bool {
	for _, l := range r.PosB {
		if changed[litPred(l)] {
			return true
		}
	}
	for _, l := range r.NegB {
		if changed[litPred(l)] {
			return true
		}
	}
	return false
}

// mergeRules translates the per-rule emissions to dense atom indices
// and deduplicates, in rule order. Symbol ids are dense, so the
// sym→atom translation is a slice lookup, not a map probe.
func mergeRules(perRule []ruleOut, tab *symtab.Table) *Program {
	gp := &Program{Index: make(map[string]int)}
	seenRules := make(map[string]bool)
	atomOf := make([]int32, tab.Len())
	for i := range atomOf {
		atomOf[i] = -1
	}
	var keyBuf []byte
	for _, out := range perRule {
		start := int32(0)
		for _, e := range out.entries {
			section := out.syms[start:e.end]
			start = e.end
			ids := make([]int, len(section))
			for i, sym := range section {
				id := atomOf[sym]
				if id < 0 {
					id = int32(gp.AtomID(tab.Name(sym)))
					atomOf[sym] = id
				}
				ids[i] = int(id)
			}
			gr := Rule{}
			if e.nHead > 0 {
				gr.Head = ids[:e.nHead:e.nHead]
			}
			if e.nHeadPos > e.nHead {
				gr.Pos = ids[e.nHead:e.nHeadPos:e.nHeadPos]
			}
			if len(ids) > int(e.nHeadPos) {
				gr.Neg = ids[e.nHeadPos:]
			}
			// Dedup by the packed atom-id sections instead of rendering
			// the rule: the id lists determine the rendering.
			keyBuf = packRuleKey(keyBuf[:0], gr)
			if !seenRules[string(keyBuf)] {
				seenRules[string(keyBuf)] = true
				gp.Rules = append(gp.Rules, gr)
			}
		}
	}

	addCoherence(gp)
	return gp
}

// packRuleKey appends a canonical byte encoding of the rule's atom-id
// sections (head/pos/neg, length-prefixed) to dst, for duplicate-rule
// detection without rendering the rule.
func packRuleKey(dst []byte, r Rule) []byte {
	section := func(ids []int) {
		var w [4]byte
		binary.BigEndian.PutUint32(w[:], uint32(len(ids)))
		dst = append(dst, w[:]...)
		for _, id := range ids {
			binary.BigEndian.PutUint32(w[:], uint32(id))
			dst = append(dst, w[:]...)
		}
	}
	section(r.Head)
	section(r.Pos)
	section(r.Neg)
	return dst
}

// addCoherence adds ":- a, -a" for every complementary pair of interned
// atoms, implementing the consistency requirement of extended programs.
// Atoms are scanned in id order, so the emitted constraints are in a
// deterministic order.
func addCoherence(gp *Program) {
	for id, key := range gp.Atoms {
		if len(key) > 0 && key[0] == '-' {
			if pid, ok := gp.Index[key[1:]]; ok {
				gp.Rules = append(gp.Rules, Rule{Pos: []int{id, pid}})
			}
		}
	}
}

// atomShards is the number of predicate-hash shards of the possible
// atom set. Sharding keeps each shard's maps independent, bounding
// per-map size; shards are written only during the (single-threaded)
// fixpoint merge and read concurrently by the matching workers.
const atomShards = 8

// atomSet stores ground literals by predicate (with strong negation
// folded into the predicate name) for indexed matching: per predicate,
// the atoms in insertion order plus per-column value indexes into that
// order, sharded by predicate hash.
type atomSet struct {
	shards [atomShards]atomShard
	// keyer interns literal keys, so membership tests hash a uint32
	// instead of building and hashing the rendered atom string. It is
	// used by the single-threaded merge; concurrent workers use their
	// own Keyer over the same table (symtab tables are concurrent,
	// Keyers are not).
	keyer *term.Keyer
}

type atomShard struct {
	keys   map[uint32]bool // interned literal-key ids (see atomSet.keyer)
	byPred map[string]*predAtoms
}

// predAtoms is the per-predicate extension: atoms in insertion order
// (which preserves the deterministic merge-order enumeration), their
// interned key ids (aligned with atoms, so matched candidates hand the
// grounder their key without re-rendering), and, per column, the
// indices of the atoms holding each constant.
type predAtoms struct {
	atoms []term.Atom
	syms  []symtab.Sym
	cols  []map[string][]int
}

func newAtomSet() *atomSet {
	s := &atomSet{keyer: term.NewKeyer(nil)}
	for i := range s.shards {
		s.shards[i] = atomShard{keys: make(map[uint32]bool), byPred: make(map[string]*predAtoms)}
	}
	return s
}

func litPred(l lp.Literal) string {
	if l.Neg {
		return "-" + l.Atom.Pred
	}
	return l.Atom.Pred
}

// litID interns the canonical key of a ground literal (strong negation
// folded into the predicate, matching Literal.Key).
func (s *atomSet) litID(p string, l lp.Literal) uint32 {
	return s.keyer.KeyID(term.Atom{Pred: p, Args: l.Atom.Args})
}

// shardOf hashes a predicate to its shard (FNV-1a).
func shardOf(pred string) int {
	return int(symtab.Hash32(pred) % atomShards)
}

func (s *atomSet) add(l lp.Literal) bool {
	return s.addKeyed(l, s.litID(litPred(l), l))
}

// addKeyed is add with the literal's key id already computed (by a
// worker's lookupKeyed), so the merge does not re-render the atom.
func (s *atomSet) addKeyed(l lp.Literal, k uint32) bool {
	p := litPred(l)
	sh := &s.shards[shardOf(p)]
	if sh.keys[k] {
		return false
	}
	sh.keys[k] = true
	pa := sh.byPred[p]
	if pa == nil {
		pa = &predAtoms{}
		sh.byPred[p] = pa
	}
	idx := len(pa.atoms)
	pa.atoms = append(pa.atoms, l.Atom)
	pa.syms = append(pa.syms, k)
	for c, t := range l.Atom.Args {
		if c >= len(pa.cols) {
			grown := make([]map[string][]int, c+1)
			copy(grown, pa.cols)
			pa.cols = grown
		}
		if pa.cols[c] == nil {
			pa.cols[c] = make(map[string][]int)
		}
		pa.cols[c][t.Name] = append(pa.cols[c][t.Name], idx)
	}
	return true
}

func (s *atomSet) has(l lp.Literal) bool {
	return s.hasKeyed(l, s.keyer)
}

// hasKeyed is has with an explicit keyer, so concurrent readers can
// probe the (frozen) set without sharing the set's own keyer buffer.
func (s *atomSet) hasKeyed(l lp.Literal, ky *term.Keyer) bool {
	_, present := s.lookupKeyed(l, ky)
	return present
}

// lookupKeyed returns the literal's interned key id and whether the
// literal is in the set, probing with the caller's keyer so any number
// of workers can read the frozen set concurrently.
func (s *atomSet) lookupKeyed(l lp.Literal, ky *term.Keyer) (uint32, bool) {
	p := litPred(l)
	k := ky.KeyID(term.Atom{Pred: p, Args: l.Atom.Args})
	return k, s.shards[shardOf(p)].keys[k]
}

// hasSym probes membership of an already-interned literal key under
// its folded predicate. Read-only: safe for concurrent workers between
// merges.
func (s *atomSet) hasSym(pred string, k uint32) bool {
	return s.shards[shardOf(pred)].keys[k]
}

func (s *atomSet) pred(p string) *predAtoms {
	return s.shards[shardOf(p)].byPred[p]
}

// candidates returns the indices (in insertion order) of the atoms
// that agree with the pattern's ground arguments, driven by the ground
// column with the fewest entries; nil with found=false means "no index
// applies, scan everything".
func (pa *predAtoms) candidates(pat term.Atom) (idx []int, found bool) {
	best := -1
	for c, t := range pat.Args {
		if t.IsVar {
			continue
		}
		if c >= len(pa.cols) || pa.cols[c] == nil {
			return nil, true // ground column never indexed: no atom can match
		}
		list := pa.cols[c][t.Name]
		if len(list) == 0 {
			return nil, true
		}
		if best == -1 || len(list) < len(idx) {
			best, idx = c, list
		}
	}
	return idx, best != -1
}

// matchPos enumerates all substitutions grounding the rule's positive
// body against the possible-atom set, with comparisons checked as soon
// as both sides are bound. Candidates come from the per-column indexes
// of the atom set, and backtracking uses a binding trail instead of
// cloning the substitution per candidate; the enumeration order is the
// (deterministic) insertion order of the possible-set merge. matchPos
// only reads the set, so any number of workers may run it concurrently
// between merges.
//
// The callback receives, for each positive body literal, the
// per-predicate extension and the index of the matched candidate in
// it, so emitters can read the candidate's interned key (predAtoms.
// syms) instead of re-rendering the applied literal. Both slices are
// reused across calls; callers must not retain them.
func matchPos(r lp.Rule, possible *atomSet, fn func(s term.Subst, pas []*predAtoms, picks []int) error) error {
	pas := make([]*predAtoms, len(r.PosB))
	for i, l := range r.PosB {
		pas[i] = possible.pred(litPred(l))
		if pas[i] == nil {
			return nil
		}
	}
	picks := make([]int, len(r.PosB))
	s := term.NewSubst()
	var trail []string
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(r.PosB) {
			for _, c := range r.Cmps {
				ok, err := c.Eval(s)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
			return fn(s, pas, picks)
		}
		pa := pas[i]
		pat := s.Apply(r.PosB[i].Atom)
		try := func(ci int) error {
			mark := len(trail)
			if term.MatchTrail(pat, pa.atoms[ci], s, &trail) {
				picks[i] = ci
				if err := rec(i + 1); err != nil {
					return err
				}
			}
			trail = term.UnbindTrail(s, trail, mark)
			return nil
		}
		if idx, ok := pa.candidates(pat); ok {
			for _, ci := range idx {
				if err := try(ci); err != nil {
					return err
				}
			}
			return nil
		}
		for ci := range pa.atoms {
			if err := try(ci); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// Facts extracts the ground atoms of a ground program that occur as
// heads of body-less singleton rules.
func (g *Program) Facts() []string {
	var out []string
	for _, r := range g.Rules {
		if len(r.Head) == 1 && len(r.Pos) == 0 && len(r.Neg) == 0 {
			out = append(out, g.Atoms[r.Head[0]])
		}
	}
	sort.Strings(out)
	return out
}
