package ground

import (
	"strings"
	"testing"

	"repro/internal/lp"
	"repro/internal/term"
)

// buildChainProgram builds
//
//	a(x).  b(x).  p(X) :- a(X).  q(X) :- p(X).  junk(X) :- b(X).
//	:- q(X), bad(X).   bad(x).
//
// so the closure of {q} must keep a/p/q, keep the constraint and pull
// bad in through it, and drop b/junk.
func buildChainProgram() *lp.Program {
	p := &lp.Program{}
	x := term.V("X")
	p.AddFactAtom(term.NewAtom("a", term.C("x")))
	p.AddFactAtom(term.NewAtom("b", term.C("x")))
	p.Add(lp.Rule{Head: []lp.Literal{lp.Pos(term.NewAtom("p", x))}, PosB: []lp.Literal{lp.Pos(term.NewAtom("a", x))}})
	p.Add(lp.Rule{Head: []lp.Literal{lp.Pos(term.NewAtom("q", x))}, PosB: []lp.Literal{lp.Pos(term.NewAtom("p", x))}})
	p.Add(lp.Rule{Head: []lp.Literal{lp.Pos(term.NewAtom("junk", x))}, PosB: []lp.Literal{lp.Pos(term.NewAtom("b", x))}})
	p.Add(lp.Rule{PosB: []lp.Literal{lp.Pos(term.NewAtom("q", x)), lp.Pos(term.NewAtom("bad", x))}})
	p.AddFactAtom(term.NewAtom("bad", term.C("x")))
	return p
}

func TestPruneProgramClosure(t *testing.T) {
	p := buildChainProgram()
	var st PruneStats
	g, err := GroundOpt(p, Options{Relevant: map[string]bool{"q": true}, PruneStats: &st})
	if err != nil {
		t.Fatal(err)
	}
	out := g.String()
	for _, want := range []string{"a(x)", "p(x)", "q(x)", "bad(x)"} {
		if !strings.Contains(out, want) {
			t.Errorf("pruned grounding misses %s:\n%s", want, out)
		}
	}
	for _, drop := range []string{"junk", "b(x)"} {
		if strings.Contains(out, drop) {
			t.Errorf("pruned grounding still contains %s:\n%s", drop, out)
		}
	}
	if st.DroppedRules != 2 {
		t.Errorf("PruneStats = %+v, want 2 dropped (b fact, junk rule)", st)
	}
	if st.KeptRules != 5 {
		t.Errorf("PruneStats = %+v, want 5 kept", st)
	}
}

// TestPruneNegativeBody: a predicate referenced only under default
// negation by a kept rule must stay, including its defining rules.
func TestPruneNegativeBody(t *testing.T) {
	p := &lp.Program{}
	x := term.V("X")
	p.AddFactAtom(term.NewAtom("a", term.C("x")))
	p.Add(lp.Rule{Head: []lp.Literal{lp.Pos(term.NewAtom("blocked", x))}, PosB: []lp.Literal{lp.Pos(term.NewAtom("a", x))}})
	p.Add(lp.Rule{
		Head: []lp.Literal{lp.Pos(term.NewAtom("q", x))},
		PosB: []lp.Literal{lp.Pos(term.NewAtom("a", x))},
		NegB: []lp.Literal{lp.Pos(term.NewAtom("blocked", x))},
	})
	g, err := GroundOpt(p, Options{Relevant: map[string]bool{"q": true}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.String(), "blocked(x)") {
		t.Fatalf("negatively referenced predicate pruned away:\n%s", g)
	}
}

// TestPruneEquivalentModels: grounding a builder-shaped program pruned
// to the query predicates yields the same extension for them as the
// full grounding (facts of the relevant predicates agree).
func TestPruneIdenticalWhenAllRelevant(t *testing.T) {
	p := buildChainProgram()
	full, err := Ground(p)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := GroundOpt(p, Options{Relevant: map[string]bool{"q": true, "junk": true}})
	if err != nil {
		t.Fatal(err)
	}
	if full.String() != pruned.String() {
		t.Fatalf("pruning with every head relevant changed the program:\n--- full ---\n%s--- pruned ---\n%s", full, pruned)
	}
}
