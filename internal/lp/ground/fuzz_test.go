package ground

import (
	"strings"
	"testing"

	"repro/internal/lp"
	"repro/internal/lp/parse"
)

// fuzzSeeds is the seed corpus: program texts shaped like the repo's
// examples/ and the paper's running systems (quickstart's inclusion +
// key EGD pattern, referential's choice rules, transitive's chained
// imports, cqa's FD conflicts), plus grounder edge cases (strong
// negation pairs, underivable negation, comparisons, disjunction).
var fuzzSeeds = []string{
	// examples/quickstart + cqa: inclusion import and key-conflict shape.
	`r1(a,b). r1(s,t). r2(c,d). r2(a,e). r3(a,f). r3(s,u).
r1_p(X,Y) :- r1(X,Y), not nr1_p(X,Y).
r1_p(X,Y) :- r2(X,Y).
nr1_p(X,Y) v nr1_p(X,Z) :- r1(X,Y), r3(X,Z), Y != Z.`,
	// examples/referential: witness choice unfolded to a normal program.
	`r1(a,b). s1(c,b). s2(c,e). s2(c,f).
aux1(a,c) :- r1(a,b), s1(c,b), r2(a,W), s2(c,W).
r2_p(X,W) :- r1(X,Y), s1(Z,Y), s2(Z,W), not aux1(X,Z).`,
	// examples/transitive: chained derivation through three layers.
	`u(c,b). s1_p(X,Y) :- u(X,Y). r1(a,b).
r2_p(X,W) :- r1(X,Y), s1_p(Z,Y), s2(Z,W). s2(c,e).`,
	// examples/network-ish small program with default negation cycle.
	`p(a). q(X) :- p(X), not r(X). r(X) :- p(X), not q(X).`,
	// Strong negation + coherence, disjunction, comparisons.
	`p(a). -p(a). a(x) v b(x) :- c(x). c(x). d(X,Y) :- c(X), c(Y), X = Y.`,
	// Underivable negation is dropped; chains are followed.
	`p(a). q(X) :- p(X), not zzz(X). r(X) :- q(X). s(X) :- r(X).`,
}

// FuzzGroundParallel asserts that the parallel grounder agrees with
// the sequential one — byte-identically and after canonical sorting —
// on arbitrary parsed programs.
func FuzzGroundParallel(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		prog, err := parse.Program(src)
		if err != nil {
			return
		}
		unfolded, err := lp.UnfoldChoice(prog)
		if err != nil {
			return
		}
		if len(unfolded.Rules) > 128 {
			return
		}
		seq, seqErr := Ground(unfolded)
		for _, par := range []int{2, 4} {
			got, gotErr := GroundOpt(unfolded, Options{Parallelism: par})
			if (seqErr == nil) != (gotErr == nil) {
				t.Fatalf("error mismatch at parallelism=%d: %v vs %v\nprogram:\n%s", par, seqErr, gotErr, src)
			}
			if seqErr != nil {
				continue
			}
			if got.String() != seq.String() || strings.Join(got.Atoms, "\x1f") != strings.Join(seq.Atoms, "\x1f") {
				t.Fatalf("parallel grounding diverged at parallelism=%d\nseq:\n%s\npar:\n%s\nprogram:\n%s", par, seq, got, src)
			}
			sc, gc := canonicalRules(seq), canonicalRules(got)
			if strings.Join(sc, "\n") != strings.Join(gc, "\n") {
				t.Fatalf("canonical rule sets diverged at parallelism=%d\nprogram:\n%s", par, src)
			}
		}
	})
}
