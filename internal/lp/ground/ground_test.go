package ground

import (
	"strings"
	"testing"

	"repro/internal/lp"
	"repro/internal/lp/parse"
)

func mustGround(t *testing.T, src string) *Program {
	t.Helper()
	p := parse.MustProgram(src)
	u, err := lp.UnfoldChoice(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Ground(u)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGroundFacts(t *testing.T) {
	g := mustGround(t, "p(a). p(b). q(X) :- p(X).")
	facts := g.Facts()
	if len(facts) != 2 || facts[0] != "p(a)" || facts[1] != "p(b)" {
		t.Fatalf("facts = %v", facts)
	}
	// Rules: 2 facts + 2 instantiations of q(X) :- p(X).
	if len(g.Rules) != 4 {
		t.Fatalf("rules:\n%s", g)
	}
	if _, ok := g.Index["q(a)"]; !ok {
		t.Fatalf("q(a) not interned: %v", g.Atoms)
	}
}

func TestGroundRelevance(t *testing.T) {
	// Grounding is restricted to derivable atoms: r(X,Y) :- p(X), p(Y)
	// over 3 constants yields 9 instantiations, not |domain|^arity of
	// every predicate.
	g := mustGround(t, "p(a). p(b). p(c). r(X,Y) :- p(X), p(Y).")
	count := 0
	for _, r := range g.Rules {
		if len(r.Pos) == 2 {
			count++
		}
	}
	if count != 9 {
		t.Fatalf("instantiations = %d", count)
	}
}

func TestGroundComparisonPruning(t *testing.T) {
	g := mustGround(t, "p(a). p(b). r(X,Y) :- p(X), p(Y), X != Y.")
	count := 0
	for _, r := range g.Rules {
		if len(r.Pos) == 2 {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("X != Y instantiations = %d, want 2", count)
	}
}

func TestGroundNegationHandling(t *testing.T) {
	// A negated atom that is never derivable is dropped from the rule;
	// a derivable one is kept.
	g := mustGround(t, "p(a). q(X) :- p(X), not r(X). r(a) :- p(a), not q(a).")
	var qRule *Rule
	for i := range g.Rules {
		r := &g.Rules[i]
		if len(r.Head) == 1 && g.Atoms[r.Head[0]] == "q(a)" {
			qRule = r
		}
	}
	if qRule == nil {
		t.Fatalf("q(a) rule missing:\n%s", g)
	}
	if len(qRule.Neg) != 1 || g.Atoms[qRule.Neg[0]] != "r(a)" {
		t.Fatalf("q rule neg = %v", qRule.Neg)
	}
}

func TestGroundDropsUnderivableNegation(t *testing.T) {
	g := mustGround(t, "p(a). q(X) :- p(X), not zzz(X).")
	for _, r := range g.Rules {
		for _, n := range r.Neg {
			if strings.HasPrefix(g.Atoms[n], "zzz") {
				t.Fatalf("underivable negated atom kept:\n%s", g)
			}
		}
	}
}

func TestGroundCoherenceConstraints(t *testing.T) {
	g := mustGround(t, "p(a). -p(a).")
	// Expect a constraint :- -p(a), p(a).
	found := false
	for _, r := range g.Rules {
		if len(r.Head) == 0 && len(r.Pos) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no coherence constraint:\n%s", g)
	}
}

func TestGroundRejectsChoice(t *testing.T) {
	p := parse.MustProgram("h(X,W) :- b(X,W), choice(X,W). b(a,c).")
	if _, err := Ground(p); err == nil {
		t.Fatal("grounding with choice goals should fail")
	}
}

func TestGroundDisjunctiveHeads(t *testing.T) {
	g := mustGround(t, "a(x) v b(x) :- c(x). c(x).")
	found := false
	for _, r := range g.Rules {
		if len(r.Head) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("disjunctive rule lost:\n%s", g)
	}
	// Both head atoms must be possible.
	if _, ok := g.Index["a(x)"]; !ok {
		t.Fatal("a(x) missing")
	}
	if _, ok := g.Index["b(x)"]; !ok {
		t.Fatal("b(x) missing")
	}
}

func TestGroundChainDerivation(t *testing.T) {
	// The possible-atom fixpoint must follow chains.
	g := mustGround(t, "p(a). q(X) :- p(X). r(X) :- q(X). s(X) :- r(X).")
	if _, ok := g.Index["s(a)"]; !ok {
		t.Fatalf("chained atom s(a) not derived:\n%s", g)
	}
}

func TestGroundDeduplicatesRules(t *testing.T) {
	g := mustGround(t, "p(a). q(a) :- p(a). q(X) :- p(X).")
	count := 0
	for _, r := range g.Rules {
		if len(r.Head) == 1 && g.Atoms[r.Head[0]] == "q(a)" && len(r.Pos) == 1 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("duplicate ground rules kept: %d\n%s", count, g)
	}
}
