package ground

import (
	"strings"
	"testing"

	"repro/internal/lp"
	"repro/internal/lp/parse"
)

// TestDeterminismGroundParallel sweeps the seed-corpus programs (the
// example-shaped fixtures of the fuzz target) across parallelism
// levels and asserts the ground program — rules, atom numbering, the
// rendered text — is byte-identical to the sequential output.
func TestDeterminismGroundParallel(t *testing.T) {
	for i, src := range fuzzSeeds {
		prog := parse.MustProgram(src)
		unfolded, err := lp.UnfoldChoice(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		want, err := Ground(unfolded)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		for _, par := range []int{2, 4, 8} {
			got, err := GroundOpt(unfolded, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("seed %d parallelism=%d: %v", i, par, err)
			}
			if got.String() != want.String() {
				t.Fatalf("seed %d parallelism=%d: rules diverge\nseq:\n%s\npar:\n%s", i, par, want, got)
			}
			if strings.Join(got.Atoms, "\x1f") != strings.Join(want.Atoms, "\x1f") {
				t.Fatalf("seed %d parallelism=%d: atom numbering diverges\nseq: %v\npar: %v", i, par, want.Atoms, got.Atoms)
			}
		}
	}
}

// TestGroundParallelRepeatedRuns pins run-to-run determinism at a
// fixed level: scheduling must not leak into the output.
func TestGroundParallelRepeatedRuns(t *testing.T) {
	prog := parse.MustProgram(fuzzSeeds[0])
	unfolded, err := lp.UnfoldChoice(prog)
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for run := 0; run < 10; run++ {
		g, err := GroundOpt(unfolded, Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			want = g.String()
			continue
		}
		if g.String() != want {
			t.Fatalf("run %d diverged from run 0:\n%s\nvs\n%s", run, g, want)
		}
	}
}
