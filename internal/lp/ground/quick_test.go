package ground

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lp"
	"repro/internal/term"
)

// randomProgram generates a small random-but-safe program: facts over
// a fixed vocabulary plus rules whose head and negative-body variables
// are always bound by the positive body.
func randomProgram(rng *rand.Rand) *lp.Program {
	preds := []string{"p", "q", "r", "s"}
	consts := []string{"a", "b", "c"}
	vars := []string{"X", "Y"}
	prog := &lp.Program{}

	randTermFrom := func(pool []string, isVar bool) term.Term {
		name := pool[rng.Intn(len(pool))]
		if isVar {
			return term.V(name)
		}
		return term.C(name)
	}
	randAtom := func(groundOnly bool) term.Atom {
		args := make([]term.Term, 1+rng.Intn(2))
		for i := range args {
			if groundOnly || rng.Intn(2) == 0 {
				args[i] = randTermFrom(consts, false)
			} else {
				args[i] = randTermFrom(vars, true)
			}
		}
		return term.Atom{Pred: preds[rng.Intn(len(preds))], Args: args}
	}

	for i := 0; i < 2+rng.Intn(4); i++ {
		lit := lp.Pos(randAtom(true))
		if rng.Intn(4) == 0 {
			lit = lp.NegL(lit.Atom)
		}
		prog.Add(lp.Rule{Head: []lp.Literal{lit}})
	}
	for i := 0; i < 1+rng.Intn(4); i++ {
		r := lp.Rule{}
		for j := 0; j < 1+rng.Intn(2); j++ {
			r.PosB = append(r.PosB, lp.Pos(randAtom(false)))
		}
		bound := map[string]bool{}
		for _, l := range r.PosB {
			for _, v := range l.Atom.Vars(nil) {
				bound[v] = true
			}
		}
		safeAtom := func() term.Atom {
			a := randAtom(false)
			for k, t := range a.Args {
				if t.IsVar && !bound[t.Name] {
					a.Args[k] = term.C(consts[rng.Intn(len(consts))])
				}
			}
			return a
		}
		for j := 0; j < 1+rng.Intn(2); j++ {
			h := lp.Pos(safeAtom())
			if rng.Intn(5) == 0 {
				h = lp.NegL(h.Atom)
			}
			r.Head = append(r.Head, h)
		}
		if rng.Intn(3) == 0 {
			r.NegB = append(r.NegB, lp.Pos(safeAtom()))
		}
		if rng.Intn(4) == 0 && len(bound) > 0 {
			var bvars []string
			for v := range bound {
				bvars = append(bvars, v)
			}
			sort.Strings(bvars)
			r.Cmps = append(r.Cmps, lp.Cmp{
				Op: "!=",
				L:  term.V(bvars[rng.Intn(len(bvars))]),
				R:  term.C(consts[rng.Intn(len(consts))]),
			})
		}
		prog.Add(r)
	}
	return prog
}

// canonicalRules renders the ground rules sorted, the order-insensitive
// comparison form.
func canonicalRules(g *Program) []string {
	out := make([]string, 0, len(g.Rules))
	for _, r := range g.Rules {
		out = append(out, g.RuleString(r))
	}
	sort.Strings(out)
	return out
}

// TestQuickGroundParallelEquivalence checks, over random programs, that
// the parallel grounder is byte-identical to the sequential one — not
// just equal after canonical sorting, which is also asserted as the
// weaker sanity layer.
func TestQuickGroundParallelEquivalence(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(values []reflect.Value, rng *rand.Rand) {
			values[0] = reflect.ValueOf(randomProgram(rng))
		},
	}
	property := func(p *lp.Program) bool {
		seq, seqErr := Ground(p)
		for _, par := range []int{2, 4, 8} {
			got, gotErr := GroundOpt(p, Options{Parallelism: par})
			if (seqErr == nil) != (gotErr == nil) {
				t.Logf("error mismatch at parallelism=%d: %v vs %v", par, seqErr, gotErr)
				return false
			}
			if seqErr != nil {
				continue
			}
			if got.String() != seq.String() || strings.Join(got.Atoms, "\x1f") != strings.Join(seq.Atoms, "\x1f") {
				t.Logf("byte mismatch at parallelism=%d:\nseq:\n%s\npar:\n%s", par, seq, got)
				return false
			}
			sc, gc := canonicalRules(seq), canonicalRules(got)
			if fmt.Sprint(sc) != fmt.Sprint(gc) {
				t.Logf("canonical mismatch at parallelism=%d", par)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
