package lp

// ShiftProgram applies the head-cycle-free shift of Section 4.1 at the
// rule level: every disjunctive rule h1 v ... v hk :- B becomes k
// normal rules hi :- B, not hj (j != i), with choice goals carried
// along — exactly the transformation shown in the paper's Example 3,
// where rule (9) is replaced by two rules. The caller is responsible
// for the program being HCF (use solve.HCF on the grounding, with
// choice goals removed per the paper's Proposition in Section 4.1).
func ShiftProgram(p *Program) *Program {
	out := &Program{}
	for _, r := range p.Rules {
		if len(r.Head) <= 1 {
			out.Add(r)
			continue
		}
		for i := range r.Head {
			nr := Rule{
				Head:   []Literal{r.Head[i]},
				PosB:   append([]Literal{}, r.PosB...),
				NegB:   append([]Literal{}, r.NegB...),
				Cmps:   append([]Cmp{}, r.Cmps...),
				Choice: append([]ChoiceGoal{}, r.Choice...),
			}
			for j, h := range r.Head {
				if j != i {
					nr.NegB = append(nr.NegB, h)
				}
			}
			out.Add(nr)
		}
	}
	return out
}

// PredHCF is a sound predicate-level approximation of head-cycle
// freeness for non-ground programs: if no two head predicates of a
// disjunctive rule share a strongly connected component of the
// predicate dependency graph (edges head-pred → positive-body-pred),
// every grounding of the program is HCF. Choice goals are ignored,
// per the paper's observation that a disjunctive choice program is HCF
// when its choice-free version is.
func PredHCF(p *Program) bool {
	// Build predicate graph.
	idx := map[string]int{}
	id := func(name string) int {
		if i, ok := idx[name]; ok {
			return i
		}
		i := len(idx)
		idx[name] = i
		return i
	}
	type edge struct{ from, to int }
	var edges []edge
	litKey := func(l Literal) string {
		if l.Neg {
			return "-" + l.Atom.Pred
		}
		return l.Atom.Pred
	}
	for _, r := range p.Rules {
		for _, h := range r.Head {
			hi := id(litKey(h))
			for _, b := range r.PosB {
				edges = append(edges, edge{hi, id(litKey(b))})
			}
		}
	}
	n := len(idx)
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	comp := predSCC(n, adj)
	for _, r := range p.Rules {
		for i := 0; i < len(r.Head); i++ {
			for j := i + 1; j < len(r.Head); j++ {
				ci := comp[idx[litKey(r.Head[i])]]
				cj := comp[idx[litKey(r.Head[j])]]
				if litKey(r.Head[i]) != litKey(r.Head[j]) && ci == cj {
					return false
				}
			}
		}
	}
	return true
}

// predSCC is a small recursive Tarjan over the predicate graph (the
// number of predicates is small, so recursion depth is not a concern).
func predSCC(n int, adj [][]int) []int {
	comp := make([]int, n)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int
	next, nComp := 0, 0
	var visit func(v int)
	visit = func(v int) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == -1 {
				visit(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nComp
				if w == v {
					break
				}
			}
			nComp++
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			visit(v)
		}
	}
	return comp
}
