// Package lp defines disjunctive logic programs with strong and default
// negation, built-in comparisons and the non-deterministic choice
// operator — the language the paper uses in Section 3 to specify the
// solutions of a peer ("disjunctive extended logic programs with answer
// set (stable model) semantics [16]", plus the choice operator of
// Giannotti et al. [17]).
//
// Subpackages implement parsing (lp/parse), grounding (lp/ground) and
// stable-model solving, head-cycle-freeness analysis and shifting
// (lp/solve).
package lp

import (
	"fmt"
	"strings"

	"repro/internal/term"
)

// Literal is a classical literal: an atom or a strongly negated atom
// (¬A, written -A in the concrete syntax).
type Literal struct {
	Neg  bool
	Atom term.Atom
}

// Pos returns a positive literal.
func Pos(a term.Atom) Literal { return Literal{Atom: a} }

// NegL returns a strongly negated literal.
func NegL(a term.Atom) Literal { return Literal{Neg: true, Atom: a} }

// String renders the literal.
func (l Literal) String() string {
	if l.Neg {
		return "-" + l.Atom.String()
	}
	return l.Atom.String()
}

// Key renders a ground literal canonically (strong negation is part of
// the key, so p(a) and -p(a) are distinct atoms for the solver).
func (l Literal) Key() string { return l.String() }

// Apply applies a substitution to the literal.
func (l Literal) Apply(s term.Subst) Literal {
	return Literal{Neg: l.Neg, Atom: s.Apply(l.Atom)}
}

// IsGround reports whether the literal is variable-free.
func (l Literal) IsGround() bool { return l.Atom.IsGround() }

// Cmp is a built-in comparison in a rule body.
type Cmp struct {
	Op   string // "=", "!=", "<", "<=", ">", ">="
	L, R term.Term
}

// String renders the comparison.
func (c Cmp) String() string { return c.L.String() + " " + c.Op + " " + c.R.String() }

// Eval evaluates a ground comparison (constants compare as strings,
// numerically if both sides are integers).
func (c Cmp) Eval(s term.Subst) (bool, error) {
	l := s.ApplyTerm(c.L)
	r := s.ApplyTerm(c.R)
	if l.IsVar || r.IsVar {
		return false, fmt.Errorf("lp: unbound variable in comparison %s", c)
	}
	cv := compareConst(l.Name, r.Name)
	switch c.Op {
	case "=":
		return cv == 0, nil
	case "!=":
		return cv != 0, nil
	case "<":
		return cv < 0, nil
	case "<=":
		return cv <= 0, nil
	case ">":
		return cv > 0, nil
	case ">=":
		return cv >= 0, nil
	}
	return false, fmt.Errorf("lp: unknown comparison operator %q", c.Op)
}

func compareConst(l, r string) int {
	li, lok := parseInt(l)
	ri, rok := parseInt(r)
	if lok && rok {
		switch {
		case li < ri:
			return -1
		case li > ri:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(l, r)
}

func parseInt(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	i := 0
	neg := false
	if s[0] == '-' {
		if len(s) == 1 {
			return 0, false
		}
		neg = true
		i = 1
	}
	var n int64
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + int64(s[i]-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// ChoiceGoal is the choice operator choice((x̄),(w̄)) of [17]: for each
// binding of the key variables x̄ admitted by the rest of the body, a
// unique value for w̄ is chosen non-deterministically. It is compiled
// away by UnfoldChoice into its "stable version" with chosen/diffchoice
// predicates, exactly as in the paper's appendix.
type ChoiceGoal struct {
	Keys []term.Term
	Outs []term.Term
}

// String renders the choice goal.
func (c ChoiceGoal) String() string {
	return "choice((" + termList(c.Keys) + "),(" + termList(c.Outs) + "))"
}

func termList(ts []term.Term) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ",")
}

// Rule is a (possibly disjunctive) rule
//
//	h1 v ... v hk :- p1, ..., pm, not n1, ..., not nj, cmps, choices.
//
// An empty head makes it a denial (program) constraint; an empty body
// with a ground singleton head makes it a fact.
type Rule struct {
	Head   []Literal
	PosB   []Literal
	NegB   []Literal
	Cmps   []Cmp
	Choice []ChoiceGoal
}

// Fact builds a ground fact rule.
func Fact(l Literal) Rule { return Rule{Head: []Literal{l}} }

// IsFact reports whether the rule is a ground fact.
func (r Rule) IsFact() bool {
	return len(r.Head) == 1 && len(r.PosB) == 0 && len(r.NegB) == 0 &&
		len(r.Cmps) == 0 && len(r.Choice) == 0 && r.Head[0].IsGround()
}

// IsConstraint reports whether the rule is a denial constraint.
func (r Rule) IsConstraint() bool { return len(r.Head) == 0 }

// IsDisjunctive reports whether the rule has more than one head literal.
func (r Rule) IsDisjunctive() bool { return len(r.Head) > 1 }

// String renders the rule in the concrete syntax.
func (r Rule) String() string {
	var b strings.Builder
	for i, h := range r.Head {
		if i > 0 {
			b.WriteString(" v ")
		}
		b.WriteString(h.String())
	}
	body := r.bodyStrings()
	if len(body) > 0 {
		if len(r.Head) > 0 {
			b.WriteString(" ")
		}
		b.WriteString(":- ")
		b.WriteString(strings.Join(body, ", "))
	}
	b.WriteString(".")
	return b.String()
}

func (r Rule) bodyStrings() []string {
	var body []string
	for _, p := range r.PosB {
		body = append(body, p.String())
	}
	for _, n := range r.NegB {
		body = append(body, "not "+n.String())
	}
	for _, c := range r.Cmps {
		body = append(body, c.String())
	}
	for _, c := range r.Choice {
		body = append(body, c.String())
	}
	return body
}

// Vars returns the variables of the rule in order of first occurrence.
func (r Rule) Vars() []string {
	var vs []string
	for _, h := range r.Head {
		vs = h.Atom.Vars(vs)
	}
	for _, p := range r.PosB {
		vs = p.Atom.Vars(vs)
	}
	for _, n := range r.NegB {
		vs = n.Atom.Vars(vs)
	}
	collect := func(t term.Term) {
		if t.IsVar {
			found := false
			for _, v := range vs {
				if v == t.Name {
					found = true
					break
				}
			}
			if !found {
				vs = append(vs, t.Name)
			}
		}
	}
	for _, c := range r.Cmps {
		collect(c.L)
		collect(c.R)
	}
	for _, c := range r.Choice {
		for _, t := range c.Keys {
			collect(t)
		}
		for _, t := range c.Outs {
			collect(t)
		}
	}
	return vs
}

// Safe checks rule safety: every variable occurring in the head, in a
// default-negated literal, in a comparison or in a choice goal must
// occur in a positive body literal.
func (r Rule) Safe() error {
	posVars := map[string]bool{}
	for _, p := range r.PosB {
		for _, v := range p.Atom.Vars(nil) {
			posVars[v] = true
		}
	}
	for _, v := range r.Vars() {
		if !posVars[v] {
			return fmt.Errorf("lp: unsafe variable %s in rule %s", v, r)
		}
	}
	return nil
}

// Apply applies a substitution to the whole rule.
func (r Rule) Apply(s term.Subst) Rule {
	out := Rule{
		Head: make([]Literal, len(r.Head)),
		PosB: make([]Literal, len(r.PosB)),
		NegB: make([]Literal, len(r.NegB)),
		Cmps: make([]Cmp, len(r.Cmps)),
	}
	for i, h := range r.Head {
		out.Head[i] = h.Apply(s)
	}
	for i, p := range r.PosB {
		out.PosB[i] = p.Apply(s)
	}
	for i, n := range r.NegB {
		out.NegB[i] = n.Apply(s)
	}
	for i, c := range r.Cmps {
		out.Cmps[i] = Cmp{Op: c.Op, L: s.ApplyTerm(c.L), R: s.ApplyTerm(c.R)}
	}
	for _, c := range r.Choice {
		nc := ChoiceGoal{Keys: make([]term.Term, len(c.Keys)), Outs: make([]term.Term, len(c.Outs))}
		for i, t := range c.Keys {
			nc.Keys[i] = s.ApplyTerm(t)
		}
		for i, t := range c.Outs {
			nc.Outs[i] = s.ApplyTerm(t)
		}
		out.Choice = append(out.Choice, nc)
	}
	return out
}

// Program is a list of rules.
type Program struct {
	Rules []Rule
}

// Add appends rules.
func (p *Program) Add(rules ...Rule) { p.Rules = append(p.Rules, rules...) }

// AddFactAtom appends a positive ground fact.
func (p *Program) AddFactAtom(a term.Atom) { p.Add(Fact(Pos(a))) }

// String renders the program, one rule per line.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Preds returns the set of predicate names used in the program.
func (p *Program) Preds() map[string]bool {
	out := map[string]bool{}
	add := func(ls []Literal) {
		for _, l := range ls {
			out[l.Atom.Pred] = true
		}
	}
	for _, r := range p.Rules {
		add(r.Head)
		add(r.PosB)
		add(r.NegB)
	}
	return out
}

// Validate checks safety of every rule.
func (p *Program) Validate() error {
	for _, r := range p.Rules {
		if err := r.Safe(); err != nil {
			return err
		}
	}
	return nil
}

// HasChoice reports whether any rule uses a choice goal.
func (p *Program) HasChoice() bool {
	for _, r := range p.Rules {
		if len(r.Choice) > 0 {
			return true
		}
	}
	return false
}

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	q := &Program{Rules: make([]Rule, len(p.Rules))}
	copy(q.Rules, p.Rules)
	return q
}

// Merge returns a new program with the rules of all arguments, in
// order. It implements the program combination of Section 4.3 (the
// transitive case integrates the peers' local specification programs).
func Merge(progs ...*Program) *Program {
	out := &Program{}
	for _, p := range progs {
		out.Rules = append(out.Rules, p.Rules...)
	}
	return out
}
