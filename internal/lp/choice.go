package lp

import (
	"fmt"

	"repro/internal/term"
)

// UnfoldChoice compiles every choice goal into its "stable version"
// [17], producing a plain disjunctive program. For a rule
//
//	H :- B, choice((x̄),(w̄)).
//
// it generates (with a fresh predicate pair per choice occurrence):
//
//	H :- B, chosen_i(x̄,w̄).
//	chosen_i(x̄,w̄) :- B, not diffchoice_i(x̄,w̄).
//	diffchoice_i(x̄,w̄) :- B, chosen_i(x̄,ū), ū != w̄.
//
// which is exactly the unfolding the paper performs in its appendix
// (rules chosen/diffchoice). The ū != w̄ condition is a disjunction of
// per-position inequalities; for the common single-output case it is a
// single comparison.
func UnfoldChoice(p *Program) (*Program, error) {
	out := &Program{}
	n := 0
	for _, r := range p.Rules {
		if len(r.Choice) == 0 {
			out.Add(r)
			continue
		}
		rules, err := unfoldRule(r, &n)
		if err != nil {
			return nil, err
		}
		out.Add(rules...)
	}
	return out, nil
}

func unfoldRule(r Rule, counter *int) ([]Rule, error) {
	// Unfold one choice goal; recurse for the rest.
	c := r.Choice[0]
	rest := r.Choice[1:]
	if len(c.Outs) == 0 {
		return nil, fmt.Errorf("lp: choice goal with no output variables in rule %s", r)
	}
	*counter++
	id := *counter
	chosenPred := fmt.Sprintf("chosen_%d", id)
	diffPred := fmt.Sprintf("diffchoice_%d", id)

	args := append(append([]term.Term{}, c.Keys...), c.Outs...)
	chosenAtom := term.Atom{Pred: chosenPred, Args: args}
	diffAtom := term.Atom{Pred: diffPred, Args: args}

	// Body B = r's body without choice goals.
	base := Rule{PosB: r.PosB, NegB: r.NegB, Cmps: r.Cmps}

	// H :- B, chosen(x̄,w̄)   (remaining choice goals carried along).
	main := Rule{
		Head:   r.Head,
		PosB:   append(append([]Literal{}, r.PosB...), Pos(chosenAtom)),
		NegB:   r.NegB,
		Cmps:   r.Cmps,
		Choice: rest,
	}

	// chosen(x̄,w̄) :- B, not diffchoice(x̄,w̄).
	chosenRule := Rule{
		Head: []Literal{Pos(chosenAtom)},
		PosB: base.PosB,
		NegB: append(append([]Literal{}, base.NegB...), Pos(diffAtom)),
		Cmps: base.Cmps,
	}

	// diffchoice(x̄,w̄) :- B, chosen(x̄,ū), ū != w̄.
	// For multi-output choices the inequality ū != w̄ is a disjunction,
	// so one diffchoice rule is emitted per output position.
	var diffRules []Rule
	for i := range c.Outs {
		u := term.V(fmt.Sprintf("U_choice_%d_%d", id, i))
		otherArgs := append([]term.Term{}, c.Keys...)
		for j := range c.Outs {
			if j == i {
				otherArgs = append(otherArgs, u)
			} else {
				otherArgs = append(otherArgs, term.V(fmt.Sprintf("Uany_choice_%d_%d", id, j)))
			}
		}
		dr := Rule{
			Head: []Literal{Pos(diffAtom)},
			PosB: append(append([]Literal{}, base.PosB...), Pos(term.Atom{Pred: chosenPred, Args: otherArgs})),
			NegB: base.NegB,
			Cmps: append(append([]Cmp{}, base.Cmps...), Cmp{Op: "!=", L: u, R: c.Outs[i]}),
		}
		diffRules = append(diffRules, dr)
	}

	rules := []Rule{chosenRule}
	rules = append(rules, diffRules...)
	if len(rest) > 0 {
		more, err := unfoldRule(main, counter)
		if err != nil {
			return nil, err
		}
		rules = append(rules, more...)
	} else {
		rules = append(rules, main)
	}
	return rules, nil
}

// StripChoice returns the program with all choice goals removed from
// rule bodies. Section 4.1 of the paper uses this: "a disjunctive
// choice program Π is HCF when the program obtained from Π by removing
// its choice goals is HCF".
func StripChoice(p *Program) *Program {
	out := &Program{}
	for _, r := range p.Rules {
		r2 := r
		r2.Choice = nil
		out.Add(r2)
	}
	return out
}
