package solve

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/lp/ground"
)

// bruteStableModels enumerates all stable models by definition: every
// subset M of the atoms is tested for being a minimal model of the
// GL-reduct P^M. Exponential, used only as an oracle on tiny programs.
func bruteStableModels(gp *ground.Program) []Model {
	n := len(gp.Atoms)
	if n > 16 {
		panic("brute force limited to 16 atoms")
	}
	var out []Model
	for bits := 0; bits < (1 << n); bits++ {
		m := make(map[int]bool)
		for a := 0; a < n; a++ {
			if bits&(1<<a) != 0 {
				m[a] = true
			}
		}
		if bruteIsStable(gp, m) {
			var keys []string
			for a := range m {
				keys = append(keys, gp.Atoms[a])
			}
			sort.Strings(keys)
			out = append(out, Model(keys))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i], "\x1f") < strings.Join(out[j], "\x1f")
	})
	return out
}

func bruteIsStable(gp *ground.Program, m map[int]bool) bool {
	reduct := bruteReduct(gp, m)
	if !bruteModels(reduct, m) {
		return false
	}
	// Minimality: no proper subset is a model of the reduct.
	atoms := make([]int, 0, len(m))
	for a := range m {
		atoms = append(atoms, a)
	}
	for bits := 0; bits < (1<<len(atoms))-1; bits++ {
		sub := make(map[int]bool)
		for i, a := range atoms {
			if bits&(1<<i) != 0 {
				sub[a] = true
			}
		}
		if bruteModels(reduct, sub) {
			return false
		}
	}
	return true
}

type bruteRule struct{ head, pos []int }

func bruteReduct(gp *ground.Program, m map[int]bool) []bruteRule {
	var out []bruteRule
	for _, r := range gp.Rules {
		blocked := false
		for _, nb := range r.Neg {
			if m[nb] {
				blocked = true
				break
			}
		}
		if !blocked {
			out = append(out, bruteRule{head: r.Head, pos: r.Pos})
		}
	}
	return out
}

func bruteModels(rules []bruteRule, m map[int]bool) bool {
	for _, r := range rules {
		body := true
		for _, p := range r.pos {
			if !m[p] {
				body = false
				break
			}
		}
		if !body {
			continue
		}
		sat := false
		for _, h := range r.head {
			if m[h] {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// randomGroundProgram builds a small random ground program over nAtoms
// propositional atoms with a mix of facts, normal rules, disjunctive
// rules, negation and constraints.
func randomGroundProgram(rng *rand.Rand, nAtoms, nRules int) *ground.Program {
	gp := &ground.Program{Index: map[string]int{}}
	for i := 0; i < nAtoms; i++ {
		gp.AtomID(atomName(i))
	}
	pick := func() int { return rng.Intn(nAtoms) }
	for i := 0; i < nRules; i++ {
		var r ground.Rule
		switch rng.Intn(10) {
		case 0: // fact
			r.Head = []int{pick()}
		case 1: // constraint
			r.Pos = []int{pick()}
			if rng.Intn(2) == 0 {
				r.Neg = []int{pick()}
			}
		case 2, 3: // disjunctive rule
			r.Head = []int{pick(), pick()}
			if rng.Intn(2) == 0 {
				r.Pos = []int{pick()}
			}
			if rng.Intn(2) == 0 {
				r.Neg = []int{pick()}
			}
		default: // normal rule
			r.Head = []int{pick()}
			for j := 0; j < rng.Intn(3); j++ {
				r.Pos = append(r.Pos, pick())
			}
			for j := 0; j < rng.Intn(2); j++ {
				r.Neg = append(r.Neg, pick())
			}
		}
		gp.Rules = append(gp.Rules, r)
	}
	return gp
}

func atomName(i int) string { return "a" + string(rune('0'+i)) }

// TestSolverAgainstBruteForce cross-checks the DPLL solver against the
// definitional oracle on hundreds of random small programs.
func TestSolverAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		gp := randomGroundProgram(rng, 2+rng.Intn(5), 1+rng.Intn(8))
		want := bruteStableModels(gp)
		got, err := StableModels(gp, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Fatalf("trial %d: models differ\nprogram:\n%s\nsolver: %v\nbrute:  %v",
				trial, gp, got, want)
		}
	}
}

// TestSolverAblationAgainstBruteForce repeats the oracle check with
// support propagation disabled.
func TestSolverAblationAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		gp := randomGroundProgram(rng, 2+rng.Intn(4), 1+rng.Intn(7))
		want := bruteStableModels(gp)
		got, err := StableModels(gp, Options{NoSupportPropagation: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Fatalf("trial %d: models differ\nprogram:\n%s\nsolver: %v\nbrute:  %v",
				trial, gp, got, want)
		}
	}
}

// TestShiftAgainstBruteForce checks that shifting random HCF programs
// preserves the stable models exactly.
func TestShiftAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for trial := 0; trial < 600 && checked < 150; trial++ {
		gp := randomGroundProgram(rng, 2+rng.Intn(4), 1+rng.Intn(7))
		if !HCF(gp) {
			continue
		}
		checked++
		sh, err := Shift(gp)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteStableModels(gp)
		got, err := StableModels(sh, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Fatalf("trial %d: shift changed models\nprogram:\n%s\nshifted: %v\nbrute:   %v",
				trial, gp, got, want)
		}
	}
	if checked < 50 {
		t.Fatalf("too few HCF programs checked: %d", checked)
	}
}

// TestShiftRejectsNonHCF: shifting a head-cycle program must error (it
// would change the models: a v b with mutual support has models {a},{b}
// but the shifted program has none... actually the classic example).
func TestShiftRejectsNonHCF(t *testing.T) {
	gp := &ground.Program{Index: map[string]int{}}
	a := gp.AtomID("a")
	b := gp.AtomID("b")
	gp.Rules = []ground.Rule{
		{Head: []int{a, b}},
		{Head: []int{a}, Pos: []int{b}},
		{Head: []int{b}, Pos: []int{a}},
	}
	if HCF(gp) {
		t.Fatal("program should not be HCF")
	}
	if _, err := Shift(gp); err == nil {
		t.Fatal("Shift must reject non-HCF programs")
	}
}

func normalize(ms []Model) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = strings.Join(m, ",")
	}
	sort.Strings(out)
	return out
}
