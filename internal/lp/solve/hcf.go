package solve

import (
	"fmt"

	"repro/internal/lp/ground"
)

// HCF reports whether the ground program is head-cycle free (Section
// 4.1 of the paper, after Ben-Eliyahu & Dechter [4]): no rule has two
// head atoms lying in the same strongly connected component of the
// positive dependency graph (edges from head atoms to positive body
// atoms of the same rule).
func HCF(gp *ground.Program) bool {
	scc := sccOf(gp)
	for _, r := range gp.Rules {
		for i := 0; i < len(r.Head); i++ {
			for j := i + 1; j < len(r.Head); j++ {
				if r.Head[i] != r.Head[j] && scc[r.Head[i]] == scc[r.Head[j]] {
					return false
				}
			}
		}
	}
	return true
}

// Shift rewrites every disjunctive rule h1 v ... v hk :- B into the k
// normal rules hi :- B, not h1, ..., not h(i-1), not h(i+1), ..., not hk.
// For HCF programs the shifted program has exactly the same stable
// models [4,22]; Shift returns an error if the program is not HCF, as
// the transformation is unsound there.
func Shift(gp *ground.Program) (*ground.Program, error) {
	if !HCF(gp) {
		return nil, fmt.Errorf("solve: program is not head-cycle free; shifting would change its stable models")
	}
	out := &ground.Program{Index: make(map[string]int)}
	// Preserve atom interning.
	out.Atoms = append(out.Atoms, gp.Atoms...)
	for k, v := range gp.Index {
		out.Index[k] = v
	}
	for _, r := range gp.Rules {
		head := dedupe(r.Head)
		if len(head) <= 1 {
			out.Rules = append(out.Rules, ground.Rule{Head: head, Pos: r.Pos, Neg: r.Neg})
			continue
		}
		for i := range head {
			nr := ground.Rule{
				Head: []int{head[i]},
				Pos:  append([]int{}, r.Pos...),
				Neg:  append([]int{}, r.Neg...),
			}
			for j, h := range head {
				if j != i {
					nr.Neg = append(nr.Neg, h)
				}
			}
			out.Rules = append(out.Rules, nr)
		}
	}
	return out, nil
}

// dedupe removes duplicate atoms from a head, preserving order. A
// duplicated head disjunct is logically a single disjunct; shifting it
// literally would wrongly add "not a" for "a"'s own rule.
func dedupe(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// sccOf computes strongly connected components of the positive
// dependency graph with an iterative Tarjan algorithm; it returns the
// component id per atom.
func sccOf(gp *ground.Program) []int {
	n := len(gp.Atoms)
	adj := make([][]int, n)
	for _, r := range gp.Rules {
		for _, h := range r.Head {
			adj[h] = append(adj[h], r.Pos...)
		}
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0
	nComp := 0

	type frame struct {
		v, ei int
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		var callStack []frame
		callStack = append(callStack, frame{start, 0})
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}
