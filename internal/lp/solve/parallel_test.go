package solve

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestParallelMatchesSequentialOnPrograms checks the split-subtree
// search against the sequential search on the suite's characteristic
// programs: the result must be byte-identical at every parallelism
// level when MaxModels is unset.
func TestParallelMatchesSequentialOnPrograms(t *testing.T) {
	progs := map[string]string{
		"facts":        "p(a). q(b).",
		"even-loop":    "p :- not q. q :- not p.",
		"odd-loop":     "p :- not p.",
		"disjunctive":  "p | q. r :- p. r :- q.",
		"choice-chain": "a | b. c | d :- a. e :- not b.",
		"conflicts": "ra(k1,u) | ra(k1,v). ra(k2,u) | ra(k2,v). " +
			"ra(k3,u) | ra(k3,v). ra(k4,u) | ra(k4,v).",
	}
	for name, src := range progs {
		t.Run(name, func(t *testing.T) {
			seq := models(t, src, Options{Parallelism: 1})
			for _, p := range []int{2, 4, 8} {
				par := models(t, src, Options{Parallelism: p})
				if !reflect.DeepEqual(par, seq) {
					t.Fatalf("parallelism %d: %v != sequential %v", p, par, seq)
				}
			}
		})
	}
}

// TestParallelMatchesSequentialRandom cross-checks the parallel search
// against the sequential one on random ground programs (the same
// generator the brute-force oracle tests use).
func TestParallelMatchesSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		gp := randomGroundProgram(rng, 6, 8)
		seq, err := StableModels(gp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := StableModels(gp, Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Fatalf("program %d: parallel %v != sequential %v", i, par, seq)
		}
	}
}

// TestParallelMaxModels checks that the shared atomic counter enforces
// MaxModels as a global bound across subtrees.
func TestParallelMaxModels(t *testing.T) {
	// 2^6 models from six independent binary choices.
	var b strings.Builder
	for i := 1; i <= 6; i++ {
		fmt.Fprintf(&b, "u%d | v%d. ", i, i)
	}
	src := b.String()
	for _, max := range []int{1, 3, 7} {
		ms := models(t, src, Options{Parallelism: 4, MaxModels: max})
		if len(ms) != max {
			t.Fatalf("MaxModels=%d: got %d models", max, len(ms))
		}
		// Every returned model must be a genuine stable model.
		all := modelSet(models(t, src, Options{}))
		for _, m := range ms {
			if !all["{"+strings.Join(m, ",")+"}"] {
				t.Fatalf("MaxModels=%d returned non-model %v", max, m)
			}
		}
	}
}
