// Package solve enumerates the stable models (answer sets) of ground
// disjunctive logic programs, in the sense of Gelfond & Lifschitz [16]:
// M is a stable model of P iff M is a minimal model of the
// Gelfond-Lifschitz reduct P^M. It also provides cautious (skeptical)
// and brave reasoning — the paper obtains peer consistent answers by
// running query programs under the skeptical answer set semantics
// (Section 3.2) — and the head-cycle-freeness analysis and shifting of
// Section 4.1.
//
// The solver is a DPLL-style enumerator: clause propagation over the
// rules, support propagation (every atom of a stable model needs a rule
// whose body holds and whose other head atoms are false), and a final
// reduct-minimality verification at each leaf (a least-fixpoint check
// for normal reducts, a minimal-model search for disjunctive ones).
package solve

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/lp/ground"
)

// Options configures the search.
type Options struct {
	// MaxModels stops the enumeration early; 0 means all models.
	MaxModels int
	// NoSupportPropagation disables the support-based pruning rule,
	// falling back to pure clause propagation plus leaf checks. Used by
	// the ablation benchmark (B8); results are identical, only slower.
	NoSupportPropagation bool
	// Parallelism > 1 splits the search on the first k choice atoms
	// (2^k >= Parallelism) and runs the subtree DFS in that many
	// goroutines, sharing an atomic model counter so MaxModels is
	// honored globally. 0 or 1 keeps the sequential search. Without
	// MaxModels the model set is identical at every parallelism level
	// (subtrees partition the assignment space and the result is
	// canonically sorted). With MaxModels the bound is respected, but
	// which models are kept depends on goroutine scheduling and can
	// vary run to run — unlike the sequential cut, which is
	// deterministic. Callers needing a reproducible truncated model
	// list should keep Parallelism at 1.
	Parallelism int
}

// Model is a stable model: the sorted canonical keys of its true atoms.
type Model []string

// Has reports whether the model contains the atom key.
func (m Model) Has(key string) bool {
	i := sort.SearchStrings(m, key)
	return i < len(m) && m[i] == key
}

// String renders the model like the paper renders M1..M4.
func (m Model) String() string { return "{" + strings.Join(m, ", ") + "}" }

const (
	unknown int8 = 0
	vTrue   int8 = 1
	vFalse  int8 = -1
)

type solver struct {
	gp     *ground.Program
	opt    Options
	assign []int8
	trail  []int
	// occurrence lists (shared read-only between parallel subtree
	// solvers)
	inHead [][]int
	inPos  [][]int
	inNeg  [][]int
	models []Model
	seen   map[string]bool
	// leafBits/keyBuf are the reusable leaf-signature buffers: every
	// leaf renders its true-atom bitset and canonical key into them, so
	// dedup probes stop allocating per leaf.
	leafBits bitset.Set
	keyBuf   []byte
	// counter, when non-nil, is the global model count shared between
	// parallel subtree solvers; it makes MaxModels a global bound.
	counter *atomic.Int64
	// propagation worklists
	ruleQueue  []int
	ruleQueued []bool
	supQueue   []int
	supQueued  []bool
	processed  int
	seeded     bool
}

// occIndex holds the per-atom occurrence lists, built once per program
// and shared read-only by every (sequential or parallel) solver.
type occIndex struct {
	inHead [][]int
	inPos  [][]int
	inNeg  [][]int
}

func buildIndex(gp *ground.Program) *occIndex {
	n := len(gp.Atoms)
	ix := &occIndex{
		inHead: make([][]int, n),
		inPos:  make([][]int, n),
		inNeg:  make([][]int, n),
	}
	for ri, r := range gp.Rules {
		for _, a := range r.Head {
			ix.inHead[a] = append(ix.inHead[a], ri)
		}
		for _, a := range r.Pos {
			ix.inPos[a] = append(ix.inPos[a], ri)
		}
		for _, a := range r.Neg {
			ix.inNeg[a] = append(ix.inNeg[a], ri)
		}
	}
	return ix
}

// newSolver builds a fresh solver over the (shared) occurrence index.
func newSolver(gp *ground.Program, opt Options, ix *occIndex) *solver {
	n := len(gp.Atoms)
	s := &solver{
		gp:         gp,
		opt:        opt,
		assign:     make([]int8, n),
		inHead:     ix.inHead,
		inPos:      ix.inPos,
		inNeg:      ix.inNeg,
		seen:       make(map[string]bool),
		ruleQueued: make([]bool, len(gp.Rules)),
		supQueued:  make([]bool, n),
	}
	// Atoms that never occur in any head can never be true.
	for a := 0; a < n; a++ {
		if len(s.inHead[a]) == 0 {
			s.assign[a] = vFalse
		}
	}
	return s
}

// StableModels enumerates the stable models of the ground program,
// deterministically ordered by their canonical rendering. With
// Options.Parallelism > 1 the search tree is split across goroutines
// (see stableModelsParallel); the default is the sequential search.
func StableModels(gp *ground.Program, opt Options) ([]Model, error) {
	if opt.Parallelism > 1 {
		return stableModelsParallel(gp, opt)
	}
	s := newSolver(gp, opt, buildIndex(gp))
	s.search()
	sortModels(s.models)
	return s.models, nil
}

// modelBits renders a model as its atom-id bitset signature under the
// program's atom index, the same keying leaf uses for deduplication.
func modelBits(gp *ground.Program, m Model) string {
	var bits bitset.Set
	for _, k := range m {
		bits.Set(uint32(gp.Index[k]))
	}
	return bits.Key()
}

func sortModels(models []Model) {
	sort.Slice(models, func(i, j int) bool {
		return strings.Join(models[i], "\x1f") < strings.Join(models[j], "\x1f")
	})
}

func (s *solver) done() bool {
	if s.opt.MaxModels <= 0 {
		return false
	}
	if s.counter != nil {
		return s.counter.Load() >= int64(s.opt.MaxModels)
	}
	return len(s.models) >= s.opt.MaxModels
}

// set assigns an atom, recording it on the trail; it reports false on
// conflict with an existing assignment.
func (s *solver) set(a int, v int8) bool {
	if s.assign[a] != unknown {
		return s.assign[a] == v
	}
	s.assign[a] = v
	s.trail = append(s.trail, a)
	return true
}

// undo rolls the trail back to the given mark, rolling the
// propagation bookkeeping back with it.
func (s *solver) undo(mark int) {
	for len(s.trail) > mark {
		a := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.assign[a] = unknown
	}
	if s.processed > mark {
		s.processed = mark
	}
}

// propagate runs clause and support propagation to fixpoint with a
// worklist: only rules touching freshly assigned atoms are revisited,
// and support is rechecked only for true atoms whose candidate rules
// may have changed. The processed-trail counter persists across calls
// (and is rolled back by undo), so each search node propagates only
// its delta. It reports false on conflict.
func (s *solver) propagate() bool {
	if !s.seeded {
		s.seeded = true
		for ri := range s.gp.Rules {
			s.ruleQueue = append(s.ruleQueue, ri)
			s.ruleQueued[ri] = true
		}
	}
	for {
		// Enqueue work derived from assignments made since last round.
		for ; s.processed < len(s.trail); s.processed++ {
			a := s.trail[s.processed]
			for _, ri := range s.inHead[a] {
				s.enqueueRule(ri)
				s.enqueueSupportOfRule(ri)
			}
			for _, ri := range s.inPos[a] {
				s.enqueueRule(ri)
				s.enqueueSupportOfRule(ri)
			}
			for _, ri := range s.inNeg[a] {
				s.enqueueRule(ri)
				s.enqueueSupportOfRule(ri)
			}
			if s.assign[a] == vTrue && !s.opt.NoSupportPropagation {
				s.enqueueSupport(a)
			}
		}
		if len(s.ruleQueue) == 0 && len(s.supQueue) == 0 {
			return true
		}
		for len(s.ruleQueue) > 0 {
			ri := s.ruleQueue[len(s.ruleQueue)-1]
			s.ruleQueue = s.ruleQueue[:len(s.ruleQueue)-1]
			s.ruleQueued[ri] = false
			if ok, _ := s.propagateRule(ri); !ok {
				s.clearQueues()
				return false
			}
		}
		if !s.opt.NoSupportPropagation {
			for len(s.supQueue) > 0 {
				a := s.supQueue[len(s.supQueue)-1]
				s.supQueue = s.supQueue[:len(s.supQueue)-1]
				s.supQueued[a] = false
				if s.assign[a] != vTrue {
					continue
				}
				if ok, _ := s.propagateSupport(a); !ok {
					s.clearQueues()
					return false
				}
			}
		}
	}
}

func (s *solver) enqueueRule(ri int) {
	if !s.ruleQueued[ri] {
		s.ruleQueued[ri] = true
		s.ruleQueue = append(s.ruleQueue, ri)
	}
}

func (s *solver) enqueueSupport(a int) {
	if !s.supQueued[a] {
		s.supQueued[a] = true
		s.supQueue = append(s.supQueue, a)
	}
}

// enqueueSupportOfRule re-examines the support of the rule's true head
// atoms whenever the rule's state may have changed.
func (s *solver) enqueueSupportOfRule(ri int) {
	if s.opt.NoSupportPropagation {
		return
	}
	for _, h := range s.gp.Rules[ri].Head {
		if s.assign[h] == vTrue {
			s.enqueueSupport(h)
		}
	}
}

func (s *solver) clearQueues() {
	for _, ri := range s.ruleQueue {
		s.ruleQueued[ri] = false
	}
	s.ruleQueue = s.ruleQueue[:0]
	for _, a := range s.supQueue {
		s.supQueued[a] = false
	}
	s.supQueue = s.supQueue[:0]
}

// propagateRule applies unit propagation to the clause
// ⋁(¬p) ∨ ⋁(n) ∨ ⋁(h): if the rule body holds and no head atom can be
// true, the last open literal is forced.
func (s *solver) propagateRule(ri int) (ok, changed bool) {
	r := &s.gp.Rules[ri]
	// Count satisfied / open clause literals.
	var openKind int8 // 1: pos body atom to falsify; 2: neg body atom to satisfy; 3: head atom to satisfy
	openAtom := -1
	open := 0
	for _, p := range r.Pos {
		switch s.assign[p] {
		case vFalse:
			return true, false // clause satisfied
		case unknown:
			open++
			openKind, openAtom = 1, p
		}
	}
	for _, nb := range r.Neg {
		switch s.assign[nb] {
		case vTrue:
			return true, false
		case unknown:
			open++
			openKind, openAtom = 2, nb
		}
	}
	for _, h := range r.Head {
		switch s.assign[h] {
		case vTrue:
			return true, false
		case unknown:
			open++
			openKind, openAtom = 3, h
		}
	}
	switch open {
	case 0:
		return false, false // body holds, head all false: conflict
	case 1:
		var v int8
		switch openKind {
		case 1:
			v = vFalse
		case 2:
			v = vTrue
		case 3:
			v = vTrue
		}
		if !s.set(openAtom, v) {
			return false, false
		}
		return true, true
	}
	return true, false
}

// propagateSupport enforces that a true atom has at least one live
// supporting rule (body not falsified, no other head atom true); with
// exactly one live candidate, its body and head exclusivity are forced.
func (s *solver) propagateSupport(a int) (ok, changed bool) {
	live := -1
	count := 0
	for _, ri := range s.inHead[a] {
		if s.ruleCanSupport(ri, a) {
			count++
			live = ri
			if count > 1 {
				return true, false
			}
		}
	}
	if count == 0 {
		return false, false
	}
	// Exactly one candidate: force it.
	r := &s.gp.Rules[live]
	for _, p := range r.Pos {
		if s.assign[p] == unknown {
			if !s.set(p, vTrue) {
				return false, false
			}
			changed = true
		}
	}
	for _, nb := range r.Neg {
		if s.assign[nb] == unknown {
			if !s.set(nb, vFalse) {
				return false, false
			}
			changed = true
		}
	}
	for _, h := range r.Head {
		if h != a && s.assign[h] == unknown {
			if !s.set(h, vFalse) {
				return false, false
			}
			changed = true
		}
	}
	return true, changed
}

func (s *solver) ruleCanSupport(ri, a int) bool {
	r := &s.gp.Rules[ri]
	for _, p := range r.Pos {
		if s.assign[p] == vFalse {
			return false
		}
	}
	for _, nb := range r.Neg {
		if s.assign[nb] == vTrue {
			return false
		}
	}
	for _, h := range r.Head {
		if h != a && s.assign[h] == vTrue {
			return false
		}
	}
	return true
}

func (s *solver) search() {
	if s.done() {
		return
	}
	mark := len(s.trail)
	if !s.propagate() {
		s.undo(mark)
		return
	}
	// Find an unassigned atom.
	branch := -1
	for a := range s.assign {
		if s.assign[a] == unknown {
			branch = a
			break
		}
	}
	if branch == -1 {
		s.leaf()
		s.undo(mark)
		return
	}
	for _, v := range []int8{vFalse, vTrue} {
		m2 := len(s.trail)
		if s.set(branch, v) {
			s.search()
		}
		s.undo(m2)
		if s.done() {
			break
		}
	}
	s.undo(mark)
}

// leaf verifies the total assignment is a stable model and records it.
// Models are deduplicated by an atom-id bitset signature rendered into
// the solver's reusable buffers, so a repeated leaf costs one bit scan
// and a map probe — no allocation, no rendering of the sorted atom keys
// — and known models skip the stability re-check entirely.
func (s *solver) leaf() {
	s.leafBits = s.leafBits[:0]
	count := 0
	for a, v := range s.assign {
		if v == vTrue {
			s.leafBits.Set(uint32(a))
			count++
		}
	}
	s.keyBuf = s.leafBits.AppendKey(s.keyBuf[:0])
	if s.seen[string(s.keyBuf)] {
		return
	}
	m := make(map[int]bool, count)
	for a, v := range s.assign {
		if v == vTrue {
			m[a] = true
		}
	}
	if !s.isStable(m) {
		return
	}
	s.seen[string(s.keyBuf)] = true
	keys := make([]string, 0, count)
	for a := range m {
		keys = append(keys, s.gp.Atoms[a])
	}
	sort.Strings(keys)
	s.models = append(s.models, Model(keys))
	if s.counter != nil {
		s.counter.Add(1)
	}
}

// isStable checks that M is a minimal model of the reduct P^M.
func (s *solver) isStable(m map[int]bool) bool {
	// Build the reduct restricted to rules whose positive body lies in
	// M (others are vacuous for submodels of M) and whose negative
	// body is disjoint from M; heads are intersected with M.
	type prule struct{ head, pos []int }
	var reduct []prule
	normal := true
	for _, r := range s.gp.Rules {
		skip := false
		for _, nb := range r.Neg {
			if m[nb] {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		for _, p := range r.Pos {
			if !m[p] {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		var head []int
		for _, h := range r.Head {
			if m[h] {
				head = append(head, h)
			}
		}
		if len(head) == 0 {
			// M does not satisfy the reduct rule: not even a model.
			return false
		}
		if len(head) > 1 {
			normal = false
		}
		reduct = append(reduct, prule{head: head, pos: r.Pos})
	}
	if normal {
		// Least-model check: closure of the definite reduct must be M.
		derived := make(map[int]bool)
		for changed := true; changed; {
			changed = false
			for _, r := range reduct {
				if derived[r.head[0]] {
					continue
				}
				ok := true
				for _, p := range r.pos {
					if !derived[p] {
						ok = false
						break
					}
				}
				if ok {
					derived[r.head[0]] = true
					changed = true
				}
			}
		}
		return len(derived) == len(m)
	}
	// Disjunctive reduct: search for a proper submodel N ⊊ M.
	return !s.hasProperSubmodel(m, func(yield func(head, pos []int)) {
		for _, r := range reduct {
			yield(r.head, r.pos)
		}
	})
}

// hasProperSubmodel searches for N ⊊ M satisfying every reduct rule
// (with atoms outside M fixed false). It is a small recursive SAT
// search over the atoms of M.
func (s *solver) hasProperSubmodel(m map[int]bool, rules func(func(head, pos []int))) bool {
	atoms := make([]int, 0, len(m))
	for a := range m {
		atoms = append(atoms, a)
	}
	sort.Ints(atoms)
	idx := make(map[int]int, len(atoms))
	for i, a := range atoms {
		idx[a] = i
	}
	// Clauses over local indices: rule → ⋁¬pos ∨ ⋁head;
	// plus "proper": ⋁_{a∈M} ¬a.
	type clause struct{ neg, pos []int }
	var clauses []clause
	rules(func(head, pos []int) {
		c := clause{}
		for _, p := range pos {
			c.neg = append(c.neg, idx[p])
		}
		for _, h := range head {
			c.pos = append(c.pos, idx[h])
		}
		clauses = append(clauses, c)
	})
	all := clause{}
	for i := range atoms {
		all.neg = append(all.neg, i)
	}
	clauses = append(clauses, all)

	assign := make([]int8, len(atoms))
	var sat func() bool
	sat = func() bool {
		// Unit propagation.
		for {
			changed := false
			for _, c := range clauses {
				open, openLit, openPos := 0, -1, false
				satisfied := false
				for _, l := range c.neg {
					if assign[l] == vFalse {
						satisfied = true
						break
					}
					if assign[l] == unknown {
						open++
						openLit, openPos = l, false
					}
				}
				if !satisfied {
					for _, l := range c.pos {
						if assign[l] == vTrue {
							satisfied = true
							break
						}
						if assign[l] == unknown {
							open++
							openLit, openPos = l, true
						}
					}
				}
				if satisfied {
					continue
				}
				if open == 0 {
					return false
				}
				if open == 1 {
					if openPos {
						assign[openLit] = vTrue
					} else {
						assign[openLit] = vFalse
					}
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		b := -1
		for i := range assign {
			if assign[i] == unknown {
				b = i
				break
			}
		}
		if b == -1 {
			return true
		}
		saved := make([]int8, len(assign))
		copy(saved, assign)
		assign[b] = vFalse
		if sat() {
			return true
		}
		copy(assign, saved)
		assign[b] = vTrue
		if sat() {
			return true
		}
		copy(assign, saved)
		return false
	}
	return sat()
}

// --- reasoning modes -----------------------------------------------------

// Cautious returns the atom keys with the given predicate true in
// every model (skeptical consequences). With no models it returns nil
// and a false flag, letting the caller distinguish inconsistency (the
// paper: "the absence of solutions ... captured by the non existence
// of answer sets").
func Cautious(models []Model, pred string) (atoms []string, hasModels bool) {
	if len(models) == 0 {
		return nil, false
	}
	counts := map[string]int{}
	for _, m := range models {
		for _, k := range m {
			if atomPred(k) == pred {
				counts[k]++
			}
		}
	}
	for k, c := range counts {
		if c == len(models) {
			atoms = append(atoms, k)
		}
	}
	sort.Strings(atoms)
	return atoms, true
}

// Brave returns the atom keys with the given predicate true in at
// least one model.
func Brave(models []Model, pred string) []string {
	set := map[string]bool{}
	for _, m := range models {
		for _, k := range m {
			if atomPred(k) == pred {
				set[k] = true
			}
		}
	}
	var out []string
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// atomPred extracts the predicate of a canonical atom key, including a
// leading '-' for strongly negated atoms.
func atomPred(key string) string {
	if i := strings.IndexByte(key, '('); i >= 0 {
		return key[:i]
	}
	return key
}

// Args extracts the argument tuple of a canonical atom key.
func Args(key string) []string {
	i := strings.IndexByte(key, '(')
	if i < 0 {
		return nil
	}
	inner := key[i+1 : len(key)-1]
	if inner == "" {
		return nil
	}
	return strings.Split(inner, ",")
}

// FilterPred returns the atoms of a model with the given predicate.
func FilterPred(m Model, pred string) []string {
	var out []string
	for _, k := range m {
		if atomPred(k) == pred {
			out = append(out, k)
		}
	}
	return out
}

// FormatModels renders models one per line, for CLI output and tests.
func FormatModels(models []Model) string {
	var b strings.Builder
	for i, m := range models {
		fmt.Fprintf(&b, "M%d = %s\n", i+1, m)
	}
	return b.String()
}
