package solve

import (
	"sync"
	"sync/atomic"

	"repro/internal/lp/ground"
)

// maxSplitDepth caps the number of choice atoms the parallel driver
// branches on: 2^10 subtrees is plenty for any realistic pool and keeps
// the per-subtree setup cost bounded.
const maxSplitDepth = 10

// stableModelsParallel splits the DPLL search on the first k choice
// points (the lowest-indexed atoms that occur in some head, i.e. the
// atoms the sequential search would branch on first) and runs each of
// the 2^k assignment prefixes as an independent subtree DFS on a
// bounded goroutine pool. The subtrees partition the space of total
// assignments, so no model can be found twice; the merged result is
// canonically sorted, making the output identical to the sequential
// search whenever MaxModels is unset. MaxModels is enforced globally
// through an atomic counter shared by all subtree solvers.
func stableModelsParallel(gp *ground.Program, opt Options) ([]Model, error) {
	ix := buildIndex(gp)

	// Branch candidates: atoms the search can actually assign either
	// way (headless atoms are pre-forced false).
	var cands []int
	for a := 0; a < len(gp.Atoms); a++ {
		if len(ix.inHead[a]) > 0 {
			cands = append(cands, a)
		}
	}
	k := 0
	for (1<<k) < opt.Parallelism && k < len(cands) && k < maxSplitDepth {
		k++
	}
	if k == 0 {
		// Nothing to split on (trivial program or Parallelism <= 1).
		s := newSolver(gp, opt, ix)
		s.search()
		sortModels(s.models)
		return s.models, nil
	}

	var counter atomic.Int64
	subtrees := 1 << k
	results := make([][]Model, subtrees)

	var next atomic.Int64
	var wg sync.WaitGroup
	workers := opt.Parallelism
	if workers > subtrees {
		workers = subtrees
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1)) - 1
				if p >= subtrees {
					return
				}
				s := newSolver(gp, opt, ix)
				s.counter = &counter
				if s.done() {
					return
				}
				ok := true
				for bit := 0; bit < k; bit++ {
					v := vFalse
					if p>>bit&1 == 1 {
						v = vTrue
					}
					if !s.set(cands[bit], v) {
						ok = false
						break
					}
				}
				if ok {
					s.search()
				}
				results[p] = s.models
			}
		}()
	}
	wg.Wait()

	seen := make(map[string]bool)
	var all []Model
	for _, ms := range results {
		for _, m := range ms {
			sig := modelBits(gp, m)
			if !seen[sig] {
				seen[sig] = true
				all = append(all, m)
			}
		}
	}
	sortModels(all)
	if opt.MaxModels > 0 && len(all) > opt.MaxModels {
		all = all[:opt.MaxModels]
	}
	return all, nil
}
