package solve

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/lp"
	"repro/internal/lp/ground"
	"repro/internal/lp/parse"
)

func models(t *testing.T, src string, opt Options) []Model {
	t.Helper()
	p := parse.MustProgram(src)
	u, err := lp.UnfoldChoice(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ground.Ground(u)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := StableModels(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

// modelSet renders models as a set of signatures restricted to
// predicates of interest (ignoring bookkeeping atoms).
func modelSet(ms []Model, preds ...string) map[string]bool {
	keep := map[string]bool{}
	for _, p := range preds {
		keep[p] = true
	}
	out := map[string]bool{}
	for _, m := range ms {
		var parts []string
		for _, k := range m {
			if len(preds) == 0 || keep[atomPred(k)] {
				parts = append(parts, k)
			}
		}
		out["{"+strings.Join(parts, ",")+"}"] = true
	}
	return out
}

func TestFactsOnly(t *testing.T) {
	ms := models(t, "p(a). q(b).", Options{})
	if len(ms) != 1 {
		t.Fatalf("models = %v", ms)
	}
	if !ms[0].Has("p(a)") || !ms[0].Has("q(b)") {
		t.Fatalf("model = %v", ms[0])
	}
}

func TestDefiniteChain(t *testing.T) {
	ms := models(t, "p(a). q(X) :- p(X). r(X) :- q(X).", Options{})
	if len(ms) != 1 || !ms[0].Has("r(a)") {
		t.Fatalf("models = %v", ms)
	}
}

func TestEvenNegationLoopTwoModels(t *testing.T) {
	ms := models(t, "p :- not q. q :- not p.", Options{})
	set := modelSet(ms, "p", "q")
	if len(ms) != 2 || !set["{p}"] || !set["{q}"] {
		t.Fatalf("models = %v", ms)
	}
}

func TestOddNegationLoopNoModels(t *testing.T) {
	ms := models(t, "p :- not p.", Options{})
	if len(ms) != 0 {
		t.Fatalf("p :- not p should have no stable model, got %v", ms)
	}
}

func TestPositiveLoopUnfounded(t *testing.T) {
	// a :- b. b :- a. has only the empty stable model: mutual support
	// is unfounded.
	ms := models(t, "a :- b. b :- a. fact(x).", Options{})
	if len(ms) != 1 {
		t.Fatalf("models = %v", ms)
	}
	if ms[0].Has("a") || ms[0].Has("b") {
		t.Fatalf("unfounded atoms in model %v", ms[0])
	}
}

func TestPositiveLoopWithExternalSupport(t *testing.T) {
	ms := models(t, "a :- b. b :- a. b :- c. c.", Options{})
	if len(ms) != 1 || !ms[0].Has("a") || !ms[0].Has("b") {
		t.Fatalf("models = %v", ms)
	}
}

func TestDisjunctiveFactTwoModels(t *testing.T) {
	ms := models(t, "a v b.", Options{})
	set := modelSet(ms, "a", "b")
	if len(ms) != 2 || !set["{a}"] || !set["{b}"] {
		t.Fatalf("models = %v", ms)
	}
}

func TestDisjunctionMinimality(t *testing.T) {
	// a v b.  a :- b.   Only {a} is stable: {a,b} is not minimal and
	// {b} is not a model of the reduct.
	ms := models(t, "a v b. a :- b.", Options{})
	set := modelSet(ms, "a", "b")
	if len(ms) != 1 || !set["{a}"] {
		t.Fatalf("models = %v", ms)
	}
}

func TestConstraintPrunes(t *testing.T) {
	ms := models(t, "a v b. :- a.", Options{})
	set := modelSet(ms, "a", "b")
	if len(ms) != 1 || !set["{b}"] {
		t.Fatalf("models = %v", ms)
	}
}

func TestStrongNegationCoherence(t *testing.T) {
	ms := models(t, "p(a). -p(a).", Options{})
	if len(ms) != 0 {
		t.Fatalf("incoherent program should have no models, got %v", ms)
	}
	ms = models(t, "p(a). -p(b).", Options{})
	if len(ms) != 1 || !ms[0].Has("-p(b)") {
		t.Fatalf("models = %v", ms)
	}
}

func TestDefaultPersistenceRule(t *testing.T) {
	// Rule (4) of the paper: copies survive unless strongly negated.
	src := `
r1(a,b). r1(s,t).
rp1(X,Y) :- r1(X,Y), not -rp1(X,Y).
-rp1(s,t) :- r1(s,t).
`
	ms := models(t, src, Options{})
	if len(ms) != 1 {
		t.Fatalf("models = %v", ms)
	}
	if !ms[0].Has("rp1(a,b)") || ms[0].Has("rp1(s,t)") || !ms[0].Has("-rp1(s,t)") {
		t.Fatalf("model = %v", ms[0])
	}
}

func TestChoiceExactlyOne(t *testing.T) {
	// choice((X),(W)) picks exactly one W per X.
	src := `
d(x,a). d(x,b). d(x,c).
pick(X,W) :- d(X,W), choice((X),(W)).
`
	ms := models(t, src, Options{})
	if len(ms) != 3 {
		t.Fatalf("want 3 models, got %d: %v", len(ms), ms)
	}
	for _, m := range ms {
		picks := FilterPred(m, "pick")
		if len(picks) != 1 {
			t.Fatalf("model %v has %d picks", m, len(picks))
		}
	}
}

func TestChoiceSharedKey(t *testing.T) {
	// Two violations with the same key share the chosen witness
	// (the paper relies on this: "the choice operator ... chooses a
	// unique value for t").
	src := `
viol(x,p). viol(x,q).
d(x,a). d(x,b).
pick(V,X,W) :- viol(X,V), d(X,W), choice((X),(W)).
`
	ms := models(t, src, Options{})
	if len(ms) != 2 {
		t.Fatalf("want 2 models (one per witness), got %d", len(ms))
	}
	for _, m := range ms {
		picks := FilterPred(m, "pick")
		if len(picks) != 2 {
			t.Fatalf("model %v should pick for both v-atoms", m)
		}
		// Same witness in both picks.
		w1 := Args(picks[0])[2]
		w2 := Args(picks[1])[2]
		if w1 != w2 {
			t.Fatalf("witnesses differ in %v", m)
		}
	}
}

func TestCautiousBrave(t *testing.T) {
	ms := models(t, "a v b. c.", Options{})
	ca, has := Cautious(ms, "c")
	if !has || len(ca) != 1 || ca[0] != "c" {
		t.Fatalf("cautious c = %v %v", ca, has)
	}
	ca, _ = Cautious(ms, "a")
	if len(ca) != 0 {
		t.Fatalf("cautious a = %v", ca)
	}
	br := Brave(ms, "a")
	if len(br) != 1 || br[0] != "a" {
		t.Fatalf("brave a = %v", br)
	}
	_, has = Cautious(nil, "a")
	if has {
		t.Fatal("Cautious of no models must report hasModels=false")
	}
}

func TestMaxModels(t *testing.T) {
	ms := models(t, "a v b. c v d.", Options{MaxModels: 2})
	if len(ms) != 2 {
		t.Fatalf("MaxModels=2 gave %d", len(ms))
	}
}

func TestNoSupportPropagationSameModels(t *testing.T) {
	srcs := []string{
		"p :- not q. q :- not p.",
		"a v b. a :- b.",
		"a :- b. b :- a. b :- c. c.",
		"d(x,a). d(x,b). pick(X,W) :- d(X,W), choice((X),(W)).",
	}
	for _, src := range srcs {
		with := modelSet(models(t, src, Options{}))
		without := modelSet(models(t, src, Options{NoSupportPropagation: true}))
		if !reflect.DeepEqual(with, without) {
			t.Fatalf("ablation changed models for %q:\nwith: %v\nwithout: %v", src, with, without)
		}
	}
}

// TestSection31DirectProgram runs the GAV-style program of Section 3.1
// (rules (4)-(9)) on the appendix instance and checks the three
// distinct solutions.
func TestSection31DirectProgram(t *testing.T) {
	src := `
rp1(X,Y) :- r1(X,Y), not -rp1(X,Y).
rp2(X,Y) :- r2(X,Y), not -rp2(X,Y).
-rp1(X,Y) :- r1(X,Y), s1(Z,Y), not aux1(X,Z), not aux2(Z).
aux1(X,Z) :- r2(X,W), s2(Z,W).
aux2(Z) :- s2(Z,W).
-rp1(X,Y) v rp2(X,W) :- r1(X,Y), s1(Z,Y), not aux1(X,Z), s2(Z,W), choice((X,Z),(W)).
r1(a,b). s1(c,b). s2(c,e). s2(c,f).
`
	ms := models(t, src, Options{})
	// Four answer sets (two choices × two disjuncts), three distinct
	// solutions on the primed relations.
	if len(ms) != 4 {
		t.Fatalf("want 4 answer sets, got %d:\n%s", len(ms), FormatModels(ms))
	}
	sols := modelSet(ms, "rp1", "rp2")
	want := map[string]bool{
		"{rp1(a,b),rp2(a,e)}": true,
		"{rp1(a,b),rp2(a,f)}": true,
		"{}":                  true,
	}
	if !reflect.DeepEqual(sols, want) {
		t.Fatalf("solutions = %v, want %v", sols, want)
	}
}

// TestAppendixLAVProgram reproduces the paper's appendix verbatim: the
// LAV three-layer program with annotation constants must have exactly
// the four stable models M1-M4, and the solutions (tss atoms) must be
// rM1-rM4.
func TestAppendixLAVProgram(t *testing.T) {
	src := `
% facts
r1(a,b). s1(c,b). s2(c,e). s2(c,f).
% layer: preferred legal instances
rp1(X,Y,td) :- r1(X,Y).
sp1(X,Y,td) :- s1(X,Y).
rp2(X,Y,td) :- r2(X,Y).
sp2(X,Y,td) :- s2(X,Y).
:- rp1(X,Y,td), not r1(X,Y).
:- sp1(X,Y,td), not s1(X,Y).
:- sp2(X,Y,td), not s2(X,Y).
% layer: repairs with annotation constants
rp1(X,Y,tss) :- rp1(X,Y,td), not rp1(X,Y,fa).
rp1(X,Y,tss) :- rp1(X,Y,ta).
:- rp1(X,Y,ta), rp1(X,Y,fa).
sp1(X,Y,tss) :- sp1(X,Y,td), not sp1(X,Y,fa).
sp1(X,Y,tss) :- sp1(X,Y,ta).
:- sp1(X,Y,ta), sp1(X,Y,fa).
rp2(X,Y,tss) :- rp2(X,Y,td), not rp2(X,Y,fa).
rp2(X,Y,tss) :- rp2(X,Y,ta).
:- rp2(X,Y,ta), rp2(X,Y,fa).
sp2(X,Y,tss) :- sp2(X,Y,td), not sp2(X,Y,fa).
sp2(X,Y,tss) :- sp2(X,Y,ta).
:- sp2(X,Y,ta), sp2(X,Y,fa).
rp1(X,Y,fa) :- rp1(X,Y,td), sp1(Z,Y,td), not aux1(X,Z), not aux2(Z).
aux1(X,Z) :- rp2(X,U,td), sp2(Z,U,td).
aux2(Z) :- sp2(Z,W,td).
rp1(X,Y,fa) v rp2(X,W,ta) :- rp1(X,Y,td), sp1(Z,Y,td), not aux1(X,Z), sp2(Z,W,td), chosen(X,Z,W).
chosen(X,Z,W) :- rp1(X,Y,td), sp1(Z,Y,td), not aux1(X,Z), sp2(Z,W,td), not diffchoice(X,Z,W).
diffchoice(X,Z,W) :- chosen(X,Z,U), sp2(Z,W,td), U != W.
`
	ms := models(t, src, Options{})
	if len(ms) != 4 {
		t.Fatalf("want the paper's 4 stable models, got %d:\n%s", len(ms), FormatModels(ms))
	}

	// Check the four models on the meaningful predicates, matching
	// M1-M4 of the appendix.
	full := modelSet(ms, "rp1", "rp2", "sp1", "sp2", "chosen", "diffchoice", "aux2")
	wantModels := []string{
		// M1: chosen(a,c,f), R'2(a,f,ta) kept, R'1(a,b,tss).
		"{aux2(c),chosen(a,c,f),diffchoice(a,c,e),rp1(a,b,td),rp1(a,b,tss),rp2(a,f,ta),rp2(a,f,tss),sp1(c,b,td),sp1(c,b,tss),sp2(c,e,td),sp2(c,e,tss),sp2(c,f,td),sp2(c,f,tss)}",
		// M2: chosen(a,c,f), R'1(a,b,fa).
		"{aux2(c),chosen(a,c,f),diffchoice(a,c,e),rp1(a,b,fa),rp1(a,b,td),sp1(c,b,td),sp1(c,b,tss),sp2(c,e,td),sp2(c,e,tss),sp2(c,f,td),sp2(c,f,tss)}",
		// M3: chosen(a,c,e), R'2(a,e,ta).
		"{aux2(c),chosen(a,c,e),diffchoice(a,c,f),rp1(a,b,td),rp1(a,b,tss),rp2(a,e,ta),rp2(a,e,tss),sp1(c,b,td),sp1(c,b,tss),sp2(c,e,td),sp2(c,e,tss),sp2(c,f,td),sp2(c,f,tss)}",
		// M4: chosen(a,c,e), R'1(a,b,fa).
		"{aux2(c),chosen(a,c,e),diffchoice(a,c,f),rp1(a,b,fa),rp1(a,b,td),sp1(c,b,td),sp1(c,b,tss),sp2(c,e,td),sp2(c,e,tss),sp2(c,f,td),sp2(c,f,tss)}",
	}
	for _, w := range wantModels {
		if !full[w] {
			t.Errorf("missing paper model %s\ngot:\n%s", w, FormatModels(ms))
		}
	}

	// Solutions = tss projections; rM2 = rM4, so three distinct.
	sols := map[string]bool{}
	for _, m := range ms {
		var parts []string
		for _, k := range m {
			if strings.HasSuffix(k, ",tss)") {
				parts = append(parts, k)
			}
		}
		sols["{"+strings.Join(parts, ",")+"}"] = true
	}
	wantSols := map[string]bool{
		"{rp1(a,b,tss),rp2(a,f,tss),sp1(c,b,tss),sp2(c,e,tss),sp2(c,f,tss)}": true,
		"{sp1(c,b,tss),sp2(c,e,tss),sp2(c,f,tss)}":                           true,
		"{rp1(a,b,tss),rp2(a,e,tss),sp1(c,b,tss),sp2(c,e,tss),sp2(c,f,tss)}": true,
	}
	if !reflect.DeepEqual(sols, wantSols) {
		t.Fatalf("solutions = %v\nwant %v", sols, wantSols)
	}
}

// TestExample4TransitiveProgram reproduces Example 4: the combined
// program of peers P, Q, C with the upstream DEC U → S1 has exactly the
// three solutions listed in the paper.
func TestExample4TransitiveProgram(t *testing.T) {
	src := `
% instances: r1 = {(a,b)}, s1 = {}, r2 = {}, s2 = {(c,e),(c,f)}, u = {(c,b)}
r1(a,b). s2(c,e). s2(c,f). u(c,b).
% rules (4), (5), (7), (8)
rp1(X,Y) :- r1(X,Y), not -rp1(X,Y).
rp2(X,Y) :- r2(X,Y), not -rp2(X,Y).
aux1(X,Z) :- r2(X,W), s2(Z,W).
aux2(Z) :- s2(Z,W).
% rules (10), (11): bodies read the repaired upstream S'1
-rp1(X,Y) :- r1(X,Y), sp1(Z,Y), not aux1(X,Z), not aux2(Z).
-rp1(X,Y) v rp2(X,W) :- r1(X,Y), sp1(Z,Y), not aux1(X,Z), s2(Z,W), choice((X,Z),(W)).
% rules (12), (13): Q's own program, importing from C's relation U
sp1(X,Y) :- s1(X,Y), not -sp1(X,Y).
sp1(X,Y) :- u(X,Y), not s1(X,Y).
`
	ms := models(t, src, Options{})
	sols := modelSet(ms, "rp1", "rp2", "sp1")
	want := map[string]bool{
		"{rp1(a,b),rp2(a,f),sp1(c,b)}": true, // paper's r1
		"{sp1(c,b)}":                   true, // paper's r2
		"{rp1(a,b),rp2(a,e),sp1(c,b)}": true, // paper's r3
	}
	if !reflect.DeepEqual(sols, want) {
		t.Fatalf("solutions = %v, want %v\nmodels:\n%s", sols, want, FormatModels(ms))
	}
}

// TestLargerScaleRegression locks in solver behaviour at a larger
// scale: 7 independent binary choices ground to a program with 2^7
// stable models, which must be enumerated correctly.
func TestLargerScaleRegression(t *testing.T) {
	var src strings.Builder
	for i := 0; i < 7; i++ {
		fmt.Fprintf(&src, "a%d :- not b%d. b%d :- not a%d.\n", i, i, i, i)
	}
	ms := models(t, src.String(), Options{})
	if len(ms) != 128 {
		t.Fatalf("models = %d, want 128", len(ms))
	}
	// Every model picks exactly one of each pair.
	for _, m := range ms {
		for i := 0; i < 7; i++ {
			a := m.Has(fmt.Sprintf("a%d", i))
			b := m.Has(fmt.Sprintf("b%d", i))
			if a == b {
				t.Fatalf("model %v picks a%d=%v b%d=%v", m, i, a, i, b)
			}
		}
	}
}
