// Package foquery implements first-order queries over relational
// instances: formula ASTs, a parser, an active-domain evaluator, and
// answer enumeration for queries with free variables. It realizes the
// query languages L(P) of Definition 2 and evaluates both user queries
// and the rewritten queries of Section 2 (e.g. formula (1) in the
// paper, which mixes conjunction, disjunction, negation and a
// universally quantified guard).
package foquery

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/term"
)

// Formula is a first-order formula over a relational signature with
// equality and comparison built-ins.
type Formula interface {
	// String renders the formula in the package's concrete syntax.
	String() string
	// freeVars adds the free variables of the formula to the set.
	freeVars(bound map[string]bool, out map[string]bool)
}

// Atom is an atomic formula R(t1,...,tn).
type Atom struct{ A term.Atom }

// Cmp is a comparison between two terms. Op is one of
// "=", "!=", "<", "<=", ">", ">=". Constants compare as strings.
type Cmp struct {
	Op   string
	L, R term.Term
}

// Not is negation.
type Not struct{ F Formula }

// And is n-ary conjunction.
type And struct{ Fs []Formula }

// Or is n-ary disjunction.
type Or struct{ Fs []Formula }

// Implies is material implication.
type Implies struct{ A, B Formula }

// Quant is a quantified formula; Forall selects between ∀ and ∃.
type Quant struct {
	Forall bool
	Vars   []string
	Body   Formula
}

func (f Atom) String() string { return f.A.String() }
func (f Cmp) String() string  { return f.L.String() + " " + f.Op + " " + f.R.String() }
func (f Not) String() string  { return "!" + paren(f.F) }
func (f And) String() string  { return joinFs(f.Fs, " & ") }
func (f Or) String() string   { return joinFs(f.Fs, " | ") }
func (f Implies) String() string {
	return paren(f.A) + " -> " + paren(f.B)
}
func (f Quant) String() string {
	q := "exists"
	if f.Forall {
		q = "forall"
	}
	return q + " " + strings.Join(f.Vars, ",") + " " + paren(f.Body)
}

func paren(f Formula) string {
	switch f.(type) {
	case Atom, Cmp, Not:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

func joinFs(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = paren(f)
	}
	return strings.Join(parts, sep)
}

func (f Atom) freeVars(bound, out map[string]bool) {
	for _, t := range f.A.Args {
		if t.IsVar && !bound[t.Name] {
			out[t.Name] = true
		}
	}
}
func (f Cmp) freeVars(bound, out map[string]bool) {
	if f.L.IsVar && !bound[f.L.Name] {
		out[f.L.Name] = true
	}
	if f.R.IsVar && !bound[f.R.Name] {
		out[f.R.Name] = true
	}
}
func (f Not) freeVars(bound, out map[string]bool) { f.F.freeVars(bound, out) }
func (f And) freeVars(bound, out map[string]bool) {
	for _, g := range f.Fs {
		g.freeVars(bound, out)
	}
}
func (f Or) freeVars(bound, out map[string]bool) {
	for _, g := range f.Fs {
		g.freeVars(bound, out)
	}
}
func (f Implies) freeVars(bound, out map[string]bool) {
	f.A.freeVars(bound, out)
	f.B.freeVars(bound, out)
}
func (f Quant) freeVars(bound, out map[string]bool) {
	inner := make(map[string]bool, len(bound)+len(f.Vars))
	for k := range bound {
		inner[k] = true
	}
	for _, v := range f.Vars {
		inner[v] = true
	}
	f.Body.freeVars(inner, out)
}

// AtomQuery builds the canonical atomic query over one relation —
// rel(V0,...,V{arity-1}) — together with its answer-variable list.
// Delegated peer answering poses exactly these sub-queries: a remote
// peer's peer consistent answers to the full atomic query are its
// entire contribution to the composed system, so the querying peer can
// re-run any query shape of its own over the returned sets.
func AtomQuery(rel string, arity int) (Formula, []string) {
	vars := make([]string, arity)
	args := make([]term.Term, arity)
	for i := range vars {
		vars[i] = fmt.Sprintf("V%d", i)
		args[i] = term.V(vars[i])
	}
	return Atom{A: term.Atom{Pred: rel, Args: args}}, vars
}

// FreeVars returns the sorted free variables of the formula.
func FreeVars(f Formula) []string {
	out := make(map[string]bool)
	f.freeVars(map[string]bool{}, out)
	vars := make([]string, 0, len(out))
	for v := range out {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// Preds returns the sorted relation names mentioned anywhere in the
// formula: inside negated subformulas, quantified bodies and on both
// sides of implications. Comparison-only subformulas contribute no
// predicates (an empty, non-nil walk). This is the seed set of the
// query-relevance slicing in internal/slice.
func Preds(f Formula) []string {
	seen := make(map[string]bool)
	collectPreds(f, seen)
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func collectPreds(f Formula, seen map[string]bool) {
	switch g := f.(type) {
	case Atom:
		seen[g.A.Pred] = true
	case Not:
		collectPreds(g.F, seen)
	case And:
		for _, h := range g.Fs {
			collectPreds(h, seen)
		}
	case Or:
		for _, h := range g.Fs {
			collectPreds(h, seen)
		}
	case Implies:
		collectPreds(g.A, seen)
		collectPreds(g.B, seen)
	case Quant:
		collectPreds(g.Body, seen)
	}
}

// Constants returns the constants mentioned in the formula.
func Constants(f Formula) []string {
	seen := make(map[string]bool)
	collectConsts(f, seen)
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func collectConsts(f Formula, seen map[string]bool) {
	switch g := f.(type) {
	case Atom:
		for _, t := range g.A.Args {
			if !t.IsVar {
				seen[t.Name] = true
			}
		}
	case Cmp:
		if !g.L.IsVar {
			seen[g.L.Name] = true
		}
		if !g.R.IsVar {
			seen[g.R.Name] = true
		}
	case Not:
		collectConsts(g.F, seen)
	case And:
		for _, h := range g.Fs {
			collectConsts(h, seen)
		}
	case Or:
		for _, h := range g.Fs {
			collectConsts(h, seen)
		}
	case Implies:
		collectConsts(g.A, seen)
		collectConsts(g.B, seen)
	case Quant:
		collectConsts(g.Body, seen)
	}
}

// evalCmp evaluates a ground comparison.
func evalCmp(op, l, r string) (bool, error) {
	switch op {
	case "=":
		return l == r, nil
	case "!=":
		return l != r, nil
	case "<":
		return cmpConst(l, r) < 0, nil
	case "<=":
		return cmpConst(l, r) <= 0, nil
	case ">":
		return cmpConst(l, r) > 0, nil
	case ">=":
		return cmpConst(l, r) >= 0, nil
	}
	return false, fmt.Errorf("foquery: unknown comparison operator %q", op)
}

// cmpConst orders constants numerically when both parse as integers,
// lexicographically otherwise.
func cmpConst(l, r string) int {
	li, lok := atoi(l)
	ri, rok := atoi(r)
	if lok && rok {
		switch {
		case li < ri:
			return -1
		case li > ri:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(l, r)
}

func atoi(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	neg := false
	i := 0
	if s[0] == '-' {
		neg = true
		i = 1
		if len(s) == 1 {
			return 0, false
		}
	}
	var n int64
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}
