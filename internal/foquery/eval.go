package foquery

import (
	"fmt"
	"sort"

	"repro/internal/relation"
	"repro/internal/term"
)

// Env is an evaluation environment: the instance queried and the
// quantification domain (active-domain semantics; the domain is the
// active domain of the instance extended with the query constants,
// which makes evaluation generic in the sense of Section 2, footnote 3).
type Env struct {
	Inst   *relation.Instance
	Domain []string
}

// NewEnv builds an evaluation environment for a formula over an
// instance, using the instance's active domain extended with the
// formula's constants.
func NewEnv(inst *relation.Instance, f Formula) *Env {
	dom := inst.ActiveDomain()
	seen := make(map[string]bool, len(dom))
	for _, d := range dom {
		seen[d] = true
	}
	for _, c := range Constants(f) {
		if !seen[c] {
			seen[c] = true
			dom = append(dom, c)
		}
	}
	sort.Strings(dom)
	return &Env{Inst: inst, Domain: dom}
}

// Eval evaluates a formula under a (total, for the formula's free
// variables) assignment. It returns an error if a free variable is
// unbound.
func (e *Env) Eval(f Formula, s term.Subst) (bool, error) {
	switch g := f.(type) {
	case Atom:
		a := s.Apply(g.A)
		for _, t := range a.Args {
			if t.IsVar {
				return false, fmt.Errorf("foquery: unbound variable %s in atom %s", t.Name, g.A)
			}
		}
		return e.Inst.HasAtom(a), nil
	case Cmp:
		l := s.ApplyTerm(g.L)
		r := s.ApplyTerm(g.R)
		if l.IsVar || r.IsVar {
			return false, fmt.Errorf("foquery: unbound variable in comparison %s", g)
		}
		return evalCmp(g.Op, l.Name, r.Name)
	case Not:
		v, err := e.Eval(g.F, s)
		return !v, err
	case And:
		for _, h := range g.Fs {
			v, err := e.Eval(h, s)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	case Or:
		for _, h := range g.Fs {
			v, err := e.Eval(h, s)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	case Implies:
		a, err := e.Eval(g.A, s)
		if err != nil {
			return false, err
		}
		if !a {
			return true, nil
		}
		return e.Eval(g.B, s)
	case Quant:
		return e.evalQuant(g, s)
	}
	return false, fmt.Errorf("foquery: unknown formula type %T", f)
}

func (e *Env) evalQuant(q Quant, s term.Subst) (bool, error) {
	return e.quantRec(q, s, 0)
}

func (e *Env) quantRec(q Quant, s term.Subst, i int) (bool, error) {
	if i == len(q.Vars) {
		return e.Eval(q.Body, s)
	}
	v := q.Vars[i]
	saved, had := s[v]
	defer func() {
		if had {
			s[v] = saved
		} else {
			delete(s, v)
		}
	}()
	for _, d := range e.Domain {
		s[v] = term.C(d)
		ok, err := e.quantRec(q, s, i+1)
		if err != nil {
			return false, err
		}
		if q.Forall && !ok {
			return false, nil
		}
		if !q.Forall && ok {
			return true, nil
		}
	}
	return q.Forall, nil
}

// Answers evaluates a query with free variables and returns the
// satisfying assignments projected onto vars, as tuples in the order of
// vars, sorted and de-duplicated. It uses a generator/filter planner:
// positive atoms generate candidate bindings by matching against the
// instance; residual subformulas act as filters; any variable not bound
// by a generator falls back to active-domain enumeration.
func Answers(inst *relation.Instance, f Formula, vars []string) ([]relation.Tuple, error) {
	env := NewEnv(inst, f)
	free := FreeVars(f)
	freeSet := make(map[string]bool, len(free))
	for _, v := range free {
		freeSet[v] = true
	}
	for _, v := range vars {
		if !freeSet[v] {
			// Requested variable does not occur; it ranges over the
			// whole domain, which is almost always a query bug.
			return nil, fmt.Errorf("foquery: requested variable %s is not free in the query", v)
		}
	}
	subs, err := env.bindings(f, []term.Subst{term.NewSubst()})
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []relation.Tuple
	for _, s := range subs {
		tup := make(relation.Tuple, len(vars))
		for i, v := range vars {
			t := s.Lookup(term.V(v))
			if t.IsVar {
				return nil, fmt.Errorf("foquery: variable %s unbound in answer", v)
			}
			tup[i] = t.Name
		}
		k := tup.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, tup)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// Holds evaluates a sentence (no free variables) over the instance.
func Holds(inst *relation.Instance, f Formula) (bool, error) {
	if fv := FreeVars(f); len(fv) > 0 {
		return false, fmt.Errorf("foquery: Holds on open formula with free vars %v", fv)
	}
	env := NewEnv(inst, f)
	return env.Eval(f, term.NewSubst())
}

// bindings computes, for each input assignment, the set of extensions
// that satisfy f, binding f's free variables.
func (e *Env) bindings(f Formula, in []term.Subst) ([]term.Subst, error) {
	switch g := f.(type) {
	case Atom:
		// Candidates come from the instance's per-column indexes; the
		// clone happens only for the (index-filtered) matches that are
		// kept, and the enumeration order matches a full sorted scan.
		var out []term.Subst
		fact := term.Atom{}
		for _, s := range in {
			pat := s.Apply(g.A)
			fact.Pred = pat.Pred
			for _, tup := range e.Inst.MatchingTuples(pat) {
				fact.Args = term.ConstArgs(fact.Args[:0], tup)
				s2 := s.Clone()
				if term.Match(pat, fact, s2) {
					out = append(out, s2)
				}
			}
		}
		return out, nil
	case And:
		// Plan: generator conjuncts (atoms, existential wrappers of
		// generators, nested And/Or of generators) first, in an order
		// that maximizes early binding; filters afterwards, with
		// domain-enumeration fallback for still-unbound variables.
		return e.bindAnd(g.Fs, in)
	case Or:
		var out []term.Subst
		for _, h := range g.Fs {
			bs, err := e.bindings(h, in)
			if err != nil {
				return nil, err
			}
			out = append(out, bs...)
		}
		return out, nil
	case Quant:
		if !g.Forall {
			// Bind the body, then forget the quantified variables.
			bs, err := e.bindings(g.Body, in)
			if err != nil {
				return nil, err
			}
			out := make([]term.Subst, 0, len(bs))
			for _, s := range bs {
				s2 := s.Clone()
				for _, v := range g.Vars {
					delete(s2, v)
				}
				out = append(out, s2)
			}
			return out, nil
		}
		return e.filter(f, in)
	default:
		return e.filter(f, in)
	}
}

// bindAnd evaluates a conjunction with generator-first planning.
func (e *Env) bindAnd(fs []Formula, in []term.Subst) ([]term.Subst, error) {
	gens, filters := splitGenerators(fs)
	cur := in
	var err error
	for _, g := range gens {
		cur, err = e.bindings(g, cur)
		if err != nil {
			return nil, err
		}
		if len(cur) == 0 {
			return nil, nil
		}
	}
	for _, f := range filters {
		cur, err = e.filter(f, cur)
		if err != nil {
			return nil, err
		}
		if len(cur) == 0 {
			return nil, nil
		}
	}
	return cur, nil
}

// splitGenerators separates conjuncts that can generate bindings from
// pure filters.
func splitGenerators(fs []Formula) (gens, filters []Formula) {
	for _, f := range fs {
		if isGenerator(f) {
			gens = append(gens, f)
		} else {
			filters = append(filters, f)
		}
	}
	return gens, filters
}

func isGenerator(f Formula) bool {
	switch g := f.(type) {
	case Atom:
		return true
	case And:
		for _, h := range g.Fs {
			if isGenerator(h) {
				return true
			}
		}
		return false
	case Or:
		for _, h := range g.Fs {
			if !isGenerator(h) {
				return false
			}
		}
		return true
	case Quant:
		return !g.Forall && isGenerator(g.Body)
	default:
		return false
	}
}

// filter keeps the assignments under which f holds, enumerating the
// domain for any of f's free variables that are still unbound.
func (e *Env) filter(f Formula, in []term.Subst) ([]term.Subst, error) {
	var out []term.Subst
	fv := FreeVars(f)
	for _, s := range in {
		var unbound []string
		for _, v := range fv {
			if s.Lookup(term.V(v)).IsVar {
				unbound = append(unbound, v)
			}
		}
		if len(unbound) == 0 {
			ok, err := e.Eval(f, s)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, s)
			}
			continue
		}
		// Fallback: enumerate unbound variables over the domain.
		var enum func(i int, s term.Subst) error
		enum = func(i int, s term.Subst) error {
			if i == len(unbound) {
				ok, err := e.Eval(f, s)
				if err != nil {
					return err
				}
				if ok {
					out = append(out, s.Clone())
				}
				return nil
			}
			for _, d := range e.Domain {
				s[unbound[i]] = term.C(d)
				if err := enum(i+1, s); err != nil {
					return err
				}
			}
			delete(s, unbound[i])
			return nil
		}
		if err := enum(0, s.Clone()); err != nil {
			return nil, err
		}
	}
	return out, nil
}
