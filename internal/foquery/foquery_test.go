package foquery

import (
	"reflect"
	"testing"

	"repro/internal/relation"
)

func mkInst(facts map[string][]relation.Tuple) *relation.Instance {
	in := relation.NewInstance()
	for rel, ts := range facts {
		for _, t := range ts {
			in.Insert(rel, t)
		}
	}
	return in
}

// example1Instance is the global instance r of the paper's Example 1.
func example1Instance() *relation.Instance {
	return mkInst(map[string][]relation.Tuple{
		"r1": {{"a", "b"}, {"s", "t"}},
		"r2": {{"c", "d"}, {"a", "e"}},
		"r3": {{"a", "f"}, {"s", "u"}},
	})
}

func answers(t *testing.T, in *relation.Instance, q string, vars ...string) []relation.Tuple {
	t.Helper()
	f, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	out, err := Answers(in, f, vars)
	if err != nil {
		t.Fatalf("answers %q: %v", q, err)
	}
	return out
}

func TestParseRendering(t *testing.T) {
	cases := []struct{ in, out string }{
		{"r1(X,Y)", "r1(X,Y)"},
		{"r1(X,Y) | r2(X,Y)", "r1(X,Y) | r2(X,Y)"},
		{"!r1(X,a)", "!r1(X,a)"},
		{"exists Y (r1(X,Y) & r2(Y,Z))", "exists Y (r1(X,Y) & r2(Y,Z))"},
		{"forall Z (r3(X,Z) -> Z = Y)", "forall Z (r3(X,Z) -> Z = Y)"},
		{"X != Y", "X != Y"},
	}
	for _, c := range cases {
		f, err := Parse(c.in)
		if err != nil {
			t.Fatalf("parse %q: %v", c.in, err)
		}
		if f.String() != c.out {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, f.String(), c.out)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"r1(X,",
		"r1(X) &",
		"exists x r1(x)", // quantified name must be a variable
		"r1(X)) extra",
		"X ~ Y",
		"-> r1(X)",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestFreeVars(t *testing.T) {
	f := MustParse("exists Y (r1(X,Y) & r2(Y,Z)) & forall W (r3(W) -> W = X)")
	got := FreeVars(f)
	want := []string{"X", "Z"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FreeVars = %v, want %v", got, want)
	}
}

func TestSimpleAtomAnswers(t *testing.T) {
	in := example1Instance()
	got := answers(t, in, "r1(X,Y)", "X", "Y")
	want := []relation.Tuple{{"a", "b"}, {"s", "t"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestUnionQuery(t *testing.T) {
	// Q': R1(x,y) ∨ R2(x,y) — the first rewriting step of Example 2.
	in := example1Instance()
	got := answers(t, in, "r1(X,Y) | r2(X,Y)", "X", "Y")
	want := []relation.Tuple{{"a", "b"}, {"a", "e"}, {"c", "d"}, {"s", "t"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestExample2RewrittenQuery(t *testing.T) {
	// Q'' — formula (1) of the paper:
	//   [R1(x,y) ∧ ∀z1(R3(x,z1) ∧ ¬∃z2 R2(x,z2) → z1 = y)] ∨ R2(x,y)
	// over Example 1's instance must yield exactly (a,b),(c,d),(a,e).
	in := example1Instance()
	q := "(r1(X,Y) & forall Z1 (r3(X,Z1) & !(exists Z2 r2(X,Z2)) -> Z1 = Y)) | r2(X,Y)"
	got := answers(t, in, q, "X", "Y")
	want := []relation.Tuple{{"a", "b"}, {"a", "e"}, {"c", "d"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v (paper Example 2)", got, want)
	}
}

func TestJoinQuery(t *testing.T) {
	in := mkInst(map[string][]relation.Tuple{
		"r": {{"a", "b"}, {"b", "c"}},
		"s": {{"b", "x"}, {"c", "y"}},
	})
	got := answers(t, in, "exists Y (r(X,Y) & s(Y,Z))", "X", "Z")
	want := []relation.Tuple{{"a", "x"}, {"b", "y"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestNegationFilter(t *testing.T) {
	in := mkInst(map[string][]relation.Tuple{
		"r": {{"a"}, {"b"}},
		"s": {{"a"}},
	})
	got := answers(t, in, "r(X) & !s(X)", "X")
	want := []relation.Tuple{{"b"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestComparisonFilters(t *testing.T) {
	in := mkInst(map[string][]relation.Tuple{
		"r": {{"1"}, {"2"}, {"10"}},
	})
	got := answers(t, in, "r(X) & X < 10", "X")
	want := []relation.Tuple{{"1"}, {"2"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("numeric compare: got %v, want %v", got, want)
	}
	got = answers(t, in, "r(X) & X != 2", "X")
	want = []relation.Tuple{{"1"}, {"10"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("!=: got %v, want %v", got, want)
	}
}

func TestHolds(t *testing.T) {
	in := example1Instance()
	cases := []struct {
		q    string
		want bool
	}{
		// Σ(P1,P2) is violated by r: R2(c,d) has no R1(c,d).
		{"forall X,Y (r2(X,Y) -> r1(X,Y))", false},
		// Σ(P1,P3) is violated by r: R1(a,b) and R3(a,f) with b ≠ f.
		{"forall X,Y,Z (r1(X,Y) & r3(X,Z) -> Y = Z)", false},
		{"exists X,Y r1(X,Y)", true},
		{"forall X,Y (r1(X,Y) -> r1(X,Y))", true},
		{"exists X (r1(X,b) & r3(X,f))", true},
	}
	for _, c := range cases {
		f := MustParse(c.q)
		got, err := Holds(in, f)
		if err != nil {
			t.Fatalf("Holds(%q): %v", c.q, err)
		}
		if got != c.want {
			t.Errorf("Holds(%q) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestHoldsOpenFormulaError(t *testing.T) {
	in := example1Instance()
	if _, err := Holds(in, MustParse("r1(X,Y)")); err == nil {
		t.Fatal("Holds on open formula should error")
	}
}

func TestAnswersUnknownVarError(t *testing.T) {
	in := example1Instance()
	f := MustParse("r1(X,Y)")
	if _, err := Answers(in, f, []string{"Z"}); err == nil {
		t.Fatal("Answers with non-free variable should error")
	}
}

func TestFilterFallbackUnboundVar(t *testing.T) {
	// A pure-filter query: the variable is bound only by domain
	// enumeration. X ranges over the active domain.
	in := mkInst(map[string][]relation.Tuple{"r": {{"a"}, {"b"}}})
	got := answers(t, in, "!r(X) | r(X)", "X")
	if len(got) != 2 {
		t.Fatalf("domain enumeration: got %v", got)
	}
	got = answers(t, in, "!r(X) & X = a", "X")
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestImplicationEval(t *testing.T) {
	in := mkInst(map[string][]relation.Tuple{"r": {{"a"}}, "s": {{"a"}}})
	ok, err := Holds(in, MustParse("forall X (r(X) -> s(X))"))
	if err != nil || !ok {
		t.Fatalf("implication eval: %v %v", ok, err)
	}
	in2 := mkInst(map[string][]relation.Tuple{"r": {{"a"}, {"b"}}, "s": {{"a"}}})
	ok, err = Holds(in2, MustParse("forall X (r(X) -> s(X))"))
	if err != nil || ok {
		t.Fatalf("implication should fail: %v %v", ok, err)
	}
}

func TestConstantsExtendDomain(t *testing.T) {
	// The constant q appears only in the query; active-domain semantics
	// must extend the domain with it for the existential to see it.
	in := mkInst(map[string][]relation.Tuple{"r": {{"a"}}})
	ok, err := Holds(in, MustParse("exists X (X = q)"))
	if err != nil || !ok {
		t.Fatalf("query constants must join the domain: %v %v", ok, err)
	}
}

func TestNestedQuantifiers(t *testing.T) {
	in := mkInst(map[string][]relation.Tuple{
		"edge": {{"a", "b"}, {"b", "c"}, {"a", "c"}},
	})
	// Every node with an outgoing edge reaches c in ≤ 2 steps.
	ok, err := Holds(in, MustParse(
		"forall X,Y (edge(X,Y) -> (edge(X,c) | exists Z (edge(X,Z) & edge(Z,c))))"))
	if err != nil || !ok {
		t.Fatalf("nested quantifiers: %v %v", ok, err)
	}
}

func TestOrAnswersWithSharedVars(t *testing.T) {
	in := mkInst(map[string][]relation.Tuple{
		"r": {{"a", "b"}},
		"s": {{"c", "d"}},
	})
	got := answers(t, in, "r(X,Y) | s(X,Y)", "X", "Y")
	want := []relation.Tuple{{"a", "b"}, {"c", "d"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestConstantInAtomPattern(t *testing.T) {
	in := example1Instance()
	got := answers(t, in, "r1(a,Y)", "Y")
	want := []relation.Tuple{{"b"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	in := mkInst(map[string][]relation.Tuple{
		"r": {{"a", "a"}, {"a", "b"}},
	})
	got := answers(t, in, "r(X,X)", "X")
	want := []relation.Tuple{{"a"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}
