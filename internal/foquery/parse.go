package foquery

import (
	"fmt"
	"strings"

	"repro/internal/term"
)

// Parse parses a first-order formula in the package's concrete syntax.
//
// Grammar (precedence from weakest to strongest):
//
//	formula := or ('->' formula)?            right-associative implication
//	or      := and ('|' and)*
//	and     := unary ('&' unary)*
//	unary   := '!' unary
//	        | 'exists' var (',' var)* unary
//	        | 'forall' var (',' var)* unary
//	        | '(' formula ')'
//	        | atom | comparison
//	atom    := ident '(' term (',' term)* ')'
//	cmp     := term ('='|'!='|'<'|'<='|'>'|'>=') term
//
// Identifiers starting with an upper-case letter or '_' are variables;
// all other identifiers and numbers are constants. 'exists' and
// 'forall' are reserved words.
func Parse(input string) (Formula, error) {
	p := &parser{toks: lex(input)}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("foquery: trailing input at %q", p.peek().text)
	}
	return f, nil
}

// MustParse is Parse that panics on error; for tests and fixed queries.
func MustParse(input string) Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

type token struct {
	text string
	pos  int
}

func lex(s string) []token {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(c):
			j := i + 1
			for j < len(s) && isIdentChar(s[j]) {
				j++
			}
			toks = append(toks, token{s[i:j], i})
			i = j
		case c == '-' && i+1 < len(s) && s[i+1] == '>':
			toks = append(toks, token{"->", i})
			i += 2
		case c == '!' && i+1 < len(s) && s[i+1] == '=':
			toks = append(toks, token{"!=", i})
			i += 2
		case c == '<' && i+1 < len(s) && s[i+1] == '=':
			toks = append(toks, token{"<=", i})
			i += 2
		case c == '>' && i+1 < len(s) && s[i+1] == '=':
			toks = append(toks, token{">=", i})
			i += 2
		case strings.ContainsRune("(),&|!=<>", rune(c)):
			toks = append(toks, token{string(c), i})
			i++
		case c == '-' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			toks = append(toks, token{s[i:j], i})
			i = j
		default:
			toks = append(toks, token{"\x00" + string(c), i})
			i++
		}
	}
	return toks
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.atEOF() {
		return token{"", -1}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("foquery: expected %q, got %q", text, t.text)
	}
	return nil
}

func (p *parser) formula() (Formula, error) {
	left, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().text == "->" {
		p.next()
		right, err := p.formula()
		if err != nil {
			return nil, err
		}
		return Implies{A: left, B: right}, nil
	}
	return left, nil
}

func (p *parser) orExpr() (Formula, error) {
	first, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	fs := []Formula{first}
	for p.peek().text == "|" {
		p.next()
		f, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	if len(fs) == 1 {
		return fs[0], nil
	}
	return Or{Fs: fs}, nil
}

func (p *parser) andExpr() (Formula, error) {
	first, err := p.unary()
	if err != nil {
		return nil, err
	}
	fs := []Formula{first}
	for p.peek().text == "&" {
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	if len(fs) == 1 {
		return fs[0], nil
	}
	return And{Fs: fs}, nil
}

func (p *parser) unary() (Formula, error) {
	t := p.peek()
	switch {
	case t.text == "!":
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not{F: f}, nil
	case t.text == "exists" || t.text == "forall":
		p.next()
		vars, err := p.varList()
		if err != nil {
			return nil, err
		}
		body, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Quant{Forall: t.text == "forall", Vars: vars, Body: body}, nil
	case t.text == "(":
		p.next()
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	default:
		return p.atomOrCmp()
	}
}

func (p *parser) varList() ([]string, error) {
	var vars []string
	for {
		t := p.next()
		if !isIdent(t.text) {
			return nil, fmt.Errorf("foquery: expected variable, got %q", t.text)
		}
		if !IsVarName(t.text) {
			return nil, fmt.Errorf("foquery: quantified name %q must be a variable (start with upper-case or '_')", t.text)
		}
		vars = append(vars, t.text)
		if p.peek().text != "," {
			return vars, nil
		}
		p.next()
	}
}

func (p *parser) atomOrCmp() (Formula, error) {
	t := p.next()
	if t.text == "" {
		return nil, fmt.Errorf("foquery: unexpected end of input")
	}
	if !isIdent(t.text) && !isNumber(t.text) {
		return nil, fmt.Errorf("foquery: unexpected token %q", t.text)
	}
	if p.peek().text == "(" && isIdent(t.text) && !IsVarName(t.text) {
		p.next()
		var args []term.Term
		if p.peek().text != ")" {
			for {
				tt := p.next()
				if !isIdent(tt.text) && !isNumber(tt.text) {
					return nil, fmt.Errorf("foquery: bad term %q in atom %s", tt.text, t.text)
				}
				args = append(args, MkTerm(tt.text))
				if p.peek().text != "," {
					break
				}
				p.next()
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return Atom{A: term.Atom{Pred: t.text, Args: args}}, nil
	}
	// Comparison.
	op := p.next().text
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("foquery: expected comparison operator after %q, got %q", t.text, op)
	}
	rt := p.next()
	if !isIdent(rt.text) && !isNumber(rt.text) {
		return nil, fmt.Errorf("foquery: bad right operand %q", rt.text)
	}
	return Cmp{Op: op, L: MkTerm(t.text), R: MkTerm(rt.text)}, nil
}

func isIdent(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return true
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	i := 0
	if s[0] == '-' {
		i = 1
		if len(s) == 1 {
			return false
		}
	}
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// IsVarName reports whether an identifier denotes a variable under the
// repository-wide convention: variables start with an upper-case letter
// or underscore.
func IsVarName(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c == '_' || (c >= 'A' && c <= 'Z')
}

// MkTerm converts an identifier or number to a term using the variable
// naming convention.
func MkTerm(s string) term.Term {
	if IsVarName(s) {
		return term.V(s)
	}
	return term.C(s)
}
