package foquery

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/term"
)

// bruteAnswers enumerates all assignments of the free variables over
// the evaluation domain and keeps those satisfying the formula —
// the definitional active-domain semantics, used as an oracle for the
// generator/filter planner in Answers.
func bruteAnswers(t *testing.T, inst *relation.Instance, f Formula, vars []string) []relation.Tuple {
	t.Helper()
	env := NewEnv(inst, f)
	free := FreeVars(f)
	var out []relation.Tuple
	seen := map[string]bool{}
	var rec func(i int, s term.Subst)
	rec = func(i int, s term.Subst) {
		if i == len(free) {
			ok, err := env.Eval(f, s)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return
			}
			tup := make(relation.Tuple, len(vars))
			for j, v := range vars {
				tup[j] = s.Lookup(term.V(v)).Name
			}
			if !seen[tup.Key()] {
				seen[tup.Key()] = true
				out = append(out, tup)
			}
			return
		}
		for _, d := range env.Domain {
			s[free[i]] = term.C(d)
			rec(i+1, s)
		}
		delete(s, free[i])
	}
	rec(0, term.NewSubst())
	sortTuples(out)
	return out
}

func sortTuples(ts []relation.Tuple) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Key() < ts[j-1].Key(); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// randomFormula builds a random safe-ish formula over r/2, s/2 with
// free variables X, Y.
func randomFormula(rng *rand.Rand, depth int) Formula {
	if depth == 0 {
		switch rng.Intn(3) {
		case 0:
			return Atom{A: term.NewAtom("r", term.V("X"), term.V("Y"))}
		case 1:
			return Atom{A: term.NewAtom("s", term.V("X"), term.V("Y"))}
		default:
			return Cmp{Op: "!=", L: term.V("X"), R: term.V("Y")}
		}
	}
	switch rng.Intn(5) {
	case 0:
		return And{Fs: []Formula{randomFormula(rng, depth-1), randomFormula(rng, depth-1)}}
	case 1:
		return Or{Fs: []Formula{randomFormula(rng, depth-1), randomFormula(rng, depth-1)}}
	case 2:
		return Not{F: randomFormula(rng, depth-1)}
	case 3:
		// exists Z (r(X,Z) & sub) keeps X, Y free.
		return And{Fs: []Formula{
			Quant{Vars: []string{"Z"}, Body: Atom{A: term.NewAtom("r", term.V("X"), term.V("Z"))}},
			randomFormula(rng, depth-1),
		}}
	default:
		return Quant{Forall: true, Vars: []string{"W"},
			Body: Implies{
				A: Atom{A: term.NewAtom("s", term.V("X"), term.V("W"))},
				B: randomFormula(rng, depth-1),
			}}
	}
}

// TestAnswersAgainstBruteForce cross-checks the planner against the
// definitional evaluation on random instances and formulas.
func TestAnswersAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dom := []string{"a", "b", "c"}
	for trial := 0; trial < 150; trial++ {
		inst := relation.NewInstance()
		for _, rel := range []string{"r", "s"} {
			for i := 0; i < rng.Intn(4); i++ {
				inst.Insert(rel, relation.Tuple{dom[rng.Intn(3)], dom[rng.Intn(3)]})
			}
		}
		f := randomFormula(rng, 1+rng.Intn(2))
		vars := []string{}
		for _, v := range FreeVars(f) {
			vars = append(vars, v)
		}
		if len(vars) == 0 {
			continue
		}
		got, err := Answers(inst, f, vars)
		if err != nil {
			t.Fatalf("trial %d: %v (formula %s)", trial, err, f)
		}
		want := bruteAnswers(t, inst, f, vars)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: formula %s over %s\nplanner: %v\nbrute:   %v",
				trial, f, inst, got, want)
		}
	}
}

// TestHoldsMatchesAnswersEmptiness uses testing/quick: for the atomic
// query, Answers is non-empty iff the existential closure Holds.
func TestHoldsMatchesAnswersEmptiness(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		inst := relation.NewInstance()
		for _, p := range pairs {
			inst.Insert("r", relation.Tuple{cname(p[0]), cname(p[1])})
		}
		q := MustParse("r(X,Y)")
		ans, err := Answers(inst, q, []string{"X", "Y"})
		if err != nil {
			return false
		}
		closed := MustParse("exists X,Y r(X,Y)")
		ok, err := Holds(inst, closed)
		if err != nil {
			return false
		}
		return (len(ans) > 0) == ok && len(ans) == inst.Count("r")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func cname(b uint8) string { return string(rune('a' + int(b)%5)) }
