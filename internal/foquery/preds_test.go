package foquery

import (
	"reflect"
	"testing"
)

// TestPreds covers the relevance edge cases of the slicing subsystem:
// predicates under negation, inside quantifiers, on both sides of an
// implication, and comparison-only formulas (no predicates at all).
func TestPreds(t *testing.T) {
	cases := []struct {
		query string
		want  []string
	}{
		{"r1(X,Y)", []string{"r1"}},
		{"r1(X,Y) & !r2(Y,X)", []string{"r1", "r2"}},
		{"!(!(r3(X,Y)))", []string{"r3"}},
		{"X != Y", nil},
		{"r1(X,Y) & X < Y", []string{"r1"}},
		{"forall Z (r2(X,Z) -> r3(Z,Y))", []string{"r2", "r3"}},
		{"exists Z (r1(X,Z) | !r4(Z,Z))", []string{"r1", "r4"}},
		{"(r1(X,Y) -> r2(X,Y)) & r1(X,Y)", []string{"r1", "r2"}},
	}
	for _, tc := range cases {
		got := Preds(MustParse(tc.query))
		if len(got) == 0 && len(tc.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Preds(%s) = %v, want %v", tc.query, got, tc.want)
		}
	}
}
