package peernet

import (
	"encoding/gob"
	"net"
	"sync"
	"testing"
	"time"
)

// tempNetErr is a transient net.Error, the shape Accept returns under
// fd exhaustion or aborted handshakes.
type tempNetErr struct{}

func (tempNetErr) Error() string   { return "transient accept failure" }
func (tempNetErr) Timeout() bool   { return true }
func (tempNetErr) Temporary() bool { return true }

// scriptedListener replays a script of Accept results, then blocks
// until closed. It counts Accept calls so tests can detect spinning.
type scriptedListener struct {
	mu      sync.Mutex
	script  []func() (net.Conn, error)
	calls   int
	blockCh chan struct{}
	once    sync.Once
}

func newScriptedListener(script ...func() (net.Conn, error)) *scriptedListener {
	return &scriptedListener{script: script, blockCh: make(chan struct{})}
}

func (l *scriptedListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	l.calls++
	var next func() (net.Conn, error)
	if len(l.script) > 0 {
		next = l.script[0]
		l.script = l.script[1:]
	}
	l.mu.Unlock()
	if next != nil {
		return next()
	}
	<-l.blockCh
	return nil, net.ErrClosed
}

func (l *scriptedListener) Calls() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.calls
}

func (l *scriptedListener) Close() error {
	l.once.Do(func() { close(l.blockCh) })
	return nil
}

func (l *scriptedListener) Addr() net.Addr {
	return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
}

// TestAcceptLoopBacksOffOnTransientErrors: a listener failing every
// Accept with a transient error must be polled on the backoff schedule,
// not spun on. 80ms of constant failure admits at most ~6 attempts
// (5+10+20+40ms...); a spinning loop would make thousands.
func TestAcceptLoopBacksOffOnTransientErrors(t *testing.T) {
	transient := func() (net.Conn, error) { return nil, tempNetErr{} }
	script := make([]func() (net.Conn, error), 0, 10000)
	for i := 0; i < 10000; i++ {
		script = append(script, transient)
	}
	ln := newScriptedListener(script...)
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		acceptLoop(ln, func(Request) Response { return Response{} }, done, time.Second)
		close(exited)
	}()
	time.Sleep(80 * time.Millisecond)
	calls := ln.Calls()
	close(done)
	ln.Close()
	select {
	case <-exited:
	case <-time.After(2 * time.Second):
		t.Fatal("acceptLoop did not exit after shutdown")
	}
	if calls > 20 {
		t.Fatalf("accept loop is spinning: %d Accept calls in 80ms", calls)
	}
	if calls < 2 {
		t.Fatalf("accept loop stopped retrying transient errors: %d calls", calls)
	}
}

// TestAcceptLoopExitsOnPermanentError: an Accept error that is not a
// net.Error means the listener is broken — the loop must exit rather
// than retry forever.
func TestAcceptLoopExitsOnPermanentError(t *testing.T) {
	ln := newScriptedListener(func() (net.Conn, error) {
		return nil, errPermanent
	})
	defer ln.Close()
	done := make(chan struct{})
	defer close(done)
	exited := make(chan struct{})
	go func() {
		acceptLoop(ln, func(Request) Response { return Response{} }, done, time.Second)
		close(exited)
	}()
	select {
	case <-exited:
	case <-time.After(2 * time.Second):
		t.Fatal("acceptLoop did not exit on a permanent error")
	}
	if c := ln.Calls(); c != 1 {
		t.Fatalf("permanent error should stop the loop after one call, got %d", c)
	}
}

var errPermanent = &permanentErr{}

type permanentErr struct{}

func (*permanentErr) Error() string { return "listener torn down" }

// TestAcceptLoopRecoversAfterTransientError: transient failures delay
// but do not disable serving — a connection arriving after two errors
// is still served.
func TestAcceptLoopRecoversAfterTransientError(t *testing.T) {
	server, client := net.Pipe()
	transient := func() (net.Conn, error) { return nil, tempNetErr{} }
	ln := newScriptedListener(transient, transient,
		func() (net.Conn, error) { return server, nil })
	defer ln.Close()
	done := make(chan struct{})
	defer close(done)
	go acceptLoop(ln, func(req Request) Response {
		return Response{Relations: []string{"served-" + string(req.Op)}}
	}, done, time.Second)
	if err := gob.NewEncoder(client).Encode(&Request{Op: OpRelations}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := gob.NewDecoder(client).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Relations) != 1 || resp.Relations[0] != "served-relations" {
		t.Fatalf("resp = %+v", resp)
	}
}

// TestServeConnIdleClientTimeout: a client that connects and never
// sends a request is disconnected once the IO timeout elapses, instead
// of pinning the serving goroutine forever.
func TestServeConnIdleClientTimeout(t *testing.T) {
	tr := &TCP{IOTimeout: 50 * time.Millisecond}
	bound, closer, err := tr.Listen("127.0.0.1:0", func(Request) Response { return Response{} })
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	conn, err := net.Dial("tcp", bound)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing; the server must close the connection on its own.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server should have closed the idle connection")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("idle connection lingered %v, want closure near the 50ms IO timeout", elapsed)
	}
}
