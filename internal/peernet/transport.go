// Package peernet is the networking substrate the paper assumes: peers
// live at network endpoints, answer queries against their local data
// and export their specifications, so that a queried peer can gather
// its neighbours' relations at query time ("P will first issue a query
// to P2 to retrieve the tuples in R2", Example 2) and, in the
// transitive case, assemble the combined specification program of
// Section 4.3 from exported peer fragments.
//
// Two transports are provided: an in-process transport with
// configurable latency (tests, benchmarks) and a TCP transport with
// gob encoding (deployments).
package peernet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Op selects a remote operation.
type Op string

// Remote operations.
const (
	// OpRelations lists the peer's relations.
	OpRelations Op = "relations"
	// OpFetch retrieves all tuples of one relation.
	OpFetch Op = "fetch"
	// OpFetchBatch retrieves several relations in one round-trip: the
	// batched counterpart of OpFetch, so a peer needing k of a
	// neighbour's relations pays one link latency instead of k.
	OpFetchBatch Op = "fetchbatch"
	// OpQuery evaluates a first-order query over the peer's local
	// instance (no repair semantics; the remote peer's raw data).
	OpQuery Op = "query"
	// OpExport returns the peer's specification (schema, facts, DECs,
	// trust) in the sysdsl format plus its neighbour addresses.
	OpExport Op = "export"
	// OpExportSpec returns the specification without facts (schema,
	// DECs, trust, neighbour addresses only): the cheap first round of
	// a query-relevance-sliced snapshot, which plans which relations to
	// fetch before any data moves.
	OpExportSpec Op = "exportspec"
	// OpPCA asks the remote peer for its own peer consistent answers
	// to an atomic query (peer-to-peer query delegation).
	OpPCA Op = "pca"
)

// Request is a wire request. Tuples travel as plain strings: interning
// is a node-local concern, ids are never meaningful across peers.
type Request struct {
	Op    Op
	Rel   string
	Rels  []string // OpFetchBatch: the relations to retrieve
	Query string
	Vars  []string
	// Transitive selects the Section 4.3 semantics for OpPCA.
	Transitive bool
	// Sliced asks OpPCA to answer through the query-relevance-sliced
	// pipeline (Node.PeerConsistentAnswersFor): the remote peer then
	// fetches only the relations its slice needs and may serve the
	// answers from its slice-keyed cache. Answers are identical either
	// way.
	Sliced bool
	// Delegate asks OpPCA to answer through the delegated distributed
	// path (Node.DelegatedAnswers): the remote peer decomposes its own
	// relevance slice per owning peer and fans the sub-queries out in
	// turn, falling back to its centralized sliced path whenever
	// delegation is not provably exact. Answers are identical either
	// way.
	Delegate bool
	// HopBudget bounds further delegation depth when Delegate is set:
	// each hop decrements it, and a peer receiving 0 answers centrally
	// instead of delegating. Zero-valued requests therefore never
	// recurse; initiators start from DefaultHopBudget.
	HopBudget int
	// Visited lists the peer ids already on the delegation path (the
	// initiator first). A peer whose plan would delegate to a visited
	// peer falls back to the centralized path, so cyclic overlays
	// terminate — and then surface the same cyclic-trust error as the
	// centralized path does.
	Visited []string
}

// Response is a wire response.
type Response struct {
	Err       string
	Relations []string
	Tuples    [][]string
	RelTuples map[string][][]string // OpFetchBatch: relation -> tuples
	Spec      string
	Neighbors map[string]string // peer id -> address
}

// Handler serves requests.
type Handler func(Request) Response

// Transport connects peers.
type Transport interface {
	// Listen binds a handler; the returned address is dialable (useful
	// with ":0" style requests). The closer stops serving.
	Listen(addr string, h Handler) (bound string, close func(), err error)
	// Call performs one request.
	Call(addr string, req Request) (Response, error)
}

// --- in-process transport --------------------------------------------------

// InProc is an in-memory transport with configurable per-call latency,
// used by tests and by the network benchmarks to model link delay.
type InProc struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	next     int
	// Latency is added to every Call.
	Latency time.Duration
}

// NewInProc creates an empty in-process network.
func NewInProc() *InProc { return &InProc{handlers: make(map[string]Handler)} }

// Listen implements Transport.
func (t *InProc) Listen(addr string, h Handler) (string, func(), error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if addr == "" || addr == ":0" {
		t.next++
		addr = fmt.Sprintf("inproc-%d", t.next)
	}
	if _, dup := t.handlers[addr]; dup {
		return "", nil, fmt.Errorf("peernet: address %s already bound", addr)
	}
	t.handlers[addr] = h
	closer := func() {
		t.mu.Lock()
		delete(t.handlers, addr)
		t.mu.Unlock()
	}
	return addr, closer, nil
}

// Call implements Transport.
func (t *InProc) Call(addr string, req Request) (Response, error) {
	if t.Latency > 0 {
		time.Sleep(t.Latency)
	}
	t.mu.RLock()
	h, ok := t.handlers[addr]
	t.mu.RUnlock()
	if !ok {
		return Response{}, fmt.Errorf("peernet: no peer at %s", addr)
	}
	return h(req), nil
}

// --- TCP transport ----------------------------------------------------------

// TCP serves requests over TCP with gob encoding, one request per
// connection.
type TCP struct {
	// DialTimeout bounds connection establishment; zero means 5s.
	DialTimeout time.Duration
	// IOTimeout bounds each blocking read/write of a served connection:
	// the request must arrive within IOTimeout of the accept, and the
	// response write must complete within IOTimeout of the handler
	// returning (the handler's own computation is not bounded). A hung
	// or stalled client therefore cannot pin a serving goroutine
	// forever. Zero means 30s.
	IOTimeout time.Duration
}

// Accept-loop backoff bounds: a transient Accept error (fd exhaustion,
// an aborted handshake) retries after acceptBackoffMin, doubling up to
// acceptBackoffMax, instead of busy-spinning at 100% CPU.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 1 * time.Second
)

// Listen implements Transport.
func (t *TCP) Listen(addr string, h Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	done := make(chan struct{})
	go acceptLoop(ln, h, done, t.ioTimeout())
	closer := func() {
		close(done)
		ln.Close()
	}
	return ln.Addr().String(), closer, nil
}

func (t *TCP) ioTimeout() time.Duration {
	if t.IOTimeout > 0 {
		return t.IOTimeout
	}
	return 30 * time.Second
}

// acceptLoop accepts and serves connections until the listener is
// closed. Errors back off exponentially (acceptBackoffMin doubling to
// acceptBackoffMax) instead of spinning; the loop exits on shutdown
// (done closed, or the listener reports net.ErrClosed) and on permanent
// failures (errors that are not net.Errors — the listener is broken,
// retrying cannot help).
func acceptLoop(ln net.Listener, h Handler, done chan struct{}, ioTimeout time.Duration) {
	var delay time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if _, ok := err.(net.Error); !ok {
				return
			}
			if delay == 0 {
				delay = acceptBackoffMin
			} else if delay *= 2; delay > acceptBackoffMax {
				delay = acceptBackoffMax
			}
			timer := time.NewTimer(delay)
			select {
			case <-done:
				timer.Stop()
				return
			case <-timer.C:
			}
			continue
		}
		delay = 0
		go serveConn(conn, h, ioTimeout)
	}
}

func serveConn(conn net.Conn, h Handler, ioTimeout time.Duration) {
	defer conn.Close()
	var req Request
	if ioTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(ioTimeout))
	}
	dec := gob.NewDecoder(conn)
	if err := dec.Decode(&req); err != nil {
		return
	}
	resp := h(req)
	if ioTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(ioTimeout))
	}
	enc := gob.NewEncoder(conn)
	_ = enc.Encode(&resp)
}

// Call implements Transport.
func (t *TCP) Call(addr string, req Request) (Response, error) {
	timeout := t.DialTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return Response{}, fmt.Errorf("peernet: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(&req); err != nil {
		return Response{}, fmt.Errorf("peernet: send to %s: %w", addr, err)
	}
	var resp Response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("peernet: receive from %s: %w", addr, err)
	}
	return resp, nil
}
