package peernet

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/sysdsl"
	"repro/internal/workload"
)

// requireDelegationMatchesCentral asserts that DelegatedAnswers and the
// centralized sliced path agree byte-for-byte (answers and errors) for
// one query, and returns the delegation report.
func requireDelegationMatchesCentral(t *testing.T, n *Node, query string, vars []string, transitive bool) DelegationInfo {
	t.Helper()
	q := foquery.MustParse(query)
	central, centralErr := n.PeerConsistentAnswersFor(q, vars, transitive)
	deleg, info, delegErr := n.DelegatedAnswersInfo(q, vars, transitive)
	if fmt.Sprintf("%v", centralErr) != fmt.Sprintf("%v", delegErr) {
		t.Fatalf("delegated error diverges: central=%v delegated=%v", centralErr, delegErr)
	}
	if fmt.Sprintf("%v", central) != fmt.Sprintf("%v", deleg) {
		t.Fatalf("delegated answers diverge:\ncentral   %v\ndelegated %v", central, deleg)
	}
	return info
}

// TestDelegatedAnswersChain: the transitive import chain delegates hop
// by hop (each peer's inclusion import is a forced repair), and the
// answers match the centralized path at both parallelism levels.
func TestDelegatedAnswersChain(t *testing.T) {
	sys := workload.Chain(3, 2, 7)
	nodes := startNetwork(t, sys, NewInProc())
	for _, par := range []int{1, 4} {
		for _, n := range nodes {
			n.Parallelism = par
		}
		info := requireDelegationMatchesCentral(t, nodes["P0"], "t0(X,Y)", []string{"X", "Y"}, true)
		if !info.Delegated {
			t.Fatalf("chain should delegate, fell back: %s", info.Reason)
		}
		if len(info.Delegates) != 1 || info.Delegates[0] != "P1" {
			t.Fatalf("delegates = %v", info.Delegates)
		}
	}
	delegated, _, _ := nodes["P0"].DelegationStats()
	if delegated != 2 {
		t.Fatalf("delegated counter = %d, want 2", delegated)
	}
}

// TestDelegatedAnswersFetchOnlyPlan: a plan can consist purely of raw
// fetches (every neighbour is DEC-less); that still counts as a
// delegated run, just one where no remote repair work exists. Example 1
// under the transitive semantics is exactly this shape — including a
// same-trust DEC of the root toward the DEC-less P3, which the gate
// admits.
func TestDelegatedAnswersFetchOnlyPlan(t *testing.T) {
	nodes := startNetwork(t, core.Example1System(), NewInProc())
	info := requireDelegationMatchesCentral(t, nodes["P1"], "r1(X,Y)", []string{"X", "Y"}, true)
	if !info.Delegated {
		t.Fatalf("fetch-only plan should delegate, fell back: %s", info.Reason)
	}
	if len(info.Delegates) != 0 || len(info.Fetches) != 2 {
		t.Fatalf("plan = delegates %v fetches %v, want pure fetches [P2 P3]", info.Delegates, info.Fetches)
	}
}

// TestDelegatedAnswersFanout: the B11 workload delegates to every hub,
// the hubs read their leaves themselves, and the root receives strictly
// fewer bytes than under a central pull — the leaves' d_i relations
// never travel to the root.
func TestDelegatedAnswersFanout(t *testing.T) {
	sys := workload.DelegationFanout(3, 4, 2, 10, 1)
	tr := NewInProc()
	nodes := map[core.PeerID]*Node{}
	meters := map[core.PeerID]*Meter{}
	for _, id := range sys.Peers() {
		p, _ := sys.Peer(id)
		m := &Meter{T: tr}
		meters[id] = m
		n := NewNode(p, m, nil)
		if err := n.Start(":0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Stop)
		nodes[id] = n
	}
	for _, n := range nodes {
		for _, m := range nodes {
			if n != m {
				n.SetNeighbor(m.Peer.ID, m.BoundAddr())
			}
		}
	}
	info := requireDelegationMatchesCentral(t, nodes["P0"], "r0(X,Y)", []string{"X", "Y"}, true)
	if !info.Delegated {
		t.Fatalf("fanout should delegate, fell back: %s", info.Reason)
	}
	if len(info.Delegates) != 3 {
		t.Fatalf("delegates = %v, want the three hubs", info.Delegates)
	}
	q := foquery.MustParse("r0(X,Y)")
	meters["P0"].Reset()
	if _, err := nodes["P0"].DelegatedAnswers(q, []string{"X", "Y"}, true); err != nil {
		t.Fatal(err)
	}
	_, _, delegRecv := meters["P0"].Stats()
	meters["P0"].Reset()
	if _, err := nodes["P0"].PeerConsistentAnswersFor(q, []string{"X", "Y"}, true); err != nil {
		t.Fatal(err)
	}
	_, _, centralRecv := meters["P0"].Stats()
	if delegRecv >= centralRecv {
		t.Fatalf("delegation should reduce the root's bytes received: delegated=%d central=%d", delegRecv, centralRecv)
	}
}

// TestDelegatedAnswersFallbackShapes: every shape the exactness gate
// must refuse falls back to the centralized path — and still answers
// byte-identically.
func TestDelegatedAnswersFallbackShapes(t *testing.T) {
	// R imports ta from A in every custom fixture; the cases vary what
	// else A (or R) enforces.
	base := func() (*core.Peer, *core.Peer, *core.Peer) {
		r := core.NewPeer("R").Declare("tr", 2).Fact("tr", "r", "1").
			SetTrust("A", core.TrustLess).
			AddDEC("A", constraint.Inclusion("incRA", "ta", "tr", 2))
		a := core.NewPeer("A").Declare("ta", 2).Fact("ta", "a", "1")
		b := core.NewPeer("B").Declare("ub", 2).Fact("ub", "b", "1")
		return r, a, b
	}
	cases := []struct {
		name       string
		build      func() *core.System
		peer       core.PeerID
		query      string
		transitive bool
		wantReason string
	}{
		{
			name:       "direct-semantics",
			build:      core.Example1System,
			peer:       "P1",
			query:      "r1(X,Y)",
			transitive: false,
			wantReason: "direct semantics",
		},
		{
			name: "domain-dependent-full-slice",
			build: func() *core.System {
				d, err := sysdsl.ParseConstraint("ref_dom", "r1(X,Y) -> exists W: r2(X,W)")
				if err != nil {
					t.Fatal(err)
				}
				p := core.NewPeer("P").Declare("r1", 2).Declare("r2", 2).
					Fact("r1", "a", "b").
					SetTrust("Q", core.TrustLess).AddDEC("Q", d)
				q := core.NewPeer("Q").Declare("s1", 2).Fact("s1", "c", "d")
				return core.NewSystem().MustAddPeer(p).MustAddPeer(q)
			},
			peer:       "P",
			query:      "r1(X,Y)",
			transitive: true,
			wantReason: "domain-dependent",
		},
		{
			name: "same-trust-at-non-root",
			build: func() *core.System {
				r, a, b := base()
				a.SetTrust("B", core.TrustSame).
					AddDEC("B", constraint.KeyEGD("egdAB", "ta", "ub"))
				return core.NewSystem().MustAddPeer(r).MustAddPeer(a).MustAddPeer(b)
			},
			peer:       "R",
			query:      "tr(X,Y)",
			transitive: true,
			wantReason: "enforces same-trust DECs",
		},
		{
			name: "root-same-trust-toward-repairing-peer",
			build: func() *core.System {
				r, a, b := base()
				r.SetTrust("A", core.TrustSame) // turn the import into a joint repair
				a.SetTrust("B", core.TrustLess).
					AddDEC("B", constraint.Inclusion("incAB", "ub", "ta", 2))
				return core.NewSystem().MustAddPeer(r).MustAddPeer(a).MustAddPeer(b)
			},
			peer:       "R",
			query:      "tr(X,Y)",
			transitive: true,
			wantReason: "joint repair does not factor",
		},
		{
			name: "non-forced-remote-constraint",
			build: func() *core.System {
				r, a, b := base()
				a.Declare("ua", 2).Fact("ua", "a", "2").
					SetTrust("B", core.TrustLess).
					// Two mutable body atoms: deleting either repairs a
					// violation, so A's solution is not unique.
					AddDEC("B", constraint.KeyEGD("egdA", "ta", "ua"))
				return core.NewSystem().MustAddPeer(r).MustAddPeer(a).MustAddPeer(b)
			},
			peer:       "R",
			query:      "tr(X,Y)",
			transitive: true,
			wantReason: "admits repair choices",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			nodes := startNetwork(t, tc.build(), NewInProc())
			info := requireDelegationMatchesCentral(t, nodes[tc.peer], tc.query, []string{"X", "Y"}, tc.transitive)
			if info.Delegated {
				t.Fatal("gate should have refused delegation")
			}
			if !strings.Contains(info.Reason, tc.wantReason) {
				t.Fatalf("reason = %q, want substring %q", info.Reason, tc.wantReason)
			}
			_, fallbacks, last := nodes[tc.peer].DelegationStats()
			if fallbacks == 0 || !strings.Contains(last, tc.wantReason) {
				t.Fatalf("fallback stats not recorded: fallbacks=%d last=%q", fallbacks, last)
			}
		})
	}
}

// TestDelegatedAnswersCyclicOverlay: two peers with mutual inclusion
// DECs form a trust cycle. The visited guard makes B (asked by A)
// refuse to delegate back to A, B's central path rejects the cycle, and
// the error A surfaces is the same cyclic-trust error its own central
// path produces.
func TestDelegatedAnswersCyclicOverlay(t *testing.T) {
	a := core.NewPeer("A").Declare("ra", 2).Fact("ra", "a", "1").
		SetTrust("B", core.TrustLess).
		AddDEC("B", constraint.Inclusion("cyc_ab", "rb", "ra", 2))
	b := core.NewPeer("B").Declare("rb", 2).Fact("rb", "b", "2").
		SetTrust("A", core.TrustLess).
		AddDEC("A", constraint.Inclusion("cyc_ba", "ra", "rb", 2))
	sys := core.NewSystem().MustAddPeer(a).MustAddPeer(b)
	nodes := startNetwork(t, sys, NewInProc())
	q := foquery.MustParse("ra(X,Y)")
	central, centralErr := nodes["A"].PeerConsistentAnswersFor(q, []string{"X", "Y"}, true)
	if centralErr == nil || !strings.Contains(centralErr.Error(), "cyclic") {
		t.Fatalf("central path should reject the cycle, got ans=%v err=%v", central, centralErr)
	}
	deleg, info, delegErr := nodes["A"].DelegatedAnswersInfo(q, []string{"X", "Y"}, true)
	if delegErr == nil || delegErr.Error() != centralErr.Error() {
		t.Fatalf("delegated error diverges: central=%v delegated=%v (ans=%v)", centralErr, delegErr, deleg)
	}
	if info.Delegated {
		t.Fatal("cycle must not report successful delegation")
	}
}

// failPCATransport fails every delegated OpPCA call, simulating a
// delegate that serves its spec and data but cannot answer queries.
type failPCATransport struct{ Transport }

func (f *failPCATransport) Call(addr string, req Request) (Response, error) {
	if req.Op == OpPCA && req.Delegate {
		return Response{}, fmt.Errorf("injected: delegate unreachable")
	}
	return f.Transport.Call(addr, req)
}

// TestDelegatedAnswersUnreachableDelegate: when the delegate cannot be
// reached over OpPCA the node degrades to the central path and still
// answers; when the peer is gone entirely, both paths fail with an
// error naming the missing endpoint.
func TestDelegatedAnswersUnreachableDelegate(t *testing.T) {
	sys := workload.Chain(3, 2, 3)
	tr := NewInProc()
	nodes := map[core.PeerID]*Node{}
	for _, id := range sys.Peers() {
		p, _ := sys.Peer(id)
		var nt Transport = tr
		if id == "P0" {
			nt = &failPCATransport{Transport: tr}
		}
		n := NewNode(p, nt, nil)
		if err := n.Start(":0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Stop)
		nodes[id] = n
	}
	for _, n := range nodes {
		for _, m := range nodes {
			if n != m {
				n.SetNeighbor(m.Peer.ID, m.BoundAddr())
			}
		}
	}
	q := foquery.MustParse("t0(X,Y)")
	central, err := nodes["P0"].PeerConsistentAnswersFor(q, []string{"X", "Y"}, true)
	if err != nil {
		t.Fatal(err)
	}
	deleg, info, err := nodes["P0"].DelegatedAnswersInfo(q, []string{"X", "Y"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if info.Delegated || !strings.Contains(info.Reason, "injected") {
		t.Fatalf("expected fallback on unreachable delegate, info=%+v", info)
	}
	if fmt.Sprintf("%v", central) != fmt.Sprintf("%v", deleg) {
		t.Fatalf("fallback answers diverge: central=%v delegated=%v", central, deleg)
	}
	// Fully stopped delegate: both paths fail with a clear error.
	nodes["P1"].Stop()
	_, _, derr := nodes["P0"].DelegatedAnswersInfo(q, []string{"X", "Y"}, true)
	if derr == nil || !strings.Contains(derr.Error(), "no peer") {
		t.Fatalf("expected a clear error for the stopped delegate, got %v", derr)
	}
}

// TestDelegationTCPSmoke runs delegated answering over real sockets —
// the CI race job runs this under -race so the TCP path's concurrency
// is covered end to end.
func TestDelegationTCPSmoke(t *testing.T) {
	sys := workload.Chain(3, 2, 11)
	nodes := startNetwork(t, sys, &TCP{})
	info := requireDelegationMatchesCentral(t, nodes["P0"], "t0(X,Y)", []string{"X", "Y"}, true)
	if !info.Delegated {
		t.Fatalf("TCP chain should delegate, fell back: %s", info.Reason)
	}
}

// TestLocalWritesDuringQueries interleaves UpdateLocal writes with
// sliced queries and the remote fetches they trigger: under -race this
// pins the snapshot-aliasing fix (snapshots and exports clone the live
// peer under the data lock instead of sharing its instance).
func TestLocalWritesDuringQueries(t *testing.T) {
	sys := workload.Chain(2, 2, 5)
	nodes := startNetwork(t, sys, NewInProc())
	root := nodes["P0"]
	q := foquery.MustParse("t0(X,Y)")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			i := i
			root.UpdateLocal(func(p *core.Peer) {
				p.Fact("t0", fmt.Sprintf("w%d", i), "v")
			})
			nodes["P1"].UpdateLocal(func(p *core.Peer) {
				p.Fact("t1", fmt.Sprintf("u%d", i), "v")
			})
		}
	}()
	for i := 0; i < 20; i++ {
		if _, err := root.PeerConsistentAnswersFor(q, []string{"X", "Y"}, true); err != nil {
			t.Error(err)
			break
		}
	}
	wg.Wait()
	// Once quiesced, the writes are visible to fresh snapshots.
	ans, err := root.PeerConsistentAnswersFor(q, []string{"X", "Y"}, true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tup := range ans {
		if tup[0] == "w0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("local write not visible in answers: %v", ans)
	}
}

// TestStartStopConcurrent pins the Start/Stop guard: double Start fails
// cleanly, concurrent Stops are safe (only one performs the shutdown),
// and the node can be restarted afterwards.
func TestStartStopConcurrent(t *testing.T) {
	p := core.NewPeer("P").Declare("r", 1)
	n := NewNode(p, NewInProc(), nil)
	if err := n.Start(":0"); err != nil {
		t.Fatal(err)
	}
	if err := n.Start(":0"); err == nil {
		t.Fatal("second Start should fail")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.Stop()
			_ = n.BoundAddr()
		}()
	}
	wg.Wait()
	n.Stop() // idempotent after shutdown
	if err := n.Start(":0"); err != nil {
		t.Fatalf("restart after Stop: %v", err)
	}
	n.Stop()
}

// TestEmptyRelationRoundTrip pins the nil-vs-empty wire contract: a
// declared-but-empty relation round-trips consistently through OpFetch
// and OpFetchBatch over both transports, and the client decodes it to
// an empty non-nil tuple list even where gob drops zero-length slices.
func TestEmptyRelationRoundTrip(t *testing.T) {
	build := func() *core.System {
		p := core.NewPeer("P").Declare("full", 1).Declare("empty", 1).Fact("full", "x")
		q := core.NewPeer("Q").Declare("other", 1)
		return core.NewSystem().MustAddPeer(p).MustAddPeer(q)
	}
	for name, tr := range map[string]Transport{"inproc": NewInProc(), "tcp": &TCP{}} {
		tr := tr
		t.Run(name, func(t *testing.T) {
			nodes := startNetwork(t, build(), tr)
			// Client boundary: both fetch ops agree on the empty relation.
			got, err := nodes["Q"].FetchRelations("P", []string{"empty", "full"})
			if err != nil {
				t.Fatal(err)
			}
			if got["empty"] == nil || len(got["empty"]) != 0 {
				t.Fatalf("batch empty relation = %#v, want empty non-nil", got["empty"])
			}
			if len(got["full"]) != 1 {
				t.Fatalf("full relation = %v", got["full"])
			}
			single, err := nodes["Q"].FetchRelation("P", "empty")
			if err != nil {
				t.Fatal(err)
			}
			if len(single) != 0 {
				t.Fatalf("single empty relation = %v", single)
			}
			// Raw wire: OpFetch of the empty relation is not an error on
			// either transport, whatever gob does to the empty slice.
			resp, err := tr.Call(nodes["P"].BoundAddr(), Request{Op: OpFetch, Rel: "empty"})
			if err != nil || resp.Err != "" {
				t.Fatalf("OpFetch empty: err=%v respErr=%q", err, resp.Err)
			}
			if len(resp.Tuples) != 0 {
				t.Fatalf("OpFetch empty tuples = %v", resp.Tuples)
			}
		})
	}
}
