package peernet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/parallel"
	"repro/internal/program"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/slice"
	"repro/internal/sysdsl"
)

// Node hosts one peer at a network address: it serves the peer's data
// and specification to others and gathers its neighbours' data to
// answer queries with peer-consistent semantics.
//
// A Node is safe for concurrent use: the neighbour table is guarded by
// an internal lock (use SetNeighbor / NeighborAddr, not direct map
// writes, once the node is shared between goroutines), and the
// snapshot/relation caches are internally synchronized.
type Node struct {
	Peer *core.Peer
	Addr string
	// Neighbors maps peer ids to addresses. It is guarded by mu;
	// concurrent mutation must go through SetNeighbor.
	Neighbors map[core.PeerID]string
	// CacheTTL, when positive, caches assembled snapshots and fetched
	// relations for that duration: repeated queries inside the window
	// skip the network fan-out entirely. SetNeighbor invalidates the
	// caches. Zero (the default) disables caching — every query sees
	// the neighbours' live data, the seed behaviour.
	CacheTTL time.Duration
	// Parallelism bounds the concurrent neighbour fetches of Snapshot
	// and is forwarded to the answering engines (core.SolveOptions /
	// program.RunOptions). 0 means GOMAXPROCS; 1 restores the fully
	// sequential seed behaviour. Set before Start. The serving plane
	// overrides it per query via QueryOptions.Parallelism.
	Parallelism int
	// NoCoalesce disables in-flight request coalescing in AnswerQuery:
	// identical concurrent queries then each run the solver. Coalescing
	// shares only results computed under the same content-addressed key
	// (identical answers by construction), so this is an A/B measurement
	// knob, not a semantics switch. Set before the node is shared.
	NoCoalesce bool
	// NoIncremental disables delta-driven incremental re-answering
	// (incr.go): repeated queries after local writes then always evict
	// and recompute from a fresh snapshot. The incremental path is only
	// taken when provably exact, so this is an A/B measurement knob,
	// not a semantics switch. Set before the node is shared.
	NoIncremental bool

	mu   sync.RWMutex // guards Neighbors, Addr and stop
	tr   Transport
	stop func()

	// dataMu serializes mutations of the live peer instance against the
	// readers: request handling, spec export and snapshot cloning all
	// take the read side, UpdateLocal takes the write side. Mutating
	// n.Peer directly while the node is serving is a data race — the
	// instance's read caches are only safe under concurrent *reads*.
	dataMu sync.RWMutex

	// delegated/delegFallbacks count DelegatedAnswers outcomes;
	// lastFallback (under mu) records the most recent fallback reason.
	delegated      int64
	delegFallbacks int64
	lastFallback   string

	cacheMu sync.Mutex
	// snapGen is bumped by every SetNeighbor (assembled snapshots embed
	// the overlay shape, so any neighbour change invalidates them);
	// relGens advances per peer, so relation and spec cache entries of
	// unrelated peers survive a neighbour update (relation-granular
	// invalidation).
	snapGen   uint64
	relGens   map[core.PeerID]uint64
	snapCache map[bool]*snapEntry // keyed by the transitive flag
	relCache  map[string]*relEntry
	specCache map[core.PeerID]*specEntry

	// answers is the slice-keyed PCA cache of PeerConsistentAnswersFor:
	// entries are content-addressed by (query, vars, slice signature,
	// data fingerprint), so they need no invalidation — an update to an
	// irrelevant relation leaves the key untouched and the entry valid.
	answers *slice.AnswerCache

	// flights coalesces concurrent AnswerQuery computations under the
	// same content-addressed answer key (singleflight). The delegated
	// OpPCA handler shares it under "deleg"-prefixed keys, so a burst
	// of identical delegated sub-queries from several querying roots
	// runs the delegate-side solve once.
	flights slice.Flight

	// incrSeries holds the live incremental re-answering series, one
	// per repeated direct query shape (incr.go); the counters feed
	// IncrStats.
	incrMu     sync.Mutex
	incrSeries map[string]*incrSeries

	incrPatched, incrSeeds, incrFallbacks int64

	// Serving-plane instrumentation (atomics): TTL cache outcomes,
	// solver invocations and local writes. Read via CacheStats /
	// SolverRuns / LocalWrites.
	snapHits, snapMisses int64
	relHits, relMisses   int64
	solverRuns           int64
	localWrites          int64

	// repairStats accumulates repair-engine counters (conflict
	// component counts) across the direct-semantics queries this node
	// answers; the LP path of transitive queries has no repair search.
	repairStats repair.Stats

	clock func() time.Time // test hook; nil means time.Now
}

type snapEntry struct {
	sys     *core.System
	expires time.Time
}

type relEntry struct {
	tuples  []relation.Tuple
	expires time.Time
}

type specEntry struct {
	spec      string
	neighbors map[string]string
	expires   time.Time
}

// NewNode creates a node for a peer on the given transport. neighbours
// maps the peers named in the local DECs/trust to their addresses.
//
// The peer's instance gets a fact journal attached (if it has none)
// so the incremental re-answering path can replay write deltas; a
// second node built over the same peer reuses the existing journal.
func NewNode(peer *core.Peer, tr Transport, neighbors map[core.PeerID]string) *Node {
	ns := make(map[core.PeerID]string, len(neighbors))
	for k, v := range neighbors {
		ns[k] = v
	}
	if peer.Inst != nil && peer.Inst.Journal() == nil {
		peer.Inst.SetJournal(relation.NewJournal(0))
	}
	return &Node{Peer: peer, Neighbors: ns, tr: tr}
}

// Start begins serving at the requested address ("" or ":0" picks one)
// and records the bound address in n.Addr (read it via BoundAddr when
// other goroutines may be starting/stopping the node).
func (n *Node) Start(addr string) error {
	bound, closer, err := n.tr.Listen(addr, n.handle)
	if err != nil {
		return err
	}
	n.mu.Lock()
	if n.stop != nil {
		n.mu.Unlock()
		closer()
		return fmt.Errorf("peernet: node %s already started", n.Peer.ID)
	}
	n.Addr = bound
	n.stop = closer
	n.mu.Unlock()
	return nil
}

// BoundAddr returns the address Start bound, under the lock.
func (n *Node) BoundAddr() string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.Addr
}

// Stop stops serving. It is safe to call twice and concurrently; only
// one caller performs the shutdown.
func (n *Node) Stop() {
	n.mu.Lock()
	stop := n.stop
	n.stop = nil
	n.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// UpdateLocal runs a mutation of the node's live peer (Fact inserts,
// instance deletes, ...) under the node's data lock, serializing it
// against concurrent request handling and snapshot cloning. Route every
// write to a served peer's instance through here; mutating n.Peer
// directly while the node is serving is a data race.
//
// A local write invalidates the node's own TTL snapshot cache: the
// cached assembled systems embed this peer's (pre-write) data, so the
// next query within the TTL must rebuild rather than answer from stale
// facts. snapGen is bumped under the same critical section, so an
// in-flight Snapshot build that cloned the pre-write instance cannot
// store its result after the write. The per-peer relation generation
// advances too, guarding any caller that cached this peer's relations
// on this node.
func (n *Node) UpdateLocal(fn func(p *core.Peer)) {
	n.dataMu.Lock()
	defer n.dataMu.Unlock()
	fn(n.Peer)
	if n.Peer.Inst != nil && n.Peer.Inst.Journal() == nil {
		// fn replaced the instance wholesale: attach a fresh journal.
		// Live series detect the new journal object and fall back.
		n.Peer.Inst.SetJournal(relation.NewJournal(0))
	}
	n.cacheMu.Lock()
	n.snapGen++
	n.snapCache = nil
	if n.relGens == nil {
		n.relGens = make(map[core.PeerID]uint64)
	}
	n.relGens[n.Peer.ID]++
	n.cacheMu.Unlock()
	atomic.AddInt64(&n.localWrites, 1)
}

// localClone snapshots the live peer under the data lock: the returned
// clone shares nothing mutable with the live instance, so snapshots and
// exports built from it cannot race concurrent UpdateLocal writes (and
// a TTL-cached snapshot can no longer change under its fingerprint).
func (n *Node) localClone() *core.Peer {
	n.dataMu.RLock()
	defer n.dataMu.RUnlock()
	return n.Peer.Clone()
}

// SetNeighbor records (or updates) a neighbour address and invalidates
// the caches touched by the change: assembled whole-overlay snapshots
// are always dropped (they embed the overlay shape), but relation and
// spec cache entries are evicted only for the changed peer — entries
// of unrelated peers survive, so a neighbour update does not force
// refetching the rest of the overlay.
func (n *Node) SetNeighbor(id core.PeerID, addr string) {
	n.mu.Lock()
	n.Neighbors[id] = addr
	n.mu.Unlock()
	n.cacheMu.Lock()
	n.snapGen++
	n.snapCache = nil
	if n.relGens == nil {
		n.relGens = make(map[core.PeerID]uint64)
	}
	n.relGens[id]++
	prefix := string(id) + "\x00"
	for key := range n.relCache {
		if strings.HasPrefix(key, prefix) {
			delete(n.relCache, key)
		}
	}
	delete(n.specCache, id)
	n.cacheMu.Unlock()
}

// NeighborAddr looks up a neighbour address under the lock.
func (n *Node) NeighborAddr(id core.PeerID) (string, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	addr, ok := n.Neighbors[id]
	return addr, ok
}

// neighborsCopy snapshots the neighbour table under the lock.
func (n *Node) neighborsCopy() map[core.PeerID]string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make(map[core.PeerID]string, len(n.Neighbors))
	for k, v := range n.Neighbors {
		out[k] = v
	}
	return out
}

func (n *Node) now() time.Time {
	if n.clock != nil {
		return n.clock()
	}
	return time.Now()
}

func errResp(err error) Response { return Response{Err: err.Error()} }

func (n *Node) handle(req Request) Response {
	switch req.Op {
	case OpRelations:
		// The schema read takes the data lock too: UpdateLocal may grow
		// the schema (Declare) while the node serves.
		n.dataMu.RLock()
		rels := n.Peer.Schema.Relations()
		n.dataMu.RUnlock()
		return Response{Relations: rels}
	case OpFetch:
		// Normalized to non-nil even when empty, like OpFetchBatch: the
		// wire contract pins "declared but empty" to an empty slice on
		// the serving side (gob still drops zero-length slices, so
		// clients additionally treat a missing field as empty). The
		// schema check sits under the same lock as the tuple read, so a
		// concurrent Declare+Fact write is either fully visible or not
		// at all.
		n.dataMu.RLock()
		if !n.Peer.Schema.Has(req.Rel) {
			n.dataMu.RUnlock()
			return errResp(fmt.Errorf("peer %s has no relation %s", n.Peer.ID, req.Rel))
		}
		tuples := tupleStrings(n.Peer.Inst.Tuples(req.Rel))
		n.dataMu.RUnlock()
		return Response{Tuples: tuples}
	case OpFetchBatch:
		rt := make(map[string][][]string, len(req.Rels))
		n.dataMu.RLock()
		for _, rel := range req.Rels {
			if !n.Peer.Schema.Has(rel) {
				n.dataMu.RUnlock()
				return errResp(fmt.Errorf("peer %s has no relation %s", n.Peer.ID, rel))
			}
			rt[rel] = tupleStrings(n.Peer.Inst.Tuples(rel))
		}
		n.dataMu.RUnlock()
		return Response{RelTuples: rt}
	case OpQuery:
		f, err := foquery.Parse(req.Query)
		if err != nil {
			return errResp(err)
		}
		n.dataMu.RLock()
		inst := n.Peer.Inst.Clone()
		n.dataMu.RUnlock()
		ans, err := foquery.Answers(inst, f, req.Vars)
		if err != nil {
			return errResp(err)
		}
		return Response{Tuples: tupleStrings(ans)}
	case OpExport, OpExportSpec:
		spec, err := n.exportSpec(req.Op == OpExport)
		if err != nil {
			return errResp(err)
		}
		ns := n.neighborsCopy()
		neigh := make(map[string]string, len(ns))
		for id, addr := range ns {
			neigh[string(id)] = addr
		}
		return Response{Spec: spec, Neighbors: neigh}
	case OpPCA:
		f, err := foquery.Parse(req.Query)
		if err != nil {
			return errResp(err)
		}
		var ans []relation.Tuple
		switch {
		case req.Delegate:
			// Coalesce identical delegated sub-queries: a burst of
			// querying roots delegating the same atomic sub-query runs
			// the delegate-side solve once and shares the answers. The
			// key ignores the hop budget and visited path — every
			// delegatedAnswers outcome is byte-identical to the
			// centralized sliced path for the same (query, vars,
			// transitive), so followers get exactly what their own run
			// would have computed. No deadlock: a leader only waits on
			// delegates whose visited path strictly grows, and a peer
			// already on the path is answered by fallback, not by a
			// recursive flight on this node.
			run := func() ([]relation.Tuple, error) {
				a, _, derr := n.delegatedAnswers(f, req.Vars, req.Transitive,
					req.HopBudget, appendVisited(req.Visited, n.Peer.ID))
				return a, derr
			}
			if n.NoCoalesce {
				ans, err = run()
			} else {
				dkey := strings.Join([]string{"deleg", req.Query,
					strings.Join(req.Vars, ","), fmt.Sprint(req.Transitive)}, "\x00")
				ans, _, err = n.flights.Do(dkey, run)
			}
		case req.Sliced:
			ans, err = n.PeerConsistentAnswersFor(f, req.Vars, req.Transitive)
		default:
			ans, err = n.PeerConsistentAnswers(f, req.Vars, req.Transitive)
		}
		if err != nil {
			return errResp(err)
		}
		return Response{Tuples: tupleStrings(ans)}
	}
	return errResp(fmt.Errorf("unknown op %q", req.Op))
}

// tupleStrings renders tuples in the wire form, always non-nil: the
// empty-relation response is pinned to an empty slice on the serving
// side for both OpFetch and OpFetchBatch (and the OpQuery/OpPCA answer
// fields), so the two fetch ops can no longer disagree.
func tupleStrings(ts []relation.Tuple) [][]string {
	out := make([][]string, 0, len(ts))
	for _, t := range ts {
		out = append(out, []string(t))
	}
	return out
}

// appendVisited returns visited + id without aliasing the input (the
// handler fans out to several neighbours from one request slice).
func appendVisited(visited []string, id core.PeerID) []string {
	out := make([]string, 0, len(visited)+1)
	out = append(out, visited...)
	return append(out, string(id))
}

// exportSpec renders this peer's specification as a single-peer system
// fragment in the sysdsl format, with or without the facts. It formats
// a clone taken under the data lock, so a concurrent local write cannot
// race the rendering.
func (n *Node) exportSpec(withFacts bool) (string, error) {
	frag := core.NewSystem()
	if err := frag.AddPeer(n.localClone()); err != nil {
		return "", err
	}
	if withFacts {
		return sysdsl.Format(frag), nil
	}
	return sysdsl.FormatSpec(frag), nil
}

// Snapshot assembles a core.System from this peer and its (transitively
// reachable, if requested) neighbours, fetching specifications over the
// network. In the direct case only immediate neighbours are fetched and
// their own DECs/trust are dropped (Definition 4 is a local notion); in
// the transitive case the whole reachable overlay is fetched with
// specifications intact (Section 4.3).
//
// Each BFS level is fetched concurrently on up to Parallelism workers,
// and with CacheTTL > 0 an assembled snapshot is reused until it
// expires. Queries never mutate a snapshot, so a cached system is safe
// to share between concurrent readers.
func (n *Node) Snapshot(transitive bool) (*core.System, error) {
	if n.CacheTTL <= 0 {
		return n.buildSnapshot(transitive)
	}
	n.cacheMu.Lock()
	if e, ok := n.snapCache[transitive]; ok && n.now().Before(e.expires) {
		n.cacheMu.Unlock()
		atomic.AddInt64(&n.snapHits, 1)
		return e.sys, nil
	}
	gen := n.snapGen
	n.cacheMu.Unlock()
	atomic.AddInt64(&n.snapMisses, 1)
	// Build outside the lock: the fan-out can take multiple network
	// round trips and must not serialize concurrent queries (or block
	// SetNeighbor). Concurrent misses may build duplicate snapshots;
	// the last store wins, which is harmless.
	sys, err := n.buildSnapshot(transitive)
	if err != nil {
		return nil, err
	}
	n.cacheMu.Lock()
	if n.snapGen == gen {
		// Don't store a snapshot built against a neighbour table that
		// SetNeighbor has invalidated since.
		if n.snapCache == nil {
			n.snapCache = make(map[bool]*snapEntry)
		}
		n.snapCache[transitive] = &snapEntry{sys: sys, expires: n.now().Add(n.CacheTTL)}
	}
	n.cacheMu.Unlock()
	return sys, nil
}

func (n *Node) buildSnapshot(transitive bool) (*core.System, error) {
	sys, _, err := n.snapshotBFS(transitive, func(id core.PeerID, addr string) (string, map[string]string, error) {
		resp, err := n.tr.Call(addr, Request{Op: OpExport})
		if err != nil {
			return "", nil, err
		}
		if resp.Err != "" {
			return "", nil, fmt.Errorf("peernet: export from %s: %s", id, resp.Err)
		}
		return resp.Spec, resp.Neighbors, nil
	})
	return sys, err
}

// specFragment is one fetched peer export: the sysdsl fragment plus
// the peer's neighbour addresses.
type specFragment struct {
	spec      string
	neighbors map[string]string
}

// snapshotBFS is the shared snapshot walk: starting from the DEC
// neighbours, each BFS level is fetched concurrently through the given
// fetch callback and merged sequentially in level order, so the
// assembled system (and any error) is deterministic. In the direct
// case only immediate neighbours are fetched and their own DECs/trust
// are dropped (Definition 4 is a local notion); in the transitive case
// the whole reachable overlay is walked with specifications intact
// (Section 4.3). It returns the validated system and every address
// discovered along the way.
func (n *Node) snapshotBFS(transitive bool, fetch func(id core.PeerID, addr string) (string, map[string]string, error)) (*core.System, map[core.PeerID]string, error) {
	sys := core.NewSystem()
	// The snapshot gets a clone of the live peer, not the peer itself:
	// a snapshot (possibly TTL-cached and shared by in-flight queries)
	// must not alias an instance a concurrent local write can mutate.
	if err := sys.AddPeer(n.localClone()); err != nil {
		return nil, nil, err
	}
	fetched := map[core.PeerID]bool{n.Peer.ID: true}
	addrs := n.neighborsCopy()
	frontier := n.neighborIDs()
	for len(frontier) > 0 {
		// Deduplicate the level, dropping peers already fetched.
		var level []core.PeerID
		queued := map[core.PeerID]bool{}
		for _, id := range frontier {
			if !fetched[id] && !queued[id] {
				queued[id] = true
				level = append(level, id)
			}
		}
		frontier = frontier[:0]
		if len(level) == 0 {
			break
		}
		// Fetch the whole level concurrently; merge sequentially in
		// level order so the assembled system (and any error) is
		// deterministic.
		frags, err := parallel.MapErr(len(level), parallel.Workers(n.Parallelism), func(i int) (specFragment, error) {
			addr, ok := addrs[level[i]]
			if !ok {
				return specFragment{}, fmt.Errorf("peernet: no address known for peer %s", level[i])
			}
			spec, neigh, err := fetch(level[i], addr)
			return specFragment{spec: spec, neighbors: neigh}, err
		})
		if err != nil {
			return nil, nil, err
		}
		for i, id := range level {
			remote, err := sysdsl.ParsePartial(frags[i].spec)
			if err != nil {
				return nil, nil, fmt.Errorf("peernet: bad spec from %s: %w", id, err)
			}
			for _, rid := range remote.Peers() {
				rp, _ := remote.Peer(rid)
				if rid != id {
					return nil, nil, fmt.Errorf("peernet: peer %s exported a fragment for %s", id, rid)
				}
				if !transitive {
					// Direct case: the neighbour contributes data only
					// (Definition 4 is a local notion).
					rp.DECs = make(map[core.PeerID][]*constraint.Dependency)
					rp.Trust = make(map[core.PeerID]core.TrustLevel)
				}
				if err := sys.AddPeer(rp); err != nil {
					return nil, nil, err
				}
			}
			fetched[id] = true
			if transitive {
				for _, rid := range sortedNeighborIDs(frags[i].neighbors) {
					pid := core.PeerID(rid)
					if _, known := addrs[pid]; !known {
						addrs[pid] = frags[i].neighbors[rid]
					}
					if !fetched[pid] {
						frontier = append(frontier, pid)
					}
				}
			}
		}
	}
	if err := sys.Validate(); err != nil {
		return nil, nil, err
	}
	return sys, addrs, nil
}

func sortedNeighborIDs(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (n *Node) neighborIDs() []core.PeerID {
	var out []core.PeerID
	for id := range n.Peer.DECs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PeerConsistentAnswers answers a query posed to this peer with
// Definition 5 semantics, gathering remote data over the network first.
// With transitive=true the combined-program semantics of Section 4.3 is
// used. The node's Parallelism is forwarded to the answering engine.
func (n *Node) PeerConsistentAnswers(q foquery.Formula, vars []string, transitive bool) ([]relation.Tuple, error) {
	sys, err := n.Snapshot(transitive)
	if err != nil {
		return nil, err
	}
	if transitive {
		return program.PeerConsistentAnswersViaLP(sys, n.Peer.ID, q, vars,
			program.RunOptions{Transitive: true, Parallelism: n.Parallelism})
	}
	return core.PeerConsistentAnswers(sys, n.Peer.ID, q, vars,
		core.SolveOptions{Parallelism: n.Parallelism})
}

// fetchSpec retrieves a peer's specification (schema, DECs, trust — no
// facts) and its neighbour addresses, serving from the TTL spec cache
// when enabled. Spec entries share the per-peer generation of the
// relation cache, so SetNeighbor for one peer evicts only that peer's
// spec.
func (n *Node) fetchSpec(id core.PeerID, addr string) (string, map[string]string, error) {
	var gen uint64
	if n.CacheTTL > 0 {
		n.cacheMu.Lock()
		gen = n.relGens[id]
		if e, ok := n.specCache[id]; ok && n.now().Before(e.expires) {
			spec, neigh := e.spec, e.neighbors
			n.cacheMu.Unlock()
			return spec, neigh, nil
		}
		n.cacheMu.Unlock()
	}
	resp, err := n.tr.Call(addr, Request{Op: OpExportSpec})
	if err != nil {
		return "", nil, err
	}
	if resp.Err != "" {
		return "", nil, fmt.Errorf("peernet: export spec from %s: %s", id, resp.Err)
	}
	if n.CacheTTL > 0 {
		n.cacheMu.Lock()
		if n.relGens[id] == gen {
			if n.specCache == nil {
				n.specCache = make(map[core.PeerID]*specEntry)
			}
			n.specCache[id] = &specEntry{spec: resp.Spec, neighbors: resp.Neighbors, expires: n.now().Add(n.CacheTTL)}
		}
		n.cacheMu.Unlock()
	}
	return resp.Spec, resp.Neighbors, nil
}

// specSnapshot assembles the specification-only system for a sliced
// snapshot: the same BFS as buildSnapshot, but shipping OpExportSpec
// fragments (no data). It returns the system plus every address
// discovered, so the caller can fetch relations of transitively
// reachable peers that are not in the local neighbour table.
func (n *Node) specSnapshot(transitive bool) (*core.System, map[core.PeerID]string, error) {
	return n.snapshotBFS(transitive, n.fetchSpec)
}

// SnapshotFor assembles the query-relevance-sliced counterpart of
// Snapshot: specifications are fetched first (OpExportSpec, one
// round-trip per peer, no data), the relevance slice of the query is
// computed over them, and then only the relations in the slice travel —
// one batched OpFetchBatch round-trip per relevant peer, served from
// the relation-granular TTL cache when enabled. Peers owning no
// relevant relation contribute their schema and constraints but move no
// tuples at all. The returned system carries complete data for every
// relation in the slice, so any engine restricted by the slice
// (core.SolveOptions.KeepDep/RelevantRels, program counterparts)
// answers exactly as over a full Snapshot.
func (n *Node) SnapshotFor(q foquery.Formula, transitive bool) (*core.System, *slice.Slice, error) {
	sys, addrs, err := n.specSnapshot(transitive)
	if err != nil {
		return nil, nil, err
	}
	sl, err := slice.ForQuery(sys, n.Peer.ID, q, transitive)
	if err != nil {
		return nil, nil, err
	}
	peers := sl.RemotePeers()
	results, err := parallel.MapErr(len(peers), parallel.Workers(n.Parallelism), func(i int) (map[string][]relation.Tuple, error) {
		pid := peers[i]
		addr, ok := addrs[pid]
		if !ok {
			return nil, fmt.Errorf("peernet: no address known for peer %s", pid)
		}
		return n.fetchRelationsAddr(pid, addr, sl.RelsOf(pid))
	})
	if err != nil {
		return nil, nil, err
	}
	// Merge sequentially in sorted peer order (deterministic system).
	for i, pid := range peers {
		rp, _ := sys.Peer(pid)
		for _, rel := range sl.RelsOf(pid) {
			for _, t := range results[i][rel] {
				rp.Inst.Insert(rel, t)
			}
		}
	}
	return sys, sl, nil
}

// QueryOptions tunes one query answered through AnswerQuery — the
// serving plane's per-query knobs.
type QueryOptions struct {
	// Transitive selects the Section 4.3 combined-program semantics;
	// false is the direct Definition 5 semantics.
	Transitive bool
	// Parallelism budgets this query's engine and fan-out work,
	// overriding the node-wide default: the serving plane divides the
	// node's budget across its admitted queries so one expensive repair
	// cannot claim every core. 0 inherits Node.Parallelism.
	Parallelism int
}

// PeerConsistentAnswersFor is the sliced counterpart of
// PeerConsistentAnswers: the snapshot fetches only query-relevant
// relations (SnapshotFor), the engines enforce only the constraints in
// the slice, and the answers are cached under a (query, vars, slice
// signature, data fingerprint) key. The key is content-addressed, so a
// repeat query over unchanged relevant data is served without any
// grounding or repair search — and an update to an irrelevant relation
// does not evict it. Answers are identical to PeerConsistentAnswers.
func (n *Node) PeerConsistentAnswersFor(q foquery.Formula, vars []string, transitive bool) ([]relation.Tuple, error) {
	return n.AnswerQuery(q, vars, QueryOptions{Transitive: transitive})
}

// AnswerQuery is PeerConsistentAnswersFor with per-query options, and
// the entry point of the serving plane. On top of the content-addressed
// answer cache it coalesces in-flight work: concurrent queries that
// miss the cache under the same key join a single solver run
// (singleflight) instead of repeating it — safe because the key embeds
// the data fingerprint, so coalesced requests provably compute the same
// answers. Every caller owns its returned tuples.
func (n *Node) AnswerQuery(q foquery.Formula, vars []string, opt QueryOptions) ([]relation.Tuple, error) {
	par := opt.Parallelism
	if par == 0 {
		par = n.Parallelism
	}
	incr := !opt.Transitive && !n.NoIncremental
	if incr {
		if ans, err, handled := n.incrAnswer(q, vars, par); handled {
			return ans, err
		}
	}
	// Pre-snapshot journal position and relation generations: if both
	// are unchanged once the answer is in hand, the snapshot provably
	// corresponds to this journal position and an incremental series
	// can be seeded from it (seedSeries re-checks).
	var seedJ *relation.Journal
	var seedSeq uint64
	var seedGens map[core.PeerID]uint64
	if incr && n.CacheTTL > 0 {
		n.dataMu.RLock()
		seedJ = n.Peer.Inst.Journal()
		n.dataMu.RUnlock()
		if seedJ != nil {
			seedSeq = seedJ.Seq()
		}
		n.cacheMu.Lock()
		seedGens = make(map[core.PeerID]uint64, len(n.relGens))
		for k, v := range n.relGens {
			seedGens[k] = v
		}
		n.cacheMu.Unlock()
	}
	sys, sl, err := n.SnapshotFor(q, opt.Transitive)
	if err != nil {
		return nil, err
	}
	fp, err := slice.DataFingerprint(sys, sl)
	if err != nil {
		return nil, err
	}
	key := slice.AnswerKey(q.String(), vars, sl, fp)
	cache := n.answersCache()
	if ans, ok := cache.Get(key); ok {
		if incr {
			n.seedSeries(q, vars, sys, sl, key, seedJ, seedSeq, seedGens)
		}
		return ans, nil
	}
	compute := func() ([]relation.Tuple, error) {
		atomic.AddInt64(&n.solverRuns, 1)
		if opt.Transitive {
			return program.PeerConsistentAnswersViaLP(sys, n.Peer.ID, q, vars, program.RunOptions{
				Transitive:   true,
				Parallelism:  par,
				KeepDep:      sl.KeepDep,
				RelevantRels: sl.RelevantRels(),
			})
		}
		return core.PeerConsistentAnswers(sys, n.Peer.ID, q, vars, core.SolveOptions{
			Parallelism:  par,
			KeepDep:      sl.KeepDep,
			RelevantRels: sl.RelevantRels(),
			RepairStats:  &n.repairStats,
		})
	}
	var ans []relation.Tuple
	shared := false
	if n.NoCoalesce {
		ans, err = compute()
	} else {
		ans, shared, err = n.flights.Do(key, compute)
	}
	if err != nil {
		return nil, err
	}
	if !shared {
		// Only the computing caller stores: the followers' shared result
		// is the same entry, and their snapshots may already be stale.
		cache.Put(key, ans)
	}
	if incr {
		n.seedSeries(q, vars, sys, sl, key, seedJ, seedSeq, seedGens)
	}
	return ans, nil
}

// DefaultHopBudget bounds the delegation depth of DelegatedAnswers:
// each delegated hop decrements the budget, and a peer receiving 0
// answers centrally. Deep overlays beyond the budget still answer
// correctly — the tail is just computed centrally by the last delegate.
const DefaultHopBudget = 8

// DelegationInfo reports how DelegatedAnswers answered one query.
type DelegationInfo struct {
	// Delegated is true when the delegated plan ran to completion;
	// false means the centralized sliced path answered (Reason says
	// why).
	Delegated bool
	Reason    string
	// Delegates and Fetches are the plan's peers (empty on fallback).
	Delegates []core.PeerID
	Fetches   []core.PeerID
	// RemoteCalls counts the plan's round trips; SubTuples the tuples
	// the delegates and fetches returned.
	RemoteCalls int
	SubTuples   int
}

// DelegatedAnswers answers a query posed to this peer with the same
// peer-consistent semantics as PeerConsistentAnswers(For), but through
// delegated distributed execution when that is provably exact: the
// query's relevance slice is decomposed per owning peer
// (slice.PlanDelegation), each repairing neighbour computes its own
// peer consistent answers to atomic sub-queries over OpPCA (recursively
// delegating in turn, within the hop budget), DEC-less data peers ship
// raw relations, and the node solves the composed mini system
// (core.ComposeDelegated) locally. The querying peer then receives
// answer sets instead of raw upstream data, and the repair work runs
// where the data lives.
//
// Whenever the plan is refused (direct semantics, domain-dependent
// slice, joint same-trust repair, non-forced remote constraints), a
// remote call fails, a delegate is already on the delegation path
// (cyclic overlay) or the composed solve errors, the node falls back to
// the centralized sliced path — so answers and errors are byte-identical
// to PeerConsistentAnswersFor in every case.
func (n *Node) DelegatedAnswers(q foquery.Formula, vars []string, transitive bool) ([]relation.Tuple, error) {
	ans, _, err := n.delegatedAnswers(q, vars, transitive, DefaultHopBudget, []string{string(n.Peer.ID)})
	return ans, err
}

// DelegatedAnswersInfo is DelegatedAnswers with the delegation report.
func (n *Node) DelegatedAnswersInfo(q foquery.Formula, vars []string, transitive bool) ([]relation.Tuple, DelegationInfo, error) {
	return n.delegatedAnswers(q, vars, transitive, DefaultHopBudget, []string{string(n.Peer.ID)})
}

// DelegationStats reports how many DelegatedAnswers calls ran the
// delegated plan vs fell back to the centralized path, and the most
// recent fallback reason.
func (n *Node) DelegationStats() (delegated, fallbacks int64, lastFallback string) {
	n.mu.RLock()
	last := n.lastFallback
	n.mu.RUnlock()
	return atomic.LoadInt64(&n.delegated), atomic.LoadInt64(&n.delegFallbacks), last
}

// delegatedAnswers implements DelegatedAnswers; budget and visited are
// the cycle guards threaded through OpPCA requests.
func (n *Node) delegatedAnswers(q foquery.Formula, vars []string, transitive bool, budget int, visited []string) ([]relation.Tuple, DelegationInfo, error) {
	fallback := func(reason string) ([]relation.Tuple, DelegationInfo, error) {
		atomic.AddInt64(&n.delegFallbacks, 1)
		n.mu.Lock()
		n.lastFallback = reason
		n.mu.Unlock()
		ans, err := n.PeerConsistentAnswersFor(q, vars, transitive)
		return ans, DelegationInfo{Reason: reason}, err
	}
	if !transitive {
		return fallback("direct semantics reads neighbour data raw (nothing to delegate)")
	}
	if budget <= 0 {
		return fallback("delegation hop budget exhausted")
	}
	sys, addrs, err := n.specSnapshot(true)
	if err != nil {
		return fallback(fmt.Sprintf("spec snapshot failed: %v", err))
	}
	sl, err := slice.ForQuery(sys, n.Peer.ID, q, true)
	if err != nil {
		return fallback(fmt.Sprintf("slice computation failed: %v", err))
	}
	plan, reason := slice.PlanDelegation(sys, n.Peer.ID, sl)
	if plan == nil {
		return fallback(reason)
	}
	onPath := make(map[string]bool, len(visited))
	for _, id := range visited {
		onPath[id] = true
	}
	for _, d := range plan.Delegates {
		if onPath[string(d)] {
			return fallback(fmt.Sprintf("peer %s is already on the delegation path (cyclic overlay)", d))
		}
	}

	// Fan the plan out: one worker per planned peer, delegates first.
	// Results merge in plan order, so the composed system (and any
	// error, MapErr reports the first in index order) is deterministic.
	type kindOf struct {
		id       core.PeerID
		delegate bool
	}
	work := make([]kindOf, 0, len(plan.Delegates)+len(plan.Fetches))
	for _, d := range plan.Delegates {
		work = append(work, kindOf{d, true})
	}
	for _, f := range plan.Fetches {
		work = append(work, kindOf{f, false})
	}
	results, err := parallel.MapErr(len(work), parallel.Workers(n.Parallelism), func(i int) (map[string][]relation.Tuple, error) {
		w := work[i]
		addr, ok := addrs[w.id]
		if !ok {
			return nil, fmt.Errorf("peernet: no address known for peer %s", w.id)
		}
		if !w.delegate {
			return n.fetchRelationsAddr(w.id, addr, plan.Rels[w.id])
		}
		sp, _ := sys.Peer(w.id)
		out := make(map[string][]relation.Tuple, len(plan.Rels[w.id]))
		for _, rel := range plan.Rels[w.id] {
			decl, ok := sp.Schema.Decl(rel)
			if !ok {
				return nil, fmt.Errorf("peernet: peer %s does not declare %s", w.id, rel)
			}
			sub, subVars := foquery.AtomQuery(rel, decl.Arity)
			resp, err := n.tr.Call(addr, Request{
				Op: OpPCA, Query: sub.String(), Vars: subVars,
				Transitive: true, Sliced: true,
				Delegate: true, HopBudget: budget - 1, Visited: visited,
			})
			if err != nil {
				return nil, err
			}
			if resp.Err != "" {
				return nil, fmt.Errorf("peernet: delegated answers for %s from %s: %s", rel, w.id, resp.Err)
			}
			tuples := make([]relation.Tuple, 0, len(resp.Tuples))
			for _, t := range resp.Tuples {
				tuples = append(tuples, relation.Tuple(t))
			}
			out[rel] = tuples
		}
		return out, nil
	})
	if err != nil {
		return fallback(fmt.Sprintf("remote call failed: %v", err))
	}

	// Compose the mini system: the root clone plus one constraint-free
	// stub per planned peer holding the returned answer sets.
	stubs := make([]core.DelegatedPeer, 0, len(work)+len(plan.Stubs))
	subTuples := 0
	for i, w := range work {
		sp, _ := sys.Peer(w.id)
		stubs = append(stubs, core.DelegatedPeer{ID: w.id, Schema: sp.Schema, Rels: results[i]})
		for _, ts := range results[i] {
			subTuples += len(ts)
		}
	}
	for _, id := range plan.Stubs {
		sp, _ := sys.Peer(id)
		stubs = append(stubs, core.DelegatedPeer{ID: id, Schema: sp.Schema})
	}
	rootClone, _ := sys.Peer(n.Peer.ID)
	mini, err := core.ComposeDelegated(rootClone, stubs)
	if err != nil {
		return fallback(fmt.Sprintf("composition failed: %v", err))
	}
	ans, err := program.PeerConsistentAnswersViaLP(mini, n.Peer.ID, q, vars,
		program.RunOptions{Transitive: true, Parallelism: n.Parallelism})
	if err != nil {
		// A failed composed solve (e.g. the root has no solutions) falls
		// back so the error is the centralized path's, byte for byte.
		return fallback(fmt.Sprintf("composed solve failed: %v", err))
	}
	atomic.AddInt64(&n.delegated, 1)
	info := DelegationInfo{
		Delegated:   true,
		Delegates:   plan.Delegates,
		Fetches:     plan.Fetches,
		RemoteCalls: plan.RemoteCalls(),
		SubTuples:   subTuples,
	}
	return ans, info, nil
}

// AnswerCacheStats reports the hit/miss counters of the slice-keyed
// answer cache used by PeerConsistentAnswersFor.
func (n *Node) AnswerCacheStats() (hits, misses int64) {
	n.cacheMu.Lock()
	c := n.answers
	n.cacheMu.Unlock()
	if c == nil {
		return 0, 0
	}
	return c.Stats()
}

// CacheStats reports the TTL cache outcomes: assembled-snapshot cache
// hits/misses (Snapshot) and per-relation cache hits/misses (the sliced
// fetch paths). Counters only advance when CacheTTL > 0.
func (n *Node) CacheStats() (snapHits, snapMisses, relHits, relMisses int64) {
	return atomic.LoadInt64(&n.snapHits), atomic.LoadInt64(&n.snapMisses),
		atomic.LoadInt64(&n.relHits), atomic.LoadInt64(&n.relMisses)
}

// CoalesceStats reports how many AnswerQuery computations ran (leaders)
// and how many concurrent requests were absorbed into an in-flight
// computation under the same content-addressed key (coalesced).
func (n *Node) CoalesceStats() (leaders, coalesced int64) {
	return n.flights.Stats()
}

// SolverRuns counts the answering-engine invocations of AnswerQuery —
// queries that were served neither by the answer cache nor by joining
// an in-flight computation.
func (n *Node) SolverRuns() int64 { return atomic.LoadInt64(&n.solverRuns) }

// LocalWrites counts UpdateLocal calls.
func (n *Node) LocalWrites() int64 { return atomic.LoadInt64(&n.localWrites) }

// RepairStats reports the repair-engine counters accumulated across the
// direct-semantics queries this node answered: top-level searches,
// conflict-localized engagements and total conflict components (the
// transitive LP path performs no repair search).
func (n *Node) RepairStats() (searches, localized, components int64) {
	return n.repairStats.Snapshot()
}

// FetchRelation retrieves a neighbour's relation over the network,
// serving from the TTL cache when enabled.
func (n *Node) FetchRelation(id core.PeerID, rel string) ([]relation.Tuple, error) {
	m, err := n.FetchRelations(id, []string{rel})
	if err != nil {
		return nil, err
	}
	return m[rel], nil
}

func relCacheKey(id core.PeerID, rel string) string { return string(id) + "\x00" + rel }

// FetchRelations retrieves several of a neighbour's relations in ONE
// network round-trip (OpFetchBatch): the ROADMAP's batched alternative
// to issuing one OpFetch per relation, which pays the link latency k
// times. Relations already in the TTL cache are served locally and
// only the misses travel; the result maps each requested relation to
// its tuples (decoded from the plain-string wire form at this
// boundary).
func (n *Node) FetchRelations(id core.PeerID, rels []string) (map[string][]relation.Tuple, error) {
	addr, ok := n.NeighborAddr(id)
	if !ok {
		return nil, fmt.Errorf("peernet: no address known for peer %s", id)
	}
	return n.fetchRelationsAddr(id, addr, rels)
}

// fetchRelationsAddr is FetchRelations against an explicit address —
// the sliced snapshot walk discovers transitive peers outside the
// neighbour table and fetches their relations through here (sharing the
// same per-peer TTL cache).
func (n *Node) fetchRelationsAddr(id core.PeerID, addr string, rels []string) (map[string][]relation.Tuple, error) {
	out := make(map[string][]relation.Tuple, len(rels))
	missing := rels
	var gen uint64
	if n.CacheTTL > 0 {
		missing = nil
		n.cacheMu.Lock()
		gen = n.relGens[id]
		for _, rel := range rels {
			if e, ok := n.relCache[relCacheKey(id, rel)]; ok && n.now().Before(e.expires) {
				cp := make([]relation.Tuple, len(e.tuples))
				copy(cp, e.tuples)
				out[rel] = cp
			} else {
				missing = append(missing, rel)
			}
		}
		n.cacheMu.Unlock()
		atomic.AddInt64(&n.relHits, int64(len(rels)-len(missing)))
		atomic.AddInt64(&n.relMisses, int64(len(missing)))
	}
	if len(missing) == 0 {
		return out, nil
	}
	resp, err := n.tr.Call(addr, Request{Op: OpFetchBatch, Rels: missing})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("peernet: fetch %s from %s: %s", strings.Join(missing, ","), id, resp.Err)
	}
	for _, rel := range missing {
		raw, ok := resp.RelTuples[rel]
		if !ok {
			return nil, fmt.Errorf("peernet: peer %s returned no tuples for %s", id, rel)
		}
		tuples := make([]relation.Tuple, len(raw))
		for i, t := range raw {
			tuples[i] = relation.Tuple(t)
		}
		out[rel] = tuples
	}
	if n.CacheTTL > 0 {
		// Store the whole batch in one critical section: the results
		// arrived in one response, so they share one expiry and one
		// generation check (per peer: a SetNeighbor for another peer
		// does not discard this batch).
		n.cacheMu.Lock()
		if n.relGens[id] == gen {
			if n.relCache == nil {
				n.relCache = make(map[string]*relEntry)
			}
			expires := n.now().Add(n.CacheTTL)
			for _, rel := range missing {
				cached := make([]relation.Tuple, len(out[rel]))
				copy(cached, out[rel])
				n.relCache[relCacheKey(id, rel)] = &relEntry{tuples: cached, expires: expires}
			}
		}
		n.cacheMu.Unlock()
	}
	return out, nil
}
