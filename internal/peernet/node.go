package peernet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/parallel"
	"repro/internal/program"
	"repro/internal/relation"
	"repro/internal/slice"
	"repro/internal/sysdsl"
)

// Node hosts one peer at a network address: it serves the peer's data
// and specification to others and gathers its neighbours' data to
// answer queries with peer-consistent semantics.
//
// A Node is safe for concurrent use: the neighbour table is guarded by
// an internal lock (use SetNeighbor / NeighborAddr, not direct map
// writes, once the node is shared between goroutines), and the
// snapshot/relation caches are internally synchronized.
type Node struct {
	Peer *core.Peer
	Addr string
	// Neighbors maps peer ids to addresses. It is guarded by mu;
	// concurrent mutation must go through SetNeighbor.
	Neighbors map[core.PeerID]string
	// CacheTTL, when positive, caches assembled snapshots and fetched
	// relations for that duration: repeated queries inside the window
	// skip the network fan-out entirely. SetNeighbor invalidates the
	// caches. Zero (the default) disables caching — every query sees
	// the neighbours' live data, the seed behaviour.
	CacheTTL time.Duration
	// Parallelism bounds the concurrent neighbour fetches of Snapshot
	// and is forwarded to the answering engines (core.SolveOptions /
	// program.RunOptions). 0 means GOMAXPROCS; 1 restores the fully
	// sequential seed behaviour. Set before Start.
	Parallelism int

	mu   sync.RWMutex // guards Neighbors
	tr   Transport
	stop func()

	cacheMu sync.Mutex
	// snapGen is bumped by every SetNeighbor (assembled snapshots embed
	// the overlay shape, so any neighbour change invalidates them);
	// relGens advances per peer, so relation and spec cache entries of
	// unrelated peers survive a neighbour update (relation-granular
	// invalidation).
	snapGen   uint64
	relGens   map[core.PeerID]uint64
	snapCache map[bool]*snapEntry // keyed by the transitive flag
	relCache  map[string]*relEntry
	specCache map[core.PeerID]*specEntry

	// answers is the slice-keyed PCA cache of PeerConsistentAnswersFor:
	// entries are content-addressed by (query, vars, slice signature,
	// data fingerprint), so they need no invalidation — an update to an
	// irrelevant relation leaves the key untouched and the entry valid.
	answers *slice.AnswerCache

	clock func() time.Time // test hook; nil means time.Now
}

type snapEntry struct {
	sys     *core.System
	expires time.Time
}

type relEntry struct {
	tuples  []relation.Tuple
	expires time.Time
}

type specEntry struct {
	spec      string
	neighbors map[string]string
	expires   time.Time
}

// NewNode creates a node for a peer on the given transport. neighbours
// maps the peers named in the local DECs/trust to their addresses.
func NewNode(peer *core.Peer, tr Transport, neighbors map[core.PeerID]string) *Node {
	ns := make(map[core.PeerID]string, len(neighbors))
	for k, v := range neighbors {
		ns[k] = v
	}
	return &Node{Peer: peer, Neighbors: ns, tr: tr}
}

// Start begins serving at the requested address ("" or ":0" picks one)
// and records the bound address in n.Addr.
func (n *Node) Start(addr string) error {
	bound, closer, err := n.tr.Listen(addr, n.handle)
	if err != nil {
		return err
	}
	n.Addr = bound
	n.stop = closer
	return nil
}

// Stop stops serving.
func (n *Node) Stop() {
	if n.stop != nil {
		n.stop()
		n.stop = nil
	}
}

// SetNeighbor records (or updates) a neighbour address and invalidates
// the caches touched by the change: assembled whole-overlay snapshots
// are always dropped (they embed the overlay shape), but relation and
// spec cache entries are evicted only for the changed peer — entries
// of unrelated peers survive, so a neighbour update does not force
// refetching the rest of the overlay.
func (n *Node) SetNeighbor(id core.PeerID, addr string) {
	n.mu.Lock()
	n.Neighbors[id] = addr
	n.mu.Unlock()
	n.cacheMu.Lock()
	n.snapGen++
	n.snapCache = nil
	if n.relGens == nil {
		n.relGens = make(map[core.PeerID]uint64)
	}
	n.relGens[id]++
	prefix := string(id) + "\x00"
	for key := range n.relCache {
		if strings.HasPrefix(key, prefix) {
			delete(n.relCache, key)
		}
	}
	delete(n.specCache, id)
	n.cacheMu.Unlock()
}

// NeighborAddr looks up a neighbour address under the lock.
func (n *Node) NeighborAddr(id core.PeerID) (string, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	addr, ok := n.Neighbors[id]
	return addr, ok
}

// neighborsCopy snapshots the neighbour table under the lock.
func (n *Node) neighborsCopy() map[core.PeerID]string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make(map[core.PeerID]string, len(n.Neighbors))
	for k, v := range n.Neighbors {
		out[k] = v
	}
	return out
}

func (n *Node) now() time.Time {
	if n.clock != nil {
		return n.clock()
	}
	return time.Now()
}

func errResp(err error) Response { return Response{Err: err.Error()} }

func (n *Node) handle(req Request) Response {
	switch req.Op {
	case OpRelations:
		return Response{Relations: n.Peer.Schema.Relations()}
	case OpFetch:
		if !n.Peer.Schema.Has(req.Rel) {
			return errResp(fmt.Errorf("peer %s has no relation %s", n.Peer.ID, req.Rel))
		}
		var tuples [][]string
		for _, t := range n.Peer.Inst.Tuples(req.Rel) {
			tuples = append(tuples, []string(t))
		}
		return Response{Tuples: tuples}
	case OpFetchBatch:
		rt := make(map[string][][]string, len(req.Rels))
		for _, rel := range req.Rels {
			if !n.Peer.Schema.Has(rel) {
				return errResp(fmt.Errorf("peer %s has no relation %s", n.Peer.ID, rel))
			}
			tuples := [][]string{}
			for _, t := range n.Peer.Inst.Tuples(rel) {
				tuples = append(tuples, []string(t))
			}
			rt[rel] = tuples
		}
		return Response{RelTuples: rt}
	case OpQuery:
		f, err := foquery.Parse(req.Query)
		if err != nil {
			return errResp(err)
		}
		ans, err := foquery.Answers(n.Peer.Inst, f, req.Vars)
		if err != nil {
			return errResp(err)
		}
		var tuples [][]string
		for _, t := range ans {
			tuples = append(tuples, []string(t))
		}
		return Response{Tuples: tuples}
	case OpExport, OpExportSpec:
		spec, err := n.exportSpec(req.Op == OpExport)
		if err != nil {
			return errResp(err)
		}
		ns := n.neighborsCopy()
		neigh := make(map[string]string, len(ns))
		for id, addr := range ns {
			neigh[string(id)] = addr
		}
		return Response{Spec: spec, Neighbors: neigh}
	case OpPCA:
		f, err := foquery.Parse(req.Query)
		if err != nil {
			return errResp(err)
		}
		var ans []relation.Tuple
		if req.Sliced {
			ans, err = n.PeerConsistentAnswersFor(f, req.Vars, req.Transitive)
		} else {
			ans, err = n.PeerConsistentAnswers(f, req.Vars, req.Transitive)
		}
		if err != nil {
			return errResp(err)
		}
		var tuples [][]string
		for _, t := range ans {
			tuples = append(tuples, []string(t))
		}
		return Response{Tuples: tuples}
	}
	return errResp(fmt.Errorf("unknown op %q", req.Op))
}

// exportSpec renders this peer's specification as a single-peer system
// fragment in the sysdsl format, with or without the facts.
func (n *Node) exportSpec(withFacts bool) (string, error) {
	frag := core.NewSystem()
	if err := frag.AddPeer(n.Peer); err != nil {
		return "", err
	}
	if withFacts {
		return sysdsl.Format(frag), nil
	}
	return sysdsl.FormatSpec(frag), nil
}

// Snapshot assembles a core.System from this peer and its (transitively
// reachable, if requested) neighbours, fetching specifications over the
// network. In the direct case only immediate neighbours are fetched and
// their own DECs/trust are dropped (Definition 4 is a local notion); in
// the transitive case the whole reachable overlay is fetched with
// specifications intact (Section 4.3).
//
// Each BFS level is fetched concurrently on up to Parallelism workers,
// and with CacheTTL > 0 an assembled snapshot is reused until it
// expires. Queries never mutate a snapshot, so a cached system is safe
// to share between concurrent readers.
func (n *Node) Snapshot(transitive bool) (*core.System, error) {
	if n.CacheTTL <= 0 {
		return n.buildSnapshot(transitive)
	}
	n.cacheMu.Lock()
	if e, ok := n.snapCache[transitive]; ok && n.now().Before(e.expires) {
		n.cacheMu.Unlock()
		return e.sys, nil
	}
	gen := n.snapGen
	n.cacheMu.Unlock()
	// Build outside the lock: the fan-out can take multiple network
	// round trips and must not serialize concurrent queries (or block
	// SetNeighbor). Concurrent misses may build duplicate snapshots;
	// the last store wins, which is harmless.
	sys, err := n.buildSnapshot(transitive)
	if err != nil {
		return nil, err
	}
	n.cacheMu.Lock()
	if n.snapGen == gen {
		// Don't store a snapshot built against a neighbour table that
		// SetNeighbor has invalidated since.
		if n.snapCache == nil {
			n.snapCache = make(map[bool]*snapEntry)
		}
		n.snapCache[transitive] = &snapEntry{sys: sys, expires: n.now().Add(n.CacheTTL)}
	}
	n.cacheMu.Unlock()
	return sys, nil
}

func (n *Node) buildSnapshot(transitive bool) (*core.System, error) {
	sys, _, err := n.snapshotBFS(transitive, func(id core.PeerID, addr string) (string, map[string]string, error) {
		resp, err := n.tr.Call(addr, Request{Op: OpExport})
		if err != nil {
			return "", nil, err
		}
		if resp.Err != "" {
			return "", nil, fmt.Errorf("peernet: export from %s: %s", id, resp.Err)
		}
		return resp.Spec, resp.Neighbors, nil
	})
	return sys, err
}

// specFragment is one fetched peer export: the sysdsl fragment plus
// the peer's neighbour addresses.
type specFragment struct {
	spec      string
	neighbors map[string]string
}

// snapshotBFS is the shared snapshot walk: starting from the DEC
// neighbours, each BFS level is fetched concurrently through the given
// fetch callback and merged sequentially in level order, so the
// assembled system (and any error) is deterministic. In the direct
// case only immediate neighbours are fetched and their own DECs/trust
// are dropped (Definition 4 is a local notion); in the transitive case
// the whole reachable overlay is walked with specifications intact
// (Section 4.3). It returns the validated system and every address
// discovered along the way.
func (n *Node) snapshotBFS(transitive bool, fetch func(id core.PeerID, addr string) (string, map[string]string, error)) (*core.System, map[core.PeerID]string, error) {
	sys := core.NewSystem()
	if err := sys.AddPeer(n.Peer); err != nil {
		return nil, nil, err
	}
	fetched := map[core.PeerID]bool{n.Peer.ID: true}
	addrs := n.neighborsCopy()
	frontier := n.neighborIDs()
	for len(frontier) > 0 {
		// Deduplicate the level, dropping peers already fetched.
		var level []core.PeerID
		queued := map[core.PeerID]bool{}
		for _, id := range frontier {
			if !fetched[id] && !queued[id] {
				queued[id] = true
				level = append(level, id)
			}
		}
		frontier = frontier[:0]
		if len(level) == 0 {
			break
		}
		// Fetch the whole level concurrently; merge sequentially in
		// level order so the assembled system (and any error) is
		// deterministic.
		frags, err := parallel.MapErr(len(level), parallel.Workers(n.Parallelism), func(i int) (specFragment, error) {
			addr, ok := addrs[level[i]]
			if !ok {
				return specFragment{}, fmt.Errorf("peernet: no address known for peer %s", level[i])
			}
			spec, neigh, err := fetch(level[i], addr)
			return specFragment{spec: spec, neighbors: neigh}, err
		})
		if err != nil {
			return nil, nil, err
		}
		for i, id := range level {
			remote, err := sysdsl.ParsePartial(frags[i].spec)
			if err != nil {
				return nil, nil, fmt.Errorf("peernet: bad spec from %s: %w", id, err)
			}
			for _, rid := range remote.Peers() {
				rp, _ := remote.Peer(rid)
				if rid != id {
					return nil, nil, fmt.Errorf("peernet: peer %s exported a fragment for %s", id, rid)
				}
				if !transitive {
					// Direct case: the neighbour contributes data only
					// (Definition 4 is a local notion).
					rp.DECs = make(map[core.PeerID][]*constraint.Dependency)
					rp.Trust = make(map[core.PeerID]core.TrustLevel)
				}
				if err := sys.AddPeer(rp); err != nil {
					return nil, nil, err
				}
			}
			fetched[id] = true
			if transitive {
				for _, rid := range sortedNeighborIDs(frags[i].neighbors) {
					pid := core.PeerID(rid)
					if _, known := addrs[pid]; !known {
						addrs[pid] = frags[i].neighbors[rid]
					}
					if !fetched[pid] {
						frontier = append(frontier, pid)
					}
				}
			}
		}
	}
	if err := sys.Validate(); err != nil {
		return nil, nil, err
	}
	return sys, addrs, nil
}

func sortedNeighborIDs(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (n *Node) neighborIDs() []core.PeerID {
	var out []core.PeerID
	for id := range n.Peer.DECs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PeerConsistentAnswers answers a query posed to this peer with
// Definition 5 semantics, gathering remote data over the network first.
// With transitive=true the combined-program semantics of Section 4.3 is
// used. The node's Parallelism is forwarded to the answering engine.
func (n *Node) PeerConsistentAnswers(q foquery.Formula, vars []string, transitive bool) ([]relation.Tuple, error) {
	sys, err := n.Snapshot(transitive)
	if err != nil {
		return nil, err
	}
	if transitive {
		return program.PeerConsistentAnswersViaLP(sys, n.Peer.ID, q, vars,
			program.RunOptions{Transitive: true, Parallelism: n.Parallelism})
	}
	return core.PeerConsistentAnswers(sys, n.Peer.ID, q, vars,
		core.SolveOptions{Parallelism: n.Parallelism})
}

// fetchSpec retrieves a peer's specification (schema, DECs, trust — no
// facts) and its neighbour addresses, serving from the TTL spec cache
// when enabled. Spec entries share the per-peer generation of the
// relation cache, so SetNeighbor for one peer evicts only that peer's
// spec.
func (n *Node) fetchSpec(id core.PeerID, addr string) (string, map[string]string, error) {
	var gen uint64
	if n.CacheTTL > 0 {
		n.cacheMu.Lock()
		gen = n.relGens[id]
		if e, ok := n.specCache[id]; ok && n.now().Before(e.expires) {
			spec, neigh := e.spec, e.neighbors
			n.cacheMu.Unlock()
			return spec, neigh, nil
		}
		n.cacheMu.Unlock()
	}
	resp, err := n.tr.Call(addr, Request{Op: OpExportSpec})
	if err != nil {
		return "", nil, err
	}
	if resp.Err != "" {
		return "", nil, fmt.Errorf("peernet: export spec from %s: %s", id, resp.Err)
	}
	if n.CacheTTL > 0 {
		n.cacheMu.Lock()
		if n.relGens[id] == gen {
			if n.specCache == nil {
				n.specCache = make(map[core.PeerID]*specEntry)
			}
			n.specCache[id] = &specEntry{spec: resp.Spec, neighbors: resp.Neighbors, expires: n.now().Add(n.CacheTTL)}
		}
		n.cacheMu.Unlock()
	}
	return resp.Spec, resp.Neighbors, nil
}

// specSnapshot assembles the specification-only system for a sliced
// snapshot: the same BFS as buildSnapshot, but shipping OpExportSpec
// fragments (no data). It returns the system plus every address
// discovered, so the caller can fetch relations of transitively
// reachable peers that are not in the local neighbour table.
func (n *Node) specSnapshot(transitive bool) (*core.System, map[core.PeerID]string, error) {
	return n.snapshotBFS(transitive, n.fetchSpec)
}

// SnapshotFor assembles the query-relevance-sliced counterpart of
// Snapshot: specifications are fetched first (OpExportSpec, one
// round-trip per peer, no data), the relevance slice of the query is
// computed over them, and then only the relations in the slice travel —
// one batched OpFetchBatch round-trip per relevant peer, served from
// the relation-granular TTL cache when enabled. Peers owning no
// relevant relation contribute their schema and constraints but move no
// tuples at all. The returned system carries complete data for every
// relation in the slice, so any engine restricted by the slice
// (core.SolveOptions.KeepDep/RelevantRels, program counterparts)
// answers exactly as over a full Snapshot.
func (n *Node) SnapshotFor(q foquery.Formula, transitive bool) (*core.System, *slice.Slice, error) {
	sys, addrs, err := n.specSnapshot(transitive)
	if err != nil {
		return nil, nil, err
	}
	sl, err := slice.ForQuery(sys, n.Peer.ID, q, transitive)
	if err != nil {
		return nil, nil, err
	}
	peers := sl.RemotePeers()
	results, err := parallel.MapErr(len(peers), parallel.Workers(n.Parallelism), func(i int) (map[string][]relation.Tuple, error) {
		pid := peers[i]
		addr, ok := addrs[pid]
		if !ok {
			return nil, fmt.Errorf("peernet: no address known for peer %s", pid)
		}
		return n.fetchRelationsAddr(pid, addr, sl.RelsOf(pid))
	})
	if err != nil {
		return nil, nil, err
	}
	// Merge sequentially in sorted peer order (deterministic system).
	for i, pid := range peers {
		rp, _ := sys.Peer(pid)
		for _, rel := range sl.RelsOf(pid) {
			for _, t := range results[i][rel] {
				rp.Inst.Insert(rel, t)
			}
		}
	}
	return sys, sl, nil
}

// PeerConsistentAnswersFor is the sliced counterpart of
// PeerConsistentAnswers: the snapshot fetches only query-relevant
// relations (SnapshotFor), the engines enforce only the constraints in
// the slice, and the answers are cached under a (query, vars, slice
// signature, data fingerprint) key. The key is content-addressed, so a
// repeat query over unchanged relevant data is served without any
// grounding or repair search — and an update to an irrelevant relation
// does not evict it. Answers are identical to PeerConsistentAnswers.
func (n *Node) PeerConsistentAnswersFor(q foquery.Formula, vars []string, transitive bool) ([]relation.Tuple, error) {
	sys, sl, err := n.SnapshotFor(q, transitive)
	if err != nil {
		return nil, err
	}
	fp, err := slice.DataFingerprint(sys, sl)
	if err != nil {
		return nil, err
	}
	key := slice.AnswerKey(q.String(), vars, sl, fp)
	n.cacheMu.Lock()
	if n.answers == nil {
		n.answers = slice.NewAnswerCache(0)
	}
	cache := n.answers
	n.cacheMu.Unlock()
	if ans, ok := cache.Get(key); ok {
		return ans, nil
	}
	var ans []relation.Tuple
	if transitive {
		ans, err = program.PeerConsistentAnswersViaLP(sys, n.Peer.ID, q, vars, program.RunOptions{
			Transitive:   true,
			Parallelism:  n.Parallelism,
			KeepDep:      sl.KeepDep,
			RelevantRels: sl.RelevantRels(),
		})
	} else {
		ans, err = core.PeerConsistentAnswers(sys, n.Peer.ID, q, vars, core.SolveOptions{
			Parallelism:  n.Parallelism,
			KeepDep:      sl.KeepDep,
			RelevantRels: sl.RelevantRels(),
		})
	}
	if err != nil {
		return nil, err
	}
	cache.Put(key, ans)
	return ans, nil
}

// AnswerCacheStats reports the hit/miss counters of the slice-keyed
// answer cache used by PeerConsistentAnswersFor.
func (n *Node) AnswerCacheStats() (hits, misses int64) {
	n.cacheMu.Lock()
	c := n.answers
	n.cacheMu.Unlock()
	if c == nil {
		return 0, 0
	}
	return c.Stats()
}

// FetchRelation retrieves a neighbour's relation over the network,
// serving from the TTL cache when enabled.
func (n *Node) FetchRelation(id core.PeerID, rel string) ([]relation.Tuple, error) {
	m, err := n.FetchRelations(id, []string{rel})
	if err != nil {
		return nil, err
	}
	return m[rel], nil
}

func relCacheKey(id core.PeerID, rel string) string { return string(id) + "\x00" + rel }

// FetchRelations retrieves several of a neighbour's relations in ONE
// network round-trip (OpFetchBatch): the ROADMAP's batched alternative
// to issuing one OpFetch per relation, which pays the link latency k
// times. Relations already in the TTL cache are served locally and
// only the misses travel; the result maps each requested relation to
// its tuples (decoded from the plain-string wire form at this
// boundary).
func (n *Node) FetchRelations(id core.PeerID, rels []string) (map[string][]relation.Tuple, error) {
	addr, ok := n.NeighborAddr(id)
	if !ok {
		return nil, fmt.Errorf("peernet: no address known for peer %s", id)
	}
	return n.fetchRelationsAddr(id, addr, rels)
}

// fetchRelationsAddr is FetchRelations against an explicit address —
// the sliced snapshot walk discovers transitive peers outside the
// neighbour table and fetches their relations through here (sharing the
// same per-peer TTL cache).
func (n *Node) fetchRelationsAddr(id core.PeerID, addr string, rels []string) (map[string][]relation.Tuple, error) {
	out := make(map[string][]relation.Tuple, len(rels))
	missing := rels
	var gen uint64
	if n.CacheTTL > 0 {
		missing = nil
		n.cacheMu.Lock()
		gen = n.relGens[id]
		for _, rel := range rels {
			if e, ok := n.relCache[relCacheKey(id, rel)]; ok && n.now().Before(e.expires) {
				cp := make([]relation.Tuple, len(e.tuples))
				copy(cp, e.tuples)
				out[rel] = cp
			} else {
				missing = append(missing, rel)
			}
		}
		n.cacheMu.Unlock()
	}
	if len(missing) == 0 {
		return out, nil
	}
	resp, err := n.tr.Call(addr, Request{Op: OpFetchBatch, Rels: missing})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("peernet: fetch %s from %s: %s", strings.Join(missing, ","), id, resp.Err)
	}
	for _, rel := range missing {
		raw, ok := resp.RelTuples[rel]
		if !ok {
			return nil, fmt.Errorf("peernet: peer %s returned no tuples for %s", id, rel)
		}
		tuples := make([]relation.Tuple, len(raw))
		for i, t := range raw {
			tuples[i] = relation.Tuple(t)
		}
		out[rel] = tuples
	}
	if n.CacheTTL > 0 {
		// Store the whole batch in one critical section: the results
		// arrived in one response, so they share one expiry and one
		// generation check (per peer: a SetNeighbor for another peer
		// does not discard this batch).
		n.cacheMu.Lock()
		if n.relGens[id] == gen {
			if n.relCache == nil {
				n.relCache = make(map[string]*relEntry)
			}
			expires := n.now().Add(n.CacheTTL)
			for _, rel := range missing {
				cached := make([]relation.Tuple, len(out[rel]))
				copy(cached, out[rel])
				n.relCache[relCacheKey(id, rel)] = &relEntry{tuples: cached, expires: expires}
			}
		}
		n.cacheMu.Unlock()
	}
	return out, nil
}
