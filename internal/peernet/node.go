package peernet

import (
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/program"
	"repro/internal/relation"
	"repro/internal/sysdsl"
)

// Node hosts one peer at a network address: it serves the peer's data
// and specification to others and gathers its neighbours' data to
// answer queries with peer-consistent semantics.
type Node struct {
	Peer      *core.Peer
	Addr      string
	Neighbors map[core.PeerID]string // peer id -> address
	tr        Transport
	stop      func()
}

// NewNode creates a node for a peer on the given transport. neighbours
// maps the peers named in the local DECs/trust to their addresses.
func NewNode(peer *core.Peer, tr Transport, neighbors map[core.PeerID]string) *Node {
	ns := make(map[core.PeerID]string, len(neighbors))
	for k, v := range neighbors {
		ns[k] = v
	}
	return &Node{Peer: peer, Neighbors: ns, tr: tr}
}

// Start begins serving at the requested address ("" or ":0" picks one)
// and records the bound address in n.Addr.
func (n *Node) Start(addr string) error {
	bound, closer, err := n.tr.Listen(addr, n.handle)
	if err != nil {
		return err
	}
	n.Addr = bound
	n.stop = closer
	return nil
}

// Stop stops serving.
func (n *Node) Stop() {
	if n.stop != nil {
		n.stop()
		n.stop = nil
	}
}

// SetNeighbor records (or updates) a neighbour address.
func (n *Node) SetNeighbor(id core.PeerID, addr string) { n.Neighbors[id] = addr }

func errResp(err error) Response { return Response{Err: err.Error()} }

func (n *Node) handle(req Request) Response {
	switch req.Op {
	case OpRelations:
		return Response{Relations: n.Peer.Schema.Relations()}
	case OpFetch:
		if !n.Peer.Schema.Has(req.Rel) {
			return errResp(fmt.Errorf("peer %s has no relation %s", n.Peer.ID, req.Rel))
		}
		var tuples [][]string
		for _, t := range n.Peer.Inst.Tuples(req.Rel) {
			tuples = append(tuples, []string(t))
		}
		return Response{Tuples: tuples}
	case OpQuery:
		f, err := foquery.Parse(req.Query)
		if err != nil {
			return errResp(err)
		}
		ans, err := foquery.Answers(n.Peer.Inst, f, req.Vars)
		if err != nil {
			return errResp(err)
		}
		var tuples [][]string
		for _, t := range ans {
			tuples = append(tuples, []string(t))
		}
		return Response{Tuples: tuples}
	case OpExport:
		spec, err := n.exportSpec()
		if err != nil {
			return errResp(err)
		}
		neigh := make(map[string]string, len(n.Neighbors))
		for id, addr := range n.Neighbors {
			neigh[string(id)] = addr
		}
		return Response{Spec: spec, Neighbors: neigh}
	case OpPCA:
		f, err := foquery.Parse(req.Query)
		if err != nil {
			return errResp(err)
		}
		ans, err := n.PeerConsistentAnswers(f, req.Vars, req.Transitive)
		if err != nil {
			return errResp(err)
		}
		var tuples [][]string
		for _, t := range ans {
			tuples = append(tuples, []string(t))
		}
		return Response{Tuples: tuples}
	}
	return errResp(fmt.Errorf("unknown op %q", req.Op))
}

// exportSpec renders this peer's specification as a single-peer system
// fragment in the sysdsl format.
func (n *Node) exportSpec() (string, error) {
	frag := core.NewSystem()
	if err := frag.AddPeer(n.Peer); err != nil {
		return "", err
	}
	return sysdsl.Format(frag), nil
}

// Snapshot assembles a core.System from this peer and its (transitively
// reachable, if requested) neighbours, fetching specifications over the
// network. In the direct case only immediate neighbours are fetched and
// their own DECs/trust are dropped (Definition 4 is a local notion); in
// the transitive case the whole reachable overlay is fetched with
// specifications intact (Section 4.3).
func (n *Node) Snapshot(transitive bool) (*core.System, error) {
	sys := core.NewSystem()
	if err := sys.AddPeer(n.Peer); err != nil {
		return nil, err
	}
	fetched := map[core.PeerID]bool{n.Peer.ID: true}
	frontier := n.neighborIDs()
	addrs := map[core.PeerID]string{}
	for id, a := range n.Neighbors {
		addrs[id] = a
	}
	for len(frontier) > 0 {
		id := frontier[0]
		frontier = frontier[1:]
		if fetched[id] {
			continue
		}
		addr, ok := addrs[id]
		if !ok {
			return nil, fmt.Errorf("peernet: no address known for peer %s", id)
		}
		resp, err := n.tr.Call(addr, Request{Op: OpExport})
		if err != nil {
			return nil, err
		}
		if resp.Err != "" {
			return nil, fmt.Errorf("peernet: export from %s: %s", id, resp.Err)
		}
		remote, err := sysdsl.ParsePartial(resp.Spec)
		if err != nil {
			return nil, fmt.Errorf("peernet: bad spec from %s: %w", id, err)
		}
		for _, rid := range remote.Peers() {
			rp, _ := remote.Peer(rid)
			if rid != id {
				return nil, fmt.Errorf("peernet: peer %s exported a fragment for %s", id, rid)
			}
			if !transitive {
				// Direct case: the neighbour contributes data only
				// (Definition 4 is a local notion).
				rp.DECs = make(map[core.PeerID][]*constraint.Dependency)
				rp.Trust = make(map[core.PeerID]core.TrustLevel)
			}
			if err := sys.AddPeer(rp); err != nil {
				return nil, err
			}
		}
		fetched[id] = true
		if transitive {
			for rid, raddr := range resp.Neighbors {
				pid := core.PeerID(rid)
				if _, known := addrs[pid]; !known {
					addrs[pid] = raddr
				}
				if !fetched[pid] {
					frontier = append(frontier, pid)
				}
			}
		}
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}

func (n *Node) neighborIDs() []core.PeerID {
	var out []core.PeerID
	for id := range n.Peer.DECs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PeerConsistentAnswers answers a query posed to this peer with
// Definition 5 semantics, gathering remote data over the network first.
// With transitive=true the combined-program semantics of Section 4.3 is
// used.
func (n *Node) PeerConsistentAnswers(q foquery.Formula, vars []string, transitive bool) ([]relation.Tuple, error) {
	sys, err := n.Snapshot(transitive)
	if err != nil {
		return nil, err
	}
	if transitive {
		return program.PeerConsistentAnswersViaLP(sys, n.Peer.ID, q, vars, program.RunOptions{Transitive: true})
	}
	return core.PeerConsistentAnswers(sys, n.Peer.ID, q, vars, core.SolveOptions{})
}

// FetchRelation retrieves a neighbour's relation over the network.
func (n *Node) FetchRelation(id core.PeerID, rel string) ([]relation.Tuple, error) {
	addr, ok := n.Neighbors[id]
	if !ok {
		return nil, fmt.Errorf("peernet: no address known for peer %s", id)
	}
	resp, err := n.tr.Call(addr, Request{Op: OpFetch, Rel: rel})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("peernet: fetch %s from %s: %s", rel, id, resp.Err)
	}
	out := make([]relation.Tuple, len(resp.Tuples))
	for i, t := range resp.Tuples {
		out[i] = relation.Tuple(t)
	}
	return out, nil
}
