package peernet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/parallel"
	"repro/internal/program"
	"repro/internal/relation"
	"repro/internal/sysdsl"
)

// Node hosts one peer at a network address: it serves the peer's data
// and specification to others and gathers its neighbours' data to
// answer queries with peer-consistent semantics.
//
// A Node is safe for concurrent use: the neighbour table is guarded by
// an internal lock (use SetNeighbor / NeighborAddr, not direct map
// writes, once the node is shared between goroutines), and the
// snapshot/relation caches are internally synchronized.
type Node struct {
	Peer *core.Peer
	Addr string
	// Neighbors maps peer ids to addresses. It is guarded by mu;
	// concurrent mutation must go through SetNeighbor.
	Neighbors map[core.PeerID]string
	// CacheTTL, when positive, caches assembled snapshots and fetched
	// relations for that duration: repeated queries inside the window
	// skip the network fan-out entirely. SetNeighbor invalidates the
	// caches. Zero (the default) disables caching — every query sees
	// the neighbours' live data, the seed behaviour.
	CacheTTL time.Duration
	// Parallelism bounds the concurrent neighbour fetches of Snapshot
	// and is forwarded to the answering engines (core.SolveOptions /
	// program.RunOptions). 0 means GOMAXPROCS; 1 restores the fully
	// sequential seed behaviour. Set before Start.
	Parallelism int

	mu   sync.RWMutex // guards Neighbors
	tr   Transport
	stop func()

	cacheMu   sync.Mutex
	cacheGen  uint64              // bumped by SetNeighbor to invalidate in-flight builds
	snapCache map[bool]*snapEntry // keyed by the transitive flag
	relCache  map[string]*relEntry

	clock func() time.Time // test hook; nil means time.Now
}

type snapEntry struct {
	sys     *core.System
	expires time.Time
}

type relEntry struct {
	tuples  []relation.Tuple
	expires time.Time
}

// NewNode creates a node for a peer on the given transport. neighbours
// maps the peers named in the local DECs/trust to their addresses.
func NewNode(peer *core.Peer, tr Transport, neighbors map[core.PeerID]string) *Node {
	ns := make(map[core.PeerID]string, len(neighbors))
	for k, v := range neighbors {
		ns[k] = v
	}
	return &Node{Peer: peer, Neighbors: ns, tr: tr}
}

// Start begins serving at the requested address ("" or ":0" picks one)
// and records the bound address in n.Addr.
func (n *Node) Start(addr string) error {
	bound, closer, err := n.tr.Listen(addr, n.handle)
	if err != nil {
		return err
	}
	n.Addr = bound
	n.stop = closer
	return nil
}

// Stop stops serving.
func (n *Node) Stop() {
	if n.stop != nil {
		n.stop()
		n.stop = nil
	}
}

// SetNeighbor records (or updates) a neighbour address and invalidates
// the caches (the overlay changed, so cached snapshots may be stale).
func (n *Node) SetNeighbor(id core.PeerID, addr string) {
	n.mu.Lock()
	n.Neighbors[id] = addr
	n.mu.Unlock()
	n.cacheMu.Lock()
	n.cacheGen++
	n.snapCache = nil
	n.relCache = nil
	n.cacheMu.Unlock()
}

// NeighborAddr looks up a neighbour address under the lock.
func (n *Node) NeighborAddr(id core.PeerID) (string, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	addr, ok := n.Neighbors[id]
	return addr, ok
}

// neighborsCopy snapshots the neighbour table under the lock.
func (n *Node) neighborsCopy() map[core.PeerID]string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make(map[core.PeerID]string, len(n.Neighbors))
	for k, v := range n.Neighbors {
		out[k] = v
	}
	return out
}

func (n *Node) now() time.Time {
	if n.clock != nil {
		return n.clock()
	}
	return time.Now()
}

func errResp(err error) Response { return Response{Err: err.Error()} }

func (n *Node) handle(req Request) Response {
	switch req.Op {
	case OpRelations:
		return Response{Relations: n.Peer.Schema.Relations()}
	case OpFetch:
		if !n.Peer.Schema.Has(req.Rel) {
			return errResp(fmt.Errorf("peer %s has no relation %s", n.Peer.ID, req.Rel))
		}
		var tuples [][]string
		for _, t := range n.Peer.Inst.Tuples(req.Rel) {
			tuples = append(tuples, []string(t))
		}
		return Response{Tuples: tuples}
	case OpFetchBatch:
		rt := make(map[string][][]string, len(req.Rels))
		for _, rel := range req.Rels {
			if !n.Peer.Schema.Has(rel) {
				return errResp(fmt.Errorf("peer %s has no relation %s", n.Peer.ID, rel))
			}
			tuples := [][]string{}
			for _, t := range n.Peer.Inst.Tuples(rel) {
				tuples = append(tuples, []string(t))
			}
			rt[rel] = tuples
		}
		return Response{RelTuples: rt}
	case OpQuery:
		f, err := foquery.Parse(req.Query)
		if err != nil {
			return errResp(err)
		}
		ans, err := foquery.Answers(n.Peer.Inst, f, req.Vars)
		if err != nil {
			return errResp(err)
		}
		var tuples [][]string
		for _, t := range ans {
			tuples = append(tuples, []string(t))
		}
		return Response{Tuples: tuples}
	case OpExport:
		spec, err := n.exportSpec()
		if err != nil {
			return errResp(err)
		}
		ns := n.neighborsCopy()
		neigh := make(map[string]string, len(ns))
		for id, addr := range ns {
			neigh[string(id)] = addr
		}
		return Response{Spec: spec, Neighbors: neigh}
	case OpPCA:
		f, err := foquery.Parse(req.Query)
		if err != nil {
			return errResp(err)
		}
		ans, err := n.PeerConsistentAnswers(f, req.Vars, req.Transitive)
		if err != nil {
			return errResp(err)
		}
		var tuples [][]string
		for _, t := range ans {
			tuples = append(tuples, []string(t))
		}
		return Response{Tuples: tuples}
	}
	return errResp(fmt.Errorf("unknown op %q", req.Op))
}

// exportSpec renders this peer's specification as a single-peer system
// fragment in the sysdsl format.
func (n *Node) exportSpec() (string, error) {
	frag := core.NewSystem()
	if err := frag.AddPeer(n.Peer); err != nil {
		return "", err
	}
	return sysdsl.Format(frag), nil
}

// Snapshot assembles a core.System from this peer and its (transitively
// reachable, if requested) neighbours, fetching specifications over the
// network. In the direct case only immediate neighbours are fetched and
// their own DECs/trust are dropped (Definition 4 is a local notion); in
// the transitive case the whole reachable overlay is fetched with
// specifications intact (Section 4.3).
//
// Each BFS level is fetched concurrently on up to Parallelism workers,
// and with CacheTTL > 0 an assembled snapshot is reused until it
// expires. Queries never mutate a snapshot, so a cached system is safe
// to share between concurrent readers.
func (n *Node) Snapshot(transitive bool) (*core.System, error) {
	if n.CacheTTL <= 0 {
		return n.buildSnapshot(transitive)
	}
	n.cacheMu.Lock()
	if e, ok := n.snapCache[transitive]; ok && n.now().Before(e.expires) {
		n.cacheMu.Unlock()
		return e.sys, nil
	}
	gen := n.cacheGen
	n.cacheMu.Unlock()
	// Build outside the lock: the fan-out can take multiple network
	// round trips and must not serialize concurrent queries (or block
	// SetNeighbor). Concurrent misses may build duplicate snapshots;
	// the last store wins, which is harmless.
	sys, err := n.buildSnapshot(transitive)
	if err != nil {
		return nil, err
	}
	n.cacheMu.Lock()
	if n.cacheGen == gen {
		// Don't store a snapshot built against a neighbour table that
		// SetNeighbor has invalidated since.
		if n.snapCache == nil {
			n.snapCache = make(map[bool]*snapEntry)
		}
		n.snapCache[transitive] = &snapEntry{sys: sys, expires: n.now().Add(n.CacheTTL)}
	}
	n.cacheMu.Unlock()
	return sys, nil
}

func (n *Node) buildSnapshot(transitive bool) (*core.System, error) {
	sys := core.NewSystem()
	if err := sys.AddPeer(n.Peer); err != nil {
		return nil, err
	}
	fetched := map[core.PeerID]bool{n.Peer.ID: true}
	addrs := n.neighborsCopy()
	frontier := n.neighborIDs()
	for len(frontier) > 0 {
		// Deduplicate the level, dropping peers already fetched.
		var level []core.PeerID
		queued := map[core.PeerID]bool{}
		for _, id := range frontier {
			if !fetched[id] && !queued[id] {
				queued[id] = true
				level = append(level, id)
			}
		}
		frontier = frontier[:0]
		if len(level) == 0 {
			break
		}
		// Fetch the whole level concurrently; merge sequentially in
		// level order so the assembled system (and any error) is
		// deterministic.
		resps, err := parallel.MapErr(len(level), parallel.Workers(n.Parallelism), func(i int) (Response, error) {
			addr, ok := addrs[level[i]]
			if !ok {
				return Response{}, fmt.Errorf("peernet: no address known for peer %s", level[i])
			}
			return n.tr.Call(addr, Request{Op: OpExport})
		})
		if err != nil {
			return nil, err
		}
		for i, id := range level {
			resp := resps[i]
			if resp.Err != "" {
				return nil, fmt.Errorf("peernet: export from %s: %s", id, resp.Err)
			}
			remote, err := sysdsl.ParsePartial(resp.Spec)
			if err != nil {
				return nil, fmt.Errorf("peernet: bad spec from %s: %w", id, err)
			}
			for _, rid := range remote.Peers() {
				rp, _ := remote.Peer(rid)
				if rid != id {
					return nil, fmt.Errorf("peernet: peer %s exported a fragment for %s", id, rid)
				}
				if !transitive {
					// Direct case: the neighbour contributes data only
					// (Definition 4 is a local notion).
					rp.DECs = make(map[core.PeerID][]*constraint.Dependency)
					rp.Trust = make(map[core.PeerID]core.TrustLevel)
				}
				if err := sys.AddPeer(rp); err != nil {
					return nil, err
				}
			}
			fetched[id] = true
			if transitive {
				for _, rid := range sortedNeighborIDs(resp.Neighbors) {
					pid := core.PeerID(rid)
					if _, known := addrs[pid]; !known {
						addrs[pid] = resp.Neighbors[rid]
					}
					if !fetched[pid] {
						frontier = append(frontier, pid)
					}
				}
			}
		}
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}

func sortedNeighborIDs(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (n *Node) neighborIDs() []core.PeerID {
	var out []core.PeerID
	for id := range n.Peer.DECs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PeerConsistentAnswers answers a query posed to this peer with
// Definition 5 semantics, gathering remote data over the network first.
// With transitive=true the combined-program semantics of Section 4.3 is
// used. The node's Parallelism is forwarded to the answering engine.
func (n *Node) PeerConsistentAnswers(q foquery.Formula, vars []string, transitive bool) ([]relation.Tuple, error) {
	sys, err := n.Snapshot(transitive)
	if err != nil {
		return nil, err
	}
	if transitive {
		return program.PeerConsistentAnswersViaLP(sys, n.Peer.ID, q, vars,
			program.RunOptions{Transitive: true, Parallelism: n.Parallelism})
	}
	return core.PeerConsistentAnswers(sys, n.Peer.ID, q, vars,
		core.SolveOptions{Parallelism: n.Parallelism})
}

// FetchRelation retrieves a neighbour's relation over the network,
// serving from the TTL cache when enabled.
func (n *Node) FetchRelation(id core.PeerID, rel string) ([]relation.Tuple, error) {
	m, err := n.FetchRelations(id, []string{rel})
	if err != nil {
		return nil, err
	}
	return m[rel], nil
}

func relCacheKey(id core.PeerID, rel string) string { return string(id) + "\x00" + rel }

// FetchRelations retrieves several of a neighbour's relations in ONE
// network round-trip (OpFetchBatch): the ROADMAP's batched alternative
// to issuing one OpFetch per relation, which pays the link latency k
// times. Relations already in the TTL cache are served locally and
// only the misses travel; the result maps each requested relation to
// its tuples (decoded from the plain-string wire form at this
// boundary).
func (n *Node) FetchRelations(id core.PeerID, rels []string) (map[string][]relation.Tuple, error) {
	out := make(map[string][]relation.Tuple, len(rels))
	missing := rels
	var gen uint64
	if n.CacheTTL > 0 {
		missing = nil
		n.cacheMu.Lock()
		gen = n.cacheGen
		for _, rel := range rels {
			if e, ok := n.relCache[relCacheKey(id, rel)]; ok && n.now().Before(e.expires) {
				cp := make([]relation.Tuple, len(e.tuples))
				copy(cp, e.tuples)
				out[rel] = cp
			} else {
				missing = append(missing, rel)
			}
		}
		n.cacheMu.Unlock()
	}
	if len(missing) == 0 {
		return out, nil
	}
	addr, ok := n.NeighborAddr(id)
	if !ok {
		return nil, fmt.Errorf("peernet: no address known for peer %s", id)
	}
	resp, err := n.tr.Call(addr, Request{Op: OpFetchBatch, Rels: missing})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("peernet: fetch %s from %s: %s", strings.Join(missing, ","), id, resp.Err)
	}
	for _, rel := range missing {
		raw, ok := resp.RelTuples[rel]
		if !ok {
			return nil, fmt.Errorf("peernet: peer %s returned no tuples for %s", id, rel)
		}
		tuples := make([]relation.Tuple, len(raw))
		for i, t := range raw {
			tuples[i] = relation.Tuple(t)
		}
		out[rel] = tuples
	}
	if n.CacheTTL > 0 {
		// Store the whole batch in one critical section: the results
		// arrived in one response, so they share one expiry and one
		// generation check.
		n.cacheMu.Lock()
		if n.cacheGen == gen {
			if n.relCache == nil {
				n.relCache = make(map[string]*relEntry)
			}
			expires := n.now().Add(n.CacheTTL)
			for _, rel := range missing {
				cached := make([]relation.Tuple, len(out[rel]))
				copy(cached, out[rel])
				n.relCache[relCacheKey(id, rel)] = &relEntry{tuples: cached, expires: expires}
			}
		}
		n.cacheMu.Unlock()
	}
	return out, nil
}
