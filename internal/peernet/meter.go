package peernet

import (
	"encoding/gob"
	"sync/atomic"
)

// Meter wraps a Transport and counts, for every Call made through it,
// the round trips and the wire size of the requests sent and responses
// received (the gob encoding both transports would ship). Giving each
// node its own Meter over a shared underlying transport measures that
// node's traffic in isolation — benchmark B11 uses this to compare the
// querying peer's bytes received under central pull vs delegation,
// uniformly over InProc and TCP. Listen passes through unmetered.
type Meter struct {
	T     Transport
	calls int64
	sent  int64
	recv  int64
}

// Listen implements Transport by delegating to the wrapped transport.
func (m *Meter) Listen(addr string, h Handler) (string, func(), error) {
	return m.T.Listen(addr, h)
}

// Call implements Transport, counting the round trip and the gob sizes
// of the request and response.
func (m *Meter) Call(addr string, req Request) (Response, error) {
	atomic.AddInt64(&m.calls, 1)
	atomic.AddInt64(&m.sent, gobSize(&req))
	resp, err := m.T.Call(addr, req)
	if err == nil {
		atomic.AddInt64(&m.recv, gobSize(&resp))
	}
	return resp, err
}

// Stats returns the calls made and the request/response bytes moved
// through this meter since creation (or the last Reset).
func (m *Meter) Stats() (calls, sentBytes, recvBytes int64) {
	return atomic.LoadInt64(&m.calls), atomic.LoadInt64(&m.sent), atomic.LoadInt64(&m.recv)
}

// Reset zeroes the counters.
func (m *Meter) Reset() {
	atomic.StoreInt64(&m.calls, 0)
	atomic.StoreInt64(&m.sent, 0)
	atomic.StoreInt64(&m.recv, 0)
}

// countWriter counts bytes written.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// gobSize measures the gob encoding of v. Each value is encoded with a
// fresh encoder, matching the one-request-per-connection framing of the
// TCP transport (type descriptors are re-sent per call there too).
func gobSize(v any) int64 {
	var w countWriter
	if err := gob.NewEncoder(&w).Encode(v); err != nil {
		return 0
	}
	return w.n
}
