package peernet

import (
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/workload"
)

// TestSlicedAnswersEqualFull: PeerConsistentAnswersFor must return
// byte-identical answers to PeerConsistentAnswers on the fixtures and
// the wide-universe workload, in both the direct and transitive cases.
func TestSlicedAnswersEqualFull(t *testing.T) {
	cases := []struct {
		name       string
		sys        *core.System
		peer       core.PeerID
		query      string
		vars       []string
		transitive bool
	}{
		{"Example1/direct", core.Example1System(), "P1", "r1(X,Y)", []string{"X", "Y"}, false},
		{"Example4/direct", core.Example4System(), "P", "r1(X,Y)", []string{"X", "Y"}, false},
		{"Example4/transitive", core.Example4System(), "P", "r1(X,Y)", []string{"X", "Y"}, true},
		{"WideUniverse/direct", workload.WideUniverse(4, 2, 5, 1, 1), "P0", "q0(X,Y)", []string{"X", "Y"}, false},
		{"Chain/transitive", workload.Chain(3, 3, 1), "P0", "t0(X,Y)", []string{"X", "Y"}, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			nodes := startNetwork(t, tc.sys, NewInProc())
			n := nodes[tc.peer]
			q := foquery.MustParse(tc.query)
			want, err := n.PeerConsistentAnswers(q, tc.vars, tc.transitive)
			if err != nil {
				t.Fatal(err)
			}
			got, err := n.PeerConsistentAnswersFor(q, tc.vars, tc.transitive)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("sliced answers %v != full %v", got, want)
			}
		})
	}
}

// TestSnapshotForFetchesOnlySlice: a sliced snapshot must move no
// bystander data over the wire (only spec exports and the relevant
// relations travel), while still assembling a valid system containing
// every peer's schema.
func TestSnapshotForFetchesOnlySlice(t *testing.T) {
	sys := workload.WideUniverse(3, 2, 4, 1, 1)
	tr := &opRecordingTransport{Transport: NewInProc()}
	nodes := startNetwork(t, sys, tr)
	root := nodes["P0"]
	tr.reset()
	snap, sl, err := root.SnapshotFor(foquery.MustParse("q0(X,Y)"), false)
	if err != nil {
		t.Fatal(err)
	}
	if got := sl.RemoteRelCount(); got != 1 {
		t.Fatalf("slice moves %d remote relations, want 1 (c0): %v", got, sl.Rels)
	}
	fetched := tr.fetchedRels()
	if !reflect.DeepEqual(fetched, []string{"c0"}) {
		t.Fatalf("fetched relations %v, want [c0]", fetched)
	}
	if tr.count(OpExport) != 0 {
		t.Fatal("sliced snapshot must not use full exports")
	}
	// The snapshot still knows every peer (schemas and constraints for
	// validation), just without bystander data.
	if len(snap.Peers()) != len(sys.Peers()) {
		t.Fatalf("snapshot has %d peers, want %d", len(snap.Peers()), len(sys.Peers()))
	}
	b0, _ := snap.Peer("B0")
	if b0.Inst.Size() != 0 {
		t.Fatalf("bystander data travelled: %d tuples", b0.Inst.Size())
	}
}

// TestAnswerCacheSurvivesIrrelevantUpdate: the slice-keyed answer cache
// is content-addressed, so an update to an irrelevant relation keeps
// serving hits while an update to a relevant relation misses and
// recomputes fresh answers.
func TestAnswerCacheSurvivesIrrelevantUpdate(t *testing.T) {
	sys := workload.WideUniverse(3, 2, 4, 0, 1)
	nodes := startNetwork(t, sys, NewInProc())
	root := nodes["P0"]
	q := foquery.MustParse("q0(X,Y)")
	vars := []string{"X", "Y"}

	first, err := root.PeerConsistentAnswersFor(q, vars, false)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := root.AnswerCacheStats(); hits != 0 || misses != 1 {
		t.Fatalf("cold query: hits=%d misses=%d", hits, misses)
	}
	// Irrelevant update: bystander relation changes, cache still hits.
	b0, _ := sys.Peer("B0")
	b0.Fact("b0_r0", "new_key", "new_val")
	again, err := root.PeerConsistentAnswersFor(q, vars, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, first) {
		t.Fatalf("answers changed after irrelevant update: %v vs %v", again, first)
	}
	if hits, _ := root.AnswerCacheStats(); hits != 1 {
		t.Fatalf("irrelevant update evicted the cached answers (hits=%d)", hits)
	}
	// Relevant update: c0 gains a tuple that must show up as a forced
	// import — the fingerprint moves, the cache misses, answers change.
	pc, _ := sys.Peer("PC")
	pc.Fact("c0", "fresh", "fresh_v")
	updated, err := root.PeerConsistentAnswersFor(q, vars, false)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(updated, first) {
		t.Fatal("relevant update did not reach the sliced answers")
	}
	found := false
	for _, tup := range updated {
		if tup.Key() == "fresh\x1ffresh_v" || (len(tup) == 2 && tup[0] == "fresh") {
			found = true
		}
	}
	if !found {
		t.Fatalf("imported tuple missing from fresh answers: %v", updated)
	}
	if _, misses := root.AnswerCacheStats(); misses != 2 {
		t.Fatalf("relevant update should have missed (misses=%d)", misses)
	}
}

// TestSetNeighborRelationGranularInvalidation: SetNeighbor for one peer
// must evict only that peer's relation/spec cache entries; unrelated
// peers' entries keep serving without network traffic.
func TestSetNeighborRelationGranularInvalidation(t *testing.T) {
	sys := core.Example1System()
	tr := &countingTransport{Transport: NewInProc()}
	nodes := startNetwork(t, sys, tr)
	p1 := nodes["P1"]
	now := time.Unix(1000, 0)
	p1.clock = func() time.Time { return now }
	p1.CacheTTL = time.Minute

	if _, err := p1.FetchRelation("P2", "r2"); err != nil {
		t.Fatal(err)
	}
	if _, err := p1.FetchRelation("P3", "r3"); err != nil {
		t.Fatal(err)
	}
	before := tr.calls.Load()

	// Update P2: its entries go, P3's survive.
	p1.SetNeighbor("P2", nodes["P2"].Addr)
	if _, err := p1.FetchRelation("P3", "r3"); err != nil {
		t.Fatal(err)
	}
	if c := tr.calls.Load(); c != before {
		t.Fatalf("P3 cache entry was evicted by a P2 update (%d extra calls)", c-before)
	}
	if _, err := p1.FetchRelation("P2", "r2"); err != nil {
		t.Fatal(err)
	}
	if c := tr.calls.Load(); c == before {
		t.Fatal("P2 cache entry should have been evicted by the P2 update")
	}
}

// TestOpExportSpecOmitsFacts: the spec export carries schema and
// constraints but no data.
func TestOpExportSpecOmitsFacts(t *testing.T) {
	sys := core.Example1System()
	tr := NewInProc()
	nodes := startNetwork(t, sys, tr)
	resp, err := tr.Call(nodes["P1"].Addr, Request{Op: OpExportSpec})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	if strings.Contains(resp.Spec, "fact ") {
		t.Fatalf("spec export leaked facts:\n%s", resp.Spec)
	}
	for _, want := range []string{"relation r1/2", "trust less P2", "dec P2:"} {
		if !strings.Contains(resp.Spec, want) {
			t.Fatalf("spec export missing %q:\n%s", want, resp.Spec)
		}
	}
}

// TestOpPCASliced: the wire-level sliced PCA answers match the
// unsliced op.
func TestOpPCASliced(t *testing.T) {
	sys := core.Example1System()
	tr := NewInProc()
	nodes := startNetwork(t, sys, tr)
	full, err := tr.Call(nodes["P1"].Addr, Request{Op: OpPCA, Query: "r1(X,Y)", Vars: []string{"X", "Y"}})
	if err != nil {
		t.Fatal(err)
	}
	sliced, err := tr.Call(nodes["P1"].Addr, Request{Op: OpPCA, Query: "r1(X,Y)", Vars: []string{"X", "Y"}, Sliced: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Err != "" || sliced.Err != "" {
		t.Fatalf("errs: %q / %q", full.Err, sliced.Err)
	}
	if !reflect.DeepEqual(sliced.Tuples, full.Tuples) {
		t.Fatalf("sliced op answers %v != %v", sliced.Tuples, full.Tuples)
	}
}

// opRecordingTransport records which ops ran and which relations were
// fetched. Calls arrive concurrently from the snapshot fan-out, so the
// recording is mutex-guarded.
type opRecordingTransport struct {
	Transport
	mu   sync.Mutex
	ops  []Op
	rels []string
}

func (t *opRecordingTransport) Call(addr string, req Request) (Response, error) {
	t.mu.Lock()
	t.ops = append(t.ops, req.Op)
	if req.Op == OpFetchBatch {
		t.rels = append(t.rels, req.Rels...)
	}
	if req.Op == OpFetch {
		t.rels = append(t.rels, req.Rel)
	}
	t.mu.Unlock()
	return t.Transport.Call(addr, req)
}

func (t *opRecordingTransport) reset() {
	t.mu.Lock()
	t.ops, t.rels = nil, nil
	t.mu.Unlock()
}

func (t *opRecordingTransport) count(op Op) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, o := range t.ops {
		if o == op {
			n++
		}
	}
	return n
}

func (t *opRecordingTransport) fetchedRels() []string {
	t.mu.Lock()
	out := append([]string{}, t.rels...)
	t.mu.Unlock()
	sort.Strings(out)
	return out
}
