package peernet

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/relation"
)

// TestUpdateLocalInvalidatesSnapshotCache is the write-visibility
// regression test: with the TTL caches warm, a local write must be
// visible to the very next query — UpdateLocal drops the node's own
// snapshot cache instead of serving pre-write data for up to CacheTTL.
// Both answering paths are pinned: the unsliced one (whose Snapshot is
// the cache that went stale) and the sliced one (whose fingerprint must
// move with the write).
func TestUpdateLocalInvalidatesSnapshotCache(t *testing.T) {
	for _, mode := range []string{"unsliced", "sliced"} {
		t.Run(mode, func(t *testing.T) {
			sys := core.Example1System()
			nodes := startNetwork(t, sys, NewInProc())
			p1 := nodes["P1"]
			now := time.Unix(1000, 0)
			p1.clock = func() time.Time { return now }
			p1.CacheTTL = time.Minute
			q := foquery.MustParse("r1(X,Y)")
			ask := func() []relation.Tuple {
				t.Helper()
				var ans []relation.Tuple
				var err error
				if mode == "sliced" {
					ans, err = p1.PeerConsistentAnswersFor(q, []string{"X", "Y"}, false)
				} else {
					ans, err = p1.PeerConsistentAnswers(q, []string{"X", "Y"}, false)
				}
				if err != nil {
					t.Fatal(err)
				}
				return ans
			}
			before := ask()
			ask() // make sure the TTL caches are warm before the write

			p1.UpdateLocal(func(p *core.Peer) { p.Fact("r1", "fresh", "f") })

			// Still inside the TTL window: the write must be visible.
			got := ask()
			if len(got) != len(before)+1 {
				t.Fatalf("post-write answers %v, want %v plus (fresh,f)", got, before)
			}
			found := false
			for _, tu := range got {
				if tu.Equal(relation.Tuple{"fresh", "f"}) {
					found = true
				}
			}
			if !found {
				t.Fatalf("written fact not visible within TTL: %v", got)
			}

			// And they must match a cache-free node over the same peers.
			fresh := NewNode(p1.Peer, p1.tr, p1.neighborsCopy())
			if err := fresh.Start(":0"); err != nil {
				t.Fatal(err)
			}
			defer fresh.Stop()
			want, err := fresh.PeerConsistentAnswers(q, []string{"X", "Y"}, false)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("within-TTL answers %v != fresh-node answers %v", got, want)
			}
			if p1.LocalWrites() != 1 {
				t.Fatalf("LocalWrites = %d, want 1", p1.LocalWrites())
			}
		})
	}
}

// TestSchemaMutatingUpdateLocalVsRequestsRace grows the served peer's
// schema (Declare + Fact through UpdateLocal) while concurrent
// requests exercise every handler path that reads it — OpRelations and
// OpFetch read the live schema (the seed read them outside dataMu),
// OpExport renders a clone, and the PCA path snapshots it. Run under
// -race.
func TestSchemaMutatingUpdateLocalVsRequestsRace(t *testing.T) {
	sys := core.Example1System()
	tr := NewInProc()
	nodes := startNetwork(t, sys, tr)
	p1 := nodes["P1"]

	// The writer count is bounded: every Declare grows the schema that
	// each snapshot and export then has to clone, so an unbounded loop
	// turns the test quadratic.
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; i < 150; i++ {
			rel := fmt.Sprintf("dyn%d", i)
			p1.UpdateLocal(func(p *core.Peer) {
				p.Declare(rel, 2)
				p.Fact(rel, "k", "v")
			})
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(4)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := tr.Call(p1.Addr, Request{Op: OpRelations})
				if err != nil {
					t.Error(err)
				} else if resp.Err != "" {
					t.Error(resp.Err)
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := tr.Call(p1.Addr, Request{Op: OpFetch, Rel: "r1"})
				if err != nil {
					t.Error(err)
				} else if resp.Err != "" {
					t.Error(resp.Err)
				}
				// Probing a relation the writer may be declaring right now
				// must answer cleanly either way (declared or not yet).
				if _, err := tr.Call(p1.Addr, Request{Op: OpFetch, Rel: fmt.Sprintf("dyn%d", j)}); err != nil {
					t.Error(err)
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := tr.Call(p1.Addr, Request{Op: OpExport})
				if err != nil {
					t.Error(err)
				} else if resp.Err != "" {
					t.Error(resp.Err)
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := p1.PeerConsistentAnswersFor(
					foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, false); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	writer.Wait()
}

// TestAnswerQueryCoalescingAccounting fires identical concurrent
// queries at a cold node and checks the serving-plane bookkeeping
// identity that holds at every interleaving: each query is either an
// answer-cache hit, a singleflight leader, or coalesced into one — and
// the solver ran exactly once per leader. All answers must be
// identical.
func TestAnswerQueryCoalescingAccounting(t *testing.T) {
	const n = 12
	sys := core.Example1System()
	tr := NewInProc()
	tr.Latency = 200 * time.Microsecond
	nodes := startNetwork(t, sys, tr)
	p1 := nodes["P1"]
	q := foquery.MustParse("r1(X,Y)")

	answers := make([][]relation.Tuple, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ans, err := p1.PeerConsistentAnswersFor(q, []string{"X", "Y"}, false)
			if err != nil {
				t.Error(err)
				return
			}
			answers[i] = ans
		}(i)
	}
	wg.Wait()

	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(answers[i], answers[0]) {
			t.Fatalf("answer %d = %v differs from %v", i, answers[i], answers[0])
		}
	}
	hits, misses := p1.AnswerCacheStats()
	leaders, coalesced := p1.CoalesceStats()
	if hits+misses != n {
		t.Fatalf("cache lookups = %d, want %d", hits+misses, n)
	}
	if misses != leaders+coalesced {
		t.Fatalf("misses=%d but leaders=%d coalesced=%d", misses, leaders, coalesced)
	}
	if p1.SolverRuns() != leaders {
		t.Fatalf("solver ran %d times for %d leaders", p1.SolverRuns(), leaders)
	}
	if leaders < 1 {
		t.Fatal("at least one computation must have run")
	}

	// A repeat query is now a pure cache hit: no new leader.
	if _, err := p1.PeerConsistentAnswersFor(q, []string{"X", "Y"}, false); err != nil {
		t.Fatal(err)
	}
	if l2, _ := p1.CoalesceStats(); l2 != leaders {
		t.Fatalf("repeat query started a new computation (%d -> %d leaders)", leaders, l2)
	}

	// NoCoalesce: a cold key must bypass the flight and run the solver
	// directly.
	p1.NoCoalesce = true
	p1.UpdateLocal(func(p *core.Peer) { p.Fact("r1", "cold", "c") }) // move the fingerprint
	if _, err := p1.PeerConsistentAnswersFor(q, []string{"X", "Y"}, false); err != nil {
		t.Fatal(err)
	}
	if l2, _ := p1.CoalesceStats(); l2 != leaders {
		t.Fatalf("NoCoalesce query went through the flight (%d -> %d leaders)", leaders, l2)
	}
	if p1.SolverRuns() != leaders+1 {
		t.Fatalf("NoCoalesce query did not run the solver (runs=%d)", p1.SolverRuns())
	}
}

// TestRepairStatsAccumulate checks the component counters surface
// through the node: a direct-semantics query that engages the
// conflict-localized engine must report its searches and components.
func TestRepairStatsAccumulate(t *testing.T) {
	sys := core.Example1System()
	nodes := startNetwork(t, sys, NewInProc())
	p1 := nodes["P1"]
	if _, err := p1.PeerConsistentAnswersFor(
		foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, false); err != nil {
		t.Fatal(err)
	}
	searches, localized, components := p1.RepairStats()
	if searches == 0 {
		t.Fatal("repair stats recorded no searches for a direct query")
	}
	if localized > searches || components < localized {
		t.Fatalf("implausible stats: searches=%d localized=%d components=%d",
			searches, localized, components)
	}
}
