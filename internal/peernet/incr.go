package peernet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/slice"
)

// This file is the serving-plane half of incremental re-answering under
// write traffic. A node keeps, per repeated direct-semantics query, an
// incrSeries: the sliced snapshot the last full answer was computed
// over, the reduced single-stage repair problem (core.ReduceSingleStage)
// and its repair.IncrState, plus the journal position of the local
// instance the snapshot corresponds to. When the same query returns
// after local writes, the node replays the journal delta onto the
// retained snapshot (a handful of fact toggles instead of a rebuild),
// hands the changed predicates to the IncrState — which re-checks only
// the touched dependencies and re-searches only the touched conflict
// components — and promotes the cached answer entry to the post-write
// fingerprint key in place (slice.AnswerCache.Promote).
//
// Exactness: a series only exists for query shapes whose full answer
// is a single repair problem (ReduceSingleStage) over a domain-free
// query, and every gate the IncrState can fail (bounded search, delta
// crossing components, a query spanning two components) drops the
// series and falls back to the byte-identical full recompute. Validity
// is re-checked on every hit: the journal must be the same object with
// the delta still buffered, the local spec must render identically,
// the remote relation generations must be untouched and the series
// must be inside its TTL window. Remote peers' own writes are
// invisible to a live series, exactly as they are invisible to the
// node's relation TTL cache — a series never outlives CacheTTL from
// its seeding, so the staleness is the same TTL grade as the caches
// the full path reads through.
type incrSeries struct {
	mu sync.Mutex

	// journal/seq: the local-instance journal this series tracks and
	// the position the retained snapshot reflects.
	journal *relation.Journal
	seq     uint64

	// sys/sl: the retained sliced snapshot; rootInst is the root
	// peer's instance inside sys (the patch target that keeps
	// slice.DataFingerprint aligned with a fresh snapshot), global the
	// slice-restricted merged instance the repair state answers over.
	sys      *core.System
	sl       *slice.Slice
	rootInst *relation.Instance
	global   *relation.Instance

	st *repair.IncrState

	// lastKey is the answer-cache key of the series' current answer
	// ("" right after a no-solutions outcome); specSig detects local
	// spec drift (journals record facts, not schema or constraints);
	// remoteGens pins the remote relation generations the snapshot's
	// fetched data was cached under.
	lastKey    string
	specSig    string
	expires    time.Time
	remoteGens map[core.PeerID]uint64
}

// maxIncrSeries bounds the per-node series table; each series retains
// a sliced snapshot, so the table stays small and evicts arbitrarily.
const maxIncrSeries = 64

func seriesKey(query string, vars []string) string {
	return query + "\x00" + strings.Join(vars, ",")
}

// peerSpecSig renders the spec-level shape of a peer — relations with
// arities, local ICs, DECs per neighbour, trust edges — so a series
// can detect specification drift that the fact journal cannot see.
func peerSpecSig(p *core.Peer) string {
	var b strings.Builder
	for _, rel := range p.Schema.Relations() {
		d, _ := p.Schema.Decl(rel)
		fmt.Fprintf(&b, "r:%s/%d;", rel, d.Arity)
	}
	for _, ic := range p.ICs {
		fmt.Fprintf(&b, "i:%s;", ic.String())
	}
	decIDs := make([]string, 0, len(p.DECs))
	for id := range p.DECs {
		decIDs = append(decIDs, string(id))
	}
	sort.Strings(decIDs)
	for _, id := range decIDs {
		for _, d := range p.DECs[core.PeerID(id)] {
			fmt.Fprintf(&b, "d:%s:%s;", id, d.String())
		}
	}
	trustIDs := make([]string, 0, len(p.Trust))
	for id := range p.Trust {
		trustIDs = append(trustIDs, string(id))
	}
	sort.Strings(trustIDs)
	for _, id := range trustIDs {
		fmt.Fprintf(&b, "t:%s:%d;", id, p.Trust[core.PeerID(id)])
	}
	return b.String()
}

// answersCache returns the node's answer cache, creating it lazily.
func (n *Node) answersCache() *slice.AnswerCache {
	n.cacheMu.Lock()
	if n.answers == nil {
		n.answers = slice.NewAnswerCache(0)
	}
	c := n.answers
	n.cacheMu.Unlock()
	return c
}

// incrAnswer tries to answer the query from its series. handled=false
// means the caller must run the full path (any invalid series has been
// dropped, so the full path will reseed).
func (n *Node) incrAnswer(q foquery.Formula, vars []string, par int) (ans []relation.Tuple, err error, handled bool) {
	key := seriesKey(q.String(), vars)
	n.incrMu.Lock()
	s := n.incrSeries[key]
	n.incrMu.Unlock()
	if s == nil {
		return nil, nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	drop := func() {
		atomic.AddInt64(&n.incrFallbacks, 1)
		n.incrMu.Lock()
		if n.incrSeries[key] == s {
			delete(n.incrSeries, key)
		}
		n.incrMu.Unlock()
	}
	if n.CacheTTL <= 0 || !n.now().Before(s.expires) {
		drop()
		return nil, nil, false
	}
	n.dataMu.RLock()
	j := n.Peer.Inst.Journal()
	liveSig := peerSpecSig(n.Peer)
	n.dataMu.RUnlock()
	if j == nil || j != s.journal || liveSig != s.specSig {
		drop()
		return nil, nil, false
	}
	n.cacheMu.Lock()
	gensOK := true
	for pid, g := range s.remoteGens {
		if n.relGens[pid] != g {
			gensOK = false
			break
		}
	}
	n.cacheMu.Unlock()
	if !gensOK {
		drop()
		return nil, nil, false
	}
	changes, ok := j.Since(s.seq)
	if !ok {
		// The journal trimmed past our position (a write burst larger
		// than the buffer); the delta is unrecoverable.
		drop()
		return nil, nil, false
	}

	if len(changes) == 0 && s.lastKey != "" {
		if cached, hit := n.answersCache().Get(s.lastKey); hit {
			atomic.AddInt64(&n.incrPatched, 1)
			return cached, nil, true
		}
	}

	// Replay the delta onto the retained snapshot. Journal changes are
	// membership-accurate (only status-changing writes are recorded),
	// so replaying them reproduces the live root content exactly, and
	// the content-based relation hashes make the patched snapshot
	// fingerprint identical to a freshly assembled one.
	changedSet := make(map[string]bool, len(changes))
	for _, c := range changes {
		changedSet[c.Fact.Rel] = true
		if c.Insert {
			s.rootInst.Insert(c.Fact.Rel, c.Fact.Tuple)
			if s.sl.Has(c.Fact.Rel) {
				s.global.Insert(c.Fact.Rel, c.Fact.Tuple)
			}
		} else {
			s.rootInst.Delete(c.Fact.Rel, c.Fact.Tuple)
			if s.sl.Has(c.Fact.Rel) {
				s.global.Delete(c.Fact.Rel, c.Fact.Tuple)
			}
		}
	}
	s.seq += uint64(len(changes))
	changed := make([]string, 0, len(changedSet))
	for rel := range changedSet {
		changed = append(changed, rel)
	}
	sort.Strings(changed)

	ans, noRepairs, ok, err := s.st.Answers(s.global, changed, q, vars, repair.Options{Parallelism: par})
	if !ok || err != nil {
		// An exactness gate failed (or evaluation errored, which the
		// full path reports canonically): fall back. The series state
		// has consumed the delta but is discarded whole, so nothing
		// stale survives.
		drop()
		return nil, nil, false
	}
	atomic.AddInt64(&n.incrPatched, 1)
	if noRepairs {
		s.lastKey = ""
		return nil, core.ErrNoSolutions, true
	}
	fp, ferr := slice.DataFingerprint(s.sys, s.sl)
	if ferr != nil {
		drop()
		return nil, nil, false
	}
	newKey := slice.AnswerKey(q.String(), vars, s.sl, fp)
	n.answersCache().Promote(s.lastKey, newKey, ans)
	s.lastKey = newKey
	return ans, nil, true
}

// seedSeries installs a series for a query the full path just answered
// successfully, provided the snapshot provably corresponds to the
// journal position read before it was assembled and the problem shape
// is incrementalizable. All checks are best-effort: failing any of
// them just means the next repeat query pays the full recompute again.
func (n *Node) seedSeries(q foquery.Formula, vars []string, sys *core.System, sl *slice.Slice, lastKey string, j *relation.Journal, seq uint64, gens map[core.PeerID]uint64) {
	if j == nil || n.CacheTTL <= 0 || !repair.DomainFreeQuery(q) {
		return
	}
	// The snapshot's root clone was taken after the seq read; if the
	// journal object and position are still the same now, no local
	// write landed in between, so the clone reflects exactly seq.
	n.dataMu.RLock()
	cur := n.Peer.Inst.Journal()
	n.dataMu.RUnlock()
	if cur != j || j.Seq() != seq {
		return
	}
	remoteGens := make(map[core.PeerID]uint64, len(sl.RemotePeers()))
	n.cacheMu.Lock()
	gensOK := true
	for _, pid := range sl.RemotePeers() {
		if n.relGens[pid] != gens[pid] {
			gensOK = false
			break
		}
		remoteGens[pid] = gens[pid]
	}
	n.cacheMu.Unlock()
	if !gensOK {
		return
	}
	rootPeer, ok := sys.Peer(n.Peer.ID)
	if !ok {
		return
	}
	deps, fixed, ok := core.ReduceSingleStage(sys, n.Peer.ID, core.SolveOptions{KeepDep: sl.KeepDep})
	if !ok {
		return
	}
	st, ok := repair.NewIncrState(deps, fixed)
	if !ok {
		return
	}
	global := sys.Global()
	if rr := sl.RelevantRels(); rr != nil {
		global = global.RestrictRels(rr)
	}
	s := &incrSeries{
		journal:    j,
		seq:        seq,
		sys:        sys,
		sl:         sl,
		rootInst:   rootPeer.Inst,
		global:     global,
		st:         st,
		lastKey:    lastKey,
		specSig:    peerSpecSig(rootPeer),
		expires:    n.now().Add(n.CacheTTL),
		remoteGens: remoteGens,
	}
	key := seriesKey(q.String(), vars)
	n.incrMu.Lock()
	if n.incrSeries == nil {
		n.incrSeries = make(map[string]*incrSeries)
	}
	if _, exists := n.incrSeries[key]; !exists && len(n.incrSeries) >= maxIncrSeries {
		for k := range n.incrSeries {
			delete(n.incrSeries, k)
			break
		}
	}
	n.incrSeries[key] = s
	n.incrMu.Unlock()
	atomic.AddInt64(&n.incrSeeds, 1)
}

// IncrStats reports the incremental re-answering outcomes: queries
// answered by patching a live series (patched), series seedings
// (seeded) and series invalidations/gate failures that fell back to
// the full recompute (fallbacks).
func (n *Node) IncrStats() (patched, seeded, fallbacks int64) {
	return atomic.LoadInt64(&n.incrPatched),
		atomic.LoadInt64(&n.incrSeeds),
		atomic.LoadInt64(&n.incrFallbacks)
}
