package peernet

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/relation"
)

// startNetwork deploys every peer of a system as a node on the given
// transport and wires up the neighbour addresses.
func startNetwork(t *testing.T, sys *core.System, tr Transport) map[core.PeerID]*Node {
	t.Helper()
	nodes := map[core.PeerID]*Node{}
	for _, id := range sys.Peers() {
		p, _ := sys.Peer(id)
		n := NewNode(p, tr, nil)
		if err := n.Start(":0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Stop)
		nodes[id] = n
	}
	for _, n := range nodes {
		for _, m := range nodes {
			if n != m {
				n.SetNeighbor(m.Peer.ID, m.Addr)
			}
		}
	}
	return nodes
}

func TestFetchAndQueryInProc(t *testing.T) {
	sys := core.Example1System()
	nodes := startNetwork(t, sys, NewInProc())
	p1 := nodes["P1"]
	tuples, err := p1.FetchRelation("P2", "r2")
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Fatalf("fetched = %v", tuples)
	}
	// Remote FO query against P3's raw data.
	resp, err := NewInProc().Call("nowhere", Request{Op: OpFetch})
	if err == nil && resp.Err == "" {
		t.Fatal("dangling address should fail")
	}
}

// TestNetworkedPCADirect runs Example 2 over the wire: the PCAs
// computed by the node (which fetches P2's and P3's data remotely)
// must equal the in-memory semantics.
func TestNetworkedPCADirect(t *testing.T) {
	sys := core.Example1System()
	for name, tr := range map[string]Transport{
		"inproc": NewInProc(),
		"tcp":    &TCP{},
	} {
		t.Run(name, func(t *testing.T) {
			nodes := startNetwork(t, sys, tr)
			ans, err := nodes["P1"].PeerConsistentAnswers(
				foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, false)
			if err != nil {
				t.Fatal(err)
			}
			want := []relation.Tuple{{"a", "b"}, {"a", "e"}, {"c", "d"}}
			if !reflect.DeepEqual(ans, want) {
				t.Fatalf("networked PCAs = %v, want %v", ans, want)
			}
		})
	}
}

// TestNetworkedPCATransitive runs Example 4 over the wire: P discovers
// C through Q's exported neighbour table and assembles the combined
// program.
func TestNetworkedPCATransitive(t *testing.T) {
	sys := core.Example4System()
	nodes := startNetwork(t, sys, NewInProc())
	// P only knows Q; Q knows C. Drop P's direct knowledge of C to
	// exercise discovery.
	p := nodes["P"]
	delete(p.Neighbors, "C")

	// Direct case first: DEC (3) is vacuously satisfied (s1 empty), so
	// every local tuple is a PCA.
	direct, err := p.PeerConsistentAnswers(foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, []relation.Tuple{{"a", "b"}}) {
		t.Fatalf("direct = %v", direct)
	}

	// Transitive case: Q imports U(c,b) into S1, so P's R1(a,b) is no
	// longer certain (it is deleted in one solution).
	trans, err := p.PeerConsistentAnswers(foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(trans) != 0 {
		t.Fatalf("transitive = %v, want none", trans)
	}
	// R2 gains no certain tuples either (insert differs per solution).
	trans2, err := p.PeerConsistentAnswers(foquery.MustParse("r2(X,Y)"), []string{"X", "Y"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(trans2) != 0 {
		t.Fatalf("transitive r2 = %v", trans2)
	}
}

func TestOpPCARemoteDelegation(t *testing.T) {
	sys := core.Example1System()
	tr := NewInProc()
	nodes := startNetwork(t, sys, tr)
	// Ask P1 over the network for its PCAs.
	resp, err := tr.Call(nodes["P1"].Addr, Request{
		Op: OpPCA, Query: "r1(X,Y)", Vars: []string{"X", "Y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	if len(resp.Tuples) != 3 {
		t.Fatalf("remote PCAs = %v", resp.Tuples)
	}
}

func TestOpRelationsAndErrors(t *testing.T) {
	sys := core.Example1System()
	tr := NewInProc()
	nodes := startNetwork(t, sys, tr)
	resp, err := tr.Call(nodes["P2"].Addr, Request{Op: OpRelations})
	if err != nil || resp.Err != "" {
		t.Fatalf("%v %v", err, resp.Err)
	}
	if len(resp.Relations) != 1 || resp.Relations[0] != "r2" {
		t.Fatalf("relations = %v", resp.Relations)
	}
	resp, _ = tr.Call(nodes["P2"].Addr, Request{Op: OpFetch, Rel: "zzz"})
	if resp.Err == "" {
		t.Fatal("fetch of unknown relation should fail")
	}
	resp, _ = tr.Call(nodes["P2"].Addr, Request{Op: "bogus"})
	if resp.Err == "" {
		t.Fatal("unknown op should fail")
	}
}

func TestOpQueryRemote(t *testing.T) {
	sys := core.Example1System()
	tr := NewInProc()
	nodes := startNetwork(t, sys, tr)
	resp, err := tr.Call(nodes["P3"].Addr, Request{
		Op: OpQuery, Query: "r3(X,Y) & X = a", Vars: []string{"Y"},
	})
	if err != nil || resp.Err != "" {
		t.Fatalf("%v %v", err, resp.Err)
	}
	if len(resp.Tuples) != 1 || resp.Tuples[0][0] != "f" {
		t.Fatalf("tuples = %v", resp.Tuples)
	}
}

func TestInProcLatency(t *testing.T) {
	tr := NewInProc()
	tr.Latency = 5 * time.Millisecond
	_, _, err := tr.Listen("a", func(Request) Response { return Response{} })
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := tr.Call("a", Request{Op: OpRelations}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
}

func TestInProcDuplicateBind(t *testing.T) {
	tr := NewInProc()
	h := func(Request) Response { return Response{} }
	if _, _, err := tr.Listen("x", h); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Listen("x", h); err == nil {
		t.Fatal("duplicate bind should fail")
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	tr := &TCP{}
	bound, closer, err := tr.Listen("127.0.0.1:0", func(req Request) Response {
		return Response{Relations: []string{"echo-" + string(req.Op)}}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	resp, err := tr.Call(bound, Request{Op: OpRelations})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Relations) != 1 || resp.Relations[0] != "echo-relations" {
		t.Fatalf("resp = %+v", resp)
	}
	if _, err := tr.Call("127.0.0.1:1", Request{}); err == nil {
		t.Fatal("dial to closed port should fail")
	}
}

func TestSnapshotMissingNeighbor(t *testing.T) {
	sys := core.Example1System()
	p1, _ := sys.Peer("P1")
	n := NewNode(p1, NewInProc(), nil)
	if _, err := n.Snapshot(false); err == nil {
		t.Fatal("snapshot without neighbour addresses should fail")
	}
}

// TestNetworkedPCATransitiveTCP repeats the Example 4 discovery
// scenario over real TCP sockets.
func TestNetworkedPCATransitiveTCP(t *testing.T) {
	sys := core.Example4System()
	nodes := startNetwork(t, sys, &TCP{})
	p := nodes["P"]
	delete(p.Neighbors, "C") // force discovery through Q's export

	trans, err := p.PeerConsistentAnswers(foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(trans) != 0 {
		t.Fatalf("transitive = %v, want none (r1(a,b) not certain)", trans)
	}
}
