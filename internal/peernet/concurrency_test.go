package peernet

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/foquery"
)

// TestConcurrentRequests hammers a node with parallel fetches, queries
// and PCA requests over both transports; results must stay correct and
// the race detector clean.
func TestConcurrentRequests(t *testing.T) {
	for name, tr := range map[string]Transport{
		"inproc": NewInProc(),
		"tcp":    &TCP{},
	} {
		t.Run(name, func(t *testing.T) {
			sys := core.Example1System()
			nodes := startNetwork(t, sys, tr)
			var wg sync.WaitGroup
			errs := make(chan error, 60)
			for i := 0; i < 20; i++ {
				wg.Add(3)
				go func() {
					defer wg.Done()
					tuples, err := nodes["P1"].FetchRelation("P2", "r2")
					if err == nil && len(tuples) != 2 {
						err = fmt.Errorf("fetch got %d tuples", len(tuples))
					}
					errs <- err
				}()
				go func() {
					defer wg.Done()
					resp, err := tr.Call(nodes["P3"].Addr, Request{
						Op: OpQuery, Query: "r3(X,Y)", Vars: []string{"X", "Y"},
					})
					if err == nil && resp.Err != "" {
						err = fmt.Errorf("%s", resp.Err)
					}
					if err == nil && len(resp.Tuples) != 2 {
						err = fmt.Errorf("query got %d tuples", len(resp.Tuples))
					}
					errs <- err
				}()
				go func() {
					defer wg.Done()
					ans, err := nodes["P1"].PeerConsistentAnswers(
						foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, false)
					if err == nil && len(ans) != 3 {
						err = fmt.Errorf("pca got %d answers", len(ans))
					}
					errs <- err
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
