package peernet

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/foquery"
)

// TestConcurrentRequests hammers a node with parallel fetches, queries
// and PCA requests over both transports; results must stay correct and
// the race detector clean.
func TestConcurrentRequests(t *testing.T) {
	for name, tr := range map[string]Transport{
		"inproc": NewInProc(),
		"tcp":    &TCP{},
	} {
		t.Run(name, func(t *testing.T) {
			sys := core.Example1System()
			nodes := startNetwork(t, sys, tr)
			var wg sync.WaitGroup
			errs := make(chan error, 60)
			for i := 0; i < 20; i++ {
				wg.Add(3)
				go func() {
					defer wg.Done()
					tuples, err := nodes["P1"].FetchRelation("P2", "r2")
					if err == nil && len(tuples) != 2 {
						err = fmt.Errorf("fetch got %d tuples", len(tuples))
					}
					errs <- err
				}()
				go func() {
					defer wg.Done()
					resp, err := tr.Call(nodes["P3"].Addr, Request{
						Op: OpQuery, Query: "r3(X,Y)", Vars: []string{"X", "Y"},
					})
					if err == nil && resp.Err != "" {
						err = fmt.Errorf("%s", resp.Err)
					}
					if err == nil && len(resp.Tuples) != 2 {
						err = fmt.Errorf("query got %d tuples", len(resp.Tuples))
					}
					errs <- err
				}()
				go func() {
					defer wg.Done()
					ans, err := nodes["P1"].PeerConsistentAnswers(
						foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, false)
					if err == nil && len(ans) != 3 {
						err = fmt.Errorf("pca got %d answers", len(ans))
					}
					errs <- err
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestSetNeighborVsHandleRace mutates the neighbour table while other
// goroutines exercise every reader of it — the OpExport handler, the
// snapshot fan-out and FetchRelation. The seed raced here (an unlocked
// map write against handler reads); this test pins the fix under
// -race.
func TestSetNeighborVsHandleRace(t *testing.T) {
	sys := core.Example1System()
	tr := NewInProc()
	nodes := startNetwork(t, sys, tr)
	p1 := nodes["P1"]
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Rewrites of live entries plus churn on a throwaway id.
			p1.SetNeighbor("P2", nodes["P2"].Addr)
			p1.SetNeighbor(core.PeerID(fmt.Sprintf("X%d", i%4)), "nowhere")
		}
	}()
	var wg2 sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg2.Add(3)
		go func() {
			defer wg2.Done()
			resp, err := tr.Call(p1.Addr, Request{Op: OpExport})
			if err != nil {
				t.Error(err)
			} else if resp.Err != "" {
				t.Error(resp.Err)
			}
		}()
		go func() {
			defer wg2.Done()
			if _, err := p1.Snapshot(false); err != nil {
				t.Error(err)
			}
		}()
		go func() {
			defer wg2.Done()
			if _, err := p1.FetchRelation("P2", "r2"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg2.Wait()
	close(stop)
	wg.Wait()
}

// countingTransport wraps a Transport and counts Calls, to observe the
// TTL cache suppressing network traffic.
type countingTransport struct {
	Transport
	calls atomic.Int64
}

func (c *countingTransport) Call(addr string, req Request) (Response, error) {
	c.calls.Add(1)
	return c.Transport.Call(addr, req)
}

// TestSnapshotCacheTTL checks the snapshot cache end to end: hits
// inside the TTL window cost zero network calls, expiry refetches, and
// SetNeighbor invalidates.
func TestSnapshotCacheTTL(t *testing.T) {
	sys := core.Example1System()
	tr := &countingTransport{Transport: NewInProc()}
	nodes := startNetwork(t, sys, tr)
	p1 := nodes["P1"]
	now := time.Unix(1000, 0)
	p1.clock = func() time.Time { return now }
	p1.CacheTTL = time.Minute

	q := foquery.MustParse("r1(X,Y)")
	want, err := p1.PeerConsistentAnswers(q, []string{"X", "Y"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 3 {
		t.Fatalf("pca = %v", want)
	}
	after := tr.calls.Load()
	if after == 0 {
		t.Fatal("first query should hit the network")
	}
	// Within TTL: answers identical, zero extra calls.
	got, err := p1.PeerConsistentAnswers(q, []string{"X", "Y"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cached answers %v != %v", got, want)
	}
	if c := tr.calls.Load(); c != after {
		t.Fatalf("cached query made %d network calls", c-after)
	}
	// Past TTL: refetch.
	now = now.Add(2 * time.Minute)
	if _, err := p1.Snapshot(false); err != nil {
		t.Fatal(err)
	}
	if c := tr.calls.Load(); c == after {
		t.Fatal("expired snapshot should refetch")
	}
	// SetNeighbor invalidates inside the window.
	after = tr.calls.Load()
	p1.SetNeighbor("P2", nodes["P2"].Addr)
	if _, err := p1.Snapshot(false); err != nil {
		t.Fatal(err)
	}
	if c := tr.calls.Load(); c == after {
		t.Fatal("SetNeighbor should invalidate the snapshot cache")
	}
}

// TestFetchRelationCacheTTL checks the relation cache analogously.
func TestFetchRelationCacheTTL(t *testing.T) {
	sys := core.Example1System()
	tr := &countingTransport{Transport: NewInProc()}
	nodes := startNetwork(t, sys, tr)
	p1 := nodes["P1"]
	now := time.Unix(1000, 0)
	p1.clock = func() time.Time { return now }
	p1.CacheTTL = time.Minute

	want, err := p1.FetchRelation("P2", "r2")
	if err != nil {
		t.Fatal(err)
	}
	after := tr.calls.Load()
	got, err := p1.FetchRelation("P2", "r2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cached fetch %v != %v", got, want)
	}
	if c := tr.calls.Load(); c != after {
		t.Fatal("cached fetch should not hit the network")
	}
	now = now.Add(2 * time.Minute)
	if _, err := p1.FetchRelation("P2", "r2"); err != nil {
		t.Fatal(err)
	}
	if c := tr.calls.Load(); c == after {
		t.Fatal("expired fetch should hit the network")
	}
}

// TestSnapshotParallelIdentical checks that the concurrent neighbour
// fan-out assembles the same system (and the same PCA answers) as the
// sequential walk, in both the direct and transitive cases.
func TestSnapshotParallelIdentical(t *testing.T) {
	for _, transitive := range []bool{false, true} {
		sys := core.Example4System()
		nodes := startNetwork(t, sys, NewInProc())
		p := nodes["P"]
		p.Parallelism = 1
		seqSys, err := p.Snapshot(transitive)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := p.PeerConsistentAnswers(foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, transitive)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 8} {
			p.Parallelism = par
			parSys, err := p.Snapshot(transitive)
			if err != nil {
				t.Fatalf("transitive=%v parallelism %d: %v", transitive, par, err)
			}
			if !reflect.DeepEqual(parSys.Peers(), seqSys.Peers()) {
				t.Fatalf("transitive=%v parallelism %d: peers %v != %v",
					transitive, par, parSys.Peers(), seqSys.Peers())
			}
			got, err := p.PeerConsistentAnswers(foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, transitive)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, seq) {
				t.Fatalf("transitive=%v parallelism %d: %v != %v", transitive, par, got, seq)
			}
		}
	}
}
