package peernet

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/relation"
	"repro/internal/term"
	"repro/internal/workload"
)

// freshAnswers computes the canonical answer over the live data with a
// brand-new cache-free node (the churn harness's ground truth).
func freshAnswers(t *testing.T, root *Node, q foquery.Formula, vars []string, transitive bool) ([]relation.Tuple, error) {
	t.Helper()
	fresh := NewNode(root.Peer, root.tr, root.neighborsCopy())
	if err := fresh.Start(":0"); err != nil {
		t.Fatal(err)
	}
	defer fresh.Stop()
	return fresh.PeerConsistentAnswers(q, vars, transitive)
}

// TestIncrAnswerPatchesInsteadOfResolving pins the payoff: after a
// warm query, a relevant write to an untouched conflict component is
// absorbed by the incremental path — no solver run, the answer-cache
// entry is promoted in place — and the answers still match a fresh
// cache-free node byte for byte.
func TestIncrAnswerPatchesInsteadOfResolving(t *testing.T) {
	sys := workload.ScatteredConflicts(4, 3, 11)
	nodes := startNetwork(t, sys, NewInProc())
	root := nodes["A"]
	root.CacheTTL = time.Minute
	q := foquery.MustParse("ra0(X,Y)")
	vars := []string{"X", "Y"}

	if _, err := root.PeerConsistentAnswersFor(q, vars, false); err != nil {
		t.Fatal(err)
	}
	if _, seeded, _ := root.IncrStats(); seeded != 1 {
		t.Fatalf("seeded = %d, want 1", seeded)
	}
	runsBefore := root.SolverRuns()

	// A write to ra2: fingerprint moves (a plain content-addressed
	// cache would miss), but the queried component is untouched.
	root.UpdateLocal(func(p *core.Peer) { p.Fact("ra2", "w0", "v") })
	got, err := root.PeerConsistentAnswersFor(q, vars, false)
	if err != nil {
		t.Fatal(err)
	}
	if patched, _, _ := root.IncrStats(); patched != 1 {
		t.Fatalf("patched = %d, want 1", patched)
	}
	if runs := root.SolverRuns(); runs != runsBefore {
		t.Fatalf("solver ran %d times after the write, want 0 (incremental patch)", runs-runsBefore)
	}
	want, err := freshAnswers(t, root, q, vars, false)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("patched answers diverge:\nincr  %v\nfresh %v", got, want)
	}

	// The promoted entry serves the next (write-free) repeat query.
	hitsBefore, _ := root.AnswerCacheStats()
	if _, err := root.PeerConsistentAnswersFor(q, vars, false); err != nil {
		t.Fatal(err)
	}
	if hits, _ := root.AnswerCacheStats(); hits != hitsBefore+1 {
		t.Fatalf("promoted entry missed: hits %d -> %d", hitsBefore, hits)
	}
}

// TestIncrNoIncrementalKnob: with the A/B knob set, the same write
// pattern recomputes — solver runs advance — and the answers agree
// with the incremental arm's.
func TestIncrNoIncrementalKnob(t *testing.T) {
	sys := workload.ScatteredConflicts(4, 3, 11)
	nodes := startNetwork(t, sys, NewInProc())
	root := nodes["A"]
	root.CacheTTL = time.Minute
	root.NoIncremental = true
	q := foquery.MustParse("ra0(X,Y)")
	vars := []string{"X", "Y"}

	if _, err := root.PeerConsistentAnswersFor(q, vars, false); err != nil {
		t.Fatal(err)
	}
	runsBefore := root.SolverRuns()
	root.UpdateLocal(func(p *core.Peer) { p.Fact("ra2", "w0", "v") })
	if _, err := root.PeerConsistentAnswersFor(q, vars, false); err != nil {
		t.Fatal(err)
	}
	if runs := root.SolverRuns(); runs != runsBefore+1 {
		t.Fatalf("NoIncremental arm: solver runs %d -> %d, want a recompute", runsBefore, runs)
	}
	if patched, seeded, _ := root.IncrStats(); patched != 0 || seeded != 0 {
		t.Fatalf("NoIncremental arm touched the incremental path: patched=%d seeded=%d", patched, seeded)
	}
}

// TestChurnInterleavedWritesMatchFreshNode is the churn correctness
// harness: a deterministic randomized interleaving of root writes
// (fresh facts, new conflicts, conflict resolutions) and queries —
// including the shapes that force the incremental path to fall back
// (a disjunction spanning two conflict components, a transitive
// query) — asserting after every query that the served answer is
// byte-identical to a brand-new cache-free node over the live data.
func TestChurnInterleavedWritesMatchFreshNode(t *testing.T) {
	const k = 4
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			sys := workload.ScatteredConflicts(k, 3, int64(17+par))
			nodes := startNetwork(t, sys, NewInProc())
			root := nodes["A"]
			root.CacheTTL = time.Minute
			root.Parallelism = par

			type query struct {
				q          string
				vars       []string
				transitive bool
			}
			queries := []query{
				{"ra0(X,Y)", []string{"X", "Y"}, false},
				{"ra1(X,Y)", []string{"X", "Y"}, false},
				{"ra0(X,Y) | ra1(X,Y)", []string{"X", "Y"}, false}, // spans two components: forced fallback
				{"ra0(X,Y)", []string{"X", "Y"}, true},             // transitive: incremental path not taken
			}
			rng := rand.New(rand.NewSource(int64(23 * par)))
			for step := 0; step < 40; step++ {
				switch rng.Intn(5) {
				case 0: // fresh clean fact, no new conflict
					rel := fmt.Sprintf("ra%d", rng.Intn(k))
					key := fmt.Sprintf("w%d", step)
					root.UpdateLocal(func(p *core.Peer) { p.Fact(rel, key, "v") })
				case 1: // plant a brand-new conflict against B's value
					rel := fmt.Sprintf("ra%d", rng.Intn(k))
					i := rel[len(rel)-1] - '0'
					key := fmt.Sprintf("c%d", i)
					root.UpdateLocal(func(p *core.Peer) { p.Fact(rel, key, fmt.Sprintf("x%d", step)) })
				case 2: // resolve a conflict by deleting the root side
					i := rng.Intn(k)
					rel := fmt.Sprintf("ra%d", i)
					key := fmt.Sprintf("c%d", i)
					root.UpdateLocal(func(p *core.Peer) {
						for _, tu := range p.Inst.Tuples(rel) {
							if tu[0] == key {
								p.Inst.Delete(rel, tu.Clone())
							}
						}
					})
				default: // query and compare against a fresh node
					qq := queries[rng.Intn(len(queries))]
					f := foquery.MustParse(qq.q)
					got, gotErr := root.AnswerQuery(f, qq.vars, QueryOptions{Transitive: qq.transitive})
					want, wantErr := freshAnswers(t, root, f, qq.vars, qq.transitive)
					if fmt.Sprint(gotErr) != fmt.Sprint(wantErr) {
						t.Fatalf("step %d %s: error diverges: got %v want %v", step, qq.q, gotErr, wantErr)
					}
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("step %d %s (transitive=%v): answers diverge:\nserved %v\nfresh  %v",
							step, qq.q, qq.transitive, got, want)
					}
				}
			}
			patched, seeded, _ := root.IncrStats()
			if seeded == 0 || patched == 0 {
				t.Fatalf("incremental path never engaged: patched=%d seeded=%d", patched, seeded)
			}

			// Deterministic epilogue: with live conflicts in BOTH queried
			// components (the churn deletes may have resolved them), the
			// disjunction spans two components with repairs, so the series
			// must fall back to the full path and still match a fresh node.
			root.UpdateLocal(func(p *core.Peer) {
				p.Fact("ra0", "c0", "epi0")
				p.Fact("ra1", "c1", "epi1")
			})
			orQ := foquery.MustParse("ra0(X,Y) | ra1(X,Y)")
			orVars := []string{"X", "Y"}
			if _, err := root.AnswerQuery(orQ, orVars, QueryOptions{}); err != nil {
				t.Fatal(err)
			}
			root.UpdateLocal(func(p *core.Peer) { p.Fact("ra0", "epi", "v") })
			got, err := root.AnswerQuery(orQ, orVars, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := freshAnswers(t, root, orQ, orVars, false)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("post-fallback answers diverge:\nserved %v\nfresh  %v", got, want)
			}
			if _, _, fallbacks := root.IncrStats(); fallbacks == 0 {
				t.Fatal("component-spanning query after a write did not fall back")
			}
		})
	}
}

// TestChurnConcurrentWritesAndQueries hammers one node with parallel
// writers and readers (run under -race), then quiesces and asserts the
// final served answer matches a fresh cache-free node.
func TestChurnConcurrentWritesAndQueries(t *testing.T) {
	const k = 3
	sys := workload.ScatteredConflicts(k, 2, 29)
	nodes := startNetwork(t, sys, NewInProc())
	root := nodes["A"]
	root.CacheTTL = time.Minute
	root.Parallelism = 2

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				rel := fmt.Sprintf("ra%d", (w+i)%k)
				key := fmt.Sprintf("cw%d_%d", w, i)
				root.UpdateLocal(func(p *core.Peer) { p.Fact(rel, key, "v") })
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			q := foquery.MustParse(fmt.Sprintf("ra%d(X,Y)", r%k))
			for i := 0; i < 25; i++ {
				if _, err := root.AnswerQuery(q, []string{"X", "Y"}, QueryOptions{}); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	for i := 0; i < k; i++ {
		q := foquery.MustParse(fmt.Sprintf("ra%d(X,Y)", i))
		got, err := root.AnswerQuery(q, []string{"X", "Y"}, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := freshAnswers(t, root, q, []string{"X", "Y"}, false)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("ra%d: final answers diverge:\nserved %v\nfresh  %v", i, got, want)
		}
	}
}

// TestIncrSeriesInvalidation: spec drift and TTL expiry drop a series
// (a fallback, then a reseed), never a wrong answer.
func TestIncrSeriesInvalidation(t *testing.T) {
	sys := workload.ScatteredConflicts(3, 2, 31)
	nodes := startNetwork(t, sys, NewInProc())
	root := nodes["A"]
	now := time.Unix(1000, 0)
	root.clock = func() time.Time { return now }
	root.CacheTTL = time.Minute
	q := foquery.MustParse("ra0(X,Y)")
	vars := []string{"X", "Y"}

	ask := func() []relation.Tuple {
		t.Helper()
		ans, err := root.PeerConsistentAnswersFor(q, vars, false)
		if err != nil {
			t.Fatal(err)
		}
		return ans
	}
	ask()
	// Spec drift: declaring a new relation must invalidate the series.
	root.UpdateLocal(func(p *core.Peer) { p.Declare("extra", 2).Fact("extra", "a", "b") })
	ask()
	_, _, fallbacks := root.IncrStats()
	if fallbacks == 0 {
		t.Fatal("spec drift did not invalidate the series")
	}

	// TTL expiry: advance past the window, write, query — the answer
	// must match a fresh node (the series may not serve past expiry).
	now = now.Add(2 * time.Minute)
	root.UpdateLocal(func(p *core.Peer) { p.Fact("ra1", "late", "v") })
	got := ask()
	want, err := freshAnswers(t, root, q, vars, false)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-expiry answers diverge:\nserved %v\nfresh %v", got, want)
	}
}

// TestDelegateSideCoalescingIncr: two querying roots delegating the
// same sub-query to one hub in a concurrent burst share a single
// delegate-side solve (the hub's flight group), and every client gets
// the centralized path's answers.
func TestDelegateSideCoalescingIncr(t *testing.T) {
	// Two roots R0/R1 import s0 from hub H (forced inclusion repair);
	// the hub filters s0 against leaf L via a one-mutable-atom denial,
	// so both roots' plans delegate s0(X,Y) to H.
	hub := core.NewPeer("H").Declare("s0", 2)
	leaf := core.NewPeer("L").Declare("d0", 2)
	for i := 0; i < 4; i++ {
		hub.Fact("s0", fmt.Sprintf("k%d", i), "v")
	}
	hub.Fact("s0", "flagged", "v")
	leaf.Fact("d0", "flagged", "z")
	hub.SetTrust("L", core.TrustLess).
		AddDEC("L", &constraint.Dependency{
			Name: "flag",
			Body: []term.Atom{
				{Pred: "s0", Args: []term.Term{term.V("X"), term.V("Y")}},
				{Pred: "d0", Args: []term.Term{term.V("X"), term.V("Z")}},
			},
		})
	sys := core.NewSystem().MustAddPeer(hub).MustAddPeer(leaf)
	for i := 0; i < 2; i++ {
		rel := fmt.Sprintf("r%d", i)
		r := core.NewPeer(core.PeerID(fmt.Sprintf("R%d", i))).Declare(rel, 2).
			SetTrust("H", core.TrustLess).
			AddDEC("H", constraint.Inclusion(fmt.Sprintf("imp%d", i), "s0", rel, 2))
		r.Fact(rel, "seed", "v")
		sys.MustAddPeer(r)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}

	tr := NewInProc()
	tr.Latency = 5 * time.Millisecond // widen the in-flight window
	nodes := startNetwork(t, sys, tr)
	hubNode := nodes["H"]

	const burst = 4
	gate := make(chan struct{})
	var wg sync.WaitGroup
	answers := make([][]relation.Tuple, 2*burst)
	errs := make([]error, 2*burst)
	for i := 0; i < 2*burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			n := nodes[core.PeerID(fmt.Sprintf("R%d", i%2))]
			q := foquery.MustParse(fmt.Sprintf("r%d(X,Y)", i%2))
			answers[i], errs[i] = n.DelegatedAnswers(q, []string{"X", "Y"}, true)
		}(i)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("burst query %d: %v", i, err)
		}
	}
	for i := 0; i < 2*burst; i++ {
		n := nodes[core.PeerID(fmt.Sprintf("R%d", i%2))]
		q := foquery.MustParse(fmt.Sprintf("r%d(X,Y)", i%2))
		want, err := n.PeerConsistentAnswersFor(q, []string{"X", "Y"}, true)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(answers[i]) != fmt.Sprint(want) {
			t.Fatalf("burst query %d diverges:\ndelegated %v\ncentral   %v", i, answers[i], want)
		}
	}
	leaders, coalesced := hubNode.CoalesceStats()
	if coalesced == 0 {
		t.Fatalf("hub coalesced nothing across the burst (leaders=%d)", leaders)
	}
	if leaders+coalesced < 2*burst {
		t.Fatalf("hub flight accounting: leaders=%d coalesced=%d, want >= %d delegated requests",
			leaders, coalesced, 2*burst)
	}
}
