package peernet

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// multiRelSystem is a two-peer system where Q owns three relations, so
// P has something to batch-fetch.
func multiRelSystem(t *testing.T) *core.System {
	t.Helper()
	p := core.NewPeer("P").Declare("r", 1).Fact("r", "x")
	q := core.NewPeer("Q").Declare("a", 1).Declare("b", 1).Declare("c", 1).
		Fact("a", "1").Fact("a", "2").Fact("b", "3")
	sys := core.NewSystem()
	if err := sys.AddPeer(p); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddPeer(q); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestFetchRelationsSingleRoundTrip asserts the batched fetch pays one
// link latency for k relations: one transport call, and wall time well
// under the k-sequential-fetch floor.
func TestFetchRelationsSingleRoundTrip(t *testing.T) {
	sys := multiRelSystem(t)
	inproc := NewInProc()
	const latency = 50 * time.Millisecond
	inproc.Latency = latency
	tr := &countingTransport{Transport: inproc}
	nodes := startNetwork(t, sys, tr)

	rels := []string{"a", "b", "c"}
	start := time.Now()
	got, err := nodes["P"].FetchRelations("Q", rels)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if calls := tr.calls.Load(); calls != 1 {
		t.Fatalf("batched fetch of %d relations used %d round-trips, want 1", len(rels), calls)
	}
	// Three sequential OpFetch calls would sleep >= 3*latency; the
	// batch pays the latency once. Allow one extra latency of slack for
	// scheduling noise.
	if elapsed >= 2*latency {
		t.Fatalf("batched fetch took %v, want < %v (sequential floor is %v)", elapsed, 2*latency, 3*latency)
	}
	if len(got["a"]) != 2 || len(got["b"]) != 1 || len(got["c"]) != 0 {
		t.Fatalf("batched tuples = %v", got)
	}
}

// TestFetchRelationsMatchesIndividual asserts the batch returns exactly
// what per-relation OpFetch round-trips return.
func TestFetchRelationsMatchesIndividual(t *testing.T) {
	sys := multiRelSystem(t)
	nodes := startNetwork(t, sys, NewInProc())
	rels := []string{"a", "b", "c"}
	batch, err := nodes["P"].FetchRelations("Q", rels)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range rels {
		one, err := nodes["P"].FetchRelation("Q", rel)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[rel], one) {
			t.Fatalf("relation %s: batch %v != individual %v", rel, batch[rel], one)
		}
	}
}

// TestFetchRelationsUnknownRelation asserts a bad relation in the batch
// surfaces the remote error.
func TestFetchRelationsUnknownRelation(t *testing.T) {
	sys := multiRelSystem(t)
	nodes := startNetwork(t, sys, NewInProc())
	if _, err := nodes["P"].FetchRelations("Q", []string{"a", "nope"}); err == nil {
		t.Fatal("expected an error for an undeclared relation")
	}
}

// TestFetchRelationsServesFromCache asserts that with a TTL cache, a
// second batch for the same relations performs no round-trip, and that
// partial hits only fetch the misses (still in one call).
func TestFetchRelationsServesFromCache(t *testing.T) {
	sys := multiRelSystem(t)
	inproc := NewInProc()
	tr := &countingTransport{Transport: inproc}
	nodes := startNetwork(t, sys, tr)
	n := nodes["P"]
	n.CacheTTL = time.Hour

	if _, err := n.FetchRelations("Q", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if calls := tr.calls.Load(); calls != 1 {
		t.Fatalf("cold batch used %d calls, want 1", calls)
	}
	got, err := n.FetchRelations("Q", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if calls := tr.calls.Load(); calls != 1 {
		t.Fatalf("warm batch used %d extra calls, want 0", calls-1)
	}
	if len(got["a"]) != 2 || len(got["b"]) != 1 {
		t.Fatalf("cached tuples = %v", got)
	}
	// Partial hit: "c" is cold, "a" is warm — exactly one more call.
	if _, err := n.FetchRelations("Q", []string{"a", "c"}); err != nil {
		t.Fatal(err)
	}
	if calls := tr.calls.Load(); calls != 2 {
		t.Fatalf("partial-hit batch used %d total calls, want 2", calls)
	}
}
