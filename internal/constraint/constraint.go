// Package constraint represents and checks the constraints of the
// paper: data exchange constraints (DECs, Definition 2(e)) and local
// integrity constraints IC(P) (Definition 2(d)). A constraint is a
// universally quantified implication
//
//	∀x̄ ( B1 ∧ ... ∧ Bn ∧ cond → ∃ȳ ( H1 ∧ ... ∧ Hm ∧ eq ) )
//
// which covers the paper's referential exchange constraints (formula
// (2) and (3)), full inclusion dependencies (Example 1's Σ(P1,P2)),
// equality-generating constraints (Example 1's Σ(P1,P3)), functional
// dependencies and denial constraints.
package constraint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
	"repro/internal/term"
)

// Comparison is a built-in condition between two terms.
type Comparison struct {
	Op   string // "=", "!=", "<", "<=", ">", ">="
	L, R term.Term
}

// String renders the comparison.
func (c Comparison) String() string { return c.L.String() + " " + c.Op + " " + c.R.String() }

// Eval evaluates the comparison under a substitution; both sides must
// be ground after substitution.
func (c Comparison) Eval(s term.Subst) (bool, error) {
	l := s.ApplyTerm(c.L)
	r := s.ApplyTerm(c.R)
	if l.IsVar || r.IsVar {
		return false, fmt.Errorf("constraint: unbound variable in comparison %s", c)
	}
	switch c.Op {
	case "=":
		return l.Name == r.Name, nil
	case "!=":
		return l.Name != r.Name, nil
	case "<":
		return strings.Compare(l.Name, r.Name) < 0, nil
	case "<=":
		return strings.Compare(l.Name, r.Name) <= 0, nil
	case ">":
		return strings.Compare(l.Name, r.Name) > 0, nil
	case ">=":
		return strings.Compare(l.Name, r.Name) >= 0, nil
	}
	return false, fmt.Errorf("constraint: unknown operator %q", c.Op)
}

// Dependency is a universally quantified implication constraint.
type Dependency struct {
	// Name identifies the constraint in diagnostics, e.g. "sigma(P1,P2)".
	Name string
	// Body is the conjunction of atoms on the left of the implication.
	Body []term.Atom
	// Cond are built-in conditions on body variables.
	Cond []Comparison
	// ExVars are the existentially quantified head variables ȳ.
	ExVars []string
	// Head is the conjunction of atoms on the right; empty for denial
	// and equality-generating constraints.
	Head []term.Atom
	// HeadEq are equality (or comparison) conclusions; for an EGD such
	// as Example 1's Σ(P1,P3), Head is empty and HeadEq is {y = z}.
	HeadEq []Comparison
}

// IsDenial reports whether the dependency is a denial constraint
// (empty head: the body must never match).
func (d *Dependency) IsDenial() bool { return len(d.Head) == 0 && len(d.HeadEq) == 0 }

// IsEGD reports whether the dependency is equality-generating.
func (d *Dependency) IsEGD() bool { return len(d.Head) == 0 && len(d.HeadEq) > 0 }

// IsTGD reports whether the dependency has head atoms.
func (d *Dependency) IsTGD() bool { return len(d.Head) > 0 }

// IsFullTGD reports whether the dependency is tuple-generating with no
// existential variables (e.g. a full inclusion dependency).
func (d *Dependency) IsFullTGD() bool { return d.IsTGD() && len(d.ExVars) == 0 }

// Preds returns the set of predicate names mentioned by the dependency.
func (d *Dependency) Preds() map[string]bool {
	out := make(map[string]bool)
	for _, a := range d.Body {
		out[a.Pred] = true
	}
	for _, a := range d.Head {
		out[a.Pred] = true
	}
	return out
}

// String renders the dependency as Body, cond -> exists ȳ: Head, eq.
func (d *Dependency) String() string {
	var b strings.Builder
	for i, a := range d.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	for _, c := range d.Cond {
		b.WriteString(", ")
		b.WriteString(c.String())
	}
	b.WriteString(" -> ")
	if len(d.ExVars) > 0 {
		b.WriteString("exists ")
		b.WriteString(strings.Join(d.ExVars, ","))
		b.WriteString(": ")
	}
	if d.IsDenial() {
		b.WriteString("false")
		return b.String()
	}
	first := true
	for _, a := range d.Head {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(a.String())
	}
	for _, c := range d.HeadEq {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(c.String())
	}
	return b.String()
}

// Validate checks the dependency is well-formed: safety (head and
// condition variables occur in the body or in ExVars), existential
// variables do not occur in the body, and bodies are non-empty.
func (d *Dependency) Validate() error {
	if len(d.Body) == 0 {
		return fmt.Errorf("constraint %s: empty body", d.Name)
	}
	bodyVars := map[string]bool{}
	for _, a := range d.Body {
		for _, v := range a.Vars(nil) {
			bodyVars[v] = true
		}
	}
	ex := map[string]bool{}
	for _, v := range d.ExVars {
		if bodyVars[v] {
			return fmt.Errorf("constraint %s: existential variable %s occurs in body", d.Name, v)
		}
		ex[v] = true
	}
	checkTerm := func(t term.Term, where string) error {
		if t.IsVar && !bodyVars[t.Name] && !ex[t.Name] {
			return fmt.Errorf("constraint %s: unsafe variable %s in %s", d.Name, t.Name, where)
		}
		return nil
	}
	for _, c := range d.Cond {
		if c.L.IsVar && !bodyVars[c.L.Name] {
			return fmt.Errorf("constraint %s: condition variable %s not in body", d.Name, c.L.Name)
		}
		if c.R.IsVar && !bodyVars[c.R.Name] {
			return fmt.Errorf("constraint %s: condition variable %s not in body", d.Name, c.R.Name)
		}
	}
	for _, a := range d.Head {
		for _, t := range a.Args {
			if err := checkTerm(t, "head atom "+a.String()); err != nil {
				return err
			}
		}
	}
	for _, c := range d.HeadEq {
		if err := checkTerm(c.L, "head equality"); err != nil {
			return err
		}
		if err := checkTerm(c.R, "head equality"); err != nil {
			return err
		}
	}
	return nil
}

// Violation is a body match of a dependency for which no head witness
// exists in the instance.
type Violation struct {
	Dep   *Dependency
	Subst term.Subst // bindings for the body variables
}

// String renders the violation.
func (v Violation) String() string {
	var atoms []string
	for _, a := range v.Dep.Body {
		atoms = append(atoms, v.Subst.Apply(a).String())
	}
	return v.Dep.Name + " violated at " + strings.Join(atoms, ", ")
}

// Key returns a canonical identity for the violation: the dependency
// name plus the bound body atoms, rendered with the same separator
// bytes as Fact.Key (never the comma-joined Atom.String, whose
// rendering can collide when constants contain commas). Two violations
// of the same dependency list have equal keys exactly when they are the
// same body match, so the repair engine's conflict localization can
// recognize a frozen violation of another conflict component when it
// reappears in a re-check.
func (v Violation) Key() string {
	var b strings.Builder
	b.WriteString(v.Dep.Name)
	for _, a := range v.Dep.Body {
		g := v.Subst.Apply(a)
		b.WriteByte('\x1e')
		b.WriteString(g.Pred)
		for _, t := range g.Args {
			b.WriteByte('\x1f')
			b.WriteString(t.Name)
		}
	}
	return b.String()
}

// matchBody enumerates substitutions matching all body atoms against
// the instance and satisfying the conditions. Candidate facts come from
// the instance's per-column indexes (Instance.MatchingTuples) and
// backtracking uses a binding trail instead of cloning the substitution
// per candidate; the enumeration order is identical to a full sorted
// scan, so every caller sees the seed's deterministic match order.
func matchBody(inst *relation.Instance, body []term.Atom, cond []Comparison, fn func(term.Subst) error) error {
	s := term.NewSubst()
	var trail []string
	var argsBuf []term.Term
	// Per-depth scratch: the applied pattern's argument buffer and the
	// candidate-tuple buffer both live for the whole loop at their
	// depth, so each depth owns one of each and no inner scan
	// allocates. (argsBuf is only read inside MatchTrail, so a single
	// buffer shared across depths suffices for the fact side.)
	patBufs := make([][]term.Term, len(body))
	tupBufs := make([][]relation.Tuple, len(body))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(body) {
			for _, c := range cond {
				ok, err := c.Eval(s)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
			return fn(s.Clone())
		}
		pat := s.ApplyInto(body[i], patBufs[i])
		patBufs[i] = pat.Args
		for _, tup := range inst.MatchingTuplesBuf(pat, &tupBufs[i]) {
			mark := len(trail)
			argsBuf = term.ConstArgs(argsBuf[:0], tup)
			if term.MatchTrail(pat, term.Atom{Pred: pat.Pred, Args: argsBuf}, s, &trail) {
				if err := rec(i + 1); err != nil {
					return err
				}
			}
			trail = term.UnbindTrail(s, trail, mark)
		}
		return nil
	}
	return rec(0)
}

// headSatisfied checks whether a head witness exists for the body
// match σ: some extension of σ over ExVars (drawing candidate values
// from the instance's tuples for head atoms, then the active domain)
// making all head atoms present and all head equalities true.
func headSatisfied(inst *relation.Instance, d *Dependency, s term.Subst) (bool, error) {
	if d.IsDenial() {
		return false, nil // a body match is itself a violation
	}
	if len(d.ExVars) == 0 {
		for _, a := range d.Head {
			if !inst.HasAtom(s.Apply(a)) {
				return false, nil
			}
		}
		for _, c := range d.HeadEq {
			ok, err := c.Eval(s)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	}
	// Existential head: search for a witness by matching head atoms
	// (which bind ExVars) against the instance.
	found := false
	err := matchHead(inst, d.Head, s.Clone(), 0, func(full term.Subst) error {
		for _, c := range d.HeadEq {
			ok, err := c.Eval(full)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		found = true
		return errStop
	})
	if err != nil && err != errStop {
		return false, err
	}
	return found, nil
}

var errStop = fmt.Errorf("constraint: stop iteration")

func matchHead(inst *relation.Instance, head []term.Atom, s term.Subst, i int, fn func(term.Subst) error) error {
	if i == len(head) {
		return fn(s)
	}
	pat := s.Apply(head[i])
	if pat.IsGround() {
		if !inst.HasAtom(pat) {
			return nil
		}
		return matchHead(inst, head, s, i+1, fn)
	}
	var trail []string
	fact := term.Atom{Pred: pat.Pred}
	for _, tup := range inst.MatchingTuples(pat) {
		mark := len(trail)
		fact.Args = term.ConstArgs(fact.Args[:0], tup)
		if term.MatchTrail(pat, fact, s, &trail) {
			if err := matchHead(inst, head, s, i+1, fn); err != nil {
				return err
			}
		}
		trail = term.UnbindTrail(s, trail, mark)
	}
	return nil
}

// BodyMatches enumerates the substitutions matching the dependency's
// body (and satisfying its conditions) against the instance, in the
// deterministic order underlying Violations. The repair engine's
// conflict-graph construction uses it to enumerate the head facts a
// full TGD derives.
func (d *Dependency) BodyMatches(inst *relation.Instance, fn func(term.Subst) error) error {
	return matchBody(inst, d.Body, d.Cond, fn)
}

// Violations returns every violation of the dependency in the instance.
func (d *Dependency) Violations(inst *relation.Instance) ([]Violation, error) {
	var out []Violation
	err := matchBody(inst, d.Body, d.Cond, func(s term.Subst) error {
		ok, err := headSatisfied(inst, d, s)
		if err != nil {
			return err
		}
		if !ok {
			out = append(out, Violation{Dep: d, Subst: s})
		}
		return nil
	})
	return out, err
}

// Satisfied reports whether the instance satisfies the dependency.
func (d *Dependency) Satisfied(inst *relation.Instance) (bool, error) {
	sat := true
	err := matchBody(inst, d.Body, d.Cond, func(s term.Subst) error {
		ok, err := headSatisfied(inst, d, s)
		if err != nil {
			return err
		}
		if !ok {
			sat = false
			return errStop
		}
		return nil
	})
	if err != nil && err != errStop {
		return false, err
	}
	return sat, nil
}

// AllSatisfied reports whether the instance satisfies every dependency.
func AllSatisfied(inst *relation.Instance, deps []*Dependency) (bool, error) {
	for _, d := range deps {
		ok, err := d.Satisfied(inst)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// AllViolations returns every violation of every dependency, in
// dependency order and deterministic match order within a dependency.
// It is the root pass of the conflict-localized repair engine: the
// returned violations are the nodes of the conflict graph.
func AllViolations(inst *relation.Instance, deps []*Dependency) ([]Violation, error) {
	var out []Violation
	for _, d := range deps {
		vs, err := d.Violations(inst)
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	return out, nil
}

// DepIndex is a predicate-indexed table over a fixed dependency list:
// for each predicate, the (ordered) indices of the dependencies that
// mention it in their body or head. The repair engine uses it for
// incremental violation checking — after an action it re-checks only
// the dependencies whose predicates intersect the touched facts,
// because a dependency's violation set depends only on the facts of
// the predicates it mentions.
type DepIndex struct {
	deps   []*Dependency
	byPred map[string][]int
}

// NewDepIndex builds the table. The dependency list is captured by
// reference; it must not change afterwards.
func NewDepIndex(deps []*Dependency) *DepIndex {
	ix := &DepIndex{deps: deps, byPred: make(map[string][]int)}
	for i, d := range deps {
		for pred := range d.Preds() {
			ix.byPred[pred] = append(ix.byPred[pred], i)
		}
	}
	return ix
}

// Affected returns the sorted, de-duplicated indices of the
// dependencies mentioning any of the given predicates.
func (ix *DepIndex) Affected(preds []string) []int {
	var out []int
	seen := map[int]bool{}
	for _, p := range preds {
		for _, i := range ix.byPred[p] {
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	sort.Ints(out)
	return out
}

// FirstViolation returns one violation among the dependencies, or nil
// if the instance satisfies them all. Dependencies are examined in
// order and matches in deterministic instance order, so the result is
// stable for a given instance.
func FirstViolation(inst *relation.Instance, deps []*Dependency) (*Violation, error) {
	for _, d := range deps {
		var found *Violation
		err := matchBody(inst, d.Body, d.Cond, func(s term.Subst) error {
			ok, err := headSatisfied(inst, d, s)
			if err != nil {
				return err
			}
			if !ok {
				found = &Violation{Dep: d, Subst: s}
				return errStop
			}
			return nil
		})
		if err != nil && err != errStop {
			return nil, err
		}
		if found != nil {
			return found, nil
		}
	}
	return nil, nil
}

// --- convenience constructors -------------------------------------------

// Inclusion builds a full inclusion dependency ∀x̄ (from(x̄) → to(x̄)),
// e.g. Example 1's Σ(P1,P2): ∀xy (R2(x,y) → R1(x,y)).
func Inclusion(name, from, to string, arity int) *Dependency {
	vars := make([]term.Term, arity)
	for i := range vars {
		vars[i] = term.V(fmt.Sprintf("X%d", i+1))
	}
	return &Dependency{
		Name: name,
		Body: []term.Atom{{Pred: from, Args: vars}},
		Head: []term.Atom{{Pred: to, Args: vars}},
	}
}

// KeyEGD builds the binary key-style EGD of Example 1's Σ(P1,P3):
// ∀x,y,z (a(x,y) ∧ b(x,z) → y = z).
func KeyEGD(name, a, b string) *Dependency {
	return &Dependency{
		Name: name,
		Body: []term.Atom{
			term.NewAtom(a, term.V("X"), term.V("Y")),
			term.NewAtom(b, term.V("X"), term.V("Z")),
		},
		HeadEq: []Comparison{{Op: "=", L: term.V("Y"), R: term.V("Z")}},
	}
}

// FD builds a functional dependency rel: x → y for a binary relation
// (∀x,y,z (rel(x,y) ∧ rel(x,z) → y = z)), the local IC of Section 3.2.
func FD(name, rel string) *Dependency {
	return &Dependency{
		Name: name,
		Body: []term.Atom{
			term.NewAtom(rel, term.V("X"), term.V("Y")),
			term.NewAtom(rel, term.V("X"), term.V("Z")),
		},
		HeadEq: []Comparison{{Op: "=", L: term.V("Y"), R: term.V("Z")}},
	}
}

// Referential builds the paper's DEC (3):
// ∀x,y,z ∃w (R1(x,y) ∧ S1(z,y) → R2(x,w) ∧ S2(z,w)).
func Referential(name, r1, s1, r2, s2 string) *Dependency {
	return &Dependency{
		Name: name,
		Body: []term.Atom{
			term.NewAtom(r1, term.V("X"), term.V("Y")),
			term.NewAtom(s1, term.V("Z"), term.V("Y")),
		},
		ExVars: []string{"W"},
		Head: []term.Atom{
			term.NewAtom(r2, term.V("X"), term.V("W")),
			term.NewAtom(s2, term.V("Z"), term.V("W")),
		},
	}
}
