package constraint

import (
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/term"
)

func mkInst(facts map[string][]relation.Tuple) *relation.Instance {
	in := relation.NewInstance()
	for rel, ts := range facts {
		for _, t := range ts {
			in.Insert(rel, t)
		}
	}
	return in
}

func example1() *relation.Instance {
	return mkInst(map[string][]relation.Tuple{
		"r1": {{"a", "b"}, {"s", "t"}},
		"r2": {{"c", "d"}, {"a", "e"}},
		"r3": {{"a", "f"}, {"s", "u"}},
	})
}

func TestInclusionViolations(t *testing.T) {
	// Σ(P1,P2): ∀xy(R2(x,y) → R1(x,y)); violated by (c,d) and (a,e).
	d := Inclusion("sigma12", "r2", "r1", 2)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	in := example1()
	vs, err := d.Violations(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("violations = %v", vs)
	}
	ok, err := d.Satisfied(in)
	if err != nil || ok {
		t.Fatalf("Satisfied = %v, %v", ok, err)
	}
	// After the stage-one repair of Example 1 the DEC holds.
	in.Insert("r1", relation.Tuple{"c", "d"})
	in.Insert("r1", relation.Tuple{"a", "e"})
	ok, err = d.Satisfied(in)
	if err != nil || !ok {
		t.Fatalf("after repair: Satisfied = %v, %v", ok, err)
	}
}

func TestKeyEGDViolations(t *testing.T) {
	// Σ(P1,P3): ∀xyz(R1(x,y) ∧ R3(x,z) → y = z).
	d := KeyEGD("sigma13", "r1", "r3")
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	in := example1()
	vs, err := d.Violations(in)
	if err != nil {
		t.Fatal(err)
	}
	// (a,b)-(a,f) and (s,t)-(s,u).
	if len(vs) != 2 {
		t.Fatalf("violations = %v", vs)
	}
	// On the stage-one repaired instance there is one more: (a,e)-(a,f).
	in.Insert("r1", relation.Tuple{"c", "d"})
	in.Insert("r1", relation.Tuple{"a", "e"})
	vs, err = d.Violations(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Fatalf("violations after import = %d: %v", len(vs), vs)
	}
}

func TestReferentialDEC(t *testing.T) {
	// DEC (3) of Section 3.1 on the appendix instance:
	// r1 = {(a,b)}, s1 = {(c,b)}, r2 = {}, s2 = {(c,e),(c,f)}.
	d := Referential("dec3", "r1", "s1", "r2", "s2")
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	in := mkInst(map[string][]relation.Tuple{
		"r1": {{"a", "b"}},
		"s1": {{"c", "b"}},
		"s2": {{"c", "e"}, {"c", "f"}},
	})
	vs, err := d.Violations(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	// Inserting R2(a,f) provides the witness w = f.
	in.Insert("r2", relation.Tuple{"a", "f"})
	ok, err := d.Satisfied(in)
	if err != nil || !ok {
		t.Fatalf("after witness insert: %v %v", ok, err)
	}
}

func TestReferentialNoWitnessProvider(t *testing.T) {
	// If S2 has no tuple for z, no witness can exist even after
	// inserting into R2 (the aux2 case of rule (6) in the paper).
	d := Referential("dec3", "r1", "s1", "r2", "s2")
	in := mkInst(map[string][]relation.Tuple{
		"r1": {{"d", "m"}},
		"s1": {{"z9", "m"}},
	})
	vs, err := d.Violations(in)
	if err != nil || len(vs) != 1 {
		t.Fatalf("violations = %v, %v", vs, err)
	}
	in.Insert("r2", relation.Tuple{"d", "t"})
	// Still violated: S2(z9, t) is missing.
	ok, err := d.Satisfied(in)
	if err != nil || ok {
		t.Fatalf("should remain violated: %v %v", ok, err)
	}
}

func TestDenial(t *testing.T) {
	d := &Dependency{
		Name: "denial",
		Body: []term.Atom{
			term.NewAtom("p", term.V("X")),
			term.NewAtom("q", term.V("X")),
		},
	}
	if !d.IsDenial() {
		t.Fatal("IsDenial")
	}
	in := mkInst(map[string][]relation.Tuple{"p": {{"a"}}, "q": {{"b"}}})
	ok, err := d.Satisfied(in)
	if err != nil || !ok {
		t.Fatalf("disjoint p,q should satisfy denial: %v %v", ok, err)
	}
	in.Insert("q", relation.Tuple{"a"})
	ok, err = d.Satisfied(in)
	if err != nil || ok {
		t.Fatalf("overlap should violate denial: %v %v", ok, err)
	}
}

func TestFD(t *testing.T) {
	d := FD("fd_r1", "r1")
	in := mkInst(map[string][]relation.Tuple{"r1": {{"a", "b"}, {"a", "c"}}})
	ok, err := d.Satisfied(in)
	if err != nil || ok {
		t.Fatalf("FD should be violated: %v %v", ok, err)
	}
	in.Delete("r1", relation.Tuple{"a", "c"})
	ok, err = d.Satisfied(in)
	if err != nil || !ok {
		t.Fatalf("FD should hold: %v %v", ok, err)
	}
}

func TestConditionFilters(t *testing.T) {
	// ∀x,y (p(x,y) ∧ x != y → q(x)).
	d := &Dependency{
		Name: "cond",
		Body: []term.Atom{term.NewAtom("p", term.V("X"), term.V("Y"))},
		Cond: []Comparison{{Op: "!=", L: term.V("X"), R: term.V("Y")}},
		Head: []term.Atom{term.NewAtom("q", term.V("X"))},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	in := mkInst(map[string][]relation.Tuple{"p": {{"a", "a"}, {"b", "c"}}})
	vs, err := d.Violations(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Subst.Lookup(term.V("X")).Name != "b" {
		t.Fatalf("violations = %v", vs)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Dependency{
		{Name: "emptybody"},
		{ // head var not in body or exvars
			Name: "unsafehead",
			Body: []term.Atom{term.NewAtom("p", term.V("X"))},
			Head: []term.Atom{term.NewAtom("q", term.V("Y"))},
		},
		{ // existential var also in body
			Name:   "exinbody",
			Body:   []term.Atom{term.NewAtom("p", term.V("X"))},
			ExVars: []string{"X"},
			Head:   []term.Atom{term.NewAtom("q", term.V("X"))},
		},
		{ // condition var not in body
			Name: "condvar",
			Body: []term.Atom{term.NewAtom("p", term.V("X"))},
			Cond: []Comparison{{Op: "=", L: term.V("Z"), R: term.V("X")}},
			Head: []term.Atom{term.NewAtom("q", term.V("X"))},
		},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("Validate(%s) should fail", d.Name)
		}
	}
}

func TestFirstViolationDeterministic(t *testing.T) {
	d1 := Inclusion("first", "r2", "r1", 2)
	d2 := KeyEGD("second", "r1", "r3")
	in := example1()
	v1, err := FirstViolation(in, []*Dependency{d1, d2})
	if err != nil || v1 == nil {
		t.Fatalf("FirstViolation: %v %v", v1, err)
	}
	if v1.Dep.Name != "first" {
		t.Fatalf("dependency order not respected: %v", v1)
	}
	v2, err := FirstViolation(in, []*Dependency{d1, d2})
	if err != nil {
		t.Fatal(err)
	}
	if v1.String() != v2.String() {
		t.Fatalf("FirstViolation not deterministic: %v vs %v", v1, v2)
	}
	if !strings.Contains(v1.String(), "violated at") {
		t.Fatalf("violation rendering: %q", v1)
	}
}

func TestAllSatisfied(t *testing.T) {
	in := example1()
	deps := []*Dependency{Inclusion("i", "r2", "r1", 2), KeyEGD("k", "r1", "r3")}
	ok, err := AllSatisfied(in, deps)
	if err != nil || ok {
		t.Fatalf("AllSatisfied = %v %v", ok, err)
	}
	empty := relation.NewInstance()
	ok, err = AllSatisfied(empty, deps)
	if err != nil || !ok {
		t.Fatalf("empty instance must satisfy: %v %v", ok, err)
	}
}

func TestStringRendering(t *testing.T) {
	d := Referential("dec3", "r1", "s1", "r2", "s2")
	s := d.String()
	if !strings.Contains(s, "exists W") || !strings.Contains(s, "r2(X,W)") {
		t.Fatalf("String = %q", s)
	}
	k := KeyEGD("k", "r1", "r3").String()
	if !strings.Contains(k, "Y = Z") {
		t.Fatalf("EGD String = %q", k)
	}
	den := (&Dependency{Name: "d", Body: []term.Atom{term.NewAtom("p", term.V("X"))}}).String()
	if !strings.Contains(den, "false") {
		t.Fatalf("denial String = %q", den)
	}
}

func TestMultiAtomExistentialHead(t *testing.T) {
	// Head with two atoms sharing the existential variable must be
	// witnessed simultaneously (as in DEC (3)).
	d := Referential("dec3", "r1", "s1", "r2", "s2")
	in := mkInst(map[string][]relation.Tuple{
		"r1": {{"a", "b"}},
		"s1": {{"c", "b"}},
		"r2": {{"a", "e"}}, // witness e in R2 …
		"s2": {{"c", "f"}}, // … but S2 only has f: no common witness
	})
	ok, err := d.Satisfied(in)
	if err != nil || ok {
		t.Fatalf("mismatched witnesses must violate: %v %v", ok, err)
	}
	in.Insert("s2", relation.Tuple{"c", "e"})
	ok, err = d.Satisfied(in)
	if err != nil || !ok {
		t.Fatalf("common witness e must satisfy: %v %v", ok, err)
	}
}
