package constraint

import (
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// TestInclusionSatisfiedIffSubset (testing/quick): the inclusion
// dependency holds exactly when the source relation is a subset of the
// destination.
func TestInclusionSatisfiedIffSubset(t *testing.T) {
	d := Inclusion("inc", "src", "dst", 1)
	f := func(src, dst []uint8) bool {
		in := relation.NewInstance()
		for _, v := range src {
			in.Insert("src", relation.Tuple{name(v)})
		}
		for _, v := range dst {
			in.Insert("dst", relation.Tuple{name(v)})
		}
		ok, err := d.Satisfied(in)
		if err != nil {
			return false
		}
		subset := true
		for _, tup := range in.Tuples("src") {
			if !in.Has("dst", tup) {
				subset = false
				break
			}
		}
		return ok == subset
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestViolationsCountMatchesUnsatisfiedMatches (testing/quick): for
// the key EGD, the number of violations equals the number of joined
// pairs with differing values.
func TestViolationsCountMatchesUnsatisfiedMatches(t *testing.T) {
	d := KeyEGD("egd", "r", "s")
	f := func(rp, sp [][2]uint8) bool {
		in := relation.NewInstance()
		for _, p := range rp {
			in.Insert("r", relation.Tuple{name(p[0]), name(p[1])})
		}
		for _, p := range sp {
			in.Insert("s", relation.Tuple{name(p[0]), name(p[1])})
		}
		vs, err := d.Violations(in)
		if err != nil {
			return false
		}
		want := 0
		for _, rt := range in.Tuples("r") {
			for _, st := range in.Tuples("s") {
				if rt[0] == st[0] && rt[1] != st[1] {
					want++
				}
			}
		}
		return len(vs) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func name(b uint8) string { return string(rune('a' + int(b)%4)) }
