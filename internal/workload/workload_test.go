package workload

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/program"
)

func TestExample1ShapedCounts(t *testing.T) {
	s := Example1Shaped(3, 2, 2, 1)
	g := s.Global()
	if g.Count("r1") != 5 { // 3 clean + 2 conflict keys
		t.Fatalf("r1 = %d", g.Count("r1"))
	}
	if g.Count("r2") != 2 || g.Count("r3") != 2 {
		t.Fatalf("r2=%d r3=%d", g.Count("r2"), g.Count("r3"))
	}
	// Each conflict doubles the solutions: 2 conflicts → 4 solutions.
	sols, err := core.SolutionsFor(s, "P1", core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 4 {
		t.Fatalf("solutions = %d, want 4", len(sols))
	}
}

func TestExample1ShapedImportsForce(t *testing.T) {
	s := Example1Shaped(1, 3, 0, 1)
	sols, err := core.SolutionsFor(s, "P1", core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("solutions = %d, want 1 (imports are forced)", len(sols))
	}
	if sols[0].Count("r1") != 1+3 {
		t.Fatalf("r1 after import = %d", sols[0].Count("r1"))
	}
}

func TestReferentialShapedRepairCount(t *testing.T) {
	// 1 violation with 2 witnesses: 3 solutions (delete, insert w0,
	// insert w1) — exactly the Section 3.1 shape.
	s := ReferentialShaped(1, 2, 1, 1)
	sols, err := core.SolutionsFor(s, "P", core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 3 {
		t.Fatalf("solutions = %d, want 3", len(sols))
	}
	// Two independent violations with 1 witness each: (1+1)^2 = 4.
	s2 := ReferentialShaped(2, 1, 0, 1)
	sols2, err := core.SolutionsFor(s2, "P", core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols2) != 4 {
		t.Fatalf("solutions = %d, want 4", len(sols2))
	}
}

func TestIndependentConflictsExponential(t *testing.T) {
	for k := 0; k <= 3; k++ {
		s := IndependentConflicts(k)
		sols, err := core.SolutionsFor(s, "A", core.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := 1 << k
		if len(sols) != want {
			t.Fatalf("k=%d: solutions = %d, want %d", k, len(sols), want)
		}
	}
}

func TestChainTransitiveImports(t *testing.T) {
	s := Chain(3, 2, 1)
	if len(s.Peers()) != 3 {
		t.Fatalf("peers = %v", s.Peers())
	}
	// Transitive solutions for P0: everything cascades down, and with
	// inclusions only there is a single solution containing all facts.
	sols, err := program.SolutionsViaLP(s, "P0", program.RunOptions{Transitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("solutions = %d", len(sols))
	}
	// P0's relation absorbs the whole chain: 2 own + 2 from P1 + 2 from
	// P2 (which also flow through P1).
	if got := sols[0].Count("t0"); got != 6 {
		t.Fatalf("t0 = %d, want 6", got)
	}
	if got := sols[0].Count("t1"); got != 4 {
		t.Fatalf("t1 = %d, want 4", got)
	}
}

func TestChainDirectStopsAtNeighbor(t *testing.T) {
	s := Chain(3, 2, 1)
	sols, err := program.SolutionsViaLP(s, "P0", program.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("solutions = %d", len(sols))
	}
	// Direct case only imports from the immediate neighbour.
	if got := sols[0].Count("t0"); got != 4 {
		t.Fatalf("t0 = %d, want 4 (direct is local)", got)
	}
}

func TestWideUniverseShape(t *testing.T) {
	s := WideUniverse(3, 2, 5, 2, 1)
	// Peers: P0, PC, B0..B2.
	if got := len(s.Peers()); got != 5 {
		t.Fatalf("peers = %d, want 5", got)
	}
	// The full pipeline sees 2^conflictPeers solutions (one binary
	// choice per planted bystander conflict).
	sols, err := core.SolutionsFor(s, "P0", core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 4 {
		t.Fatalf("solutions = %d, want 2^2 = 4", len(sols))
	}
	// Bystander keys are disjoint across relations, so no accidental
	// conflicts beyond the planted ones: with conflictPeers=0 the
	// system has exactly one solution.
	clean := WideUniverse(3, 2, 5, 0, 1)
	sols, err = core.SolutionsFor(clean, "P0", core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("clean solutions = %d, want 1", len(sols))
	}
}

func TestScatteredConflictsShape(t *testing.T) {
	s := ScatteredConflicts(3, 4, 1)
	sols, err := core.SolutionsFor(s, "A", core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 8 {
		t.Fatalf("solutions = %d, want 2^3 = 8", len(sols))
	}
	// Every solution keeps the clean facts; the conflicts are resolved
	// by deleting one side or the other.
	for _, sol := range sols {
		for i := 0; i < 3; i++ {
			rel := fmt.Sprintf("ra%d", i)
			if n := sol.Count(rel); n != 4 && n != 5 {
				t.Fatalf("%s has %d tuples, want 4 (conflict deleted) or 5 (kept)", rel, n)
			}
		}
	}
	// Localized and global engines agree (the equivalence suite at the
	// repo root stresses this further).
	global, err := core.SolutionsFor(ScatteredConflicts(3, 4, 1), "A", core.SolveOptions{NoLocalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(global) != len(sols) {
		t.Fatalf("localized %d vs global %d solutions", len(sols), len(global))
	}
	for i := range sols {
		if !sols[i].Equal(global[i]) {
			t.Fatalf("solution %d diverges", i)
		}
	}
}

// TestDelegationFanoutShape: every hub imports into the root, carries
// clean plus flagged rows, and its flag denial forces exactly the
// flagged rows out — so each hub's unique solution keeps rowsPerHub
// tuples, and the root's answer is determined by the hubs alone.
func TestDelegationFanoutShape(t *testing.T) {
	const hubs, rows, flagged, noise = 3, 4, 2, 5
	s := DelegationFanout(hubs, rows, flagged, noise, 7)
	if got := len(s.Peers()); got != 1+2*hubs {
		t.Fatalf("peers = %d, want root + hub + leaf per fanout = %d", got, 1+2*hubs)
	}
	for h := 0; h < hubs; h++ {
		hid := core.PeerID(fmt.Sprintf("H%d", h))
		hub, ok := s.Peer(hid)
		if !ok {
			t.Fatalf("missing hub %s", hid)
		}
		si := fmt.Sprintf("s%d", h)
		if n := hub.Inst.Count(si); n != rows+flagged {
			t.Fatalf("%s.%s = %d tuples, want %d clean + %d flagged", hid, si, n, rows, flagged)
		}
		leaf, _ := s.Peer(core.PeerID(fmt.Sprintf("L%d", h)))
		di := fmt.Sprintf("d%d", h)
		if n := leaf.Inst.Count(di); n != flagged+noise {
			t.Fatalf("L%d.%s = %d tuples, want %d flags + %d noise", h, di, n, flagged, noise)
		}
		// The hub's solution is unique: the flag denial deletes exactly
		// the flagged rows (forced — one mutable body atom).
		sols, err := core.SolutionsFor(s, hid, core.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(sols) != 1 {
			t.Fatalf("hub %s has %d solutions, want a unique one", hid, len(sols))
		}
		if n := sols[0].Count(si); n != rows {
			t.Fatalf("hub %s solution keeps %d tuples, want the %d clean rows", hid, n, rows)
		}
	}
	if DelegationFanout(1, 1, 0, 0, 1) == nil {
		t.Fatal("minimal fanout should build")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("hubs < 1 should panic")
		}
	}()
	DelegationFanout(0, 1, 0, 0, 1)
}

func TestLargeUniverseShape(t *testing.T) {
	s := LargeUniverse(50, 3, 4, 10, 1)
	g := s.Global()
	// Root: coreFacts clean keys + conflicts contested keys.
	if n := g.Count("q0"); n != 53 {
		t.Fatalf("q0 = %d, want 50 core + 3 conflict facts", n)
	}
	if n := g.Count("k0"); n != 3 {
		t.Fatalf("k0 = %d, want one fact per conflict", n)
	}
	for r := 0; r < 4; r++ {
		if n := g.Count(fmt.Sprintf("bulk%d", r)); n != 10 {
			t.Fatalf("bulk%d = %d, want 10", r, n)
		}
	}
	root, ok := s.Peer("P0")
	if !ok {
		t.Fatal("missing root peer P0")
	}
	if len(root.DECs["PK"]) != 1 || len(root.DECs["PB"]) != 1 {
		t.Fatalf("root DECs: PK=%d PB=%d, want the core and bulk key constraints",
			len(root.DECs["PK"]), len(root.DECs["PB"]))
	}
	// Each conflict key is contested: present in q0 with value u and in
	// k0 with value v, so the core EGD fires exactly per conflict.
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("c%d", i)
		if !g.Has("q0", []string{key, "u"}) || !g.Has("k0", []string{key, "v"}) {
			t.Fatalf("conflict key %s not contested in both relations", key)
		}
	}
	// Same seed reproduces the universe byte-for-byte; a different seed
	// must not (the bulk values are the only randomized part).
	if s.Global().Key() != LargeUniverse(50, 3, 4, 10, 1).Global().Key() {
		t.Fatal("same seed should be deterministic")
	}
	if s.Global().Key() == LargeUniverse(50, 3, 4, 10, 2).Global().Key() {
		t.Fatal("different seed should change the bulk values")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bulkRels < 2 should panic")
		}
	}()
	LargeUniverse(1, 0, 1, 0, 1)
}
