// Package workload generates synthetic P2P data exchange systems with
// controlled size and inconsistency, the quantities that drive the cost
// of peer consistent query answering (the paper's semantics is Π^p_2 in
// data complexity; the number of independent conflicts controls the
// number of solutions). No real 2004 peer datasets exist, so these
// generators stand in for the evaluation workloads a systems paper
// would have used; every benchmark in EXPERIMENTS.md states which
// generator and parameters it uses.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/term"
)

// Example1Shaped builds a P1/P2/P3 system with the Example 1 DEC shape
// (inclusion import from P2, key EGD against P3):
//
//   - cleanFacts: r1 tuples with unique keys and no conflicts;
//   - imports: r2 tuples absent from r1 (each forces one import);
//   - conflicts: r1/r3 key collisions with different values (each
//     yields an independent binary repair choice, doubling the number
//     of solutions).
//
// Keys are disjoint across the three groups so the counts are exact.
func Example1Shaped(cleanFacts, imports, conflicts int, seed int64) *core.System {
	rng := rand.New(rand.NewSource(seed))
	p1 := core.NewPeer("P1").Declare("r1", 2).
		SetTrust("P2", core.TrustLess).SetTrust("P3", core.TrustSame).
		AddDEC("P2", constraint.Inclusion("inc", "r2", "r1", 2)).
		AddDEC("P3", constraint.KeyEGD("egd", "r1", "r3"))
	p2 := core.NewPeer("P2").Declare("r2", 2)
	p3 := core.NewPeer("P3").Declare("r3", 2)
	for i := 0; i < cleanFacts; i++ {
		p1.Fact("r1", fmt.Sprintf("k%d", i), val(rng))
	}
	for i := 0; i < imports; i++ {
		p2.Fact("r2", fmt.Sprintf("m%d", i), val(rng))
	}
	for i := 0; i < conflicts; i++ {
		key := fmt.Sprintf("c%d", i)
		p1.Fact("r1", key, "v1")
		p3.Fact("r3", key, "v2")
	}
	return core.NewSystem().MustAddPeer(p1).MustAddPeer(p2).MustAddPeer(p3)
}

// ReferentialShaped builds a Section-3.1-shaped system: peer P with
// {r1, r2}, peer Q with {s1, s2}, DEC (3), (P, less, Q):
//
//   - violations: r1/s1 pairs with no witness in r2×s2;
//   - witnesses: s2 tuples per violation key (each violation then has
//     witnesses+1 repairs: delete or insert one of the witnesses);
//   - satisfied: r1/s1 pairs already witnessed in r2×s2.
func ReferentialShaped(violations, witnesses, satisfied int, seed int64) *core.System {
	_ = seed
	p := core.NewPeer("P").Declare("r1", 2).Declare("r2", 2).
		SetTrust("Q", core.TrustLess).
		AddDEC("Q", constraint.Referential("dec3", "r1", "s1", "r2", "s2"))
	q := core.NewPeer("Q").Declare("s1", 2).Declare("s2", 2)
	for i := 0; i < violations; i++ {
		y := fmt.Sprintf("y%d", i)
		p.Fact("r1", fmt.Sprintf("x%d", i), y)
		q.Fact("s1", fmt.Sprintf("z%d", i), y)
		for w := 0; w < witnesses; w++ {
			q.Fact("s2", fmt.Sprintf("z%d", i), fmt.Sprintf("w%d_%d", i, w))
		}
	}
	for i := 0; i < satisfied; i++ {
		y := fmt.Sprintf("sy%d", i)
		x := fmt.Sprintf("sx%d", i)
		z := fmt.Sprintf("sz%d", i)
		w := fmt.Sprintf("sw%d", i)
		p.Fact("r1", x, y)
		q.Fact("s1", z, y)
		p.Fact("r2", x, w)
		q.Fact("s2", z, w)
	}
	return core.NewSystem().MustAddPeer(p).MustAddPeer(q)
}

// Chain builds a transitive import chain of depth peers:
// P0 ← P1 ← ... ← P(depth-1), each peer trusting the next more and
// importing its relation, with factsPerPeer facts at every level
// (Section 4.3 workloads).
func Chain(depth, factsPerPeer int, seed int64) *core.System {
	if depth < 1 {
		panic("workload: Chain depth must be >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	s := core.NewSystem()
	for i := 0; i < depth; i++ {
		id := core.PeerID(fmt.Sprintf("P%d", i))
		rel := fmt.Sprintf("t%d", i)
		p := core.NewPeer(id).Declare(rel, 2)
		for j := 0; j < factsPerPeer; j++ {
			p.Fact(rel, fmt.Sprintf("p%d_k%d", i, j), val(rng))
		}
		if i+1 < depth {
			next := core.PeerID(fmt.Sprintf("P%d", i+1))
			p.SetTrust(next, core.TrustLess)
			p.AddDEC(next, constraint.Inclusion(
				fmt.Sprintf("inc%d", i), fmt.Sprintf("t%d", i+1), rel, 2))
		}
		s.MustAddPeer(p)
	}
	return s
}

// IndependentConflicts builds a two-peer system with k independent
// same-trust EGD conflicts: the peer has exactly 2^k solutions,
// exhibiting the exponential blow-up behind the Π^p_2 data complexity
// (benchmark B2).
func IndependentConflicts(k int) *core.System {
	p1 := core.NewPeer("A").Declare("ra", 2).
		SetTrust("B", core.TrustSame).
		AddDEC("B", constraint.KeyEGD("egd", "ra", "rb"))
	p2 := core.NewPeer("B").Declare("rb", 2)
	for i := 0; i < k; i++ {
		key := fmt.Sprintf("k%d", i)
		p1.Fact("ra", key, "u")
		p2.Fact("rb", key, "v")
	}
	return core.NewSystem().MustAddPeer(p1).MustAddPeer(p2)
}

// ScatteredConflicts builds a two-peer system with k independent
// same-trust EGD conflicts scattered across k disjoint relation pairs:
// peer A declares ra0..ra{k-1}, each holding cleanPerRel clean facts
// plus one conflicting key, and peer B declares rb0..rb{k-1} with the
// opposing value for that key. The peer has 2^k solutions, but the
// conflicts are pairwise independent — no shared facts, no TGD
// cascades — so the conflict-localized repair engine decomposes the
// search into k trivial components and a query over a single relation
// observes exactly one of them (benchmark B10); the global wave search
// pays the full 2^k enumeration.
func ScatteredConflicts(k, cleanPerRel int, seed int64) *core.System {
	rng := rand.New(rand.NewSource(seed))
	pa := core.NewPeer("A").SetTrust("B", core.TrustSame)
	pb := core.NewPeer("B")
	for i := 0; i < k; i++ {
		ra := fmt.Sprintf("ra%d", i)
		rb := fmt.Sprintf("rb%d", i)
		pa.Declare(ra, 2)
		pb.Declare(rb, 2)
		pa.AddDEC("B", constraint.KeyEGD(fmt.Sprintf("egd%d", i), ra, rb))
		for j := 0; j < cleanPerRel; j++ {
			pa.Fact(ra, fmt.Sprintf("k%d_%d", i, j), val(rng))
		}
		key := fmt.Sprintf("c%d", i)
		pa.Fact(ra, key, "u")
		pb.Fact(rb, key, "v")
	}
	return core.NewSystem().MustAddPeer(pa).MustAddPeer(pb)
}

// ChurnUniverse is the incremental-maintenance benchmark workload
// (B14): ScatteredConflicts plus a chain of never-violated link EGDs
// ln_i between ra_i and rb_{i+1} (the key spaces are disjoint by
// construction, so the links add no violations and no repair work).
// The links matter at the spec level only: the query slice for
// ra0(X,Y) walks them and pulls in every relation pair, so a write to
// ANY ra_i moves the ra0 slice fingerprint and forces the
// content-addressed answer cache to evict — while the conflict
// components stay pairwise scattered, so the incremental engine
// re-searches only the touched component and reuses the rest. This is
// exactly the regime where delta-driven repair beats
// evict-and-recompute; in plain ScatteredConflicts the slice prunes
// foreign writes away and the answer cache alone absorbs them.
func ChurnUniverse(k, cleanPerRel int, seed int64) *core.System {
	s := ScatteredConflicts(k, cleanPerRel, seed)
	pa, _ := s.Peer("A")
	for i := 0; i+1 < k; i++ {
		pa.AddDEC("B", constraint.KeyEGD(fmt.Sprintf("ln%d", i),
			fmt.Sprintf("ra%d", i), fmt.Sprintf("rb%d", i+1)))
	}
	return s
}

// WideUniverse builds an overlay whose query-relevant core is tiny
// while the universe is wide — the workload where query-relevance
// slicing (internal/slice) pays off. Root peer P0 declares q0 (the
// query target) and imports it from peer PC's c0 via an inclusion DEC
// (TrustLess, so missing tuples are forced imports). Additionally,
// `width` bystander peers B0..B{width-1} each declare `relsPerPeer`
// binary relations with `factsPerRel` facts, and the root maintains a
// same-trust key EGD between each bystander's first two relations —
// a repairable constraint mentioning no root relation, which the slice
// for q0 drops, so a sliced snapshot never moves bystander data. The
// first `conflictPeers` bystanders get one key conflict each, so the
// full (unsliced) pipeline branches into 2^conflictPeers solutions
// while the sliced one never sees the conflicts.
func WideUniverse(width, relsPerPeer, factsPerRel, conflictPeers int, seed int64) *core.System {
	if relsPerPeer < 2 {
		panic("workload: WideUniverse needs relsPerPeer >= 2")
	}
	if conflictPeers > width {
		conflictPeers = width
	}
	rng := rand.New(rand.NewSource(seed))
	root := core.NewPeer("P0").Declare("q0", 2).
		SetTrust("PC", core.TrustLess).
		AddDEC("PC", constraint.Inclusion("inc_core", "c0", "q0", 2))
	pc := core.NewPeer("PC").Declare("c0", 2)
	for i := 0; i < 4; i++ {
		root.Fact("q0", fmt.Sprintf("k%d", i), val(rng))
	}
	for i := 0; i < 3; i++ {
		pc.Fact("c0", fmt.Sprintf("m%d", i), val(rng))
	}
	s := core.NewSystem().MustAddPeer(root).MustAddPeer(pc)
	for b := 0; b < width; b++ {
		id := core.PeerID(fmt.Sprintf("B%d", b))
		peer := core.NewPeer(id)
		rels := make([]string, relsPerPeer)
		for r := 0; r < relsPerPeer; r++ {
			rels[r] = fmt.Sprintf("b%d_r%d", b, r)
			peer.Declare(rels[r], 2)
			// Keys are disjoint across a bystander's relations, so the
			// only EGD conflict is the one conflictPeers plants.
			for f := 0; f < factsPerRel; f++ {
				peer.Fact(rels[r], fmt.Sprintf("b%d_r%d_k%d", b, r, f), val(rng))
			}
		}
		if b < conflictPeers {
			key := fmt.Sprintf("b%d_c", b)
			peer.Fact(rels[0], key, "u")
			peer.Fact(rels[1], key, "v")
		}
		root.SetTrust(id, core.TrustSame)
		root.AddDEC(id, constraint.KeyEGD(fmt.Sprintf("egd_b%d", b), rels[0], rels[1]))
		s.MustAddPeer(peer)
	}
	return s
}

// DelegationFanout builds the delegated-answering showcase overlay
// (benchmark B11): root P0 imports s_i from `hubs` hub peers H_i via
// inclusion DECs (TrustLess), and every hub filters its s_i against a
// large private relation d_i of a leaf peer L_i it trusts more, via the
// one-mutable-atom denial
//
//	s_i(x,y) ∧ d_i(x,z) → false
//
// (delete the flagged s_i rows — a forced repair, so the exactness gate
// of slice.PlanDelegation admits delegation). Each hub holds rowsPerHub
// clean rows plus flaggedPerHub rows whose keys appear in d_i; each
// leaf additionally holds noisePerLeaf unrelated d_i rows. A
// centralized snapshot must move every s_i AND every d_i to the root
// (the denial is in the slice), while delegation moves only the
// filtered s_i answer sets — the hubs read their leaves themselves.
func DelegationFanout(hubs, rowsPerHub, flaggedPerHub, noisePerLeaf int, seed int64) *core.System {
	if hubs < 1 {
		panic("workload: DelegationFanout needs hubs >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	root := core.NewPeer("P0").Declare("r0", 2)
	for i := 0; i < 2; i++ {
		root.Fact("r0", fmt.Sprintf("r0_k%d", i), val(rng))
	}
	s := core.NewSystem().MustAddPeer(root)
	for h := 0; h < hubs; h++ {
		hid := core.PeerID(fmt.Sprintf("H%d", h))
		lid := core.PeerID(fmt.Sprintf("L%d", h))
		si := fmt.Sprintf("s%d", h)
		di := fmt.Sprintf("d%d", h)
		root.SetTrust(hid, core.TrustLess).
			AddDEC(hid, constraint.Inclusion(fmt.Sprintf("imp%d", h), si, "r0", 2))
		hub := core.NewPeer(hid).Declare(si, 2).
			SetTrust(lid, core.TrustLess).
			AddDEC(lid, &constraint.Dependency{
				Name: fmt.Sprintf("flag%d", h),
				Body: []term.Atom{
					{Pred: si, Args: []term.Term{term.V("X"), term.V("Y")}},
					{Pred: di, Args: []term.Term{term.V("X"), term.V("Z")}},
				},
			})
		leaf := core.NewPeer(lid).Declare(di, 2)
		for r := 0; r < rowsPerHub; r++ {
			hub.Fact(si, fmt.Sprintf("h%d_k%d", h, r), val(rng))
		}
		for f := 0; f < flaggedPerHub; f++ {
			key := fmt.Sprintf("h%d_f%d", h, f)
			hub.Fact(si, key, val(rng))
			leaf.Fact(di, key, "flag")
		}
		for x := 0; x < noisePerLeaf; x++ {
			leaf.Fact(di, fmt.Sprintf("l%d_x%d", h, x), val(rng))
		}
		s.MustAddPeer(hub).MustAddPeer(leaf)
	}
	return s
}

// LargeUniverse builds a production-scale universe (10^5-10^6 facts)
// for the columnar memory plane benchmark (B12). The query-relevant
// core is a single wide relation: root peer P0 holds coreFacts clean q0
// tuples plus `conflicts` planted key conflicts against peer PK's k0
// (same trust, key EGD — each conflict is an independent binary repair
// choice, and the conflict-localized engine decomposes them). The rest
// of the universe is bulk: bystander peer PB declares bulkRels
// relations with bulkFactsPerRel facts each, tied to the root only by a
// same-trust EGD between its first two relations — repairable but
// irrelevant to q0, so the query slice drops every bulk relation while
// the unsliced instance still carries them through every clone. The
// repair+answer hot path over this universe is dominated by per-tuple
// storage overhead, which is what the packed-segment storage and
// copy-on-write cloning attack.
//
// Total facts = coreFacts + 2*conflicts + bulkRels*bulkFactsPerRel.
func LargeUniverse(coreFacts, conflicts, bulkRels, bulkFactsPerRel int, seed int64) *core.System {
	if bulkRels < 2 {
		panic("workload: LargeUniverse needs bulkRels >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	root := core.NewPeer("P0").Declare("q0", 2).
		SetTrust("PK", core.TrustSame).
		AddDEC("PK", constraint.KeyEGD("egd_core", "q0", "k0"))
	pk := core.NewPeer("PK").Declare("k0", 2)
	for i := 0; i < coreFacts; i++ {
		root.Fact("q0", fmt.Sprintf("k%d", i), val(rng))
	}
	for i := 0; i < conflicts; i++ {
		key := fmt.Sprintf("c%d", i)
		root.Fact("q0", key, "u")
		pk.Fact("k0", key, "v")
	}
	pb := core.NewPeer("PB")
	rels := make([]string, bulkRels)
	for r := 0; r < bulkRels; r++ {
		rels[r] = fmt.Sprintf("bulk%d", r)
		pb.Declare(rels[r], 2)
		for f := 0; f < bulkFactsPerRel; f++ {
			pb.Fact(rels[r], fmt.Sprintf("bulk%d_k%d", r, f), val(rng))
		}
	}
	root.SetTrust("PB", core.TrustSame)
	root.AddDEC("PB", constraint.KeyEGD("egd_bulk", rels[0], rels[1]))
	return core.NewSystem().MustAddPeer(root).MustAddPeer(pk).MustAddPeer(pb)
}

func val(rng *rand.Rand) string { return fmt.Sprintf("v%d", rng.Intn(1000)) }

// StreamOp is one operation of a serving-plane workload stream: a
// query (Query/Vars) or a fact insert (Peer/Rel/Tuple).
type StreamOp struct {
	// Write marks an insert; otherwise the op is a query.
	Write bool
	// Peer, Rel and Tuple describe the write target.
	Peer  core.PeerID
	Rel   string
	Tuple []string
	// Query and Vars describe the read.
	Query string
	Vars  []string
}

// ChurnStream derives the deterministic write/query lockstep schedule
// of the incremental re-answering benchmark (B14) over a
// ScatteredConflicts(k, ...) system: step i inserts one fresh-keyed
// fact into root relation ra{1 + i mod (k-1)} and then re-issues the
// fixed query ra0(X,Y). Every write moves the data fingerprint of the
// query's slice — evicting a purely content-addressed answer cache —
// but touches only a conflict component disjoint from the queried
// relation, which is exactly the shape the delta-driven incremental
// path patches instead of recomputing. Keys depend only on the step
// index, so replaying the stream is deterministic.
func ChurnStream(k, steps int, seed int64) []StreamOp {
	if k < 2 {
		panic("workload: ChurnStream needs a ScatteredConflicts shape (k >= 2)")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]StreamOp, 0, 2*steps)
	for i := 0; i < steps; i++ {
		rel := fmt.Sprintf("ra%d", 1+i%(k-1))
		out = append(out,
			StreamOp{Write: true, Peer: "A", Rel: rel,
				Tuple: []string{fmt.Sprintf("w%d", i), val(rng)}},
			StreamOp{Query: "ra0(X,Y)", Vars: []string{"X", "Y"}})
	}
	return out
}

// MixedStream derives the deterministic interleaved read/write stream
// of the sustained-throughput benchmark (B13) over a
// WideUniverse(width, relsPerPeer, ...) system. Reads cycle randomly
// through a small set of query shapes over the root's q0 — the repeats
// are what make the answer cache and in-flight coalescing observable.
// Every writeEvery-th op is a write, alternating between fresh q0
// facts at the root (relevant: the fingerprint moves and the fact must
// be visible to the next read) and fresh facts in the last bystander's
// last relation (irrelevant to the q0 slice: the content-addressed
// answer cache must keep serving hits across it). Write keys depend
// only on the op index, so replaying the stream re-inserts the same
// facts — an idempotent steady state.
func MixedStream(width, relsPerPeer, ops, writeEvery int, seed int64) []StreamOp {
	if width < 1 || relsPerPeer < 2 {
		panic("workload: MixedStream needs a WideUniverse shape (width >= 1, relsPerPeer >= 2)")
	}
	rng := rand.New(rand.NewSource(seed))
	queries := []StreamOp{
		{Query: "q0(X,Y)", Vars: []string{"X", "Y"}},
		{Query: "q0(k0,Y)", Vars: []string{"Y"}},
		{Query: "q0(X,Y)", Vars: []string{"X"}},
	}
	bystander := core.PeerID(fmt.Sprintf("B%d", width-1))
	bystanderRel := fmt.Sprintf("b%d_r%d", width-1, relsPerPeer-1)
	out := make([]StreamOp, 0, ops)
	writes := 0
	for i := 0; i < ops; i++ {
		if writeEvery > 0 && i%writeEvery == writeEvery-1 {
			writes++
			if writes%2 == 1 {
				out = append(out, StreamOp{Write: true, Peer: "P0", Rel: "q0",
					Tuple: []string{fmt.Sprintf("w%d", writes), val(rng)}})
			} else {
				out = append(out, StreamOp{Write: true, Peer: bystander, Rel: bystanderRel,
					Tuple: []string{fmt.Sprintf("bw%d", writes), val(rng)}})
			}
			continue
		}
		out = append(out, queries[rng.Intn(len(queries))])
	}
	return out
}
