package repair

import (
	"repro/internal/constraint"
	"repro/internal/foquery"
	"repro/internal/relation"
)

// ConsistentAnswers computes the consistent answers to a query in the
// sense of [Arenas, Bertossi, Chomicki, PODS 99]: the tuples returned
// by the query in every repair of the instance. This is the
// single-database CQA baseline against which the paper contrasts peer
// consistent answers (Section 2).
func ConsistentAnswers(inst *relation.Instance, deps []*constraint.Dependency, q foquery.Formula, vars []string, opt Options) ([]relation.Tuple, error) {
	reps, err := Repairs(inst, deps, opt)
	if err != nil && err != ErrBound {
		return nil, err
	}
	boundErr := err
	ans, err := IntersectAnswers(reps, q, vars)
	if err != nil {
		return nil, err
	}
	return ans, boundErr
}

// IntersectAnswers evaluates the query on each instance and returns
// the tuples present in all of them, sorted. With no instances it
// returns nil (no solutions: every tuple vacuously qualifies is the
// other convention; we follow the paper's practice of reporting
// "no solutions" separately).
func IntersectAnswers(insts []*relation.Instance, q foquery.Formula, vars []string) ([]relation.Tuple, error) {
	if len(insts) == 0 {
		return nil, nil
	}
	counts := make(map[string]int)
	tuples := make(map[string]relation.Tuple)
	for _, in := range insts {
		ans, err := foquery.Answers(in, q, vars)
		if err != nil {
			return nil, err
		}
		seen := make(map[string]bool)
		for _, t := range ans {
			k := t.Key()
			if !seen[k] {
				seen[k] = true
				counts[k]++
				tuples[k] = t
			}
		}
	}
	var out []relation.Tuple
	for k, c := range counts {
		if c == len(insts) {
			out = append(out, tuples[k])
		}
	}
	sortTuples(out)
	return out, nil
}

func sortTuples(ts []relation.Tuple) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Key() < ts[j-1].Key(); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
