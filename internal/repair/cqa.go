package repair

import (
	"sort"

	"repro/internal/constraint"
	"repro/internal/foquery"
	"repro/internal/parallel"
	"repro/internal/relation"
)

// ConsistentAnswers computes the consistent answers to a query in the
// sense of [Arenas, Bertossi, Chomicki, PODS 99]: the tuples returned
// by the query in every repair of the instance. This is the
// single-database CQA baseline against which the paper contrasts peer
// consistent answers (Section 2). Query evaluation over the repairs is
// fanned out across Options.Parallelism workers; the intersection is
// order-independent, so the result does not depend on the degree of
// parallelism.
//
// When the conflict-localized engine applies (localize.go) and the
// query's relations intersect the deltas of at most one conflict
// component, the intersection is evaluated over that component's
// repairs alone: repairs of the other components agree with it on every
// relation the (domain-independent) query can observe, so the 2^k
// cross-product of scattered conflicts is never materialized.
func ConsistentAnswers(inst *relation.Instance, deps []*constraint.Dependency, q foquery.Formula, vars []string, opt Options) ([]relation.Tuple, error) {
	for _, d := range deps {
		if err := d.Validate(); err != nil {
			return nil, err
		}
	}
	if opt.MaxDelta == 0 {
		opt.MaxDelta = inst.Size() + 64
	}
	if pl, ok := tryLocalize(inst, deps, opt); ok {
		opt.Stats.record(len(pl.comps))
		if ans, done, err := pl.localizedAnswers(q, vars, opt); done {
			return ans, err
		}
		// The intersection below is order-independent, so the composed
		// repairs skip the canonical sort (and its per-repair key renders).
		return IntersectAnswersOpt(pl.materialize(opt, false), q, vars, opt)
	}
	opt.Stats.record(-1)
	reps, err := searchRepairs(inst, deps, opt)
	if err != nil && err != ErrBound {
		return nil, err
	}
	boundErr := err
	ans, err := IntersectAnswersOpt(reps, q, vars, opt)
	if err != nil {
		return nil, err
	}
	return ans, boundErr
}

// localizedAnswers evaluates the consistent answers per component when
// that is exact: the query must be domain-independent by construction
// (only atoms and positive boolean structure, so evaluation never
// consults the active domain) and its predicates must intersect the
// repair deltas of at most one component. done reports whether the
// answers were produced this way; on false the caller materializes the
// composed repair set.
func (pl *localPlan) localizedAnswers(q foquery.Formula, vars []string, opt Options) ([]relation.Tuple, bool, error) {
	if !domainFreeQuery(q) {
		return nil, false, nil
	}
	for _, c := range pl.comps {
		if len(c.deltas) == 0 {
			// No repairs at all: the intersection over an empty repair
			// set is empty, exactly as IntersectAnswers reports it.
			return nil, true, nil
		}
	}
	var touched *component
	for _, c := range pl.comps {
		for _, p := range foquery.Preds(q) {
			if c.deltaPreds[p] {
				if touched != nil && touched != c {
					return nil, false, nil // query spans two components
				}
				touched = c
			}
		}
	}
	if touched == nil {
		// Every repair agrees with the original instance on the query's
		// relations.
		ans, err := IntersectAnswersOpt([]*relation.Instance{pl.orig}, q, vars, opt)
		return ans, true, err
	}
	ans, err := IntersectAnswersOpt(touched.insts, q, vars, opt)
	return ans, true, err
}

// domainFreeQuery reports whether evaluating the formula can never
// consult the active domain: only positive atoms under conjunction and
// disjunction qualify (every such subformula is a generator, so the
// evaluator's domain-enumeration fallback is unreachable). Negation,
// quantifiers, implications and comparisons all may observe constants
// of relations outside the query's predicates.
func domainFreeQuery(f foquery.Formula) bool {
	switch g := f.(type) {
	case foquery.Atom:
		return true
	case foquery.And:
		for _, h := range g.Fs {
			if !domainFreeQuery(h) {
				return false
			}
		}
		return true
	case foquery.Or:
		for _, h := range g.Fs {
			if !domainFreeQuery(h) {
				return false
			}
		}
		return true
	}
	return false
}

// IntersectAnswers evaluates the query on each instance and returns
// the tuples present in all of them, sorted. With no instances it
// returns nil (no solutions: every tuple vacuously qualifies is the
// other convention; we follow the paper's practice of reporting
// "no solutions" separately). Evaluation uses the default worker pool
// (GOMAXPROCS); use IntersectAnswersOpt to bound it.
func IntersectAnswers(insts []*relation.Instance, q foquery.Formula, vars []string) ([]relation.Tuple, error) {
	return IntersectAnswersOpt(insts, q, vars, Options{})
}

// IntersectAnswersOpt is IntersectAnswers with an explicit worker-pool
// bound (Options.Parallelism; 0 means GOMAXPROCS, 1 is sequential).
// Each instance is queried independently — the embarrassingly parallel
// step of Definition 5 — and the per-instance answer sets are merged by
// counting, which is commutative: the output is byte-identical at every
// parallelism level.
func IntersectAnswersOpt(insts []*relation.Instance, q foquery.Formula, vars []string, opt Options) ([]relation.Tuple, error) {
	if len(insts) == 0 {
		return nil, nil
	}
	perInst, err := parallel.MapErr(len(insts), parallel.Workers(opt.Parallelism), func(i int) ([]relation.Tuple, error) {
		return foquery.Answers(insts[i], q, vars)
	})
	if err != nil {
		return nil, err
	}
	// Counting merge over a single map: a tuple is in the intersection
	// iff it appears in instance 0 and then in every later instance. A
	// candidate's count reaches i exactly when instances 0..i-1 all
	// contained it, so incrementing only on count == i both advances
	// survivors and absorbs duplicate answers within one instance — no
	// per-instance seen map needed.
	type cand struct {
		tup   relation.Tuple
		count int
	}
	cands := make(map[string]cand)
	for _, t := range perInst[0] {
		k := t.Key()
		if _, ok := cands[k]; !ok {
			cands[k] = cand{tup: t, count: 1}
		}
	}
	for i := 1; i < len(perInst); i++ {
		for _, t := range perInst[i] {
			k := t.Key()
			if c, ok := cands[k]; ok && c.count == i {
				c.count = i + 1
				cands[k] = c
			}
		}
	}
	var out []relation.Tuple
	for _, c := range cands {
		if c.count == len(insts) {
			out = append(out, c.tup)
		}
	}
	sortTuples(out)
	return out, nil
}

func sortTuples(ts []relation.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Key() < ts[j].Key() })
}
