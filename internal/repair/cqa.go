package repair

import (
	"sort"

	"repro/internal/constraint"
	"repro/internal/foquery"
	"repro/internal/parallel"
	"repro/internal/relation"
)

// ConsistentAnswers computes the consistent answers to a query in the
// sense of [Arenas, Bertossi, Chomicki, PODS 99]: the tuples returned
// by the query in every repair of the instance. This is the
// single-database CQA baseline against which the paper contrasts peer
// consistent answers (Section 2). Query evaluation over the repairs is
// fanned out across Options.Parallelism workers; the intersection is
// order-independent, so the result does not depend on the degree of
// parallelism.
func ConsistentAnswers(inst *relation.Instance, deps []*constraint.Dependency, q foquery.Formula, vars []string, opt Options) ([]relation.Tuple, error) {
	reps, err := Repairs(inst, deps, opt)
	if err != nil && err != ErrBound {
		return nil, err
	}
	boundErr := err
	ans, err := IntersectAnswersOpt(reps, q, vars, opt)
	if err != nil {
		return nil, err
	}
	return ans, boundErr
}

// IntersectAnswers evaluates the query on each instance and returns
// the tuples present in all of them, sorted. With no instances it
// returns nil (no solutions: every tuple vacuously qualifies is the
// other convention; we follow the paper's practice of reporting
// "no solutions" separately). Evaluation uses the default worker pool
// (GOMAXPROCS); use IntersectAnswersOpt to bound it.
func IntersectAnswers(insts []*relation.Instance, q foquery.Formula, vars []string) ([]relation.Tuple, error) {
	return IntersectAnswersOpt(insts, q, vars, Options{})
}

// IntersectAnswersOpt is IntersectAnswers with an explicit worker-pool
// bound (Options.Parallelism; 0 means GOMAXPROCS, 1 is sequential).
// Each instance is queried independently — the embarrassingly parallel
// step of Definition 5 — and the per-instance answer sets are merged by
// counting, which is commutative: the output is byte-identical at every
// parallelism level.
func IntersectAnswersOpt(insts []*relation.Instance, q foquery.Formula, vars []string, opt Options) ([]relation.Tuple, error) {
	if len(insts) == 0 {
		return nil, nil
	}
	perInst, err := parallel.MapErr(len(insts), parallel.Workers(opt.Parallelism), func(i int) ([]relation.Tuple, error) {
		return foquery.Answers(insts[i], q, vars)
	})
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int)
	tuples := make(map[string]relation.Tuple)
	for _, ans := range perInst {
		seen := make(map[string]bool)
		for _, t := range ans {
			k := t.Key()
			if !seen[k] {
				seen[k] = true
				counts[k]++
				tuples[k] = t
			}
		}
	}
	var out []relation.Tuple
	for k, c := range counts {
		if c == len(insts) {
			out = append(out, tuples[k])
		}
	}
	sortTuples(out)
	return out, nil
}

func sortTuples(ts []relation.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Key() < ts[j].Key() })
}
