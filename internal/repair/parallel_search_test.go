package repair

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bitset"
	"repro/internal/constraint"
	"repro/internal/relation"
	"repro/internal/symtab"
)

// repairFingerprint renders a Repairs result (including its error) for
// byte-level comparison across parallelism levels.
func repairFingerprint(t *testing.T, in *relation.Instance, deps []*constraint.Dependency, opt Options) string {
	t.Helper()
	reps, err := Repairs(in, deps, opt)
	s := fmt.Sprintf("err=%v\n", err)
	for _, r := range reps {
		s += r.Key() + "\n"
	}
	return s
}

// TestDeterminismParallelSearchFixed sweeps hand-built systems —
// including ones that exercise MaxRepairs, MaxDelta/ErrBound and
// insertion cascades — across parallelism levels.
func TestDeterminismParallelSearchFixed(t *testing.T) {
	cases := []struct {
		name string
		inst map[string][]relation.Tuple
		deps []*constraint.Dependency
		opt  Options
	}{
		{
			"two independent FD conflicts",
			map[string][]relation.Tuple{"r1": {{"a", "b"}, {"a", "c"}, {"x", "y"}, {"x", "z"}}},
			[]*constraint.Dependency{constraint.FD("fd", "r1")},
			Options{},
		},
		{
			"import chain plus EGD",
			map[string][]relation.Tuple{
				"r1": {{"a", "b"}}, "r2": {{"c", "d"}, {"e", "f"}}, "r3": {{"a", "g"}},
			},
			[]*constraint.Dependency{
				constraint.Inclusion("inc", "r2", "r1", 2),
				constraint.KeyEGD("egd", "r1", "r3"),
			},
			Options{Fixed: map[string]bool{"r2": true, "r3": true}},
		},
		{
			"max repairs cut",
			map[string][]relation.Tuple{"r1": {{"a", "b"}, {"a", "c"}, {"x", "y"}, {"x", "z"}}},
			[]*constraint.Dependency{constraint.FD("fd", "r1")},
			Options{MaxRepairs: 2},
		},
		{
			"delta bound reported",
			map[string][]relation.Tuple{"r2": {{"c", "d"}}},
			[]*constraint.Dependency{constraint.Inclusion("inc", "r2", "r1", 2)},
			Options{MaxDelta: -1},
		},
		{
			"referential witness insertion",
			map[string][]relation.Tuple{
				"r1": {{"a", "b"}}, "s1": {{"c", "b"}}, "s2": {{"c", "e"}, {"c", "f"}},
			},
			[]*constraint.Dependency{constraint.Referential("dec3", "r1", "s1", "r2", "s2")},
			Options{Fixed: map[string]bool{"s1": true, "s2": true}},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			build := func() *relation.Instance { return mkInst(tc.inst) }
			opt := tc.opt
			opt.Parallelism = 1
			want := repairFingerprint(t, build(), tc.deps, opt)
			for _, par := range []int{2, 4, 8} {
				opt.Parallelism = par
				got := repairFingerprint(t, build(), tc.deps, opt)
				if got != want {
					t.Fatalf("parallelism=%d diverges:\n--- seq ---\n%s--- par ---\n%s", par, want, got)
				}
			}
		})
	}
}

// TestDeterminismParallelSearchRandom cross-checks random instances
// (the same generator the repair property tests use) across levels.
func TestDeterminismParallelSearchRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dom := []string{"a", "b", "c"}
	deps := []*constraint.Dependency{
		constraint.FD("fd_r", "r"),
		constraint.Inclusion("inc", "q", "r", 2),
		constraint.KeyEGD("egd", "r", "s"),
	}
	for trial := 0; trial < 60; trial++ {
		in := randomInstance(rng, []string{"r", "q", "s"}, 3, dom)
		fixed := map[string]bool{"q": true}
		want := repairFingerprint(t, in, deps, Options{Fixed: fixed, Parallelism: 1})
		for _, par := range []int{2, 8} {
			got := repairFingerprint(t, in, deps, Options{Fixed: fixed, Parallelism: par})
			if got != want {
				t.Fatalf("trial %d parallelism=%d diverges:\n--- seq ---\n%s--- par ---\n%s\ninput %v",
					trial, par, want, got, in)
			}
		}
	}
}

// TestChildDeltaMatchesSymDiff checks the incremental XOR delta
// derivation against a full SymDiff recomputation: applying any action
// sequence, the searcher's derived delta must name exactly the facts
// of orig Δ cur.
func TestChildDeltaMatchesSymDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dom := []string{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		orig := randomInstance(rng, []string{"r", "s"}, 3, dom)
		s := &searcher{orig: orig, facts: symtab.New()}
		sc := s.getScratch()
		cur := orig.Clone()
		var delta bitset.Set
		deltaN := 0
		for step := 0; step < 5; step++ {
			f := relation.Fact{Rel: []string{"r", "s"}[rng.Intn(2)],
				Tuple: relation.Tuple{dom[rng.Intn(len(dom))], dom[rng.Intn(len(dom))]}}
			var a action
			if cur.Has(f.Rel, f.Tuple) {
				a = action{deletes: []relation.Fact{f}}
			} else {
				a = action{inserts: []relation.Fact{f}}
			}
			delta, deltaN = s.childDelta(delta, a, sc)
			a.apply(cur)

			want := relation.SymDiff(orig, cur)
			wantKeys := make([]string, len(want))
			for i, wf := range want {
				wantKeys[i] = wf.IDKey()
			}
			sort.Strings(wantKeys)
			gotKeys := make([]string, 0, deltaN)
			delta.ForEach(func(id uint32) {
				gotKeys = append(gotKeys, s.facts.Name(symtab.Sym(id)))
			})
			sort.Strings(gotKeys)
			if deltaN != len(wantKeys) {
				t.Fatalf("trial %d step %d: deltaN %d, SymDiff size %d", trial, step, deltaN, len(wantKeys))
			}
			if fmt.Sprint(gotKeys) != fmt.Sprint(wantKeys) {
				t.Fatalf("trial %d step %d: delta %v, SymDiff %v", trial, step, gotKeys, wantKeys)
			}
		}
	}
}
