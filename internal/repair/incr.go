// Incremental re-answering under write traffic: the delta-driven
// counterpart of the conflict-localized engine (localize.go). An
// IncrState keeps, across a series of fact-level deltas to one evolving
// instance, the per-dependency violation lists, the full-TGD witness
// facts and a cache of solved conflict components. On a delta it
// re-checks only the dependencies whose predicates the delta touches
// (constraint.DepIndex.Affected), rebuilds the component partition from
// the refreshed violation lists, re-runs the wave search only for the
// components the delta could have influenced, and re-answers the query
// from the patched component repairs — untouched components' repair
// deltas are reused verbatim.
//
// Reusing a cached component is sound when the delta is disjoint from
// the component's read set: every predicate whose content the
// component's search could have consulted. The search mutates only the
// component's touchable facts and its cascade closure (violationInfos);
// re-checking any dependency intersecting those mutable predicates
// reads all of that dependency's predicates (fixed ones included). With
// the read set untouched, a fresh search would see the identical
// violation lists at every state and generate the identical repair
// deltas, and the deltas still apply: their facts live on read-set
// predicates, so their membership status is unchanged too.
//
// The exactness discipline mirrors localize.go: bounded searches
// (hitBound), deltas that could sum past Options.MaxDelta, queries
// whose predicates span two components, and non-domain-free queries
// all report ok=false, and the caller falls back to the byte-identical
// full recompute.
package repair

import (
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/constraint"
	"repro/internal/foquery"
	"repro/internal/parallel"
	"repro/internal/relation"
	"repro/internal/symtab"
)

// IncrState is the persistent incremental-answering state for one
// (dependency set, fixed set) repair problem over one evolving
// instance. It is not safe for concurrent use; callers serialize
// Answers per state (peernet holds one state per cached query series).
type IncrState struct {
	deps   []*constraint.Dependency
	fixed  map[string]bool
	depIdx *constraint.DepIndex
	// facts interns fact keys persistently, so cached component deltas
	// from earlier calls stay comparable with freshly searched ones.
	facts *symtab.Table

	// Structural interaction maps (instance-independent).
	exHeadDeps map[string][]int
	bodyPreds  map[string]bool
	fullTGDs   []int

	// Per-dependency dynamic state, refreshed only for the delta's
	// affected dependencies.
	seeded       bool
	vios         [][]constraint.Violation
	witnessFacts [][]string

	// cache maps a component's sorted violation-key join to its solved
	// repairs; entries are purged as soon as a delta touches their read
	// set. Only exhaustively searched (non-hitBound) components are
	// cached: their repair sets are valid under any MaxDelta.
	cache map[string]*incrComp
}

// incrComp is one solved conflict component.
type incrComp struct {
	deltas     []bitset.Set
	deltaPreds map[string]bool
	readPreds  map[string]bool
	maxDelta   int
}

// NewIncrState prepares incremental answering for a dependency set and
// fixed-predicate set. ok is false when the problem shape is not
// incrementalizable under the localization discipline (duplicate
// dependency entries, a domain-dependent dependency, or an invalid
// dependency — the full engine then reports errors canonically).
func NewIncrState(deps []*constraint.Dependency, fixed map[string]bool) (*IncrState, bool) {
	seen := map[*constraint.Dependency]bool{}
	for _, d := range deps {
		if err := d.Validate(); err != nil {
			return nil, false
		}
		if seen[d] {
			return nil, false
		}
		seen[d] = true
		if domainDependentDep(d, fixed) {
			return nil, false
		}
	}
	st := &IncrState{
		deps:       deps,
		fixed:      fixed,
		depIdx:     constraint.NewDepIndex(deps),
		facts:      symtab.New(),
		exHeadDeps: map[string][]int{},
		bodyPreds:  map[string]bool{},
		cache:      map[string]*incrComp{},
	}
	for i, d := range deps {
		for _, a := range d.Body {
			st.bodyPreds[a.Pred] = true
		}
		if !d.IsTGD() {
			continue
		}
		if len(d.ExVars) > 0 {
			for _, h := range d.Head {
				st.exHeadDeps[h.Pred] = append(st.exHeadDeps[h.Pred], i)
			}
			continue
		}
		st.fullTGDs = append(st.fullTGDs, i)
	}
	return st, true
}

// reset drops all dynamic state, forcing the next Answers call to
// rebuild from scratch (error recovery).
func (st *IncrState) reset() {
	st.seeded = false
	st.vios = nil
	st.witnessFacts = nil
	st.cache = map[string]*incrComp{}
}

// Answers computes the consistent answers of q over the repairs of inst
// w.r.t. the state's dependencies, reusing component repairs cached
// from earlier calls. changed lists the predicates whose content may
// have differed since the previous call (ignored on the first call);
// every delta to the instance must be reported through exactly one
// Answers call. noRepairs reports the no-repairs outcome (the caller
// maps it to its no-solutions convention). ok is false when an
// exactness gate fails and the caller must fall back to the full
// recompute; the state stays consistent with inst either way.
func (st *IncrState) Answers(inst *relation.Instance, changed []string, q foquery.Formula, vars []string, opt Options) (ans []relation.Tuple, noRepairs bool, ok bool, err error) {
	if opt.NoLocalize || opt.MaxRepairs > 0 || !domainFreeQuery(q) {
		return nil, false, false, nil
	}
	maxDelta := opt.MaxDelta
	if maxDelta == 0 {
		maxDelta = inst.Size() + 64
	}

	// Refresh the per-dependency state: everything on the first call,
	// only the affected dependencies afterwards.
	var affected []int
	if !st.seeded {
		st.vios = make([][]constraint.Violation, len(st.deps))
		st.witnessFacts = make([][]string, len(st.deps))
		affected = make([]int, len(st.deps))
		for i := range affected {
			affected[i] = i
		}
	} else {
		affected = st.depIdx.Affected(changed)
	}
	isFullTGD := func(i int) bool {
		d := st.deps[i]
		return d.IsTGD() && len(d.ExVars) == 0
	}
	for _, i := range affected {
		vs, verr := st.deps[i].Violations(inst)
		if verr != nil {
			st.reset()
			return nil, false, false, nil
		}
		st.vios[i] = vs
		if isFullTGD(i) {
			st.witnessFacts[i] = fullTGDHeadFacts(inst, st.deps[i])
		}
	}
	st.seeded = true

	// Purge every cached component the delta could have influenced;
	// the survivors' reuse is sound (see the package comment).
	for key, c := range st.cache {
		if mapIntersectsSlice(c.readPreds, changed) {
			delete(st.cache, key)
		}
	}

	var vios []constraint.Violation
	for _, vs := range st.vios {
		vios = append(vios, vs...)
	}
	if len(vios) == 0 {
		// The instance is consistent: it is its own unique repair.
		ans, err = IntersectAnswersOpt([]*relation.Instance{inst}, q, vars, opt)
		return ans, false, true, err
	}

	ctx := &depInteraction{
		witnessDeps: map[string][]int{},
		exHeadDeps:  st.exHeadDeps,
		bodyPreds:   st.bodyPreds,
	}
	for _, i := range st.fullTGDs {
		for _, g := range st.witnessFacts[i] {
			ctx.witnessDeps[g] = append(ctx.witnessDeps[g], i)
		}
	}
	infos := violationInfosWith(inst, st.deps, vios, st.fixed, ctx)
	comps := buildComponentsFrom(vios, infos)

	keys := make([]string, len(comps))
	resolved := make([]*incrComp, len(comps))
	var searchIdx []int
	for ci, g := range comps {
		ks := make([]string, len(g))
		for i, vi := range g {
			ks[i] = vios[vi].Key()
		}
		sort.Strings(ks)
		keys[ci] = strings.Join(ks, "\x1d")
		if c, hit := st.cache[keys[ci]]; hit {
			resolved[ci] = c
		} else {
			searchIdx = append(searchIdx, ci)
		}
	}

	// Search the unresolved components, mirroring tryLocalize: one
	// sequential wave search per component with the other components'
	// root violations frozen, fanned out across the worker pool.
	depOf := map[*constraint.Dependency]int{}
	for i, d := range st.deps {
		depOf[d] = i
	}
	searchers, serr := parallel.MapErr(len(searchIdx), parallel.Workers(opt.Parallelism), func(k int) (*searcher, error) {
		ci := searchIdx[k]
		innerOpt := opt
		innerOpt.Parallelism = 1
		innerOpt.Fixed = st.fixed
		innerOpt.MaxDelta = maxDelta
		s := &searcher{orig: inst, deps: st.deps, opt: innerOpt, facts: st.facts, front: newFrontier(), depIdx: st.depIdx}
		s.front.noSubsume = true
		s.skip = make([]map[string]bool, len(st.deps))
		s.rootVios = make([][]constraint.Violation, len(st.deps))
		mine := map[int]bool{}
		for _, vi := range comps[ci] {
			mine[vi] = true
		}
		for vi, v := range vios {
			di := depOf[v.Dep]
			if mine[vi] {
				s.rootVios[di] = append(s.rootVios[di], v)
				continue
			}
			if s.skip[di] == nil {
				s.skip[di] = map[string]bool{}
			}
			s.skip[di][v.Key()] = true
		}
		return s, s.run()
	})
	if serr != nil {
		st.reset()
		return nil, false, false, nil
	}
	hitBound := false
	for k, s := range searchers {
		ci := searchIdx[k]
		if s.hitBound {
			hitBound = true
			continue
		}
		_, kept := minimalByDelta(s.found, s.foundDelta)
		c := &incrComp{
			deltas:     make([]bitset.Set, len(kept)),
			deltaPreds: map[string]bool{},
			readPreds:  st.compReadPreds(comps[ci], vios, infos),
			maxDelta:   s.maxDeltaSeen,
		}
		for i, ki := range kept {
			c.deltas[i] = s.foundDelta[ki]
			s.foundDelta[ki].ForEach(func(id uint32) {
				c.deltaPreds[relation.ParseFactIDKey(st.facts.Name(symtab.Sym(id))).Rel] = true
			})
		}
		st.cache[keys[ci]] = c
		resolved[ci] = c
	}
	if hitBound {
		return nil, false, false, nil
	}

	// Bound exactness across all components, cached and fresh — the
	// same sum argument as localize.go, re-evaluated against the
	// current MaxDelta.
	sumMax := 0
	for _, c := range resolved {
		sumMax += c.maxDelta
	}
	if sumMax >= maxDelta {
		return nil, false, false, nil
	}

	for _, c := range resolved {
		if len(c.deltas) == 0 {
			return nil, true, true, nil
		}
	}

	var touched *incrComp
	for _, c := range resolved {
		for _, p := range foquery.Preds(q) {
			if c.deltaPreds[p] {
				if touched != nil && touched != c {
					return nil, false, false, nil // query spans two components
				}
				touched = c
			}
		}
	}
	if touched == nil {
		ans, err = IntersectAnswersOpt([]*relation.Instance{inst}, q, vars, opt)
		return ans, false, true, err
	}
	insts := make([]*relation.Instance, len(touched.deltas))
	for i, d := range touched.deltas {
		out := inst.Clone()
		st.applyDelta(out, d)
		insts[i] = out
	}
	ans, err = IntersectAnswersOpt(insts, q, vars, opt)
	return ans, false, true, err
}

// compReadPreds computes a component's read set: the predicates a
// fresh search of the component could consult. The search mutates only
// the component's touchable facts and cascade closure (both already
// closed under cascading, violationInfos); any dependency intersecting
// those mutable predicates is re-checked during the search, reading
// all of its predicates, and the component's own root dependencies are
// read unconditionally.
func (st *IncrState) compReadPreds(comp []int, vios []constraint.Violation, infos []vioInfo) map[string]bool {
	read := map[string]bool{}
	mut := map[string]bool{}
	for _, vi := range comp {
		for p := range vios[vi].Dep.Preds() {
			read[p] = true
		}
		for p := range infos[vi].factPreds {
			mut[p] = true
		}
		for p := range infos[vi].predSet {
			mut[p] = true
		}
	}
	for _, d := range st.deps {
		preds := d.Preds()
		if intersects(preds, mut) {
			for p := range preds {
				read[p] = true
			}
		}
	}
	for p := range mut {
		read[p] = true
	}
	return read
}

// applyDelta toggles every fact of a repair delta on the instance
// (symmetric-difference application, as localPlan.applyDelta).
func (st *IncrState) applyDelta(in *relation.Instance, delta bitset.Set) {
	delta.ForEach(func(id uint32) {
		f := relation.ParseFactIDKey(st.facts.Name(symtab.Sym(id)))
		if in.Has(f.Rel, f.Tuple) {
			in.Delete(f.Rel, f.Tuple)
		} else {
			in.Insert(f.Rel, f.Tuple)
		}
	})
}

// CachedComponents reports the number of solved components currently
// cached (observability for tests and the serving plane).
func (st *IncrState) CachedComponents() int { return len(st.cache) }

// DomainFreeQuery reports whether the query is in the domain-free
// fragment (atoms, conjunction, disjunction) that Answers can serve;
// callers can test it before building incremental state, since any
// other shape makes every Answers call fall back.
func DomainFreeQuery(q foquery.Formula) bool { return domainFreeQuery(q) }

func mapIntersectsSlice(m map[string]bool, preds []string) bool {
	for _, p := range preds {
		if m[p] {
			return true
		}
	}
	return false
}
