package repair

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/constraint"
	"repro/internal/foquery"
	"repro/internal/relation"
	"repro/internal/term"
)

// scatteredMultiRelInstance builds k independent FD conflicts, each on
// its own relation r0..r{k-1}, plus clean facts per relation — the
// shape whose components are pairwise predicate-disjoint (so a query
// over one relation observes exactly one component).
func scatteredMultiRelInstance(k, clean int) (*relation.Instance, []*constraint.Dependency) {
	in := relation.NewInstance()
	deps := make([]*constraint.Dependency, 0, k)
	for i := 0; i < k; i++ {
		rel := fmt.Sprintf("r%d", i)
		deps = append(deps, constraint.FD(fmt.Sprintf("fd%d", i), rel))
		for j := 0; j < clean; j++ {
			in.Insert(rel, relation.Tuple{fmt.Sprintf("k%d_%d", i, j), "v"})
		}
		in.Insert(rel, relation.Tuple{fmt.Sprintf("c%d", i), "u"})
		in.Insert(rel, relation.Tuple{fmt.Sprintf("c%d", i), "w"})
	}
	return in, deps
}

func mustParse(t *testing.T, q string) foquery.Formula {
	t.Helper()
	f, err := foquery.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// requireIncrMatchesFull asserts the incremental answer equals the
// full ConsistentAnswers recompute, byte for byte.
func requireIncrMatchesFull(t *testing.T, st *IncrState, inst *relation.Instance, changed []string, deps []*constraint.Dependency, q foquery.Formula, vars []string, opt Options) {
	t.Helper()
	got, noRepairs, ok, err := st.Answers(inst, changed, q, vars, opt)
	if !ok {
		t.Fatalf("incremental path fell back (changed=%v)", changed)
	}
	if err != nil {
		t.Fatal(err)
	}
	if noRepairs {
		t.Fatalf("unexpected noRepairs outcome (changed=%v)", changed)
	}
	want, werr := ConsistentAnswers(inst.Clone(), deps, q, vars, opt)
	if werr != nil {
		t.Fatal(werr)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental answers diverge (changed=%v):\nincr %v\nfull %v", changed, got, want)
	}
}

func TestIncrAnswersMatchesFullAcrossDeltas(t *testing.T) {
	const k = 4
	inst, deps := scatteredMultiRelInstance(k, 3)
	st, ok := NewIncrState(deps, map[string]bool{})
	if !ok {
		t.Fatal("NewIncrState refused an FD problem")
	}
	q := mustParse(t, "r0(X,Y)")
	vars := []string{"X", "Y"}
	opt := Options{}

	// Cold call seeds every component.
	requireIncrMatchesFull(t, st, inst, nil, deps, q, vars, opt)
	if got := st.CachedComponents(); got != k {
		t.Fatalf("cached components = %d, want %d", got, k)
	}

	// Delta 1: fresh clean fact in an untouched relation — only r2's
	// component is re-searched, the rest are reused.
	inst.Insert("r2", relation.Tuple{"fresh0", "v"})
	requireIncrMatchesFull(t, st, inst, []string{"r2"}, deps, q, vars, opt)

	// Delta 2: a write that creates a brand-new conflict in r3.
	inst.Insert("r3", relation.Tuple{"c3", "x"})
	requireIncrMatchesFull(t, st, inst, []string{"r3"}, deps, q, vars, opt)

	// Delta 3: resolve r1's conflict by deleting one side.
	inst.Delete("r1", relation.Tuple{"c1", "w"})
	requireIncrMatchesFull(t, st, inst, []string{"r1"}, deps, q, vars, opt)

	// Delta 4: a write into the queried relation itself.
	inst.Insert("r0", relation.Tuple{"freshq", "v"})
	requireIncrMatchesFull(t, st, inst, []string{"r0"}, deps, q, vars, opt)

	// Delta 5: empty delta — everything served from the component cache.
	requireIncrMatchesFull(t, st, inst, nil, deps, q, vars, opt)
}

func TestIncrConsistentInstance(t *testing.T) {
	inst, deps := scatteredMultiRelInstance(2, 2)
	// Resolve both conflicts up front: zero violations, the instance is
	// its own unique repair.
	inst.Delete("r0", relation.Tuple{"c0", "w"})
	inst.Delete("r1", relation.Tuple{"c1", "w"})
	st, _ := NewIncrState(deps, map[string]bool{})
	q := mustParse(t, "r0(X,Y)")
	vars := []string{"X", "Y"}

	got, noRepairs, ok, err := st.Answers(inst, nil, q, vars, Options{})
	if !ok || err != nil || noRepairs {
		t.Fatalf("consistent instance: ok=%v err=%v noRepairs=%v", ok, err, noRepairs)
	}
	want, _ := ConsistentAnswers(inst.Clone(), deps, q, vars, Options{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("answers diverge:\nincr %v\nfull %v", got, want)
	}
}

func TestIncrNoRepairsOutcome(t *testing.T) {
	// A violated EGD whose relations are all fixed admits no repair.
	in := relation.NewInstance()
	in.Insert("a", relation.Tuple{"k", "u"})
	in.Insert("b", relation.Tuple{"k", "v"})
	deps := []*constraint.Dependency{constraint.KeyEGD("egd", "a", "b")}
	st, ok := NewIncrState(deps, map[string]bool{"a": true, "b": true})
	if !ok {
		t.Fatal("NewIncrState refused")
	}
	q := mustParse(t, "a(X,Y)")
	_, noRepairs, ok, err := st.Answers(in, nil, q, []string{"X", "Y"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || !noRepairs {
		t.Fatalf("want noRepairs=true ok=true, got noRepairs=%v ok=%v", noRepairs, ok)
	}
}

func TestIncrFallbackGates(t *testing.T) {
	inst, deps := scatteredMultiRelInstance(3, 2)
	vars := []string{"X", "Y"}
	single := mustParse(t, "r0(X,Y)")

	gates := []struct {
		name string
		q    foquery.Formula
		opt  Options
	}{
		{"no-localize", single, Options{NoLocalize: true}},
		{"max-repairs", single, Options{MaxRepairs: 5}},
		{"non-domain-free", mustParse(t, "r0(X,Y) & !r1(X,Y)"), Options{}},
		{"query-spans-two-components", mustParse(t, "r0(X,Y) | r1(X,Y)"), Options{}},
		{"max-delta-sum", single, Options{MaxDelta: 2}},
	}
	for _, g := range gates {
		st, ok := NewIncrState(deps, map[string]bool{})
		if !ok {
			t.Fatal("NewIncrState refused")
		}
		if _, _, ok, _ := st.Answers(inst, nil, g.q, vars, g.opt); ok {
			t.Fatalf("%s: gate did not force a fallback", g.name)
		}
		// The state must stay usable: a subsequent plain call succeeds
		// and matches the full recompute.
		requireIncrMatchesFull(t, st, inst, nil, deps, single, vars, Options{})
	}
}

func TestIncrStateRejectsBadShapes(t *testing.T) {
	d := constraint.FD("fd", "r0")
	if _, ok := NewIncrState([]*constraint.Dependency{d, d}, nil); ok {
		t.Fatal("duplicate dependency pointers must be rejected")
	}
}

// TestNewIncrStateRefusals pins the constructor's gates: duplicate
// dependency entries, invalid dependencies, and domain-dependent
// existential TGDs are refused; fixing the existential head makes the
// same dependency acceptable.
func TestNewIncrStateRefusals(t *testing.T) {
	fd := constraint.FD("fd", "r0")
	if _, ok := NewIncrState([]*constraint.Dependency{fd, fd}, map[string]bool{}); ok {
		t.Fatal("duplicate dependency entry accepted")
	}
	bad := &constraint.Dependency{Name: "bad"}
	if _, ok := NewIncrState([]*constraint.Dependency{bad}, map[string]bool{}); ok {
		t.Fatal("invalid (empty-body) dependency accepted")
	}
	ref := &constraint.Dependency{
		Name:   "ref",
		Body:   []term.Atom{term.NewAtom("r0", term.V("X"), term.V("Y"))},
		Head:   []term.Atom{term.NewAtom("s0", term.V("X"), term.V("W"))},
		ExVars: []string{"W"},
	}
	if _, ok := NewIncrState([]*constraint.Dependency{ref}, map[string]bool{}); ok {
		t.Fatal("domain-dependent existential TGD accepted")
	}
	if _, ok := NewIncrState([]*constraint.Dependency{ref}, map[string]bool{"s0": true}); !ok {
		t.Fatal("existential TGD with fixed head refused")
	}
}

// TestDomainFreeQuery pins the exported fragment test: atoms under
// conjunction and disjunction qualify; negation and quantifiers do not.
func TestDomainFreeQuery(t *testing.T) {
	for _, c := range []struct {
		q    string
		want bool
	}{
		{"r0(X,Y)", true},
		{"r0(X,Y) & r1(X,Y)", true},
		{"r0(X,Y) | r1(X,Y)", true},
		{"!r0(X,Y)", false},
		{"exists Y (r0(X,Y))", false},
		{"r0(X,Y) & !r1(X,Y)", false},
	} {
		if got := DomainFreeQuery(mustParse(t, c.q)); got != c.want {
			t.Errorf("DomainFreeQuery(%q) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestIncrStateResetRecovers: reset drops all dynamic state (the error
// recovery path), and the next Answers call rebuilds from scratch with
// answers still matching the full recompute.
func TestIncrStateResetRecovers(t *testing.T) {
	inst, deps := scatteredMultiRelInstance(3, 2)
	st, ok := NewIncrState(deps, map[string]bool{})
	if !ok {
		t.Fatal("NewIncrState refused an FD problem")
	}
	q := mustParse(t, "r1(X,Y)")
	vars := []string{"X", "Y"}
	requireIncrMatchesFull(t, st, inst, nil, deps, q, vars, Options{})
	if st.CachedComponents() == 0 {
		t.Fatal("no components cached after a seeded answer")
	}
	st.reset()
	if st.CachedComponents() != 0 {
		t.Fatalf("reset left %d cached components", st.CachedComponents())
	}
	requireIncrMatchesFull(t, st, inst, nil, deps, q, vars, Options{})
	if st.CachedComponents() == 0 {
		t.Fatal("no components re-cached after reset")
	}
}
