package repair

import (
	"fmt"
	"testing"

	"repro/internal/bitset"
	"repro/internal/constraint"
	"repro/internal/relation"
	"repro/internal/symtab"
)

// TestMinimalByDeltaLargeCandidateSet exercises the bitset subset
// filter with well over 100 candidates: 120 singleton deltas (all
// minimal), 120 dominated two-element deltas, and duplicates of the
// singletons. Only the 120 distinct singletons may survive.
func TestMinimalByDeltaLargeCandidateSet(t *testing.T) {
	tab := symtab.New()
	id := func(i int) symtab.Sym { return tab.Intern(fmt.Sprintf("f%03d", i)) }

	var insts []*relation.Instance
	var deltas []bitset.Set
	mk := func(delta ...symtab.Sym) {
		in := relation.NewInstance()
		in.Insert("r", relation.Tuple{fmt.Sprintf("row%d", len(insts))})
		insts = append(insts, in)
		deltas = append(deltas, syms(delta...))
	}
	const n = 120
	for i := 0; i < n; i++ {
		mk(id(i)) // minimal
	}
	for i := 0; i < n; i++ {
		mk(id(i), id(n+i)) // {i, n+i} ⊇ {i}: dominated
	}
	for i := 0; i < n; i++ {
		mk(id(i)) // duplicate of a minimal delta: deduplicated
	}

	min, _ := minimalByDelta(insts, deltas)
	if len(min) != n {
		t.Fatalf("minimalByDelta kept %d candidates, want %d", len(min), n)
	}
	// The survivors must be exactly the first n instances (the
	// singleton-delta ones, in their sorted-by-size stable order).
	seen := map[*relation.Instance]bool{}
	for _, m := range min {
		seen[m] = true
	}
	for i := 0; i < n; i++ {
		if !seen[insts[i]] {
			t.Fatalf("minimal candidate %d was dropped", i)
		}
	}
}

// TestRepairsManyCandidates is the end-to-end regression for the
// sorted-ID minimality filter: 7 independent FD violations yield 2^7 =
// 128 candidate repairs (all minimal), comfortably past the 100-repair
// mark where the seed's string-keyed quadratic filter dominated. Every
// repair must be consistent and at distance exactly 7.
func TestRepairsManyCandidates(t *testing.T) {
	in := relation.NewInstance()
	const keys = 7
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%d", i)
		in.Insert("r", relation.Tuple{k, "a"})
		in.Insert("r", relation.Tuple{k, "b"})
	}
	deps := []*constraint.Dependency{constraint.FD("fd_r", "r")}

	reps, err := Repairs(in, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1<<keys {
		t.Fatalf("repairs = %d, want %d", len(reps), 1<<keys)
	}
	for _, r := range reps {
		ok, cerr := constraint.AllSatisfied(r, deps)
		if cerr != nil {
			t.Fatal(cerr)
		}
		if !ok {
			t.Fatalf("inconsistent repair %s", r)
		}
		if d := relation.SymDiff(in, r); len(d) != keys {
			t.Fatalf("repair at distance %d, want %d: %s", len(d), keys, r)
		}
	}
}
