// Package repair enumerates the minimal repairs of Definition 1 of the
// paper: consistent instances at minimal symmetric-difference distance
// from a given instance, with a designated set of predicates held
// fixed. It is both the consistent-query-answering baseline [Arenas,
// Bertossi, Chomicki, PODS 99] and the building block of the two-stage
// peer solutions of Definition 4 (implemented in internal/core).
//
// Repairs are searched by branching over the ways of fixing one
// violation at a time: deleting a mutable body atom, or (for
// tuple-generating dependencies) inserting the missing head atoms under
// a witness assignment. Witnesses for existential head variables are
// bound by matching head atoms on fixed predicates against the current
// instance, with active-domain enumeration for any remaining variables,
// which mirrors how the paper's choice-operator programs pick witnesses
// from the trusted peer's data (Section 3.1).
//
// The search runs in deterministic waves so it can fan out across a
// worker pool: each wave takes a fixed-size chunk of pending states,
// filters it through the frontier (visited + subsumption pruning, see
// frontier.go) in canonical order, expands the admitted states —
// violation check, action enumeration, child-delta derivation — on up
// to Options.Parallelism workers, and merges the results back in
// canonical order. Because admission and merging are sequential and the
// expansion of one state is a pure function of that state, the explored
// tree, the found repairs and the returned (minimal, sorted) repair set
// are byte-identical at every parallelism level.
package repair

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/constraint"
	"repro/internal/parallel"
	"repro/internal/relation"
	"repro/internal/symtab"
	"repro/internal/term"
)

// Options configures a repair search.
type Options struct {
	// Fixed lists the predicates that may not be inserted into or
	// deleted from (other peers' relations per Definition 4).
	Fixed map[string]bool
	// MaxDelta bounds the number of insert/delete actions along a
	// branch; 0 means a default derived from the instance size. The
	// search returns ErrBound if the bound prunes any branch, since the
	// result may then be incomplete.
	MaxDelta int
	// MaxRepairs stops the search after this many consistent instances
	// have been found (before minimality filtering); 0 means unlimited.
	MaxRepairs int
	// Parallelism bounds the worker pool used by the repair search's
	// wave expansion and by the parallel helpers built on the repair
	// engine (IntersectAnswers and the engines in internal/core). 0
	// means GOMAXPROCS; 1 forces sequential execution. The search
	// output is byte-identical at every level: pruning and result
	// merging happen on the coordinating goroutine in canonical order,
	// parallelism only spreads the per-state expansion work.
	Parallelism int
	// NoLocalize disables the conflict-localized engine (localize.go):
	// the search then always runs as one global wave search, the seed
	// behaviour. Localization is an optimization, applied only when it
	// is provably exact, so the two settings return byte-identical
	// results; the flag exists for A/B measurement and the equivalence
	// tests.
	NoLocalize bool
	// Stats, when non-nil, accumulates search counters (top-level
	// searches, localized engagements, conflict components) across
	// calls; see Stats. It never changes what is computed.
	Stats *Stats
}

// ErrBound reports that the search hit Options.MaxDelta and the set of
// repairs may be incomplete (e.g. cyclic DEC cascades).
var ErrBound = fmt.Errorf("repair: delta bound exceeded; repair set may be incomplete")

type searcher struct {
	orig *relation.Instance
	deps []*constraint.Dependency
	opt  Options
	// facts interns fact keys, so deltas are bitsets over dense fact
	// ids — xor/subset/popcount are word operations — and the visited
	// set is keyed by the packed delta bitset (which, given orig,
	// identifies the candidate instance) instead of the full instance
	// rendering. The table is concurrent, so expansion workers intern
	// action facts directly.
	facts      *symtab.Table
	front      *frontier
	found      []*relation.Instance
	foundDelta []bitset.Set
	hitBound   bool
	// scratch pools the per-expansion working buffers (action toggles,
	// touched-predicate lists, match trails), so steady-state wave
	// expansion stops churning the allocator.
	scratch sync.Pool
	// maxDeltaSeen is the largest delta size of any state the search
	// generated (admitted or not). The conflict-localized engine sums it
	// across components to prove the global engine could not have hit
	// Options.MaxDelta (see localize.go).
	maxDeltaSeen int

	// Component-search mode (nil on the global path): depIdx drives
	// incremental violation checking — after an action only the
	// dependencies whose predicates intersect the touched facts are
	// re-checked, against the violation lists carried on the node —
	// and skip hides the frozen root violations of the other conflict
	// components (keyed per dependency by Violation.Key).
	depIdx   *constraint.DepIndex
	skip     []map[string]bool
	rootVios [][]constraint.Violation
}

// node is one state of the search, identified by its fact-id delta
// bitset against the original instance (cur = orig Δ delta; deltaN
// caches the popcount). The instance itself is materialized lazily at
// expansion time from the parent's instance plus the action, so states
// rejected by the frontier never pay for a clone.
type node struct {
	delta  bitset.Set
	deltaN int
	parent *relation.Instance
	act    action
	root   bool
	// vios is the parent state's per-dependency violation lists
	// (component-search mode only, indexed like searcher.deps). The
	// expansion derives the node's own lists from them by re-checking
	// just the dependencies the action's predicates touch; unchanged
	// lists are shared, never copied.
	vios [][]constraint.Violation
}

// expansion is the outcome of expanding one admitted node.
type expansion struct {
	inst       *relation.Instance
	consistent bool
	atBound    bool
	children   []node
}

// waveChunk is the number of pending states one wave takes. It is a
// fixed constant — independent of Options.Parallelism — so the
// exploration order, and with it every pruning decision, is identical
// at every parallelism level. Chunks are taken from the tail of the
// pending stack, keeping the exploration depth-first-flavored (small
// consistent deltas are found early, which is what makes the
// subsumption pruning effective).
const waveChunk = 64

// Repairs returns the ≤r-minimal repairs of inst w.r.t. deps. The
// result is deterministic (sorted by canonical instance key) and
// byte-identical at every Options.Parallelism level. If inst is
// already consistent, it is its own unique repair.
func Repairs(inst *relation.Instance, deps []*constraint.Dependency, opt Options) ([]*relation.Instance, error) {
	for _, d := range deps {
		if err := d.Validate(); err != nil {
			return nil, err
		}
	}
	if opt.MaxDelta == 0 {
		opt.MaxDelta = inst.Size() + 64
	}
	if pl, ok := tryLocalize(inst, deps, opt); ok {
		opt.Stats.record(len(pl.comps))
		return pl.materialize(opt, true), nil
	}
	opt.Stats.record(-1)
	return globalRepairs(inst, deps, opt)
}

// globalRepairs is the single global wave search (the seed semantics)
// with the canonical sorted output order; the conflict-localized engine
// falls back to it whenever localization cannot be proven exact.
func globalRepairs(inst *relation.Instance, deps []*constraint.Dependency, opt Options) ([]*relation.Instance, error) {
	min, err := searchRepairs(inst, deps, opt)
	sortByKey(min, opt.Parallelism)
	return min, err
}

// searchRepairs runs the global wave search and returns the minimal
// repairs in discovery order, without the canonical sort. Answering
// paths use it directly: intersecting answers over the repair set is
// order-independent, and rendering the canonical key of every repair is
// the dominant cost at large-universe scale.
func searchRepairs(inst *relation.Instance, deps []*constraint.Dependency, opt Options) ([]*relation.Instance, error) {
	s := &searcher{orig: inst, deps: deps, opt: opt, facts: symtab.New(), front: newFrontier()}
	if err := s.run(); err != nil {
		return nil, err
	}
	min, _ := minimalByDelta(s.found, s.foundDelta)
	if s.hitBound {
		return min, ErrBound
	}
	return min, nil
}

// sortByKey sorts instances by their canonical key, rendering each key
// exactly once (Instance.Key walks the whole instance, so a comparator
// calling it directly would pay that walk O(n log n) times — the
// dominant cost of returning thousands of composed repairs). The
// renders fan out over the worker pool; the sort itself is sequential
// and deterministic.
func sortByKey(insts []*relation.Instance, parallelism int) {
	keys := make([]string, len(insts))
	parallel.Run(len(insts), parallel.Workers(parallelism), func(i int) {
		keys[i] = insts[i].Key()
	})
	order := make([]int, len(insts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	sorted := make([]*relation.Instance, len(insts))
	for i, j := range order {
		sorted[i] = insts[j]
	}
	copy(insts, sorted)
}

// run is the wave loop. Admission (frontier pruning) and merging run on
// the calling goroutine in canonical order; only the expansion of the
// admitted states of one wave fans out.
func (s *searcher) run() error {
	pending := []node{{root: true, vios: s.rootVios}}
	var admitted []node
	workers := parallel.Workers(s.opt.Parallelism)
	for len(pending) > 0 {
		if s.opt.MaxRepairs > 0 && len(s.found) >= s.opt.MaxRepairs {
			return nil
		}
		k := waveChunk
		if k > len(pending) {
			k = len(pending)
		}
		wave := pending[len(pending)-k:]
		pending = pending[:len(pending)-k]
		admitted = admitted[:0]
		for _, nd := range wave {
			if s.front.admit(nd.delta, nd.deltaN) {
				admitted = append(admitted, nd)
			}
		}
		if len(admitted) == 0 {
			continue
		}
		evals, err := parallel.MapErr(len(admitted), workers, func(i int) (expansion, error) {
			return s.expand(admitted[i])
		})
		if err != nil {
			return err
		}
		for i, ev := range evals {
			nd := admitted[i]
			switch {
			case ev.consistent:
				s.found = append(s.found, ev.inst)
				s.foundDelta = append(s.foundDelta, nd.delta)
				s.front.recordFound(nd.delta, nd.deltaN)
				if s.opt.MaxRepairs > 0 && len(s.found) >= s.opt.MaxRepairs {
					return nil
				}
			case ev.atBound:
				s.hitBound = true
			default:
				for _, c := range ev.children {
					if c.deltaN > s.maxDeltaSeen {
						s.maxDeltaSeen = c.deltaN
					}
				}
				pending = append(pending, ev.children...)
			}
		}
	}
	return nil
}

// expandScratch holds one expansion worker's reusable buffers. The
// searcher pools them (sync.Pool) so steady-state expansion allocates
// nodes and results, not working memory.
type expandScratch struct {
	toggles []symtab.Sym
	preds   []string
}

func (s *searcher) getScratch() *expandScratch {
	if sc, ok := s.scratch.Get().(*expandScratch); ok {
		return sc
	}
	return &expandScratch{}
}

// expand materializes a node's instance, checks it for violations and
// enumerates its children. It is a pure function of the node (the
// shared original instance and symbol table are only read or appended
// to concurrently-safely), so any number of expansions may run in
// parallel.
func (s *searcher) expand(nd node) (expansion, error) {
	sc := s.getScratch()
	defer s.scratch.Put(sc)
	var cur *relation.Instance
	if nd.root {
		cur = s.orig.Clone()
	} else {
		cur = nd.parent.Clone()
		nd.act.apply(cur)
	}
	var v *constraint.Violation
	var vios [][]constraint.Violation
	var err error
	if s.depIdx != nil {
		// Component mode: derive the node's violation lists from the
		// parent's by re-checking only the touched dependencies, then
		// pick the first remaining violation (dependency order, match
		// order — the order FirstViolation would use).
		vios = nd.vios
		if !nd.root {
			vios, err = s.recheck(nd.vios, nd.act, cur, sc)
			if err != nil {
				return expansion{}, err
			}
		}
		for i := range vios {
			if len(vios[i]) > 0 {
				v = &vios[i][0]
				break
			}
		}
	} else {
		v, err = constraint.FirstViolation(cur, s.deps)
		if err != nil {
			return expansion{}, err
		}
	}
	if v == nil {
		return expansion{inst: cur, consistent: true}, nil
	}
	if nd.deltaN >= s.opt.MaxDelta {
		return expansion{atBound: true}, nil
	}
	acts, err := s.actions(cur, v)
	if err != nil {
		return expansion{}, err
	}
	children := make([]node, 0, len(acts))
	for _, a := range acts {
		d, n := s.childDelta(nd.delta, a, sc)
		children = append(children, node{delta: d, deltaN: n, parent: cur, act: a, vios: vios})
	}
	return expansion{children: children}, nil
}

// recheck derives a state's per-dependency violation lists from its
// parent's after an action: a dependency's violations depend only on
// the facts of the predicates it mentions, so only the dependencies
// indexed under the action's touched predicates are recomputed (against
// the current instance, minus the frozen violations of the other
// conflict components); every other list is shared with the parent.
func (s *searcher) recheck(parent [][]constraint.Violation, act action, cur *relation.Instance, sc *expandScratch) ([][]constraint.Violation, error) {
	// Actions touch a handful of predicates; dedup by linear scan over
	// the pooled buffer instead of allocating a map per candidate.
	preds := sc.preds[:0]
	addPred := func(rel string) {
		for _, p := range preds {
			if p == rel {
				return
			}
		}
		preds = append(preds, rel)
	}
	for _, f := range act.deletes {
		addPred(f.Rel)
	}
	for _, f := range act.inserts {
		addPred(f.Rel)
	}
	sc.preds = preds
	out := make([][]constraint.Violation, len(parent))
	copy(out, parent)
	for _, i := range s.depIdx.Affected(preds) {
		vs, err := s.deps[i].Violations(cur)
		if err != nil {
			return nil, err
		}
		kept := vs[:0]
		for _, v := range vs {
			if !s.skip[i][v.Key()] {
				kept = append(kept, v)
			}
		}
		out[i] = kept
	}
	return out, nil
}

// childDelta derives a child state's fact-id delta bitset (and its
// popcount) from its parent's: every fact the action touches toggles
// its membership in the symmetric difference against the original
// instance (deletes remove earlier inserts or record new deletions,
// and vice versa), so no SymDiff over the full instance is needed per
// state.
func (s *searcher) childDelta(parent bitset.Set, a action, sc *expandScratch) (bitset.Set, int) {
	toggles := sc.toggles[:0]
	for _, f := range a.deletes {
		toggles = append(toggles, s.facts.Intern(f.IDKey()))
	}
	for _, f := range a.inserts {
		toggles = append(toggles, s.facts.Intern(f.IDKey()))
	}
	sort.Slice(toggles, func(i, j int) bool { return toggles[i] < toggles[j] })
	// An action may name the same fact twice (two head atoms grounding
	// to one missing fact); applying it still changes membership once,
	// so duplicates collapse to a single toggle (FlipAll would cancel
	// the pair).
	uniq := toggles[:0]
	for i, id := range toggles {
		if i == 0 || id != toggles[i-1] {
			uniq = append(uniq, id)
		}
	}
	sc.toggles = toggles
	d := bitset.FlipAll(parent, uniq)
	return d, d.Count()
}

// action is a set of simultaneous tuple changes fixing one violation.
type action struct {
	deletes []relation.Fact
	inserts []relation.Fact
}

func (a action) apply(in *relation.Instance) {
	for _, f := range a.deletes {
		in.Delete(f.Rel, f.Tuple)
	}
	for _, f := range a.inserts {
		in.Insert(f.Rel, f.Tuple)
	}
}

// actions enumerates the ways of fixing a violation: deleting any one
// mutable body atom, or inserting the missing head atoms under some
// witness assignment.
func (s *searcher) actions(cur *relation.Instance, v *constraint.Violation) ([]action, error) {
	var out []action
	d := v.Dep
	// Deletions of mutable body atoms.
	for _, ba := range d.Body {
		g := v.Subst.Apply(ba)
		if s.opt.Fixed[g.Pred] {
			continue
		}
		if !cur.HasAtom(g) {
			continue // duplicate body atom already handled
		}
		out = append(out, action{deletes: []relation.Fact{atomFact(g)}})
	}
	// Insertions (TGDs only). Witnesses for existential variables come
	// from matching head atoms on fixed predicates; leftover variables
	// range over the active domain.
	if d.IsTGD() {
		wits, err := s.witnesses(cur, d, v.Subst)
		if err != nil {
			return nil, err
		}
		for _, w := range wits {
			var ins []relation.Fact
			ok := true
			for _, ha := range d.Head {
				g := w.Apply(ha)
				if !g.IsGround() {
					ok = false
					break
				}
				if cur.HasAtom(g) {
					continue
				}
				if s.opt.Fixed[g.Pred] {
					ok = false // cannot create the witness on a fixed relation
					break
				}
				ins = append(ins, atomFact(g))
			}
			if ok && len(ins) > 0 {
				out = append(out, action{inserts: ins})
			}
		}
	}
	return out, nil
}

// witnesses enumerates assignments extending the body match over the
// dependency's existential variables such that all head equalities
// hold. Head atoms over fixed predicates must be matched against
// existing tuples (they cannot be created), binding their variables;
// remaining unbound existential variables enumerate the active domain.
// Backtracking runs on one substitution with a binding trail
// (term.MatchTrail/UnbindTrail) — only accepted witnesses are cloned —
// and the active domain is only rendered for dependencies that still
// have unbound existential variables after the fixed-atom join.
func (s *searcher) witnesses(cur *relation.Instance, d *constraint.Dependency, base term.Subst) ([]term.Subst, error) {
	// Order head atoms: fixed predicates first (they constrain).
	var fixedAtoms []term.Atom
	for _, ha := range d.Head {
		if s.opt.Fixed[ha.Pred] {
			fixedAtoms = append(fixedAtoms, ha)
		}
	}
	var dom []string
	domReady := false
	sub := base.Clone()
	var trail []string
	var argsBuf []term.Term
	var out []term.Subst
	var matchFixed func(i int) error
	matchFixed = func(i int) error {
		if i == len(fixedAtoms) {
			// Enumerate any still-unbound existential variables.
			var unbound []string
			for _, v := range d.ExVars {
				if sub.Lookup(term.V(v)).IsVar {
					unbound = append(unbound, v)
				}
			}
			if len(unbound) > 0 && !domReady {
				dom, domReady = cur.ActiveDomain(), true
			}
			var enum func(j int) error
			enum = func(j int) error {
				if j == len(unbound) {
					for _, c := range d.HeadEq {
						ok, err := c.Eval(sub)
						if err != nil {
							return err
						}
						if !ok {
							return nil
						}
					}
					out = append(out, sub.Clone())
					return nil
				}
				for _, c := range dom {
					sub[unbound[j]] = term.C(c)
					if err := enum(j + 1); err != nil {
						return err
					}
				}
				delete(sub, unbound[j])
				return nil
			}
			return enum(0)
		}
		// Indexed join: candidates for the fixed head atom come from the
		// per-column indexes instead of a full relation scan.
		pat := sub.Apply(fixedAtoms[i])
		fact := term.Atom{Pred: pat.Pred}
		for _, tup := range cur.MatchingTuples(pat) {
			mark := len(trail)
			argsBuf = term.ConstArgs(argsBuf[:0], tup)
			fact.Args = argsBuf
			if term.MatchTrail(pat, fact, sub, &trail) {
				if err := matchFixed(i + 1); err != nil {
					return err
				}
			}
			trail = term.UnbindTrail(sub, trail, mark)
		}
		return nil
	}
	if err := matchFixed(0); err != nil {
		return nil, err
	}
	return out, nil
}

// minimalByDelta filters instances whose delta (vs the original) is
// ⊆-minimal, returning the kept instances and the indices they were
// kept from. Deltas are fact-id bitsets: candidates are examined in
// ascending delta size (popcount), so each instance is only compared
// against the strictly smaller deltas before it and each comparison is
// a word-wise subset test instead of a string-keyed map probe — the
// seed's quadratic map-probing collapse point for large candidate sets.
func minimalByDelta(insts []*relation.Instance, deltas []bitset.Set) ([]*relation.Instance, []int) {
	order := make([]int, len(insts))
	counts := make([]int, len(insts))
	for i := range order {
		order[i] = i
		counts[i] = deltas[i].Count()
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] < counts[order[b]] })
	var out []*relation.Instance
	var kept []int
	seen := make(map[string]bool)
	var keyBuf []byte
	for oi, i := range order {
		minimal := true
		for _, j := range order[:oi] {
			if counts[j] < counts[i] && deltas[j].SubsetOf(deltas[i]) {
				minimal = false
				break
			}
		}
		if minimal {
			keyBuf = deltas[i].AppendKey(keyBuf[:0])
			k := string(keyBuf)
			if !seen[k] {
				seen[k] = true
				out = append(out, insts[i])
				kept = append(kept, i)
			}
		}
	}
	return out, kept
}

func atomFact(a term.Atom) relation.Fact {
	t := make(relation.Tuple, len(a.Args))
	for i, arg := range a.Args {
		t[i] = arg.Name
	}
	return relation.Fact{Rel: a.Pred, Tuple: t}
}
