// Package repair enumerates the minimal repairs of Definition 1 of the
// paper: consistent instances at minimal symmetric-difference distance
// from a given instance, with a designated set of predicates held
// fixed. It is both the consistent-query-answering baseline [Arenas,
// Bertossi, Chomicki, PODS 99] and the building block of the two-stage
// peer solutions of Definition 4 (implemented in internal/core).
//
// Repairs are searched by branching over the ways of fixing one
// violation at a time: deleting a mutable body atom, or (for
// tuple-generating dependencies) inserting the missing head atoms under
// a witness assignment. Witnesses for existential head variables are
// bound by matching head atoms on fixed predicates against the current
// instance, with active-domain enumeration for any remaining variables,
// which mirrors how the paper's choice-operator programs pick witnesses
// from the trusted peer's data (Section 3.1).
package repair

import (
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/relation"
	"repro/internal/symtab"
	"repro/internal/term"
)

// Options configures a repair search.
type Options struct {
	// Fixed lists the predicates that may not be inserted into or
	// deleted from (other peers' relations per Definition 4).
	Fixed map[string]bool
	// MaxDelta bounds the number of insert/delete actions along a
	// branch; 0 means a default derived from the instance size. The
	// search returns ErrBound if the bound prunes any branch, since the
	// result may then be incomplete.
	MaxDelta int
	// MaxRepairs stops the search after this many consistent instances
	// have been found (before minimality filtering); 0 means unlimited.
	MaxRepairs int
	// Parallelism bounds the worker pool used by the parallel helpers
	// built on the repair engine (IntersectAnswers and the engines in
	// internal/core). 0 means GOMAXPROCS; 1 forces sequential
	// execution. The repair search itself stays sequential — its
	// visited/subsumption pruning is inherently stateful — but every
	// per-repair evaluation downstream fans out.
	Parallelism int
}

// ErrBound reports that the search hit Options.MaxDelta and the set of
// repairs may be incomplete (e.g. cyclic DEC cascades).
var ErrBound = fmt.Errorf("repair: delta bound exceeded; repair set may be incomplete")

type searcher struct {
	orig *relation.Instance
	deps []*constraint.Dependency
	opt  Options
	// facts interns fact keys, so deltas are sorted id sets compared by
	// merge walks instead of string-keyed map probes, and the visited
	// set is keyed by the packed delta (which, given orig, identifies
	// the candidate instance) instead of the full instance rendering.
	facts      *symtab.Table
	visited    map[string]bool
	found      []*relation.Instance
	foundDelta [][]symtab.Sym
	hitBound   bool
}

// deltaIDs interns the symmetric difference orig Δ cur as a sorted id
// set.
func (s *searcher) deltaIDs(cur *relation.Instance) []symtab.Sym {
	return relation.DeltaIDs(s.facts, relation.SymDiff(s.orig, cur))
}

// Repairs returns the ≤r-minimal repairs of inst w.r.t. deps. The
// result is deterministic (sorted by canonical instance key). If inst
// is already consistent, it is its own unique repair.
func Repairs(inst *relation.Instance, deps []*constraint.Dependency, opt Options) ([]*relation.Instance, error) {
	for _, d := range deps {
		if err := d.Validate(); err != nil {
			return nil, err
		}
	}
	if opt.MaxDelta == 0 {
		opt.MaxDelta = inst.Size() + 64
	}
	s := &searcher{orig: inst, deps: deps, opt: opt, facts: symtab.New(), visited: make(map[string]bool)}
	if err := s.search(inst.Clone(), 0); err != nil {
		return nil, err
	}
	min := minimalByDelta(s.found, s.foundDelta)
	sort.Slice(min, func(i, j int) bool { return min[i].Key() < min[j].Key() })
	if s.hitBound {
		return min, ErrBound
	}
	return min, nil
}

func (s *searcher) search(cur *relation.Instance, depth int) error {
	if s.opt.MaxRepairs > 0 && len(s.found) >= s.opt.MaxRepairs {
		return nil
	}
	delta := s.deltaIDs(cur)
	// The delta identifies the state: cur = orig Δ delta, so the packed
	// delta is a (much cheaper) substitute for the instance rendering.
	key := relation.PackIDKey(delta)
	if s.visited[key] {
		return nil
	}
	s.visited[key] = true

	// Subsumption: a state whose delta contains an already-found
	// consistent delta cannot lead to a new minimal repair.
	for _, fd := range s.foundDelta {
		if len(fd) < len(delta) && relation.SubsetOfIDs(fd, delta) {
			return nil
		}
	}

	v, err := constraint.FirstViolation(cur, s.deps)
	if err != nil {
		return err
	}
	if v == nil {
		s.found = append(s.found, cur.Clone())
		s.foundDelta = append(s.foundDelta, delta)
		return nil
	}
	if len(delta) >= s.opt.MaxDelta {
		s.hitBound = true
		return nil
	}

	acts, err := s.actions(cur, v)
	if err != nil {
		return err
	}
	for _, a := range acts {
		next := cur.Clone()
		a.apply(next)
		if err := s.search(next, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// action is a set of simultaneous tuple changes fixing one violation.
type action struct {
	deletes []relation.Fact
	inserts []relation.Fact
}

func (a action) apply(in *relation.Instance) {
	for _, f := range a.deletes {
		in.Delete(f.Rel, f.Tuple)
	}
	for _, f := range a.inserts {
		in.Insert(f.Rel, f.Tuple)
	}
}

// actions enumerates the ways of fixing a violation: deleting any one
// mutable body atom, or inserting the missing head atoms under some
// witness assignment.
func (s *searcher) actions(cur *relation.Instance, v *constraint.Violation) ([]action, error) {
	var out []action
	d := v.Dep
	// Deletions of mutable body atoms.
	for _, ba := range d.Body {
		g := v.Subst.Apply(ba)
		if s.opt.Fixed[g.Pred] {
			continue
		}
		if !cur.HasAtom(g) {
			continue // duplicate body atom already handled
		}
		out = append(out, action{deletes: []relation.Fact{atomFact(g)}})
	}
	// Insertions (TGDs only). Witnesses for existential variables come
	// from matching head atoms on fixed predicates; leftover variables
	// range over the active domain.
	if d.IsTGD() {
		wits, err := s.witnesses(cur, d, v.Subst)
		if err != nil {
			return nil, err
		}
		for _, w := range wits {
			var ins []relation.Fact
			ok := true
			for _, ha := range d.Head {
				g := w.Apply(ha)
				if !g.IsGround() {
					ok = false
					break
				}
				if cur.HasAtom(g) {
					continue
				}
				if s.opt.Fixed[g.Pred] {
					ok = false // cannot create the witness on a fixed relation
					break
				}
				ins = append(ins, atomFact(g))
			}
			if ok && len(ins) > 0 {
				out = append(out, action{inserts: ins})
			}
		}
	}
	return out, nil
}

// witnesses enumerates assignments extending the body match over the
// dependency's existential variables such that all head equalities
// hold. Head atoms over fixed predicates must be matched against
// existing tuples (they cannot be created), binding their variables;
// remaining unbound existential variables enumerate the active domain.
func (s *searcher) witnesses(cur *relation.Instance, d *constraint.Dependency, base term.Subst) ([]term.Subst, error) {
	// Order head atoms: fixed predicates first (they constrain).
	var fixedAtoms, mutAtoms []term.Atom
	for _, ha := range d.Head {
		if s.opt.Fixed[ha.Pred] {
			fixedAtoms = append(fixedAtoms, ha)
		} else {
			mutAtoms = append(mutAtoms, ha)
		}
	}
	dom := cur.ActiveDomain()
	var out []term.Subst
	var matchFixed func(i int, sub term.Subst) error
	matchFixed = func(i int, sub term.Subst) error {
		if i == len(fixedAtoms) {
			// Enumerate any still-unbound existential variables.
			var unbound []string
			for _, v := range d.ExVars {
				if sub.Lookup(term.V(v)).IsVar {
					unbound = append(unbound, v)
				}
			}
			var enum func(j int, sub term.Subst) error
			enum = func(j int, sub term.Subst) error {
				if j == len(unbound) {
					for _, c := range d.HeadEq {
						ok, err := c.Eval(sub)
						if err != nil {
							return err
						}
						if !ok {
							return nil
						}
					}
					out = append(out, sub.Clone())
					return nil
				}
				for _, c := range dom {
					s2 := sub.Clone()
					s2[unbound[j]] = term.C(c)
					if err := enum(j+1, s2); err != nil {
						return err
					}
				}
				return nil
			}
			return enum(0, sub)
		}
		// Indexed join: candidates for the fixed head atom come from the
		// per-column indexes instead of a full relation scan.
		pat := sub.Apply(fixedAtoms[i])
		fact := term.Atom{Pred: pat.Pred}
		for _, tup := range cur.MatchingTuples(pat) {
			fact.Args = term.ConstArgs(fact.Args[:0], tup)
			s2 := sub.Clone()
			if term.Match(pat, fact, s2) {
				if err := matchFixed(i+1, s2); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := matchFixed(0, base.Clone()); err != nil {
		return nil, err
	}
	_ = mutAtoms
	return out, nil
}

// minimalByDelta filters instances whose delta (vs the original) is
// ⊆-minimal. Deltas are sorted fact-id sets: candidates are examined in
// ascending delta size, so each instance is only compared against the
// strictly smaller deltas before it and each comparison is a linear
// merge walk instead of a string-keyed map probe — the seed's quadratic
// map-probing collapse point for large candidate sets.
func minimalByDelta(insts []*relation.Instance, deltas [][]symtab.Sym) []*relation.Instance {
	order := make([]int, len(insts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return len(deltas[order[a]]) < len(deltas[order[b]]) })
	var out []*relation.Instance
	seen := make(map[string]bool)
	for oi, i := range order {
		minimal := true
		for _, j := range order[:oi] {
			if len(deltas[j]) < len(deltas[i]) && relation.SubsetOfIDs(deltas[j], deltas[i]) {
				minimal = false
				break
			}
		}
		if minimal {
			k := relation.PackIDKey(deltas[i])
			if !seen[k] {
				seen[k] = true
				out = append(out, insts[i])
			}
		}
	}
	return out
}

func atomFact(a term.Atom) relation.Fact {
	t := make(relation.Tuple, len(a.Args))
	for i, arg := range a.Args {
		t[i] = arg.Name
	}
	return relation.Fact{Rel: a.Pred, Tuple: t}
}
