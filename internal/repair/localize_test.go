package repair

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/constraint"
	"repro/internal/foquery"
	"repro/internal/relation"
	"repro/internal/symtab"
	"repro/internal/term"
)

// scatteredFDInstance builds an instance with k independent FD
// conflicts on rel plus clean facts.
func scatteredFDInstance(k, clean int) *relation.Instance {
	in := relation.NewInstance()
	for i := 0; i < clean; i++ {
		in.Insert("r1", relation.Tuple{fmt.Sprintf("k%d", i), "v"})
	}
	for i := 0; i < k; i++ {
		in.Insert("r1", relation.Tuple{fmt.Sprintf("c%d", i), "u"})
		in.Insert("r1", relation.Tuple{fmt.Sprintf("c%d", i), "w"})
	}
	return in
}

func requireSameRepairs(t *testing.T, name string, inst *relation.Instance, deps []*constraint.Dependency, opt Options) {
	t.Helper()
	global := opt
	global.NoLocalize = true
	want, wantErr := Repairs(inst.Clone(), deps, global)
	got, gotErr := Repairs(inst.Clone(), deps, opt)
	if fmt.Sprint(wantErr) != fmt.Sprint(gotErr) {
		t.Fatalf("%s: error diverges: global=%v localized=%v", name, wantErr, gotErr)
	}
	if len(want) != len(got) {
		t.Fatalf("%s: repair count diverges: global=%d localized=%d", name, len(want), len(got))
	}
	for i := range want {
		if want[i].Key() != got[i].Key() {
			t.Fatalf("%s: repair %d diverges:\nglobal    %s\nlocalized %s", name, i, want[i], got[i])
		}
	}
}

func TestLocalizedScatteredFDConflicts(t *testing.T) {
	in := scatteredFDInstance(6, 10)
	deps := []*constraint.Dependency{constraint.FD("fd", "r1")}
	requireSameRepairs(t, "scattered-fd", in, deps, Options{})
	reps, err := Repairs(in, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 64 {
		t.Fatalf("want 2^6 = 64 repairs, got %d", len(reps))
	}
}

// TestLocalizedEngineEngages pins that the scattered workload really
// decomposes (one component per conflict) instead of silently falling
// back to the global search.
func TestLocalizedEngineEngages(t *testing.T) {
	in := scatteredFDInstance(4, 5)
	deps := []*constraint.Dependency{constraint.FD("fd", "r1")}
	opt := Options{MaxDelta: in.Size() + 64}
	pl, ok := tryLocalize(in, deps, opt)
	if !ok {
		t.Fatal("tryLocalize did not engage on scattered FD conflicts")
	}
	if len(pl.comps) != 4 {
		t.Fatalf("want 4 components, got %d", len(pl.comps))
	}
	for i, c := range pl.comps {
		if len(c.deltas) != 2 {
			t.Fatalf("component %d: want 2 minimal repairs, got %d", i, len(c.deltas))
		}
	}
}

// TestLocalizedSharedFactMerges: two FD violations pivoting on the same
// fact must land in one component (deleting the shared fact fixes
// both).
func TestLocalizedSharedFactMerges(t *testing.T) {
	in := mkInst(map[string][]relation.Tuple{
		"r1": {{"a", "b"}, {"a", "c"}, {"a", "d"}}, // three pairwise conflicts, all sharing facts
		"r2": {{"x", "u"}, {"x", "v"}},             // one independent conflict
	})
	deps := []*constraint.Dependency{constraint.FD("fd1", "r1"), constraint.FD("fd2", "r2")}
	opt := Options{MaxDelta: in.Size() + 64}
	pl, ok := tryLocalize(in, deps, opt)
	if !ok {
		t.Fatal("tryLocalize did not engage")
	}
	if len(pl.comps) != 2 {
		t.Fatalf("want 2 components (r1-cluster, r2-conflict), got %d", len(pl.comps))
	}
	requireSameRepairs(t, "shared-fact", in, deps, Options{})
}

// TestLocalizedTGDCascadeBridges: a full TGD whose head facts overlap a
// would-be-independent FD conflict must merge the two conflicts — the
// FD repair can delete a fact the TGD would re-derive (cascade), so
// they are not independent. The localized engine must agree with the
// global one either way.
func TestLocalizedTGDCascadeBridges(t *testing.T) {
	// src(a,b) -> dst(a,b); dst has an FD conflict at key a involving
	// the derived fact dst(a,b): deleting dst(a,b) violates the TGD,
	// whose repair can delete src(a,b) or re-insert dst(a,b).
	in := mkInst(map[string][]relation.Tuple{
		"src": {{"a", "b"}},
		"dst": {{"a", "b"}, {"a", "c"}},
		"r2":  {{"x", "u"}, {"x", "v"}}, // genuinely independent conflict
	})
	deps := []*constraint.Dependency{
		constraint.Inclusion("inc", "src", "dst", 2),
		constraint.FD("fd", "dst"),
		constraint.FD("fd2", "r2"),
	}
	opt := Options{MaxDelta: in.Size() + 64}
	pl, ok := tryLocalize(in, deps, opt)
	if !ok {
		t.Fatal("tryLocalize did not engage")
	}
	if len(pl.comps) != 2 {
		t.Fatalf("want 2 components (bridged dst-cluster, r2), got %d", len(pl.comps))
	}
	// The dst conflict and the r2 conflict must not share a component.
	requireSameRepairs(t, "tgd-cascade", in, deps, Options{})
}

// TestLocalizedGuardViolation: a violation whose facts are all fixed
// admits no repair action; the whole repair set is empty, in both
// engines, even when other components are repairable.
func TestLocalizedGuardViolation(t *testing.T) {
	in := mkInst(map[string][]relation.Tuple{
		"fx": {{"a", "b"}, {"a", "c"}}, // guard conflict on a fixed relation
		"r1": {{"k", "u"}, {"k", "v"}}, // repairable conflict
	})
	deps := []*constraint.Dependency{constraint.FD("fdfx", "fx"), constraint.FD("fd1", "r1")}
	opt := Options{Fixed: map[string]bool{"fx": true}}
	requireSameRepairs(t, "guard", in, deps, opt)
	reps, err := Repairs(in, deps, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 0 {
		t.Fatalf("guard violation must kill every repair, got %d", len(reps))
	}
}

// TestLocalizedMaxRepairsFallsBack: truncation is exploration-order
// dependent, so the localized engine must defer to the global one and
// stay byte-identical.
func TestLocalizedMaxRepairsFallsBack(t *testing.T) {
	in := scatteredFDInstance(4, 3)
	deps := []*constraint.Dependency{constraint.FD("fd", "r1")}
	for _, mr := range []int{1, 3, 7} {
		requireSameRepairs(t, fmt.Sprintf("maxrepairs=%d", mr), in, deps, Options{MaxRepairs: mr})
	}
}

// TestLocalizedErrBoundFallsBack: with a delta bound tight enough to
// prune, both engines must return the same (possibly truncated) set
// and the same ErrBound.
func TestLocalizedErrBound(t *testing.T) {
	in := scatteredFDInstance(4, 0)
	deps := []*constraint.Dependency{constraint.FD("fd", "r1")}
	for _, md := range []int{1, 2, 3, 4, 5, 8} {
		requireSameRepairs(t, fmt.Sprintf("maxdelta=%d", md), in, deps, Options{MaxDelta: md})
	}
}

// TestLocalizedExistentialWitness: an existential TGD whose witnesses
// come from a fixed relation is localizable (witness pool is frozen);
// results must match the global engine.
func TestLocalizedExistentialWitness(t *testing.T) {
	// r1(x,y) ∧ s1(z,y) -> ∃w r2(x,w) ∧ s2(z,w) with s1, s2 fixed:
	// two independent violations plus an independent FD conflict.
	in := mkInst(map[string][]relation.Tuple{
		"r1": {{"x0", "y0"}, {"x1", "y1"}},
		"s1": {{"z0", "y0"}, {"z1", "y1"}},
		"s2": {{"z0", "w0"}, {"z1", "w1"}},
		"ra": {{"k", "u"}, {"k", "v"}},
	})
	deps := []*constraint.Dependency{
		constraint.Referential("dec3", "r1", "s1", "r2", "s2"),
		constraint.FD("fd", "ra"),
	}
	opt := Options{Fixed: map[string]bool{"s1": true, "s2": true}}
	requireSameRepairs(t, "existential-witness", in, deps, opt)
}

// TestLocalizedDomainDependentFallsBack: an existential TGD with no
// fixed head atom draws witnesses from the active domain — components
// would interact through constants — so localization must not engage,
// and results stay identical by construction.
func TestLocalizedDomainDependentFallsBack(t *testing.T) {
	d := &constraint.Dependency{
		Name:   "dd",
		Body:   []term.Atom{term.NewAtom("r1", term.V("X"))},
		ExVars: []string{"W"},
		Head:   []term.Atom{term.NewAtom("r2", term.V("X"), term.V("W"))},
	}
	if !domainDependentDep(d, nil) {
		t.Fatal("dep should be domain-dependent with no fixed head atom")
	}
	in := mkInst(map[string][]relation.Tuple{
		"r1": {{"a"}},
		"ra": {{"k", "u"}, {"k", "v"}},
	})
	deps := []*constraint.Dependency{d, constraint.FD("fd", "ra")}
	opt := Options{MaxDelta: in.Size() + 64}
	if _, ok := tryLocalize(in, deps, opt); ok {
		t.Fatal("tryLocalize must not engage with a domain-dependent dep")
	}
	requireSameRepairs(t, "domain-dependent", in, deps, Options{})
}

// TestLocalizedConsistentAnswers: the per-component answer path (query
// touching one component) and the materializing path must both match
// the global engine's answers.
func TestLocalizedConsistentAnswers(t *testing.T) {
	in := mkInst(map[string][]relation.Tuple{
		"r1": {{"a", "b"}, {"a", "c"}, {"k", "v"}},
		"r2": {{"x", "u"}, {"x", "w"}, {"m", "n"}},
	})
	deps := []*constraint.Dependency{constraint.FD("fd1", "r1"), constraint.FD("fd2", "r2")}
	for _, tc := range []struct {
		query string
		vars  []string
	}{
		{"r1(X,Y)", []string{"X", "Y"}},                // touches one component
		{"r2(X,Y)", []string{"X", "Y"}},                // the other component
		{"r1(X,Y) & r2(X,Z)", []string{"X", "Y", "Z"}}, // spans both: materializes
	} {
		q := foquery.MustParse(tc.query)
		want, wantErr := ConsistentAnswers(in.Clone(), deps, q, tc.vars, Options{NoLocalize: true})
		got, gotErr := ConsistentAnswers(in.Clone(), deps, q, tc.vars, Options{})
		if fmt.Sprint(wantErr) != fmt.Sprint(gotErr) || !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: answers diverge: global=%v (%v) localized=%v (%v)", tc.query, want, wantErr, got, gotErr)
		}
	}
}

// TestLocalizedSeededRandom sweeps random scattered instances with a
// mix of FD conflicts, inclusion imports and satisfied constraints,
// comparing localized and global output (including error values) at
// several delta bounds.
func TestLocalizedSeededRandom(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := relation.NewInstance()
		k := 1 + rng.Intn(4)
		for i := 0; i < k; i++ {
			in.Insert("r1", relation.Tuple{fmt.Sprintf("c%d", i), "u"})
			if rng.Intn(2) == 0 {
				in.Insert("r1", relation.Tuple{fmt.Sprintf("c%d", i), "w"})
			}
		}
		for i := 0; i < rng.Intn(5); i++ {
			in.Insert("src", relation.Tuple{fmt.Sprintf("s%d", i), "v"})
			if rng.Intn(2) == 0 {
				in.Insert("dst", relation.Tuple{fmt.Sprintf("s%d", i), "v"})
			}
		}
		for i := 0; i < rng.Intn(3); i++ {
			in.Insert("r2", relation.Tuple{fmt.Sprintf("q%d", i), "u"})
			in.Insert("r2", relation.Tuple{fmt.Sprintf("q%d", i), "w"})
		}
		deps := []*constraint.Dependency{
			constraint.FD("fd1", "r1"),
			constraint.Inclusion("inc", "src", "dst", 2),
			constraint.FD("fd2", "r2"),
		}
		var fixed map[string]bool
		if rng.Intn(2) == 0 {
			fixed = map[string]bool{"src": true}
		}
		for _, md := range []int{0, 2, 5} {
			name := fmt.Sprintf("seed=%d maxdelta=%d fixedsrc=%v", seed, md, fixed != nil)
			requireSameRepairs(t, name, in, deps, Options{MaxDelta: md, Fixed: fixed})
		}
	}
}

// TestCrossProductMinimality is the testing/quick property behind the
// composition step: for disjoint per-component delta families, the
// cross-product of the per-component ⊆-minimal sets equals
// minimalByDelta over the full cross-product.
func TestCrossProductMinimality(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	property := func(raw [][]uint8, pick uint8) bool {
		// Build 2-3 components with disjoint fact universes: component c
		// owns ids [c*16, c*16+8); each candidate delta is a subset coded
		// by the low byte.
		nc := 2 + int(pick%2)
		comps := make([][]bitset.Set, nc)
		for c := 0; c < nc; c++ {
			var cands []bitset.Set
			for i := 0; i < len(raw) && i < 4; i++ {
				var delta bitset.Set
				code := uint8(0)
				if c < len(raw) && i < len(raw[c%len(raw)]) {
					code = raw[c%len(raw)][i]
				}
				for b := 0; b < 8; b++ {
					if code&(1<<b) != 0 {
						delta.Set(uint32(c*16 + b))
					}
				}
				cands = append(cands, delta)
			}
			if len(cands) == 0 {
				cands = []bitset.Set{syms(symtab.Sym(c * 16))}
			}
			comps[c] = cands
		}
		// Composed candidates: every combination, delta = union
		// (components are disjoint, so xor is union).
		var composed []bitset.Set
		var walk func(c int, acc bitset.Set)
		walk = func(c int, acc bitset.Set) {
			if c == nc {
				composed = append(composed, acc.Clone())
				return
			}
			for _, d := range comps[c] {
				walk(c+1, bitset.Xor(acc, d))
			}
		}
		walk(0, nil)
		dummyAll := make([]*relation.Instance, len(composed))
		_, keptAll := minimalByDelta(dummyAll, composed)
		wantKeys := map[string]bool{}
		for _, k := range keptAll {
			wantKeys[composed[k].Key()] = true
		}
		// Factorized: minimal per component, then compose.
		var gotKeys = map[string]bool{}
		minPer := make([][]bitset.Set, nc)
		for c := 0; c < nc; c++ {
			dummy := make([]*relation.Instance, len(comps[c]))
			_, kept := minimalByDelta(dummy, comps[c])
			for _, k := range kept {
				minPer[c] = append(minPer[c], comps[c][k])
			}
		}
		var walk2 func(c int, acc bitset.Set)
		walk2 = func(c int, acc bitset.Set) {
			if c == nc {
				gotKeys[acc.Key()] = true
				return
			}
			for _, d := range minPer[c] {
				walk2(c+1, bitset.Xor(acc, d))
			}
		}
		walk2(0, nil)
		return reflect.DeepEqual(wantKeys, gotKeys)
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
