package repair

import (
	"math/rand"
	"testing"

	"repro/internal/constraint"
	"repro/internal/relation"
)

// randomInstance builds a random binary-relation instance.
func randomInstance(rng *rand.Rand, rels []string, maxTuples int, dom []string) *relation.Instance {
	in := relation.NewInstance()
	for _, rel := range rels {
		for i := 0; i < rng.Intn(maxTuples+1); i++ {
			in.Insert(rel, relation.Tuple{dom[rng.Intn(len(dom))], dom[rng.Intn(len(dom))]})
		}
	}
	return in
}

// TestRepairProperties checks, over random instances and constraint
// sets, the defining properties of Definition 1:
//
//  1. every repair satisfies the constraints;
//  2. repair deltas are pairwise ⊆-incomparable (minimality);
//  3. a consistent instance is its own unique repair;
//  4. repairs never touch fixed relations.
func TestRepairProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dom := []string{"a", "b", "c"}
	deps := []*constraint.Dependency{
		constraint.FD("fd_r", "r"),
		constraint.Inclusion("inc", "q", "r", 2),
		constraint.KeyEGD("egd", "r", "s"),
	}
	for trial := 0; trial < 120; trial++ {
		in := randomInstance(rng, []string{"r", "q", "s"}, 3, dom)
		fixed := map[string]bool{"q": true}
		reps, err := Repairs(in, deps, Options{Fixed: fixed})
		if err != nil && err != ErrBound {
			t.Fatalf("trial %d: %v", trial, err)
		}
		deltas := make([]map[string]bool, len(reps))
		for i, r := range reps {
			ok, cerr := constraint.AllSatisfied(r, deps)
			if cerr != nil || !ok {
				t.Fatalf("trial %d: repair %v violates constraints (%v)\ninput %v", trial, r, cerr, in)
			}
			// Fixed relations unchanged.
			if !r.RestrictRels(fixed).Equal(in.RestrictRels(fixed)) {
				t.Fatalf("trial %d: fixed relation changed in %v", trial, r)
			}
			deltas[i] = relation.DeltaKeySet(relation.SymDiff(in, r))
		}
		for i := range reps {
			for j := range reps {
				if i != j && relation.SubsetOf(deltas[i], deltas[j]) && len(deltas[i]) < len(deltas[j]) {
					t.Fatalf("trial %d: repair %d subsumes repair %d\n%v\n%v",
						trial, i, j, reps[i], reps[j])
				}
			}
		}
		// Consistent input: unique repair = input.
		if ok, _ := constraint.AllSatisfied(in, deps); ok {
			if len(reps) != 1 || !reps[0].Equal(in) {
				t.Fatalf("trial %d: consistent instance not its own repair: %v", trial, reps)
			}
		}
	}
}

// TestRepairSoundCompleteSmall exhaustively verifies the repair set on
// tiny instances against a brute-force search over all subsets of a
// candidate fact space (deletion-only constraints).
func TestRepairSoundCompleteSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dom := []string{"a", "b"}
	deps := []*constraint.Dependency{constraint.FD("fd", "r"), constraint.KeyEGD("egd", "r", "s")}
	for trial := 0; trial < 60; trial++ {
		in := randomInstance(rng, []string{"r", "s"}, 2, dom)
		reps, err := Repairs(in, deps, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteRepairs(in, deps)
		if len(reps) != len(want) {
			t.Fatalf("trial %d: %d repairs, brute force %d\ninput %v\ngot %v\nwant %v",
				trial, len(reps), len(want), in, reps, want)
		}
		wantKeys := map[string]bool{}
		for _, w := range want {
			wantKeys[w.Key()] = true
		}
		for _, r := range reps {
			if !wantKeys[r.Key()] {
				t.Fatalf("trial %d: unexpected repair %v", trial, r)
			}
		}
	}
}

// bruteRepairs enumerates all sub-instances (deletion-only repairs are
// complete for EGD/FD sets) and keeps the consistent ones with
// ⊆-minimal deltas.
func bruteRepairs(in *relation.Instance, deps []*constraint.Dependency) []*relation.Instance {
	facts := allFacts(in)
	n := len(facts)
	var consistent []*relation.Instance
	var deltas []map[string]bool
	for bits := 0; bits < (1 << n); bits++ {
		cand := relation.NewInstance()
		for i, f := range facts {
			if bits&(1<<i) != 0 {
				cand.Insert(f.Rel, f.Tuple)
			}
		}
		ok, _ := constraint.AllSatisfied(cand, deps)
		if ok {
			consistent = append(consistent, cand)
			deltas = append(deltas, relation.DeltaKeySet(relation.SymDiff(in, cand)))
		}
	}
	var out []*relation.Instance
	for i := range consistent {
		minimal := true
		for j := range consistent {
			if i != j && relation.SubsetOf(deltas[j], deltas[i]) && len(deltas[j]) < len(deltas[i]) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, consistent[i])
		}
	}
	return out
}

func allFacts(in *relation.Instance) []relation.Fact {
	var out []relation.Fact
	for _, rel := range in.Relations() {
		for _, t := range in.Tuples(rel) {
			out = append(out, relation.Fact{Rel: rel, Tuple: t})
		}
	}
	return out
}
