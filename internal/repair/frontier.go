package repair

import (
	"repro/internal/bitset"
	"repro/internal/symtab"
)

// frontierShards is the number of hash shards of the visited set.
// Sharding bounds the size of each individual map as the search state
// space grows; the shards are only written from the (single-threaded)
// admit pass of the wave loop, never from the parallel expansion
// workers, so no shard needs a lock.
const frontierShards = 16

// frontier is the pruning state of the repair search: the visited set
// (states already admitted once, keyed by the canonical byte encoding
// of their fact-id delta bitset) and the subsumption set (the deltas of
// the consistent states found so far). It exists so the sequential and
// parallel search share one pruning implementation with a fixed check
// order:
//
//  1. visited — a state is admitted at most once, and the visited mark
//     is recorded even when check 2 then rejects the state;
//  2. subsumption — a state whose delta strictly contains the delta of
//     an already-found consistent state cannot lead to a new minimal
//     repair and is rejected.
//
// The order is load-bearing: checking subsumption first would leave
// subsumed states unmarked, so a later wave could re-admit one after
// the subsumption set changed, and the search would expand a state
// twice (or not at all) depending on the order repairs are found in.
// frontier_test.go pins the order.
type frontier struct {
	visited [frontierShards]map[string]bool
	// foundDelta holds the fact-id delta bitsets of the consistent
	// states found so far, in discovery order, with their popcounts
	// alongside (strict subsumption needs the size comparison).
	foundDelta []bitset.Set
	foundN     []int
	// noSubsume disables check 2 entirely (visited-only pruning). The
	// per-component searches of the conflict-localized engine run this
	// way: their bound-exactness argument needs every reachable
	// component delta generated, because the global engine can wander
	// through states whose component projection a subsumption prune
	// would have skipped (see localize.go).
	noSubsume bool

	keyBuf []byte // reused encoding buffer for admit probes
}

func newFrontier() *frontier {
	f := &frontier{}
	for i := range f.visited {
		f.visited[i] = make(map[string]bool)
	}
	return f
}

// shardOfKey hashes a packed delta key to its visited shard (FNV-1a).
func shardOfKey(key string) int {
	return int(symtab.Hash32(key) % frontierShards)
}

// admit reports whether the state identified by delta (popcount deltaN)
// should be expanded, applying the visited check first and the
// subsumption check second (see the type comment for why the order
// matters). Only called from the sequential admit pass, so the key
// buffer reuse is safe.
func (f *frontier) admit(delta bitset.Set, deltaN int) bool {
	f.keyBuf = delta.AppendKey(f.keyBuf[:0])
	key := string(f.keyBuf)
	sh := f.visited[shardOfKey(key)]
	if sh[key] {
		return false
	}
	sh[key] = true
	return f.noSubsume || !f.subsumed(delta, deltaN)
}

// subsumed reports whether delta strictly contains an already-found
// consistent delta.
func (f *frontier) subsumed(delta bitset.Set, deltaN int) bool {
	for i, fd := range f.foundDelta {
		if f.foundN[i] < deltaN && fd.SubsetOf(delta) {
			return true
		}
	}
	return false
}

// recordFound adds the delta of a newly found consistent state to the
// subsumption set (a no-op when subsumption is disabled).
func (f *frontier) recordFound(delta bitset.Set, deltaN int) {
	if f.noSubsume {
		return
	}
	f.foundDelta = append(f.foundDelta, delta)
	f.foundN = append(f.foundN, deltaN)
}
