package repair

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/symtab"
)

// syms builds the delta bitset of the given fact ids, for passing to
// admit/recordFound together with its popcount via the delta helper.
func syms(ids ...symtab.Sym) bitset.Set {
	var s bitset.Set
	for _, id := range ids {
		s.Set(id)
	}
	return s
}

// admitN forwards a test delta to admit with its popcount.
func (f *frontier) admitN(d bitset.Set) bool { return f.admit(d, d.Count()) }

// recordFoundN forwards a test delta to recordFound with its popcount.
func (f *frontier) recordFoundN(d bitset.Set) { f.recordFound(d, d.Count()) }

func TestFrontierAdmitsFreshState(t *testing.T) {
	f := newFrontier()
	if !f.admitN(syms()) {
		t.Fatal("empty (root) delta must be admitted")
	}
	if !f.admitN(syms(1, 2)) {
		t.Fatal("fresh delta must be admitted")
	}
}

func TestFrontierVisitedRejectsReAdmission(t *testing.T) {
	f := newFrontier()
	if !f.admitN(syms(1, 2)) {
		t.Fatal("first admission must succeed")
	}
	if f.admitN(syms(1, 2)) {
		t.Fatal("second admission of the same delta must be rejected")
	}
}

func TestFrontierSubsumptionRejects(t *testing.T) {
	f := newFrontier()
	f.recordFoundN(syms(1))
	if f.admitN(syms(1, 2)) {
		t.Fatal("delta strictly containing a found delta must be rejected")
	}
	if !f.admitN(syms(2, 3)) {
		t.Fatal("delta not containing the found delta must be admitted")
	}
	// Equal-size deltas are never subsumed (strict containment only):
	// the found state itself must remain admissible exactly once.
	if !f.admitN(syms(1)) {
		t.Fatal("the found delta itself is not strictly subsumed")
	}
}

// TestFrontierVisitedBeforeSubsumption pins the check order: a state
// rejected by subsumption is still marked visited, so it can never be
// admitted later even if the subsumption set were different then. (If
// subsumption ran first, the state would stay unmarked and a later
// admit could expand it — making the explored tree depend on the order
// repairs are found in, which the parallel search must not.)
func TestFrontierVisitedBeforeSubsumption(t *testing.T) {
	f := newFrontier()
	f.recordFoundN(syms(1))
	if f.admitN(syms(1, 2)) {
		t.Fatal("subsumed delta must be rejected")
	}
	// Re-admitting the same delta must keep failing on the visited
	// check, regardless of the subsumption set.
	if f.admitN(syms(1, 2)) {
		t.Fatal("subsumption-rejected delta must have been marked visited")
	}
}

func TestFrontierShardsIndependent(t *testing.T) {
	f := newFrontier()
	// Admit enough distinct deltas that several shards are hit; all
	// must be tracked independently.
	for i := symtab.Sym(0); i < 100; i++ {
		if !f.admitN(syms(i, i+101)) {
			t.Fatalf("fresh delta %d rejected", i)
		}
	}
	for i := symtab.Sym(0); i < 100; i++ {
		if f.admitN(syms(i, i+101)) {
			t.Fatalf("visited delta %d re-admitted", i)
		}
	}
	n := 0
	for _, sh := range f.visited {
		n += len(sh)
	}
	if n != 100 {
		t.Fatalf("visited size = %d, want 100", n)
	}
}
