package repair

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/constraint"
	"repro/internal/foquery"
	"repro/internal/relation"
)

// TestSortTuplesLarge is the regression test for the sort.Slice
// replacement of the old O(n²) bubble sort: a 1k-tuple input in
// adversarial (reverse-keyed, with duplicates) order must come out in
// nondecreasing key order with the multiset preserved.
func TestSortTuplesLarge(t *testing.T) {
	const n = 1000
	ts := make([]relation.Tuple, 0, n)
	for i := 0; i < n; i++ {
		// Reverse order plus a duplicate every eighth tuple.
		v := n - 1 - i
		if i%8 == 0 {
			v = n / 2
		}
		ts = append(ts, relation.Tuple{fmt.Sprintf("k%06d", v), "x"})
	}
	want := make([]string, len(ts))
	for i, tp := range ts {
		want[i] = tp.Key()
	}
	sort.Strings(want)

	sortTuples(ts)

	got := make([]string, len(ts))
	for i, tp := range ts {
		got[i] = tp.Key()
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sortTuples produced wrong order (first diff around %d)", firstDiff(got, want))
	}
}

func firstDiff(a, b []string) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// TestConsistentAnswersParallelIdentical checks that the worker-pool
// evaluation of IntersectAnswers is byte-identical to the sequential
// path at every parallelism level, on the classic FD-conflict workload
// (2^k repairs).
func TestConsistentAnswersParallelIdentical(t *testing.T) {
	in := relation.NewInstance()
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("k%d", i)
		in.Insert("r1", relation.Tuple{key, "u"})
		in.Insert("r1", relation.Tuple{key, "v"})
		in.Insert("r1", relation.Tuple{fmt.Sprintf("c%d", i), "w"})
	}
	deps := []*constraint.Dependency{constraint.FD("fd", "r1")}
	q := foquery.MustParse("r1(X,Y)")
	vars := []string{"X", "Y"}

	seq, err := ConsistentAnswers(in, deps, q, vars, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 6 {
		t.Fatalf("sequential answers = %d, want the 6 conflict-free tuples", len(seq))
	}
	for _, p := range []int{0, 2, 4, 8} {
		par, err := ConsistentAnswers(in, deps, q, vars, Options{Parallelism: p})
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Fatalf("parallelism %d: answers %v != sequential %v", p, par, seq)
		}
	}
}

// TestIntersectAnswersOptErrorSurfaces checks that a query error inside
// a worker is reported, not swallowed, at every parallelism level.
func TestIntersectAnswersOptErrorSurfaces(t *testing.T) {
	insts := []*relation.Instance{
		mkInst(map[string][]relation.Tuple{"r1": {{"a", "b"}}}),
		mkInst(map[string][]relation.Tuple{"r1": {{"a", "c"}}}),
	}
	// Requesting an answer variable that is not free in the query makes
	// every per-instance evaluation fail inside its worker.
	q := foquery.MustParse("r1(X,Y)")
	for _, p := range []int{1, 4} {
		if _, err := IntersectAnswersOpt(insts, q, []string{"Z"}, Options{Parallelism: p}); err == nil {
			t.Fatalf("parallelism %d: expected error for non-free answer variable", p)
		}
	}
}
