package repair

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/constraint"
	"repro/internal/foquery"
	"repro/internal/relation"
	"repro/internal/term"
)

// This file cross-validates the interned pipeline (symtab-backed
// relation storage, indexed constraint matching, sorted-ID minimality)
// against a self-contained reference that works the way the seed did:
// string tuples, full scans with term.Match, and brute-force subset
// enumeration for repairs. For deletion-only dependency classes (FDs,
// EGDs, denials) the minimal repairs are exactly the ⊆-maximal
// consistent subsets of the instance, which the reference enumerates
// directly.

// refFacts is the reference representation: per relation, the string
// tuples in sorted order.
type refFacts map[string][]relation.Tuple

// refConsistent checks every dependency by scanning all tuples with
// cloned substitutions, exactly like the seed's matchBody; it supports
// the deletion-only classes (empty Head).
func refConsistent(facts refFacts, deps []*constraint.Dependency) (bool, error) {
	for _, d := range deps {
		ok, err := refSatisfied(facts, d)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func refSatisfied(facts refFacts, d *constraint.Dependency) (bool, error) {
	sat := true
	var rec func(i int, s term.Subst) error
	rec = func(i int, s term.Subst) error {
		if !sat {
			return nil
		}
		if i == len(d.Body) {
			for _, c := range d.Cond {
				ok, err := c.Eval(s)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
			if len(d.Head) > 0 {
				panic("refSatisfied: reference only supports deletion-only dependencies")
			}
			if len(d.HeadEq) == 0 {
				sat = false // denial: a body match is a violation
				return nil
			}
			for _, c := range d.HeadEq {
				ok, err := c.Eval(s)
				if err != nil {
					return err
				}
				if !ok {
					sat = false
					return nil
				}
			}
			return nil
		}
		pat := s.Apply(d.Body[i])
		for _, tup := range facts[pat.Pred] {
			args := make([]term.Term, len(tup))
			for k, v := range tup {
				args[k] = term.C(v)
			}
			s2 := s.Clone()
			if term.Match(pat, term.Atom{Pred: pat.Pred, Args: args}, s2) {
				if err := rec(i+1, s2); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := rec(0, term.NewSubst()); err != nil {
		return false, err
	}
	return sat, nil
}

// refRepairs enumerates all subsets of the instance's facts, keeps the
// consistent ones and filters to the ⊆-maximal (= minimal deletions).
// It returns the repairs as sorted instance keys.
func refRepairs(t *testing.T, all []relation.Fact, deps []*constraint.Dependency) ([]string, [][]relation.Fact) {
	t.Helper()
	n := len(all)
	type cand struct {
		mask  uint
		facts []relation.Fact
	}
	var consistent []cand
	for mask := uint(0); mask < 1<<n; mask++ {
		facts := refFacts{}
		var kept []relation.Fact
		for b := 0; b < n; b++ {
			if mask>>b&1 == 1 {
				f := all[b]
				facts[f.Rel] = append(facts[f.Rel], f.Tuple)
				kept = append(kept, f)
			}
		}
		ok, err := refConsistent(facts, deps)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			consistent = append(consistent, cand{mask: mask, facts: kept})
		}
	}
	var keys []string
	var factSets [][]relation.Fact
	for _, c := range consistent {
		maximal := true
		for _, d := range consistent {
			if c.mask != d.mask && c.mask&d.mask == c.mask {
				maximal = false
				break
			}
		}
		if !maximal {
			continue
		}
		in := relation.NewInstance()
		for _, f := range c.facts {
			in.Insert(f.Rel, f.Tuple)
		}
		keys = append(keys, in.Key())
		factSets = append(factSets, c.facts)
	}
	sort.Strings(keys)
	return keys, factSets
}

// TestQuickInternedPipelineEqualsSeedPipeline (testing/quick): on
// random small instances over r/2 and s/2 with an FD on r, a key EGD
// across r and s and a diagonal denial on r, the interned engine's
// repairs are byte-identical to the reference subset enumeration, and
// the consistent answers to r(X,Y) equal the intersection of the
// reference repairs' r-tuples.
func TestQuickInternedPipelineEqualsSeedPipeline(t *testing.T) {
	deps := []*constraint.Dependency{
		constraint.FD("fd_r", "r"),
		constraint.KeyEGD("egd_rs", "r", "s"),
		{
			Name: "no_diag_r",
			Body: []term.Atom{term.NewAtom("r", term.V("X"), term.V("X"))},
		},
	}
	q := foquery.MustParse("r(X,Y)")

	name := func(b uint8) string { return string(rune('a' + int(b)%3)) }

	f := func(rp, sp [][2]uint8) bool {
		if len(rp) > 4 {
			rp = rp[:4]
		}
		if len(sp) > 4 {
			sp = sp[:4]
		}
		in := relation.NewInstance()
		for _, p := range rp {
			in.Insert("r", relation.Tuple{name(p[0]), name(p[1])})
		}
		for _, p := range sp {
			in.Insert("s", relation.Tuple{name(p[0]), name(p[1])})
		}
		var all []relation.Fact
		for _, rel := range in.Relations() {
			for _, tup := range in.Tuples(rel) {
				all = append(all, relation.Fact{Rel: rel, Tuple: tup})
			}
		}

		reps, err := Repairs(in, deps, Options{})
		if err != nil {
			t.Logf("Repairs: %v", err)
			return false
		}
		gotKeys := make([]string, len(reps))
		for i, r := range reps {
			gotKeys[i] = r.Key()
		}
		sort.Strings(gotKeys)
		wantKeys, factSets := refRepairs(t, all, deps)
		if len(gotKeys) != len(wantKeys) {
			t.Logf("repairs: got %d %v want %d %v", len(gotKeys), gotKeys, len(wantKeys), wantKeys)
			return false
		}
		for i := range gotKeys {
			if gotKeys[i] != wantKeys[i] {
				t.Logf("repair %d: got %q want %q", i, gotKeys[i], wantKeys[i])
				return false
			}
		}

		// Consistent answers: intersection of the reference repairs'
		// r-tuples vs the engine's CQA for the atomic query.
		ans, err := ConsistentAnswers(in, deps, q, []string{"X", "Y"}, Options{})
		if err != nil {
			t.Logf("ConsistentAnswers: %v", err)
			return false
		}
		counts := map[string]int{}
		for _, facts := range factSets {
			for _, f := range facts {
				if f.Rel == "r" {
					counts[f.Tuple.Key()]++
				}
			}
		}
		var want []string
		for k, c := range counts {
			if c == len(factSets) {
				want = append(want, k)
			}
		}
		sort.Strings(want)
		got := make([]string, len(ans))
		for i, tup := range ans {
			got[i] = tup.Key()
		}
		sort.Strings(got)
		if len(got) != len(want) {
			t.Logf("answers: got %v want %v", got, want)
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("answers: got %v want %v", got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
