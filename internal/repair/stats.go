package repair

import "sync/atomic"

// Stats aggregates repair-engine counters across searches for the
// serving plane's observability layer. A single *Stats may be shared by
// concurrent searches: recording uses atomic adds, reading uses
// Snapshot. Attach it via Options.Stats; a nil Stats costs nothing.
type Stats struct {
	searches   atomic.Int64
	localized  atomic.Int64
	components atomic.Int64
}

// record notes one top-level search; comps is the number of conflict
// components when the localized engine engaged, -1 when the search ran
// globally.
func (s *Stats) record(comps int) {
	if s == nil {
		return
	}
	s.searches.Add(1)
	if comps >= 0 {
		s.localized.Add(1)
		s.components.Add(int64(comps))
	}
}

// Snapshot reports the counters: total top-level searches, how many ran
// the conflict-localized engine, and the total number of conflict
// components those localized searches decomposed into.
func (s *Stats) Snapshot() (searches, localized, components int64) {
	if s == nil {
		return 0, 0, 0
	}
	return s.searches.Load(), s.localized.Load(), s.components.Load()
}
