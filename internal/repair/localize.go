// Conflict-localized repair: repairs of an inconsistent instance
// factorize over the connected components of its conflict graph
// [Arenas, Bertossi, Chomicki, PODS 99]. The nodes of the graph are the
// root violations (constraint.AllViolations); two violations interact —
// and land in one component — when the facts their repair actions can
// touch overlap (fact level), or when either can cascade (insert
// witnesses, create new matches, un-witness a TGD) into a predicate the
// other can observe (predicate-level dependency closure, mirroring
// internal/slice). The engine freezes everything outside a component,
// runs the deterministic wave search per component — with incremental
// violation checking: after an action only the dependencies whose
// predicates intersect the touched facts are re-checked — and composes
// the global minimal repairs as the cross-product of the component
// repairs: component deltas are disjoint, so ⊆-minimality factorizes.
//
// Localization is applied only when it is provably exact, so the
// composed output is byte-identical to the global wave search:
//
//   - Options.MaxRepairs truncation depends on the global exploration
//     order, so any truncated search falls back to the global engine;
//   - a dependency that draws repair witnesses from the active domain
//     makes components interact through constants of arbitrary
//     relations (the analogue of slice's domain-dependent degradation),
//     so its presence falls back;
//   - the component searches run without subsumption pruning and track
//     the largest delta they ever generate; if the sizes sum below
//     Options.MaxDelta, no interleaved global branch could have hit the
//     bound either (every global state projects to generated component
//     states with disjoint deltas), so ErrBound is provably absent.
//     Otherwise the engine falls back and lets the global search decide
//     bound reporting canonically.
package repair

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/constraint"
	"repro/internal/parallel"
	"repro/internal/relation"
	"repro/internal/symtab"
	"repro/internal/term"
)

// maxComposedRepairs caps the size of a composed cross-product; beyond
// it the engine falls back to the global search rather than risking
// integer overflow while counting (the global engine enumerates the
// same repairs, so neither path is fast there).
const maxComposedRepairs = 1 << 24

// component is one connected component of the conflict graph after its
// search ran: the ⊆-minimal repairs of the component's conflicts with
// every fact outside the component frozen.
type component struct {
	// vios are the indices of the component's root violations.
	vios []int
	// deltas are the minimal repair deltas (fact-id bitsets over the
	// plan's shared table); disjoint across components.
	deltas []bitset.Set
	// insts are the matching repaired instances (orig Δ delta).
	insts []*relation.Instance
	// deltaPreds are the predicates occurring in any delta — the
	// relations on which this component's repairs can disagree.
	deltaPreds map[string]bool
}

// localPlan is the result of a successful conflict-localized search:
// everything needed to materialize the global repair set, or to answer
// queries per component without materializing it.
type localPlan struct {
	orig  *relation.Instance
	facts *symtab.Table
	comps []*component
}

// vioInfo is the interaction signature of one root violation.
type vioInfo struct {
	// factSet are the keys of the facts the violation's direct repair
	// actions can touch: deletable (mutable) body facts plus, for full
	// TGDs, the determined head insertions.
	factSet map[string]bool
	// factPreds are the predicates of factSet.
	factPreds map[string]bool
	// predSet is the cascade frontier (mutable predicates the repair can
	// reach transitively); nil for violations that cannot cascade.
	predSet map[string]bool
}

// tryLocalize runs the conflict-localized engine. ok reports whether it
// applied and completed exactly; on false the caller must run the
// global wave search (any internal error also reports false, so the
// global engine reproduces the canonical error behaviour).
func tryLocalize(inst *relation.Instance, deps []*constraint.Dependency, opt Options) (*localPlan, bool) {
	if opt.NoLocalize || opt.MaxRepairs > 0 || len(deps) == 0 {
		return nil, false
	}
	seen := map[*constraint.Dependency]bool{}
	for _, d := range deps {
		if seen[d] {
			return nil, false // duplicate entries break per-dep indexing
		}
		seen[d] = true
		if domainDependentDep(d, opt.Fixed) {
			return nil, false
		}
	}
	vios, err := constraint.AllViolations(inst, deps)
	if err != nil || len(vios) < 2 {
		return nil, false
	}
	comps := buildComponents(inst, deps, vios, opt.Fixed)
	if len(comps) < 2 {
		return nil, false
	}

	depOf := map[*constraint.Dependency]int{}
	for i, d := range deps {
		depOf[d] = i
	}
	depIdx := constraint.NewDepIndex(deps)
	facts := symtab.New()
	searchers, err := parallel.MapErr(len(comps), parallel.Workers(opt.Parallelism), func(ci int) (*searcher, error) {
		innerOpt := opt
		innerOpt.Parallelism = 1 // components are the unit of fan-out
		s := &searcher{orig: inst, deps: deps, opt: innerOpt, facts: facts, front: newFrontier(), depIdx: depIdx}
		s.front.noSubsume = true
		s.skip = make([]map[string]bool, len(deps))
		s.rootVios = make([][]constraint.Violation, len(deps))
		mine := map[int]bool{}
		for _, vi := range comps[ci] {
			mine[vi] = true
		}
		for vi, v := range vios {
			di := depOf[v.Dep]
			if mine[vi] {
				s.rootVios[di] = append(s.rootVios[di], v)
				continue
			}
			if s.skip[di] == nil {
				s.skip[di] = map[string]bool{}
			}
			s.skip[di][v.Key()] = true
		}
		return s, s.run()
	})
	if err != nil {
		return nil, false
	}

	// Bound exactness: if any component hit the bound, or the generated
	// deltas could sum past it along an interleaved global branch, let
	// the global engine decide ErrBound canonically.
	sumMax := 0
	for _, s := range searchers {
		if s.hitBound {
			return nil, false
		}
		sumMax += s.maxDeltaSeen
	}
	if sumMax >= opt.MaxDelta {
		return nil, false
	}

	pl := &localPlan{orig: inst, facts: facts, comps: make([]*component, len(comps))}
	total := 1
	for ci, s := range searchers {
		insts, kept := minimalByDelta(s.found, s.foundDelta)
		c := &component{vios: comps[ci], insts: insts, deltaPreds: map[string]bool{}}
		c.deltas = make([]bitset.Set, len(kept))
		for i, k := range kept {
			c.deltas[i] = s.foundDelta[k]
			s.foundDelta[k].ForEach(func(id uint32) {
				c.deltaPreds[relation.ParseFactIDKey(facts.Name(symtab.Sym(id))).Rel] = true
			})
		}
		pl.comps[ci] = c
		if total > 0 {
			total *= len(c.deltas)
		}
		if total > maxComposedRepairs {
			return nil, false
		}
	}
	return pl, true
}

// materialize composes the global minimal repair set: the cross-product
// of the component repair deltas applied to the original instance. With
// ordered set, the result is sorted by canonical instance key —
// byte-identical to the global wave search's output; answering paths
// pass false and skip the per-repair key renders (intersection over the
// repair set is order-independent, and rendering every composed repair
// is the dominant cost at large-universe scale). A component with no
// repairs makes the product empty.
func (pl *localPlan) materialize(opt Options, ordered bool) []*relation.Instance {
	total := 1
	for _, c := range pl.comps {
		total *= len(c.deltas)
	}
	if total == 0 {
		return nil
	}
	insts, _ := parallel.MapErr(total, parallel.Workers(opt.Parallelism), func(idx int) (*relation.Instance, error) {
		out := pl.orig.Clone()
		rem := idx
		for _, c := range pl.comps {
			pl.applyDelta(out, c.deltas[rem%len(c.deltas)])
			rem /= len(c.deltas)
		}
		return out, nil
	})
	if ordered {
		sortByKey(insts, opt.Parallelism)
	}
	return insts
}

// applyDelta toggles every fact of a delta: a delta is a symmetric
// difference against the original instance, and component deltas are
// disjoint, so each fact flips exactly once across the composition.
func (pl *localPlan) applyDelta(in *relation.Instance, delta bitset.Set) {
	delta.ForEach(func(id uint32) {
		f := relation.ParseFactIDKey(pl.facts.Name(symtab.Sym(id)))
		if in.Has(f.Rel, f.Tuple) {
			in.Delete(f.Rel, f.Tuple)
		} else {
			in.Insert(f.Rel, f.Tuple)
		}
	})
}

// buildComponents partitions the root violations into the connected
// components of the conflict graph, returned as ascending violation
// index lists ordered by first violation.
func buildComponents(inst *relation.Instance, deps []*constraint.Dependency, vios []constraint.Violation, fixed map[string]bool) [][]int {
	return buildComponentsFrom(vios, violationInfos(inst, deps, vios, fixed))
}

// buildComponentsFrom is the union-find core of buildComponents over
// precomputed interaction signatures.
func buildComponentsFrom(vios []constraint.Violation, infos []vioInfo) [][]int {
	uf := newUnionFind(len(vios))
	// Fact-level edges: violations whose touchable facts overlap.
	owner := map[string]int{}
	for i, inf := range infos {
		for key := range inf.factSet {
			if j, ok := owner[key]; ok {
				uf.union(i, j)
			} else {
				owner[key] = i
			}
		}
	}
	// Predicate-level edges: a cascading violation reaches everything
	// whose facts or frontier live on a predicate it can reach.
	var cascading []int
	for i, inf := range infos {
		if inf.predSet != nil {
			cascading = append(cascading, i)
		}
	}
	for _, i := range cascading {
		for j := range infos {
			if i == j || uf.find(i) == uf.find(j) {
				continue
			}
			if intersects(infos[i].predSet, infos[j].factPreds) || intersects(infos[i].predSet, infos[j].predSet) {
				uf.union(i, j)
			}
		}
	}

	groups := map[int][]int{}
	for i := range vios {
		r := uf.find(i)
		groups[r] = append(groups[r], i)
	}
	var comps [][]int
	for _, g := range groups {
		sort.Ints(g)
		comps = append(comps, g)
	}
	sort.Slice(comps, func(a, b int) bool { return comps[a][0] < comps[b][0] })
	return comps
}

// depInteraction is the dependency-interaction context of
// violationInfos, split out so the incremental layer (incr.go) can
// maintain its instance-dependent part (witnessFacts) across deltas
// instead of re-enumerating every full TGD's body matches per call.
type depInteraction struct {
	// witnessDeps[key] lists the full TGDs some body match of which
	// grounds a head atom to the fact: deleting that fact can un-witness
	// the match, creating a new violation of the dependency.
	witnessDeps map[string][]int
	// exHeadDeps[pred] lists the existential TGDs with the predicate in
	// their head: any fact of the predicate is potentially a witness.
	exHeadDeps map[string][]int
	// bodyPreds are the predicates read by any dependency body: an
	// insertion there can create new matches, hence new violations over
	// arbitrary existing facts.
	bodyPreds map[string]bool
}

// newDepInteraction computes the interaction context from scratch:
// the structural maps plus the per-instance full-TGD witness facts.
func newDepInteraction(inst *relation.Instance, deps []*constraint.Dependency) *depInteraction {
	di := &depInteraction{
		witnessDeps: map[string][]int{},
		exHeadDeps:  map[string][]int{},
		bodyPreds:   map[string]bool{},
	}
	for i, d := range deps {
		for _, a := range d.Body {
			di.bodyPreds[a.Pred] = true
		}
		if !d.IsTGD() {
			continue
		}
		if len(d.ExVars) > 0 {
			for _, h := range d.Head {
				di.exHeadDeps[h.Pred] = append(di.exHeadDeps[h.Pred], i)
			}
			continue
		}
		for _, g := range fullTGDHeadFacts(inst, d) {
			di.witnessDeps[g] = append(di.witnessDeps[g], i)
		}
	}
	return di
}

// violationInfos computes each root violation's interaction signature.
func violationInfos(inst *relation.Instance, deps []*constraint.Dependency, vios []constraint.Violation, fixed map[string]bool) []vioInfo {
	return violationInfosWith(inst, deps, vios, fixed, newDepInteraction(inst, deps))
}

// violationInfosWith is violationInfos over a caller-supplied
// interaction context (which must be current for inst).
func violationInfosWith(inst *relation.Instance, deps []*constraint.Dependency, vios []constraint.Violation, fixed map[string]bool, ctx *depInteraction) []vioInfo {
	witnessDeps, exHeadDeps, bodyPreds := ctx.witnessDeps, ctx.exHeadDeps, ctx.bodyPreds
	infos := make([]vioInfo, len(vios))
	for i, v := range vios {
		inf := vioInfo{factSet: map[string]bool{}, factPreds: map[string]bool{}}
		var seeds []string
		open := false
		addSeed := func(p string) {
			if !fixed[p] {
				seeds = append(seeds, p)
			}
		}
		for _, ba := range v.Dep.Body {
			g := v.Subst.Apply(ba)
			if fixed[g.Pred] || !inst.HasAtom(g) {
				continue
			}
			key := atomFact(g).IDKey()
			inf.factSet[key] = true
			inf.factPreds[g.Pred] = true
			// Deletion cascades: the fact may witness another TGD.
			for _, di := range witnessDeps[key] {
				open = true
				for p := range deps[di].Preds() {
					addSeed(p)
				}
			}
			for _, di := range exHeadDeps[g.Pred] {
				open = true
				for p := range deps[di].Preds() {
					addSeed(p)
				}
			}
		}
		if v.Dep.IsTGD() {
			if len(v.Dep.ExVars) > 0 {
				// Witness-chosen insertions: predicate-level only.
				open = true
				for _, h := range v.Dep.Head {
					addSeed(h.Pred)
				}
			} else {
				for _, h := range v.Dep.Head {
					g := v.Subst.Apply(h)
					if fixed[g.Pred] || !g.IsGround() {
						continue
					}
					inf.factSet[atomFact(g).IDKey()] = true
					inf.factPreds[g.Pred] = true
					if bodyPreds[g.Pred] {
						// The insertion can create new body matches.
						open = true
						addSeed(g.Pred)
					}
				}
			}
		}
		if open {
			for p := range inf.factPreds {
				addSeed(p)
			}
			inf.predSet = cascadeClosure(seeds, deps, fixed)
		}
		infos[i] = inf
	}
	return infos
}

// fullTGDHeadFacts enumerates the head groundings of every body match
// of a full TGD over the instance — the facts whose deletion can
// un-witness a match, creating a new violation of the dependency.
// Match errors degrade to nil (no facts recorded): the global engine
// reproduces the error canonically if it is real.
func fullTGDHeadFacts(inst *relation.Instance, d *constraint.Dependency) []string {
	var out []string
	seen := map[string]bool{}
	err := d.BodyMatches(inst, func(s term.Subst) error {
		for _, h := range d.Head {
			g := s.Apply(h)
			if !g.IsGround() {
				continue
			}
			key := atomFact(g).IDKey()
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		}
		return nil
	})
	if err != nil {
		return nil
	}
	return out
}

// cascadeClosure computes the mutable-predicate dependency closure of
// the seeds: whenever a dependency mentions a predicate of the set, its
// mutable predicates join (its violations can appear or vanish, and its
// repairs can touch them).
func cascadeClosure(seeds []string, deps []*constraint.Dependency, fixed map[string]bool) map[string]bool {
	f := map[string]bool{}
	for _, p := range seeds {
		f[p] = true
	}
	for changed := true; changed; {
		changed = false
		for _, d := range deps {
			hit := false
			for p := range d.Preds() {
				if f[p] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			for p := range d.Preds() {
				if !fixed[p] && !f[p] {
					f[p] = true
					changed = true
				}
			}
		}
	}
	return f
}

// domainDependentDep mirrors slice.domainDependent for the repair
// engine's Fixed set: a TGD whose repair may enumerate the active
// domain for a witness observes constants of arbitrary relations, so
// conflict components are not independent in its presence.
func domainDependentDep(d *constraint.Dependency, fixed map[string]bool) bool {
	if !d.IsTGD() || len(d.ExVars) == 0 {
		return false
	}
	bound := map[string]bool{}
	fixedHeads := 0
	for _, h := range d.Head {
		if !fixed[h.Pred] {
			continue
		}
		fixedHeads++
		for _, v := range h.Vars(nil) {
			bound[v] = true
		}
	}
	if fixedHeads == 0 {
		return true
	}
	for _, v := range d.ExVars {
		if !bound[v] {
			return true
		}
	}
	return false
}

func intersects(a, b map[string]bool) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// unionFind is a plain union-find over violation indices.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(i int) int {
	for uf.parent[i] != i {
		uf.parent[i] = uf.parent[uf.parent[i]]
		i = uf.parent[i]
	}
	return i
}

func (uf *unionFind) union(i, j int) {
	ri, rj := uf.find(i), uf.find(j)
	if ri != rj {
		uf.parent[ri] = rj
	}
}
