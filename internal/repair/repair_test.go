package repair

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/foquery"
	"repro/internal/relation"
	"repro/internal/term"
)

func mkInst(facts map[string][]relation.Tuple) *relation.Instance {
	in := relation.NewInstance()
	for rel, ts := range facts {
		for _, t := range ts {
			in.Insert(rel, t)
		}
	}
	return in
}

func example1() *relation.Instance {
	return mkInst(map[string][]relation.Tuple{
		"r1": {{"a", "b"}, {"s", "t"}},
		"r2": {{"c", "d"}, {"a", "e"}},
		"r3": {{"a", "f"}, {"s", "u"}},
	})
}

func TestConsistentInstanceIsItsOwnRepair(t *testing.T) {
	in := mkInst(map[string][]relation.Tuple{"r1": {{"a", "b"}}})
	deps := []*constraint.Dependency{constraint.FD("fd", "r1")}
	reps, err := Repairs(in, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || !reps[0].Equal(in) {
		t.Fatalf("repairs = %v", reps)
	}
}

func TestFDRepairsDeletions(t *testing.T) {
	// Classic CQA: r1(a,b), r1(a,c) under the FD gives two repairs.
	in := mkInst(map[string][]relation.Tuple{"r1": {{"a", "b"}, {"a", "c"}}})
	deps := []*constraint.Dependency{constraint.FD("fd", "r1")}
	reps, err := Repairs(in, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("want 2 repairs, got %d: %v", len(reps), reps)
	}
	for _, r := range reps {
		if r.Count("r1") != 1 {
			t.Fatalf("repair %v should keep exactly one tuple", r)
		}
	}
}

func TestInclusionRepairStage1Example1(t *testing.T) {
	// Stage one of Example 1: repair wrt Σ(P1,P2) with r2, r3 fixed.
	// The unique repair adds R1(c,d) and R1(a,e).
	in := example1()
	deps := []*constraint.Dependency{constraint.Inclusion("sigma12", "r2", "r1", 2)}
	reps, err := Repairs(in, deps, Options{Fixed: map[string]bool{"r2": true, "r3": true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 {
		t.Fatalf("want 1 repair, got %d", len(reps))
	}
	r := reps[0]
	want := example1()
	want.Insert("r1", relation.Tuple{"c", "d"})
	want.Insert("r1", relation.Tuple{"a", "e"})
	if !r.Equal(want) {
		t.Fatalf("repair = %v, want %v", r, want)
	}
}

func TestInclusionRepairDeleteWhenSourceMutable(t *testing.T) {
	// If the source relation is mutable, the inclusion can also be
	// repaired by deleting the source tuple: two repairs.
	in := mkInst(map[string][]relation.Tuple{"r2": {{"c", "d"}}})
	deps := []*constraint.Dependency{constraint.Inclusion("inc", "r2", "r1", 2)}
	reps, err := Repairs(in, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("want 2 repairs, got %d: %v", len(reps), reps)
	}
}

func TestEGDStage2Example1(t *testing.T) {
	// Stage two of Example 1: starting from the stage-one repair,
	// repair wrt Σ(P1,P3) with r2 fixed, keeping Σ(P1,P2) satisfied.
	// The paper's two solutions r' and r'' must come out.
	in := example1()
	in.Insert("r1", relation.Tuple{"c", "d"})
	in.Insert("r1", relation.Tuple{"a", "e"})
	deps := []*constraint.Dependency{
		constraint.KeyEGD("sigma13", "r1", "r3"),
		constraint.Inclusion("sigma12", "r2", "r1", 2), // must stay satisfied
	}
	reps, err := Repairs(in, deps, Options{Fixed: map[string]bool{"r2": true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("want 2 repairs, got %d: %v", len(reps), reps)
	}
	// r' = all of R1 ∪ imports, R3 emptied.
	rp := mkInst(map[string][]relation.Tuple{
		"r1": {{"a", "b"}, {"s", "t"}, {"c", "d"}, {"a", "e"}},
		"r2": {{"c", "d"}, {"a", "e"}},
	})
	// r'' = R1 without (s,t), R3 keeps (s,u).
	rpp := mkInst(map[string][]relation.Tuple{
		"r1": {{"a", "b"}, {"c", "d"}, {"a", "e"}},
		"r2": {{"c", "d"}, {"a", "e"}},
		"r3": {{"s", "u"}},
	})
	found := map[string]bool{}
	for _, r := range reps {
		found[r.Key()] = true
	}
	if !found[rp.Key()] {
		t.Errorf("missing paper solution r' = %v; got %v", rp, reps)
	}
	if !found[rpp.Key()] {
		t.Errorf("missing paper solution r'' = %v; got %v", rpp, reps)
	}
}

func TestReferentialRepairWitnessFromFixedProvider(t *testing.T) {
	// Section 3.1 scenario: DEC (3) with S1, S2 fixed. Violation
	// R1(a,b), S1(c,b); S2 provides witnesses e and f. Repairs: delete
	// R1(a,b), or insert R2(a,e), or insert R2(a,f) — three repairs.
	in := mkInst(map[string][]relation.Tuple{
		"r1": {{"a", "b"}},
		"s1": {{"c", "b"}},
		"s2": {{"c", "e"}, {"c", "f"}},
	})
	deps := []*constraint.Dependency{constraint.Referential("dec3", "r1", "s1", "r2", "s2")}
	reps, err := Repairs(in, deps, Options{Fixed: map[string]bool{"s1": true, "s2": true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("want 3 repairs, got %d: %v", len(reps), reps)
	}
	var withAe, withAf, without int
	for _, r := range reps {
		switch {
		case r.Has("r2", relation.Tuple{"a", "e"}):
			withAe++
		case r.Has("r2", relation.Tuple{"a", "f"}):
			withAf++
		case !r.Has("r1", relation.Tuple{"a", "b"}):
			without++
		}
	}
	if withAe != 1 || withAf != 1 || without != 1 {
		t.Fatalf("repair shapes: ae=%d af=%d del=%d", withAe, withAf, without)
	}
}

func TestReferentialNoProviderForcesDeletion(t *testing.T) {
	// The aux2 case: S2 empty for z, so the only repair deletes R1.
	in := mkInst(map[string][]relation.Tuple{
		"r1": {{"d", "m"}},
		"s1": {{"z9", "m"}},
	})
	deps := []*constraint.Dependency{constraint.Referential("dec3", "r1", "s1", "r2", "s2")}
	reps, err := Repairs(in, deps, Options{Fixed: map[string]bool{"s1": true, "s2": true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0].Count("r1") != 0 {
		t.Fatalf("repairs = %v", reps)
	}
}

func TestAllBodyAtomsFixedNoRepair(t *testing.T) {
	// A denial whose body is entirely fixed admits no repair.
	in := mkInst(map[string][]relation.Tuple{"p": {{"a"}}})
	deps := []*constraint.Dependency{{
		Name: "d",
		Body: []term.Atom{term.NewAtom("p", term.V("X"))},
	}}
	reps, err := Repairs(in, deps, Options{Fixed: map[string]bool{"p": true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 0 {
		t.Fatalf("want no repairs, got %v", reps)
	}
}

func TestMinimalityNoSubsumedRepairs(t *testing.T) {
	// Two independent FD conflicts: 2x2 = 4 repairs, all with delta 2.
	in := mkInst(map[string][]relation.Tuple{
		"r1": {{"a", "b"}, {"a", "c"}, {"x", "y"}, {"x", "z"}},
	})
	deps := []*constraint.Dependency{constraint.FD("fd", "r1")}
	reps, err := Repairs(in, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 4 {
		t.Fatalf("want 4 repairs, got %d", len(reps))
	}
	for _, r := range reps {
		if len(relation.SymDiff(in, r)) != 2 {
			t.Fatalf("non-minimal repair %v", r)
		}
	}
}

func TestRepairsAreConsistent(t *testing.T) {
	in := example1()
	deps := []*constraint.Dependency{
		constraint.Inclusion("sigma12", "r2", "r1", 2),
		constraint.KeyEGD("sigma13", "r1", "r3"),
	}
	reps, err := Repairs(in, deps, Options{Fixed: map[string]bool{"r2": true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) == 0 {
		t.Fatal("no repairs found")
	}
	for _, r := range reps {
		ok, err := constraint.AllSatisfied(r, deps)
		if err != nil || !ok {
			t.Fatalf("repair %v does not satisfy constraints (%v)", r, err)
		}
	}
}

func TestConsistentAnswersFD(t *testing.T) {
	// CQA baseline: under the FD, only tuples not involved in
	// conflicts are consistent answers.
	in := mkInst(map[string][]relation.Tuple{
		"r1": {{"a", "b"}, {"a", "c"}, {"k", "v"}},
	})
	deps := []*constraint.Dependency{constraint.FD("fd", "r1")}
	q := foquery.MustParse("r1(X,Y)")
	ans, err := ConsistentAnswers(in, deps, q, []string{"X", "Y"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0].Key() != (relation.Tuple{"k", "v"}).Key() {
		t.Fatalf("consistent answers = %v", ans)
	}
}

func TestIntersectAnswersEmpty(t *testing.T) {
	ans, err := IntersectAnswers(nil, foquery.MustParse("r1(X,Y)"), []string{"X", "Y"})
	if err != nil || ans != nil {
		t.Fatalf("empty instances: %v %v", ans, err)
	}
}

func TestMaxRepairsStopsEarly(t *testing.T) {
	in := mkInst(map[string][]relation.Tuple{
		"r1": {{"a", "b"}, {"a", "c"}, {"x", "y"}, {"x", "z"}},
	})
	deps := []*constraint.Dependency{constraint.FD("fd", "r1")}
	reps, err := Repairs(in, deps, Options{MaxRepairs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 {
		t.Fatalf("MaxRepairs=1 gave %d repairs", len(reps))
	}
}

func TestDeltaBoundReported(t *testing.T) {
	in := mkInst(map[string][]relation.Tuple{"r2": {{"c", "d"}}})
	deps := []*constraint.Dependency{constraint.Inclusion("inc", "r2", "r1", 2)}
	_, err := Repairs(in, deps, Options{MaxDelta: -1})
	// Negative bound is treated as "no budget": the bound error must
	// surface rather than silently returning a partial set.
	if err != ErrBound {
		t.Fatalf("want ErrBound, got %v", err)
	}
}
