package core

import (
	"repro/internal/constraint"
)

// Fixtures reproducing the paper's running examples. They are used by
// tests, by cmd/p2pbench and by the examples; keeping them here keeps
// the experiment inputs identical everywhere.

// Example1System builds the system of the paper's Example 1:
//
//	peers P1, P2, P3 with instances
//	  r1 = {R1(a,b), R1(s,t)}, r2 = {R2(c,d), R2(a,e)},
//	  r3 = {R3(a,f), R3(s,u)};
//	trust = {(P1, less, P2), (P1, same, P3)};
//	Σ(P1,P2) = { ∀xy (R2(x,y) → R1(x,y)) };
//	Σ(P1,P3) = { ∀xyz (R1(x,y) ∧ R3(x,z) → y = z) }.
func Example1System() *System {
	p1 := NewPeer("P1").Declare("r1", 2).
		Fact("r1", "a", "b").Fact("r1", "s", "t").
		SetTrust("P2", TrustLess).SetTrust("P3", TrustSame).
		AddDEC("P2", constraint.Inclusion("sigma(P1,P2)", "r2", "r1", 2)).
		AddDEC("P3", constraint.KeyEGD("sigma(P1,P3)", "r1", "r3"))
	p2 := NewPeer("P2").Declare("r2", 2).
		Fact("r2", "c", "d").Fact("r2", "a", "e")
	p3 := NewPeer("P3").Declare("r3", 2).
		Fact("r3", "a", "f").Fact("r3", "s", "u")
	return NewSystem().MustAddPeer(p1).MustAddPeer(p2).MustAddPeer(p3)
}

// Section31System builds the two-peer system of Section 3.1: peer P
// with schema {R1, R2}, peer Q with {S1, S2}, the referential DEC (3)
//
//	∀x∀y∀z∃w (R1(x,y) ∧ S1(z,y) → R2(x,w) ∧ S2(z,w))
//
// owned by P, and (P, less, Q) ∈ trust. The instance is the one used in
// the paper's appendix: r1 = {(a,b)}, s1 = {(c,b)}, r2 = {},
// s2 = {(c,e),(c,f)}.
func Section31System() *System {
	p := NewPeer("P").Declare("r1", 2).Declare("r2", 2).
		Fact("r1", "a", "b").
		SetTrust("Q", TrustLess).
		AddDEC("Q", constraint.Referential("dec3", "r1", "s1", "r2", "s2"))
	q := NewPeer("Q").Declare("s1", 2).Declare("s2", 2).
		Fact("s1", "c", "b").
		Fact("s2", "c", "e").Fact("s2", "c", "f")
	return NewSystem().MustAddPeer(p).MustAddPeer(q)
}

// Example4System builds the three-peer system of Example 4 (the
// transitive case): the Section 3.1 peers P and Q plus peer C with
// relation U, ΣQ,C = { ∀xy (U(x,y) → S1(x,y)) }, (Q, less, C) ∈ trust,
// and instances r1 = {(a,b)}, s1 = {}, r2 = {}, s2 = {(c,e),(c,f)},
// u = {(c,b)}.
func Example4System() *System {
	p := NewPeer("P").Declare("r1", 2).Declare("r2", 2).
		Fact("r1", "a", "b").
		SetTrust("Q", TrustLess).
		AddDEC("Q", constraint.Referential("dec3", "r1", "s1", "r2", "s2"))
	q := NewPeer("Q").Declare("s1", 2).Declare("s2", 2).
		Fact("s2", "c", "e").Fact("s2", "c", "f").
		SetTrust("C", TrustLess).
		AddDEC("C", constraint.Inclusion("sigma(Q,C)", "u", "s1", 2))
	c := NewPeer("C").Declare("u", 2).Fact("u", "c", "b")
	return NewSystem().MustAddPeer(p).MustAddPeer(q).MustAddPeer(c)
}
