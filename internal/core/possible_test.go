package core

import (
	"reflect"
	"testing"

	"repro/internal/foquery"
	"repro/internal/relation"
)

// TestPossibleAnswersExample1: brave answers include everything true in
// some solution — here also r1(s,t) and r3-protected content, unlike
// the certain (skeptical) answers of Example 2.
func TestPossibleAnswersExample1(t *testing.T) {
	s := Example1System()
	q := foquery.MustParse("r1(X,Y)")
	possible, err := PossibleAnswers(s, "P1", q, []string{"X", "Y"}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []relation.Tuple{{"a", "b"}, {"a", "e"}, {"c", "d"}, {"s", "t"}}
	if !reflect.DeepEqual(possible, want) {
		t.Fatalf("possible = %v, want %v", possible, want)
	}
	certain, err := PeerConsistentAnswers(s, "P1", q, []string{"X", "Y"}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Certain ⊆ possible, strictly here.
	if len(certain) >= len(possible) {
		t.Fatalf("certain %v should be a strict subset of possible %v", certain, possible)
	}
}

func TestPossibleAnswersSection31(t *testing.T) {
	s := Section31System()
	q := foquery.MustParse("r2(X,Y)")
	possible, err := PossibleAnswers(s, "P", q, []string{"X", "Y"}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Some solution inserts (a,e), another (a,f).
	want := []relation.Tuple{{"a", "e"}, {"a", "f"}}
	if !reflect.DeepEqual(possible, want) {
		t.Fatalf("possible = %v, want %v", possible, want)
	}
}

func TestPossibleAnswersErrors(t *testing.T) {
	s := Example1System()
	if _, err := PossibleAnswers(s, "ZZ", foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, SolveOptions{}); err == nil {
		t.Fatal("unknown peer must fail")
	}
	if _, err := PossibleAnswers(s, "P1", foquery.MustParse("r2(X,Y)"), []string{"X", "Y"}, SolveOptions{}); err == nil {
		t.Fatal("query outside L(P1) must fail")
	}
}
