package core

import (
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/foquery"
	"repro/internal/parallel"
	"repro/internal/relation"
	"repro/internal/repair"
)

// SolveOptions configures solution computation.
type SolveOptions struct {
	// MaxDelta and MaxRepairs are passed to the repair engine per stage.
	MaxDelta   int
	MaxRepairs int
	// Parallelism bounds the worker pools at every level of the
	// engine: the wave expansion inside each repair search
	// (repair.Options.Parallelism), the stage-2 repair fan-out of
	// SolutionsFor and the per-solution query evaluation of
	// PeerConsistentAnswers. 0 means GOMAXPROCS; 1 forces the
	// sequential path. Pruning and result merges are deterministic at
	// every layer, so every parallelism level produces byte-identical
	// output.
	Parallelism int
	// KeepDep, when non-nil, restricts enforcement to the dependencies
	// it accepts — the query-relevance projection of internal/slice
	// (slice.Slice.KeepDep). Dropped dependencies must be irrelevant to
	// the query in the sense documented there; query answers are then
	// identical to the unsliced run.
	KeepDep func(*constraint.Dependency) bool
	// RelevantRels, when non-nil, restricts the repaired instance to
	// the named relations (the slice's relation set, which must cover
	// every relation of KeepDep-accepted dependencies and the whole
	// schema of the queried peer): the global instance is restricted
	// before stage 1, so the repair search never materializes
	// irrelevant relations.
	RelevantRels map[string]bool
	// NoLocalize disables the conflict-localized repair engine
	// (repair.Options.NoLocalize) in every stage: the searches then run
	// as single global wave searches. Localization is exact, so this is
	// an A/B knob, not a semantics switch.
	NoLocalize bool
	// RepairStats, when non-nil, accumulates repair-engine counters
	// (searches, localized engagements, conflict components) across the
	// stages — the serving plane reads them for its component-count
	// metrics. Purely observational.
	RepairStats *repair.Stats
}

// keeps applies the KeepDep filter (nil keeps everything).
func (o SolveOptions) keeps(d *constraint.Dependency) bool {
	return o.KeepDep == nil || o.KeepDep(d)
}

// repairOptions translates SolveOptions into per-stage repair options.
func (o SolveOptions) repairOptions(fixed map[string]bool) repair.Options {
	return repair.Options{
		Fixed:       fixed,
		MaxDelta:    o.MaxDelta,
		MaxRepairs:  o.MaxRepairs,
		Parallelism: o.Parallelism,
		NoLocalize:  o.NoLocalize,
		Stats:       o.RepairStats,
	}
}

// workers resolves Parallelism for a fan-out.
func (o SolveOptions) workers() int { return parallel.Workers(o.Parallelism) }

// SolutionsFor computes the solutions for peer P (Definition 4, direct
// case) on the system's current global instance:
//
//	stage 1: repair r̄ w.r.t. ⋃{Σ(P,Q) | (P,less,Q)} ∪ IC(P), holding
//	         every relation not owned by P fixed;
//	stage 2: repair each stage-1 result w.r.t. the same-trust DECs
//	         (keeping the less-trust DECs and IC(P) satisfied), with
//	         P's and the same-trusted peers' relations mutable and the
//	         more-trusted peers' relations fixed.
//
// Relations of peers that appear in no DEC of P are untouched
// (condition (b) of Definition 4). The result is deduplicated and
// deterministic.
func SolutionsFor(s *System, id PeerID, opt SolveOptions) ([]*relation.Instance, error) {
	p, ok := s.peers[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown peer %s", id)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}

	var lessDeps, sameDeps, ics []*constraint.Dependency
	for _, q := range s.TrustedPeers(id, TrustLess) {
		for _, d := range p.DECs[q] {
			if opt.keeps(d) {
				lessDeps = append(lessDeps, d)
			}
		}
	}
	for _, q := range s.TrustedPeers(id, TrustSame) {
		for _, d := range p.DECs[q] {
			if opt.keeps(d) {
				sameDeps = append(sameDeps, d)
			}
		}
	}
	for _, ic := range p.ICs {
		if opt.keeps(ic) {
			ics = append(ics, ic)
		}
	}

	global := s.Global()
	if opt.RelevantRels != nil {
		global = global.RestrictRels(opt.RelevantRels)
	}

	// Stage 1: only P's own relations are mutable.
	fixed1 := map[string]bool{}
	for rel, owner := range s.owner {
		if owner != id {
			fixed1[rel] = true
		}
	}
	stage1Deps := append(append([]*constraint.Dependency{}, lessDeps...), ics...)
	stage1, err := repair.Repairs(global, stage1Deps, opt.repairOptions(fixed1))
	if err != nil && err != repair.ErrBound {
		return nil, fmt.Errorf("core: stage-1 repairs for %s: %w", id, err)
	}

	if len(sameDeps) == 0 {
		return dedupSorted(stage1), nil
	}

	// Stage 2: P's and the same-trusted peers' relations are mutable;
	// less-trust DECs and local ICs must be preserved.
	fixed2 := map[string]bool{}
	mutableOwners := map[PeerID]bool{id: true}
	for _, q := range s.TrustedPeers(id, TrustSame) {
		mutableOwners[q] = true
	}
	for rel, owner := range s.owner {
		if !mutableOwners[owner] {
			fixed2[rel] = true
		}
	}
	stage2Deps := append(append([]*constraint.Dependency{}, sameDeps...), lessDeps...)
	stage2Deps = append(stage2Deps, ics...)

	// Stage 2 is embarrassingly parallel: each stage-1 repair is an
	// independent repair problem. Fan out across a bounded worker pool
	// and flatten in stage-1 order before the deterministic
	// dedupSorted merge, so the result is byte-identical to the
	// sequential loop at every parallelism level.
	perRepair, err := parallel.MapErr(len(stage1), opt.workers(), func(i int) ([]*relation.Instance, error) {
		reps, err := repair.Repairs(stage1[i], stage2Deps, opt.repairOptions(fixed2))
		if err != nil && err != repair.ErrBound {
			return nil, err
		}
		return reps, nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: stage-2 repairs for %s: %w", id, err)
	}
	var out []*relation.Instance
	for _, reps := range perRepair {
		out = append(out, reps...)
	}
	return dedupSorted(out), nil
}

// dedupSorted de-duplicates instances by canonical key and sorts them,
// rendering each key exactly once (the comparator reuses the rendered
// keys — Instance.Key walks the whole instance, so recomputing it per
// comparison would dominate large solution sets).
func dedupSorted(insts []*relation.Instance) []*relation.Instance {
	seen := map[string]bool{}
	var out []*relation.Instance
	var keys []string
	for _, in := range insts {
		k := in.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, in)
			keys = append(keys, k)
		}
	}
	order := make([]int, len(out))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	sorted := make([]*relation.Instance, len(out))
	for i, j := range order {
		sorted[i] = out[j]
	}
	return sorted
}

// ErrNoSolutions is returned when a peer admits no solution (e.g. a
// violated DEC whose relations are all fixed); the paper reflects this
// as the non-existence of answer sets.
var ErrNoSolutions = fmt.Errorf("core: peer has no solutions")

// PeerConsistentAnswers computes the PCAs of Definition 5: the tuples
// t̄ with r'|P ⊨ Q(t̄) for every solution r' for the peer — the query is
// evaluated on the restriction of each solution to the peer's own
// schema R(P).
func PeerConsistentAnswers(s *System, id PeerID, q foquery.Formula, vars []string, opt SolveOptions) ([]relation.Tuple, error) {
	p, ok := s.peers[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown peer %s", id)
	}
	// The query must be in L(P).
	if err := checkQuerySchema(p, q); err != nil {
		return nil, err
	}
	sols, err := SolutionsFor(s, id, opt)
	if err != nil {
		return nil, err
	}
	if len(sols) == 0 {
		return nil, ErrNoSolutions
	}
	restricted := make([]*relation.Instance, len(sols))
	parallel.Run(len(sols), opt.workers(), func(i int) {
		restricted[i] = sols[i].Restrict(p.Schema)
	})
	return repair.IntersectAnswersOpt(restricted, q, vars, repair.Options{Parallelism: opt.Parallelism})
}

func checkQuerySchema(p *Peer, q foquery.Formula) error {
	for _, pred := range formulaPreds(q) {
		if !p.Schema.Has(pred) {
			return fmt.Errorf("core: query uses relation %s outside L(%s)", pred, p.ID)
		}
	}
	return nil
}

func formulaPreds(f foquery.Formula) []string { return foquery.Preds(f) }

// IsPCA reports whether a specific ground tuple is a peer consistent
// answer for the query (Definition 5 membership test).
func IsPCA(s *System, id PeerID, q foquery.Formula, vars []string, tup relation.Tuple, opt SolveOptions) (bool, error) {
	ans, err := PeerConsistentAnswers(s, id, q, vars, opt)
	if err != nil {
		return false, err
	}
	for _, a := range ans {
		if a.Equal(tup) {
			return true, nil
		}
	}
	return false, nil
}
