package core

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/relation"
)

// TestComposeDelegated: the composed mini system keeps the root's DECs
// and trust edges only toward peers present in the composition, stands
// each delegated peer in as a constraint-free stub holding its answer
// sets, and validates.
func TestComposeDelegated(t *testing.T) {
	root := NewPeer("R").Declare("tr", 2).Fact("tr", "r", "1").
		SetTrust("A", TrustLess).
		AddDEC("A", constraint.Inclusion("incRA", "ta", "tr", 2)).
		SetTrust("C", TrustLess).
		AddDEC("C", constraint.Inclusion("incRC", "tc", "tr", 2)).
		SetTrust("D", TrustLess)
	a := NewPeer("A").Declare("ta", 2)
	stubs := []DelegatedPeer{{
		ID:     "A",
		Schema: a.Schema,
		Rels: map[string][]relation.Tuple{
			"ta": {{"a", "1"}, {"a", "2"}},
		},
	}}
	sys, err := ComposeDelegated(root, stubs)
	if err != nil {
		t.Fatal(err)
	}
	rc, ok := sys.Peer("R")
	if !ok {
		t.Fatal("composed system lost the root")
	}
	if len(rc.DECs) != 1 || len(rc.DECs["A"]) != 1 {
		t.Fatalf("root DECs = %v, want only incRA toward the present peer A", rc.DECs)
	}
	if _, ok := rc.Trust["C"]; ok {
		t.Fatal("trust edge toward absent DEC target C should be dropped")
	}
	if _, ok := rc.Trust["D"]; ok {
		t.Fatal("trust edge toward absent DEC-less peer D should be dropped")
	}
	sp, ok := sys.Peer("A")
	if !ok {
		t.Fatal("composed system lost the stub A")
	}
	if len(sp.DECs) != 0 || len(sp.Trust) != 0 || len(sp.ICs) != 0 {
		t.Fatalf("stub must be constraint-free, got DECs=%v trust=%v ICs=%v",
			sp.DECs, sp.Trust, sp.ICs)
	}
	if n := sp.Inst.Count("ta"); n != 2 {
		t.Fatalf("stub ta has %d tuples, want the 2 delegated answers", n)
	}
	// The composition must not alias the original root.
	if &root.DECs == &rc.DECs || len(root.DECs) != 2 {
		t.Fatal("ComposeDelegated must clone the root, not mutate it")
	}
}

// TestComposeDelegatedEmptyAnswerSet: a schema relation without an
// answer entry stays present and empty — a remote peer with no matching
// tuples answers with the empty set, not a missing relation.
func TestComposeDelegatedEmptyAnswerSet(t *testing.T) {
	root := NewPeer("R").Declare("tr", 2).
		SetTrust("A", TrustLess).
		AddDEC("A", constraint.Inclusion("incRA", "ta", "tr", 2))
	a := NewPeer("A").Declare("ta", 2)
	sys, err := ComposeDelegated(root, []DelegatedPeer{{ID: "A", Schema: a.Schema, Rels: nil}})
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := sys.Peer("A")
	if !sp.Schema.Has("ta") {
		t.Fatal("stub schema lost ta")
	}
	if n := sp.Inst.Count("ta"); n != 0 {
		t.Fatalf("ta has %d tuples, want 0", n)
	}
}

// TestComposeDelegatedDuplicateID: a stub colliding with the root's ID
// surfaces as an error, not a panic or silent overwrite.
func TestComposeDelegatedDuplicateID(t *testing.T) {
	root := NewPeer("R").Declare("tr", 2)
	if _, err := ComposeDelegated(root, []DelegatedPeer{{ID: "R", Schema: root.Schema}}); err == nil {
		t.Fatal("composing a stub with the root's ID should fail")
	}
}
