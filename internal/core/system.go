// Package core implements the paper's primary contribution: the
// semantics of peer-to-peer data exchange systems (Definition 2), peer
// solutions (Definition 4, direct case) and peer consistent answers
// (Definition 5). Solutions are computed model-theoretically with the
// repair engine (internal/repair); internal/program provides the
// equivalent answer-set-programming route of Section 3, and the two are
// cross-validated in tests.
package core

import (
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/relation"
	"repro/internal/symtab"
)

// PeerID names a peer.
type PeerID string

// TrustLevel is the second component of the trust relation: when
// (P, less, Q) ∈ trust, P trusts itself less than Q (Q's data is more
// reliable); (P, same, Q) means equal trust.
type TrustLevel int

// Trust levels.
const (
	TrustNone TrustLevel = iota // no trust edge
	TrustLess                   // (P, less, Q): Q is more trusted than P
	TrustSame                   // (P, same, Q): Q is trusted like P
)

// String renders the trust level as in the paper.
func (t TrustLevel) String() string {
	switch t {
	case TrustLess:
		return "less"
	case TrustSame:
		return "same"
	default:
		return "none"
	}
}

// Peer is one member of the system (Definition 2(b)-(e)): a schema, an
// instance, local ICs and the data exchange constraints Σ(P,Q) it
// maintains toward other peers, plus its trust edges.
type Peer struct {
	ID     PeerID
	Schema *relation.Schema
	Inst   *relation.Instance
	// ICs are the local integrity constraints IC(P) over R(P).
	ICs []*constraint.Dependency
	// DECs maps a neighbour Q to Σ(P,Q), the exchange constraints P
	// maintains with Q (sentences over R(P) ∪ R(Q)).
	DECs map[PeerID][]*constraint.Dependency
	// Trust maps a neighbour Q to the trust P places in it.
	Trust map[PeerID]TrustLevel
}

// NewPeer creates an empty peer.
func NewPeer(id PeerID) *Peer {
	return &Peer{
		ID:     id,
		Schema: relation.NewSchema(),
		Inst:   relation.NewInstance(),
		DECs:   make(map[PeerID][]*constraint.Dependency),
		Trust:  make(map[PeerID]TrustLevel),
	}
}

// Declare adds a relation to the peer's schema.
func (p *Peer) Declare(name string, arity int) *Peer {
	p.Schema.Add(relation.RelDecl{Name: name, Arity: arity})
	return p
}

// Fact inserts a tuple into the peer's instance.
func (p *Peer) Fact(rel string, vals ...string) *Peer {
	d, ok := p.Schema.Decl(rel)
	if !ok {
		panic(fmt.Sprintf("core: peer %s has no relation %s", p.ID, rel))
	}
	if d.Arity != len(vals) {
		panic(fmt.Sprintf("core: relation %s has arity %d, got %d values", rel, d.Arity, len(vals)))
	}
	p.Inst.Insert(rel, relation.Tuple(vals))
	return p
}

// AddDEC registers an exchange constraint in Σ(P,Q).
func (p *Peer) AddDEC(other PeerID, d *constraint.Dependency) *Peer {
	p.DECs[other] = append(p.DECs[other], d)
	return p
}

// AddIC registers a local integrity constraint.
func (p *Peer) AddIC(d *constraint.Dependency) *Peer {
	p.ICs = append(p.ICs, d)
	return p
}

// SetTrust records a trust edge toward another peer.
func (p *Peer) SetTrust(other PeerID, lvl TrustLevel) *Peer {
	p.Trust[other] = lvl
	return p
}

// Clone returns a snapshot copy of the peer: a copy-on-write clone of
// the instance (relation.Instance.Clone shares the symbol table, the
// immutable id tuples and the built read caches, so this is cheap)
// together with fresh IC/DEC/Trust containers. The *Dependency values
// themselves are shared — the engines and internal/slice compare
// dependencies by identity, so a clone participates in slices computed
// on the original. The schema is copied: a served peer may grow its
// schema through UpdateLocal (Declare), and a clone handed to the
// snapshot/export paths must not observe that mutation mid-read.
func (p *Peer) Clone() *Peer {
	c := &Peer{
		ID:     p.ID,
		Schema: p.Schema.Copy(),
		Inst:   p.Inst.Clone(),
		ICs:    append([]*constraint.Dependency(nil), p.ICs...),
		DECs:   make(map[PeerID][]*constraint.Dependency, len(p.DECs)),
		Trust:  make(map[PeerID]TrustLevel, len(p.Trust)),
	}
	for q, deps := range p.DECs {
		c.DECs[q] = append([]*constraint.Dependency(nil), deps...)
	}
	for q, lvl := range p.Trust {
		c.Trust[q] = lvl
	}
	return c
}

// System is a P2P data exchange system: a finite set of peers with
// disjoint schemas (Definition 2(a)-(b)). Every system owns one symbol
// table: the first added peer's table is adopted and every later
// peer's instance is re-interned onto it, so all cross-peer operations
// (the global instance, repairs, constraint matching) compare constants
// by interned id rather than by string.
type System struct {
	peers map[PeerID]*Peer
	order []PeerID
	owner map[string]PeerID // relation name -> owning peer
	tab   *symtab.Table     // shared symbol table; nil until the first peer
}

// NewSystem creates an empty system.
func NewSystem() *System {
	return &System{peers: make(map[PeerID]*Peer), owner: make(map[string]PeerID)}
}

// Symtab returns the system's shared symbol table (the first peer's
// table; a fresh one for an empty system). Note that an empty system's
// table is replaced when the first peer is added — query it after the
// peers are registered.
func (s *System) Symtab() *symtab.Table {
	if s.tab == nil {
		s.tab = symtab.New()
	}
	return s.tab
}

// AddPeer registers a peer; schemas must stay disjoint. The peer's
// instance is re-homed onto the system's symbol table (adopting the
// peer's own table if this is the first peer, which leaves the peer's
// instance untouched — nodes sharing one live peer across snapshot
// systems rely on that).
func (s *System) AddPeer(p *Peer) error {
	if _, dup := s.peers[p.ID]; dup {
		return fmt.Errorf("core: duplicate peer %s", p.ID)
	}
	for _, rel := range p.Schema.Relations() {
		if o, taken := s.owner[rel]; taken {
			return fmt.Errorf("core: relation %s of peer %s already owned by %s (schemas must be disjoint)", rel, p.ID, o)
		}
	}
	// Adopt the first peer's table even if Symtab() was called on the
	// empty system: the "first peer is never mutated" guarantee must
	// not depend on whether anyone peeked at the table beforehand.
	if len(s.order) == 0 {
		s.tab = p.Inst.Table()
	} else {
		p.Inst.Rehome(s.tab)
	}
	s.peers[p.ID] = p
	s.order = append(s.order, p.ID)
	for _, rel := range p.Schema.Relations() {
		s.owner[rel] = p.ID
	}
	return nil
}

// MustAddPeer is AddPeer that panics on error, for fluent construction.
func (s *System) MustAddPeer(p *Peer) *System {
	if err := s.AddPeer(p); err != nil {
		panic(err)
	}
	return s
}

// Peer returns a peer by id.
func (s *System) Peer(id PeerID) (*Peer, bool) {
	p, ok := s.peers[id]
	return p, ok
}

// Peers returns the peer ids in registration order.
func (s *System) Peers() []PeerID {
	out := make([]PeerID, len(s.order))
	copy(out, s.order)
	return out
}

// Owner returns the peer owning a relation.
func (s *System) Owner(rel string) (PeerID, bool) {
	id, ok := s.owner[rel]
	return id, ok
}

// Global returns the union of all peer instances — the instance r̄ on
// the combined schema (Definition 3(b)). All peers share the system's
// symbol table, so the union reuses interned id tuples directly.
func (s *System) Global() *relation.Instance {
	g := relation.NewInstanceIn(s.tab)
	for _, id := range s.order {
		g.AddAll(s.peers[id].Inst)
	}
	return g
}

// Validate checks that every DEC is well-formed, references only
// declared relations and that each DEC of peer P mentions at least one
// relation of P or of the named neighbour.
func (s *System) Validate() error {
	for _, id := range s.order {
		p := s.peers[id]
		for _, ic := range p.ICs {
			if err := ic.Validate(); err != nil {
				return fmt.Errorf("peer %s: %w", id, err)
			}
			for pred := range ic.Preds() {
				if o := s.owner[pred]; o != id {
					return fmt.Errorf("core: IC %s of peer %s uses foreign relation %s", ic.Name, id, pred)
				}
			}
		}
		for q, deps := range p.DECs {
			if _, ok := s.peers[q]; !ok {
				return fmt.Errorf("core: peer %s has DECs toward unknown peer %s", id, q)
			}
			for _, d := range deps {
				if err := d.Validate(); err != nil {
					return fmt.Errorf("peer %s: %w", id, err)
				}
				for pred := range d.Preds() {
					o, ok := s.owner[pred]
					if !ok {
						return fmt.Errorf("core: DEC %s of peer %s uses undeclared relation %s", d.Name, id, pred)
					}
					if o != id && o != q {
						return fmt.Errorf("core: DEC %s in Sigma(%s,%s) uses relation %s of third peer %s", d.Name, id, q, pred, o)
					}
				}
			}
		}
	}
	return nil
}

// RelevantSchema returns R̄(P) (Definition 3(a)): P's schema extended
// with the other peers' schemas containing predicates in Σ(P).
func (s *System) RelevantSchema(id PeerID) (*relation.Schema, error) {
	p, ok := s.peers[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown peer %s", id)
	}
	out := p.Schema.Union(relation.NewSchema())
	for _, deps := range p.DECs {
		for _, d := range deps {
			for pred := range d.Preds() {
				owner := s.owner[pred]
				if owner == "" {
					return nil, fmt.Errorf("core: DEC %s mentions undeclared relation %s", d.Name, pred)
				}
				out = out.Union(s.peers[owner].Schema)
			}
		}
	}
	return out, nil
}

// TrustedPeers returns the neighbours of P at the given level, sorted.
func (s *System) TrustedPeers(id PeerID, lvl TrustLevel) []PeerID {
	p, ok := s.peers[id]
	if !ok {
		return nil
	}
	var out []PeerID
	for q, l := range p.Trust {
		if l == lvl {
			out = append(out, q)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
