package core

import "testing"

// TestSymtabBeforeAddPeerAdoptsFirstPeer: peeking at an empty system's
// symbol table must not change AddPeer's guarantee that the first
// peer's instance is adopted, never re-homed (peernet snapshot builds
// rely on the live peer staying untouched).
func TestSymtabBeforeAddPeerAdoptsFirstPeer(t *testing.T) {
	p := NewPeer("P").Declare("r", 1).Fact("r", "a")
	tabBefore := p.Inst.Table()
	s := NewSystem()
	_ = s.Symtab() // allocate the empty system's table first
	if err := s.AddPeer(p); err != nil {
		t.Fatal(err)
	}
	if p.Inst.Table() != tabBefore {
		t.Fatal("first peer's instance was re-homed instead of adopted")
	}
	if s.Symtab() != tabBefore {
		t.Fatal("system did not adopt the first peer's table")
	}
	q := NewPeer("Q").Declare("s", 1).Fact("s", "b")
	if err := s.AddPeer(q); err != nil {
		t.Fatal(err)
	}
	if q.Inst.Table() != tabBefore {
		t.Fatal("second peer was not re-homed onto the system table")
	}
}
