package core

import (
	"reflect"
	"testing"

	"repro/internal/constraint"
	"repro/internal/foquery"
	"repro/internal/relation"
	"repro/internal/term"
)

func mkInst(facts map[string][]relation.Tuple) *relation.Instance {
	in := relation.NewInstance()
	for rel, ts := range facts {
		for _, t := range ts {
			in.Insert(rel, t)
		}
	}
	return in
}

func TestSystemConstruction(t *testing.T) {
	s := Example1System()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Peers(); len(got) != 3 {
		t.Fatalf("peers = %v", got)
	}
	if owner, _ := s.Owner("r2"); owner != "P2" {
		t.Fatalf("owner(r2) = %s", owner)
	}
	g := s.Global()
	if g.Size() != 6 {
		t.Fatalf("global size = %d", g.Size())
	}
}

func TestDisjointSchemasEnforced(t *testing.T) {
	s := NewSystem().MustAddPeer(NewPeer("A").Declare("r", 1))
	err := s.AddPeer(NewPeer("B").Declare("r", 2))
	if err == nil {
		t.Fatal("overlapping schemas must be rejected")
	}
}

func TestValidateRejectsThirdPartyDEC(t *testing.T) {
	a := NewPeer("A").Declare("ra", 1).
		AddDEC("B", constraint.Inclusion("bad", "rc", "ra", 1)).
		SetTrust("B", TrustLess)
	b := NewPeer("B").Declare("rb", 1)
	c := NewPeer("C").Declare("rc", 1)
	s := NewSystem().MustAddPeer(a).MustAddPeer(b).MustAddPeer(c)
	if err := s.Validate(); err == nil {
		t.Fatal("DEC mentioning a third peer's relation must be rejected")
	}
}

func TestRelevantSchema(t *testing.T) {
	s := Example1System()
	sch, err := s.RelevantSchema("P1")
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"r1", "r2", "r3"} {
		if !sch.Has(rel) {
			t.Fatalf("R̄(P1) missing %s", rel)
		}
	}
	sch2, err := s.RelevantSchema("P2")
	if err != nil {
		t.Fatal(err)
	}
	if sch2.Has("r1") || sch2.Has("r3") {
		t.Fatalf("R̄(P2) should be just r2: %v", sch2.Relations())
	}
}

func TestTrustedPeers(t *testing.T) {
	s := Example1System()
	if got := s.TrustedPeers("P1", TrustLess); len(got) != 1 || got[0] != "P2" {
		t.Fatalf("less = %v", got)
	}
	if got := s.TrustedPeers("P1", TrustSame); len(got) != 1 || got[0] != "P3" {
		t.Fatalf("same = %v", got)
	}
}

// TestExample1Solutions reproduces the central result of Example 1:
// peer P1 has exactly the two solutions r' and r”.
func TestExample1Solutions(t *testing.T) {
	s := Example1System()
	sols, err := SolutionsFor(s, "P1", SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("want 2 solutions, got %d: %v", len(sols), sols)
	}
	rp := mkInst(map[string][]relation.Tuple{
		"r1": {{"a", "b"}, {"s", "t"}, {"c", "d"}, {"a", "e"}},
		"r2": {{"c", "d"}, {"a", "e"}},
	})
	rpp := mkInst(map[string][]relation.Tuple{
		"r1": {{"a", "b"}, {"c", "d"}, {"a", "e"}},
		"r2": {{"c", "d"}, {"a", "e"}},
		"r3": {{"s", "u"}},
	})
	got := map[string]bool{sols[0].Key(): true, sols[1].Key(): true}
	if !got[rp.Key()] {
		t.Errorf("missing paper solution r' = %v", rp)
	}
	if !got[rpp.Key()] {
		t.Errorf("missing paper solution r'' = %v", rpp)
	}
}

// TestExample2PCA reproduces Example 2: the peer consistent answers to
// Q: R1(x,y) for P1 are exactly (a,b), (c,d), (a,e).
func TestExample2PCA(t *testing.T) {
	s := Example1System()
	q := foquery.MustParse("r1(X,Y)")
	ans, err := PeerConsistentAnswers(s, "P1", q, []string{"X", "Y"}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []relation.Tuple{{"a", "b"}, {"a", "e"}, {"c", "d"}}
	if !reflect.DeepEqual(ans, want) {
		t.Fatalf("PCAs = %v, want %v", ans, want)
	}
}

// TestPCAIncludesImportedTuples checks the paper's observation that a
// query may have peer consistent answers that are not answers over the
// peer in isolation ((c,d) and (a,e) are imported from P2).
func TestPCAIncludesImportedTuples(t *testing.T) {
	s := Example1System()
	p1, _ := s.Peer("P1")
	local, err := foquery.Answers(p1.Inst, foquery.MustParse("r1(X,Y)"), []string{"X", "Y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(local) != 2 {
		t.Fatalf("local answers = %v", local)
	}
	ans, err := PeerConsistentAnswers(s, "P1", foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) <= len(local) {
		t.Fatalf("PCAs %v should strictly contain local answers %v", ans, local)
	}
}

func TestQueryOutsideLanguageRejected(t *testing.T) {
	s := Example1System()
	// r2 belongs to P2; P1's queries are in L(P1).
	_, err := PeerConsistentAnswers(s, "P1", foquery.MustParse("r2(X,Y)"), []string{"X", "Y"}, SolveOptions{})
	if err == nil {
		t.Fatal("query outside L(P1) must be rejected")
	}
}

// TestSection31Solutions checks the three solutions of the Section 3.1
// scenario on the appendix instance.
func TestSection31Solutions(t *testing.T) {
	s := Section31System()
	sols, err := SolutionsFor(s, "P", SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 3 {
		t.Fatalf("want 3 solutions, got %d: %v", len(sols), sols)
	}
	// Deletion solution, insert-e solution, insert-f solution.
	var del, insE, insF bool
	for _, r := range sols {
		switch {
		case !r.Has("r1", relation.Tuple{"a", "b"}):
			del = true
		case r.Has("r2", relation.Tuple{"a", "e"}):
			insE = true
		case r.Has("r2", relation.Tuple{"a", "f"}):
			insF = true
		}
	}
	if !del || !insE || !insF {
		t.Fatalf("solution shapes: del=%v insE=%v insF=%v (%v)", del, insE, insF, sols)
	}
	// Q's relations are fixed in every solution.
	for _, r := range sols {
		if !r.Has("s1", relation.Tuple{"c", "b"}) || r.Count("s2") != 2 {
			t.Fatalf("Q's data changed in solution %v", r)
		}
	}
}

// TestSection31PCAQuery runs the query of Section 3.2,
// Q(x,z): ∃y (R1(x,y) ∧ R2(z,y)), against the solutions.
func TestSection31PCAQuery(t *testing.T) {
	s := Section31System()
	q := foquery.MustParse("exists Y (r1(X,Y) & r2(Z,Y))")
	ans, err := PeerConsistentAnswers(s, "P", q, []string{"X", "Z"}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// In the deletion solution R1 is empty, so no tuple is in all
	// solutions.
	if len(ans) != 0 {
		t.Fatalf("PCAs = %v, want none", ans)
	}
}

func TestNoSolutionsReported(t *testing.T) {
	// A violated denial DEC whose only body relation belongs to the
	// trusted (hence fixed) peer: no repair exists, so the peer has no
	// solutions — the paper reflects this as non-existence of answer
	// sets.
	a := NewPeer("A").Declare("ra", 1).
		SetTrust("B", TrustLess).
		AddDEC("B", &constraint.Dependency{
			Name: "imposs",
			Body: []term.Atom{term.NewAtom("rb", term.V("X"))},
		})
	b := NewPeer("B").Declare("rb", 1).Fact("rb", "x")
	s := NewSystem().MustAddPeer(a).MustAddPeer(b)
	_, err := PeerConsistentAnswers(s, "A", foquery.MustParse("ra(X)"), []string{"X"}, SolveOptions{})
	if err != ErrNoSolutions {
		t.Fatalf("want ErrNoSolutions, got %v", err)
	}
}

func TestLocalICsRespectedBySolutions(t *testing.T) {
	// Section 3.2: a local FD on r1 prunes solutions that would import
	// a second tuple with the same key.
	p1 := NewPeer("P1").Declare("r1", 2).
		Fact("r1", "a", "b").
		SetTrust("P2", TrustLess).
		AddDEC("P2", constraint.Inclusion("inc", "r2", "r1", 2)).
		AddIC(constraint.FD("fd_r1", "r1"))
	p2 := NewPeer("P2").Declare("r2", 2).Fact("r2", "a", "c")
	s := NewSystem().MustAddPeer(p1).MustAddPeer(p2)
	sols, err := SolutionsFor(s, "P1", SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The import of (a,c) forces dropping (a,b): the only repair
	// deletes r1(a,b) and inserts r1(a,c).
	if len(sols) != 1 {
		t.Fatalf("want 1 solution, got %d: %v", len(sols), sols)
	}
	if sols[0].Has("r1", relation.Tuple{"a", "b"}) || !sols[0].Has("r1", relation.Tuple{"a", "c"}) {
		t.Fatalf("solution = %v", sols[0])
	}
}

func TestUntrustedNeighborsIgnored(t *testing.T) {
	// DECs toward peers with no trust edge play no role (only peers
	// trusted at least as much as oneself are considered).
	p1 := NewPeer("P1").Declare("r1", 2).
		Fact("r1", "a", "b").
		AddDEC("P2", constraint.Inclusion("inc", "r2", "r1", 2))
	p2 := NewPeer("P2").Declare("r2", 2).Fact("r2", "c", "d")
	s := NewSystem().MustAddPeer(p1).MustAddPeer(p2)
	sols, err := SolutionsFor(s, "P1", SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || !sols[0].Equal(s.Global()) {
		t.Fatalf("untrusted DEC changed the instance: %v", sols)
	}
}

func TestIsPCA(t *testing.T) {
	s := Example1System()
	q := foquery.MustParse("r1(X,Y)")
	ok, err := IsPCA(s, "P1", q, []string{"X", "Y"}, relation.Tuple{"a", "b"}, SolveOptions{})
	if err != nil || !ok {
		t.Fatalf("(a,b) should be a PCA: %v %v", ok, err)
	}
	ok, err = IsPCA(s, "P1", q, []string{"X", "Y"}, relation.Tuple{"s", "t"}, SolveOptions{})
	if err != nil || ok {
		t.Fatalf("(s,t) should not be a PCA: %v %v", ok, err)
	}
}
