package core

import (
	"sort"

	"repro/internal/relation"
)

// DelegatedPeer is the stub standing in for a remote peer in a
// composed delegated-answering system: the peer's schema plus the
// answer sets its own engine returned for the delegated sub-queries
// (or its raw relations, for DEC-less data peers). A stub carries no
// DECs, ICs or trust edges — its data is final from the composing
// peer's point of view.
type DelegatedPeer struct {
	ID     PeerID
	Schema *relation.Schema
	// Rels maps a relation to its delegated answer set. Relations of
	// the schema without an entry are empty (a remote peer with no
	// matching tuples answers with an empty set).
	Rels map[string][]relation.Tuple
}

// ComposeDelegated assembles the mini system a querying peer solves
// locally after its neighbours answered their delegated sub-queries:
// a clone of the root peer (DECs toward peers that are not part of the
// composition are dropped, as are their trust edges) plus one
// constraint-free stub per delegated neighbour holding the returned
// answer sets. Because CQA answers are an intersection over repairs
// (Arenas–Bertossi–Chomicki), a neighbour with a unique solution is
// fully described by its answer sets, so solving the composed system
// with the same engine as the centralized path yields byte-identical
// peer consistent answers; internal/slice.PlanDelegation gates
// delegation to exactly those shapes.
func ComposeDelegated(root *Peer, stubs []DelegatedPeer) (*System, error) {
	rc := root.Clone()
	present := make(map[PeerID]bool, len(stubs))
	for _, st := range stubs {
		present[st.ID] = true
	}
	for q := range rc.DECs {
		if !present[q] {
			delete(rc.DECs, q)
			delete(rc.Trust, q)
		}
	}
	for q := range rc.Trust {
		if !present[q] {
			delete(rc.Trust, q)
		}
	}
	sys := NewSystem()
	if err := sys.AddPeer(rc); err != nil {
		return nil, err
	}
	ordered := append([]DelegatedPeer(nil), stubs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	for _, st := range ordered {
		sp := NewPeer(st.ID)
		for _, rel := range st.Schema.Relations() {
			d, _ := st.Schema.Decl(rel)
			sp.Schema.Add(d)
		}
		rels := make([]string, 0, len(st.Rels))
		for rel := range st.Rels {
			rels = append(rels, rel)
		}
		sort.Strings(rels)
		for _, rel := range rels {
			for _, t := range st.Rels[rel] {
				sp.Inst.Insert(rel, t)
			}
		}
		if err := sys.AddPeer(sp); err != nil {
			return nil, err
		}
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}
