package core

import (
	"testing"

	"repro/internal/constraint"
)

// TestReduceSingleStage pins the two reducible trust shapes, the
// non-reducible mixed shape, and the KeepDep filter's effect on which
// shape applies.
func TestReduceSingleStage(t *testing.T) {
	t.Run("less-trust plus IC reduces with foreign rels fixed", func(t *testing.T) {
		p1 := NewPeer("P1").Declare("r1", 2).
			SetTrust("P2", TrustLess).
			AddDEC("P2", constraint.Inclusion("inc", "r2", "r1", 2)).
			AddIC(constraint.FD("fd", "r1"))
		p2 := NewPeer("P2").Declare("r2", 2)
		s := NewSystem().MustAddPeer(p1).MustAddPeer(p2)

		deps, fixed, ok := ReduceSingleStage(s, "P1", SolveOptions{})
		if !ok {
			t.Fatal("less-trust + IC shape did not reduce")
		}
		if len(deps) != 2 {
			t.Fatalf("deps = %d, want 2 (DEC + IC)", len(deps))
		}
		if !fixed["r2"] || fixed["r1"] {
			t.Fatalf("fixed = %v, want exactly the foreign relation r2", fixed)
		}
	})

	t.Run("same-trust only reduces with same-trust peers mutable", func(t *testing.T) {
		a := NewPeer("A").Declare("ra", 2).
			SetTrust("B", TrustSame).
			AddDEC("B", constraint.KeyEGD("k", "ra", "rb"))
		b := NewPeer("B").Declare("rb", 2)
		c := NewPeer("C").Declare("rc", 2)
		s := NewSystem().MustAddPeer(a).MustAddPeer(b).MustAddPeer(c)

		deps, fixed, ok := ReduceSingleStage(s, "A", SolveOptions{})
		if !ok {
			t.Fatal("same-trust-only shape did not reduce")
		}
		if len(deps) != 1 || deps[0].Name != "k" {
			t.Fatalf("deps = %v, want the single same-trust DEC", deps)
		}
		if fixed["ra"] || fixed["rb"] || !fixed["rc"] {
			t.Fatalf("fixed = %v, want only the uninvolved peer's rc", fixed)
		}
	})

	t.Run("same-trust mixed with IC does not reduce", func(t *testing.T) {
		a := NewPeer("A").Declare("ra", 2).
			SetTrust("B", TrustSame).
			AddDEC("B", constraint.KeyEGD("k", "ra", "rb")).
			AddIC(constraint.FD("fd", "ra"))
		b := NewPeer("B").Declare("rb", 2)
		s := NewSystem().MustAddPeer(a).MustAddPeer(b)

		if _, _, ok := ReduceSingleStage(s, "A", SolveOptions{}); ok {
			t.Fatal("same-trust DEC + local IC reduced; two-stage composition required")
		}

		// Filtering the IC out (as a slice that drops it would) makes
		// the same system reduce through the same-trust branch.
		opt := SolveOptions{KeepDep: func(d *constraint.Dependency) bool { return d.Name != "fd" }}
		deps, fixed, ok := ReduceSingleStage(s, "A", opt)
		if !ok {
			t.Fatal("KeepDep-filtered same-trust shape did not reduce")
		}
		if len(deps) != 1 || deps[0].Name != "k" {
			t.Fatalf("deps = %v, want only the same-trust DEC", deps)
		}
		if fixed["ra"] || fixed["rb"] {
			t.Fatalf("fixed = %v, want both same-trust peers mutable", fixed)
		}
	})

	t.Run("unknown peer", func(t *testing.T) {
		s := NewSystem().MustAddPeer(NewPeer("A").Declare("ra", 1))
		if _, _, ok := ReduceSingleStage(s, "Z", SolveOptions{}); ok {
			t.Fatal("unknown peer reduced")
		}
	})
}
