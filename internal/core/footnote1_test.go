package core

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/foquery"
	"repro/internal/relation"
)

// TestLocallyInconsistentPeer exercises the extension sketched in the
// paper's footnote 1: a peer whose own instance violates IC(P). The
// paper assumes r(P) ⊨ IC(P) but notes the scenario "would not be
// difficult to extend ... techniques as those described in [8]".
// Because the solution semantics includes IC(P) in the repair
// constraints, the engine already tolerates local violations: the
// solutions repair them CQA-style.
func TestLocallyInconsistentPeer(t *testing.T) {
	p1 := NewPeer("P1").Declare("r1", 2).
		Fact("r1", "k", "v1").Fact("r1", "k", "v2"). // violates the FD
		AddIC(constraint.FD("fd", "r1")).
		SetTrust("P2", TrustLess).
		AddDEC("P2", constraint.Inclusion("inc", "r2", "r1", 2))
	p2 := NewPeer("P2").Declare("r2", 2).Fact("r2", "x", "y")
	s := NewSystem().MustAddPeer(p1).MustAddPeer(p2)

	sols, err := SolutionsFor(s, "P1", SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Two repairs of the local FD conflict, each with the import.
	if len(sols) != 2 {
		t.Fatalf("solutions = %d: %v", len(sols), sols)
	}
	for _, sol := range sols {
		if !sol.Has("r1", relation.Tuple{"x", "y"}) {
			t.Fatalf("import missing in %v", sol)
		}
		if sol.Has("r1", relation.Tuple{"k", "v1"}) == sol.Has("r1", relation.Tuple{"k", "v2"}) {
			t.Fatalf("FD not repaired in %v", sol)
		}
	}
	// The imported tuple is certain; the conflicting pair is not.
	ans, err := PeerConsistentAnswers(s, "P1", foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || !ans[0].Equal(relation.Tuple{"x", "y"}) {
		t.Fatalf("PCAs = %v", ans)
	}
	// Both conflicting tuples are possible answers.
	poss, err := PossibleAnswers(s, "P1", foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(poss) != 3 {
		t.Fatalf("possible = %v", poss)
	}
}
