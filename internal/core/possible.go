package core

import (
	"fmt"
	"sort"

	"repro/internal/foquery"
	"repro/internal/parallel"
	"repro/internal/relation"
)

// PossibleAnswers computes the brave counterpart of Definition 5: the
// tuples t̄ with r'|P ⊨ Q(t̄) for *some* solution r' for the peer. The
// paper computes PCAs under the skeptical answer set semantics; the
// brave modality is the standard dual in consistent query answering
// and is exposed here as an extension (the same solutions are used,
// answers are unioned instead of intersected).
func PossibleAnswers(s *System, id PeerID, q foquery.Formula, vars []string, opt SolveOptions) ([]relation.Tuple, error) {
	p, ok := s.peers[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown peer %s", id)
	}
	if err := checkQuerySchema(p, q); err != nil {
		return nil, err
	}
	sols, err := SolutionsFor(s, id, opt)
	if err != nil {
		return nil, err
	}
	if len(sols) == 0 {
		return nil, ErrNoSolutions
	}
	// Per-solution evaluation fans out like PeerConsistentAnswers; the
	// union merge is order-independent and the output sorted, so the
	// result is identical at every parallelism level.
	perSol, err := parallel.MapErr(len(sols), opt.workers(), func(i int) ([]relation.Tuple, error) {
		return foquery.Answers(sols[i].Restrict(p.Schema), q, vars)
	})
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []relation.Tuple
	for _, ans := range perSol {
		for _, t := range ans {
			if !seen[t.Key()] {
				seen[t.Key()] = true
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}
