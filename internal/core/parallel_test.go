package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/constraint"
	"repro/internal/foquery"
	"repro/internal/relation"
)

// fixtureSystems are the paper fixtures the parallel engine must agree
// with the sequential engine on (Example 1/2 share a system; Example 4
// and Section 3.1 exercise multi-peer trust).
func fixtureSystems() map[string]*System {
	return map[string]*System{
		"example1":  Example1System(),
		"example4":  Example4System(),
		"section31": Section31System(),
	}
}

// TestSolutionsForParallelIdentical asserts that the stage-2 fan-out
// produces byte-identical solution sets at every parallelism level,
// per the Definition 4 determinism contract.
func TestSolutionsForParallelIdentical(t *testing.T) {
	for name, mk := range fixtureSystems() {
		t.Run(name, func(t *testing.T) {
			s := mk
			for _, id := range s.Peers() {
				seq, seqErr := SolutionsFor(s, id, SolveOptions{Parallelism: 1})
				for _, p := range []int{0, 2, 4, 8} {
					par, parErr := SolutionsFor(s, id, SolveOptions{Parallelism: p})
					if (seqErr == nil) != (parErr == nil) {
						t.Fatalf("peer %s parallelism %d: err %v vs sequential %v", id, p, parErr, seqErr)
					}
					if !sameInstances(seq, par) {
						t.Fatalf("peer %s parallelism %d: solutions differ", id, p)
					}
				}
			}
		})
	}
}

// TestPCAParallelIdentical asserts that PeerConsistentAnswers and
// PossibleAnswers are identical to the sequential run on the Example
// 1/2 system at every parallelism level.
func TestPCAParallelIdentical(t *testing.T) {
	s := Example1System()
	q := foquery.MustParse("r1(X,Y)")
	vars := []string{"X", "Y"}

	seqPCA, err := PeerConsistentAnswers(s, "P1", q, vars, SolveOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqPCA) != 3 {
		t.Fatalf("Example 2 expects 3 peer consistent answers, got %v", seqPCA)
	}
	seqPoss, err := PossibleAnswers(s, "P1", q, vars, SolveOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 2, 4, 8} {
		pca, err := PeerConsistentAnswers(s, "P1", q, vars, SolveOptions{Parallelism: p})
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if !reflect.DeepEqual(pca, seqPCA) {
			t.Fatalf("parallelism %d: PCA %v != sequential %v", p, pca, seqPCA)
		}
		poss, err := PossibleAnswers(s, "P1", q, vars, SolveOptions{Parallelism: p})
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if !reflect.DeepEqual(poss, seqPoss) {
			t.Fatalf("parallelism %d: possible %v != sequential %v", p, poss, seqPoss)
		}
	}
}

// TestSolutionsForParallelManyStage1 forces a stage-2 fan-out wider
// than the pool (many stage-1 repairs) to exercise work distribution.
func TestSolutionsForParallelManyStage1(t *testing.T) {
	s := manyConflictSystem(5)
	seq, err := SolutionsFor(s, "A", SolveOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 1<<5 {
		t.Fatalf("want %d solutions, got %d", 1<<5, len(seq))
	}
	par, err := SolutionsFor(s, "A", SolveOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sameInstances(seq, par) {
		t.Fatal("parallel solutions differ from sequential")
	}
}

// manyConflictSystem builds a system whose queried peer has k
// independent FD conflicts resolved in stage 1 (2^k stage-1 repairs)
// plus a same-trust neighbour so stage 2 actually runs: the stage-2
// fan-out is 2^k wide, far beyond the worker pool.
func manyConflictSystem(k int) *System {
	a := NewPeer("A").Declare("ra", 2)
	for i := 0; i < k; i++ {
		key := fmt.Sprintf("k%d", i)
		a.Fact("ra", key, fmt.Sprintf("u%d", i))
		a.Fact("ra", key, fmt.Sprintf("v%d", i))
	}
	b := NewPeer("B").Declare("rb", 2).Fact("rb", "x", "y")
	c := NewPeer("C").Declare("rc", 2)
	a.SetTrust("B", TrustLess).AddDEC("B", constraint.FD("fd_ra", "ra"))
	a.SetTrust("C", TrustSame).AddDEC("C", constraint.Inclusion("dec_ac", "rc", "ra", 2))
	return NewSystem().MustAddPeer(a).MustAddPeer(b).MustAddPeer(c)
}

func sameInstances(a, b []*relation.Instance) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return false
		}
	}
	return true
}
