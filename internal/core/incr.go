package core

import "repro/internal/constraint"

// ReduceSingleStage reports whether SolutionsFor for peer id collapses
// to a single repair problem over the global instance, and returns
// that problem's dependency set and fixed-predicate set. This is the
// precondition of the incremental re-answering path (peernet): a
// series of fact-level deltas can patch one repair problem's component
// decomposition, but not the two-stage composition of Definition 4.
//
// Two shapes reduce:
//
//   - no same-trust DECs: SolutionsFor returns the stage-1 repairs
//     directly, i.e. one search over the less-trust DECs plus local
//     ICs with every foreign relation fixed;
//   - same-trust DECs only (no less-trust DECs, no ICs): stage 1
//     degenerates to the identity (a repair search over no
//     dependencies returns the instance itself), so the solutions are
//     exactly the stage-2 repairs of the global instance over the
//     same-trust DECs with the more-trusted peers' relations fixed.
//
// The dependency filter (SolveOptions.KeepDep) is applied exactly as
// SolutionsFor applies it, so the reduced problem matches what the
// full path would solve under the same options.
func ReduceSingleStage(s *System, id PeerID, opt SolveOptions) (deps []*constraint.Dependency, fixed map[string]bool, ok bool) {
	p, found := s.peers[id]
	if !found {
		return nil, nil, false
	}
	var lessDeps, sameDeps, ics []*constraint.Dependency
	for _, q := range s.TrustedPeers(id, TrustLess) {
		for _, d := range p.DECs[q] {
			if opt.keeps(d) {
				lessDeps = append(lessDeps, d)
			}
		}
	}
	for _, q := range s.TrustedPeers(id, TrustSame) {
		for _, d := range p.DECs[q] {
			if opt.keeps(d) {
				sameDeps = append(sameDeps, d)
			}
		}
	}
	for _, ic := range p.ICs {
		if opt.keeps(ic) {
			ics = append(ics, ic)
		}
	}

	switch {
	case len(sameDeps) == 0:
		fixed = map[string]bool{}
		for rel, owner := range s.owner {
			if owner != id {
				fixed[rel] = true
			}
		}
		deps = append(append([]*constraint.Dependency{}, lessDeps...), ics...)
		return deps, fixed, true
	case len(lessDeps) == 0 && len(ics) == 0:
		fixed = map[string]bool{}
		mutableOwners := map[PeerID]bool{id: true}
		for _, q := range s.TrustedPeers(id, TrustSame) {
			mutableOwners[q] = true
		}
		for rel, owner := range s.owner {
			if !mutableOwners[owner] {
				fixed[rel] = true
			}
		}
		return sameDeps, fixed, true
	}
	return nil, nil, false
}
