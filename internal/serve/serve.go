// Package serve is the long-running serving plane over a peernet.Node:
// concurrent peer-consistent queries with admission control, per-query
// parallelism budgeting and an observability layer.
//
// Admission is a bounded pool: at most Config.MaxConcurrent queries run
// at once, up to Config.MaxQueue more wait for a slot, and anything
// beyond that is shed immediately (ErrOverloaded, HTTP 503) instead of
// building an unbounded backlog. Each admitted query runs with an
// engine parallelism budget of Config.QueryParallelism, so a single
// expensive repair search cannot claim every core and starve the pool.
//
// The query path itself is the node's AnswerQuery: snapshot-isolated
// reads (copy-on-write instance clones), a content-addressed answer
// cache, and in-flight coalescing of identical concurrent queries
// (singleflight on the slice/fingerprint answer key). Local writes go
// through Write -> Node.UpdateLocal, which invalidates the node's
// snapshot cache — a write is visible to the next query, with no TTL
// staleness window on the served peer's own data. (Remote peers' data
// is still read through the TTL caches; that freshness bound is the
// documented CacheTTL semantics, not a serving-plane artifact.)
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/metrics"
	"repro/internal/peernet"
	"repro/internal/relation"
)

// ErrOverloaded reports a shed query: the pool and the admission queue
// were both full. Clients should back off and retry.
var ErrOverloaded = errors.New("serve: overloaded, query shed (admission queue full)")

// ErrStopping reports a query rejected because the server is draining:
// Stop was called, and new arrivals are shed while the admitted and
// queued requests run to completion.
var ErrStopping = errors.New("serve: stopping, new queries rejected")

// Config tunes a Server. The zero value serves with sensible defaults.
type Config struct {
	// MaxConcurrent bounds the queries running at once; 0 means
	// GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds the queries waiting for a pool slot; one more is
	// shed. 0 means 4*MaxConcurrent; negative means no queue (shed as
	// soon as the pool is full).
	MaxQueue int
	// QueryParallelism is the engine parallelism budget of one admitted
	// query. 0 divides GOMAXPROCS evenly across the pool
	// (max(1, GOMAXPROCS/MaxConcurrent)), so the pool at capacity uses
	// about the whole machine without oversubscribing it.
	QueryParallelism int
	// Transitive selects the Section 4.3 semantics for queries that do
	// not specify one (the HTTP API's per-request "transitive" param
	// overrides it).
	Transitive bool
	// DrainTimeout bounds how long Stop waits for the admitted and
	// queued queries to complete before giving up. 0 means a 5s
	// default; negative means Stop does not wait at all (it still
	// sheds new arrivals).
	DrainTimeout time.Duration
}

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueryParallelism <= 0 {
		c.QueryParallelism = runtime.GOMAXPROCS(0) / c.MaxConcurrent
		if c.QueryParallelism < 1 {
			c.QueryParallelism = 1
		}
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.DrainTimeout < 0 {
		c.DrainTimeout = 0
	}
	return c
}

// Server answers queries over one node with admission control and
// metrics. Create with New; safe for concurrent use.
type Server struct {
	node  *peernet.Node
	cfg   Config
	reg   *metrics.Registry
	sem   chan struct{}
	start time.Time

	// stopping is set (atomically) by Stop: admit sheds new arrivals
	// while the already admitted and queued queries drain.
	stopping int32

	queries  *metrics.Counter
	errs     *metrics.Counter
	writes   *metrics.Counter
	shed     *metrics.Counter
	inflight *metrics.Gauge
	queued   *metrics.Gauge
	latency  *metrics.Histogram
}

// New builds a server over the node. The node should be fully
// configured (CacheTTL, Parallelism, neighbours) — the server only
// reads it and routes writes through UpdateLocal.
func New(node *peernet.Node, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	s := &Server{
		node:     node,
		cfg:      cfg,
		reg:      reg,
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		start:    time.Now(),
		queries:  reg.Counter("serve_queries_total"),
		errs:     reg.Counter("serve_query_errors_total"),
		writes:   reg.Counter("serve_writes_total"),
		shed:     reg.Counter("serve_shed_total"),
		inflight: reg.Gauge("serve_inflight"),
		queued:   reg.Gauge("serve_queue_depth"),
		latency:  reg.Histogram("serve_query_latency"),
	}
	reg.Func("serve_qps", func() float64 {
		secs := time.Since(s.start).Seconds()
		if secs <= 0 {
			return 0
		}
		return float64(s.queries.Value()) / secs
	})
	stat := func(name string, read func() int64) { reg.Func(name, func() float64 { return float64(read()) }) }
	stat("node_answer_cache_hits", func() int64 { h, _ := node.AnswerCacheStats(); return h })
	stat("node_answer_cache_misses", func() int64 { _, m := node.AnswerCacheStats(); return m })
	stat("node_snapshot_cache_hits", func() int64 { h, _, _, _ := node.CacheStats(); return h })
	stat("node_snapshot_cache_misses", func() int64 { _, m, _, _ := node.CacheStats(); return m })
	stat("node_relation_cache_hits", func() int64 { _, _, h, _ := node.CacheStats(); return h })
	stat("node_relation_cache_misses", func() int64 { _, _, _, m := node.CacheStats(); return m })
	stat("node_coalesce_leaders", func() int64 { l, _ := node.CoalesceStats(); return l })
	stat("node_coalesced_total", func() int64 { _, c := node.CoalesceStats(); return c })
	stat("node_solver_runs_total", node.SolverRuns)
	stat("node_local_writes_total", node.LocalWrites)
	stat("repair_searches_total", func() int64 { n, _, _ := node.RepairStats(); return n })
	stat("repair_localized_total", func() int64 { _, n, _ := node.RepairStats(); return n })
	stat("repair_components_total", func() int64 { _, _, n := node.RepairStats(); return n })
	return s
}

// Registry exposes the server's metrics registry (also mounted at
// /metrics by Handler).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Config reports the resolved configuration.
func (s *Server) Config() Config { return s.cfg }

// admit claims a pool slot, waiting in the bounded queue when the pool
// is full; it reports false (shed) when the queue is full too, or when
// the server is draining (a query that reached the queue before Stop
// still completes — only new arrivals are shed). release must be
// called after a true return.
func (s *Server) admit() bool {
	if atomic.LoadInt32(&s.stopping) != 0 {
		return false
	}
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return true
	default:
	}
	if s.queued.Value() >= int64(s.cfg.MaxQueue) {
		return false
	}
	// The depth check and increment are not atomic together: a burst
	// can briefly overshoot MaxQueue by the number of racing admitters.
	// The bound is a shed policy, not an invariant, so approximate
	// accounting in exchange for a lock-free admission path is the
	// right trade.
	s.queued.Add(1)
	s.sem <- struct{}{}
	// Flip the gauges in claim-then-release order so queued+inflight
	// never reads zero for a request that is still moving between the
	// queue and the pool (Stop polls that sum to decide drained).
	s.inflight.Add(1)
	s.queued.Add(-1)
	return true
}

func (s *Server) release() {
	s.inflight.Add(-1)
	<-s.sem
}

// Stop drains the server gracefully: new arrivals are shed immediately
// (ErrStopping), while every query already admitted to the pool or
// waiting in the queue runs to completion. It returns true when the
// server drained inside Config.DrainTimeout, false when queries were
// still running at the deadline (they keep running — Stop abandons
// the wait, it does not cancel work). Safe to call more than once and
// concurrently; every caller performs its own bounded wait.
func (s *Server) Stop() bool {
	atomic.StoreInt32(&s.stopping, 1)
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	for {
		if s.inflight.Value() == 0 && s.queued.Value() == 0 {
			return true
		}
		if !time.Now().Before(deadline) {
			return s.inflight.Value() == 0 && s.queued.Value() == 0
		}
		time.Sleep(time.Millisecond)
	}
}

// Stopping reports whether Stop has been called.
func (s *Server) Stopping() bool { return atomic.LoadInt32(&s.stopping) != 0 }

// Answer runs one peer-consistent query through admission, the node's
// cache/coalescing path and the metrics layer. It returns ErrOverloaded
// without touching the engines when the query is shed.
func (s *Server) Answer(q foquery.Formula, vars []string, transitive bool) ([]relation.Tuple, error) {
	if !s.admit() {
		s.shed.Inc()
		if atomic.LoadInt32(&s.stopping) != 0 {
			return nil, ErrStopping
		}
		return nil, ErrOverloaded
	}
	defer s.release()
	start := time.Now()
	ans, err := s.node.AnswerQuery(q, vars, peernet.QueryOptions{
		Transitive:  transitive,
		Parallelism: s.cfg.QueryParallelism,
	})
	s.latency.Observe(time.Since(start))
	s.queries.Inc()
	if err != nil {
		s.errs.Inc()
		return nil, err
	}
	return ans, nil
}

// AnswerString is Answer over an unparsed query.
func (s *Server) AnswerString(query string, vars []string, transitive bool) ([]relation.Tuple, error) {
	f, err := foquery.Parse(query)
	if err != nil {
		return nil, err
	}
	return s.Answer(f, vars, transitive)
}

// Write inserts a fact into the served peer through UpdateLocal: the
// snapshot cache is invalidated and the data fingerprint moves, so the
// write is visible to the very next query. The relation must be
// declared by the peer with matching arity.
func (s *Server) Write(rel string, tuple []string) error {
	var werr error
	s.node.UpdateLocal(func(p *core.Peer) {
		d, ok := p.Schema.Decl(rel)
		if !ok {
			werr = fmt.Errorf("serve: peer %s has no relation %s", p.ID, rel)
			return
		}
		if d.Arity != len(tuple) {
			werr = fmt.Errorf("serve: relation %s has arity %d, got %d values", rel, d.Arity, len(tuple))
			return
		}
		p.Inst.Insert(rel, relation.Tuple(tuple))
	})
	if werr == nil {
		s.writes.Inc()
	}
	return werr
}

// WriteMetrics renders the metrics registry as text.
func (s *Server) WriteMetrics(w io.Writer) { s.reg.Render(w) }

// queryResponse is the JSON shape of /query.
type queryResponse struct {
	Count   int        `json:"count"`
	Answers [][]string `json:"answers"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// Handler mounts the HTTP API:
//
//	GET  /query?q=...&vars=X,Y[&transitive=true]  -> {"count":n,"answers":[[...],...]}
//	POST /write?rel=r&tuple=a,b                   -> {"ok":true}
//	GET  /metrics                                 -> text, one "name value" per line
//	GET  /healthz                                 -> ok
//
// Shed queries answer 503 with Retry-After, malformed requests 400,
// engine failures 500.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		q := r.FormValue("q")
		varsParam := r.FormValue("vars")
		if q == "" || varsParam == "" {
			httpError(w, http.StatusBadRequest, errors.New("q and vars are required"))
			return
		}
		vars := strings.Split(varsParam, ",")
		for i := range vars {
			vars[i] = strings.TrimSpace(vars[i])
		}
		transitive := s.cfg.Transitive
		if t := r.FormValue("transitive"); t != "" {
			b, err := strconv.ParseBool(t)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad transitive %q: %w", t, err))
				return
			}
			transitive = b
		}
		f, err := foquery.Parse(q)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		ans, err := s.Answer(f, vars, transitive)
		if errors.Is(err, ErrOverloaded) {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		resp := queryResponse{Count: len(ans), Answers: make([][]string, 0, len(ans))}
		for _, t := range ans {
			resp.Answers = append(resp.Answers, []string(t))
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/write", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
			return
		}
		rel := r.FormValue("rel")
		tupleParam := r.FormValue("tuple")
		if rel == "" || tupleParam == "" {
			httpError(w, http.StatusBadRequest, errors.New("rel and tuple are required"))
			return
		}
		tuple := strings.Split(tupleParam, ",")
		for i := range tuple {
			tuple[i] = strings.TrimSpace(tuple[i])
		}
		if err := s.Write(rel, tuple); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]bool{"ok": true})
	})
	mux.Handle("/metrics", s.reg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}
