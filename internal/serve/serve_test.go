package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/peernet"
	"repro/internal/relation"
)

// newTestServer deploys Example1 as an in-proc overlay and serves P1.
func newTestServer(t *testing.T, cfg Config) (*Server, *peernet.Node) {
	t.Helper()
	sys := core.Example1System()
	tr := peernet.NewInProc()
	nodes := map[core.PeerID]*peernet.Node{}
	for _, id := range sys.Peers() {
		p, _ := sys.Peer(id)
		n := peernet.NewNode(p, tr, nil)
		if err := n.Start(":0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Stop)
		nodes[id] = n
	}
	for _, n := range nodes {
		for _, m := range nodes {
			if n != m {
				n.SetNeighbor(m.Peer.ID, m.Addr)
			}
		}
	}
	served := nodes["P1"]
	served.CacheTTL = time.Minute
	return New(served, cfg), served
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxConcurrent != runtime.GOMAXPROCS(0) {
		t.Fatalf("MaxConcurrent = %d, want GOMAXPROCS", c.MaxConcurrent)
	}
	if c.MaxQueue != 4*c.MaxConcurrent {
		t.Fatalf("MaxQueue = %d, want %d", c.MaxQueue, 4*c.MaxConcurrent)
	}
	if c.QueryParallelism < 1 {
		t.Fatalf("QueryParallelism = %d, want >= 1", c.QueryParallelism)
	}
	c = Config{MaxConcurrent: 2, MaxQueue: -1, QueryParallelism: 3}.withDefaults()
	if c.MaxConcurrent != 2 || c.MaxQueue != 0 || c.QueryParallelism != 3 {
		t.Fatalf("explicit config mangled: %+v", c)
	}
}

// TestAnswerMatchesNode pins the serving-plane contract: a served query
// returns exactly what the one-shot node path computes.
func TestAnswerMatchesNode(t *testing.T) {
	srv, node := newTestServer(t, Config{MaxConcurrent: 2})
	q := foquery.MustParse("r1(X,Y)")
	got, err := srv.Answer(q, []string{"X", "Y"}, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := node.PeerConsistentAnswersFor(q, []string{"X", "Y"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("served answers %v != node answers %v", got, want)
	}
	if srv.Registry().Counter("serve_queries_total").Value() != 1 {
		t.Fatal("query counter did not advance")
	}
}

// TestHTTPQueryWriteVisibility drives the full HTTP surface: query,
// write, immediate re-query (the write must be visible inside the TTL
// window), metrics and health.
func TestHTTPQueryWriteVisibility(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxConcurrent: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	query := func() queryResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/query?" + url.Values{
			"q": {"r1(X,Y)"}, "vars": {"X,Y"},
		}.Encode())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", resp.StatusCode)
		}
		var qr queryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		return qr
	}

	before := query()
	if before.Count == 0 {
		t.Fatal("expected some certain answers for r1(X,Y)")
	}

	resp, err := http.PostForm(ts.URL+"/write", url.Values{"rel": {"r1"}, "tuple": {"fresh,f"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write status %d", resp.StatusCode)
	}

	after := query()
	if after.Count != before.Count+1 {
		t.Fatalf("post-write count = %d, want %d", after.Count, before.Count+1)
	}
	found := false
	for _, a := range after.Answers {
		if len(a) == 2 && a[0] == "fresh" && a[1] == "f" {
			found = true
		}
	}
	if !found {
		t.Fatalf("write not visible to the next query: %v", after.Answers)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	nread, _ := mresp.Body.Read(body)
	mresp.Body.Close()
	text := string(body[:nread])
	for _, want := range []string{
		"serve_queries_total 2", "serve_writes_total 1", "serve_shed_total 0",
		"serve_query_latency_count 2", "node_solver_runs_total", "node_local_writes_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hresp.StatusCode)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxConcurrent: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, tc := range []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"missing vars", func() (*http.Response, error) {
			return http.Get(ts.URL + "/query?q=r1(X,Y)")
		}, http.StatusBadRequest},
		{"bad query", func() (*http.Response, error) {
			return http.Get(ts.URL + "/query?" + url.Values{"q": {"not a query"}, "vars": {"X"}}.Encode())
		}, http.StatusBadRequest},
		{"bad transitive", func() (*http.Response, error) {
			return http.Get(ts.URL + "/query?" + url.Values{"q": {"r1(X,Y)"}, "vars": {"X,Y"}, "transitive": {"maybe"}}.Encode())
		}, http.StatusBadRequest},
		{"write GET", func() (*http.Response, error) {
			return http.Get(ts.URL + "/write?rel=r1&tuple=a,b")
		}, http.StatusMethodNotAllowed},
		{"write unknown rel", func() (*http.Response, error) {
			return http.PostForm(ts.URL+"/write", url.Values{"rel": {"nope"}, "tuple": {"a,b"}})
		}, http.StatusBadRequest},
		{"write bad arity", func() (*http.Response, error) {
			return http.PostForm(ts.URL+"/write", url.Values{"rel": {"r1"}, "tuple": {"a,b,c"}})
		}, http.StatusBadRequest},
	} {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestShedDeterministic proves the admission bound without racing real
// queries: with the pool slot taken by hand and no queue, Answer must
// shed immediately, and the HTTP surface must translate that into 503 +
// Retry-After. Draining the slot restores service.
func TestShedDeterministic(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1})
	srv.sem <- struct{}{} // occupy the only pool slot

	q := foquery.MustParse("r1(X,Y)")
	if _, err := srv.Answer(q, []string{"X", "Y"}, false); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if srv.reg.Counter("serve_shed_total").Value() != 1 {
		t.Fatal("shed counter did not advance")
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/query?" + url.Values{"q": {"r1(X,Y)"}, "vars": {"X,Y"}}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 must carry Retry-After")
	}

	<-srv.sem // free the slot
	if _, err := srv.Answer(q, []string{"X", "Y"}, false); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

// TestQueueAdmitsThenSheds exercises the middle admission tier: one
// query slot taken, one queued waiter allowed, the next shed.
func TestQueueAdmitsThenSheds(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	srv.sem <- struct{}{} // pool full

	queued := make(chan []relation.Tuple, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ans, err := srv.Answer(foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, false)
		if err != nil {
			t.Error(err)
			return
		}
		queued <- ans
	}()
	// Wait for the goroutine to park in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for srv.reg.Gauge("serve_queue_depth").Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued query never registered")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Queue full: the next query is shed.
	if _, err := srv.Answer(foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, false); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}

	<-srv.sem // free the slot; the queued query runs
	wg.Wait()
	if ans := <-queued; len(ans) == 0 {
		t.Fatal("queued query returned no answers")
	}
}

// TestConcurrentMixedLoad hammers the server with parallel queries and
// interleaved writes under the race detector and checks the bookkeeping
// adds up afterwards.
func TestConcurrentMixedLoad(t *testing.T) {
	srv, node := newTestServer(t, Config{MaxConcurrent: 4, MaxQueue: 64})
	q := foquery.MustParse("r1(X,Y)")
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if w == 0 && i%3 == 0 {
					if err := srv.Write("r1", []string{"w", "x"}); err != nil {
						t.Error(err)
					}
					continue
				}
				if _, err := srv.Answer(q, []string{"X", "Y"}, false); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	queries := srv.reg.Counter("serve_queries_total").Value()
	if queries != 56 { // 6*10 minus worker 0's 4 writes
		t.Fatalf("queries = %d, want 56", queries)
	}
	if srv.reg.Counter("serve_writes_total").Value() != 4 {
		t.Fatalf("writes = %d", srv.reg.Counter("serve_writes_total").Value())
	}
	if got := srv.reg.Histogram("serve_query_latency").Count(); got != queries {
		t.Fatalf("latency count = %d, want %d", got, queries)
	}
	if srv.reg.Gauge("serve_inflight").Value() != 0 || srv.reg.Gauge("serve_queue_depth").Value() != 0 {
		t.Fatal("gauges must settle to zero after the load")
	}
	// Writes are idempotent re-inserts of the same fact after the first,
	// but every call still goes through UpdateLocal.
	if node.LocalWrites() != 4 {
		t.Fatalf("node writes = %d", node.LocalWrites())
	}
}

// TestStopDrainsQueuedIncr: Stop lets both the in-flight query and a
// request still waiting in the admission queue complete, then reports
// drained; arrivals after Stop are shed with ErrStopping.
func TestStopDrainsQueuedIncr(t *testing.T) {
	sys := core.Example1System()
	tr := peernet.NewInProc()
	tr.Latency = 20 * time.Millisecond // remote fan-out makes the first query slow
	nodes := map[core.PeerID]*peernet.Node{}
	for _, id := range sys.Peers() {
		p, _ := sys.Peer(id)
		n := peernet.NewNode(p, tr, nil)
		if err := n.Start(":0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Stop)
		nodes[id] = n
	}
	for _, n := range nodes {
		for _, m := range nodes {
			if n != m {
				n.SetNeighbor(m.Peer.ID, m.Addr)
			}
		}
	}
	srv := New(nodes["P1"], Config{MaxConcurrent: 1, MaxQueue: 4, DrainTimeout: 5 * time.Second})

	q := foquery.MustParse("r1(X,Y)")
	vars := []string{"X", "Y"}
	type result struct {
		ans []relation.Tuple
		err error
	}
	results := make(chan result, 2)
	run := func() {
		ans, err := srv.Answer(q, vars, false)
		results <- result{ans, err}
	}
	go run() // slow leader: occupies the MaxConcurrent=1 pool
	deadline := time.Now().Add(2 * time.Second)
	for srv.inflight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	go run() // follower: waits in the admission queue
	for srv.queued.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if !srv.Stop() {
		t.Fatal("Stop reported a drain timeout")
	}
	if !srv.Stopping() {
		t.Fatal("Stopping() should report true after Stop")
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("drained query %d failed: %v", i, r.err)
		}
		if len(r.ans) == 0 {
			t.Fatalf("drained query %d returned no answers", i)
		}
	}

	// New arrivals after Stop are shed with the draining error.
	if _, err := srv.Answer(q, vars, false); !errors.Is(err, ErrStopping) {
		t.Fatalf("post-Stop query: err = %v, want ErrStopping", err)
	}
}

// TestStopDrainTimeoutIncr: a query slower than DrainTimeout makes
// Stop return false without cancelling the work.
func TestStopDrainTimeoutIncr(t *testing.T) {
	sys := core.Example1System()
	tr := peernet.NewInProc()
	tr.Latency = 150 * time.Millisecond
	nodes := map[core.PeerID]*peernet.Node{}
	for _, id := range sys.Peers() {
		p, _ := sys.Peer(id)
		n := peernet.NewNode(p, tr, nil)
		if err := n.Start(":0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Stop)
		nodes[id] = n
	}
	for _, n := range nodes {
		for _, m := range nodes {
			if n != m {
				n.SetNeighbor(m.Peer.ID, m.Addr)
			}
		}
	}
	srv := New(nodes["P1"], Config{MaxConcurrent: 1, DrainTimeout: 10 * time.Millisecond})
	done := make(chan error, 1)
	go func() {
		_, err := srv.Answer(foquery.MustParse("r1(X,Y)"), []string{"X", "Y"}, false)
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for srv.inflight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	if srv.Stop() {
		t.Fatal("Stop should have timed out with the query still running")
	}
	if err := <-done; err != nil {
		t.Fatalf("the slow query must still complete: %v", err)
	}
}
