// Package term provides the shared symbolic layer used throughout the
// system: terms (constants and variables), atoms, substitutions,
// matching and unification. Logic programs (internal/lp), constraints
// (internal/constraint) and first-order queries (internal/foquery) are
// all built on these types.
package term

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/symtab"
)

// Term is either a constant or a variable. The zero value is the empty
// constant. Constants are uninterpreted symbols drawn from a shared
// domain (Definition 2(b) of the paper assumes a common domain D).
type Term struct {
	// IsVar reports whether the term is a variable.
	IsVar bool
	// Name is the symbol: a constant value or a variable name.
	Name string
}

// C returns a constant term.
func C(name string) Term { return Term{Name: name} }

// V returns a variable term.
func V(name string) Term { return Term{IsVar: true, Name: name} }

// String renders the term; variables are rendered as-is (by convention
// they are written starting with an upper-case letter or declared as
// variables by the enclosing syntax).
func (t Term) String() string { return t.Name }

// Equal reports whether two terms are identical.
func (t Term) Equal(u Term) bool { return t.IsVar == u.IsVar && t.Name == u.Name }

// Atom is a predicate applied to terms, e.g. R1(x, b).
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar {
			return false
		}
	}
	return true
}

// Vars appends the names of the variables occurring in the atom to dst,
// in order of occurrence, without duplicates relative to dst.
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Args {
		if t.IsVar && !containsStr(dst, t.Name) {
			dst = append(dst, t.Name)
		}
	}
	return dst
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// String renders the atom as pred(a,B,c).
func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.Name)
	}
	b.WriteByte(')')
	return b.String()
}

// Key returns a canonical string for a ground atom, used as a map key.
// It panics if the atom is not ground.
func (a Atom) Key() string {
	for _, t := range a.Args {
		if t.IsVar {
			panic(fmt.Sprintf("term: Key on non-ground atom %s", a))
		}
	}
	return a.String()
}

// Equal reports structural equality of atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Args: args}
}

// Subst is a substitution: a mapping from variable names to terms.
type Subst map[string]Term

// NewSubst returns an empty substitution.
func NewSubst() Subst { return make(Subst) }

// Clone returns a copy of the substitution.
func (s Subst) Clone() Subst {
	c := make(Subst, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Lookup resolves a term under the substitution, following variable
// bindings transitively.
func (s Subst) Lookup(t Term) Term {
	for t.IsVar {
		u, ok := s[t.Name]
		if !ok {
			return t
		}
		if u.IsVar && u.Name == t.Name {
			return t
		}
		t = u
	}
	return t
}

// Apply returns the atom with all bound variables replaced.
func (s Subst) Apply(a Atom) Atom {
	out := Atom{Pred: a.Pred, Args: make([]Term, len(a.Args))}
	for i, t := range a.Args {
		out.Args[i] = s.Lookup(t)
	}
	return out
}

// ApplyInto is Apply with a caller-supplied argument buffer: resolved
// arguments are appended to buf[:0] and the returned atom aliases that
// buffer. Hot join loops (constraint matching) keep one buffer per
// recursion depth so pattern application stops allocating per
// candidate; callers must not use the returned atom after reusing buf.
func (s Subst) ApplyInto(a Atom, buf []Term) Atom {
	buf = buf[:0]
	for _, t := range a.Args {
		buf = append(buf, s.Lookup(t))
	}
	return Atom{Pred: a.Pred, Args: buf}
}

// ApplyTerm resolves a single term.
func (s Subst) ApplyTerm(t Term) Term { return s.Lookup(t) }

// Bind adds a binding var -> t. It returns false if var is already
// bound to a different term.
func (s Subst) Bind(v string, t Term) bool {
	if cur, ok := s[v]; ok {
		cur = s.Lookup(cur)
		t = s.Lookup(t)
		return cur.Equal(t)
	}
	s[v] = t
	return true
}

// Match extends s so that pattern, a possibly non-ground atom, matches
// the ground atom fact. Match is one-way (only pattern variables are
// bound). It reports success; on failure s may be partially extended,
// so callers should match against a clone when backtracking.
func Match(pattern, fact Atom, s Subst) bool {
	if pattern.Pred != fact.Pred || len(pattern.Args) != len(fact.Args) {
		return false
	}
	for i, pt := range pattern.Args {
		ft := fact.Args[i]
		if ft.IsVar {
			return false // facts must be ground
		}
		pt = s.Lookup(pt)
		if pt.IsVar {
			s[pt.Name] = ft
			continue
		}
		if pt.Name != ft.Name {
			return false
		}
	}
	return true
}

// MatchTrail is Match with an undo trail instead of a cloned
// substitution: every variable it binds is appended to *trail, so the
// caller can backtrack with UnbindTrail instead of cloning s for each
// candidate fact. On failure s may hold partial bindings — they are all
// on the trail, so a single UnbindTrail restores the previous state.
func MatchTrail(pattern, fact Atom, s Subst, trail *[]string) bool {
	if pattern.Pred != fact.Pred || len(pattern.Args) != len(fact.Args) {
		return false
	}
	for i, pt := range pattern.Args {
		ft := fact.Args[i]
		if ft.IsVar {
			return false // facts must be ground
		}
		pt = s.Lookup(pt)
		if pt.IsVar {
			s[pt.Name] = ft
			*trail = append(*trail, pt.Name)
			continue
		}
		if pt.Name != ft.Name {
			return false
		}
	}
	return true
}

// UnbindTrail removes from s every binding recorded on the trail after
// mark and truncates the trail back to mark.
func UnbindTrail(s Subst, trail []string, mark int) []string {
	for i := len(trail) - 1; i >= mark; i-- {
		delete(s, trail[i])
	}
	return trail[:mark]
}

// Unify extends s so that a and b become equal, binding variables on
// either side. It reports success; on failure s may be partially
// extended.
func Unify(a, b Atom, s Subst) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		x := s.Lookup(a.Args[i])
		y := s.Lookup(b.Args[i])
		switch {
		case x.Equal(y):
		case x.IsVar:
			s[x.Name] = y
		case y.IsVar:
			s[y.Name] = x
		default:
			return false
		}
	}
	return true
}

// RenameApart returns a copy of the atom with every variable renamed by
// appending the given suffix; used to keep rule variables disjoint.
func RenameApart(a Atom, suffix string) Atom {
	out := Atom{Pred: a.Pred, Args: make([]Term, len(a.Args))}
	for i, t := range a.Args {
		if t.IsVar {
			out.Args[i] = V(t.Name + suffix)
		} else {
			out.Args[i] = t
		}
	}
	return out
}

// SortAtoms sorts atoms by their string rendering, for deterministic
// output.
func SortAtoms(atoms []Atom) {
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].String() < atoms[j].String() })
}

// Keyer interns canonical ground-atom keys into a symbol table, so hot
// paths (grounding, model bookkeeping) can identify ground atoms by a
// machine word instead of building and hashing the rendered string. The
// rendered form matches Atom.Key exactly; KeyID panics on non-ground
// atoms like Key does. A Keyer reuses an internal buffer and is NOT
// safe for concurrent use; the underlying Table is.
type Keyer struct {
	tab *symtab.Table
	buf []byte
}

// NewKeyer returns a Keyer interning into tab (a fresh table if nil).
func NewKeyer(tab *symtab.Table) *Keyer {
	if tab == nil {
		tab = symtab.New()
	}
	return &Keyer{tab: tab}
}

// Table exposes the underlying symbol table.
func (k *Keyer) Table() *symtab.Table { return k.tab }

// KeyID interns the canonical key of the ground atom and returns its
// id. Known atoms do not allocate.
func (k *Keyer) KeyID(a Atom) symtab.Sym {
	k.buf = k.buf[:0]
	k.buf = append(k.buf, a.Pred...)
	if len(a.Args) > 0 {
		k.buf = append(k.buf, '(')
		for i, t := range a.Args {
			if t.IsVar {
				panic(fmt.Sprintf("term: KeyID on non-ground atom %s", a))
			}
			if i > 0 {
				k.buf = append(k.buf, ',')
			}
			k.buf = append(k.buf, t.Name...)
		}
		k.buf = append(k.buf, ')')
	}
	return k.tab.InternBytes(k.buf)
}

// KeyName returns the rendered key for an id previously returned by
// KeyID.
func (k *Keyer) KeyName(id symtab.Sym) string { return k.tab.Name(id) }

// KeyIDSubst interns the canonical key of the atom under the
// substitution — the id KeyID(s.Apply(a)) would return — without
// materializing the applied atom. ok is false when some argument
// resolves to a variable; the grounder's emission loop uses this to
// render, resolve and intern in one pass.
func (k *Keyer) KeyIDSubst(a Atom, s Subst) (id symtab.Sym, ok bool) {
	k.buf = k.buf[:0]
	k.buf = append(k.buf, a.Pred...)
	if len(a.Args) > 0 {
		k.buf = append(k.buf, '(')
		for i, t := range a.Args {
			if t.IsVar {
				t = s.Lookup(t)
				if t.IsVar {
					return 0, false
				}
			}
			if i > 0 {
				k.buf = append(k.buf, ',')
			}
			k.buf = append(k.buf, t.Name...)
		}
		k.buf = append(k.buf, ')')
	}
	return k.tab.InternBytes(k.buf), true
}

// ConstArgs appends one constant term per value to dst. Hot matching
// loops use it to render stored tuples as atom arguments into a
// reusable buffer instead of allocating a fresh slice per candidate.
func ConstArgs(dst []Term, vals []string) []Term {
	for _, v := range vals {
		dst = append(dst, Term{Name: v})
	}
	return dst
}

// ConstsIn appends all constant names occurring in the atom to dst,
// without duplicates relative to dst.
func ConstsIn(a Atom, dst []string) []string {
	for _, t := range a.Args {
		if !t.IsVar && !containsStr(dst, t.Name) {
			dst = append(dst, t.Name)
		}
	}
	return dst
}
