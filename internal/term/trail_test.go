package term

import (
	"testing"
)

// TestMatchTrailBacktracks: the trail must restore the substitution
// exactly, including on failed partial matches.
func TestMatchTrailBacktracks(t *testing.T) {
	s := NewSubst()
	s["Z"] = C("z")
	var trail []string

	pat := NewAtom("p", V("X"), V("Y"), V("Z"))
	ok := MatchTrail(pat, NewAtom("p", C("a"), C("b"), C("z")), s, &trail)
	if !ok || len(trail) != 2 {
		t.Fatalf("match = %v, trail = %v", ok, trail)
	}
	if s.Lookup(V("X")).Name != "a" || s.Lookup(V("Y")).Name != "b" {
		t.Fatalf("bindings wrong: %v", s)
	}
	trail = UnbindTrail(s, trail, 0)
	if len(trail) != 0 || len(s) != 1 || s["Z"].Name != "z" {
		t.Fatalf("undo left %v (trail %v)", s, trail)
	}

	// Failed match after a partial bind: X gets bound before the clash
	// on Z; the trail must still clean it up.
	ok = MatchTrail(pat, NewAtom("p", C("a"), C("b"), C("w")), s, &trail)
	if ok {
		t.Fatal("clashing fact must not match")
	}
	trail = UnbindTrail(s, trail, 0)
	if len(s) != 1 {
		t.Fatalf("partial bindings survived: %v", s)
	}
}

// TestMatchTrailAgreesWithMatch: for a mix of facts, MatchTrail+undo
// must accept exactly the facts Match accepts on a cloned substitution.
func TestMatchTrailAgreesWithMatch(t *testing.T) {
	pat := NewAtom("p", V("X"), C("b"), V("X"))
	facts := []Atom{
		NewAtom("p", C("a"), C("b"), C("a")),
		NewAtom("p", C("a"), C("b"), C("c")),
		NewAtom("p", C("a"), C("c"), C("a")),
		NewAtom("q", C("a"), C("b"), C("a")),
		NewAtom("p", C("a"), C("b")),
	}
	base := NewSubst()
	var trail []string
	for _, f := range facts {
		want := Match(pat, f, base.Clone())
		mark := len(trail)
		got := MatchTrail(pat, f, base, &trail)
		trail = UnbindTrail(base, trail, mark)
		if got != want {
			t.Fatalf("fact %s: MatchTrail = %v, Match = %v", f, got, want)
		}
		if len(base) != 0 {
			t.Fatalf("fact %s: bindings leaked: %v", f, base)
		}
	}
}

// TestKeyerMatchesAtomKey: interned ids must round-trip to the exact
// Atom.Key rendering.
func TestKeyerMatchesAtomKey(t *testing.T) {
	k := NewKeyer(nil)
	atoms := []Atom{
		NewAtom("p", C("a"), C("b")),
		NewAtom("p", C("a")),
		NewAtom("q"),
		NewAtom("-p", C("a"), C("b")),
	}
	ids := make(map[uint32]bool)
	for _, a := range atoms {
		id := k.KeyID(a)
		if ids[id] {
			t.Fatalf("id %d reused for %s", id, a)
		}
		ids[id] = true
		if got := k.KeyName(id); got != a.Key() {
			t.Fatalf("KeyName = %q, want %q", got, a.Key())
		}
		if again := k.KeyID(a); again != id {
			t.Fatalf("re-intern of %s changed id: %d -> %d", a, id, again)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("KeyID on a non-ground atom must panic")
		}
	}()
	k.KeyID(NewAtom("p", V("X")))
}
